package repro_test

// Determinism property tests: the content-addressed result cache and
// the golden corpus are only sound because the same (workload, config)
// pair always produces a byte-identical canonical report. These tests
// pin that property directly — across repeat runs, across -parallel
// settings, and across cache-enabled vs cache-disabled paths.

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/overload"
	"repro/internal/resultcache"
)

// detConfig is a reduced window so the property tests stay cheap: the
// properties hold at any window, so the smallest interesting one does.
func detConfig() repro.Config {
	return repro.Config{
		SkipInstructions:    20_000,
		MeasureInstructions: 100_000,
	}
}

func canonical(t *testing.T, r *repro.Report) []byte {
	t.Helper()
	b, err := repro.CanonicalReportJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRepeatRunsAreByteIdentical runs the same workload twice and
// compares the canonical reports byte for byte.
func TestRepeatRunsAreByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"goban", "lzw"} {
		r1, err := repro.RunWorkload(ctx, name, detConfig())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := repro.RunWorkload(ctx, name, detConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canonical(t, r1), canonical(t, r2)) {
			t.Errorf("%s: two identical runs produced different reports", name)
		}
	}
}

// TestParallelismDoesNotChangeReports runs the whole suite serially
// and with maximum worker-pool concurrency: scheduling must not leak
// into measured content.
func TestParallelismDoesNotChangeReports(t *testing.T) {
	ctx := context.Background()
	serial := detConfig()
	serial.Parallel = 1
	wide := detConfig()
	wide.Parallel = len(repro.Workloads())

	rs1, err := repro.RunAll(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := repro.RunAll(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs1) != len(rs2) {
		t.Fatalf("report counts differ: %d vs %d", len(rs1), len(rs2))
	}
	for i := range rs1 {
		if rs1[i].Benchmark != rs2[i].Benchmark {
			t.Fatalf("report order differs at %d: %s vs %s", i, rs1[i].Benchmark, rs2[i].Benchmark)
		}
		if !bytes.Equal(canonical(t, rs1[i]), canonical(t, rs2[i])) {
			t.Errorf("%s: -parallel changed the measured report", rs1[i].Benchmark)
		}
	}
}

// TestCacheTransparency pins the acceptance property: the cache-backed
// path returns byte-identical canonical reports to a direct
// RunWorkload — on the miss that populates it and on the hit that
// reads it back — and the hit really came from the cache.
func TestCacheTransparency(t *testing.T) {
	ctx := context.Background()
	cache, err := resultcache.New(8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runner := &repro.Runner{Cache: cache}
	const name = "goban"

	direct, err := repro.RunWorkload(ctx, name, detConfig())
	if err != nil {
		t.Fatal(err)
	}
	miss, err := runner.RunWorkload(ctx, name, detConfig())
	if err != nil {
		t.Fatal(err)
	}
	hit, err := runner.RunWorkload(ctx, name, detConfig())
	if err != nil {
		t.Fatal(err)
	}

	want := canonical(t, direct)
	if !bytes.Equal(want, canonical(t, miss)) {
		t.Error("cache-miss path diverged from direct RunWorkload")
	}
	if !bytes.Equal(want, canonical(t, hit)) {
		t.Error("cache-hit path diverged from direct RunWorkload")
	}
	if h, m := cache.Stats.Hits.Value(), cache.Stats.Misses.Value(); h != 1 || m != 1 {
		t.Errorf("want hits=1 misses=1, got hits=%d misses=%d", h, m)
	}
	if hit.Metrics != nil {
		t.Error("cached reports are canonical and must carry no RunMetrics")
	}

	// A different measurement config must not alias the cached entry.
	other := detConfig()
	other.MeasureInstructions += 4096
	changed, err := runner.RunWorkload(ctx, name, other)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(want, canonical(t, changed)) {
		t.Error("changed config should not serve the old cached report")
	}
	if m := cache.Stats.Misses.Value(); m != 2 {
		t.Errorf("changed config should miss, misses=%d", m)
	}
}

// TestAdmissionPreservesDeterminism pins that the overload machinery
// is invisible to report content: a Runner with a one-slot admission
// gate and circuit breakers, serving concurrent demand for the same
// workload, produces canonical bytes identical to a bare uncached run.
func TestAdmissionPreservesDeterminism(t *testing.T) {
	ctx := context.Background()
	cfg := detConfig()

	bare, err := repro.RunWorkload(ctx, "goban", cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(t, bare)

	cache, err := resultcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	rn := &repro.Runner{
		Cache:    cache,
		Gate:     overload.NewGate(1, 2, time.Second),
		Breakers: overload.NewBreakerSet(3, time.Minute, nil),
	}
	const callers = 8
	got := make([][]byte, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := rn.RunWorkload(ctx, "goban", cfg)
			if err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = repro.CanonicalReportJSON(rep)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want) {
			t.Fatalf("caller %d: admitted report differs from bare run", i)
		}
	}
}
