package repro_test

// Sweep-engine integration contracts, cell by cell against the
// standalone runner:
//
//   - Differential: every cell report a sweep produces is
//     byte-identical (canonical JSON) to RunWorkload at the same
//     config — through a cold cache, a warm cache, and any
//     parallelism. The sweep engine must add exactly nothing to the
//     measurement.
//   - Warm-cache economics: re-running a sweep against its own cache
//     simulates zero cells (cache_* and sweep_* counters prove it)
//     and still renders byte-identical artifacts.
//   - Golden corpus: a 3-size × 2-assoc × 2-policy grid over all
//     eight workloads is pinned under testdata/golden/sweep/ as both
//     CSV and JSON; regenerate deliberately with
//
//	go test -run TestGoldenSweep -update .

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/sweep"
)

// diffSpec is the differential grid: small but covering both set-index
// paths (64 is pow2-sets at assoc 1 and 4; 8192 likewise), every
// replacement policy, and two workloads with different instruction
// mixes. 24 cells × ~21k instructions keeps it race-detector friendly.
func diffSpec() *sweep.Spec {
	return &sweep.Spec{
		Entries:   []int{64, 8192},
		Assoc:     []int{1, 4},
		Policies:  []string{"lru", "fifo", "random"},
		Workloads: []string{"lzw", "scrip"},
		Skip:      1_000,
		Measure:   20_000,
	}
}

func TestSweepDifferentialAgainstStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates in -short mode")
	}
	ctx := context.Background()
	sp := diffSpec()
	cells, err := sweep.Expand(sp)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := resultcache.NewWith(resultcache.Options{
		MaxEntries: 2 * len(cells),
		Dir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	runner := &repro.Runner{Cache: cache}

	// Cold pass at full parallelism: every cell is a cache miss.
	coldReg := obs.NewRegistry()
	eng := &sweep.Engine{Run: runner.RunWorkload, Parallel: runtime.GOMAXPROCS(0), Metrics: coldReg}
	cold, err := eng.Execute(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := coldReg.Counter("sweep_cells_ok").Value(); got != uint64(len(cells)) {
		t.Errorf("cold sweep_cells_ok = %d, want %d", got, len(cells))
	}
	if got := cache.Stats.Misses.Value(); got != uint64(len(cells)) {
		t.Errorf("cold cache misses = %d, want %d", got, len(cells))
	}
	if got := cache.Stats.Hits.Value() + cache.Stats.DiskHits.Value(); got != 0 {
		t.Errorf("cold cache hits = %d, want 0", got)
	}

	// Differential: each cell's report must match a standalone
	// RunWorkload of the identical config, byte for byte.
	for i, c := range cells {
		cellJSON, err := repro.CanonicalReportJSON(cold.Cells[i].Report)
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		standalone, err := repro.RunWorkload(ctx, c.Workload, c.Config)
		if err != nil {
			t.Fatalf("%s standalone: %v", c.ID(), err)
		}
		wantJSON, err := repro.CanonicalReportJSON(standalone)
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		if !bytes.Equal(cellJSON, wantJSON) {
			t.Errorf("%s: sweep cell report diverges from standalone run\n%s",
				c.ID(), firstDiff(wantJSON, cellJSON))
		}
	}

	// Warm pass at parallel=1: zero new simulations, identical bytes.
	warmReg := obs.NewRegistry()
	eng = &sweep.Engine{Run: runner.RunWorkload, Parallel: 1, Metrics: warmReg}
	warm, err := eng.Execute(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats.Misses.Value(); got != uint64(len(cells)) {
		t.Errorf("warm re-run simulated: cache misses rose to %d", got)
	}
	if got := cache.Stats.Hits.Value() + cache.Stats.DiskHits.Value(); got != uint64(len(cells)) {
		t.Errorf("warm cache hits = %d, want %d", got, len(cells))
	}
	if got := warmReg.Counter("sweep_cells_ok").Value(); got != uint64(len(cells)) {
		t.Errorf("warm sweep_cells_ok = %d, want %d", got, len(cells))
	}
	coldCSV, warmCSV := cold.CSV(), warm.CSV()
	if !bytes.Equal(coldCSV, warmCSV) {
		t.Errorf("warm CSV differs from cold CSV\n%s", firstDiff(coldCSV, warmCSV))
	}
	coldJS, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	warmJS, err := warm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJS, warmJS) {
		t.Errorf("warm JSON differs from cold JSON\n%s", firstDiff(coldJS, warmJS))
	}
}

// goldenSweepSpec is the pinned corpus grid: buffer sizes spanning the
// paper's 1K–64K sweep endpoints around the standard 8K point, both a
// direct-mapped and the paper's 4-way geometry, and the two policies
// whose curves differ (FIFO collapses onto LRU at assoc 1).
func goldenSweepSpec() *sweep.Spec {
	return &sweep.Spec{
		Entries:  []int{1024, 8192, 65536},
		Assoc:    []int{1, 4},
		Policies: []string{"lru", "random"},
		Skip:     10_000,
		Measure:  50_000,
	}
}

func TestGoldenSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates in -short mode")
	}
	eng := &sweep.Engine{Run: repro.RunWorkload, Metrics: obs.NewRegistry()}
	res, err := eng.Execute(context.Background(), goldenSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	js, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	artifacts := map[string][]byte{
		"sweep.csv":  res.CSV(),
		"sweep.json": js,
	}
	dir := filepath.Join("testdata", "golden", "sweep")
	for name, got := range artifacts {
		path := filepath.Join(dir, name)
		if *updateGolden {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: wrote %d bytes", name, len(got))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden artifact (regenerate with -update): %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: sweep artifact diverged from golden corpus\n%s",
				name, firstDiff(want, got))
		}
	}
}
