package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// synthReport builds a deterministic report without simulation so the
// formatters can be tested directly.
func synthReport(name string) *repro.Report {
	r := &repro.Report{
		Benchmark:      name,
		DynTotal:       1_000_000,
		DynRepeatedPct: 85.2,
		StaticTotal:    84552,
		StaticExecuted: 53183,
		StaticExecPct:  62.9,
		Fig1Targets:    []float64{50, 90},
		Fig1:           []float64{8.0, 20.0},
		Fig4Targets:    []float64{50, 90},
		Fig4:           []float64{1.0, 15.0},
		Fig3:           [5]float64{25, 12, 30, 33, 0},
		Fig5:           []float64{5, 10, 15, 20, 25},
		Fig6:           []float64{18, 25, 30, 34, 38},
	}
	r.UniqueInstances = 3_947_406
	r.AvgRepeats = 216
	r.Table4.Funcs = 481
	r.Table4.DynCalls = 11_000_000
	r.Table4.AllArgsPct = 78
	r.Table4.NoArgsPct = 0.49
	r.Table8.PureOfAllPct = 0.0
	r.ReusePctAll = 46.5
	r.ReusePctRepeated = 65.4
	return r
}

func TestFormattersRenderSynthetic(t *testing.T) {
	rs := []*repro.Report{synthReport("go"), synthReport("gcc")}
	checks := map[string][]string{
		"table1":  {"go", "gcc", "1,000,000", "85.2", "84,552", "62.9"},
		"fig1":    {"50%:8.0", "90%:20.0"},
		"fig3":    {"25.0", "12.0", "33.0"},
		"table2":  {"3,947,406", "216"},
		"fig4":    {"50%:1.0", "90%:15.0"},
		"table3":  {"internals", "global init data", "external input", "uninit"},
		"table4":  {"481", "11,000,000", "78.0", "0.5"},
		"table5":  {"prologue", "epilogue", "glb_addr_calc", "heap"},
		"table6":  {"function internals", "arguments"},
		"table7":  {"return values", "SP"},
		"table8":  {"0.0"},
		"fig5":    {"5.0", "25.0"},
		"table9":  {"coverage"},
		"fig6":    {"18.0", "38.0"},
		"table10": {"46.5", "65.4"},
	}
	for exp, wants := range checks {
		out, err := repro.Format(exp, rs)
		if err != nil {
			t.Fatalf("Format(%s): %v", exp, err)
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("Format(%s) missing %q:\n%s", exp, w, out)
			}
		}
	}
}

func TestFormatTableColumnsAligned(t *testing.T) {
	rs := []*repro.Report{synthReport("a"), synthReport("longername")}
	out := repro.FormatTable1(rs)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("table too short:\n%s", out)
	}
	// All data rows must be the same width as the header row
	// (right-aligned numeric columns).
	header := lines[1]
	for _, row := range lines[3:] {
		if len(row) != len(header) {
			t.Errorf("row width %d != header width %d:\n%s", len(row), len(header), out)
		}
	}
}

func TestExperimentsListMatchesFormat(t *testing.T) {
	rs := []*repro.Report{synthReport("x")}
	for _, e := range repro.Experiments() {
		if _, err := repro.Format(e, rs); err != nil {
			t.Errorf("advertised experiment %q does not format: %v", e, err)
		}
	}
}
