package repro

import (
	"fmt"
	"strings"

	"repro/internal/local"
	"repro/internal/repetition"
	"repro/internal/report"
	"repro/internal/taint"
)

// This file renders the paper's tables and figures from a set of
// Reports. Each Format* function regenerates the rows/series of the
// correspondingly numbered table or figure.
//
// Partial reports (Report.Truncated, from runs cut short by
// cancellation, timeout, watchdog, fault, or a recovered panic) render
// like complete ones but their benchmark label carries a dagger and
// Format/FormatAll append a footnote, so truncated statistics are
// never mistaken for full-window numbers. Clean runs render
// byte-identically to before the resilience layer existed.

// label returns the report's benchmark name for table rows, with a
// dagger marking truncated (partial) reports.
func label(r *Report) string {
	if r.Truncated {
		return r.Benchmark + "†"
	}
	return r.Benchmark
}

// truncationNote returns the footnote explaining dagger-marked rows,
// or "" when every report is complete.
func truncationNote(rs []*Report) string {
	var trunc []string
	for _, r := range rs {
		if r.Truncated {
			trunc = append(trunc, fmt.Sprintf("%s: %s after %s instructions",
				r.Benchmark, r.TruncatedReason, report.FormatCount(r.MeasuredInstructions)))
		}
	}
	if len(trunc) == 0 {
		return ""
	}
	return "† truncated run, statistics cover a partial window (" + strings.Join(trunc, "; ") + ")\n"
}

// FormatTable1 renders Table 1: dynamic and static instruction counts
// and repetition percentages.
func FormatTable1(rs []*Report) string {
	t := report.NewTable(
		"Table 1: dynamic/static instructions and repetition",
		"bench", "dyn total", "repeat%", "static", "exec%", "static-repeat%")
	for _, r := range rs {
		t.Row(label(r), report.FormatCount(r.DynTotal), r.DynRepeatedPct,
			report.FormatCount(uint64(r.StaticTotal)), r.StaticExecPct, r.StaticRepeatPct)
	}
	return t.String()
}

// FormatFigure1 renders Figure 1: the percentage of repeated static
// instructions needed to cover each fraction of dynamic repetition.
func FormatFigure1(rs []*Report) string {
	var b strings.Builder
	b.WriteString("Figure 1: % of repeated static instructions covering X% of repetition\n")
	for _, r := range rs {
		b.WriteString(report.Series(label(r), r.Fig1Targets, r.Fig1))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable2 renders Table 2: unique repeatable instances and
// average repeats.
func FormatTable2(rs []*Report) string {
	t := report.NewTable("Table 2: unique repeatable instances",
		"bench", "count", "avg repeats")
	for _, r := range rs {
		t.Row(label(r), report.FormatCount(r.UniqueInstances),
			fmt.Sprintf("%.0f", r.AvgRepeats))
	}
	return t.String()
}

// FormatFigure3 renders Figure 3: repetition contribution by
// unique-repeatable-instance bucket.
func FormatFigure3(rs []*Report) string {
	t := report.NewTable(
		"Figure 3: repetition by #unique repeatable instances per static instruction (%)",
		"bench", "1", "2-10", "11-100", "101-1000", ">1000")
	for _, r := range rs {
		t.Row(label(r), r.Fig3[0], r.Fig3[1], r.Fig3[2], r.Fig3[3], r.Fig3[4])
	}
	return t.String()
}

// FormatFigure4 renders Figure 4: the percentage of unique repeatable
// instances needed to cover each fraction of repetition.
func FormatFigure4(rs []*Report) string {
	var b strings.Builder
	b.WriteString("Figure 4: % of unique repeatable instances covering X% of repetition\n")
	for _, r := range rs {
		b.WriteString(report.Series(label(r), r.Fig4Targets, r.Fig4))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable3 renders Table 3: the global-analysis breakdown
// (overall, repeated, propensity per source category).
func FormatTable3(rs []*Report) string {
	var b strings.Builder
	sections := []struct {
		name string
		get  func(*Report) [taint.NumTags]float64
	}{
		{"Overall (% of all dynamic instructions)", func(r *Report) [taint.NumTags]float64 { return r.Table3.OverallPct }},
		{"Repeated (% of all repeated instructions)", func(r *Report) [taint.NumTags]float64 { return r.Table3.RepeatedPct }},
		{"Propensity (% of category that repeated)", func(r *Report) [taint.NumTags]float64 { return r.Table3.PropensityPct }},
	}
	b.WriteString("Table 3: global analysis — sources of input values\n")
	for _, sec := range sections {
		headers := []string{sec.name}
		for _, r := range rs {
			headers = append(headers, label(r))
		}
		t := report.NewTable("", headers...)
		// Paper row order: internals, global init data, external
		// input, uninit.
		for _, tag := range []taint.Tag{taint.TagInternal, taint.TagGlobalInit, taint.TagExternal, taint.TagUninit} {
			row := []any{tag.String()}
			for _, r := range rs {
				row = append(row, sec.get(r)[tag])
			}
			t.Row(row...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable4 renders Table 4: function-level argument repetition.
func FormatTable4(rs []*Report) string {
	t := report.NewTable("Table 4: function-level analysis",
		"bench", "funcs", "dyn calls", "all-args-rep%", "no-args-rep%")
	for _, r := range rs {
		t.Row(label(r), r.Table4.Funcs, report.FormatCount(r.Table4.DynCalls),
			r.Table4.AllArgsPct, r.Table4.NoArgsPct)
	}
	return t.String()
}

// localSection renders one of Tables 5-7.
func localSection(title string, rs []*Report, get func(*Report) [local.NumCats]float64) string {
	headers := []string{"category"}
	for _, r := range rs {
		headers = append(headers, label(r))
	}
	t := report.NewTable(title, headers...)
	for c := local.Cat(0); c < local.NumCats; c++ {
		row := []any{c.String()}
		for _, r := range rs {
			row = append(row, get(r)[c])
		}
		t.Row(row...)
	}
	return t.String()
}

// FormatTable5 renders Table 5: overall local analysis (% of all
// dynamic instructions per category).
func FormatTable5(rs []*Report) string {
	return localSection("Table 5: overall local analysis (% of all dynamic instructions)",
		rs, func(r *Report) [local.NumCats]float64 { return r.Local.OverallPct })
}

// FormatTable6 renders Table 6: contribution of each local category to
// total repetition.
func FormatTable6(rs []*Report) string {
	return localSection("Table 6: local category contribution to repetition (% of repeated instructions)",
		rs, func(r *Report) [local.NumCats]float64 { return r.Local.RepeatedPct })
}

// FormatTable7 renders Table 7: propensity of each local category to
// repetition.
func FormatTable7(rs []*Report) string {
	return localSection("Table 7: local category propensity (% of category repeated)",
		rs, func(r *Report) [local.NumCats]float64 { return r.Local.PropensityPct })
}

// FormatTable8 renders Table 8: memoization candidates.
func FormatTable8(rs []*Report) string {
	t := report.NewTable("Table 8: dynamic calls without side effects or implicit inputs",
		"bench", "% of all calls", "% of all-arg-rep calls")
	for _, r := range rs {
		t.Row(label(r), r.Table8.PureOfAllPct, r.Table8.PureOfAllArgRepPct)
	}
	return t.String()
}

// FormatFigure5 renders Figure 5: all-argument repetition covered by
// each function's top 1-5 argument sets.
func FormatFigure5(rs []*Report) string {
	t := report.NewTable("Figure 5: all-arg repetition covered by top-k argument sets (%)",
		"bench", "top1", "top2", "top3", "top4", "top5")
	for _, r := range rs {
		row := []any{label(r)}
		for _, v := range r.Fig5 {
			row = append(row, v)
		}
		t.Row(row...)
	}
	return t.String()
}

// FormatTable9 renders Table 9: top prologue/epilogue contributors.
func FormatTable9(rs []*Report) string {
	var b strings.Builder
	b.WriteString("Table 9: top-5 contributors to prologue+epilogue repetition (name/size)\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-8s", label(r))
		for _, row := range r.Table9 {
			fmt.Fprintf(&b, "  %s/%d", row.Name, row.Size)
		}
		fmt.Fprintf(&b, "  coverage=%s%%\n", report.FormatPct(r.Table9Coverage))
	}
	return b.String()
}

// FormatFigure6 renders Figure 6: global-load repetition covered by
// the top 1-5 values per load site.
func FormatFigure6(rs []*Report) string {
	t := report.NewTable("Figure 6: global+heap load repetition covered by top-k values (%)",
		"bench", "top1", "top2", "top3", "top4", "top5")
	for _, r := range rs {
		row := []any{label(r)}
		for _, v := range r.Fig6 {
			row = append(row, v)
		}
		t.Row(row...)
	}
	return t.String()
}

// FormatTable10 renders Table 10: repetition captured by the reuse
// buffer.
func FormatTable10(rs []*Report) string {
	t := report.NewTable("Table 10: repetition captured by 8K 4-way reuse buffer",
		"bench", "% of all inst", "% of repeated inst")
	for _, r := range rs {
		t.Row(label(r), r.ReusePctAll, r.ReusePctRepeated)
	}
	return t.String()
}

// FormatTypeBreakdown renders the extension experiment "ext-types":
// the per-instruction-class census Section 2 of the paper mentions but
// omits ("we can also carry out a total analysis for different types
// of instructions ... but do not do so in this paper").
func FormatTypeBreakdown(rs []*Report) string {
	var b strings.Builder
	b.WriteString("Extension: per-instruction-class repetition (share% / propensity%)\n")
	headers := []string{"bench"}
	for c := repetition.InstClass(0); c < repetition.NumClasses; c++ {
		headers = append(headers, c.String())
	}
	t := report.NewTable("", headers...)
	for _, r := range rs {
		row := []any{label(r)}
		for c := repetition.InstClass(0); c < repetition.NumClasses; c++ {
			row = append(row, fmt.Sprintf("%.1f/%.1f", r.TypeOverallPct[c], r.TypePropensityPct[c]))
		}
		t.Row(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// FormatVPred renders the extension experiment "ext-vpred": value
// prediction accuracy (Section 7's other hardware mechanism) with
// tables matched to the reuse buffer's 8K-entry budget.
func FormatVPred(rs []*Report) string {
	t := report.NewTable(
		"Extension: value prediction accuracy (8K-entry tables, % of value-producing instructions)",
		"bench", "eligible%", "last-value", "stride", "hybrid", "repetition%")
	for _, r := range rs {
		t.Row(label(r), r.VPred.EligiblePct, r.VPred.LastValuePct,
			r.VPred.StridePct, r.VPred.HybridPct, r.DynRepeatedPct)
	}
	return t.String()
}

// FormatProfile renders the extension experiment "ext-profile": the
// per-function drill-down — which functions execute the most dynamic
// instructions and how repetitive each one is.
func FormatProfile(rs []*Report) string {
	var b strings.Builder
	b.WriteString("Extension: per-function profile (top 8 by self instructions)\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "%s:\n", label(r))
		t := report.NewTable("", "function", "size", "calls", "self instrs", "repeat%", "all-args-rep%")
		for i, row := range r.Profile {
			if i >= 8 {
				break
			}
			t.Row(row.Name, row.Size, report.FormatCount(row.Calls),
				report.FormatCount(row.Instrs), row.RepeatPct, row.AllArgsPct)
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// FormatVProfile renders the extension experiment "ext-vprofile":
// output-value invariance per Calder et al. (the paper's reference
// [3]), contrasted with the repetition census. High invariance means
// one value dominates an instruction's outputs; repetition is the
// broader phenomenon (many values, each recurring).
func FormatVProfile(rs []*Report) string {
	t := report.NewTable(
		"Extension: value-profile invariance (Calder TNV, register-writing instructions)",
		"bench", "sites", "Inv(1)%", "Inv(4)%", "invariant-sites%", "repetition%")
	for _, r := range rs {
		t.Row(label(r), r.VProfile.Sites, r.VProfile.Top1Pct,
			r.VProfile.Top4Pct, r.VProfile.InvariantSitesPct, r.DynRepeatedPct)
	}
	return t.String()
}

// Experiment names accepted by Format.
var experimentOrder = []string{
	"table1", "fig1", "fig3", "table2", "fig4", "table3", "table4",
	"table5", "table6", "table7", "table8", "fig5", "table9", "fig6",
	"table10", "ext-types", "ext-vpred", "ext-profile", "ext-vprofile",
}

// Experiments lists the renderable experiment identifiers in paper
// order.
func Experiments() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}

// Format renders one experiment ("table1".."table10", "fig1", "fig3",
// "fig4", "fig5", "fig6") for the given reports, with a truncation
// footnote when any report is partial.
func Format(experiment string, rs []*Report) (string, error) {
	s, err := format(experiment, rs)
	if err != nil {
		return "", err
	}
	return s + truncationNote(rs), nil
}

// format renders one experiment without the truncation footnote.
func format(experiment string, rs []*Report) (string, error) {
	switch experiment {
	case "table1":
		return FormatTable1(rs), nil
	case "table2":
		return FormatTable2(rs), nil
	case "table3":
		return FormatTable3(rs), nil
	case "table4":
		return FormatTable4(rs), nil
	case "table5":
		return FormatTable5(rs), nil
	case "table6":
		return FormatTable6(rs), nil
	case "table7":
		return FormatTable7(rs), nil
	case "table8":
		return FormatTable8(rs), nil
	case "table9":
		return FormatTable9(rs), nil
	case "table10":
		return FormatTable10(rs), nil
	case "fig1":
		return FormatFigure1(rs), nil
	case "fig3":
		return FormatFigure3(rs), nil
	case "fig4":
		return FormatFigure4(rs), nil
	case "fig5":
		return FormatFigure5(rs), nil
	case "fig6":
		return FormatFigure6(rs), nil
	case "ext-types":
		return FormatTypeBreakdown(rs), nil
	case "ext-vpred":
		return FormatVPred(rs), nil
	case "ext-profile":
		return FormatProfile(rs), nil
	case "ext-vprofile":
		return FormatVProfile(rs), nil
	}
	return "", fmt.Errorf("repro: unknown experiment %q (have %v)", experiment, experimentOrder)
}

// FormatAll renders every table and figure in paper order, with a
// single truncation footnote at the end when any report is partial.
func FormatAll(rs []*Report) string {
	var b strings.Builder
	for _, e := range experimentOrder {
		s, _ := format(e, rs)
		b.WriteString(s)
		b.WriteByte('\n')
	}
	b.WriteString(truncationNote(rs))
	return b.String()
}
