package repro_test

// Pipeline-level differential: the block-translated and single-step
// interpreted executions must produce byte-identical canonical reports
// for every workload — the same invariant the golden corpus pins, but
// checked directly against each other so it holds even when the corpus
// is being regenerated. The machine-level differential (event streams,
// faults, final state) lives in internal/cpu/translate_test.go.

import (
	"bytes"
	"context"
	"testing"

	"repro"
)

func TestDifferentialReports(t *testing.T) {
	ctx := context.Background()
	translated, err := repro.RunAll(ctx, repro.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	interpCfg := repro.QuickConfig()
	interpCfg.DisableTranslation = true
	interpreted, err := repro.RunAll(ctx, interpCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(translated) != len(interpreted) {
		t.Fatalf("report count: translated %d, interpreted %d", len(translated), len(interpreted))
	}
	for i, tr := range translated {
		in := interpreted[i]
		if tr.Benchmark != in.Benchmark {
			t.Fatalf("report order diverged: %s vs %s", tr.Benchmark, in.Benchmark)
		}
		got, err := repro.CanonicalReportJSON(tr)
		if err != nil {
			t.Fatalf("%s: %v", tr.Benchmark, err)
		}
		want, err := repro.CanonicalReportJSON(in)
		if err != nil {
			t.Fatalf("%s: %v", in.Benchmark, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: translated report diverged from interpreted\n%s",
				tr.Benchmark, firstDiff(want, got))
		}
	}
}
