package repro_test

// Acceptance tests for the fault-tolerant run path at the public API:
// a panicking workload and a stalled workload fail alone, the healthy
// workloads' tables are byte-identical to an uninjected run, and runs
// cut short surface well-formed partial reports.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// resilienceWindow is small enough to run the full workload set twice
// in a test, large enough that the injected fault points land inside
// the measure window.
func resilienceWindow() repro.Config {
	return repro.Config{SkipInstructions: 20_000, MeasureInstructions: 100_000}
}

// TestFaultedRunIsolatesFailures is the headline acceptance test: with
// an observer panic injected into one workload and a full stall (caught
// by the watchdog) injected into another, RunAll still completes, the
// two faulted workloads report their own failures, and every other
// workload's tables are byte-identical to a clean run.
func TestFaultedRunIsolatesFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload set in -short mode")
	}
	ctx := context.Background()

	clean, err := repro.RunAll(ctx, resilienceWindow())
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}

	cfg := resilienceWindow()
	cfg.WatchdogInterval = 500 * time.Millisecond
	cfg.Faults = faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.ObserverPanic, Workload: "goban", At: 60_000, Message: "injected goban panic"},
		faultinject.Fault{Kind: faultinject.SlowStep, Workload: "lzw", At: 70_000, Delay: time.Minute},
	)
	reports, err := repro.RunAll(ctx, cfg)
	if err == nil {
		t.Fatal("faulted run must surface an error")
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) || pe.Benchmark != "goban" {
		t.Errorf("aggregated error lacks goban's PanicError: %v", err)
	}
	var we *core.WatchdogError
	if !errors.As(err, &we) || we.Benchmark != "lzw" {
		t.Errorf("aggregated error lacks lzw's WatchdogError: %v", err)
	}

	// The stalled workload degrades to a truncated partial report with
	// the instructions measured before the stall.
	var lzw *repro.Report
	var healthy []*repro.Report
	for _, r := range reports {
		switch {
		case r.Benchmark == "lzw":
			lzw = r
		case !r.Truncated:
			healthy = append(healthy, r)
		}
	}
	if lzw == nil {
		t.Fatal("stalled lzw run did not yield a partial report")
	}
	if !lzw.Truncated || lzw.TruncatedReason != core.ReasonWatchdog {
		t.Errorf("lzw partial report = Truncated:%v reason:%q, want watchdog truncation",
			lzw.Truncated, lzw.TruncatedReason)
	}
	if lzw.MeasuredInstructions == 0 || lzw.MeasuredInstructions >= 100_000 {
		t.Errorf("lzw measured %d instructions, want a mid-window count", lzw.MeasuredInstructions)
	}
	if lzw.Metrics == nil {
		t.Error("lzw partial report lost its run metrics")
	}

	// Every untouched workload renders byte-identically to the clean
	// run: fault injection in one goroutine cannot perturb another's
	// deterministic simulation.
	var cleanSurvivors []*repro.Report
	for _, r := range clean {
		if r.Benchmark != "goban" && r.Benchmark != "lzw" {
			cleanSurvivors = append(cleanSurvivors, r)
		}
	}
	if len(healthy) != len(cleanSurvivors) {
		t.Fatalf("faulted run kept %d healthy reports, want %d", len(healthy), len(cleanSurvivors))
	}
	if got, want := repro.FormatAll(healthy), repro.FormatAll(cleanSurvivors); got != want {
		t.Error("healthy workloads' tables differ from the uninjected run")
	}
}

// TestRunWorkloadCompileFault checks the compile-time fault point:
// the error surfaces before any simulation and no report is produced.
func TestRunWorkloadCompileFault(t *testing.T) {
	cfg := repro.QuickConfig()
	cfg.Faults = faultinject.NewPlan(faultinject.Fault{Kind: faultinject.CompileFail, Workload: "m88k"})
	r, err := repro.RunWorkload(context.Background(), "m88k", cfg)
	if err == nil || !strings.Contains(err.Error(), "injected compile failure") {
		t.Fatalf("err = %v, want injected compile failure", err)
	}
	if r != nil {
		t.Errorf("compile failure produced a report: %+v", r)
	}
}

// TestRunSourceTimeoutPartialReport drives the timeout path through
// RunSource and checks the partial report travels with the error.
func TestRunSourceTimeoutPartialReport(t *testing.T) {
	cfg := repro.Config{
		Timeout: 30 * time.Millisecond,
		Faults:  faultinject.NewPlan(faultinject.Fault{Kind: faultinject.SlowStep, At: 1_000, Delay: time.Hour}),
	}
	r, err := repro.RunSource(context.Background(), `
int main() {
	int i;
	for (i = 0; i < 1000000; i++) {}
	return 0;
}`, nil, "slowpoke", cfg)
	var te *core.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if r == nil || !r.Truncated || r.TruncatedReason != core.ReasonTimeout {
		t.Fatalf("partial report = %+v, want timeout truncation", r)
	}
}

// TestFormatMarksTruncatedReports checks the table renderers: truncated
// rows carry a dagger and a footnote, and clean reports render exactly
// as before.
func TestFormatMarksTruncatedReports(t *testing.T) {
	full := &repro.Report{Benchmark: "alpha"}
	part := &repro.Report{Benchmark: "beta", Truncated: true,
		TruncatedReason: core.ReasonWatchdog, MeasuredInstructions: 12_345}

	cleanOnly, err := repro.Format("table1", []*repro.Report{full})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cleanOnly, "†") {
		t.Error("clean report rendered with a truncation mark")
	}

	mixed, err := repro.Format("table1", []*repro.Report{full, part})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mixed, "beta†") {
		t.Errorf("truncated row lacks the dagger:\n%s", mixed)
	}
	if strings.Contains(mixed, "alpha†") {
		t.Errorf("clean row gained a dagger:\n%s", mixed)
	}
	if !strings.Contains(mixed, "watchdog") || !strings.Contains(mixed, "truncated run") {
		t.Errorf("missing truncation footnote:\n%s", mixed)
	}

	all := repro.FormatAll([]*repro.Report{full, part})
	if n := strings.Count(all, "truncated run, statistics cover a partial window"); n != 1 {
		t.Errorf("FormatAll renders %d truncation footnotes, want exactly 1", n)
	}
}
