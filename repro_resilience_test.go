package repro_test

// Acceptance tests for the fault-tolerant run path at the public API:
// a panicking workload and a stalled workload fail alone, the healthy
// workloads' tables are byte-identical to an uninjected run, and runs
// cut short surface well-formed partial reports.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/reportserver"
	"repro/internal/resultcache"
)

// resilienceWindow is small enough to run the full workload set twice
// in a test, large enough that the injected fault points land inside
// the measure window.
func resilienceWindow() repro.Config {
	return repro.Config{SkipInstructions: 20_000, MeasureInstructions: 100_000}
}

// TestFaultedRunIsolatesFailures is the headline acceptance test: with
// an observer panic injected into one workload and a full stall (caught
// by the watchdog) injected into another, RunAll still completes, the
// two faulted workloads report their own failures, and every other
// workload's tables are byte-identical to a clean run.
func TestFaultedRunIsolatesFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload set in -short mode")
	}
	ctx := context.Background()

	clean, err := repro.RunAll(ctx, resilienceWindow())
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}

	cfg := resilienceWindow()
	cfg.WatchdogInterval = 500 * time.Millisecond
	cfg.Faults = faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.ObserverPanic, Workload: "goban", At: 60_000, Message: "injected goban panic"},
		faultinject.Fault{Kind: faultinject.SlowStep, Workload: "lzw", At: 70_000, Delay: time.Minute},
	)
	reports, err := repro.RunAll(ctx, cfg)
	if err == nil {
		t.Fatal("faulted run must surface an error")
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) || pe.Benchmark != "goban" {
		t.Errorf("aggregated error lacks goban's PanicError: %v", err)
	}
	var we *core.WatchdogError
	if !errors.As(err, &we) || we.Benchmark != "lzw" {
		t.Errorf("aggregated error lacks lzw's WatchdogError: %v", err)
	}

	// The stalled workload degrades to a truncated partial report with
	// the instructions measured before the stall.
	var lzw *repro.Report
	var healthy []*repro.Report
	for _, r := range reports {
		switch {
		case r.Benchmark == "lzw":
			lzw = r
		case !r.Truncated:
			healthy = append(healthy, r)
		}
	}
	if lzw == nil {
		t.Fatal("stalled lzw run did not yield a partial report")
	}
	if !lzw.Truncated || lzw.TruncatedReason != core.ReasonWatchdog {
		t.Errorf("lzw partial report = Truncated:%v reason:%q, want watchdog truncation",
			lzw.Truncated, lzw.TruncatedReason)
	}
	if lzw.MeasuredInstructions == 0 || lzw.MeasuredInstructions >= 100_000 {
		t.Errorf("lzw measured %d instructions, want a mid-window count", lzw.MeasuredInstructions)
	}
	if lzw.Metrics == nil {
		t.Error("lzw partial report lost its run metrics")
	}

	// Every untouched workload renders byte-identically to the clean
	// run: fault injection in one goroutine cannot perturb another's
	// deterministic simulation.
	var cleanSurvivors []*repro.Report
	for _, r := range clean {
		if r.Benchmark != "goban" && r.Benchmark != "lzw" {
			cleanSurvivors = append(cleanSurvivors, r)
		}
	}
	if len(healthy) != len(cleanSurvivors) {
		t.Fatalf("faulted run kept %d healthy reports, want %d", len(healthy), len(cleanSurvivors))
	}
	if got, want := repro.FormatAll(healthy), repro.FormatAll(cleanSurvivors); got != want {
		t.Error("healthy workloads' tables differ from the uninjected run")
	}
}

// TestRunWorkloadCompileFault checks the compile-time fault point:
// the error surfaces before any simulation and no report is produced.
func TestRunWorkloadCompileFault(t *testing.T) {
	cfg := repro.QuickConfig()
	cfg.Faults = faultinject.NewPlan(faultinject.Fault{Kind: faultinject.CompileFail, Workload: "m88k"})
	r, err := repro.RunWorkload(context.Background(), "m88k", cfg)
	if err == nil || !strings.Contains(err.Error(), "injected compile failure") {
		t.Fatalf("err = %v, want injected compile failure", err)
	}
	if r != nil {
		t.Errorf("compile failure produced a report: %+v", r)
	}
}

// TestRunSourceTimeoutPartialReport drives the timeout path through
// RunSource and checks the partial report travels with the error.
func TestRunSourceTimeoutPartialReport(t *testing.T) {
	cfg := repro.Config{
		Timeout: 30 * time.Millisecond,
		Faults:  faultinject.NewPlan(faultinject.Fault{Kind: faultinject.SlowStep, At: 1_000, Delay: time.Hour}),
	}
	r, err := repro.RunSource(context.Background(), `
int main() {
	int i;
	for (i = 0; i < 1000000; i++) {}
	return 0;
}`, nil, "slowpoke", cfg)
	var te *core.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if r == nil || !r.Truncated || r.TruncatedReason != core.ReasonTimeout {
		t.Fatalf("partial report = %+v, want timeout truncation", r)
	}
}

// TestFormatMarksTruncatedReports checks the table renderers: truncated
// rows carry a dagger and a footnote, and clean reports render exactly
// as before.
func TestFormatMarksTruncatedReports(t *testing.T) {
	full := &repro.Report{Benchmark: "alpha"}
	part := &repro.Report{Benchmark: "beta", Truncated: true,
		TruncatedReason: core.ReasonWatchdog, MeasuredInstructions: 12_345}

	cleanOnly, err := repro.Format("table1", []*repro.Report{full})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cleanOnly, "†") {
		t.Error("clean report rendered with a truncation mark")
	}

	mixed, err := repro.Format("table1", []*repro.Report{full, part})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mixed, "beta†") {
		t.Errorf("truncated row lacks the dagger:\n%s", mixed)
	}
	if strings.Contains(mixed, "alpha†") {
		t.Errorf("clean row gained a dagger:\n%s", mixed)
	}
	if !strings.Contains(mixed, "watchdog") || !strings.Contains(mixed, "truncated run") {
		t.Errorf("missing truncation footnote:\n%s", mixed)
	}

	all := repro.FormatAll([]*repro.Report{full, part})
	if n := strings.Count(all, "truncated run, statistics cover a partial window"); n != 1 {
		t.Errorf("FormatAll renders %d truncation footnotes, want exactly 1", n)
	}
}

// chaosGolden reads the golden corpus entry for a workload.
func chaosGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
	if err != nil {
		t.Fatalf("golden corpus missing for %s: %v", name, err)
	}
	return data
}

// TestChaosOverloadedServer is the chaos acceptance test for the
// overload-hardened serving stack: 50 concurrent clients hammer a
// server with two simulation slots while three workloads are poisoned
// with injected faults (a simulator fault, an observer panic, and a
// stall caught by the watchdog). The invariants under chaos:
//
//   - every 200 response carries golden-corpus bytes — load shedding
//     and fault isolation never corrupt a served report;
//   - a poisoned workload is never served 200 (it has no known-good
//     copy to go stale on), and its breaker opens after at most two
//     burned simulations;
//   - each healthy workload simulates exactly once, and only healthy
//     reports enter the cache (no poisoning);
//   - /healthz reports degraded with the poisoned breakers open.
//
// Faults are injected inside the Run override — per-call, per-workload
// — so the server's RunConfig stays clean and cacheable, exactly the
// shape of a backend that fails for reasons the frontend cannot see.
// INSTREP_STRESS=<duration> extends the traffic phase (make stress).
func TestChaosOverloadedServer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	poisoned := map[string]bool{"lisp": true, "cc1": true, "odb": true}
	cfg := repro.QuickConfig()

	var simMu sync.Mutex
	sims := map[string]int{}
	run := func(ctx context.Context, name string, rcfg repro.Config) (*repro.Report, error) {
		simMu.Lock()
		sims[name]++
		simMu.Unlock()
		switch name {
		case "lisp":
			rcfg.Faults = faultinject.NewPlan(faultinject.Fault{
				Kind: faultinject.SimFault, Workload: "lisp", At: 300_000})
		case "cc1":
			rcfg.Faults = faultinject.NewPlan(faultinject.Fault{
				Kind: faultinject.ObserverPanic, Workload: "cc1", At: 300_000,
				Message: "injected chaos panic"})
		case "odb":
			rcfg.Faults = faultinject.NewPlan(faultinject.Fault{
				Kind: faultinject.SlowStep, Workload: "odb", At: 300_000,
				Delay: time.Minute})
			rcfg.WatchdogInterval = 300 * time.Millisecond
		}
		return repro.RunWorkload(ctx, name, rcfg)
	}

	cache, err := resultcache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := reportserver.New(reportserver.Config{
		RunConfig:         cfg,
		Cache:             cache,
		MaxConcurrentSims: 2,
		QueueDepth:        2,
		BreakerThreshold:  2,
		BreakerCooldown:   time.Hour,
		ServeStale:        true,
		Run:               run,
	})
	srv.MarkReady()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	names := repro.Workloads()
	golden := map[string][]byte{}
	for _, name := range names {
		if !poisoned[name] {
			golden[name] = chaosGolden(t, name)
		}
	}

	// Traffic phase: 50 clients, each walking the workload list from a
	// different offset so every workload sees concurrent demand.
	stress := 0 * time.Second
	if v := os.Getenv("INSTREP_STRESS"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("INSTREP_STRESS: %v", err)
		}
		stress = d
	}
	deadline := time.Now().Add(stress)
	const clients = 50
	type response struct {
		workload string
		code     int
		body     []byte
	}
	responses := make(chan response, 4*clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for pass := 0; ; pass++ {
				name := names[(i+pass)%len(names)]
				resp, err := http.Get(ts.URL + "/v1/report/" + name)
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				responses <- response{name, resp.StatusCode, body}
				// Base mode: 4 requests per client. Stress mode: loop
				// until the INSTREP_STRESS deadline.
				if pass >= 3 && !time.Now().Before(deadline) {
					return
				}
			}
		}(i)
	}
	go func() { wg.Wait(); close(responses) }()

	for r := range responses {
		if r.code == http.StatusOK {
			if poisoned[r.workload] {
				t.Errorf("poisoned workload %s served 200", r.workload)
			} else if !bytes.Equal(r.body, golden[r.workload]) {
				t.Errorf("200 response for %s is not golden-corpus bytes", r.workload)
			}
		}
	}

	// Settled state: every healthy workload serves golden bytes from
	// the cache; every poisoned workload fails fast on its open breaker.
	for _, name := range names {
		code, body := func() (int, []byte) {
			resp, err := http.Get(ts.URL + "/v1/report/" + name)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, b
		}()
		if poisoned[name] {
			// Traffic may have shed this workload's requests before its
			// breaker reached threshold; at most two more failures (500)
			// are allowed before it must fail fast.
			for attempt := 0; code != http.StatusServiceUnavailable && attempt < 3; attempt++ {
				if code == http.StatusOK {
					t.Fatalf("poisoned %s served 200", name)
				}
				resp, err := http.Get(ts.URL + "/v1/report/" + name)
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				code = resp.StatusCode
			}
			if code != http.StatusServiceUnavailable {
				t.Errorf("poisoned %s after chaos: %d, want 503 fast-fail", name, code)
			}
			continue
		}
		if code != http.StatusOK || !bytes.Equal(body, golden[name]) {
			t.Errorf("healthy %s after chaos: code=%d golden=%v", name, code, bytes.Equal(body, golden[name]))
		}
	}

	simMu.Lock()
	for _, name := range names {
		switch {
		case poisoned[name] && sims[name] > 2:
			t.Errorf("poisoned %s simulated %d times, breaker should cap at 2", name, sims[name])
		case !poisoned[name] && sims[name] != 1:
			t.Errorf("healthy %s simulated %d times, want exactly 1", name, sims[name])
		}
	}
	simMu.Unlock()
	if got := cache.Stats.Stores.Value(); got != 5 {
		t.Errorf("cache stores = %d, want 5 (healthy workloads only — no poisoning)", got)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hbody), `"degraded"`) {
		t.Errorf("healthz after chaos: code=%d body=%s", resp.StatusCode, hbody)
	}
	for name := range poisoned {
		if !strings.Contains(string(hbody), `"`+name+`"`) {
			t.Errorf("healthz open_breakers missing %s: %s", name, hbody)
		}
	}
}
