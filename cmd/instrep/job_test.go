package main

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestSIGTERMTriggersGracefulShutdown pins the container-stop
// contract: the shutdown context every command runs under is canceled
// by SIGTERM, not just ^C, so `docker stop` / Kubernetes pod
// termination drains the serve daemon instead of hard-killing it.
func TestSIGTERMTriggersGracefulShutdown(t *testing.T) {
	found := false
	for _, sig := range shutdownSignals {
		if sig == syscall.SIGTERM {
			found = true
		}
	}
	if !found {
		t.Fatalf("shutdownSignals = %v, missing SIGTERM", shutdownSignals)
	}

	// Behavioral check: install the handler, send ourselves SIGTERM,
	// and require the context to cancel (the default disposition would
	// kill the process — the handler existing is the point).
	ctx, stop := notifyContext(context.Background())
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the shutdown context")
	}
}

// TestJobClientArgValidation pins the CLI surface errors that need no
// server: missing subcommand, unknown subcommand, missing -bench,
// missing job ID.
func TestJobClientArgValidation(t *testing.T) {
	ctx := context.Background()
	if err := cmdJob(ctx, nil); err == nil {
		t.Error("job with no subcommand succeeded")
	}
	if err := cmdJob(ctx, []string{"bogus"}); err == nil {
		t.Error("unknown subcommand succeeded")
	}
	if err := cmdJobSubmit(ctx, nil); err == nil {
		t.Error("submit without -bench succeeded")
	}
	if err := cmdJobStatus(ctx, nil); err == nil {
		t.Error("status without ID succeeded")
	}
	if err := cmdJobFetch(ctx, nil); err == nil {
		t.Error("fetch without ID succeeded")
	}
}

func TestNormalizeAddr(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8100":       "http://localhost:8100",
		"http://10.0.0.1:80/":  "http://10.0.0.1:80",
		"https://reports.corp": "https://reports.corp",
		"127.0.0.1:9999":       "http://127.0.0.1:9999",
	} {
		if got := normalizeAddr(in); got != want {
			t.Errorf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPollDelayClamps(t *testing.T) {
	if d := pollDelay(0); d != 200*time.Millisecond {
		t.Errorf("pollDelay(0) = %v", d)
	}
	if d := pollDelay(2); d != 2*time.Second {
		t.Errorf("pollDelay(2) = %v", d)
	}
	if d := pollDelay(3600); d != 5*time.Second {
		t.Errorf("pollDelay(3600) = %v", d)
	}
}
