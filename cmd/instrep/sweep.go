package main

// instrep sweep: the design-space sweep front end. Axes come from a
// JSON spec file or from comma-list flags; cells execute through the
// same cache/checkpoint-aware repro.Runner the run and serve commands
// use, and the merged comparative artifact renders as canonical CSV
// and/or JSON. See internal/sweep and DESIGN.md §17.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/reuse"
	"repro/internal/sweep"
)

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	specFile := fs.String("spec", "", "JSON sweep spec file (\"-\" = stdin); exclusive with the axis flags")
	entries := fs.String("entries", "1024,2048,4096,8192,16384,32768,65536", "comma-separated reuse-buffer entry counts")
	assoc := fs.String("assoc", "4", "comma-separated associativities")
	policy := fs.String("policy", "lru", "comma-separated replacement policies ("+strings.Join(reuse.PolicyNames(), ", ")+")")
	bench := fs.String("bench", "all", "comma-separated workloads, or 'all'")
	skip := fs.Uint64("skip", 1_000_000, "instructions to skip before measuring (every cell)")
	measure := fs.Uint64("measure", 5_000_000, "instructions to measure (0 = to completion)")
	instances := fs.Int("instances", 0, "per-instruction instance buffer limit (0 = paper's 2000)")
	variant := fs.Int("input-variant", 1, "workload input data set (1 = standard, 2 = alternate)")
	parallel := fs.Int("parallel", 0, "max cells simulated concurrently (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "per-cell wall-clock limit (0 = none)")
	watchdog := fs.Duration("watchdog", 0, "abort a cell making no retire progress for this long (0 = off)")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory: cells cached by prior runs or sweeps are served without simulating (\"\" = off)")
	checkpointDir := fs.String("checkpoint-dir", "", "crash-resume checkpoint directory for cell simulations (\"\" = off)")
	checkpointEvery := fs.Uint64("checkpoint-every", 0, "retired instructions between checkpoints (0 = wall-clock pacing; needs -checkpoint-dir)")
	resume := fs.Bool("resume", false, "resume interrupted cell runs from -checkpoint-dir snapshots")
	csvOut := fs.String("csv", "-", "write the canonical CSV artifact to this file (\"-\" = stdout, \"\" = off)")
	jsonOut := fs.String("json", "", "write the canonical JSON artifact to this file (\"-\" = stdout, \"\" = off)")
	progress := fs.Bool("progress", false, "render a live cell-completion ticker on stderr")
	dryRun := fs.Bool("dry-run", false, "expand and print the cell grid without simulating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("sweep takes no positional arguments")
	}
	if *checkpointDir == "" {
		if *checkpointEvery > 0 {
			return fmt.Errorf("-checkpoint-every needs -checkpoint-dir")
		}
		if *resume {
			return fmt.Errorf("-resume needs -checkpoint-dir")
		}
	}

	sp, err := sweepSpec(fs, *specFile, *entries, *assoc, *policy, *bench,
		*skip, *measure, *instances, *variant)
	if err != nil {
		return err
	}
	cells, err := sweep.Expand(sp)
	if err != nil {
		return err
	}
	if *dryRun {
		for _, c := range cells {
			fmt.Println(c.ID())
		}
		fmt.Fprintf(os.Stderr, "instrep: %d cells\n", len(cells))
		return nil
	}

	runner := &repro.Runner{}
	if *cacheDir != "" {
		// Size the memory tier to the grid so a warm re-run of the
		// whole sweep stays resident (the default 64 would thrash on
		// bigger grids).
		c, err := resultcache.NewWith(resultcache.Options{
			MaxEntries: max(resultcache.DefaultMaxEntries, 2*len(cells)),
			Dir:        *cacheDir,
		})
		if err != nil {
			return fmt.Errorf("opening -cache-dir: %w", err)
		}
		runner.Cache = c
	}
	var cellsResumed atomic.Int64
	if *checkpointDir != "" {
		store, err := checkpoint.Open(*checkpointDir)
		if err != nil {
			return fmt.Errorf("opening -checkpoint-dir: %w", err)
		}
		runner.Checkpoint = &repro.CheckpointPolicy{
			Store:  store,
			Every:  *checkpointEvery,
			Resume: *resume,
			Notify: sweepResumeNotify(&cellsResumed),
		}
	}

	eng := &sweep.Engine{
		Run:      runner.RunWorkload,
		Parallel: *parallel,
		Shape: func(c *core.Config) {
			c.Timeout = *timeout
			c.WatchdogInterval = *watchdog
		},
	}
	if *progress {
		var mu sync.Mutex
		eng.Progress = func(p sweep.Progress) {
			mu.Lock()
			defer mu.Unlock()
			status := "ok"
			if p.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "\r\x1b[K[%d/%d] %s %s", p.Done, p.Total, p.Cell.ID(), status)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	res, runErr := eng.Execute(ctx, sp)
	if res == nil {
		return runErr
	}
	if *resume {
		resumed := cellsResumed.Load()
		fmt.Fprintf(os.Stderr, "instrep: %d cells resumed from checkpoints, %d started fresh\n",
			resumed, int64(len(cells))-resumed)
	}
	if runErr != nil {
		// Fail-soft: the surviving cells still render below (failed
		// rows carry their error text), and the exit status reflects
		// the partial failure.
		fmt.Fprintf(os.Stderr, "instrep: rendering partial sweep: %v\n", runErr)
	}
	if err := writeArtifact(*csvOut, res.CSV()); err != nil {
		return err
	}
	if *jsonOut != "" {
		js, err := res.JSON()
		if err != nil {
			return err
		}
		if err := writeArtifact(*jsonOut, js); err != nil {
			return err
		}
	}
	return runErr
}

// sweepSpec resolves the sweep's spec: a JSON file when -spec is
// given (then the axis flags must stay untouched — half-file,
// half-flag grids are a recipe for measuring the wrong thing), flags
// otherwise.
func sweepSpec(fs *flag.FlagSet, specFile, entries, assoc, policy, bench string,
	skip, measure uint64, instances, variant int) (*sweep.Spec, error) {
	if specFile != "" {
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "entries", "assoc", "policy", "bench", "skip", "measure", "instances", "input-variant":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return nil, fmt.Errorf("-spec is exclusive with the axis flags (%s)", strings.Join(conflict, ", "))
		}
		var data []byte
		var err error
		if specFile == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(specFile)
		}
		if err != nil {
			return nil, fmt.Errorf("reading -spec: %w", err)
		}
		return sweep.ParseSpec(data)
	}
	sp := &sweep.Spec{
		Skip:         skip,
		Measure:      measure,
		MaxInstances: instances,
		InputVariant: variant,
	}
	var err error
	if sp.Entries, err = intList("entries", entries); err != nil {
		return nil, err
	}
	if sp.Assoc, err = intList("assoc", assoc); err != nil {
		return nil, err
	}
	sp.Policies = splitList(policy)
	if bench != "all" {
		sp.Workloads = splitList(bench)
	}
	return sp, nil
}

// sweepResumeNotify builds the checkpoint Notify for a sweep: each
// cell restored from a snapshot bumps the local tally (the post-sweep
// stderr line) and the sweep_cells_resumed counter, which lands in
// obs.Default next to the engine's other sweep_* metrics. Snapshot
// writes pass through uncounted.
func sweepResumeNotify(resumed *atomic.Int64) func(repro.CheckpointEvent) {
	return func(ev repro.CheckpointEvent) {
		if ev.Resumed {
			resumed.Add(1)
			obs.Default.Counter("sweep_cells_resumed").Inc()
		}
	}
}

// splitList splits a comma list, trimming blanks ("a, b" = ["a","b"]).
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// intList parses a comma list of integers for an axis flag.
func intList(name, s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("invalid -%s value %q", name, part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s is empty", name)
	}
	return out, nil
}

// writeArtifact writes an artifact to path ("-" = stdout).
func writeArtifact(path string, data []byte) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
