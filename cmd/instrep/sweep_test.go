package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"repro"
	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/sweep"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it wrote.
func captureStdout(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	fnErr := fn()
	wp.Close()
	os.Stdout = old
	out, err := io.ReadAll(rp)
	if err != nil {
		t.Fatal(err)
	}
	return out, fnErr
}

func TestSweepDryRun(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdSweep(context.Background(), []string{
			"-dry-run", "-entries", "64,256", "-assoc", "1,4",
			"-policy", "lru,fifo", "-bench", "lzw", "-skip", "10", "-measure", "100"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 8 {
		t.Fatalf("dry run printed %d cells, want 8:\n%s", len(lines), out)
	}
	if lines[0] != "s10-m100-e64-a1-lru/lzw" {
		t.Errorf("first cell %q", lines[0])
	}
}

func TestSweepArtifactFilesAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates in -short mode")
	}
	dir := t.TempDir()
	args := func(tag string) []string {
		return []string{
			"-entries", "64,256", "-assoc", "1", "-policy", "lru,random",
			"-bench", "lzw,scrip", "-skip", "1000", "-measure", "20000",
			"-csv", filepath.Join(dir, tag+".csv"),
			"-json", filepath.Join(dir, tag+".json"),
		}
	}
	out, err := captureStdout(t, func() error {
		return cmdSweep(context.Background(), append(args("a"), "-parallel", "1"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("file-directed sweep wrote %d bytes to stdout", len(out))
	}
	if _, err := captureStdout(t, func() error {
		return cmdSweep(context.Background(), append(args("b"), "-parallel", "4"))
	}); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".csv", ".json"} {
		a, err := os.ReadFile(filepath.Join(dir, "a"+ext))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "b"+ext))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s artifacts differ across -parallel 1 vs 4", ext)
		}
		if len(a) == 0 {
			t.Errorf("empty %s artifact", ext)
		}
	}
	csv, _ := os.ReadFile(filepath.Join(dir, "a.csv"))
	// 2 entries × 1 assoc × 2 policies × 2 workloads = 8 cells + 4 means.
	if got := bytes.Count(csv, []byte("\n")); got != 1+8+4 {
		t.Errorf("CSV has %d lines, want 13:\n%s", got, csv)
	}
}

func TestSweepSpecFile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates in -short mode")
	}
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(
		`{"entries":[64],"assoc":[1,2],"policies":["fifo"],"workloads":["lzw"],"skip":1000,"measure":20000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return cmdSweep(context.Background(), []string{"-spec", spec})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "cell,lzw,64,2,fifo,1000,20000,") {
		t.Errorf("spec-file sweep output missing expected cell:\n%s", out)
	}
}

func TestSweepFlagErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"spec plus axis flag", []string{"-spec", "x.json", "-entries", "64"}, "exclusive"},
		{"positional arg", []string{"extra"}, "positional"},
		{"bad entries", []string{"-entries", "64,zebra"}, `invalid -entries value "zebra"`},
		{"empty assoc", []string{"-assoc", ","}, "-assoc is empty"},
		{"bad policy", []string{"-policy", "mru", "-dry-run"}, "unknown replacement policy"},
		{"bad workload", []string{"-bench", "nope", "-dry-run"}, "unknown workload"},
		{"resume without dir", []string{"-resume"}, "-resume needs -checkpoint-dir"},
		{"every without dir", []string{"-checkpoint-every", "5"}, "-checkpoint-every needs -checkpoint-dir"},
		{"missing spec file", []string{"-spec", "/nonexistent/spec.json"}, "reading -spec"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := cmdSweep(context.Background(), c.args)
			if err == nil {
				t.Fatalf("cmdSweep(%v) succeeded", c.args)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q, want substring %q", err, c.wantErr)
			}
		})
	}
}

// TestSweepResumeReportsRestoredCells pins the -resume accounting: a
// cell interrupted mid-simulation leaves a snapshot; re-sweeping the
// same grid with -resume restores it, logs "N cells resumed from
// checkpoints", and bumps the sweep_cells_resumed counter.
func TestSweepResumeReportsRestoredCells(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates in -short mode")
	}
	ckptDir := t.TempDir()

	// Interrupt one cell run deterministically: cancel on the first
	// snapshot write. The config comes from sweep.Expand so the
	// fingerprint matches what the sweep below computes.
	sp := &sweep.Spec{
		Entries: []int{64}, Assoc: []int{1}, Policies: []string{"lru"},
		Workloads: []string{"lzw"}, Skip: 1000, Measure: 600000, InputVariant: 1,
	}
	cells, err := sweep.Expand(sp)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runner := &repro.Runner{Checkpoint: &repro.CheckpointPolicy{
		Store: store,
		Every: 100000,
		Notify: func(ev repro.CheckpointEvent) {
			if !ev.Resumed {
				cancel()
			}
		},
	}}
	runner.RunWorkload(ctx, cells[0].Workload, cells[0].Config) // truncated on purpose
	if keys := store.Keys(); len(keys) != 1 {
		t.Fatalf("interrupted run left %d snapshots, want 1", len(keys))
	}

	before := obs.Default.Counter("sweep_cells_resumed").Value()
	var stderr bytes.Buffer
	oldStderr := os.Stderr
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = wp
	_, sweepErr := captureStdout(t, func() error {
		return cmdSweep(context.Background(), []string{
			"-entries", "64", "-assoc", "1", "-policy", "lru", "-bench", "lzw",
			"-skip", "1000", "-measure", "600000",
			"-checkpoint-dir", ckptDir, "-resume"})
	})
	wp.Close()
	os.Stderr = oldStderr
	io.Copy(&stderr, rp)
	if sweepErr != nil {
		t.Fatalf("resumed sweep failed: %v\nstderr: %s", sweepErr, stderr.String())
	}
	if got := obs.Default.Counter("sweep_cells_resumed").Value() - before; got != 1 {
		t.Errorf("sweep_cells_resumed advanced by %d, want 1", got)
	}
	if !strings.Contains(stderr.String(), "1 cells resumed from checkpoints, 0 started fresh") {
		t.Errorf("resume log line missing:\n%s", stderr.String())
	}
	// The finished cell's snapshot is gone: nothing to resume twice.
	if keys := store.Keys(); len(keys) != 0 {
		t.Errorf("completed cell left snapshots behind: %v", keys)
	}
}
