// Command instrep reproduces the experiments of "An Empirical Analysis
// of Instruction Repetition" (Sodani & Sohi, ASPLOS 1998).
//
// Usage:
//
//	instrep list
//	    List the benchmark workload analogs.
//
//	instrep run [-bench NAME] [-experiment ID] [-skip N] [-measure N]
//	            [-instances N] [-reuse-entries N] [-reuse-assoc N]
//	    Run the analysis pipeline and print the requested tables and
//	    figures ("all" runs every benchmark / renders everything).
//
//	instrep exec [-input FILE] [-max N] PROGRAM.c
//	    Compile a MiniC program and execute it on the simulator,
//	    echoing its output (a development aid for writing workloads).
//
//	instrep asm PROGRAM.c
//	    Compile a MiniC program and print the generated assembly.
//
//	instrep disasm PROGRAM.c | -workload NAME
//	    Disassemble a compiled program or workload: function
//	    boundaries, encodings, mnemonics, resolved targets.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/cpu"
	"repro/internal/minic"
	"repro/internal/program"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "exec":
		err = cmdExec(os.Args[2:])
	case "asm":
		err = cmdAsm(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrep:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: instrep <command> [flags]

commands:
  list    list benchmark workloads
  run     run the repetition analyses and print tables/figures
  exec    compile and run a MiniC program
  asm     compile a MiniC program to assembly
  disasm  disassemble a compiled MiniC program or workload`)
}

func cmdList() error {
	fmt.Printf("%-8s %-10s %s\n", "name", "analog", "description")
	for _, w := range repro.WorkloadInfos() {
		fmt.Printf("%-8s %-10s %s\n", w.Name, w.Analog, w.Description)
	}
	fmt.Println("\nexperiments:", strings.Join(repro.Experiments(), " "))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", "all", "workload name or 'all'")
	experiment := fs.String("experiment", "all", "experiment id (table1..table10, fig1..fig6) or 'all'")
	skip := fs.Uint64("skip", 1_000_000, "instructions to skip before measuring")
	measure := fs.Uint64("measure", 5_000_000, "instructions to measure (0 = to completion)")
	instances := fs.Int("instances", 0, "per-instruction instance buffer limit (0 = paper's 2000)")
	reuseEntries := fs.Int("reuse-entries", 0, "reuse buffer entries (0 = paper's 8192)")
	reuseAssoc := fs.Int("reuse-assoc", 0, "reuse buffer associativity (0 = paper's 4)")
	variant := fs.Int("input-variant", 1, "workload input data set (1 = standard, 2 = alternate)")
	asJSON := fs.Bool("json", false, "emit the raw reports as JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := repro.Config{
		SkipInstructions:    *skip,
		MeasureInstructions: *measure,
		MaxInstances:        *instances,
		ReuseEntries:        *reuseEntries,
		ReuseAssoc:          *reuseAssoc,
		InputVariant:        *variant,
	}

	var reports []*repro.Report
	if *bench == "all" {
		var err error
		reports, err = repro.RunAll(cfg)
		if err != nil {
			return err
		}
	} else {
		r, err := repro.RunWorkload(*bench, cfg)
		if err != nil {
			return err
		}
		reports = []*repro.Report{r}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	if *experiment == "all" {
		fmt.Print(repro.FormatAll(reports))
		return nil
	}
	for _, e := range strings.Split(*experiment, ",") {
		s, err := repro.Format(strings.TrimSpace(e), reports)
		if err != nil {
			return err
		}
		fmt.Println(s)
	}
	return nil
}

func cmdExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	inputFile := fs.String("input", "", "file with program input bytes")
	max := fs.Uint64("max", 100_000_000, "instruction budget (0 = unlimited)")
	trace := fs.Uint64("trace", 0, "write an execution trace of the first N instructions to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("exec wants one MiniC source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var input []byte
	if *inputFile != "" {
		input, err = os.ReadFile(*inputFile)
		if err != nil {
			return err
		}
	}
	im, err := minic.Compile(string(src))
	if err != nil {
		return err
	}
	m := cpu.New(im, input)
	if *trace > 0 {
		m.Attach(cpu.NewTracer(os.Stderr, *trace))
	}
	n, err := m.Run(*max)
	os.Stdout.Write(m.Output.Bytes())
	if err != nil {
		return fmt.Errorf("after %d instructions: %w", n, err)
	}
	if m.Halted {
		fmt.Fprintf(os.Stderr, "[exit %d after %d instructions]\n", m.ExitCode, n)
	} else {
		fmt.Fprintf(os.Stderr, "[instruction budget exhausted after %d]\n", n)
	}
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	workload := fs.String("workload", "", "disassemble a bundled workload instead of a file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var im *program.Image
	if *workload != "" {
		w, ok := workloads.ByName(*workload)
		if !ok {
			return fmt.Errorf("unknown workload %q", *workload)
		}
		var err error
		im, err = w.Image()
		if err != nil {
			return err
		}
	} else {
		if fs.NArg() != 1 {
			return fmt.Errorf("disasm wants one MiniC source file or -workload NAME")
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		im, err = minic.Compile(string(src))
		if err != nil {
			return err
		}
	}
	return program.Disassemble(im, os.Stdout)
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("asm wants one MiniC source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	text, err := minic.CompileToAsm(string(src))
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
