// Command instrep reproduces the experiments of "An Empirical Analysis
// of Instruction Repetition" (Sodani & Sohi, ASPLOS 1998).
//
// Usage:
//
//	instrep list
//	    List the benchmark workload analogs.
//
//	instrep run [-bench NAME] [-experiment ID] [-skip N] [-measure N]
//	            [-instances N] [-reuse-entries N] [-reuse-assoc N]
//	            [-parallel N] [-timeout D] [-watchdog D]
//	            [-checkpoint-dir DIR] [-checkpoint-every N] [-resume]
//	            [-metrics text|json] [-progress]
//	            [-cpuprofile FILE] [-memprofile FILE]
//	    Run the analysis pipeline and print the requested tables and
//	    figures ("all" runs every benchmark / renders everything).
//	    -parallel bounds how many workloads simulate concurrently
//	    (default GOMAXPROCS); -timeout bounds each workload's wall
//	    clock and -watchdog arms a deadman abort when a workload stops
//	    retiring instructions for that long; -metrics prints the run's
//	    observability document (phase wall times, simulator counters,
//	    per-observer attributed cost, nonzero health counters) after
//	    the tables; -progress renders a live stderr ticker; the profile
//	    flags write runtime/pprof profiles.
//	    If some workloads fail, the tables for the ones that succeeded
//	    still print and the command exits nonzero. A run cut short
//	    (^C, -timeout, -watchdog) still renders what it measured: its
//	    rows carry a dagger and a truncation footnote. A first ^C
//	    cancels gracefully — tables and metrics for completed workloads
//	    still print — and a second ^C kills the process.
//	    -checkpoint-dir makes runs crash-resumable: complete simulation
//	    state is snapshotted into versioned, checksummed files — every
//	    15s of wall clock by default, or every -checkpoint-every
//	    retired instructions — and -resume continues an interrupted
//	    run from its snapshot, producing a report byte-identical to an
//	    uninterrupted run.
//	    Corrupt or foreign-version snapshots are scrubbed at startup
//	    and the run falls back to starting fresh.
//
//	instrep serve [-addr HOST:PORT] [-cache-dir DIR] [-cache-entries N]
//	              [-cache-max-bytes N] [-checkpoint-dir DIR]
//	              [-skip N] [-measure N]
//	              [-request-timeout D] [-max-concurrent-sims N]
//	              [-queue-depth N] [-breaker-threshold N]
//	              [-breaker-cooldown D] [-retry-after D]
//	              [-serve-stale=BOOL] [-trace-store N] [-trace-slow D]
//	              [-access-log FILE] [-quiet]
//	    Serve reports over HTTP backed by the content-addressed result
//	    cache: GET /v1/report/{workload} (canonical report JSON),
//	    /v1/tables/{workload} (rendered tables; "all" serves every
//	    workload, ?experiment= selects a subset), /v1/workloads,
//	    /healthz, and /metrics (JSON, or Prometheus text exposition via
//	    content negotiation). Each distinct (workload, config) pair
//	    is simulated at most once — concurrent cold requests share one
//	    simulation — then served from memory/disk. The daemon is
//	    overload-hardened: cold simulations pass a bounded admission
//	    gate (-max-concurrent-sims slots, -queue-depth FIFO waiters,
//	    excess shed with 503 + Retry-After), workloads failing
//	    -breaker-threshold times in a row trip a per-workload circuit
//	    breaker for -breaker-cooldown, and -serve-stale answers shed or
//	    failed requests with the last known-good report under an
//	    X-Instrep-Stale header. -cache-max-bytes bounds the disk cache
//	    (LRU eviction); orphaned temp files from a crash are scrubbed
//	    at startup. -checkpoint-dir makes simulations crash-resumable:
//	    a daemon killed mid-simulation resumes from the last snapshot
//	    at the next request for the same report, and checkpoint_*
//	    counters join /metrics. /healthz reports
//	    starting/ready/degraded/draining.
//	    Every /v1 request is traced end to end: the response carries an
//	    X-Instrep-Trace ID resolvable at GET /debug/traces/{id} to the
//	    request's span tree (queue wait, simulation phases, cache
//	    write); /debug/traces lists recent traces (-trace-store bounds
//	    retention; shed/errored/slower-than--trace-slow requests are
//	    always kept) and /debug/runs lists in-flight simulations with
//	    phase, retired count, and live retire rate. -access-log FILE
//	    appends one JSON line per request ("-" = stderr).
//	    -job-dir enables the durable async job tier (POST /v1/jobs,
//	    GET /v1/jobs/{id}[/report], DELETE /v1/jobs/{id}, /debug/jobs):
//	    submissions are journaled to disk, deduplicated by result-cache
//	    fingerprint, executed under the admission gate with -job-retries
//	    transient retries (exponential backoff; compile errors never
//	    retry) and an optional per-attempt -job-deadline, and survive
//	    kill -9: on restart the journal replays, interrupted jobs
//	    re-enqueue, and — with -checkpoint-dir — resume from their last
//	    snapshot, producing reports byte-identical to uninterrupted
//	    runs (-job-checkpoint-every N paces job snapshots by retire
//	    count instead of wall clock).
//	    ^C or SIGTERM shuts down gracefully: in-flight simulations are
//	    canceled and running jobs are journaled as interrupted for the
//	    next process to finish.
//
//	instrep sweep [-spec FILE | -entries LIST -assoc LIST -policy LIST
//	              [-bench LIST] [-skip N] [-measure N] [-instances N]
//	              [-input-variant N]]
//	              [-parallel N] [-timeout D] [-watchdog D]
//	              [-cache-dir DIR] [-checkpoint-dir DIR]
//	              [-checkpoint-every N] [-resume]
//	              [-csv FILE] [-json FILE] [-progress] [-dry-run]
//	    Run a reuse-buffer design-space sweep: the cross product of the
//	    axis lists (buffer entries, associativity, replacement policy
//	    lru/fifo/random, workloads) expands into one simulation cell per
//	    point, cells execute through the same result cache and
//	    checkpoint machinery as run/serve, and the merged comparative
//	    artifact — per-cell and cross-workload-mean hit rates — renders
//	    as canonical CSV (stdout by default) and/or JSON. The artifact
//	    is deterministic: repeats and any -parallel produce identical
//	    bytes, and with -cache-dir a re-run of the same sweep simulates
//	    nothing. A JSON -spec file expresses the same axes (plus a
//	    multi-window axis) declaratively. Failed cells don't abort the
//	    sweep: surviving cells render, failed rows carry the error, and
//	    the exit status is nonzero. -dry-run prints the expanded grid.
//
//	instrep job submit [-addr URL] [-bench NAME] [-skip N] [-measure N]
//	                   [-instances N] [-reuse-entries N] [-reuse-assoc N]
//	                   [-reuse-policy P] [-input-variant N] [-wait]
//	instrep job status [-addr URL] ID
//	instrep job fetch [-addr URL] [-wait] ID
//	    Client for a serve daemon's async job tier (-job-dir). submit
//	    posts a measurement spec (fields left unset default to the
//	    server's own run configuration) and prints the job document —
//	    resubmitting an identical measurement returns the existing job;
//	    -wait polls until the job is terminal. status prints one job
//	    document. fetch prints a done job's canonical report JSON;
//	    -wait polls (honoring the server's Retry-After pacing) until
//	    the report is ready.
//
//	instrep exec [-input FILE] [-max N] PROGRAM.c
//	    Compile a MiniC program and execute it on the simulator,
//	    echoing its output (a development aid for writing workloads).
//
//	instrep asm PROGRAM.c
//	    Compile a MiniC program and print the generated assembly.
//
//	instrep disasm PROGRAM.c | -workload NAME
//	    Disassemble a compiled program or workload: function
//	    boundaries, encodings, mnemonics, resolved targets.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/reportserver"
	"repro/internal/resultcache"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// First ^C (or a container runtime's SIGTERM) cancels the run
	// gracefully (partial tables and metrics still print; serve drains
	// in-flight work and journals jobs as interrupted); once the
	// context is canceled, stop() restores the default handler so a
	// second signal kills the process immediately.
	ctx, stop := notifyContext(context.Background())
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "sweep":
		err = cmdSweep(ctx, os.Args[2:])
	case "job":
		err = cmdJob(ctx, os.Args[2:])
	case "exec":
		err = cmdExec(os.Args[2:])
	case "asm":
		err = cmdAsm(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrep:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: instrep <command> [flags]

commands:
  list    list benchmark workloads
  run     run the repetition analyses and print tables/figures
  serve   serve reports over HTTP with a content-addressed result cache
  sweep   sweep the reuse-buffer design space and emit comparative CSV/JSON
  job     submit/poll/fetch async measurement jobs on a serve daemon
  exec    compile and run a MiniC program
  asm     compile a MiniC program to assembly
  disasm  disassemble a compiled MiniC program or workload`)
}

func cmdList() error {
	fmt.Printf("%-8s %-10s %s\n", "name", "analog", "description")
	for _, w := range repro.WorkloadInfos() {
		fmt.Printf("%-8s %-10s %s\n", w.Name, w.Analog, w.Description)
	}
	fmt.Println("\nexperiments:", strings.Join(repro.Experiments(), " "))
	return nil
}

// validateChoice checks value against the valid choices ("all" plus
// the listed names), returning an error that enumerates the choices.
func validateChoice(flagName, value string, valid []string) error {
	for _, v := range valid {
		if value == v {
			return nil
		}
	}
	return fmt.Errorf("invalid -%s %q (valid: %s, or \"all\")",
		flagName, value, strings.Join(valid, ", "))
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", "all", "workload name or 'all'")
	experiment := fs.String("experiment", "all", "experiment id (table1..table10, fig1..fig6) or 'all'")
	skip := fs.Uint64("skip", 1_000_000, "instructions to skip before measuring")
	measure := fs.Uint64("measure", 5_000_000, "instructions to measure (0 = to completion)")
	instances := fs.Int("instances", 0, "per-instruction instance buffer limit (0 = paper's 2000)")
	reuseEntries := fs.Int("reuse-entries", 0, "reuse buffer entries (0 = paper's 8192)")
	reuseAssoc := fs.Int("reuse-assoc", 0, "reuse buffer associativity (0 = paper's 4)")
	variant := fs.Int("input-variant", 1, "workload input data set (1 = standard, 2 = alternate)")
	parallel := fs.Int("parallel", 0, "max workloads simulated concurrently (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "per-workload wall-clock limit (0 = none)")
	watchdog := fs.Duration("watchdog", 0, "abort a workload making no retire progress for this long (0 = off)")
	noTranslate := fs.Bool("no-translate", false, "force the single-step interpreter instead of the block translation cache (same reports, slower)")
	waves := fs.Int("waves", 1, "min-of-N-waves measurement: run every workload N times and keep the fastest wave's report, with all wave retire rates recorded under metrics (pointless with -cache-dir: cached waves repeat the first measurement)")
	asJSON := fs.Bool("json", false, "emit the raw reports as JSON instead of tables")
	metrics := fs.String("metrics", "", "print run metrics after the tables: 'text' or 'json'")
	progress := fs.Bool("progress", false, "render a live progress ticker on stderr")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory: reuse reports from prior runs with the same config (\"\" = off)")
	checkpointDir := fs.String("checkpoint-dir", "", "crash-resume checkpoint directory: snapshot complete run state at chunk boundaries so an interrupted run can continue (\"\" = off)")
	checkpointEvery := fs.Uint64("checkpoint-every", 0, "retired instructions between checkpoints (0 = pace by wall clock, every 15s; needs -checkpoint-dir)")
	resume := fs.Bool("resume", false, "resume interrupted runs from -checkpoint-dir snapshots instead of starting over")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate the selectors up front so a bad name fails with the
	// choices listed instead of deep in the pipeline.
	if *bench != "all" {
		if err := validateChoice("bench", *bench, repro.Workloads()); err != nil {
			return err
		}
	}
	if *experiment != "all" {
		for _, e := range strings.Split(*experiment, ",") {
			if err := validateChoice("experiment", strings.TrimSpace(e), repro.Experiments()); err != nil {
				return err
			}
		}
	}
	switch *metrics {
	case "", "text", "json":
	default:
		return fmt.Errorf("invalid -metrics %q (valid: text, json)", *metrics)
	}
	if *checkpointDir == "" {
		if *checkpointEvery > 0 {
			return fmt.Errorf("-checkpoint-every needs -checkpoint-dir")
		}
		if *resume {
			return fmt.Errorf("-resume needs -checkpoint-dir")
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}

	cfg := repro.Config{
		SkipInstructions:    *skip,
		MeasureInstructions: *measure,
		MaxInstances:        *instances,
		ReuseEntries:        *reuseEntries,
		ReuseAssoc:          *reuseAssoc,
		InputVariant:        *variant,
		Parallel:            *parallel,
		Timeout:             *timeout,
		WatchdogInterval:    *watchdog,
		DisableTranslation:  *noTranslate,
	}
	if *progress {
		// The run registry feeds the multi-workload display: when
		// several simulations are in flight the ticker renders one
		// segment per run from registry snapshots (the same live view
		// the serve daemon exposes at /debug/runs).
		runs := repro.NewRunRegistry()
		cfg.Runs = runs
		t := newTicker(os.Stderr, runs)
		cfg.Progress = t.update
		defer t.finish()
	}

	// The cache-aware runner is the same code path the serve daemon
	// uses; with no -cache-dir it degenerates to plain RunAll.
	runner := &repro.Runner{}
	if *cacheDir != "" {
		c, err := resultcache.New(0, *cacheDir)
		if err != nil {
			return fmt.Errorf("opening -cache-dir: %w", err)
		}
		runner.Cache = c
	}
	if *checkpointDir != "" {
		// Open scrubs the directory: orphaned temp files and snapshots
		// that fail validation are deleted up front, so -resume can
		// never start from a corrupt or foreign-version snapshot.
		store, err := checkpoint.Open(*checkpointDir)
		if err != nil {
			return fmt.Errorf("opening -checkpoint-dir: %w", err)
		}
		runner.Checkpoint = &repro.CheckpointPolicy{
			Store:  store,
			Every:  *checkpointEvery,
			Resume: *resume,
			Notify: func(ev repro.CheckpointEvent) {
				if ev.Resumed {
					fmt.Fprintf(os.Stderr, "instrep: %s: resumed at %d retired instructions (%s phase)\n",
						ev.Benchmark, ev.Retired, ev.Phase)
				}
			},
		}
	}

	// runErr carries a partial failure: the surviving reports —
	// including truncated partial reports from runs cut short — still
	// render below, and the error is returned at the end so the exit
	// status reflects the failure.
	runOnce := func() ([]*repro.Report, error) {
		if *bench == "all" {
			return runner.RunAll(ctx, cfg)
		}
		r, err := runner.RunWorkload(ctx, *bench, cfg)
		if r == nil {
			return nil, err
		}
		return []*repro.Report{r}, err
	}

	var runErr error
	var reports []*repro.Report
	reports, runErr = runOnce()
	if runErr != nil && len(reports) == 0 {
		return runErr
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "instrep: continuing with %d surviving reports: %v\n", len(reports), runErr)
	}

	// Min-of-N-waves: repeat the whole run, keep each workload's
	// fastest wave (the least-perturbed measurement of the machine's
	// speed — reports are identical across waves, only timing differs),
	// and record every wave's rate so the spread is visible.
	if *waves > 1 && runErr == nil {
		rates := make(map[string][]float64, len(reports))
		index := make(map[string]int, len(reports))
		for i, r := range reports {
			rates[r.Benchmark] = []float64{r.Metrics.RetireRateMIPS}
			index[r.Benchmark] = i
		}
		for w := 1; w < *waves; w++ {
			next, err := runOnce()
			if err != nil {
				return fmt.Errorf("wave %d/%d: %w", w+1, *waves, err)
			}
			for _, nr := range next {
				i, ok := index[nr.Benchmark]
				if !ok {
					continue
				}
				rates[nr.Benchmark] = append(rates[nr.Benchmark], nr.Metrics.RetireRateMIPS)
				if nr.Metrics.RetireRateMIPS > reports[i].Metrics.RetireRateMIPS {
					reports[i] = nr
				}
			}
		}
		for _, r := range reports {
			r.Metrics.Waves = obs.NewWaveStats(rates[r.Benchmark])
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
		return runErr
	}
	// -metrics json emits only the machine-readable metrics document;
	// text metrics follow the tables.
	if *metrics == "json" {
		var ms []*repro.RunMetrics
		for _, r := range reports {
			ms = append(ms, r.Metrics)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ms); err != nil {
			return err
		}
		return runErr
	}
	if *experiment == "all" {
		fmt.Print(repro.FormatAll(reports))
	} else {
		for _, e := range strings.Split(*experiment, ",") {
			s, err := repro.Format(strings.TrimSpace(e), reports)
			if err != nil {
				return err
			}
			fmt.Println(s)
		}
	}
	if *metrics == "text" {
		fmt.Println(repro.FormatMetrics(reports))
		if hc := obs.Health.Values(); len(hc) > 0 {
			fmt.Println("health:")
			for _, v := range hc {
				fmt.Printf("  %-18s %d\n", v.Name, v.Value)
			}
		}
	}
	return runErr
}

// cmdServe runs the report-serving daemon: an HTTP API over the
// content-addressed result cache. The first request for a (workload,
// config) pair simulates; every later one — and every concurrent
// duplicate — is served from the cache.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8100", "listen address")
	cacheDir := fs.String("cache-dir", "", "persist cached reports under this directory (\"\" = memory only)")
	checkpointDir := fs.String("checkpoint-dir", "", "crash-resume checkpoint directory: interrupted simulations resume at the next request for the same report (\"\" = off)")
	cacheEntries := fs.Int("cache-entries", 0, "in-memory cache capacity in reports (0 = default)")
	skip := fs.Uint64("skip", 1_000_000, "instructions to skip before measuring")
	measure := fs.Uint64("measure", 5_000_000, "instructions to measure (0 = to completion)")
	instances := fs.Int("instances", 0, "per-instruction instance buffer limit (0 = paper's 2000)")
	reuseEntries := fs.Int("reuse-entries", 0, "reuse buffer entries (0 = paper's 8192)")
	reuseAssoc := fs.Int("reuse-assoc", 0, "reuse buffer associativity (0 = paper's 4)")
	variant := fs.Int("input-variant", 1, "workload input data set (1 = standard, 2 = alternate)")
	parallel := fs.Int("parallel", 0, "max workloads simulated concurrently for /v1/tables/all (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "per-workload simulation wall-clock limit (0 = none)")
	watchdog := fs.Duration("watchdog", 0, "abort a simulation making no retire progress for this long (0 = off)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request timeout including any simulation (0 = the 2m default, negative = none)")
	maxSims := fs.Int("max-concurrent-sims", 0, "max simulations in flight across all requests (0 = GOMAXPROCS, negative = unbounded)")
	queueDepth := fs.Int("queue-depth", 0, "cold requests that may wait for a simulation slot before being shed with 503 (0 = default 8, negative = none)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures that open a workload's circuit breaker (0 = default 3, negative = disabled)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker rejection window before a half-open probe (0 = default 30s)")
	retryAfter := fs.Duration("retry-after", 0, "Retry-After hint on shed responses (0 = default 2s)")
	serveStale := fs.Bool("serve-stale", true, "answer shed or failed requests with the last known-good report (X-Instrep-Stale: true)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "disk cache capacity in bytes, LRU-evicted (0 = unbounded)")
	traceStore := fs.Int("trace-store", 0, "request traces retained per class for /debug/traces (0 = default 256)")
	traceSlow := fs.Duration("trace-slow", 0, "pin traces of requests at least this slow to the always-keep class (0 = default 1s, negative = never)")
	accessLog := fs.String("access-log", "", "append one JSON line per request to this file (\"-\" = stderr, \"\" = off)")
	quiet := fs.Bool("quiet", false, "suppress request logging")
	jobDir := fs.String("job-dir", "", "durable async job journal directory: enables POST /v1/jobs, crash-safe across restarts (\"\" = off; pair with -checkpoint-dir so interrupted jobs resume mid-simulation)")
	jobRetries := fs.Int("job-retries", 0, "transient-failure retries per job (0 = default 3, negative = none)")
	jobDeadline := fs.Duration("job-deadline", 0, "per-attempt wall-clock limit for async jobs (0 = none)")
	jobWorkers := fs.Int("job-workers", 0, "concurrent async job executors (0 = default 2; simulations still share the admission gate)")
	jobCkptEvery := fs.Uint64("job-checkpoint-every", 0, "retired instructions between job snapshots (0 = wall-clock pacing; needs -job-dir and -checkpoint-dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments")
	}
	if *jobDir == "" && (*jobRetries != 0 || *jobDeadline != 0 || *jobWorkers != 0 || *jobCkptEvery != 0) {
		return fmt.Errorf("-job-retries/-job-deadline/-job-workers/-job-checkpoint-every need -job-dir")
	}
	if *jobCkptEvery != 0 && *checkpointDir == "" {
		return fmt.Errorf("-job-checkpoint-every needs -checkpoint-dir")
	}

	cache, err := resultcache.NewWith(resultcache.Options{
		MaxEntries:   *cacheEntries,
		Dir:          *cacheDir,
		MaxDiskBytes: *cacheMaxBytes,
	})
	if err != nil {
		return fmt.Errorf("opening -cache-dir: %w", err)
	}
	var ckStore *checkpoint.Store
	if *checkpointDir != "" {
		ckStore, err = checkpoint.Open(*checkpointDir)
		if err != nil {
			return fmt.Errorf("opening -checkpoint-dir: %w", err)
		}
	}
	level := obs.LevelDebug
	if *quiet {
		level = obs.LevelError
	}
	log := obs.NewLogger(os.Stderr, level)
	var access *obs.Logger
	switch *accessLog {
	case "":
	case "-":
		access = obs.NewJSONLogger(os.Stderr, obs.LevelInfo)
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening -access-log: %w", err)
		}
		defer f.Close()
		access = obs.NewJSONLogger(f, obs.LevelInfo)
	}
	srv := reportserver.New(reportserver.Config{
		RunConfig: repro.Config{
			SkipInstructions:    *skip,
			MeasureInstructions: *measure,
			MaxInstances:        *instances,
			ReuseEntries:        *reuseEntries,
			ReuseAssoc:          *reuseAssoc,
			InputVariant:        *variant,
			Parallel:            *parallel,
			Timeout:             *timeout,
			WatchdogInterval:    *watchdog,
		},
		Cache:              cache,
		Checkpoints:        ckStore,
		RequestTimeout:     *reqTimeout,
		MaxConcurrentSims:  *maxSims,
		QueueDepth:         *queueDepth,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		RetryAfter:         *retryAfter,
		ServeStale:         *serveStale,
		TraceStoreSize:     *traceStore,
		SlowTraceThreshold: *traceSlow,
		Log:                log,
		AccessLog:          access,
	})
	if *jobDir != "" {
		if err := srv.OpenJobs(reportserver.JobsConfig{
			Dir:             *jobDir,
			Retries:         *jobRetries,
			Deadline:        *jobDeadline,
			Workers:         *jobWorkers,
			CheckpointEvery: *jobCkptEvery,
		}); err != nil {
			return fmt.Errorf("opening -job-dir: %w", err)
		}
	}
	log.Info("serving reports", "addr", *addr, "cache_dir", *cacheDir, "job_dir", *jobDir)
	return srv.ListenAndServe(ctx, *addr)
}

// ticker renders a single-line live progress display on w. For a lone
// run it shows phase, instructions retired, retire rate, and ETA; when
// the run registry reports several simulations in flight (RunAll with
// -parallel) it renders one compact segment per run instead, so
// concurrent workloads stop overwriting each other's lines. It is safe
// for concurrent updates.
type ticker struct {
	mu      sync.Mutex
	w       *os.File
	runs    *repro.RunRegistry // nil = per-callback rendering only
	last    time.Time
	started map[string]time.Time // bench/phase -> start
	active  bool
}

func newTicker(w *os.File, runs *repro.RunRegistry) *ticker {
	return &ticker{w: w, runs: runs, started: make(map[string]time.Time)}
}

func (t *ticker) update(p repro.Progress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := p.Benchmark + "/" + p.Phase
	start, ok := t.started[key]
	if !ok {
		start = time.Now()
		t.started[key] = start
	}
	now := time.Now()
	// Throttle redraws; always draw phase-final updates.
	if !p.Final && now.Sub(t.last) < 200*time.Millisecond {
		return
	}
	t.last = now
	if t.runs != nil {
		if snap := t.runs.Snapshot(); len(snap) > 1 {
			var parts []string
			for _, ri := range snap {
				seg := fmt.Sprintf("%s %s %s", ri.Benchmark, ri.Phase, fmtMillions(ri.Retired))
				if ri.MIPS > 0 {
					seg += fmt.Sprintf(" %.0fMIPS", ri.MIPS)
				}
				parts = append(parts, seg)
			}
			fmt.Fprintf(t.w, "\r\x1b[K[%d running] %s", len(snap), strings.Join(parts, " | "))
			t.active = true
			return
		}
	}
	elapsed := now.Sub(start).Seconds()
	// Rates over a few milliseconds are noise; wait for a real sample.
	var rate float64
	if elapsed >= 0.05 {
		rate = float64(p.Done) / elapsed / 1e6
	}
	line := fmt.Sprintf("%s %s: %s insts", p.Benchmark, p.Phase, fmtMillions(p.Done))
	if rate > 0 {
		line += fmt.Sprintf("  %.1f MIPS", rate)
	}
	if p.Total > 0 && rate > 0 && p.Done < p.Total {
		eta := float64(p.Total-p.Done) / (rate * 1e6)
		line += fmt.Sprintf("  %3.0f%%  ETA %.1fs", 100*float64(p.Done)/float64(p.Total), eta)
	}
	if p.Final {
		line += "  done"
	}
	fmt.Fprintf(t.w, "\r\x1b[K%s", line)
	t.active = true
}

// finish terminates the ticker line so later output starts clean.
func (t *ticker) finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.active {
		fmt.Fprintln(t.w)
		t.active = false
	}
}

func fmtMillions(n uint64) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	}
	return fmt.Sprintf("%.0fk", float64(n)/1e3)
}

func cmdExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ExitOnError)
	inputFile := fs.String("input", "", "file with program input bytes")
	max := fs.Uint64("max", 100_000_000, "instruction budget (0 = unlimited)")
	trace := fs.Uint64("trace", 0, "write an execution trace of the first N instructions to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("exec wants one MiniC source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var input []byte
	if *inputFile != "" {
		input, err = os.ReadFile(*inputFile)
		if err != nil {
			return err
		}
	}
	im, err := minic.Compile(string(src))
	if err != nil {
		return err
	}
	m := cpu.New(im, input)
	if *trace > 0 {
		m.Attach(cpu.NewTracer(os.Stderr, *trace))
	}
	n, err := m.Run(*max)
	os.Stdout.Write(m.Output.Bytes())
	if err != nil {
		return fmt.Errorf("after %d instructions: %w", n, err)
	}
	log := obs.NewLogger(os.Stderr, obs.LevelInfo)
	if m.Halted {
		log.Info("program exited", "code", m.ExitCode, "instructions", n)
	} else {
		log.Warn("instruction budget exhausted", "instructions", n)
	}
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	workload := fs.String("workload", "", "disassemble a bundled workload instead of a file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var im *program.Image
	if *workload != "" {
		w, ok := workloads.ByName(*workload)
		if !ok {
			return fmt.Errorf("unknown workload %q", *workload)
		}
		var err error
		im, err = w.Image()
		if err != nil {
			return err
		}
	} else {
		if fs.NArg() != 1 {
			return fmt.Errorf("disasm wants one MiniC source file or -workload NAME")
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		im, err = minic.Compile(string(src))
		if err != nil {
			return err
		}
	}
	return program.Disassemble(im, os.Stdout)
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("asm wants one MiniC source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	text, err := minic.CompileToAsm(string(src))
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
