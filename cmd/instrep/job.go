package main

// The `instrep job` subcommands are a thin client for a serve
// daemon's durable async job tier (-job-dir): submit a measurement,
// poll its status, fetch the finished report. See DESIGN.md §18.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/jobs"
)

// shutdownSignals are the graceful-shutdown triggers for every
// command: ^C from a terminal and the SIGTERM a container runtime or
// init system sends before a hard kill. Both land on the same
// NotifyContext so `serve` drains identically either way.
var shutdownSignals = []os.Signal{os.Interrupt, syscall.SIGTERM}

// notifyContext is signal.NotifyContext over shutdownSignals —
// split out so the drain-on-SIGTERM contract is unit-testable.
func notifyContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, shutdownSignals...)
}

const defaultJobAddr = "http://localhost:8100"

func cmdJob(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("job wants a subcommand: submit, status, or fetch")
	}
	switch args[0] {
	case "submit":
		return cmdJobSubmit(ctx, args[1:])
	case "status":
		return cmdJobStatus(ctx, args[1:])
	case "fetch":
		return cmdJobFetch(ctx, args[1:])
	default:
		return fmt.Errorf("unknown job subcommand %q (valid: submit, status, fetch)", args[0])
	}
}

// normalizeAddr accepts host:port or a full URL.
func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// jobGet fetches one URL, returning status, Retry-After seconds, body.
func jobGet(ctx context.Context, url string) (int, int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, nil, err
	}
	retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	return resp.StatusCode, retry, body, nil
}

// pollDelay turns a server Retry-After hint into a client-side sleep,
// clamped so a missing hint still polls and a huge one stays usable.
func pollDelay(retryAfterSec int) time.Duration {
	d := time.Duration(retryAfterSec) * time.Second
	if d < 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// sleepCtx sleeps or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func printDoc(doc jobs.Doc) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// waitTerminal polls the status endpoint until the job is terminal.
func waitTerminal(ctx context.Context, base, id string) (jobs.Doc, error) {
	for {
		code, retry, body, err := jobGet(ctx, base+"/v1/jobs/"+id)
		if err != nil {
			return jobs.Doc{}, err
		}
		if code != http.StatusOK {
			return jobs.Doc{}, fmt.Errorf("job status: HTTP %d: %s", code, strings.TrimSpace(string(body)))
		}
		var doc jobs.Doc
		if err := json.Unmarshal(body, &doc); err != nil {
			return jobs.Doc{}, err
		}
		if doc.State.Terminal() {
			return doc, nil
		}
		fmt.Fprintf(os.Stderr, "instrep: job %.12s %s (retries %d, resumes %d)\n",
			id, doc.State, doc.Retries, doc.Resumes)
		if err := sleepCtx(ctx, pollDelay(retry)); err != nil {
			return jobs.Doc{}, err
		}
	}
}

func cmdJobSubmit(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("job submit", flag.ExitOnError)
	addr := fs.String("addr", defaultJobAddr, "serve daemon address")
	bench := fs.String("bench", "", "workload name (required)")
	skip := fs.Uint64("skip", 0, "instructions to skip (0 = server default)")
	measure := fs.Uint64("measure", 0, "instructions to measure (0 = server default)")
	instances := fs.Int("instances", 0, "per-instruction instance buffer limit (0 = server default)")
	reuseEntries := fs.Int("reuse-entries", 0, "reuse buffer entries (0 = server default)")
	reuseAssoc := fs.Int("reuse-assoc", 0, "reuse buffer associativity (0 = server default)")
	reusePolicy := fs.String("reuse-policy", "", "reuse buffer replacement policy (\"\" = server default)")
	variant := fs.Int("input-variant", 0, "workload input data set (0 = server default)")
	wait := fs.Bool("wait", false, "poll until the job reaches a terminal state")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" {
		return fmt.Errorf("job submit needs -bench")
	}
	base := normalizeAddr(*addr)

	// Only explicitly set fields go in the body: the server fills the
	// rest from its own run configuration, so the job measures exactly
	// what a synchronous request to that server would.
	spec := map[string]any{"workload": *bench}
	if *skip > 0 {
		spec["skip"] = *skip
	}
	if *measure > 0 {
		spec["measure"] = *measure
	}
	if *instances > 0 {
		spec["instances"] = *instances
	}
	if *reuseEntries > 0 {
		spec["reuse_entries"] = *reuseEntries
	}
	if *reuseAssoc > 0 {
		spec["reuse_assoc"] = *reuseAssoc
	}
	if *reusePolicy != "" {
		spec["reuse_policy"] = *reusePolicy
	}
	if *variant > 0 {
		spec["input_variant"] = *variant
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusOK:
		fmt.Fprintln(os.Stderr, "instrep: job already exists (identical measurement)")
	default:
		return fmt.Errorf("job submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var doc jobs.Doc
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	if !*wait {
		printDoc(doc)
		return nil
	}
	final, err := waitTerminal(ctx, base, doc.ID)
	if err != nil {
		return err
	}
	printDoc(final)
	if final.State != jobs.StateDone {
		return fmt.Errorf("job finished %s: %s", final.State, final.Error)
	}
	return nil
}

func cmdJobStatus(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("job status", flag.ExitOnError)
	addr := fs.String("addr", defaultJobAddr, "serve daemon address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("job status wants one job ID")
	}
	code, _, body, err := jobGet(ctx, normalizeAddr(*addr)+"/v1/jobs/"+fs.Arg(0))
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("job status: HTTP %d: %s", code, strings.TrimSpace(string(body)))
	}
	os.Stdout.Write(body)
	return nil
}

func cmdJobFetch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("job fetch", flag.ExitOnError)
	addr := fs.String("addr", defaultJobAddr, "serve daemon address")
	wait := fs.Bool("wait", false, "poll until the report is ready instead of failing on a live job")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("job fetch wants one job ID")
	}
	url := normalizeAddr(*addr) + "/v1/jobs/" + fs.Arg(0) + "/report"
	for {
		code, retry, body, err := jobGet(ctx, url)
		if err != nil {
			return err
		}
		switch code {
		case http.StatusOK:
			os.Stdout.Write(body)
			return nil
		case http.StatusAccepted:
			if !*wait {
				return fmt.Errorf("job not done yet (rerun with -wait to poll):\n%s", strings.TrimSpace(string(body)))
			}
			if err := sleepCtx(ctx, pollDelay(retry)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("job fetch: HTTP %d: %s", code, strings.TrimSpace(string(body)))
		}
	}
}
