package main

import (
	"os"
	"testing"

	"repro"
)

// TestTickerConcurrentProgress proves the CLI progress ticker honors
// the core.Config.Progress contract: the callback may be invoked from
// multiple goroutines when workloads run in parallel. Run under the
// race detector (the Makefile `race` target) this fails on any
// unsynchronized ticker state.
func TestTickerConcurrentProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run in -short mode")
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	tk := newTicker(devnull)
	cfg := repro.QuickConfig()
	// Force real concurrency regardless of the machine's core count:
	// the contract is concurrency-safety, not parallel speedup.
	cfg.Parallel = 4
	cfg.Progress = tk.update
	reports, err := repro.RunAll(cfg)
	tk.finish()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(repro.Workloads()); len(reports) != want {
		t.Fatalf("got %d reports, want %d", len(reports), want)
	}
	for _, r := range reports {
		if r.MeasuredInstructions == 0 {
			t.Errorf("%s: no instructions measured", r.Benchmark)
		}
	}
}
