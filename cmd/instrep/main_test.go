package main

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"

	"repro"
)

// TestTickerConcurrentProgress proves the CLI progress ticker honors
// the core.Config.Progress contract: the callback may be invoked from
// multiple goroutines when workloads run in parallel. Run under the
// race detector (the Makefile `race` target) this fails on any
// unsynchronized ticker state.
func TestTickerConcurrentProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run in -short mode")
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	runs := repro.NewRunRegistry()
	tk := newTicker(devnull, runs)
	cfg := repro.QuickConfig()
	// Force real concurrency regardless of the machine's core count:
	// the contract is concurrency-safety, not parallel speedup.
	cfg.Parallel = 4
	cfg.Progress = tk.update
	cfg.Runs = runs
	reports, err := repro.RunAll(context.Background(), cfg)
	tk.finish()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(repro.Workloads()); len(reports) != want {
		t.Fatalf("got %d reports, want %d", len(reports), want)
	}
	for _, r := range reports {
		if r.MeasuredInstructions == 0 {
			t.Errorf("%s: no instructions measured", r.Benchmark)
		}
	}
}

// TestRunCanceledStillEmitsMetrics is the SIGINT-path contract: a
// canceled run exits with an error (nonzero status from main) but the
// -metrics json document still reaches stdout, covering the truncated
// partial report. The test drives cmdRun with an already-canceled
// context, the same state main's signal.NotifyContext produces after ^C.
func TestRunCanceledStillEmitsMetrics(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	runErr := cmdRun(ctx, []string{"-bench", "lzw", "-skip", "1000", "-measure", "50000", "-metrics", "json"})
	wp.Close()
	os.Stdout = old
	out, err := io.ReadAll(rp)
	if err != nil {
		t.Fatal(err)
	}

	if runErr == nil {
		t.Fatal("canceled run must exit nonzero")
	}
	if !strings.Contains(string(out), `"benchmark": "lzw"`) {
		t.Errorf("canceled run did not emit metrics JSON:\n%s", out)
	}
}
