package repro_test

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper. Each benchmark regenerates its experiment across all
// eight workload analogs (with only the analyses that experiment
// needs enabled) and reports the rendered rows via -v logging on the
// first iteration.
//
//	go test -bench=BenchmarkTable1 -benchmem
//	go test -bench=. -benchmem          # everything
//
// Window sizes are reduced relative to cmd/instrep's defaults so the
// full bench suite completes in minutes; the shapes are stable from
// a few hundred thousand instructions (see EXPERIMENTS.md).

import (
	"context"
	"testing"

	"repro"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/repetition"
	"repro/internal/reuse"
)

// benchConfig is the per-workload window used by the experiment
// benchmarks.
func benchConfig() repro.Config {
	return repro.Config{
		SkipInstructions:    200_000,
		MeasureInstructions: 1_000_000,
	}
}

// runExperiment simulates all workloads with cfg and renders the named
// experiment.
func runExperiment(b *testing.B, experiment string, cfg repro.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		reports, err := repro.RunAll(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		s, err := repro.Format(experiment, reports)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + s)
		}
	}
}

// repetitionOnly disables everything but the census.
func repetitionOnly() repro.Config {
	cfg := benchConfig()
	cfg.DisableVPred = true
	cfg.DisableVProf = true
	cfg.DisableTaint = true
	cfg.DisableLocal = true
	cfg.DisableFunc = true
	cfg.DisableReuse = true
	return cfg
}

func funcOnly() repro.Config {
	cfg := benchConfig()
	cfg.DisableVPred = true
	cfg.DisableVProf = true
	cfg.DisableTaint = true
	cfg.DisableLocal = true
	cfg.DisableReuse = true
	return cfg
}

func localOnly() repro.Config {
	cfg := benchConfig()
	cfg.DisableVPred = true
	cfg.DisableVProf = true
	cfg.DisableTaint = true
	cfg.DisableFunc = true
	cfg.DisableReuse = true
	return cfg
}

func taintOnly() repro.Config {
	cfg := benchConfig()
	cfg.DisableVPred = true
	cfg.DisableVProf = true
	cfg.DisableLocal = true
	cfg.DisableFunc = true
	cfg.DisableReuse = true
	return cfg
}

func reuseOnly() repro.Config {
	cfg := benchConfig()
	cfg.DisableVPred = true
	cfg.DisableVProf = true
	cfg.DisableTaint = true
	cfg.DisableLocal = true
	cfg.DisableFunc = true
	return cfg
}

// Table 1: dynamic/static repetition census.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", repetitionOnly()) }

// Figure 1: static-instruction coverage of repetition.
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1", repetitionOnly()) }

// Figure 3: repetition by unique-instance bucket.
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3", repetitionOnly()) }

// Table 2: unique repeatable instances and average repeats.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", repetitionOnly()) }

// Figure 4: instance coverage of repetition.
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4", repetitionOnly()) }

// Table 3: global (taint) source analysis.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3", taintOnly()) }

// Table 4: function-argument repetition.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4", funcOnly()) }

// Table 5: overall local-category shares.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5", localOnly()) }

// Table 6: local-category repetition shares.
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6", localOnly()) }

// Table 7: local-category propensities.
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7", localOnly()) }

// Table 8: memoization candidates.
func BenchmarkTable8(b *testing.B) { runExperiment(b, "table8", funcOnly()) }

// Figure 5: top argument-set specialization coverage.
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5", funcOnly()) }

// Table 9: top prologue/epilogue contributors.
func BenchmarkTable9(b *testing.B) { runExperiment(b, "table9", localOnly()) }

// Figure 6: top load-value specialization coverage.
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6", localOnly()) }

// Table 10: reuse-buffer capture.
func BenchmarkTable10(b *testing.B) { runExperiment(b, "table10", reuseOnly()) }

// Ablations: design choices DESIGN.md calls out.

// BenchmarkAblationInstanceBuffer varies the per-instruction instance
// buffer depth, quantifying why the paper tracks many instances
// (Figure 3's long tail): shallow buffers miss large fractions of the
// repetition.
func BenchmarkAblationInstanceBuffer(b *testing.B) {
	for _, depth := range []int{1, 4, 64, 2000} {
		b.Run(itoa(depth), func(b *testing.B) {
			cfg := repetitionOnly()
			cfg.MaxInstances = depth
			for i := 0; i < b.N; i++ {
				r, err := repro.RunWorkload(context.Background(), "jpeg", cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("depth %d: repetition %.1f%%", depth, r.DynRepeatedPct)
				}
			}
		})
	}
}

// BenchmarkAblationReuseGeometry sweeps the reuse buffer size (the
// Table 10 hardware design space).
func BenchmarkAblationReuseGeometry(b *testing.B) {
	for _, entries := range []int{1024, 8192, 65536} {
		b.Run(itoa(entries), func(b *testing.B) {
			cfg := reuseOnly()
			cfg.ReuseEntries = entries
			for i := 0; i < b.N; i++ {
				r, err := repro.RunWorkload(context.Background(), "goban", cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%d entries: captures %.1f%% of instructions", entries, r.ReusePctAll)
				}
			}
		})
	}
}

// BenchmarkWaves is the min-of-N-waves retire-rate harness in
// testing.B form (the CLI equivalent is `instrep run -waves N`): each
// workload's measure window runs `waves` times, and the benchmark
// reports the best wave (minimum wall time — the least machine-noise-
// perturbed observation) plus the spread the waves saw. The
// interpreted sub-benchmarks re-measure the same windows with the
// translation cache disabled, so one run yields the before/after pair.
func BenchmarkWaves(b *testing.B) {
	const waves = 3
	window := uint64(1_000_000)
	for _, mode := range []struct {
		name        string
		noTranslate bool
	}{{"translated", false}, {"interpreted", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for _, name := range repro.Workloads() {
				b.Run(name, func(b *testing.B) {
					cfg := repro.Config{
						SkipInstructions:    200_000,
						MeasureInstructions: window,
						DisableTranslation:  mode.noTranslate,
					}
					var best, worst float64
					for i := 0; i < b.N; i++ {
						for w := 0; w < waves; w++ {
							r, err := repro.RunWorkload(context.Background(), name, cfg)
							if err != nil {
								b.Fatal(err)
							}
							mips := r.Metrics.RetireRateMIPS
							if best == 0 || mips > best {
								best = mips
							}
							if worst == 0 || mips < worst {
								worst = mips
							}
						}
					}
					b.ReportMetric(best, "best_mips")
					if best > 0 {
						b.ReportMetric(100*(best-worst)/best, "spread_%")
					}
				})
			}
		})
	}
}

// BenchmarkSimulatorRaw measures bare functional-simulation speed
// (no analyses): instructions per second of the substrate.
func BenchmarkSimulatorRaw(b *testing.B) {
	cfg := repro.Config{
		MeasureInstructions: 1_000_000,
		DisableTaint:        true,
		DisableLocal:        true,
		DisableFunc:         true,
		DisableReuse:        true,
		MaxInstances:        1, // minimal census
	}
	b.SetBytes(0)
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunWorkload(context.Background(), "lzw", cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(1_000_000*b.N)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkPipelineFull measures simulation speed with every analysis
// attached (the cost of the full instrumentation).
func BenchmarkPipelineFull(b *testing.B) {
	cfg := repro.Config{MeasureInstructions: 1_000_000}
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunWorkload(context.Background(), "lzw", cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(1_000_000*b.N)/b.Elapsed().Seconds(), "inst/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationInlining compiles workloads with and without the
// Section 6 inlining optimization and measures the prologue/epilogue
// share it removes (the Table 9 trade-off).
func BenchmarkAblationInlining(b *testing.B) {
	for _, inline := range []bool{false, true} {
		name := "base"
		if inline {
			name = "inlined"
		}
		b.Run(name, func(b *testing.B) {
			cfg := localOnly()
			for i := 0; i < b.N; i++ {
				src, _ := repro.WorkloadSource("odb")
				input, _ := repro.WorkloadInput("odb", 1)
				im, err := repro.CompileWith(src, repro.CompileOptions{Inline: inline})
				if err != nil {
					b.Fatal(err)
				}
				r, err := repro.RunImage(context.Background(), im, input, "odb", cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("odb %s: prologue+epilogue %.1f%%, repetition %.1f%%",
						name, r.Local.OverallPct[0]+r.Local.OverallPct[1], r.DynRepeatedPct)
				}
			}
		})
	}
}

// Hot-path micro-benchmarks: the two measurement-loop data structures
// in isolation (per-event cost of the census's dense-table +
// open-addressing instance set and the reuse buffer's flat sets with
// the bounded invalidation index).

// synthEvents builds a deterministic event stream over `pcs` static
// instructions with `vals` distinct operand values, mixing ALU ops,
// loads, and stores the way the workloads do.
func synthEvents(n, pcs, vals int) []cpu.Event {
	evs := make([]cpu.Event, n)
	state := uint32(12345)
	for i := range evs {
		state = state*1664525 + 1013904223 // deterministic LCG
		pc := uint32(0x400000 + 4*int(state>>8)%(4*pcs))
		v := state % uint32(vals)
		ev := cpu.Event{
			PC:   pc,
			Inst: isa.Inst{Op: isa.OpADDU, Rd: 2, Rs: 4, Rt: 5},
			Src1: 4, Src1Val: v,
			Src2: 5, Src2Val: v + 1,
			Dst: 2, DstVal: 2*v + 1,
			Aux: -1,
		}
		switch state % 8 {
		case 0: // load
			ev.Inst.Op = isa.OpLW
			ev.IsLoad = true
			ev.Addr = 0x10000000 + 4*(v%64)
			ev.Src2 = -1
		case 1: // store
			ev.Inst.Op = isa.OpSW
			ev.IsStore = true
			ev.Addr = 0x10000000 + 4*(v%64)
			ev.Dst = -1
		}
		evs[i] = ev
	}
	return evs
}

// BenchmarkCensusObserve measures the repetition tracker's per-event
// cost on a pre-sized dense table.
func BenchmarkCensusObserve(b *testing.B) {
	evs := synthEvents(1<<16, 1024, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := repetition.NewTracker()
		tr.SetTextBounds(0x400000, 1024)
		for j := range evs {
			tr.Observe(&evs[j])
		}
	}
	b.ReportMetric(float64(len(evs)*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkReuseObserve measures the reuse buffer's per-event cost,
// store invalidations included.
func BenchmarkReuseObserve(b *testing.B) {
	evs := synthEvents(1<<16, 1024, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := reuse.New(0, 0)
		for j := range evs {
			buf.Observe(&evs[j], false)
		}
	}
	b.ReportMetric(float64(len(evs)*b.N)/b.Elapsed().Seconds(), "events/s")
}

// Extension experiments.

// BenchmarkExtTypes regenerates the per-instruction-class census.
func BenchmarkExtTypes(b *testing.B) { runExperiment(b, "ext-types", repetitionOnly()) }

// BenchmarkExtVPred regenerates the value-prediction comparison.
func BenchmarkExtVPred(b *testing.B) {
	cfg := benchConfig()
	cfg.DisableTaint = true
	cfg.DisableLocal = true
	cfg.DisableFunc = true
	cfg.DisableReuse = true
	cfg.DisableVProf = true
	runExperiment(b, "ext-vpred", cfg)
}

// BenchmarkExtProfile regenerates the per-function drill-down.
func BenchmarkExtProfile(b *testing.B) { runExperiment(b, "ext-profile", funcOnly()) }

// BenchmarkExtVProfile regenerates the Calder value-profile comparison.
func BenchmarkExtVProfile(b *testing.B) {
	cfg := benchConfig()
	cfg.DisableTaint = true
	cfg.DisableLocal = true
	cfg.DisableFunc = true
	cfg.DisableReuse = true
	cfg.DisableVPred = true
	runExperiment(b, "ext-vprofile", cfg)
}
