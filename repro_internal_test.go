package repro

// White-box tests for the RunAll worker pool: fail-soft error
// aggregation and the concurrency bound.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunAllFailSoft injects one failing workload among successes and
// asserts the successful reports survive alongside the aggregated
// error.
func TestRunAllFailSoft(t *testing.T) {
	names := []string{"alpha", "broken", "gamma", "delta"}
	sentinel := errors.New("simulated fault")
	runOne := func(ctx context.Context, name string, cfg Config) (*Report, error) {
		if name == "broken" {
			return nil, sentinel
		}
		return &Report{Benchmark: name}, nil
	}

	reports, err := runAll(context.Background(), names, Config{Parallel: 2}, runOne)
	if err == nil {
		t.Fatal("failing workload must surface an error")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("aggregated error loses the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("aggregated error does not name the failed workload: %v", err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d partial reports, want 3: %v", len(reports), reports)
	}
	// Survivors keep report order.
	for i, want := range []string{"alpha", "gamma", "delta"} {
		if reports[i].Benchmark != want {
			t.Errorf("reports[%d] = %s, want %s", i, reports[i].Benchmark, want)
		}
	}
}

// TestRunAllAggregatesEveryFailure checks errors.Join keeps all causes.
func TestRunAllAggregatesEveryFailure(t *testing.T) {
	names := []string{"a", "b", "c"}
	runOne := func(ctx context.Context, name string, cfg Config) (*Report, error) {
		return nil, fmt.Errorf("fault in %s", name)
	}
	reports, err := runAll(context.Background(), names, Config{Parallel: 1}, runOne)
	if len(reports) != 0 {
		t.Errorf("no workload succeeded but got %d reports", len(reports))
	}
	if err == nil {
		t.Fatal("all-failed run must error")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), "fault in "+name) {
			t.Errorf("error drops %s's failure: %v", name, err)
		}
	}
}

// TestRunAllBoundedPool asserts the worker pool never runs more than
// cfg.Parallel workloads at once.
func TestRunAllBoundedPool(t *testing.T) {
	const limit = 3
	var active, peak int64
	var mu sync.Mutex
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	runOne := func(ctx context.Context, name string, cfg Config) (*Report, error) {
		n := atomic.AddInt64(&active, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		defer atomic.AddInt64(&active, -1)
		return &Report{Benchmark: name}, nil
	}
	reports, err := runAll(context.Background(), names, Config{Parallel: limit}, runOne)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(names) {
		t.Fatalf("got %d reports, want %d", len(reports), len(names))
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > limit {
		t.Errorf("observed %d concurrent workloads, limit %d", peak, limit)
	}
	if peak == 0 {
		t.Error("pool never ran anything")
	}
}
