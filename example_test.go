package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// Example_analyzeCustomProgram shows the end-to-end flow: compile a
// MiniC program, run the full analysis pipeline, and read the
// headline measurements. The subject is a classic memoization
// candidate: a loop recomputing the same lookup.
func Example_analyzeCustomProgram() {
	r, err := repro.RunSource(context.Background(), `
int table[8] = {3, 1, 4, 1, 5, 9, 2, 6};
int lookup(int i) { return table[i & 7]; }
int main() {
	int s;
	s = 0;
	for (int round = 0; round < 100; round++) {
		for (int i = 0; i < 8; i++) { s += lookup(i); }
	}
	return s;
}`, nil, "lookup-loop", repro.Config{})
	if err != nil {
		panic(err)
	}

	fmt.Println("finished:", r.ProgramExited)
	fmt.Println("most instructions repeat:", r.DynRepeatedPct > 70)
	fmt.Println("most calls use repeated arguments:", r.Table4.AllArgsPct > 90)
	// Output:
	// finished: true
	// most instructions repeat: true
	// most calls use repeated arguments: true
}

// Example_runBenchmark runs one of the bundled SPEC '95 analogs with a
// small measurement window.
func Example_runBenchmark() {
	r, err := repro.RunWorkload(context.Background(), "m88k", repro.QuickConfig())
	if err != nil {
		panic(err)
	}
	// m88ksim is the paper's extreme repeater (98.8%); the analog
	// stays far above the suite minimum.
	fmt.Println("window measured:", r.MeasuredInstructions)
	fmt.Println("highly repetitive:", r.DynRepeatedPct > 80)
	// Output:
	// window measured: 500000
	// highly repetitive: true
}
