package repro_test

// The golden corpus pins the exact measured content of every workload
// at the quick window: testdata/golden/<workload>.json holds the
// canonical report JSON (RunMetrics stripped), and TestGoldenReports
// byte-compares a fresh run against it. Any refactor that changes any
// number in any table now fails loudly instead of drifting silently.
// Regenerate deliberately with:
//
//	go test -run TestGoldenReports -update .

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from this run")

func goldenPath(benchmark string) string {
	return filepath.Join("testdata", "golden", benchmark+".json")
}

func TestGoldenReports(t *testing.T) {
	reports, err := repro.RunAll(context.Background(), repro.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(repro.Workloads()); len(reports) != want {
		t.Fatalf("got %d reports, want %d", len(reports), want)
	}
	for _, r := range reports {
		got, err := repro.CanonicalReportJSON(r)
		if err != nil {
			t.Fatalf("%s: %v", r.Benchmark, err)
		}
		path := goldenPath(r.Benchmark)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: wrote %d bytes", r.Benchmark, len(got))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (regenerate with -update): %v", r.Benchmark, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: report diverged from golden corpus (%s)\n%s",
				r.Benchmark, path, firstDiff(want, got))
		}
	}
}

// firstDiff locates the first byte divergence and shows its
// neighborhood from both sides, so a failure names the drifted field
// instead of dumping two multi-kilobyte documents.
func firstDiff(want, got []byte) string {
	i := 0
	for i < len(want) && i < len(got) && want[i] == got[i] {
		i++
	}
	window := func(b []byte) string {
		lo, hi := i-80, i+80
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("first difference at byte %d (golden %d bytes, got %d bytes)\ngolden: …%s…\ngot:    …%s…",
		i, len(want), len(got), window(want), window(got))
}
