// Package repro reproduces "An Empirical Analysis of Instruction
// Repetition" (Sodani & Sohi, ASPLOS 1998): a characterization of how
// often dynamic instructions consume the same inputs and produce the
// same outputs as earlier instances, and where that repetition comes
// from.
//
// The package is the public face of the reproduction. It compiles the
// eight SPEC '95 integer workload analogs (written in MiniC, compiled
// by the bundled compiler to a MIPS-I-like ISA), simulates them on the
// bundled functional simulator, and runs the paper's analyses:
//
//   - the repetition census (Tables 1-2, Figures 1, 3, 4)
//   - the global dataflow-source analysis (Table 3)
//   - the function-level argument analysis (Tables 4, 8, Figure 5)
//   - the local within-function analysis (Tables 5-7, 9, Figure 6)
//   - the reuse-buffer capture measurement (Table 10)
//
// Quick start:
//
//	reports, err := repro.RunAll(context.Background(), repro.DefaultConfig())
//	fmt.Print(repro.FormatTable1(reports))
//
// Custom programs can be analyzed with RunSource, which accepts MiniC
// source text.
//
// Runs are deterministic, so reports are pure functions of their
// inputs: Runner wraps RunWorkload/RunAll with a content-addressed
// result cache (internal/resultcache), and the instrep serve daemon
// (internal/reportserver) serves cached canonical reports over HTTP.
// CanonicalReportJSON is the byte-exact form shared by the cache, the
// server, and the golden test corpus.
package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/workloads"
)

// Config controls an experiment run; see the field documentation in
// internal/core. The zero value measures a whole program with the
// paper's buffer sizes.
type Config = core.Config

// Report holds every measurement of the paper for one benchmark run.
type Report = core.Report

// Progress is one progress-callback update (see Config.Progress).
type Progress = core.Progress

// RunMetrics is the per-run observability document (phase wall times,
// simulator counters, retire rate, per-observer attributed cost)
// attached to every Report.
type RunMetrics = obs.RunMetrics

// RunRegistry tracks in-flight simulations for live introspection
// (Config.Runs): the report server's GET /debug/runs and the CLI's
// -progress read its snapshots.
type RunRegistry = core.RunRegistry

// RunInfo is one in-flight run in a RunRegistry snapshot.
type RunInfo = core.RunInfo

// NewRunRegistry builds an empty run registry for Config.Runs.
func NewRunRegistry() *RunRegistry { return core.NewRunRegistry() }

// DefaultConfig returns the standard experiment window: skip 1M
// instructions of initialization, measure the next 5M with the paper's
// 2000-instance buffers and 8K/4-way reuse buffer. (The paper skipped
// 500M and measured 1B on hardware of its day; the window scales, the
// shapes do not — see EXPERIMENTS.md.)
func DefaultConfig() Config {
	return Config{
		SkipInstructions:    1_000_000,
		MeasureInstructions: 5_000_000,
	}
}

// QuickConfig returns a reduced window for tests and smoke runs.
func QuickConfig() Config {
	return Config{
		SkipInstructions:    100_000,
		MeasureInstructions: 500_000,
	}
}

// Workloads lists the benchmark analog names in report order.
func Workloads() []string { return workloads.Names() }

// WorkloadInfo describes one workload.
type WorkloadInfo struct {
	Name        string
	Analog      string // the SPEC '95 benchmark it stands in for
	Description string
}

// WorkloadInfos returns metadata for every workload.
func WorkloadInfos() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workloads.All() {
		out = append(out, WorkloadInfo{Name: w.Name, Analog: w.Analog, Description: w.Description})
	}
	return out
}

// RunWorkload runs the full analysis pipeline on one named workload.
// A canceled ctx, an expired cfg.Timeout, or a watchdog abort cuts the
// run short; the partial report (flagged Truncated) is returned
// alongside the error. Panics in the run path are recovered into the
// error instead of crashing the caller. A nil ctx is treated as
// context.Background().
func RunWorkload(ctx context.Context, name string, cfg Config) (rep *Report, err error) {
	defer recoverToError(healthOf(cfg), name, &rep, &err)
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown workload %q (have %v)", name, workloads.Names())
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Mint a per-run trace when the caller did not install one (the CLI
	// path; the report server mints per request at the HTTP edge), so
	// every report's RunMetrics carries a trace ID.
	if obs.TraceFrom(ctx) == nil {
		t := obs.NewTrace("run:" + name)
		ctx = obs.WithTrace(ctx, t)
		defer t.End()
	}
	// Open the run span here so compilation is visible as a phase
	// alongside core.Run's load/skip/measure/collect children. The span
	// parents under the context's current span (the server's "sim"
	// span, or the trace root just minted).
	root, ctx := obs.StartSpanCtx(ctx, "run")
	compile := root.StartChild("compile")
	var im *program.Image
	cerr := cfg.Faults.CompileError(w.Name)
	if cerr == nil {
		im, cerr = w.Image()
	}
	compile.End()
	if cerr != nil {
		return nil, cerr
	}
	variant := cfg.InputVariant
	if variant <= 0 {
		variant = 1
	}
	cfg.Span = root
	return core.Run(ctx, im, w.Input(variant), w.Name, cfg)
}

// healthOf resolves a run's resilience counter set: the injected one
// (Config.Health, e.g. a server registry's) or the process-wide
// default.
func healthOf(cfg Config) *obs.HealthCounters {
	if cfg.Health != nil {
		return cfg.Health
	}
	return obs.Health
}

// recoverToError converts a panic that escaped the run path into a
// per-workload *core.PanicError, so no input reachable through the
// public Run functions can crash the process.
func recoverToError(h *obs.HealthCounters, name string, rep **Report, err *error) {
	if pv := recover(); pv != nil {
		h.PanicsRecovered.Inc()
		*rep, *err = nil, core.NewPanicError(name, pv)
	}
}

// FormatMetrics renders each report's run metrics as text (the
// `instrep run -metrics text` output).
func FormatMetrics(rs []*Report) string {
	var b strings.Builder
	for _, r := range rs {
		if r.Metrics == nil {
			continue
		}
		b.WriteString(r.Metrics.FormatText())
		b.WriteByte('\n')
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// RunAll runs every workload — concurrently, since each simulation is
// independent and deterministic — and returns the reports in report
// order. Concurrency is bounded by cfg.Parallel workers (0 =
// GOMAXPROCS), so an eight-workload run on a small machine no longer
// time-slices eight simulators against each other.
//
// RunAll is fail-soft: when some workloads fail, the reports of the
// ones that succeeded — plus any partial (Truncated) reports from
// runs cut short mid-window — are still returned, in report order,
// alongside an errors.Join-aggregated error naming every failure. A
// panicking workload fails alone: its goroutine recovers the panic
// into its error slot and the other workloads run to completion.
// Callers that only care about total success can keep treating a
// non-nil error as fatal.
func RunAll(ctx context.Context, cfg Config) ([]*Report, error) {
	return runAll(ctx, workloads.Names(), cfg, RunWorkload)
}

// runAll is RunAll with the workload set and runner injected (tested
// with deliberately failing runners).
func runAll(ctx context.Context, names []string, cfg Config, runOne func(context.Context, string, Config) (*Report, error)) ([]*Report, error) {
	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(names) {
		parallel = len(names)
	}
	byIndex := make([]*Report, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, name := range names {
		sem <- struct{}{} // acquire before spawning: at most `parallel` goroutines exist
		wg.Add(1)
		go func(i int, name string) {
			defer func() { <-sem; wg.Done() }()
			defer recoverToError(healthOf(cfg), name, &byIndex[i], &errs[i])
			byIndex[i], errs[i] = runOne(ctx, name, cfg)
		}(i, name)
	}
	wg.Wait()

	out := make([]*Report, 0, len(names))
	var failures []error
	for i := range names {
		if errs[i] != nil {
			failures = append(failures, fmt.Errorf("%s: %w", names[i], errs[i]))
		}
		if byIndex[i] != nil {
			// Complete reports, and partial reports from truncated
			// runs (which also carry an error above).
			out = append(out, byIndex[i])
		}
	}
	if len(failures) > 0 {
		return out, fmt.Errorf("repro: %d of %d workloads failed: %w",
			len(failures), len(names), errors.Join(failures...))
	}
	return out, nil
}

// Compile compiles MiniC source (with the bundled runtime library)
// into a loadable program image. It is exposed so examples and
// downstream users can analyze their own programs.
func Compile(source string) (*program.Image, error) {
	return minic.Compile(source)
}

// CompileOptions selects optional compiler passes (see minic.Options).
type CompileOptions = minic.Options

// CompileWith compiles MiniC source with compiler options (e.g.
// inlining, for the Section 6 compiler ablation).
func CompileWith(source string, opts CompileOptions) (*program.Image, error) {
	return minic.CompileOpt(source, opts)
}

// WorkloadSource returns the MiniC source text of a bundled workload
// (for compiler ablations and study).
func WorkloadSource(name string) (string, bool) {
	w, ok := workloads.ByName(name)
	if !ok {
		return "", false
	}
	return w.Source, true
}

// WorkloadInput returns the workload's input bytes for a variant.
func WorkloadInput(name string, variant int) ([]byte, bool) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, false
	}
	if variant <= 0 {
		variant = 1
	}
	return w.Input(variant), true
}

// RunSource compiles MiniC source and runs the analysis pipeline on it
// with the given input bytes. Like RunWorkload it recovers panics,
// honors ctx/cfg.Timeout/cfg.WatchdogInterval, and returns a partial
// Truncated report when the run is cut short.
func RunSource(ctx context.Context, source string, input []byte, name string, cfg Config) (rep *Report, err error) {
	defer recoverToError(healthOf(cfg), name, &rep, &err)
	if cerr := cfg.Faults.CompileError(name); cerr != nil {
		return nil, cerr
	}
	im, err := minic.Compile(source)
	if err != nil {
		return nil, err
	}
	return core.Run(ctx, im, input, name, cfg)
}

// RunImage runs the analysis pipeline on an already-compiled image
// (e.g. one built with the bundled assembler). It recovers panics,
// honors ctx/cfg.Timeout/cfg.WatchdogInterval, and returns a partial
// Truncated report when the run is cut short.
func RunImage(ctx context.Context, im *program.Image, input []byte, name string, cfg Config) (rep *Report, err error) {
	defer recoverToError(healthOf(cfg), name, &rep, &err)
	return core.Run(ctx, im, input, name, cfg)
}
