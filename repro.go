// Package repro reproduces "An Empirical Analysis of Instruction
// Repetition" (Sodani & Sohi, ASPLOS 1998): a characterization of how
// often dynamic instructions consume the same inputs and produce the
// same outputs as earlier instances, and where that repetition comes
// from.
//
// The package is the public face of the reproduction. It compiles the
// eight SPEC '95 integer workload analogs (written in MiniC, compiled
// by the bundled compiler to a MIPS-I-like ISA), simulates them on the
// bundled functional simulator, and runs the paper's analyses:
//
//   - the repetition census (Tables 1-2, Figures 1, 3, 4)
//   - the global dataflow-source analysis (Table 3)
//   - the function-level argument analysis (Tables 4, 8, Figure 5)
//   - the local within-function analysis (Tables 5-7, 9, Figure 6)
//   - the reuse-buffer capture measurement (Table 10)
//
// Quick start:
//
//	reports, err := repro.RunAll(repro.DefaultConfig())
//	fmt.Print(repro.FormatTable1(reports))
//
// Custom programs can be analyzed with RunSource, which accepts MiniC
// source text.
package repro

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/workloads"
)

// Config controls an experiment run; see the field documentation in
// internal/core. The zero value measures a whole program with the
// paper's buffer sizes.
type Config = core.Config

// Report holds every measurement of the paper for one benchmark run.
type Report = core.Report

// Progress is one progress-callback update (see Config.Progress).
type Progress = core.Progress

// RunMetrics is the per-run observability document (phase wall times,
// simulator counters, retire rate, per-observer attributed cost)
// attached to every Report.
type RunMetrics = obs.RunMetrics

// DefaultConfig returns the standard experiment window: skip 1M
// instructions of initialization, measure the next 5M with the paper's
// 2000-instance buffers and 8K/4-way reuse buffer. (The paper skipped
// 500M and measured 1B on hardware of its day; the window scales, the
// shapes do not — see EXPERIMENTS.md.)
func DefaultConfig() Config {
	return Config{
		SkipInstructions:    1_000_000,
		MeasureInstructions: 5_000_000,
	}
}

// QuickConfig returns a reduced window for tests and smoke runs.
func QuickConfig() Config {
	return Config{
		SkipInstructions:    100_000,
		MeasureInstructions: 500_000,
	}
}

// Workloads lists the benchmark analog names in report order.
func Workloads() []string { return workloads.Names() }

// WorkloadInfo describes one workload.
type WorkloadInfo struct {
	Name        string
	Analog      string // the SPEC '95 benchmark it stands in for
	Description string
}

// WorkloadInfos returns metadata for every workload.
func WorkloadInfos() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workloads.All() {
		out = append(out, WorkloadInfo{Name: w.Name, Analog: w.Analog, Description: w.Description})
	}
	return out
}

// RunWorkload runs the full analysis pipeline on one named workload.
func RunWorkload(name string, cfg Config) (*Report, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown workload %q (have %v)", name, workloads.Names())
	}
	// Open the run span here so compilation is visible as a phase
	// alongside core.Run's load/skip/measure/collect children.
	root := obs.StartSpan("run")
	compile := root.StartChild("compile")
	im, err := w.Image()
	compile.End()
	if err != nil {
		return nil, err
	}
	variant := cfg.InputVariant
	if variant <= 0 {
		variant = 1
	}
	cfg.Span = root
	return core.Run(im, w.Input(variant), w.Name, cfg)
}

// FormatMetrics renders each report's run metrics as text (the
// `instrep run -metrics text` output).
func FormatMetrics(rs []*Report) string {
	var b strings.Builder
	for _, r := range rs {
		if r.Metrics == nil {
			continue
		}
		b.WriteString(r.Metrics.FormatText())
		b.WriteByte('\n')
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// RunAll runs every workload — in parallel, since each simulation is
// independent and deterministic — and returns the reports in report
// order.
func RunAll(cfg Config) ([]*Report, error) {
	names := workloads.Names()
	out := make([]*Report, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			r, err := RunWorkload(name, cfg)
			out[i] = r
			errs[i] = err
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("repro: %s: %w", names[i], err)
		}
	}
	return out, nil
}

// Compile compiles MiniC source (with the bundled runtime library)
// into a loadable program image. It is exposed so examples and
// downstream users can analyze their own programs.
func Compile(source string) (*program.Image, error) {
	return minic.Compile(source)
}

// CompileOptions selects optional compiler passes (see minic.Options).
type CompileOptions = minic.Options

// CompileWith compiles MiniC source with compiler options (e.g.
// inlining, for the Section 6 compiler ablation).
func CompileWith(source string, opts CompileOptions) (*program.Image, error) {
	return minic.CompileOpt(source, opts)
}

// WorkloadSource returns the MiniC source text of a bundled workload
// (for compiler ablations and study).
func WorkloadSource(name string) (string, bool) {
	w, ok := workloads.ByName(name)
	if !ok {
		return "", false
	}
	return w.Source, true
}

// WorkloadInput returns the workload's input bytes for a variant.
func WorkloadInput(name string, variant int) ([]byte, bool) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, false
	}
	if variant <= 0 {
		variant = 1
	}
	return w.Input(variant), true
}

// RunSource compiles MiniC source and runs the analysis pipeline on it
// with the given input bytes.
func RunSource(source string, input []byte, name string, cfg Config) (*Report, error) {
	im, err := minic.Compile(source)
	if err != nil {
		return nil, err
	}
	return core.Run(im, input, name, cfg)
}

// RunImage runs the analysis pipeline on an already-compiled image
// (e.g. one built with the bundled assembler).
func RunImage(im *program.Image, input []byte, name string, cfg Config) (*Report, error) {
	return core.Run(im, input, name, cfg)
}
