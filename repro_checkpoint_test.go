package repro_test

// Checkpoint/restore acceptance at the public API: every workload,
// interrupted at a chunk boundary mid-measure and resumed from its
// snapshot, reproduces the golden corpus byte for byte — on both the
// translated and interpreted dispatch paths — and a process killed
// with SIGKILL mid-run resumes in a fresh process with the same
// bytes as a straight-through run.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestMain doubles as the crash-test helper: when the helper env var
// names a checkpoint directory, the process runs one checkpointed
// workload (to be SIGKILLed by the parent test) instead of the test
// suite.
func TestMain(m *testing.M) {
	if dir := os.Getenv("INSTREP_CKPT_HELPER_DIR"); dir != "" {
		crashHelperMain(dir)
		return
	}
	if dir := os.Getenv("INSTREP_JOBS_HELPER_DIR"); dir != "" {
		jobsHelperMain(dir)
		return
	}
	os.Exit(m.Run())
}

// TestResumedRunsMatchGoldenCorpus is the headline determinism
// acceptance: interrupt each workload immediately after its first
// measure-phase snapshot, resume it, and byte-compare the resumed
// canonical report against the golden corpus — which was pinned by
// uninterrupted runs. Both dispatch paths must hold: snapshot state is
// architectural, so a snapshot is path-independent.
func TestResumedRunsMatchGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload set twice in -short mode")
	}
	for _, path := range []string{"translated", "interpreted"} {
		t.Run(path, func(t *testing.T) {
			for _, w := range repro.Workloads() {
				t.Run(w, func(t *testing.T) {
					cfg := repro.QuickConfig()
					cfg.DisableTranslation = path == "interpreted"
					rep := interruptThenResume(t, w, cfg)
					got, err := repro.CanonicalReportJSON(rep)
					if err != nil {
						t.Fatal(err)
					}
					want, err := os.ReadFile(goldenPath(w))
					if err != nil {
						t.Fatalf("missing golden file: %v", err)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("resumed report diverged from golden corpus\n%s",
							firstDiff(want, got))
					}
				})
			}
		})
	}
}

// interruptThenResume cancels a checkpointed run right after its first
// measure-phase snapshot, then resumes it to completion. The runner
// keys snapshots by result-cache fingerprint, exactly as the CLI and
// the serve daemon do.
func interruptThenResume(t *testing.T, workload string, cfg repro.Config) *repro.Report {
	t.Helper()
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cutAt uint64
	interrupted := &repro.Runner{Checkpoint: &repro.CheckpointPolicy{
		Store: store,
		Every: 1, // snapshot at every chunk boundary
		Notify: func(ev repro.CheckpointEvent) {
			if !ev.Resumed && ev.Phase == "measure" && cutAt == 0 {
				cutAt = ev.Retired
				cancel()
			}
		},
	}}
	rep, err := interrupted.RunWorkload(ctx, workload, cfg)
	if err == nil {
		t.Fatal("interrupted run did not error")
	}
	if cutAt == 0 {
		t.Fatal("no measure-phase snapshot was written")
	}
	if rep == nil || !rep.Truncated || rep.Checkpoint == nil {
		t.Fatalf("interrupted run: Truncated=%v Checkpoint=%+v",
			rep != nil && rep.Truncated, rep.Checkpoint)
	}

	var resumedAt uint64
	resumer := &repro.Runner{Checkpoint: &repro.CheckpointPolicy{
		Store:  store,
		Resume: true,
		Notify: func(ev repro.CheckpointEvent) {
			if ev.Resumed {
				resumedAt = ev.Retired
			}
		},
	}}
	rep2, err := resumer.RunWorkload(context.Background(), workload, cfg)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if resumedAt != cutAt {
		t.Errorf("resumed at %d retired, want %d", resumedAt, cutAt)
	}
	return rep2
}

// TestWatchdogReportsLastCheckpoint arms the watchdog against an
// injected stall in a checkpointed run: the abort diagnostic and the
// truncated report must both carry the last snapshot's retire count
// and age, so an operator knows what a resume would recover.
func TestWatchdogReportsLastCheckpoint(t *testing.T) {
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := repro.Config{SkipInstructions: 20_000, MeasureInstructions: 500_000}
	cfg.WatchdogInterval = 500 * time.Millisecond
	cfg.Faults = faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.SlowStep, Workload: "lzw", At: 400_000, Delay: time.Minute},
	)
	cfg.Checkpoint = &repro.CheckpointPolicy{Store: store, Key: "feedbeef", Every: 1}
	rep, err := repro.RunWorkload(context.Background(), "lzw", cfg)
	if err == nil {
		t.Fatal("stalled run did not error")
	}
	var we *core.WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("error is not a WatchdogError: %v", err)
	}
	if we.LastCheckpointRetired == 0 || we.LastCheckpointRetired > we.Retired {
		t.Errorf("LastCheckpointRetired = %d (retired %d)", we.LastCheckpointRetired, we.Retired)
	}
	if we.LastCheckpointAge <= 0 {
		t.Errorf("LastCheckpointAge = %v", we.LastCheckpointAge)
	}
	if !strings.Contains(we.Error(), "last checkpoint") {
		t.Errorf("diagnostic lacks checkpoint info: %q", we.Error())
	}
	if rep == nil || rep.Checkpoint == nil ||
		rep.Checkpoint.LastRetired != we.LastCheckpointRetired {
		t.Errorf("truncated report checkpoint status = %+v, want LastRetired=%d",
			rep.Checkpoint, we.LastCheckpointRetired)
	}
}

// Crash-test parameters shared by the parent test and the helper
// process. The helper runs interpreted (slower) so the parent's
// SIGKILL reliably lands mid-window; the resumed and comparison runs
// use the default translated path — snapshots are dispatch-path
// independent.
const (
	crashWorkload = "lzw"
	crashKey      = "feedc0de"
	crashEvery    = 200_000
)

func crashWindow() repro.Config {
	return repro.Config{SkipInstructions: 100_000, MeasureInstructions: 3_000_000}
}

func crashHelperMain(dir string) {
	store, err := checkpoint.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	cfg := crashWindow()
	cfg.DisableTranslation = true
	cfg.Checkpoint = &repro.CheckpointPolicy{Store: store, Key: crashKey, Every: crashEvery}
	if _, err := repro.RunWorkload(context.Background(), crashWorkload, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestCrashResumeAcrossProcesses is the cross-process acceptance: a
// child process is SIGKILLed mid-simulation — no cleanup, no graceful
// anything — and a fresh process resumes from whatever snapshot
// survived on disk, finishing with a report byte-identical to a
// straight-through run. INSTREP_CRASH_LOOPS repeats the kill/resume
// cycle with staggered kill points (the crashsmoke make target).
func TestCrashResumeAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	straight, err := repro.RunWorkload(context.Background(), crashWorkload, crashWindow())
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.CanonicalReportJSON(straight)
	if err != nil {
		t.Fatal(err)
	}

	loops := 1
	if v := os.Getenv("INSTREP_CRASH_LOOPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			loops = n
		}
	}
	for i := 0; i < loops; i++ {
		t.Run(fmt.Sprintf("loop%d", i), func(t *testing.T) {
			dir := t.TempDir()
			var stderr bytes.Buffer
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(), "INSTREP_CKPT_HELPER_DIR="+dir)
			cmd.Stderr = &stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// Kill the helper the moment its first snapshot lands on
			// disk (plus a per-loop stagger so repeated loops cut at
			// different points of the run).
			path := filepath.Join(dir, crashKey+".ckpt")
			deadline := time.Now().Add(time.Minute)
			for {
				if _, err := os.Stat(path); err == nil {
					break
				}
				if time.Now().After(deadline) {
					cmd.Process.Kill()
					cmd.Wait()
					t.Fatalf("no snapshot appeared; helper stderr:\n%s", stderr.String())
				}
				time.Sleep(2 * time.Millisecond)
			}
			time.Sleep(time.Duration(i) * 10 * time.Millisecond)
			cmd.Process.Kill() // SIGKILL: no deferred cleanup runs
			cmd.Wait()

			// A fresh "process": a new store over the same directory,
			// scrubbing whatever the kill left behind (possibly a temp
			// file from a write in flight).
			store, err := checkpoint.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			var resumedAt uint64
			cfg := crashWindow()
			cfg.Checkpoint = &repro.CheckpointPolicy{
				Store: store, Key: crashKey, Resume: true,
				Notify: func(ev repro.CheckpointEvent) {
					if ev.Resumed {
						resumedAt = ev.Retired
					}
				},
			}
			rep, err := repro.RunWorkload(context.Background(), crashWorkload, cfg)
			if err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if resumedAt == 0 {
				t.Fatal("run did not resume from the killed process's snapshot")
			}
			got, err := repro.CanonicalReportJSON(rep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("resumed report diverged from the straight-through run\n%s",
					firstDiff(want, got))
			}
		})
	}
}
