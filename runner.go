package repro

// Runner threads the content-addressed result cache through the same
// run path the package-level functions use, so the CLI batch path
// (`instrep run -cache-dir`) and the report server share one code
// path. See internal/resultcache and DESIGN.md §12.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/resultcache"
	"repro/internal/workloads"
)

// CanonicalReportJSON renders the deterministic content of a report —
// everything except the wall-clock RunMetrics document — as indented
// JSON. It is the byte-exact form stored by the result cache, served
// by `instrep serve`, and pinned by the golden corpus under
// testdata/golden.
func CanonicalReportJSON(r *Report) ([]byte, error) {
	return core.CanonicalJSON(r)
}

// Runner runs workloads through an optional content-addressed result
// cache. The zero value (and a nil *Runner) behaves exactly like the
// package-level RunWorkload/RunAll: every call simulates.
//
// With Cache set, complete reports are stored under a fingerprint of
// (workload source, measurement Config, simulator version) and later
// calls with an equal fingerprint are served from the cache without
// simulating; concurrent calls for the same cold key trigger exactly
// one simulation. Cached reports are canonical — they carry no
// RunMetrics (those are per-execution wall-clock data) and must be
// treated as read-only, since concurrent callers may share them.
// Runs with fault injection configured bypass the cache entirely, and
// truncated partial reports are returned but never stored.
type Runner struct {
	// Cache is the result cache (nil = always simulate).
	Cache *resultcache.Cache

	// Run computes one workload on a cache miss (nil = RunWorkload).
	// Injectable for tests that need to count or fake simulations.
	Run func(ctx context.Context, name string, cfg Config) (*Report, error)
}

// runOne resolves the compute function.
func (rn *Runner) runOne() func(context.Context, string, Config) (*Report, error) {
	if rn != nil && rn.Run != nil {
		return rn.Run
	}
	return RunWorkload
}

// RunWorkload is RunWorkload through the cache: a fingerprint hit
// skips the simulation and returns the stored canonical report.
func (rn *Runner) RunWorkload(ctx context.Context, name string, cfg Config) (*Report, error) {
	run := rn.runOne()
	if rn == nil || rn.Cache == nil || !resultcache.Cacheable(cfg) {
		return run(ctx, name, cfg)
	}
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown workload %q (have %v)", name, workloads.Names())
	}
	key := resultcache.Fingerprint(name, w.Source, cfg)
	return rn.Cache.GetOrCompute(ctx, key, func(ctx context.Context) (*Report, error) {
		return run(ctx, name, cfg)
	})
}

// RunAll is RunAll through the cache: the same bounded worker pool and
// fail-soft aggregation, with each workload resolved via the cache.
func (rn *Runner) RunAll(ctx context.Context, cfg Config) ([]*Report, error) {
	return runAll(ctx, workloads.Names(), cfg, rn.RunWorkload)
}
