package repro

// Runner threads the content-addressed result cache through the same
// run path the package-level functions use, so the CLI batch path
// (`instrep run -cache-dir`) and the report server share one code
// path. See internal/resultcache and DESIGN.md §12.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/resultcache"
	"repro/internal/workloads"
)

// CanonicalReportJSON renders the deterministic content of a report —
// everything except the wall-clock RunMetrics document — as indented
// JSON. It is the byte-exact form stored by the result cache, served
// by `instrep serve`, and pinned by the golden corpus under
// testdata/golden.
func CanonicalReportJSON(r *Report) ([]byte, error) {
	return core.CanonicalJSON(r)
}

// Runner runs workloads through an optional content-addressed result
// cache. The zero value (and a nil *Runner) behaves exactly like the
// package-level RunWorkload/RunAll: every call simulates.
//
// With Cache set, complete reports are stored under a fingerprint of
// (workload source, measurement Config, simulator version) and later
// calls with an equal fingerprint are served from the cache without
// simulating; concurrent calls for the same cold key trigger exactly
// one simulation. Cached reports are canonical — they carry no
// RunMetrics (those are per-execution wall-clock data) and must be
// treated as read-only, since concurrent callers may share them.
// Runs with fault injection configured bypass the cache entirely, and
// truncated partial reports are returned but never stored.
type Runner struct {
	// Cache is the result cache (nil = always simulate).
	Cache *resultcache.Cache

	// Gate is the admission-control semaphore bounding concurrent
	// simulations (nil = unbounded). It only guards actual
	// computations: cache hits and singleflight followers never take a
	// slot. When both the semaphore and its wait queue are full the
	// run fails fast with an *overload.ShedError.
	Gate *overload.Gate

	// Breakers is the per-workload circuit breaker set (nil = none).
	// After its threshold of consecutive simulation failures —
	// panics, faults, timeouts, watchdog aborts — a workload's runs
	// fail fast with an *overload.BreakerOpenError, without taking a
	// Gate slot, until a cooldown elapses and a half-open probe
	// succeeds. Cached results are still served while a breaker is
	// open.
	Breakers *overload.BreakerSet

	// Checkpoint, when set (with a Store), threads crash-resumable
	// checkpointing through every eligible run: the policy is copied
	// per workload with Key set to the run's result-cache fingerprint,
	// so a snapshot can only resume a byte-identical (workload,
	// config, version) run. Runs with fault injection configured are
	// never checkpointed (same eligibility rule as the cache), and a
	// Config that already carries its own policy wins.
	Checkpoint *core.CheckpointPolicy

	// Run computes one workload on a cache miss (nil = RunWorkload).
	// Injectable for tests that need to count or fake simulations.
	Run func(ctx context.Context, name string, cfg Config) (*Report, error)
}

// CheckpointEvent is one resume or snapshot-write notification (see
// core.CheckpointPolicy.Notify).
type CheckpointEvent = core.CheckpointEvent

// CheckpointPolicy configures crash-resumable runs (Config.Checkpoint
// or Runner.Checkpoint); see the field documentation in internal/core.
type CheckpointPolicy = core.CheckpointPolicy

// runOne resolves the compute function.
func (rn *Runner) runOne() func(context.Context, string, Config) (*Report, error) {
	if rn != nil && rn.Run != nil {
		return rn.Run
	}
	return RunWorkload
}

// admitted wraps a compute function with the breaker check, the
// admission gate, and the trace spans that make both visible: a
// "queue" span covering the Gate wait (attrs wait_ns and outcome) and
// a "sim" span covering the simulation itself. Ordering matters: the
// breaker rejects before a semaphore slot is taken, so an open breaker
// costs nothing, and a shed probe is reverted (not counted as a
// failure) by Record's ShedError handling.
func (rn *Runner) admitted(run func(context.Context, string, Config) (*Report, error)) func(context.Context, string, Config) (*Report, error) {
	return func(ctx context.Context, name string, cfg Config) (*Report, error) {
		req := obs.SpanFrom(ctx) // the request/run root, if the edge installed one
		if rn != nil && rn.Breakers != nil {
			if err := rn.Breakers.Allow(name); err != nil {
				req.SetAttr("breaker", "open")
				return nil, err
			}
		}
		if rn != nil && rn.Gate != nil {
			queue, _ := obs.StartSpanCtx(ctx, "queue")
			err := rn.Gate.Acquire(ctx)
			wait := queue.End()
			queue.SetAttr("wait_ns", wait.Nanoseconds())
			req.SetAttr("queue_wait_ns", wait.Nanoseconds())
			if err != nil {
				queue.SetAttr("outcome", "shed")
				if rn.Breakers != nil {
					rn.Breakers.Record(name, err) // reverts a shed half-open probe
				}
				return nil, err
			}
			queue.SetAttr("outcome", "admitted")
			defer rn.Gate.Release()
		}
		sim, ctx := obs.StartSpanCtx(ctx, "sim")
		sim.SetAttr("workload", name)
		rep, err := run(ctx, name, cfg)
		sim.End()
		if rep != nil && rep.Metrics != nil {
			sim.SetAttr("retired", rep.Metrics.Sim.Retired)
		}
		if rn != nil && rn.Breakers != nil {
			rn.Breakers.Record(name, err)
		}
		return rep, err
	}
}

// RunWorkload is RunWorkload through the cache: a fingerprint hit
// skips the simulation and returns the stored canonical report.
// Admission control and the circuit breaker (when configured) apply
// only to the computation itself — cached reports are always served.
func (rn *Runner) RunWorkload(ctx context.Context, name string, cfg Config) (*Report, error) {
	run := rn.admitted(rn.runOne())
	checkpointing := rn != nil && rn.Checkpoint != nil && rn.Checkpoint.Store != nil && cfg.Checkpoint == nil
	if rn == nil || (rn.Cache == nil && !checkpointing) || !resultcache.Cacheable(cfg) {
		return run(ctx, name, cfg)
	}
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown workload %q (have %v)", name, workloads.Names())
	}
	key := resultcache.Fingerprint(name, w.Source, cfg)
	if checkpointing {
		policy := *rn.Checkpoint
		policy.Key = key
		cfg.Checkpoint = &policy
	}
	if rn.Cache == nil {
		return run(ctx, name, cfg)
	}
	return rn.Cache.GetOrCompute(ctx, key, func(ctx context.Context) (*Report, error) {
		return run(ctx, name, cfg)
	})
}

// RunAll is RunAll through the cache: the same bounded worker pool and
// fail-soft aggregation, with each workload resolved via the cache.
func (rn *Runner) RunAll(ctx context.Context, cfg Config) ([]*Report, error) {
	return runAll(ctx, workloads.Names(), cfg, rn.RunWorkload)
}
