// Reuse-buffer design sweep: Section 7 of the paper measures how much
// repetition an 8K-entry 4-way reuse buffer captures (Table 10) and
// argues there is "room for improvement". This example quantifies
// that: it sweeps buffer sizes and associativities over one workload
// and prints the capture rate against the repetition ceiling from the
// census.
//
// Usage: go run ./examples/reusebuffer [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	name := "goban"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}

	base := repro.Config{
		SkipInstructions:    500_000,
		MeasureInstructions: 2_000_000,
	}

	// The census ceiling (2000-instance buffers).
	ceiling, err := repro.RunWorkload(context.Background(), name, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: repetition ceiling %.1f%% of dynamic instructions\n\n",
		name, ceiling.DynRepeatedPct)

	fmt.Printf("%-10s %-6s %-14s %-16s\n", "entries", "ways", "% of all inst", "% of repetition")
	for _, entries := range []int{512, 2048, 8192, 32768} {
		for _, assoc := range []int{1, 4} {
			cfg := base
			cfg.ReuseEntries = entries
			cfg.ReuseAssoc = assoc
			cfg.DisableTaint = true
			cfg.DisableLocal = true
			cfg.DisableFunc = true
			r, err := repro.RunWorkload(context.Background(), name, cfg)
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			if entries == 8192 && assoc == 4 {
				marker = "   <- paper's Table 10 configuration"
			}
			fmt.Printf("%-10d %-6d %-14.1f %-16.1f%s\n",
				entries, assoc, r.ReusePctAll, r.ReusePctRepeated, marker)
		}
	}

	fmt.Println("\nthe gap between the last column and 100% is the paper's \"room")
	fmt.Println("for improvement\": repetition the census sees but a realizable")
	fmt.Println("buffer cannot hold.")
}
