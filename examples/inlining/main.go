// Inlining ablation: Section 6 of the paper argues prologue/epilogue
// overhead "can potentially be optimized if the compiler had global
// information and could inline the function at the call site", and
// Table 9 identifies the accessor functions whose inlining would
// matter. This example tests the claim: it compiles workloads with and
// without the MiniC inliner (which inlines exactly the Table-9-style
// single-return accessors) and compares the paper's overhead metrics.
//
// Usage: go run ./examples/inlining [workload ...]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	names := []string{"goban", "odb", "lisp"}
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}

	cfg := repro.Config{
		SkipInstructions:    500_000,
		MeasureInstructions: 2_000_000,
		DisableTaint:        true,
		DisableReuse:        true,
		DisableVPred:        true,
	}

	fmt.Printf("%-8s %-9s %8s %11s %10s %8s %9s\n",
		"bench", "compiler", "static", "pro+epi%", "args%", "calls/k", "repeat%")
	for _, name := range names {
		src, ok := repro.WorkloadSource(name)
		if !ok {
			log.Fatalf("unknown workload %q", name)
		}
		input, _ := repro.WorkloadInput(name, 1)
		for _, inline := range []bool{false, true} {
			im, err := repro.CompileWith(src, repro.CompileOptions{Inline: inline})
			if err != nil {
				log.Fatal(err)
			}
			r, err := repro.RunImage(context.Background(), im, input, name, cfg)
			if err != nil {
				log.Fatal(err)
			}
			label := "base"
			if inline {
				label = "inlined"
			}
			proEpi := r.Local.OverallPct[0] + r.Local.OverallPct[1]
			fmt.Printf("%-8s %-9s %8d %10.1f%% %9.1f%% %8d %8.1f%%\n",
				name, label, r.StaticTotal, proEpi, r.Local.OverallPct[7],
				r.Table4.DynCalls/1000, r.DynRepeatedPct)
		}
	}

	fmt.Println("\ninlining removes the accessor calls (fewer dynamic calls, smaller")
	fmt.Println("prologue/epilogue share) at some static-size cost — the exact trade")
	fmt.Println("the paper's Table 9 discussion weighs. Note how much repetition")
	fmt.Println("remains: inlining shifts it between categories rather than removing it.")
}
