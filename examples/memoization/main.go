// Memoization study: analyze a custom MiniC program the way Section 6
// of the paper analyzes the SPEC workloads — how often are functions
// called with repeated arguments, which calls are pure enough to
// memoize, and how much would specializing for the top argument sets
// capture?
//
// The subject program computes binomial coefficients both recursively
// (massively repeated subproblems — the textbook memoization target)
// and with side effects (a tally in a global), so both ends of the
// paper's Table 8 spectrum appear.
//
// Usage: go run ./examples/memoization
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const subject = `
int tally;

/* Pure: same arguments always give the same answer, no side effects.
   The recursion re-poses identical subproblems constantly. */
int choose(int n, int k) {
	if (k == 0 || k == n) { return 1; }
	return choose(n - 1, k - 1) + choose(n - 1, k);
}

/* Impure: accumulates into a global, so memoizing it would change
   behaviour even though its arguments repeat. */
int chooseCounted(int n, int k) {
	tally++;
	if (k == 0 || k == n) { return 1; }
	return chooseCounted(n - 1, k - 1) + chooseCounted(n - 1, k);
}

int main() {
	int s;
	s = 0;
	for (int round = 0; round < 200; round++) {
		s += choose(14, 7);
		s += chooseCounted(10, 5);
	}
	print_int(s);
	putchar(10);
	return 0;
}
`

func main() {
	r, err := repro.RunSource(context.Background(), subject, nil, "binomial", repro.Config{
		MeasureInstructions: 4_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %d instructions of the binomial program\n\n", r.MeasuredInstructions)
	fmt.Printf("dynamic repetition:        %.1f%%\n", r.DynRepeatedPct)
	fmt.Printf("dynamic calls:             %d across %d functions\n",
		r.Table4.DynCalls, r.Table4.Funcs)
	fmt.Printf("all-argument repetition:   %.1f%% of calls\n", r.Table4.AllArgsPct)
	fmt.Printf("memoization candidates:    %.1f%% of calls (no side effects, no implicit inputs)\n",
		r.Table8.PureOfAllPct)
	fmt.Printf("...of all-arg-repeated:    %.1f%%\n\n", r.Table8.PureOfAllArgRepPct)

	fmt.Println("specialization coverage (Figure 5 for this program):")
	for k, v := range r.Fig5 {
		fmt.Printf("  specializing each function for its top %d argument set(s) captures %5.1f%%\n",
			k+1, v)
	}

	fmt.Println("\nreading: choose() repeats identical subproblems and is pure — a")
	fmt.Println("memoizer would capture them; chooseCounted() repeats the same")
	fmt.Println("arguments but its global tally makes memoization unsound, exactly")
	fmt.Println("the hazard the paper's Table 8 quantifies.")
}
