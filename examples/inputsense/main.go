// Input sensitivity: Section 3 of the paper reports that running the
// benchmarks with a second set of inputs showed "similar trends",
// supporting the conclusion that repetition is a property of how
// computation is expressed, not of the data. This example runs every
// workload on its standard and alternate input sets and compares the
// headline metrics.
//
// Usage: go run ./examples/inputsense
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	base := repro.Config{
		SkipInstructions:    300_000,
		MeasureInstructions: 1_000_000,
		DisableLocal:        true,
		DisableFunc:         true,
		DisableReuse:        true,
		DisableVPred:        true,
	}

	fmt.Printf("%-8s %18s %18s %18s\n", "", "repetition%", "internals%", "external%")
	fmt.Printf("%-8s %9s %8s %9s %8s %9s %8s\n",
		"bench", "input-1", "input-2", "input-1", "input-2", "input-1", "input-2")
	for _, name := range repro.Workloads() {
		var rep, internals, external [2]float64
		for v := 1; v <= 2; v++ {
			cfg := base
			cfg.InputVariant = v
			r, err := repro.RunWorkload(context.Background(), name, cfg)
			if err != nil {
				log.Fatal(err)
			}
			rep[v-1] = r.DynRepeatedPct
			internals[v-1] = r.Table3.OverallPct[1]
			external[v-1] = r.Table3.OverallPct[3]
		}
		fmt.Printf("%-8s %9.1f %8.1f %9.1f %8.1f %9.1f %8.1f\n",
			name, rep[0], rep[1], internals[0], internals[1], external[0], external[1])
	}

	fmt.Println("\nthe columns barely move between inputs: repetition is an artifact")
	fmt.Println("of how the computation is expressed, the paper's central claim.")
}
