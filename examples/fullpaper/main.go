// Fullpaper regenerates every table and figure of the paper across all
// eight workload analogs. With the default window (1M skip + 5M
// measured per workload) it takes on the order of ten seconds.
//
// Usage: go run ./examples/fullpaper [-skip N] [-measure N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	skip := flag.Uint64("skip", 1_000_000, "instructions to skip per workload")
	measure := flag.Uint64("measure", 5_000_000, "instructions to measure per workload")
	flag.Parse()

	cfg := repro.Config{
		SkipInstructions:    *skip,
		MeasureInstructions: *measure,
	}

	start := time.Now()
	reports, err := repro.RunAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ran %d workloads x %d instructions in %v\n",
		len(reports), *measure, time.Since(start).Round(time.Millisecond))

	fmt.Print(repro.FormatAll(reports))
}
