// Fullpaper regenerates every table and figure of the paper across all
// eight workload analogs. With the default window (1M skip + 5M
// measured per workload) it takes on the order of ten seconds.
//
// Usage: go run ./examples/fullpaper [-skip N] [-measure N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/obs"
)

func main() {
	skip := flag.Uint64("skip", 1_000_000, "instructions to skip per workload")
	measure := flag.Uint64("measure", 5_000_000, "instructions to measure per workload")
	flag.Parse()

	cfg := repro.Config{
		SkipInstructions:    *skip,
		MeasureInstructions: *measure,
	}

	start := time.Now()
	reports, err := repro.RunAll(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	obs.NewLogger(os.Stderr, obs.LevelInfo).Info("full paper run complete",
		"workloads", len(reports), "measured", *measure,
		"elapsed", time.Since(start).Round(time.Millisecond))

	fmt.Print(repro.FormatAll(reports))
}
