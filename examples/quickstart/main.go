// Quickstart: run the repetition census on one benchmark analog and
// print the headline numbers (Table 1 row, global sources, reuse
// capture).
//
// Usage: go run ./examples/quickstart [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	name := "m88k"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}

	cfg := repro.QuickConfig() // 100k skip + 500k measured instructions
	r, err := repro.RunWorkload(context.Background(), name, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: measured %d instructions (after skipping %d)\n\n",
		r.Benchmark, r.MeasuredInstructions, r.SkippedInstructions)

	fmt.Printf("instruction repetition:   %5.1f%% of dynamic instructions\n", r.DynRepeatedPct)
	fmt.Printf("static instructions:      %d executed of %d (%.1f%%), %.1f%% of executed repeat\n",
		r.StaticExecuted, r.StaticTotal, r.StaticExecPct, r.StaticRepeatPct)
	fmt.Printf("unique repeatable values: %d instances, %.0f repeats each on average\n\n",
		r.UniqueInstances, r.AvgRepeats)

	fmt.Println("where the values come from (global analysis):")
	labels := []string{"uninit", "program internals", "global init data", "external input"}
	for i, l := range labels {
		fmt.Printf("  %-18s %5.1f%% of instructions, %5.1f%% of which repeat\n",
			l, r.Table3.OverallPct[i], r.Table3.PropensityPct[i])
	}

	fmt.Printf("\nfunction calls: %d, all-argument repetition %.1f%%, memoizable %.1f%%\n",
		r.Table4.DynCalls, r.Table4.AllArgsPct, r.Table8.PureOfAllPct)
	fmt.Printf("8K 4-way reuse buffer captures %.1f%% of all instructions (%.1f%% of repetition)\n",
		r.ReusePctAll, r.ReusePctRepeated)
}
