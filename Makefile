# Convenience targets; everything is plain `go` underneath.

.PHONY: all test vet race check cover bench benchsmoke differential fuzzsmoke crashsmoke jobsmoke stress sweepsmoke repro lint examples

all: check

# Default gate: build+test, static analysis, the race detector
# (includes the concurrent-Progress ticker test and the resilience
# tests), an enforced coverage floor, a quick benchmark smoke run,
# the interpreter-vs-translator differential suite under -race,
# a bounded fuzz pass over the panic-sensitive decoders, the
# SIGKILL/resume checkpoint loop, the durable-job crash/restart
# chaos test, the extended chaos run against the overload-hardened
# server, and a tiny end-to-end design-space sweep through the CLI.
check: test vet race cover benchsmoke differential fuzzsmoke crashsmoke jobsmoke stress sweepsmoke

# Enforced statement-coverage floor across the whole module. The
# current baseline is ~84%; the floor sits a few points below so
# honest refactors don't trip it while untested subsystems do.
COVER_FLOOR := 78

cover:
	go test -count=1 -coverprofile=cover.out -coverpkg=./... ./... > /dev/null
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ { gsub("%","",$$3); print $$3 }'); \
	awk -v t=$$total -v floor=$(COVER_FLOOR) 'BEGIN { \
		if (t+0 < floor+0) { printf "FAIL: coverage %.1f%% is below the %d%% floor\n", t, floor; exit 1 } \
		printf "coverage %.1f%% (floor %d%%)\n", t, floor }'

test:
	go build ./... && go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# Full bench harness: one benchmark per table/figure plus ablations
# and the hot-path micro-benchmarks, then a BENCH_run.json snapshot of
# the per-workload RunMetrics (retire rate, observer shares) so the
# perf trajectory is comparable across PRs. The snapshot is recorded
# through the min-of-N-waves harness (WAVES full runs per workload,
# fastest wave kept, per-wave rates and spread under metrics.waves);
# override the wave count with `make bench WAVES=9`.
WAVES ?= 5
bench:
	go test -run '^$$' -bench . -benchmem -benchtime 1x -count 3 .
	go run ./cmd/instrep run -bench all -waves $(WAVES) -metrics json > BENCH_run.json

# Interpreter-vs-translator equivalence: the machine-level event-
# stream/state differential (random programs + workload prefixes, all
# three dispatch paths) and the pipeline-level canonical-report
# differential, under the race detector.
differential:
	go test -race -count=1 -run Differential ./internal/cpu .

# One-iteration smoke of the throughput benchmarks (fast enough for
# the default check gate).
benchsmoke:
	go test -run '^$$' -bench 'SimulatorRaw|PipelineFull|CensusObserve|ReuseObserve' -benchtime 1x .

# Bounded fuzz of the no-panic contracts: instruction decoding, the
# MiniC compiler front end, and the result-cache fingerprint (equal
# configs => equal keys, any measurement-field change => new key).
# `go test -fuzz` takes one target at a time, so each gets its own
# short budget.
fuzzsmoke:
	go test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/isa
	go test -run '^$$' -fuzz '^FuzzCompile$$' -fuzztime 10s ./internal/minic
	go test -run '^$$' -fuzz '^FuzzFingerprint$$' -fuzztime 10s ./internal/resultcache
	go test -run '^$$' -fuzz '^FuzzSnapshotDecode$$' -fuzztime 10s ./internal/checkpoint
	go test -run '^$$' -fuzz '^FuzzSweepSpec$$' -fuzztime 10s ./internal/sweep
	go test -run '^$$' -fuzz '^FuzzJournalScan$$' -fuzztime 10s ./internal/jobs

# Crash/resume soak: SIGKILL a checkpointed child process mid-run and
# resume in a fresh process, three times at staggered kill points,
# under the race detector. Byte-equality against a straight-through
# run is asserted on every loop.
crashsmoke:
	INSTREP_CRASH_LOOPS=3 go test -race -run 'TestCrashResumeAcrossProcesses' -count=1 .

# Durable-job chaos: SIGKILL a serve daemon mid-job, restart it over
# the same journal/checkpoint directories, and require the recovered
# job to resume mid-simulation (not restart) and finish with a report
# byte-identical to a straight-through run, under the race detector.
jobsmoke:
	go test -race -run 'TestJobCrashResumeAcrossProcesses' -count=1 .

# Extended chaos run: 50 concurrent clients against the
# overload-hardened server with poisoned workloads, under the race
# detector, with the traffic phase stretched to 30 seconds. The same
# test runs briefly in `race`; this soaks it.
stress:
	INSTREP_STRESS=30s go test -race -run 'TestChaosOverloadedServer' -count=1 .

# End-to-end smoke of the design-space sweep CLI: a tiny grid through
# `instrep sweep`, exercising spec expansion, cell execution, and the
# comparative CSV artifact without any test harness in the way.
sweepsmoke:
	go run ./cmd/instrep sweep -entries 64,256 -assoc 1,4 -policy lru,fifo \
		-bench lzw -skip 1000 -measure 20000 > /dev/null

# Regenerate every table and figure of the paper.
repro:
	go run ./examples/fullpaper

lint:
	gofmt -l . && go vet ./...

examples:
	go run ./examples/quickstart
	go run ./examples/memoization
	go run ./examples/reusebuffer
	go run ./examples/inputsense
	go run ./examples/inlining
