# Convenience targets; everything is plain `go` underneath.

.PHONY: all test bench repro lint examples

all: test

test:
	go build ./... && go vet ./... && go test ./...

# Full bench harness: one benchmark per table/figure plus ablations.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper.
repro:
	go run ./examples/fullpaper

lint:
	gofmt -l . && go vet ./...

examples:
	go run ./examples/quickstart
	go run ./examples/memoization
	go run ./examples/reusebuffer
	go run ./examples/inputsense
	go run ./examples/inlining
