# Convenience targets; everything is plain `go` underneath.

.PHONY: all test vet race check bench repro lint examples

all: check

# Default gate: build+test, static analysis, and the race detector.
check: test vet race

test:
	go build ./... && go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# Full bench harness: one benchmark per table/figure plus ablations.
bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper.
repro:
	go run ./examples/fullpaper

lint:
	gofmt -l . && go vet ./...

examples:
	go run ./examples/quickstart
	go run ./examples/memoization
	go run ./examples/reusebuffer
	go run ./examples/inputsense
	go run ./examples/inlining
