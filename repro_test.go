package repro_test

import (
	"context"
	"strings"
	"testing"

	"repro"
)

func TestWorkloadRegistry(t *testing.T) {
	names := repro.Workloads()
	if len(names) != 8 {
		t.Fatalf("got %d workloads, want 8", len(names))
	}
	infos := repro.WorkloadInfos()
	analogs := map[string]bool{}
	for _, w := range infos {
		analogs[w.Analog] = true
	}
	for _, want := range []string{"go", "m88ksim", "ijpeg", "perl", "vortex", "li", "gcc", "compress"} {
		if !analogs[want] {
			t.Errorf("missing analog for %s", want)
		}
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	if _, err := repro.RunWorkload(context.Background(), "bogus", repro.QuickConfig()); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestRunSourceAndFormat(t *testing.T) {
	r, err := repro.RunSource(context.Background(), `
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 1000; i++) { s += i & 7; }
	return s;
}`, nil, "tiny", repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.ProgramExited {
		t.Error("tiny program should finish")
	}
	if r.DynRepeatedPct <= 0 {
		t.Error("loop should exhibit repetition")
	}

	rs := []*repro.Report{r}
	for _, e := range repro.Experiments() {
		s, err := repro.Format(e, rs)
		if err != nil {
			t.Errorf("Format(%s): %v", e, err)
		}
		if !strings.Contains(s, "tiny") {
			t.Errorf("Format(%s) lacks the benchmark name:\n%s", e, s)
		}
	}
	if _, err := repro.Format("table99", rs); err == nil {
		t.Error("unknown experiment should fail")
	}
	all := repro.FormatAll(rs)
	for _, want := range []string{"Table 1", "Table 10", "Figure 1", "Figure 6"} {
		if !strings.Contains(all, want) {
			t.Errorf("FormatAll missing %q", want)
		}
	}
}

func TestRunSourceCompileError(t *testing.T) {
	if _, err := repro.RunSource(context.Background(), "int main( {", nil, "bad", repro.Config{}); err == nil {
		t.Error("bad source should fail to compile")
	}
}

func TestCompilePublic(t *testing.T) {
	im, err := repro.Compile(`int main() { return 7; }`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := repro.RunImage(context.Background(), im, nil, "seven", repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 7 {
		t.Errorf("exit = %d", r.ExitCode)
	}
}

// TestPaperShapes is the headline assertion: across the suite, the
// paper's qualitative results hold (DESIGN.md §7). It runs every
// workload with a small window.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	cfg := repro.Config{SkipInstructions: 300_000, MeasureInstructions: 1_000_000}
	reports, err := repro.RunAll(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*repro.Report{}
	for _, r := range reports {
		byName[r.Benchmark] = r
	}

	for _, r := range reports {
		// Paper Table 1: repetition is high everywhere (56.9-98.8%).
		if r.DynRepeatedPct < 50 || r.DynRepeatedPct > 99.9 {
			t.Errorf("%s: repetition %.1f%% outside the paper's band", r.Benchmark, r.DynRepeatedPct)
		}
		// Figure 1: a minority of repeated static instructions covers
		// half the repetition. (The paper reports <20% covering 90%;
		// our programs are ~100x smaller static, which flattens the
		// tail — see EXPERIMENTS.md — but the concentration at 50%
		// coverage is robust.)
		if got := r.Fig1[0]; got > 35 {
			t.Errorf("%s: %.1f%% of static insts needed for 50%% coverage (paper: minority)", r.Benchmark, got)
		}
		if got := r.Fig1[4]; got > 75 {
			t.Errorf("%s: %.1f%% of static insts needed for 90%% coverage", r.Benchmark, got)
		}
		// Table 3: program internals dominate or co-dominate; external
		// input is a minority everywhere (paper max 36.1%).
		if r.Table3.OverallPct[3] > 45 {
			t.Errorf("%s: external input %.1f%% (paper: minority)", r.Benchmark, r.Table3.OverallPct[3])
		}
		// Table 4: all-argument repetition is the common case
		// (paper: 59-98%); no-argument repetition is rare (<=15%).
		if r.Table4.AllArgsPct < 50 {
			t.Errorf("%s: all-arg repetition %.1f%% (paper: majority)", r.Benchmark, r.Table4.AllArgsPct)
		}
		// At this reduced window the first workload iteration's
		// cold-start (all tuples unseen) is a visible fraction; at the
		// default 5M window every workload is <=10% like the paper.
		if r.Table4.NoArgsPct > 30 {
			t.Errorf("%s: no-arg repetition %.1f%% (paper: rare)", r.Benchmark, r.Table4.NoArgsPct)
		}
		// Table 7: glb_addr_calc and returns repeat at ~100% when
		// present (paper: >=99.8 / >=98.8).
		if c := r.Local.OverallPct[3]; c > 0.5 {
			if p := r.Local.PropensityPct[3]; p < 95 {
				t.Errorf("%s: glb_addr_calc propensity %.1f%% (paper ~100)", r.Benchmark, p)
			}
		}
		// Table 8: memoization candidates are rare (paper <=9.3%).
		if r.Table8.PureOfAllPct > 25 {
			t.Errorf("%s: %.1f%% memoizable calls (paper: rare)", r.Benchmark, r.Table8.PureOfAllPct)
		}
		// Table 10: the reuse buffer captures a substantial part of
		// the repetition but not all of it (paper: 45.8-74.9%).
		if r.ReusePctRepeated < 20 || r.ReusePctRepeated > 99 {
			t.Errorf("%s: reuse captures %.1f%% of repetition (paper: partial)", r.Benchmark, r.ReusePctRepeated)
		}
		if r.ReusePctAll > r.DynRepeatedPct {
			t.Errorf("%s: reuse capture exceeds the census", r.Benchmark)
		}
	}

	// Cross-benchmark orderings the paper reports.
	if byName["m88k"].DynRepeatedPct < byName["lzw"].DynRepeatedPct {
		t.Error("m88k should out-repeat lzw (paper: 98.8 vs 56.9)")
	}
	// goban (go, self-play) has the smallest external-input share.
	for _, other := range []string{"jpeg", "scrip", "cc1"} {
		if byName["goban"].Table3.OverallPct[3] > byName[other].Table3.OverallPct[3] {
			t.Errorf("goban external share should not exceed %s's", other)
		}
	}
	// vortex-analog: prologue+epilogue is a large overhead share
	// (paper: 24.8% of dynamic instructions).
	pe := byName["odb"].Local.OverallPct[0] + byName["odb"].Local.OverallPct[1]
	if pe < 15 {
		t.Errorf("odb prologue+epilogue %.1f%% (paper vortex: ~25%%)", pe)
	}
}

// TestWindowStability is the paper's Section 3 validation: the paper
// compared its 1B-instruction windows against 10B-instruction runs of
// the overall local analysis and found them in agreement ("the
// program execution pattern was in a steady state"). Here: two
// disjoint measurement windows of the same workload must produce
// local-analysis category shares within a few points of each other.
func TestWindowStability(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	for _, name := range []string{"m88k", "odb"} {
		early := repro.Config{SkipInstructions: 300_000, MeasureInstructions: 700_000,
			DisableTaint: true, DisableFunc: true, DisableReuse: true, DisableVPred: true}
		late := early
		late.SkipInstructions = 2_000_000

		r1, err := repro.RunWorkload(context.Background(), name, early)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := repro.RunWorkload(context.Background(), name, late)
		if err != nil {
			t.Fatal(err)
		}
		for c := range r1.Local.OverallPct {
			d := r1.Local.OverallPct[c] - r2.Local.OverallPct[c]
			if d < 0 {
				d = -d
			}
			if d > 5 {
				t.Errorf("%s: local category %d share moved %.1f points between windows", name, c, d)
			}
		}
		if d := r1.DynRepeatedPct - r2.DynRepeatedPct; d > 8 || d < -8 {
			t.Errorf("%s: repetition moved %.1f points between windows", name, d)
		}
	}
}
