package repro_test

// Cross-process chaos acceptance for the durable job tier (DESIGN.md
// §18): a serve daemon is SIGKILLed mid-job — no drain, no journal
// flush beyond the last fsync — then restarted over the same journal
// and checkpoint directories. The restarted daemon must replay the
// journal, re-enqueue the interrupted job, resume it from its last
// snapshot (at least one resume recorded), and serve a report
// byte-identical to a straight-through run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/jobs"
	"repro/internal/reportserver"
	"repro/internal/resultcache"
)

// jobsHelperMain is the SIGKILL target: a serve daemon with the job
// tier enabled and all durable state under dir. It writes its listen
// address to dir/addr once the listener is up and serves until killed.
func jobsHelperMain(dir string) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "jobs helper:", err)
		os.Exit(1)
	}
	cache, err := resultcache.NewWith(resultcache.Options{Dir: filepath.Join(dir, "cache")})
	if err != nil {
		fail(err)
	}
	store, err := checkpoint.Open(filepath.Join(dir, "ckpt"))
	if err != nil {
		fail(err)
	}
	cfg := crashWindow()
	cfg.DisableTranslation = true // slow path: the parent's kill lands mid-run
	srv := reportserver.New(reportserver.Config{
		RunConfig:   cfg,
		Cache:       cache,
		Checkpoints: store,
	})
	if err := srv.OpenJobs(reportserver.JobsConfig{
		Dir:             filepath.Join(dir, "jobs"),
		CheckpointEvery: crashEvery,
		Backoff:         10 * time.Millisecond,
	}); err != nil {
		fail(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	// Temp file + rename so the parent never reads a torn address.
	tmp := filepath.Join(dir, "addr.partial")
	if err := os.WriteFile(tmp, []byte("http://"+l.Addr().String()), 0o644); err != nil {
		fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		fail(err)
	}
	if err := srv.Serve(context.Background(), l); err != nil {
		fail(err)
	}
	os.Exit(0)
}

// TestJobCrashResumeAcrossProcesses is the job tier's durability
// acceptance (the `make jobsmoke` target).
func TestJobCrashResumeAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills server processes in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	straight, err := repro.RunWorkload(context.Background(), crashWorkload, crashWindow())
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.CanonicalReportJSON(straight)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	var stderr bytes.Buffer
	startHelper := func() *exec.Cmd {
		t.Helper()
		os.Remove(addrFile) // each process writes its own port
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "INSTREP_JOBS_HELPER_DIR="+dir)
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	waitAddr := func() string {
		t.Helper()
		deadline := time.Now().Add(time.Minute)
		for {
			if data, err := os.ReadFile(addrFile); err == nil {
				return string(data)
			}
			if time.Now().After(deadline) {
				t.Fatalf("helper never published its address; stderr:\n%s", stderr.String())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	cmd := startHelper()
	base := waitAddr()

	// Submit the daemon's own serving configuration for the crash
	// workload; the job ID is the result-cache fingerprint, which is
	// also the checkpoint key.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"`+crashWorkload+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	var doc jobs.Doc
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d, decode err %v", resp.StatusCode, err)
	}

	// Kill the daemon the moment the job's first snapshot lands, so
	// the interruption is guaranteed to be mid-simulation.
	ckptPath := filepath.Join(dir, "ckpt", doc.ID+".ckpt")
	deadline := time.Now().Add(time.Minute)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("no job snapshot appeared; helper stderr:\n%s", stderr.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cmd.Process.Kill() // SIGKILL: no drain, no deferred cleanup
	cmd.Wait()

	// A fresh daemon over the same directories replays the journal and
	// finishes the job without being asked.
	cmd2 := startHelper()
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	base2 := waitAddr()

	deadline = time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base2 + "/v1/jobs/" + doc.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("status: HTTP %d, decode err %v; stderr:\n%s",
				resp.StatusCode, err, stderr.String())
		}
		if doc.State == jobs.StateDone {
			break
		}
		if doc.State.Terminal() {
			t.Fatalf("recovered job finished %s (%s), want done", doc.State, doc.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %s; stderr:\n%s", doc.State, stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if doc.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1 (job restarted from scratch, not from its snapshot)", doc.Resumes)
	}

	resp, err = http.Get(base2 + "/v1/jobs/" + doc.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("report: HTTP %d, err %v", resp.StatusCode, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-crash job report diverged from the straight-through run\n%s",
			firstDiff(want, got))
	}
}
