package cpu_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cpu"
)

func TestTracer(t *testing.T) {
	m := load(t, exitStub+`
		.func double 1
double:
		addu $v0, $a0, $a0
		jr $ra
		.endfunc
		.func main 0
main:
		addiu $sp, $sp, -8
		sw $ra, 4($sp)
		li $a0, 21
		jal double
		lw $ra, 4($sp)
		addiu $sp, $sp, 8
		jr $ra
		.endfunc
	`, "")
	var buf bytes.Buffer
	m.Attach(cpu.NewTracer(&buf, 0))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"call main()",
		"call double(21)",
		"return",
		"addu $v0, $a0, $a0",
		"$v0=0x2a",
		"jr $ra",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTracerLimit(t *testing.T) {
	m := load(t, exitStub+`
		.func main 0
main:
		li $t0, 100
loop:
		addiu $t0, $t0, -1
		bne $t0, $zero, loop
		jr $ra
		.endfunc
	`, "")
	var buf bytes.Buffer
	m.Attach(cpu.NewTracer(&buf, 5))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines > 8 { // 5 instruction lines + call marker + truncation marker
		t.Errorf("limit not enforced: %d lines\n%s", lines, out)
	}
	marker := "... trace truncated after 5 lines"
	if got := strings.Count(out, marker); got != 1 {
		t.Errorf("want exactly one truncation marker, got %d:\n%s", got, out)
	}
	if !strings.HasSuffix(strings.TrimSuffix(out, "\n"), marker) {
		t.Errorf("truncation marker should be the last line:\n%s", out)
	}
}

func TestTracerMemoryAndBranch(t *testing.T) {
	m := load(t, exitStub+`
		.data
v:		.word 5
		.text
		.func main 0
main:
		lw $t0, %gp(v)
		sw $t0, %gp(v)
		beq $t0, $zero, skip
		li $v0, 0
skip:
		jr $ra
		.endfunc
	`, "")
	var buf bytes.Buffer
	m.Attach(cpu.NewTracer(&buf, 0))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[0x10000000]->0x5", "[0x10000000]<-0x5", "not-taken"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
