package cpu

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Tracer is an Observer that writes a human-readable execution trace:
// one line per retired instruction, with register writes, memory
// traffic, and function entry/exit markers. It is a development aid
// for writing workloads and debugging the compiler
// (cmd/instrep exec -trace).
type Tracer struct {
	W io.Writer
	// Limit stops output after this many instruction lines
	// (0 = unlimited); a single truncation marker is emitted when the
	// limit is reached so a capped trace is distinguishable from a
	// program that stopped.
	Limit uint64

	lines     uint64
	depth     int
	truncated bool
}

// NewTracer builds a tracer writing to w, stopping after limit lines.
func NewTracer(w io.Writer, limit uint64) *Tracer {
	return &Tracer{W: w, Limit: limit}
}

// open reports whether the tracer may still write, emitting the
// truncation marker the first time the limit is hit.
func (t *Tracer) open() bool {
	if t.Limit == 0 || t.lines < t.Limit {
		return true
	}
	if !t.truncated {
		t.truncated = true
		fmt.Fprintf(t.W, "... trace truncated after %d lines\n", t.Limit)
	}
	return false
}

// OnInst implements Observer.
func (t *Tracer) OnInst(ev *Event) {
	if !t.open() {
		return
	}
	t.lines++
	fmt.Fprintf(t.W, "%8d  %08x  %-28s", ev.Index, ev.PC, ev.Inst.String())
	if ev.Dst >= 0 {
		fmt.Fprintf(t.W, "  %s=%#x", regName(ev.Dst), ev.DstVal)
	}
	if ev.Aux >= 0 {
		fmt.Fprintf(t.W, " %s=%#x", regName(ev.Aux), ev.AuxVal)
	}
	switch {
	case ev.IsLoad:
		fmt.Fprintf(t.W, "  [%#x]->%#x", ev.Addr, ev.MemVal)
	case ev.IsStore:
		fmt.Fprintf(t.W, "  [%#x]<-%#x", ev.Addr, ev.MemVal)
	case ev.IsBranch:
		if ev.Taken {
			fmt.Fprintf(t.W, "  taken->%#x", ev.NextPC)
		} else {
			fmt.Fprint(t.W, "  not-taken")
		}
	}
	fmt.Fprintln(t.W)
}

// OnCall implements CallObserver.
func (t *Tracer) OnCall(ev *CallEvent) {
	if !t.open() {
		return
	}
	t.depth++
	name := "?"
	nargs := 0
	if ev.Callee != nil {
		name = ev.Callee.Name
		nargs = ev.Callee.NArgs
	}
	fmt.Fprintf(t.W, "%8s  %*scall %s(", "", 2*t.depth, "", name)
	for i := 0; i < nargs && i < MaxTrackedArgs; i++ {
		if i > 0 {
			fmt.Fprint(t.W, ", ")
		}
		fmt.Fprintf(t.W, "%d", int32(ev.Args[i]))
	}
	fmt.Fprintln(t.W, ")")
}

// OnReturn implements CallObserver.
func (t *Tracer) OnReturn(ev *RetEvent) {
	if !t.open() {
		return
	}
	if t.depth > 0 {
		fmt.Fprintf(t.W, "%8s  %*sreturn\n", "", 2*t.depth, "")
		t.depth--
	}
}

func regName(r int16) string {
	switch r {
	case RegHI:
		return "$hi"
	case RegLO:
		return "$lo"
	default:
		return isa.RegName(int(r))
	}
}
