// Package cpu implements the functional simulator: a fetch/decode/
// execute loop over a program.Image with a syscall interface and
// observer hooks that feed the repetition and dataflow analyses.
//
// The simulator is purely functional (no pipeline, no delay slots),
// mirroring the paper's use of a SimpleScalar-derived functional
// simulator: the analyses are ISA-level dataflow properties.
package cpu

import (
	"bytes"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// Extended register indices for the multiply/divide unit; the analyses
// track value tags for these alongside the 32 GPRs.
const (
	RegHI = 32
	RegLO = 33
	// NumRegs is the size of the extended register file.
	NumRegs = 34
)

// Syscall numbers (SPIM-compatible subset plus a block read).
const (
	SysPrintInt  = 1
	SysPrintStr  = 4
	SysSbrk      = 9
	SysExit      = 10
	SysPutChar   = 11
	SysReadChar  = 12
	SysReadBlock = 13
)

// Event describes one retired instruction. The same Event value is
// reused across steps; observers must not retain it.
type Event struct {
	Index uint64   // dynamic instruction number (0-based)
	PC    uint32   // address of the instruction
	Inst  isa.Inst // decoded instruction

	// Register sources actually read, -1 if absent. For loads Src1 is
	// the base register; for stores Src1 is the base and Src2 the data.
	Src1, Src2 int16
	Src1Val    uint32
	Src2Val    uint32

	// Destination register written, -1 if none.
	Dst    int16
	DstVal uint32
	// Aux destination (HI for mult/div, which write both HI and LO).
	Aux    int16
	AuxVal uint32

	// Memory behaviour.
	IsLoad  bool
	IsStore bool
	Addr    uint32 // effective address
	MemVal  uint32 // value loaded or stored (after size extension)

	// Control behaviour.
	IsBranch bool
	Taken    bool
	NextPC   uint32

	// Syscall number when Inst.Op is OpSYSCALL.
	SysNum uint32
}

// Observer receives each retired instruction.
type Observer interface {
	OnInst(ev *Event)
}

// EventSink is an Observer that additionally exposes the storage the
// machine may build the next event in, so a sole observer that buffers
// events (the core pipeline) receives them without a build-then-copy.
// NextSlot returns scratch space for the upcoming instruction; the
// event only becomes the sink's when the machine passes the same
// pointer to OnInst (an abandoned slot — a faulting instruction — is
// simply reused). The machine uses the slot protocol only while the
// sink is its single attached observer.
type EventSink interface {
	Observer
	NextSlot() *Event
}

// StepHook intercepts the run loop before each step with the current
// retire count and PC; a non-nil error aborts Run with that error.
// Installed via Machine.Hook — used by the watchdog progress publisher
// and the fault-injection harness. When no hook is installed the run
// loop pays nothing for the feature.
type StepHook func(count uint64, pc uint32) error

// MaxTrackedArgs bounds how many argument values a CallEvent carries.
const MaxTrackedArgs = 8

// CallEvent describes a function call (jal/jalr) after it executed.
type CallEvent struct {
	Index   uint64
	PC      uint32 // address of the call instruction
	Target  uint32 // callee entry
	RetAddr uint32
	Callee  *program.Func // nil if target is not a known function entry
	SP      uint32        // stack pointer at the call
	// Args holds the callee's declared arguments (register args from
	// $a0..$a3, the rest read from the caller's outgoing slots).
	// Valid only when Callee != nil; Args[i] for i >= Callee.NArgs is
	// zero.
	Args [MaxTrackedArgs]uint32
}

// RetEvent describes a function return (jr $ra).
type RetEvent struct {
	Index  uint64
	PC     uint32
	Target uint32 // return target
}

// CallObserver receives call/return events in addition to instructions.
type CallObserver interface {
	OnCall(ev *CallEvent)
	OnReturn(ev *RetEvent)
}

// Counters aggregates retirement statistics the simulator maintains
// for the observability layer: memory traffic, control flow, syscall
// count, and the per-opcode-kind instruction mix. They cover every
// retired instruction (warmup included) and cost a few increments per
// step.
type Counters struct {
	Loads         uint64
	Stores        uint64
	Branches      uint64
	BranchesTaken uint64
	Syscalls      uint64
	// Kinds tallies retired instructions per isa.Kind.
	Kinds [isa.NumKinds]uint64
}

// Machine is one simulated CPU with its memory and OS interface.
type Machine struct {
	Image *program.Image
	Mem   *mem.Memory
	Regs  [NumRegs]uint32
	PC    uint32
	Brk   uint32 // heap break, grows via sbrk
	Count uint64 // instructions retired

	// Stats are the retirement counters (see Counters).
	Stats Counters

	Halted   bool
	ExitCode int32

	// Output receives bytes written by print/putchar syscalls.
	Output bytes.Buffer
	// MaxOutput bounds Output growth (0 = 1 MiB default); beyond it
	// output is counted but discarded.
	MaxOutput int

	input []byte
	inPos int

	// Hook, when non-nil, runs before every step (see StepHook). Run
	// switches to a hooked loop so the common path stays unchanged.
	// A hooked machine always executes through the Step interpreter:
	// the hook contract is "called before every instruction", which the
	// block-translated path does not honor.
	Hook StepHook

	// NoTranslate forces the Step interpreter even when no Hook is
	// installed (used by the differential harness and as an escape
	// hatch; see translate.go).
	NoTranslate bool

	observers     []Observer
	callObservers []CallObserver
	sink          EventSink // non-nil iff the single observer is an EventSink
	ev            Event
	trans         *transTable
}

// New creates a machine, loads the image, and initializes registers.
func New(im *program.Image, input []byte) *Machine {
	m := &Machine{
		Image: im,
		Mem:   mem.New(),
		PC:    im.Entry,
		Brk:   im.HeapBase(),
		input: input,
	}
	m.Mem.StoreBytes(program.DataBase, im.Data)
	m.Regs[isa.RegSP] = program.StackTop
	m.Regs[isa.RegGP] = program.GPValue
	return m
}

// Attach registers an observer; if it also implements CallObserver it
// receives call/return events.
func (m *Machine) Attach(o Observer) {
	m.observers = append(m.observers, o)
	if co, ok := o.(CallObserver); ok {
		m.callObservers = append(m.callObservers, co)
	}
	// The slot protocol requires a single observer: with several, each
	// must see the event, so the machine builds it in its own buffer.
	if len(m.observers) == 1 {
		m.sink, _ = o.(EventSink)
	} else {
		m.sink = nil
	}
}

// DetachAll removes every observer.
func (m *Machine) DetachAll() {
	m.observers = nil
	m.callObservers = nil
	m.sink = nil
}

// InputRemaining returns the number of unread input bytes.
func (m *Machine) InputRemaining() int { return len(m.input) - m.inPos }

// Run executes at most max instructions (all remaining if max == 0),
// returning the number retired. It stops early when the program exits
// or when the installed Hook (if any) returns an error.
func (m *Machine) Run(max uint64) (uint64, error) {
	start := m.Count
	if m.Hook != nil {
		return m.runHooked(max, start)
	}
	if !m.NoTranslate {
		return m.runTranslated(max, start)
	}
	for !m.Halted && (max == 0 || m.Count-start < max) {
		if err := m.Step(); err != nil {
			return m.Count - start, err
		}
	}
	return m.Count - start, nil
}

// runHooked is the Run loop with the per-step Hook consulted; kept
// separate so the unhooked hot loop carries no extra branch.
func (m *Machine) runHooked(max, start uint64) (uint64, error) {
	for !m.Halted && (max == 0 || m.Count-start < max) {
		if err := m.Hook(m.Count, m.PC); err != nil {
			return m.Count - start, err
		}
		if err := m.Step(); err != nil {
			return m.Count - start, err
		}
	}
	return m.Count - start, nil
}

// faultf builds a simulation fault annotated with the current PC.
func (m *Machine) faultf(format string, args ...any) error {
	where := ""
	if f := m.Image.FuncAt(m.PC); f != nil {
		where = " in " + f.Name
	}
	return fmt.Errorf("cpu: pc=0x%x%s: %s", m.PC, where, fmt.Sprintf(format, args...))
}

// Step executes one instruction.
func (m *Machine) Step() error {
	if m.Halted {
		return m.faultf("machine is halted")
	}
	in, err := m.Image.InstAt(m.PC)
	if err != nil {
		return m.faultf("fetch: %v", err)
	}

	ev := &m.ev
	if m.sink != nil {
		ev = m.sink.NextSlot()
	}
	*ev = Event{
		Index:  m.Count,
		PC:     m.PC,
		Inst:   in,
		Src1:   -1,
		Src2:   -1,
		Dst:    -1,
		Aux:    -1,
		NextPC: m.PC + 4,
	}

	if err := m.execute(in, ev); err != nil {
		return err
	}

	// $zero is hardwired.
	m.Regs[isa.RegZero] = 0

	m.Count++
	m.Stats.Kinds[isa.OpKind(in.Op)]++
	switch {
	case ev.IsLoad:
		m.Stats.Loads++
	case ev.IsStore:
		m.Stats.Stores++
	case ev.IsBranch:
		m.Stats.Branches++
		if ev.Taken {
			m.Stats.BranchesTaken++
		}
	case in.Op == isa.OpSYSCALL:
		m.Stats.Syscalls++
	}
	m.PC = ev.NextPC

	if m.sink != nil {
		m.sink.OnInst(ev)
	} else {
		for _, o := range m.observers {
			o.OnInst(ev)
		}
	}
	// Call/return events follow the instruction event so observers see
	// a consistent order.
	if len(m.callObservers) > 0 {
		m.emitCallEvents(ev)
	}
	return nil
}

// emitCallEvents delivers call/return events for a just-retired jump
// instruction. Shared by the interpreter and the translated path so
// both produce identical observer streams.
func (m *Machine) emitCallEvents(ev *Event) {
	switch ev.Inst.Op {
	case isa.OpJAL, isa.OpJALR:
		m.emitCall(ev, m.Image.FuncByEntry(ev.NextPC))
	case isa.OpJR:
		if ev.Inst.Rs == isa.RegRA {
			m.emitRet(ev)
		}
	}
}

// emitCall delivers the call event with an already-resolved callee.
// A JAL's target is static, so the translated path resolves the
// callee once at translation time and skips the per-call symbol
// lookup; FuncByEntry is a pure function of the immutable image, so
// the pre-resolved value is identical to the per-call lookup.
func (m *Machine) emitCall(ev *Event, callee *program.Func) {
	ce := CallEvent{
		Index:   ev.Index,
		PC:      ev.PC,
		Target:  ev.NextPC,
		RetAddr: ev.PC + 4,
		Callee:  callee,
		SP:      m.Regs[isa.RegSP],
	}
	if ce.Callee != nil {
		n := ce.Callee.NArgs
		if n > MaxTrackedArgs {
			n = MaxTrackedArgs
		}
		for i := 0; i < n; i++ {
			if i < 4 {
				ce.Args[i] = m.Regs[isa.RegA0+i]
			} else {
				ce.Args[i] = m.Mem.ReadWord(ce.SP + uint32(4*i))
			}
		}
	}
	for _, o := range m.callObservers {
		o.OnCall(&ce)
	}
}

// emitRet delivers the return event for a retired JR $ra.
func (m *Machine) emitRet(ev *Event) {
	re := RetEvent{Index: ev.Index, PC: ev.PC, Target: ev.NextPC}
	for _, o := range m.callObservers {
		o.OnReturn(&re)
	}
}

// setDst records the destination write. A write targeting $zero is
// architecturally discarded — the register always reads 0 — so the
// event reports DstVal 0, keeping the repetition census and reuse
// buffer keyed on the value consumers can actually observe.
func (m *Machine) setDst(ev *Event, r uint8, v uint32) {
	if r != isa.RegZero {
		m.Regs[r] = v
	} else {
		v = 0
	}
	ev.Dst = int16(r)
	ev.DstVal = v
}

func (m *Machine) src1(ev *Event, r uint8) uint32 {
	ev.Src1 = int16(r)
	ev.Src1Val = m.Regs[r]
	return ev.Src1Val
}

func (m *Machine) src2(ev *Event, r uint8) uint32 {
	ev.Src2 = int16(r)
	ev.Src2Val = m.Regs[r]
	return ev.Src2Val
}

func (m *Machine) execute(in isa.Inst, ev *Event) error {
	switch in.Op {
	case isa.OpADDU:
		m.setDst(ev, in.Rd, m.src1(ev, in.Rs)+m.src2(ev, in.Rt))
	case isa.OpSUBU:
		m.setDst(ev, in.Rd, m.src1(ev, in.Rs)-m.src2(ev, in.Rt))
	case isa.OpAND:
		m.setDst(ev, in.Rd, m.src1(ev, in.Rs)&m.src2(ev, in.Rt))
	case isa.OpOR:
		m.setDst(ev, in.Rd, m.src1(ev, in.Rs)|m.src2(ev, in.Rt))
	case isa.OpXOR:
		m.setDst(ev, in.Rd, m.src1(ev, in.Rs)^m.src2(ev, in.Rt))
	case isa.OpNOR:
		m.setDst(ev, in.Rd, ^(m.src1(ev, in.Rs) | m.src2(ev, in.Rt)))
	case isa.OpSLT:
		v := uint32(0)
		if int32(m.src1(ev, in.Rs)) < int32(m.src2(ev, in.Rt)) {
			v = 1
		}
		m.setDst(ev, in.Rd, v)
	case isa.OpSLTU:
		v := uint32(0)
		if m.src1(ev, in.Rs) < m.src2(ev, in.Rt) {
			v = 1
		}
		m.setDst(ev, in.Rd, v)
	case isa.OpSLLV:
		m.setDst(ev, in.Rd, m.src2(ev, in.Rt)<<(m.src1(ev, in.Rs)&31))
	case isa.OpSRLV:
		m.setDst(ev, in.Rd, m.src2(ev, in.Rt)>>(m.src1(ev, in.Rs)&31))
	case isa.OpSRAV:
		m.setDst(ev, in.Rd, uint32(int32(m.src2(ev, in.Rt))>>(m.src1(ev, in.Rs)&31)))

	case isa.OpSLL:
		m.setDst(ev, in.Rd, m.src1(ev, in.Rt)<<uint(in.Imm))
	case isa.OpSRL:
		m.setDst(ev, in.Rd, m.src1(ev, in.Rt)>>uint(in.Imm))
	case isa.OpSRA:
		m.setDst(ev, in.Rd, uint32(int32(m.src1(ev, in.Rt))>>uint(in.Imm)))

	case isa.OpMULT:
		p := int64(int32(m.src1(ev, in.Rs))) * int64(int32(m.src2(ev, in.Rt)))
		m.Regs[RegLO] = uint32(p)
		m.Regs[RegHI] = uint32(p >> 32)
		ev.Dst, ev.DstVal = RegLO, uint32(p)
		ev.Aux, ev.AuxVal = RegHI, uint32(p>>32)
	case isa.OpMULTU:
		p := uint64(m.src1(ev, in.Rs)) * uint64(m.src2(ev, in.Rt))
		m.Regs[RegLO] = uint32(p)
		m.Regs[RegHI] = uint32(p >> 32)
		ev.Dst, ev.DstVal = RegLO, uint32(p)
		ev.Aux, ev.AuxVal = RegHI, uint32(p>>32)
	case isa.OpDIV:
		a, b := int32(m.src1(ev, in.Rs)), int32(m.src2(ev, in.Rt))
		if b == 0 {
			return m.faultf("integer division by zero")
		}
		var q, r int32
		if a == -1<<31 && b == -1 {
			q, r = a, 0 // wraparound, matches hardware
		} else {
			q, r = a/b, a%b
		}
		m.Regs[RegLO] = uint32(q)
		m.Regs[RegHI] = uint32(r)
		ev.Dst, ev.DstVal = RegLO, uint32(q)
		ev.Aux, ev.AuxVal = RegHI, uint32(r)
	case isa.OpDIVU:
		a, b := m.src1(ev, in.Rs), m.src2(ev, in.Rt)
		if b == 0 {
			return m.faultf("integer division by zero")
		}
		m.Regs[RegLO] = a / b
		m.Regs[RegHI] = a % b
		ev.Dst, ev.DstVal = RegLO, a/b
		ev.Aux, ev.AuxVal = RegHI, a%b

	case isa.OpMFHI:
		ev.Src1, ev.Src1Val = RegHI, m.Regs[RegHI]
		m.setDst(ev, in.Rd, m.Regs[RegHI])
	case isa.OpMFLO:
		ev.Src1, ev.Src1Val = RegLO, m.Regs[RegLO]
		m.setDst(ev, in.Rd, m.Regs[RegLO])
	case isa.OpMTHI:
		v := m.src1(ev, in.Rs)
		m.Regs[RegHI] = v
		ev.Dst, ev.DstVal = RegHI, v
	case isa.OpMTLO:
		v := m.src1(ev, in.Rs)
		m.Regs[RegLO] = v
		ev.Dst, ev.DstVal = RegLO, v

	case isa.OpADDIU:
		m.setDst(ev, in.Rt, m.src1(ev, in.Rs)+uint32(in.Imm))
	case isa.OpSLTI:
		v := uint32(0)
		if int32(m.src1(ev, in.Rs)) < in.Imm {
			v = 1
		}
		m.setDst(ev, in.Rt, v)
	case isa.OpSLTIU:
		v := uint32(0)
		if m.src1(ev, in.Rs) < uint32(in.Imm) {
			v = 1
		}
		m.setDst(ev, in.Rt, v)
	case isa.OpANDI:
		m.setDst(ev, in.Rt, m.src1(ev, in.Rs)&uint32(in.Imm&0xffff))
	case isa.OpORI:
		m.setDst(ev, in.Rt, m.src1(ev, in.Rs)|uint32(in.Imm&0xffff))
	case isa.OpXORI:
		m.setDst(ev, in.Rt, m.src1(ev, in.Rs)^uint32(in.Imm&0xffff))
	case isa.OpLUI:
		m.setDst(ev, in.Rt, uint32(in.Imm)<<16)

	case isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW:
		return m.load(in, ev)
	case isa.OpSB, isa.OpSH, isa.OpSW:
		return m.store(in, ev)

	case isa.OpBEQ:
		ev.IsBranch = true
		if m.src1(ev, in.Rs) == m.src2(ev, in.Rt) {
			ev.Taken = true
			ev.NextPC = uint32(int64(ev.PC) + 4 + int64(in.Imm)*4)
		}
	case isa.OpBNE:
		ev.IsBranch = true
		if m.src1(ev, in.Rs) != m.src2(ev, in.Rt) {
			ev.Taken = true
			ev.NextPC = uint32(int64(ev.PC) + 4 + int64(in.Imm)*4)
		}
	case isa.OpBLEZ:
		ev.IsBranch = true
		if int32(m.src1(ev, in.Rs)) <= 0 {
			ev.Taken = true
			ev.NextPC = uint32(int64(ev.PC) + 4 + int64(in.Imm)*4)
		}
	case isa.OpBGTZ:
		ev.IsBranch = true
		if int32(m.src1(ev, in.Rs)) > 0 {
			ev.Taken = true
			ev.NextPC = uint32(int64(ev.PC) + 4 + int64(in.Imm)*4)
		}
	case isa.OpBLTZ:
		ev.IsBranch = true
		if int32(m.src1(ev, in.Rs)) < 0 {
			ev.Taken = true
			ev.NextPC = uint32(int64(ev.PC) + 4 + int64(in.Imm)*4)
		}
	case isa.OpBGEZ:
		ev.IsBranch = true
		if int32(m.src1(ev, in.Rs)) >= 0 {
			ev.Taken = true
			ev.NextPC = uint32(int64(ev.PC) + 4 + int64(in.Imm)*4)
		}

	case isa.OpJ:
		ev.NextPC = (ev.PC+4)&0xf0000000 | uint32(in.Imm)<<2
	case isa.OpJAL:
		m.setDst(ev, isa.RegRA, ev.PC+4)
		ev.NextPC = (ev.PC+4)&0xf0000000 | uint32(in.Imm)<<2
	case isa.OpJR:
		ev.NextPC = m.src1(ev, in.Rs)
	case isa.OpJALR:
		target := m.src1(ev, in.Rs)
		m.setDst(ev, in.Rd, ev.PC+4)
		ev.NextPC = target

	case isa.OpSYSCALL:
		return m.syscall(ev)
	case isa.OpBREAK:
		return m.faultf("break instruction")
	default:
		return m.faultf("invalid instruction")
	}
	return nil
}

func (m *Machine) checkAddr(addr uint32, size uint32) error {
	if addr%size != 0 {
		return m.faultf("unaligned %d-byte access at 0x%x", size, addr)
	}
	// The whole extent [addr, addr+size) must fall below the heap break
	// (or inside the stack): with an unaligned break, a word access
	// starting just below Brk would otherwise touch bytes past it.
	if addr < program.DataBase || (addr+size > m.Brk && addr < program.StackLimit) || addr > program.StackTop-size {
		return m.faultf("memory access out of bounds at 0x%x (brk=0x%x)", addr, m.Brk)
	}
	return nil
}

func (m *Machine) load(in isa.Inst, ev *Event) error {
	addr := m.src1(ev, in.Rs) + uint32(in.Imm)
	ev.IsLoad = true
	ev.Addr = addr
	var v uint32
	switch in.Op {
	case isa.OpLB:
		if err := m.checkAddr(addr, 1); err != nil {
			return err
		}
		v = uint32(int32(int8(m.Mem.LoadByte(addr))))
	case isa.OpLBU:
		if err := m.checkAddr(addr, 1); err != nil {
			return err
		}
		v = uint32(m.Mem.LoadByte(addr))
	case isa.OpLH:
		if err := m.checkAddr(addr, 2); err != nil {
			return err
		}
		v = uint32(int32(int16(m.Mem.ReadHalf(addr))))
	case isa.OpLHU:
		if err := m.checkAddr(addr, 2); err != nil {
			return err
		}
		v = uint32(m.Mem.ReadHalf(addr))
	default: // OpLW
		if err := m.checkAddr(addr, 4); err != nil {
			return err
		}
		v = m.Mem.ReadWord(addr)
	}
	ev.MemVal = v
	m.setDst(ev, in.Rt, v)
	return nil
}

func (m *Machine) store(in isa.Inst, ev *Event) error {
	addr := m.src1(ev, in.Rs) + uint32(in.Imm)
	v := m.src2(ev, in.Rt)
	ev.IsStore = true
	ev.Addr = addr
	switch in.Op {
	case isa.OpSB:
		if err := m.checkAddr(addr, 1); err != nil {
			return err
		}
		ev.MemVal = v & 0xff
		m.Mem.StoreByte(addr, byte(v))
	case isa.OpSH:
		if err := m.checkAddr(addr, 2); err != nil {
			return err
		}
		ev.MemVal = v & 0xffff
		m.Mem.WriteHalf(addr, uint16(v))
	default: // OpSW
		if err := m.checkAddr(addr, 4); err != nil {
			return err
		}
		ev.MemVal = v
		m.Mem.WriteWord(addr, v)
	}
	return nil
}
