package cpu_test

// Differential harness for the basic-block translation cache: the
// Step interpreter is the reference semantics, and every test here
// runs the same program through both paths (and through the EventSink
// slot protocol) asserting identical event streams, call/return
// streams, retirement counters, faults, and final machine state. See
// the correctness contract at the top of translate.go.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workloads"
)

// outcome is everything observable about a finished (or budget- or
// fault-stopped) run apart from the event streams.
type outcome struct {
	executed uint64
	errStr   string
	count    uint64
	halted   bool
	exitCode int32
	pc       uint32
	brk      uint32
	regs     [cpu.NumRegs]uint32
	stats    cpu.Counters
	output   string
	dataSum  uint64
	stackSum uint64
}

const fnvPrime = 1099511628211

// memSum hashes the byte range [lo, hi) of m's memory.
func memSum(m *cpu.Machine, lo, hi uint32) uint64 {
	h := uint64(14695981039346656037)
	for a := lo; a < hi; a++ {
		h = (h ^ uint64(m.Mem.LoadByte(a))) * fnvPrime
	}
	return h
}

// snapshot captures m's final state. The data sum covers the static
// data segment plus the heap up to the break; the stack sum covers the
// top 64 KiB (all the workloads and generated programs stay within it).
func snapshot(m *cpu.Machine, executed uint64, err error) outcome {
	o := outcome{
		executed: executed,
		count:    m.Count,
		halted:   m.Halted,
		exitCode: m.ExitCode,
		pc:       m.PC,
		brk:      m.Brk,
		regs:     m.Regs,
		stats:    m.Stats,
		output:   m.Output.String(),
	}
	if err != nil {
		o.errStr = err.Error()
	}
	dataEnd := m.Brk
	if max := program.DataBase + 4<<20; dataEnd > max {
		dataEnd = max
	}
	o.dataSum = memSum(m, program.DataBase, dataEnd)
	o.stackSum = memSum(m, program.StackTop-64<<10, program.StackTop)
	return o
}

// sinkRecorder is a recorder that additionally implements
// cpu.EventSink, so a machine with it as sole observer exercises the
// build-in-slot protocol (the same one internal/core's pipeline uses).
type sinkRecorder struct {
	events []cpu.Event
}

func (r *sinkRecorder) NextSlot() *cpu.Event {
	if len(r.events) == cap(r.events) {
		grown := make([]cpu.Event, len(r.events), 2*cap(r.events)+64)
		copy(grown, r.events)
		r.events = grown
	}
	return &r.events[:cap(r.events)][len(r.events)]
}

func (r *sinkRecorder) OnInst(ev *cpu.Event) {
	if n := len(r.events); n < cap(r.events) && ev == &r.events[:n+1][n] {
		r.events = r.events[:n+1]
		return
	}
	r.events = append(r.events, *ev)
}

// runPath executes im/input for at most budget instructions on one of
// the three machine configurations.
type pathConfig struct {
	name        string
	noTranslate bool
	sink        bool
}

var paths = []pathConfig{
	{"interpreted", true, false},
	{"translated", false, false},
	{"translated-sink", false, true},
}

func runPath(im *program.Image, input []byte, budget uint64, pc pathConfig) (outcome, []cpu.Event, []cpu.CallEvent, []cpu.RetEvent) {
	m := cpu.New(im, input)
	m.NoTranslate = pc.noTranslate
	if pc.sink {
		r := &sinkRecorder{}
		m.Attach(r)
		executed, err := m.Run(budget)
		return snapshot(m, executed, err), r.events, nil, nil
	}
	r := &recorder{}
	m.Attach(r)
	executed, err := m.Run(budget)
	return snapshot(m, executed, err), r.events, r.calls, r.returns
}

// diffStreams reports the first divergence between two event streams.
func diffStreams(t *testing.T, tag string, want, got []cpu.Event) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: event count %d, want %d", tag, len(got), len(want))
	}
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Errorf("%s: event %d diverged\ninterpreted: %+v\ngot:         %+v", tag, i, want[i], got[i])
			return
		}
	}
}

// assertEquivalent runs im through all three paths and asserts they
// are indistinguishable.
func assertEquivalent(t *testing.T, im *program.Image, input []byte, budget uint64) {
	t.Helper()
	refOut, refEvs, refCalls, refRets := runPath(im, input, budget, paths[0])
	for _, pc := range paths[1:] {
		out, evs, calls, rets := runPath(im, input, budget, pc)
		if out != refOut {
			t.Errorf("%s: outcome diverged\ninterpreted: %+v\ngot:         %+v", pc.name, refOut, out)
		}
		diffStreams(t, pc.name, refEvs, evs)
		if !pc.sink {
			if !reflect.DeepEqual(refCalls, calls) {
				t.Errorf("%s: call stream diverged (%d vs %d calls)", pc.name, len(refCalls), len(calls))
			}
			if !reflect.DeepEqual(refRets, rets) {
				t.Errorf("%s: return stream diverged (%d vs %d returns)", pc.name, len(refRets), len(rets))
			}
		}
	}
}

// TestTranslateDifferentialAssembled pits the paths against a
// handwritten program covering calls (known callees, so CallEvent.Args
// population runs), recursion, loops, loads/stores of every width,
// mult/div through the uGeneric fallback, and syscall exit.
func TestTranslateDifferentialAssembled(t *testing.T) {
	src := exitStub + `
		.func fact 1
		fact:
			addiu $sp, $sp, -8
			sw $ra, 4($sp)
			sw $a0, 0($sp)
			blez $a0, fbase
			addiu $a0, $a0, -1
			jal fact
			lw $a0, 0($sp)
			mult $v0, $a0
			mflo $v0
			j fdone
		fbase:
			li $v0, 1
		fdone:
			lw $ra, 4($sp)
			addiu $sp, $sp, 8
			jr $ra
		.endfunc

		.func main 0
		main:
			addiu $sp, $sp, -4
			sw $ra, 0($sp)
			li $a0, 7
			jal fact
			li $t0, 0x10000000
			sw $v0, 0($t0)
			lh $t1, 0($t0)
			lb $t2, 1($t0)
			lbu $t3, 2($t0)
			sh $t1, 4($t0)
			sb $t2, 6($t0)
			lhu $t4, 4($t0)
			li $t5, 100
			div $v0, $t5
			mflo $t6
			mfhi $t7
			addu $v0, $t6, $t7
			lw $ra, 0($sp)
			addiu $sp, $sp, 4
			jr $ra
		.endfunc
	`
	m := load(t, src, "")
	assertEquivalent(t, m.Image, nil, 1_000_000)
}

// genProgram builds a random decodable program. The generator biases
// toward long-running code — a dedicated base register keeps most
// memory accesses inside the data segment and branch offsets stay in
// text — but deliberately includes unaligned accesses, wild jumps,
// and stray syscalls: faults must be identical across paths too.
func genProgram(rng *rand.Rand, n int) *program.Image {
	text := make([]isa.Inst, 0, n+3)
	// Prologue: $s0 -> DataBase (the mostly-valid memory base).
	text = append(text, isa.Inst{Op: isa.OpLUI, Rt: 16, Imm: 0x1000})
	reg := func() uint8 { return uint8(1 + rng.Intn(25)) }
	dst := func() uint8 {
		// Rarely clobber $s0 (16) or write $zero — both legal, both
		// must behave identically.
		if rng.Intn(40) == 0 {
			return uint8(rng.Intn(32))
		}
		r := reg()
		if r == 16 {
			r = 17
		}
		return r
	}
	alu3 := []isa.Op{isa.OpADDU, isa.OpSUBU, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpNOR, isa.OpSLT, isa.OpSLTU, isa.OpSLLV, isa.OpSRLV, isa.OpSRAV}
	aluImm := []isa.Op{isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU, isa.OpANDI, isa.OpORI, isa.OpXORI}
	shifts := []isa.Op{isa.OpSLL, isa.OpSRL, isa.OpSRA}
	loads := []isa.Op{isa.OpLB, isa.OpLBU, isa.OpLH, isa.OpLHU, isa.OpLW}
	stores := []isa.Op{isa.OpSB, isa.OpSH, isa.OpSW}
	branches := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ, isa.OpBLTZ, isa.OpBGEZ}
	memOff := func(width int) int32 {
		off := int32(rng.Intn(2048))
		if rng.Intn(50) != 0 { // mostly aligned; occasionally not
			off &^= int32(width - 1)
		}
		return off
	}
	for len(text) < n {
		i := len(text)
		switch pick := rng.Intn(100); {
		case pick < 30:
			text = append(text, isa.Inst{Op: alu3[rng.Intn(len(alu3))], Rd: dst(), Rs: reg(), Rt: reg()})
		case pick < 50:
			text = append(text, isa.Inst{Op: aluImm[rng.Intn(len(aluImm))], Rt: dst(), Rs: reg(),
				Imm: int32(int16(rng.Uint32()))})
		case pick < 56:
			text = append(text, isa.Inst{Op: shifts[rng.Intn(len(shifts))], Rd: dst(), Rt: reg(),
				Imm: int32(rng.Intn(32))})
		case pick < 58:
			text = append(text, isa.Inst{Op: isa.OpLUI, Rt: dst(), Imm: int32(rng.Intn(0x2000))})
		case pick < 70:
			op := loads[rng.Intn(len(loads))]
			width := 1
			if op == isa.OpLH || op == isa.OpLHU {
				width = 2
			} else if op == isa.OpLW {
				width = 4
			}
			text = append(text, isa.Inst{Op: op, Rt: dst(), Rs: 16, Imm: memOff(width)})
		case pick < 80:
			op := stores[rng.Intn(len(stores))]
			width := 1
			if op == isa.OpSH {
				width = 2
			} else if op == isa.OpSW {
				width = 4
			}
			text = append(text, isa.Inst{Op: op, Rt: reg(), Rs: 16, Imm: memOff(width)})
		case pick < 92:
			// Branch to a nearby instruction (forward or back), offset
			// clamped into text so taken edges stay decodable.
			target := i + 1 + rng.Intn(8) - 3
			if target < 1 {
				target = 1
			}
			if target >= n {
				target = n - 1
			}
			text = append(text, isa.Inst{Op: branches[rng.Intn(len(branches))],
				Rs: reg(), Rt: reg(), Imm: int32(target - (i + 1))})
		case pick < 95:
			muldiv := []isa.Op{isa.OpMULT, isa.OpMULTU, isa.OpDIV, isa.OpDIVU}
			text = append(text, isa.Inst{Op: muldiv[rng.Intn(len(muldiv))], Rs: reg(), Rt: reg()})
			hilo := []isa.Op{isa.OpMFHI, isa.OpMFLO}
			text = append(text, isa.Inst{Op: hilo[rng.Intn(len(hilo))], Rd: dst()})
		case pick < 98:
			// Direct jump to a random instruction: superblock chaining
			// fodder (J does not terminate translation).
			target := 1 + rng.Intn(n-1)
			text = append(text, isa.Inst{Op: isa.OpJ,
				Imm: int32((program.TextBase >> 2) + uint32(target))})
		case pick < 99:
			// JR through a register that is almost never a text
			// address: exercises the fetch-fault fallback identically.
			text = append(text, isa.Inst{Op: isa.OpJR, Rs: reg()})
		default:
			text = append(text, isa.Inst{Op: isa.OpSYSCALL})
		}
	}
	text = text[:n]
	// Epilogue: loop forever; the run budget is the terminator.
	text = append(text, isa.Inst{Op: isa.OpJ, Imm: int32(program.TextBase>>2) + 1})

	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	im := &program.Image{
		Text:           text,
		Data:           data,
		InitializedLen: len(data),
		Entry:          program.TextBase,
		Symbols:        map[string]uint32{},
	}
	im.Finalize()
	return im
}

// TestTranslateDifferentialRandom fuzzes the paths against each other
// with seeded random programs. Any divergence — event field, fault
// string, counter, final register or memory byte — fails with the
// first differing instruction.
func TestTranslateDifferentialRandom(t *testing.T) {
	progs, budget := 64, uint64(3000)
	if testing.Short() {
		progs = 16
	}
	rng := rand.New(rand.NewSource(20260807))
	for p := 0; p < progs; p++ {
		im := genProgram(rng, 60+rng.Intn(200))
		t.Run(fmt.Sprintf("prog%02d", p), func(t *testing.T) {
			assertEquivalent(t, im, nil, budget)
		})
	}
}

// TestTranslateDifferentialWorkloads holds the paths equal on the real
// benchmark programs: every workload runs a 200k-instruction prefix
// through the interpreter, the translator, and the translator with the
// EventSink slot protocol, and all three must agree on every event and
// every piece of final state.
func TestTranslateDifferentialWorkloads(t *testing.T) {
	budget := uint64(200_000)
	if testing.Short() {
		budget = 50_000
	}
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			im, err := w.Image()
			if err != nil {
				t.Fatalf("Image: %v", err)
			}
			assertEquivalent(t, im, w.Input(1), budget)
		})
	}
}
