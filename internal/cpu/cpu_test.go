package cpu_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/repetition"
)

func run(t *testing.T, src string, input string) *cpu.Machine {
	t.Helper()
	m := load(t, src, input)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !m.Halted {
		t.Fatal("program did not exit within 1M instructions")
	}
	return m
}

func load(t *testing.T, src string, input string) *cpu.Machine {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return cpu.New(im, []byte(input))
}

const exitStub = `
__start:
	jal main
	move $a0, $v0
	li $v0, 10
	syscall
`

func TestArithmetic(t *testing.T) {
	m := run(t, exitStub+`
		.func main 0
main:
		li $t0, 6
		li $t1, 7
		mult $t0, $t1
		mflo $t2          # 42
		li $t3, 100
		div $t3, $t1
		mflo $t4          # 14
		mfhi $t5          # 2
		addu $v0, $t2, $t4
		addu $v0, $v0, $t5 # 58
		jr $ra
		.endfunc
	`, "")
	if m.ExitCode != 58 {
		t.Errorf("exit = %d, want 58", m.ExitCode)
	}
}

func TestSignedOps(t *testing.T) {
	m := run(t, exitStub+`
		.func main 0
main:
		li $t0, -10
		li $t1, 3
		div $t0, $t1
		mflo $t2            # -3 (trunc toward zero)
		mfhi $t3            # -1
		slt $t4, $t0, $t1   # 1 (-10 < 3 signed)
		sltu $t5, $t0, $t1  # 0 (huge unsigned)
		sra $t6, $t0, 1     # -5
		srl $t7, $t0, 28    # 0xf
		addu $v0, $t2, $t3  # -4
		addu $v0, $v0, $t4  # -3
		addu $v0, $v0, $t5  # -3
		addu $v0, $v0, $t6  # -8
		addu $v0, $v0, $t7  # 7
		jr $ra
		.endfunc
	`, "")
	if m.ExitCode != 7 {
		t.Errorf("exit = %d, want 7", m.ExitCode)
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, exitStub+`
		.data
arr:	.word 10, 20, 30
bytes:	.byte 0xff, 1
		.text
		.func main 0
main:
		la $t0, arr
		lw $t1, 4($t0)      # 20
		li $t2, 99
		sw $t2, 8($t0)
		lw $t3, 8($t0)      # 99
		la $t4, bytes
		lb $t5, 0($t4)      # -1 (sign extended)
		lbu $t6, 0($t4)     # 255
		sh $t1, 0($t4)      # overwrite halves
		lhu $t7, 0($t4)     # 20
		addu $v0, $t1, $t3  # 119
		addu $v0, $v0, $t5  # 118
		subu $v0, $v0, $t6  # -137
		addu $v0, $v0, $t7  # -117
		jr $ra
		.endfunc
	`, "")
	if m.ExitCode != -117 {
		t.Errorf("exit = %d, want -117", m.ExitCode)
	}
}

func TestLoop(t *testing.T) {
	// sum 1..100 = 5050
	m := run(t, exitStub+`
		.func main 0
main:
		li $t0, 0
		li $t1, 1
loop:
		addu $t0, $t0, $t1
		addiu $t1, $t1, 1
		li $t2, 100
		ble $t1, $t2, loop
		move $v0, $t0
		jr $ra
		.endfunc
	`, "")
	if m.ExitCode != 5050 {
		t.Errorf("exit = %d, want 5050", m.ExitCode)
	}
}

func TestCallsAndStack(t *testing.T) {
	// Recursive factorial with proper prologue/epilogue.
	m := run(t, exitStub+`
		.func fact 1
fact:
		addiu $sp, $sp, -24
		sw $ra, 20($sp)
		sw $s0, 16($sp)
		move $s0, $a0
		li $v0, 1
		ble $a0, $zero, done
		addiu $a0, $a0, -1
		jal fact
		mult $v0, $s0
		mflo $v0
done:
		lw $s0, 16($sp)
		lw $ra, 20($sp)
		addiu $sp, $sp, 24
		jr $ra
		.endfunc
		.func main 0
main:
		addiu $sp, $sp, -24
		sw $ra, 20($sp)
		li $a0, 6
		jal fact
		lw $ra, 20($sp)
		addiu $sp, $sp, 24
		jr $ra
		.endfunc
	`, "")
	if m.ExitCode != 720 {
		t.Errorf("exit = %d, want 720", m.ExitCode)
	}
}

func TestSyscallIO(t *testing.T) {
	m := run(t, exitStub+`
		.data
msg:	.asciiz "n="
		.text
		.func main 0
main:
		addiu $sp, $sp, -8
		sw $ra, 4($sp)
		la $a0, msg
		li $v0, 4
		syscall            # print "n="
		li $a0, -42
		li $v0, 1
		syscall            # print -42
		li $a0, '\n'
		li $v0, 11
		syscall            # putchar
		li $v0, 12
		syscall            # read char
		move $t0, $v0
		li $v0, 12
		syscall
		addu $v0, $v0, $t0
		lw $ra, 4($sp)
		addiu $sp, $sp, 8
		jr $ra
		.endfunc
	`, "AB")
	if got := m.Output.String(); got != "n=-42\n" {
		t.Errorf("output = %q", got)
	}
	if m.ExitCode != 'A'+'B' {
		t.Errorf("exit = %d, want %d", m.ExitCode, 'A'+'B')
	}
}

func TestReadCharEOF(t *testing.T) {
	m := run(t, exitStub+`
		.func main 0
main:
		li $v0, 12
		syscall
		jr $ra
		.endfunc
	`, "")
	if m.ExitCode != -1 {
		t.Errorf("read at EOF = %d, want -1", m.ExitCode)
	}
}

func TestSbrkAndHeap(t *testing.T) {
	m := run(t, exitStub+`
		.func main 0
main:
		li $a0, 64
		li $v0, 9
		syscall            # sbrk(64)
		move $t0, $v0
		li $t1, 1234
		sw $t1, 0($t0)
		sw $t1, 60($t0)
		lw $v0, 60($t0)
		jr $ra
		.endfunc
	`, "")
	if m.ExitCode != 1234 {
		t.Errorf("exit = %d, want 1234", m.ExitCode)
	}
}

func TestReadBlock(t *testing.T) {
	m := run(t, exitStub+`
		.func main 0
main:
		li $a0, 64
		li $v0, 9
		syscall
		move $t0, $v0
		move $a0, $t0
		li $a1, 16
		li $v0, 13
		syscall            # read up to 16 bytes
		move $t1, $v0      # got
		lb $t2, 0($t0)
		lb $t3, 4($t0)
		addu $v0, $t2, $t3
		addu $v0, $v0, $t1
		jr $ra
		.endfunc
	`, "hello")
	want := int32('h') + int32('o') + 5
	if m.ExitCode != want {
		t.Errorf("exit = %d, want %d", m.ExitCode, want)
	}
}

// faults

func TestFaults(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div-zero", exitStub + ".func main 0\nmain: li $t0, 1\ndiv $t0, $zero\njr $ra\n.endfunc", "division by zero"},
		{"unaligned", exitStub + ".func main 0\nmain: li $t0, 0x10000002\nlw $t1, 0($t0)\njr $ra\n.endfunc", "unaligned"},
		{"oob", exitStub + ".func main 0\nmain: li $t0, 0x20000000\nlw $t1, 0($t0)\njr $ra\n.endfunc", "out of bounds"},
		{"badsys", exitStub + ".func main 0\nmain: li $v0, 99\nsyscall\njr $ra\n.endfunc", "unknown syscall"},
		{"break", exitStub + ".func main 0\nmain: break\njr $ra\n.endfunc", "break"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := load(t, c.src, "")
			_, err := m.Run(1000)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := run(t, exitStub+".func main 0\nmain: li $v0, 0\njr $ra\n.endfunc", "")
	if err := m.Step(); err == nil {
		t.Error("Step after halt should fail")
	}
}

// observer plumbing

type recorder struct {
	events  []cpu.Event
	calls   []cpu.CallEvent
	returns []cpu.RetEvent
}

func (r *recorder) OnInst(ev *cpu.Event)      { r.events = append(r.events, *ev) }
func (r *recorder) OnCall(ev *cpu.CallEvent)  { r.calls = append(r.calls, *ev) }
func (r *recorder) OnReturn(ev *cpu.RetEvent) { r.returns = append(r.returns, *ev) }

func TestObserverEvents(t *testing.T) {
	m := load(t, exitStub+`
		.func double 1
double:
		addu $v0, $a0, $a0
		jr $ra
		.endfunc
		.func main 0
main:
		addiu $sp, $sp, -8
		sw $ra, 4($sp)
		li $a0, 21
		jal double
		lw $ra, 4($sp)
		addiu $sp, $sp, 8
		jr $ra
		.endfunc
	`, "")
	rec := &recorder{}
	m.Attach(rec)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.ExitCode != 42 {
		t.Fatalf("exit = %d", m.ExitCode)
	}
	// Two calls: __start->main, main->double. Two returns.
	if len(rec.calls) != 2 || len(rec.returns) != 2 {
		t.Fatalf("calls=%d returns=%d, want 2/2", len(rec.calls), len(rec.returns))
	}
	if rec.calls[1].Callee == nil || rec.calls[1].Callee.Name != "double" {
		t.Errorf("second call callee = %+v", rec.calls[1].Callee)
	}
	if rec.returns[0].Target != rec.calls[1].RetAddr {
		t.Errorf("return target %#x != call retaddr %#x", rec.returns[0].Target, rec.calls[1].RetAddr)
	}

	// Find the addu event: inputs both 21, output 42.
	found := false
	for _, ev := range rec.events {
		if ev.Inst.Op == isa.OpADDU && ev.Inst.Rd == isa.RegV0 && ev.DstVal == 42 {
			if ev.Src1Val != 21 || ev.Src2Val != 21 {
				t.Errorf("addu sources = %d,%d", ev.Src1Val, ev.Src2Val)
			}
			if ev.Dst != isa.RegV0 {
				t.Errorf("addu dst = %d", ev.Dst)
			}
			found = true
		}
	}
	if !found {
		t.Error("addu event not observed")
	}
	// Event indices are consecutive from 0.
	for i, ev := range rec.events {
		if ev.Index != uint64(i) {
			t.Fatalf("event %d has index %d", i, ev.Index)
		}
	}
}

func TestLoadStoreEvents(t *testing.T) {
	m := load(t, exitStub+`
		.data
v:		.word 7
		.text
		.func main 0
main:
		lw $t0, %gp(v)
		addiu $t0, $t0, 1
		sw $t0, %gp(v)
		move $v0, $t0
		jr $ra
		.endfunc
	`, "")
	rec := &recorder{}
	m.Attach(rec)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var loads, stores int
	for _, ev := range rec.events {
		if ev.IsLoad {
			loads++
			if ev.Addr != program.DataBase || ev.MemVal != 7 || ev.DstVal != 7 {
				t.Errorf("load event %+v", ev)
			}
		}
		if ev.IsStore {
			stores++
			if ev.Addr != program.DataBase || ev.MemVal != 8 {
				t.Errorf("store event %+v", ev)
			}
		}
	}
	if loads != 1 || stores != 1 {
		t.Errorf("loads=%d stores=%d", loads, stores)
	}
}

func TestBranchEvents(t *testing.T) {
	m := load(t, exitStub+`
		.func main 0
main:
		li $t0, 2
loop:
		addiu $t0, $t0, -1
		bne $t0, $zero, loop
		li $v0, 0
		jr $ra
		.endfunc
	`, "")
	rec := &recorder{}
	m.Attach(rec)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	var taken, notTaken int
	for _, ev := range rec.events {
		if ev.IsBranch && ev.Inst.Op == isa.OpBNE {
			if ev.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if taken != 1 || notTaken != 1 {
		t.Errorf("taken=%d notTaken=%d, want 1/1", taken, notTaken)
	}
}

func TestRunMaxInstructions(t *testing.T) {
	m := load(t, "__start: b __start\n", "")
	n, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || m.Halted {
		t.Errorf("ran %d halted=%v, want 100/false", n, m.Halted)
	}
}

// TestBrkExtentChecked pins the checkAddr fix: an access is bounded by
// its full extent [addr, addr+size), not its first byte, so a word
// access straddling an unaligned heap break faults instead of silently
// touching bytes past it.
func TestBrkExtentChecked(t *testing.T) {
	m := load(t, exitStub+`
		.func main 0
main:
		li $a0, 5
		li $v0, 9
		syscall            # sbrk(5): brk is now base+5, unaligned
		move $t0, $v0
		lb $t1, 4($t0)     # [base+4, base+5): still below brk, fine
		lw $t2, 4($t0)     # [base+4, base+8): crosses brk, must fault
		jr $ra
		.endfunc
	`, "")
	_, err := m.Run(0)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("word load straddling brk: err = %v, want out of bounds", err)
	}
	if m.Halted {
		t.Fatal("machine halted; fault should have aborted before exit")
	}
}

// TestZeroDestEventValue pins the setDst fix: a write targeting $zero
// is architecturally discarded, so the retired event reports DstVal 0
// even when the instruction computed something else.
func TestZeroDestEventValue(t *testing.T) {
	m := load(t, exitStub+`
		.func main 0
main:
		li $t0, 3
		li $t1, 4
		addu $zero, $t0, $t1
		move $v0, $zero
		jr $ra
		.endfunc
	`, "")
	rec := &recorder{}
	m.Attach(rec)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range rec.events {
		if ev.Inst.Op == isa.OpADDU && ev.Inst.Rd == isa.RegZero {
			found = true
			if ev.Dst != isa.RegZero || ev.DstVal != 0 {
				t.Errorf("$zero-dest event: Dst=%d DstVal=%d, want 0/0", ev.Dst, ev.DstVal)
			}
			if ev.Src1Val != 3 || ev.Src2Val != 4 {
				t.Errorf("$zero-dest sources = %d,%d, want 3,4", ev.Src1Val, ev.Src2Val)
			}
		}
	}
	if !found {
		t.Fatal("addu $zero event not observed")
	}
}

// trackerObserver adapts a repetition.Tracker to cpu.Observer,
// recording the per-instruction repeat verdicts.
type trackerObserver struct {
	tr       *repetition.Tracker
	verdicts map[uint32][]bool // by PC, in retire order
}

func (o *trackerObserver) OnInst(ev *cpu.Event) {
	o.verdicts[ev.PC] = append(o.verdicts[ev.PC], o.tr.Observe(ev))
}

// TestZeroDestCensusRepetition is the census pin for the setDst fix:
// one static lw-into-$zero inside a loop whose loaded word changes
// every iteration still counts as a repeat, because the architectural
// output (what any consumer could read back) is always 0.
func TestZeroDestCensusRepetition(t *testing.T) {
	m := load(t, exitStub+`
		.data
v:		.word 7
		.text
		.func main 0
main:
		li $t2, 2          # two iterations
		la $t0, v
loop:
		lw $zero, 0($t0)   # same input ($t0), changing memory word
		addiu $t3, $t3, 1
		sw $t3, 0($t0)     # mutate the word between iterations
		addiu $t2, $t2, -1
		bne $t2, $zero, loop
		li $v0, 0
		jr $ra
		.endfunc
	`, "")
	obs := &trackerObserver{tr: repetition.NewTracker(), verdicts: make(map[uint32][]bool)}
	m.Attach(obs)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for pc, vs := range obs.verdicts {
		in, err := m.Image.InstAt(pc)
		if err != nil || in.Op != isa.OpLW || in.Rt != isa.RegZero {
			continue
		}
		if len(vs) != 2 {
			t.Fatalf("lw $zero executed %d times, want 2", len(vs))
		}
		if vs[0] || !vs[1] {
			t.Errorf("lw $zero verdicts = %v, want [false true]: the discarded value must not break repetition", vs)
		}
		return
	}
	t.Fatal("lw $zero instruction not observed")
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, exitStub+`
		.func main 0
main:
		li $zero, 55
		move $v0, $zero
		jr $ra
		.endfunc
	`, "")
	if m.ExitCode != 0 {
		t.Errorf("$zero modified: exit = %d", m.ExitCode)
	}
}
