// Basic-block translation cache: the decode-once/execute-many fast
// path of the simulator.
//
// On first execution of a block the translator decodes straight-line
// code into a flat trace of micro-ops. Each micro-op carries a
// pre-built observer Event template (PC, decoded instruction, source/
// destination register *indices*, memory/branch flags, and the
// fall-through NextPC are all resolved at translation time), a
// specialization code dispatched by a tight tagged-union switch, and
// pre-extended immediates / pre-computed branch targets. Executing an
// instruction therefore costs one template copy, one switch dispatch,
// and the value reads — no fetch, no decode, no per-field Event
// assembly.
//
// Blocks are keyed by entry PC in a dense table indexed
// (pc-TextBase)>>2 and are never invalidated: the text segment is
// immutable (there is no path by which simulated code can write it).
// Direct jumps (J/JAL) do not terminate a block — translation follows
// them, chaining hot blocks into superblocks — and conditional
// branches continue on their fall-through path. Branch targets that
// land on an instruction already inside the same block are pre-linked
// to its micro-op index, so tight loops iterate entirely within one
// block without re-dispatch.
//
// Correctness contract: a translated run retires the same instruction
// stream, delivers byte-identical Event/CallEvent/RetEvent sequences,
// and leaves identical machine state (registers, memory, counters,
// fault behavior, and Run budget accounting) as the Step interpreter.
// Micro-ops with no specialization fall back to the interpreter's own
// execute() on a template identical to Step's initial Event, making
// the fallback equivalent by construction. The interpreter remains
// the only path when a Hook is installed (watchdog polling and fault
// injection require per-instruction interception) or when NoTranslate
// is set; the differential harness in translate_test.go holds the two
// paths equal.
package cpu

import (
	"math"

	"repro/internal/isa"
	"repro/internal/program"
)

// maxBlockOps caps superblock growth. Translation also stops at
// indirect control flow, syscalls, faulting ops, and back-edges.
const maxBlockOps = 256

// Micro-op specialization codes. uGeneric executes through the
// interpreter's execute() — used for rare ops (mult/div, HI/LO moves,
// syscall, break, invalid) where specialization buys nothing.
const (
	uGeneric uint8 = iota
	uADDU
	uSUBU
	uAND
	uOR
	uXOR
	uNOR
	uSLT
	uSLTU
	uSLLV
	uSRLV
	uSRAV
	uSLL
	uSRL
	uSRA
	uADDIU
	uSLTI
	uSLTIU
	uANDI
	uORI
	uXORI
	uLUI
	uLB
	uLBU
	uLH
	uLHU
	uLW
	uSB
	uSH
	uSW
	uBEQ
	uBNE
	uBLEZ
	uBGTZ
	uBLTZ
	uBGEZ
	uJ
	uJAL
	uJR
	uJALR
)

// uop is one translated micro-op.
type uop struct {
	// tmpl is the pre-built Event. For uGeneric ops it is exactly the
	// literal Step constructs (sources/dest -1, NextPC = pc+4); for
	// specialized ops the register indices, memory/branch flags, and
	// static NextPC (fall-through, or the jump target for J/JAL) are
	// filled in at translation time and only the values remain for
	// run time.
	tmpl Event

	code uint8
	rs   uint8 // first source register (Rt for SLL/SRL/SRA)
	rt   uint8 // second source / load destination / store data
	rd   uint8 // ALU destination
	kind isa.Kind

	isSyscall bool // retirement stats: Op == SYSCALL
	isCallRet bool // emits call/return events (JAL, JALR, JR $ra)

	// imm is the pre-extended immediate: sign-extended for ADDIU/
	// loads/stores/SLTI(U), zero-extended for ANDI/ORI/XORI, shifted
	// for LUI, the shift amount for SLL/SRL/SRA, and the return
	// address (pc+4) for JAL/JALR.
	imm uint32

	// target is the pre-computed taken target for conditional
	// branches.
	target uint32

	// callee is the function entered by a uJAL, resolved once at
	// translation time (the target is static and FuncByEntry is a pure
	// lookup over the immutable image). nil when the target is not a
	// known function entry.
	callee *program.Func

	// next / taken are intra-block successor indices (-1 exits the
	// block and re-dispatches on m.PC). next follows fall-through and
	// direct jumps; taken follows a conditional branch's taken edge
	// when its target is pre-linked into this block.
	next  int32
	taken int32
}

// block is one translated superblock.
type block struct {
	pc  uint32
	ops []uop
}

// transTable is the per-machine block cache, dense over the text
// segment: blocks[i] is the block entered at TextBase+4i.
type transTable struct {
	blocks []*block
}

// blockAt returns the translated block entered at pc, translating it
// on first use, or nil when pc does not address a text instruction
// (the caller falls back to Step, which reproduces the fetch fault).
func (m *Machine) blockAt(pc uint32) *block {
	if m.trans == nil {
		m.trans = &transTable{blocks: make([]*block, len(m.Image.Text))}
	}
	if pc < program.TextBase || pc&3 != 0 {
		return nil
	}
	idx := (pc - program.TextBase) >> 2
	if idx >= uint32(len(m.trans.blocks)) {
		return nil
	}
	b := m.trans.blocks[idx]
	if b == nil {
		b = m.translate(pc)
		m.trans.blocks[idx] = b
	}
	return b
}

// translate decodes the superblock entered at pc. pc must address a
// valid text instruction.
func (m *Machine) translate(pc uint32) *block {
	b := &block{pc: pc}
	index := make(map[uint32]int32) // pc -> uop index within b
	for len(b.ops) < maxBlockOps {
		if _, dup := index[pc]; dup {
			break // back-edge: target already translated in this block
		}
		in, err := m.Image.InstAt(pc)
		if err != nil {
			break // runs off the end of text; Step reproduces the fault
		}
		index[pc] = int32(len(b.ops))
		op := translateInst(pc, in)
		b.ops = append(b.ops, op)

		last := &b.ops[len(b.ops)-1]
		switch in.Op {
		case isa.OpJ, isa.OpJAL:
			if in.Op == isa.OpJAL {
				last.callee = m.Image.FuncByEntry(last.tmpl.NextPC)
			}
			// Direct jump: chain into a superblock at the target.
			pc = last.tmpl.NextPC
		case isa.OpJR, isa.OpJALR, isa.OpSYSCALL, isa.OpBREAK:
			// Indirect control flow and syscalls exit the block
			// (syscalls can halt the machine); BREAK faults.
			last.next = -1
			return link(b, index)
		default:
			if last.code == uGeneric && in.Op != isa.OpMULT && in.Op != isa.OpMULTU &&
				in.Op != isa.OpDIV && in.Op != isa.OpDIVU &&
				in.Op != isa.OpMFHI && in.Op != isa.OpMFLO &&
				in.Op != isa.OpMTHI && in.Op != isa.OpMTLO {
				// Invalid instruction: faults at execution; terminate.
				last.next = -1
				return link(b, index)
			}
			pc += 4
		}
	}
	return link(b, index)
}

// link resolves intra-block successor indices: fall-through edges,
// chained direct-jump targets, and conditional-branch taken targets
// that landed inside the block.
func link(b *block, index map[uint32]int32) *block {
	for i := range b.ops {
		op := &b.ops[i]
		if op.next != -1 { // not a terminator
			if ni, ok := index[op.tmpl.NextPC]; ok {
				op.next = ni
			} else {
				op.next = -1
			}
		}
		op.taken = -1
		if op.tmpl.IsBranch {
			if ti, ok := index[op.target]; ok {
				op.taken = ti
			}
		}
	}
	return b
}

// translateInst builds the micro-op for one decoded instruction. The
// Event template starts as the exact literal Step constructs, then
// specialization moves statically-known fields into it.
func translateInst(pc uint32, in isa.Inst) uop {
	op := uop{
		tmpl: Event{
			PC:     pc,
			Inst:   in,
			Src1:   -1,
			Src2:   -1,
			Dst:    -1,
			Aux:    -1,
			NextPC: pc + 4,
		},
		kind:      isa.OpKind(in.Op),
		isSyscall: in.Op == isa.OpSYSCALL,
		isCallRet: in.Op == isa.OpJAL || in.Op == isa.OpJALR ||
			(in.Op == isa.OpJR && in.Rs == isa.RegRA),
	}

	alu3 := func(code uint8) {
		op.code = code
		op.rs, op.rt, op.rd = in.Rs, in.Rt, in.Rd
		op.tmpl.Src1, op.tmpl.Src2, op.tmpl.Dst = int16(in.Rs), int16(in.Rt), int16(in.Rd)
	}
	shift := func(code uint8) {
		// SLL/SRL/SRA read Rt and shift by the immediate.
		op.code = code
		op.rs, op.rd = in.Rt, in.Rd
		op.imm = uint32(in.Imm)
		op.tmpl.Src1, op.tmpl.Dst = int16(in.Rt), int16(in.Rd)
	}
	immOp := func(code uint8, imm uint32) {
		op.code = code
		op.rs, op.rt = in.Rs, in.Rt
		op.imm = imm
		op.tmpl.Src1, op.tmpl.Dst = int16(in.Rs), int16(in.Rt)
	}
	loadOp := func(code uint8) {
		op.code = code
		op.rs, op.rt = in.Rs, in.Rt
		op.imm = uint32(in.Imm)
		op.tmpl.Src1, op.tmpl.Dst = int16(in.Rs), int16(in.Rt)
		op.tmpl.IsLoad = true
	}
	storeOp := func(code uint8) {
		op.code = code
		op.rs, op.rt = in.Rs, in.Rt
		op.imm = uint32(in.Imm)
		op.tmpl.Src1, op.tmpl.Src2 = int16(in.Rs), int16(in.Rt)
		op.tmpl.IsStore = true
	}
	branch2 := func(code uint8) {
		op.code = code
		op.rs, op.rt = in.Rs, in.Rt
		op.target = uint32(int64(pc) + 4 + int64(in.Imm)*4)
		op.tmpl.Src1, op.tmpl.Src2 = int16(in.Rs), int16(in.Rt)
		op.tmpl.IsBranch = true
	}
	branch1 := func(code uint8) {
		op.code = code
		op.rs = in.Rs
		op.target = uint32(int64(pc) + 4 + int64(in.Imm)*4)
		op.tmpl.Src1 = int16(in.Rs)
		op.tmpl.IsBranch = true
	}

	switch in.Op {
	case isa.OpADDU:
		alu3(uADDU)
	case isa.OpSUBU:
		alu3(uSUBU)
	case isa.OpAND:
		alu3(uAND)
	case isa.OpOR:
		alu3(uOR)
	case isa.OpXOR:
		alu3(uXOR)
	case isa.OpNOR:
		alu3(uNOR)
	case isa.OpSLT:
		alu3(uSLT)
	case isa.OpSLTU:
		alu3(uSLTU)
	case isa.OpSLLV:
		alu3(uSLLV)
	case isa.OpSRLV:
		alu3(uSRLV)
	case isa.OpSRAV:
		alu3(uSRAV)
	case isa.OpSLL:
		shift(uSLL)
	case isa.OpSRL:
		shift(uSRL)
	case isa.OpSRA:
		shift(uSRA)
	case isa.OpADDIU:
		immOp(uADDIU, uint32(in.Imm))
	case isa.OpSLTI:
		immOp(uSLTI, uint32(in.Imm))
	case isa.OpSLTIU:
		immOp(uSLTIU, uint32(in.Imm))
	case isa.OpANDI:
		immOp(uANDI, uint32(in.Imm&0xffff))
	case isa.OpORI:
		immOp(uORI, uint32(in.Imm&0xffff))
	case isa.OpXORI:
		immOp(uXORI, uint32(in.Imm&0xffff))
	case isa.OpLUI:
		// LUI reads no register (the interpreter reports Src1 = -1).
		op.code = uLUI
		op.rt = in.Rt
		op.imm = uint32(in.Imm) << 16
		op.tmpl.Dst = int16(in.Rt)
	case isa.OpLB:
		loadOp(uLB)
	case isa.OpLBU:
		loadOp(uLBU)
	case isa.OpLH:
		loadOp(uLH)
	case isa.OpLHU:
		loadOp(uLHU)
	case isa.OpLW:
		loadOp(uLW)
	case isa.OpSB:
		storeOp(uSB)
	case isa.OpSH:
		storeOp(uSH)
	case isa.OpSW:
		storeOp(uSW)
	case isa.OpBEQ:
		branch2(uBEQ)
	case isa.OpBNE:
		branch2(uBNE)
	case isa.OpBLEZ:
		branch1(uBLEZ)
	case isa.OpBGTZ:
		branch1(uBGTZ)
	case isa.OpBLTZ:
		branch1(uBLTZ)
	case isa.OpBGEZ:
		branch1(uBGEZ)
	case isa.OpJ:
		op.code = uJ
		op.tmpl.NextPC = (pc+4)&0xf0000000 | uint32(in.Imm)<<2
	case isa.OpJAL:
		op.code = uJAL
		op.imm = pc + 4 // return address
		op.tmpl.Dst = int16(isa.RegRA)
		op.tmpl.NextPC = (pc+4)&0xf0000000 | uint32(in.Imm)<<2
	case isa.OpJR:
		op.code = uJR
		op.rs = in.Rs
		op.tmpl.Src1 = int16(in.Rs)
	case isa.OpJALR:
		op.code = uJALR
		op.rs, op.rd = in.Rs, in.Rd
		op.imm = pc + 4
		op.tmpl.Src1, op.tmpl.Dst = int16(in.Rs), int16(in.Rd)
	default:
		// MULT/MULTU/DIV/DIVU, HI/LO moves, SYSCALL, BREAK, invalid:
		// execute through the interpreter's own switch on a template
		// identical to Step's initial Event.
		op.code = uGeneric
	}
	return op
}

// runTranslated is Run's block-execution loop: dispatch the block at
// PC, fall back to single-step interpretation where no block exists
// (non-text PC — reproduces fetch faults exactly).
func (m *Machine) runTranslated(max, start uint64) (uint64, error) {
	budget := max
	if budget == 0 {
		budget = math.MaxUint64
	}
	for !m.Halted && m.Count-start < budget {
		b := m.blockAt(m.PC)
		if b == nil {
			if err := m.Step(); err != nil {
				return m.Count - start, err
			}
			continue
		}
		if err := m.execBlock(b, start, budget); err != nil {
			return m.Count - start, err
		}
	}
	return m.Count - start, nil
}

// execBlock runs micro-ops from b until the block exits, the budget is
// exhausted, or an op faults. The per-op sequence mirrors Step exactly:
// event from template, execute, $zero reset, retirement bookkeeping,
// PC update, observer dispatch, call events.
func (m *Machine) execBlock(b *block, start, budget uint64) error {
	sink := m.sink
	i := int32(0)
	for m.Count-start < budget {
		op := &b.ops[i]
		ev := &m.ev
		if sink != nil {
			ev = sink.NextSlot()
		}
		*ev = op.tmpl
		ev.Index = m.Count

		switch op.code {
		case uADDU:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, a+c)
		case uSUBU:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, a-c)
		case uAND:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, a&c)
		case uOR:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, a|c)
		case uXOR:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, a^c)
		case uNOR:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, ^(a | c))
		case uSLT:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			v := uint32(0)
			if int32(a) < int32(c) {
				v = 1
			}
			m.writeDst(ev, op.rd, v)
		case uSLTU:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			v := uint32(0)
			if a < c {
				v = 1
			}
			m.writeDst(ev, op.rd, v)
		case uSLLV:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, c<<(a&31))
		case uSRLV:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, c>>(a&31))
		case uSRAV:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			m.writeDst(ev, op.rd, uint32(int32(c)>>(a&31)))
		case uSLL:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			m.writeDst(ev, op.rd, a<<op.imm)
		case uSRL:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			m.writeDst(ev, op.rd, a>>op.imm)
		case uSRA:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			m.writeDst(ev, op.rd, uint32(int32(a)>>op.imm))
		case uADDIU:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			m.writeDst(ev, op.rt, a+op.imm)
		case uSLTI:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			v := uint32(0)
			if int32(a) < int32(op.imm) {
				v = 1
			}
			m.writeDst(ev, op.rt, v)
		case uSLTIU:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			v := uint32(0)
			if a < op.imm {
				v = 1
			}
			m.writeDst(ev, op.rt, v)
		case uANDI:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			m.writeDst(ev, op.rt, a&op.imm)
		case uORI:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			m.writeDst(ev, op.rt, a|op.imm)
		case uXORI:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			m.writeDst(ev, op.rt, a^op.imm)
		case uLUI:
			m.writeDst(ev, op.rt, op.imm)
		case uLB:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			addr := a + op.imm
			ev.Addr = addr
			if err := m.checkAddr(addr, 1); err != nil {
				return err
			}
			v := uint32(int32(int8(m.Mem.LoadByte(addr))))
			ev.MemVal = v
			m.writeDst(ev, op.rt, v)
		case uLBU:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			addr := a + op.imm
			ev.Addr = addr
			if err := m.checkAddr(addr, 1); err != nil {
				return err
			}
			v := uint32(m.Mem.LoadByte(addr))
			ev.MemVal = v
			m.writeDst(ev, op.rt, v)
		case uLH:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			addr := a + op.imm
			ev.Addr = addr
			if err := m.checkAddr(addr, 2); err != nil {
				return err
			}
			v := uint32(int32(int16(m.Mem.ReadHalf(addr))))
			ev.MemVal = v
			m.writeDst(ev, op.rt, v)
		case uLHU:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			addr := a + op.imm
			ev.Addr = addr
			if err := m.checkAddr(addr, 2); err != nil {
				return err
			}
			v := uint32(m.Mem.ReadHalf(addr))
			ev.MemVal = v
			m.writeDst(ev, op.rt, v)
		case uLW:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			addr := a + op.imm
			ev.Addr = addr
			if err := m.checkAddr(addr, 4); err != nil {
				return err
			}
			v := m.Mem.ReadWord(addr)
			ev.MemVal = v
			m.writeDst(ev, op.rt, v)
		case uSB:
			a, d := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, d
			addr := a + op.imm
			ev.Addr = addr
			if err := m.checkAddr(addr, 1); err != nil {
				return err
			}
			ev.MemVal = d & 0xff
			m.Mem.StoreByte(addr, byte(d))
		case uSH:
			a, d := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, d
			addr := a + op.imm
			ev.Addr = addr
			if err := m.checkAddr(addr, 2); err != nil {
				return err
			}
			ev.MemVal = d & 0xffff
			m.Mem.WriteHalf(addr, uint16(d))
		case uSW:
			a, d := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, d
			addr := a + op.imm
			ev.Addr = addr
			if err := m.checkAddr(addr, 4); err != nil {
				return err
			}
			ev.MemVal = d
			m.Mem.WriteWord(addr, d)
		case uBEQ:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			if a == c {
				ev.Taken = true
				ev.NextPC = op.target
			}
		case uBNE:
			a, c := m.Regs[op.rs], m.Regs[op.rt]
			ev.Src1Val, ev.Src2Val = a, c
			if a != c {
				ev.Taken = true
				ev.NextPC = op.target
			}
		case uBLEZ:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			if int32(a) <= 0 {
				ev.Taken = true
				ev.NextPC = op.target
			}
		case uBGTZ:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			if int32(a) > 0 {
				ev.Taken = true
				ev.NextPC = op.target
			}
		case uBLTZ:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			if int32(a) < 0 {
				ev.Taken = true
				ev.NextPC = op.target
			}
		case uBGEZ:
			a := m.Regs[op.rs]
			ev.Src1Val = a
			if int32(a) >= 0 {
				ev.Taken = true
				ev.NextPC = op.target
			}
		case uJ:
			// NextPC pre-resolved in the template; nothing to do.
		case uJAL:
			m.Regs[isa.RegRA] = op.imm
			ev.DstVal = op.imm
		case uJR:
			ev.Src1Val = m.Regs[op.rs]
			ev.NextPC = ev.Src1Val
		case uJALR:
			target := m.Regs[op.rs]
			ev.Src1Val = target
			m.writeDst(ev, op.rd, op.imm)
			ev.NextPC = target
		default: // uGeneric
			if err := m.execute(ev.Inst, ev); err != nil {
				return err
			}
		}

		m.Regs[isa.RegZero] = 0

		m.Count++
		m.Stats.Kinds[op.kind]++
		switch {
		case ev.IsLoad:
			m.Stats.Loads++
		case ev.IsStore:
			m.Stats.Stores++
		case ev.IsBranch:
			m.Stats.Branches++
			if ev.Taken {
				m.Stats.BranchesTaken++
			}
		case op.isSyscall:
			m.Stats.Syscalls++
		}
		m.PC = ev.NextPC

		if sink != nil {
			sink.OnInst(ev)
		} else {
			for _, o := range m.observers {
				o.OnInst(ev)
			}
		}
		if op.isCallRet && len(m.callObservers) > 0 {
			switch op.code {
			case uJAL:
				m.emitCall(ev, op.callee)
			case uJR:
				m.emitRet(ev)
			default:
				m.emitCallEvents(ev)
			}
		}

		if ev.Taken {
			i = op.taken
		} else {
			i = op.next
		}
		if i < 0 {
			return nil
		}
	}
	return nil
}

// writeDst mirrors setDst for the specialized micro-ops: a $zero
// destination is architecturally discarded and reported as 0. The
// destination register index is already in the event template.
func (m *Machine) writeDst(ev *Event, r uint8, v uint32) {
	if r != isa.RegZero {
		m.Regs[r] = v
	} else {
		v = 0
	}
	ev.DstVal = v
}
