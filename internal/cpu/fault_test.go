package cpu_test

// Regression tests pinning the simulator fault-message format: every
// fault names the PC (and the containing function when the image knows
// it), so a watchdog or fault report locates where a run died without
// a debugger.

import (
	"regexp"
	"testing"
)

// faultFormat is the contract for every simulator fault message.
var faultFormat = regexp.MustCompile(`^cpu: pc=0x[0-9a-f]+( in \S+)?: .+`)

func TestHaltedErrorNamesPC(t *testing.T) {
	m := run(t, exitStub+`
		.func main 0
main:
		li $v0, 0
		jr $ra
		.endfunc
	`, "")
	err := m.Step()
	if err == nil {
		t.Fatal("Step on a halted machine must fail")
	}
	if !faultFormat.MatchString(err.Error()) {
		t.Errorf("halted error %q does not match fault format %v", err, faultFormat)
	}
	if want := "machine is halted"; !regexp.MustCompile(regexp.QuoteMeta(want) + `$`).MatchString(err.Error()) {
		t.Errorf("halted error %q does not end with %q", err, want)
	}
	// Run on a halted machine is a no-op, not a fault: the loop
	// condition sees Halted and retires nothing.
	if n, rerr := m.Run(10); n != 0 || rerr != nil {
		t.Errorf("Run on a halted machine = (%d, %v), want (0, nil)", n, rerr)
	}
}

func TestFaultErrorsNamePC(t *testing.T) {
	// An unaligned load faults mid-program; the message must carry the
	// PC and the function name from the image.
	m := load(t, exitStub+`
		.func main 0
main:
		li $t0, 3
		lw $t1, 0($t0)
		jr $ra
		.endfunc
	`, "")
	_, err := m.Run(100)
	if err == nil {
		t.Fatal("unaligned load must fault")
	}
	if !faultFormat.MatchString(err.Error()) {
		t.Errorf("fault %q does not match fault format %v", err, faultFormat)
	}
}

func TestStepHook(t *testing.T) {
	m := load(t, exitStub+`
		.func main 0
main:
		li $v0, 7
		jr $ra
		.endfunc
	`, "")
	var counts []uint64
	m.Hook = func(count uint64, pc uint32) error {
		counts = append(counts, count)
		return nil
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if uint64(len(counts)) != m.Count {
		t.Errorf("hook ran %d times, want once per %d retired instructions", len(counts), m.Count)
	}
	for i, c := range counts {
		if c != uint64(i) {
			t.Fatalf("hook call %d saw count %d, want %d", i, c, i)
		}
	}
}

func TestStepHookErrorAbortsRun(t *testing.T) {
	m := load(t, exitStub+`
		.func main 0
main:
		li $v0, 7
		jr $ra
		.endfunc
	`, "")
	sentinel := regexp.MustCompile("^injected$")
	m.Hook = func(count uint64, pc uint32) error {
		if count == 2 {
			return errSentinel
		}
		return nil
	}
	n, err := m.Run(0)
	if err == nil || !sentinel.MatchString(err.Error()) {
		t.Fatalf("Run = %v, want sentinel error", err)
	}
	if n != 2 {
		t.Errorf("retired %d instructions before the hook fault, want 2", n)
	}
	if m.Halted {
		t.Error("hook error must not mark the machine halted")
	}
}

type sentinelErr struct{}

func (sentinelErr) Error() string { return "injected" }

var errSentinel = sentinelErr{}
