package cpu

import (
	"repro/internal/checkpoint"
	"repro/internal/isa"
)

// SnapshotTo writes the machine's complete architectural state:
// registers, PC, heap break, retire count, retirement counters, halt
// state, accumulated output, the input cursor, and every memory page.
// Configuration that is re-derived from the workload on resume (the
// image, the input bytes, observer attachments, MaxOutput/NoTranslate/
// Hook) is deliberately absent — the checkpoint key already pins it.
func (m *Machine) SnapshotTo(w *checkpoint.Writer) {
	for _, v := range m.Regs {
		w.U32(v)
	}
	w.U32(m.PC)
	w.U32(m.Brk)
	w.U64(m.Count)
	w.U64(m.Stats.Loads)
	w.U64(m.Stats.Stores)
	w.U64(m.Stats.Branches)
	w.U64(m.Stats.BranchesTaken)
	w.U64(m.Stats.Syscalls)
	for _, v := range m.Stats.Kinds {
		w.U64(v)
	}
	w.Bool(m.Halted)
	w.U32(uint32(m.ExitCode))
	w.Raw(m.Output.Bytes())
	w.Int(m.inPos)
	m.Mem.SnapshotTo(w)
}

// RestoreFrom replaces the architectural state with the snapshot.
// Derived caches are invalidated, not restored: the translation cache
// is dropped (rebuilt lazily from the immutable image) and the memory
// page caches come back empty. The image, input, observers, and run-
// mode flags are untouched — the caller constructed the machine for
// the same workload before restoring into it.
func (m *Machine) RestoreFrom(r *checkpoint.Reader) error {
	for i := range m.Regs {
		m.Regs[i] = r.U32()
	}
	m.PC = r.U32()
	m.Brk = r.U32()
	m.Count = r.U64()
	m.Stats.Loads = r.U64()
	m.Stats.Stores = r.U64()
	m.Stats.Branches = r.U64()
	m.Stats.BranchesTaken = r.U64()
	m.Stats.Syscalls = r.U64()
	for i := range m.Stats.Kinds {
		m.Stats.Kinds[i] = r.U64()
	}
	m.Halted = r.Bool()
	m.ExitCode = int32(r.U32())
	out := r.Raw()
	m.Output.Reset()
	m.Output.Write(out)
	m.inPos = r.Int()
	if err := m.Mem.RestoreFrom(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	if m.inPos < 0 || m.inPos > len(m.input) {
		return checkpoint.ErrMalformed
	}
	if m.Regs[isa.RegZero] != 0 {
		return checkpoint.ErrMalformed
	}
	m.trans = nil
	return nil
}
