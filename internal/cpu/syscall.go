package cpu

import (
	"strconv"

	"repro/internal/isa"
	"repro/internal/program"
)

// syscall implements the OS interface. The calling convention follows
// SPIM: $v0 carries the syscall number, $a0/$a1 the arguments, and
// results return in $v0.
//
// For the dataflow analyses the event records $v0 (the number) as Src1
// and $a0 as Src2; syscalls that produce a value set Dst=$v0. Bytes
// delivered by ReadChar/ReadBlock are the program's *external input*;
// the taint analysis special-cases these events.
func (m *Machine) syscall(ev *Event) error {
	num := m.Regs[isa.RegV0]
	ev.SysNum = num
	ev.Src1, ev.Src1Val = isa.RegV0, num
	ev.Src2, ev.Src2Val = isa.RegA0, m.Regs[isa.RegA0]

	switch num {
	case SysPrintInt:
		m.emit([]byte(strconv.FormatInt(int64(int32(m.Regs[isa.RegA0])), 10)))
	case SysPrintStr:
		s := m.Mem.ReadCString(m.Regs[isa.RegA0], 1<<16)
		m.emit([]byte(s))
	case SysSbrk:
		old := m.Brk
		n := int32(m.Regs[isa.RegA0])
		newBrk := uint32(int64(m.Brk) + int64(n))
		if newBrk < m.Image.HeapBase() || newBrk >= program.StackLimit {
			return m.faultf("sbrk(%d) out of range (brk=0x%x)", n, m.Brk)
		}
		m.Brk = newBrk
		m.setDst(ev, isa.RegV0, old)
	case SysExit:
		m.Halted = true
		m.ExitCode = int32(m.Regs[isa.RegA0])
	case SysPutChar:
		m.emit([]byte{byte(m.Regs[isa.RegA0])})
	case SysReadChar:
		v := uint32(0xffffffff) // -1 on EOF
		if m.inPos < len(m.input) {
			v = uint32(m.input[m.inPos])
			m.inPos++
		}
		m.setDst(ev, isa.RegV0, v)
	case SysReadBlock:
		buf := m.Regs[isa.RegA0]
		n := int(int32(m.Regs[isa.RegA1]))
		got := 0
		for got < n && m.inPos < len(m.input) {
			m.Mem.StoreByte(buf+uint32(got), m.input[m.inPos])
			m.inPos++
			got++
		}
		m.setDst(ev, isa.RegV0, uint32(got))
	default:
		return m.faultf("unknown syscall %d", num)
	}
	return nil
}

func (m *Machine) emit(b []byte) {
	limit := m.MaxOutput
	if limit == 0 {
		limit = 1 << 20
	}
	if m.Output.Len()+len(b) <= limit {
		m.Output.Write(b)
	}
}
