package funcanal_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/funcanal"
	"repro/internal/minic"
)

func run(t *testing.T, src string) *funcanal.Analysis {
	t.Helper()
	im, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := cpu.New(im, nil)
	a := funcanal.New(im)
	a.Counting = true
	m.Attach(obs{a})
	if _, err := m.Run(20_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !m.Halted {
		t.Fatal("did not finish")
	}
	return a
}

type obs struct{ a *funcanal.Analysis }

func (o obs) OnInst(ev *cpu.Event)      { o.a.Observe(ev, false) }
func (o obs) OnCall(ev *cpu.CallEvent)  { o.a.OnCall(ev) }
func (o obs) OnReturn(ev *cpu.RetEvent) { o.a.OnReturn(ev) }

func TestAllArgRepetition(t *testing.T) {
	a := run(t, `
int id(int x) { return x; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 10; i++) { s += id(5); }
	return s;
}`)
	// id is called 10 times with the same argument: 9 of 10 repeat.
	for _, row := range a.PerFunction() {
		if row.Name == "id" {
			if row.Calls != 10 {
				t.Errorf("id calls = %d", row.Calls)
			}
			if row.AllArgsPct != 90 {
				t.Errorf("id all-arg%% = %v, want 90", row.AllArgsPct)
			}
		}
	}
	t4 := a.Table4()
	if t4.Funcs < 2 { // id + main at least
		t.Errorf("funcs = %d", t4.Funcs)
	}
}

func TestNoArgRepetition(t *testing.T) {
	a := run(t, `
int id(int x) { return x; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 10; i++) { s += id(i); }
	return s;
}`)
	for _, row := range a.PerFunction() {
		if row.Name == "id" && row.AllArgsPct != 0 {
			t.Errorf("distinct-arg calls show all-arg%% = %v", row.AllArgsPct)
		}
	}
	t4 := a.Table4()
	if t4.NoArgsPct == 0 {
		t.Error("no-arg repetition should be nonzero for distinct args")
	}
}

func TestMultiArgTuples(t *testing.T) {
	a := run(t, `
int mix(int a, int b) { return a * 10 + b; }
int main() {
	int s;
	s = 0;
	/* (1,2) x3, (3,4) x2, (5,6) x1 */
	s += mix(1, 2); s += mix(1, 2); s += mix(1, 2);
	s += mix(3, 4); s += mix(3, 4);
	s += mix(5, 6);
	return s;
}`)
	for _, row := range a.PerFunction() {
		if row.Name == "mix" {
			// 3 repeats out of 6 calls.
			if row.Calls != 6 || row.AllArgsPct != 50 {
				t.Errorf("mix = %+v", row)
			}
		}
	}
	// Figure 5: top-1 tuple (1,2) covers 2 of 3 repeats for mix.
	cov := a.TopArgSetCoverage(5)
	if len(cov) != 5 {
		t.Fatalf("cov = %v", cov)
	}
	for i := 1; i < 5; i++ {
		if cov[i] < cov[i-1]-1e-9 {
			t.Error("coverage not monotone")
		}
	}
	if cov[4] < 99.9 {
		t.Errorf("all repeats of <=5 tuples should be fully covered: %v", cov)
	}
}

func TestPurity(t *testing.T) {
	a := run(t, `
int g;
int pure(int x) { return x * x + 1; }
int impureStore(int x) { g = x; return x; }
int impureLoad(int x) { return g + x; }
int callsImpure(int x) { return impureStore(x) + 1; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 8; i++) {
		s += pure(3);
		s += impureStore(3);
		s += impureLoad(3);
		s += callsImpure(3);
	}
	return s;
}`)
	t8 := a.Table8()
	// pure and impure calls are both present; the percentage must be
	// strictly between 0 and 100.
	if t8.PureOfAllPct <= 0 || t8.PureOfAllPct >= 100 {
		t.Errorf("pure%% = %v, want in (0,100)", t8.PureOfAllPct)
	}
	// pure() is 8 calls out of 32 tracked calls + main + others;
	// roughly a quarter of the workload calls. Sanity bound only.
	if t8.PureOfAllPct > 50 {
		t.Errorf("pure%% = %v suspiciously high", t8.PureOfAllPct)
	}
}

func TestPurityPropagatesToCaller(t *testing.T) {
	a := run(t, `
int g;
int impure(int x) { g = x; return x; }
int wrapper(int x) { return impure(x) + 1; }
int onlyLocal(int x) {
	int tmp;
	tmp = x * 2;
	return tmp;
}
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 6; i++) {
		s += wrapper(1);
		s += onlyLocal(1);
	}
	return s;
}`)
	// All wrapper calls are impure (they call impure); onlyLocal calls
	// are pure. Of the repeated-arg calls:
	//   wrapper 6, impure 6, onlyLocal 6, main 1, plus runtime.
	t8 := a.Table8()
	if t8.PureOfAllPct <= 0 {
		t.Error("onlyLocal should register as pure")
	}
	// Cross-check per-function data: wrapper must not be flagged pure.
	// (Indirectly: if wrapper were pure, pure share would exceed 60%.)
	if t8.PureOfAllPct > 60 {
		t.Errorf("pure%% = %v: wrapper impurity did not propagate", t8.PureOfAllPct)
	}
}

func TestIOIsImpure(t *testing.T) {
	a := run(t, `
int shout(int x) { putchar(x); return x; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 5; i++) { s += shout(65); }
	return s;
}`)
	// Every tracked function either does I/O or calls something that
	// does... main calls shout (impure), so only leaf runtime-free
	// pure functions would count; here expect low purity.
	t8 := a.Table8()
	if t8.PureOfAllPct > 20 {
		t.Errorf("pure%% = %v, want low (I/O everywhere)", t8.PureOfAllPct)
	}
}

func TestStackArgsTracked(t *testing.T) {
	a := run(t, `
int six(int a, int b, int c, int d, int e, int f) {
	return a + b + c + d + e + f;
}
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 10; i++) { s += six(1, 2, 3, 4, 5, 6); }
	return s;
}`)
	for _, row := range a.PerFunction() {
		if row.Name == "six" {
			if row.AllArgsPct != 90 {
				t.Errorf("six all-arg%% = %v, want 90 (stack args must be captured)", row.AllArgsPct)
			}
		}
	}
}

func TestZeroArgFunctions(t *testing.T) {
	a := run(t, `
int tick() { return 1; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 10; i++) { s += tick(); }
	return s;
}`)
	for _, row := range a.PerFunction() {
		if row.Name == "tick" {
			// Empty tuple repeats from the second call.
			if row.AllArgsPct != 90 {
				t.Errorf("tick all-arg%% = %v, want 90", row.AllArgsPct)
			}
		}
	}
	// Zero-arg calls never produce no-arg repetition.
	if t4 := a.Table4(); t4.NoArgsPct != 0 {
		t.Errorf("no-arg%% = %v, want 0", t4.NoArgsPct)
	}
}
