// Package funcanal implements the paper's *function-level analysis*
// (Sections 5.2 and 6): repetition of function-argument tuples
// (Table 4), memoization candidacy — dynamic calls with no side
// effects and no implicit inputs (Table 8) — and specialization
// coverage of the most frequent argument sets (Figure 5).
package funcanal

import (
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
)

// maxTuples bounds the distinct argument tuples remembered per static
// function; beyond it, unseen tuples are classified non-repeated and
// not inserted (the same buffering discipline as the repetition
// tracker).
const maxTuples = 1 << 16

// argKey is a comparable argument tuple.
type argKey struct {
	n int
	a [cpu.MaxTrackedArgs]uint32
}

// funcStats accumulates per-static-function data.
type funcStats struct {
	fn      *program.Func
	calls   uint64
	allRep  uint64 // calls where the whole tuple repeated
	noneRep uint64 // calls where no single argument value repeated

	// tuples maps an argument tuple to its index in tupleCounts; the
	// indirection makes the hot path (a repeated tuple) one map lookup
	// plus a slice increment instead of a lookup-then-store pair that
	// hashes the 36-byte key twice.
	tuples      map[argKey]uint32
	tupleCounts []uint64
	tuplesFull  bool
	perArg      []map[uint32]struct{}

	// Completed (returned) dynamic calls.
	returned       uint64
	pureCalls      uint64 // no side effects, no implicit inputs
	pureAllRep     uint64 // pure AND all-arg-repeated
	returnedAllRep uint64

	// Per-function dynamic instruction profile (instructions retired
	// while this function's activation was innermost).
	instrs    uint64
	instrsRep uint64
}

// frame is one live activation.
type frame struct {
	stats    *funcStats
	spEntry  uint32
	allRep   bool
	sideEff  bool
	implicit bool
}

// Analysis observes calls, returns, and memory instructions.
type Analysis struct {
	// Counting gates the statistics: the activation stack and purity
	// flags always update, but calls are only recorded (and argument
	// tuples buffered) while Counting is true — the paper's
	// skip-then-measure window.
	Counting bool

	image *program.Image
	byPC  map[uint32]*funcStats
	stack []frame
	curSP uint32

	totalCalls   uint64
	totalAllRep  uint64
	totalNoneRep uint64
}

// New creates the analysis.
func New(im *program.Image) *Analysis {
	return &Analysis{
		image: im,
		byPC:  make(map[uint32]*funcStats),
		curSP: program.StackTop,
	}
}

// OnCall records a call and classifies its argument tuple.
func (a *Analysis) OnCall(ev *cpu.CallEvent) {
	if !a.Counting {
		// Keep the activation stack balanced without buffering
		// argument history.
		a.stack = append(a.stack, frame{spEntry: ev.SP})
		return
	}
	if ev.Callee == nil {
		// Unknown target: keep the stack balanced with an anonymous
		// frame so returns still match.
		a.stack = append(a.stack, frame{spEntry: ev.SP})
		return
	}
	st := a.byPC[ev.Target]
	if st == nil {
		n := ev.Callee.NArgs
		if n > cpu.MaxTrackedArgs {
			n = cpu.MaxTrackedArgs
		}
		st = &funcStats{
			fn:     ev.Callee,
			tuples: make(map[argKey]uint32),
			perArg: make([]map[uint32]struct{}, n),
		}
		for i := range st.perArg {
			st.perArg[i] = make(map[uint32]struct{})
		}
		a.byPC[ev.Target] = st
	}
	st.calls++
	a.totalCalls++

	nargs := len(st.perArg)
	var key argKey
	key.n = nargs
	for i := 0; i < nargs; i++ {
		key.a[i] = ev.Args[i]
	}

	allRep := false
	if ti, seen := st.tuples[key]; seen {
		st.tupleCounts[ti]++
		allRep = true
	} else if len(st.tuples) < maxTuples {
		st.tuples[key] = uint32(len(st.tupleCounts))
		st.tupleCounts = append(st.tupleCounts, 1)
	} else {
		st.tuplesFull = true
	}
	if allRep && nargs >= 0 {
		// Zero-arg functions trivially repeat their (empty) tuple
		// from the second call on; the paper's Table 4 counts calls
		// with "ALL args repeated", which is vacuously true there.
		st.allRep++
		a.totalAllRep++
	}

	noneRep := nargs > 0
	for i := 0; i < nargs; i++ {
		if _, seen := st.perArg[i][ev.Args[i]]; seen {
			noneRep = false
		} else {
			st.perArg[i][ev.Args[i]] = struct{}{}
		}
	}
	if noneRep {
		st.noneRep++
		a.totalNoneRep++
	}

	a.stack = append(a.stack, frame{stats: st, spEntry: ev.SP, allRep: allRep})
}

// OnReturn completes the innermost activation, folding its purity
// flags into the caller (calling an impure function is itself a side
// effect for memoization purposes).
func (a *Analysis) OnReturn(ev *cpu.RetEvent) {
	if len(a.stack) == 0 {
		return // attached mid-run; tolerate unbalanced returns
	}
	fr := a.stack[len(a.stack)-1]
	a.stack = a.stack[:len(a.stack)-1]
	if fr.stats != nil {
		fr.stats.returned++
		if fr.allRep {
			fr.stats.returnedAllRep++
		}
		if !fr.sideEff && !fr.implicit {
			fr.stats.pureCalls++
			if fr.allRep {
				fr.stats.pureAllRep++
			}
		}
	}
	if len(a.stack) > 0 {
		parent := &a.stack[len(a.stack)-1]
		parent.sideEff = parent.sideEff || fr.sideEff
		parent.implicit = parent.implicit || fr.implicit
	}
}

// Observe inspects memory and syscall behaviour for purity flags and
// attributes the instruction to the innermost activation's function
// for the per-function profile.
func (a *Analysis) Observe(ev *cpu.Event, repeated bool) {
	// Track $sp so "own frame" is known without reading CPU state.
	if ev.Dst == isa.RegSP {
		a.curSP = ev.DstVal
	}
	if len(a.stack) == 0 {
		return
	}
	fr := &a.stack[len(a.stack)-1]
	if a.Counting && fr.stats != nil {
		fr.stats.instrs++
		if repeated {
			fr.stats.instrsRep++
		}
	}
	switch {
	case ev.IsStore:
		if !a.ownFrame(fr, ev.Addr) {
			fr.sideEff = true
		}
	case ev.IsLoad:
		if !a.ownFrame(fr, ev.Addr) {
			fr.implicit = true
		}
	case ev.Inst.Op == isa.OpSYSCALL:
		fr.sideEff = true
		if ev.SysNum == cpu.SysReadChar || ev.SysNum == cpu.SysReadBlock {
			fr.implicit = true
		}
	}
}

// ownFrame reports whether addr falls in the activation's own stack
// frame or its incoming-argument slots.
func (a *Analysis) ownFrame(fr *frame, addr uint32) bool {
	return addr >= a.curSP && addr < fr.spEntry+4*cpu.MaxTrackedArgs+4
}

// Table4 is the function-level repetition summary.
type Table4 struct {
	Funcs      int     // static functions called
	DynCalls   uint64  // dynamic calls observed
	AllArgsPct float64 // % of calls with the whole tuple repeated
	NoArgsPct  float64 // % of calls with no argument value repeated
}

// Table4 computes the paper's Table 4 row.
func (a *Analysis) Table4() Table4 {
	return Table4{
		Funcs:      len(a.byPC),
		DynCalls:   a.totalCalls,
		AllArgsPct: pct(a.totalAllRep, a.totalCalls),
		NoArgsPct:  pct(a.totalNoneRep, a.totalCalls),
	}
}

// Table8 reports memoization candidacy.
type Table8 struct {
	// PureOfAllPct: dynamic calls with no side effects or implicit
	// inputs, as a percentage of all completed calls.
	PureOfAllPct float64
	// PureOfAllArgRepPct: the same calls as a percentage of completed
	// calls with all-argument repetition.
	PureOfAllArgRepPct float64
}

// Table8 computes the paper's Table 8 row.
func (a *Analysis) Table8() Table8 {
	var returned, pure, allRep, pureAllRep uint64
	for _, st := range a.byPC {
		returned += st.returned
		pure += st.pureCalls
		allRep += st.returnedAllRep
		pureAllRep += st.pureAllRep
	}
	return Table8{
		PureOfAllPct:       pct(pure, returned),
		PureOfAllArgRepPct: pct(pureAllRep, allRep),
	}
}

// TopArgSetCoverage computes Figure 5: for k = 1..maxK, the share of
// all-argument repetition covered by specializing every function for
// its k most frequent argument tuples.
func (a *Analysis) TopArgSetCoverage(maxK int) []float64 {
	covered := make([]uint64, maxK)
	var total uint64
	for _, st := range a.byPC {
		counts := make([]uint64, 0, len(st.tupleCounts))
		for _, n := range st.tupleCounts {
			if n >= 2 {
				counts = append(counts, n-1) // repeats of this tuple
			}
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		for i := 0; i < maxK && i < len(counts); i++ {
			covered[i] += counts[i] // marginal coverage of the (i+1)-th tuple
		}
		for _, n := range counts {
			total += n
		}
	}
	out := make([]float64, maxK)
	var cum uint64
	for i := 0; i < maxK; i++ {
		cum += covered[i]
		out[i] = pct(cum, total)
	}
	return out
}

// FuncRow is one per-function drill-down row.
type FuncRow struct {
	Name       string
	Calls      uint64
	AllArgsPct float64
	Size       int // static instructions
	// Instrs counts dynamic instructions retired while the function's
	// own activation was innermost (self time, not inclusive);
	// RepeatPct is the share of those that repeated.
	Instrs    uint64
	RepeatPct float64
}

// PerFunction returns the per-function profile sorted by dynamic
// instruction count: which functions execute the most, and how
// repetitive each one's execution is.
func (a *Analysis) PerFunction() []FuncRow {
	rows := make([]FuncRow, 0, len(a.byPC))
	for _, st := range a.byPC {
		rows = append(rows, FuncRow{
			Name:       st.fn.Name,
			Calls:      st.calls,
			AllArgsPct: pct(st.allRep, st.calls),
			Size:       st.fn.Size(),
			Instrs:     st.instrs,
			RepeatPct:  pct(st.instrsRep, st.instrs),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Instrs != rows[j].Instrs {
			return rows[i].Instrs > rows[j].Instrs
		}
		if rows[i].Calls != rows[j].Calls {
			return rows[i].Calls > rows[j].Calls
		}
		// Name breaks exact ties: rows come from map iteration, and
		// the report must be byte-deterministic (golden corpus, result
		// cache).
		return rows[i].Name < rows[j].Name
	})
	return rows
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Name identifies the analysis in observability output.
func (a *Analysis) Name() string { return "funcanal" }
