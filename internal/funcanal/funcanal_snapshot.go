package funcanal

import (
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
)

// SnapshotTo writes the analysis state. Maps encode in deterministic
// order — byPC by entry PC, each tuple table inverted into index
// order (preserving insertion order, which tupleCounts depends on),
// per-argument value sets sorted — so the same state always produces
// the same bytes. Counting is run-phase state reapplied by the core
// pipeline on resume.
func (a *Analysis) SnapshotTo(w *checkpoint.Writer) {
	w.U32(a.curSP)
	w.U64(a.totalCalls)
	w.U64(a.totalAllRep)
	w.U64(a.totalNoneRep)

	entries := make([]uint32, 0, len(a.byPC))
	for pc := range a.byPC {
		entries = append(entries, pc)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	w.U32(uint32(len(entries)))
	for _, pc := range entries {
		st := a.byPC[pc]
		w.U32(pc)
		w.U64(st.calls)
		w.U64(st.allRep)
		w.U64(st.noneRep)
		nargs := len(st.perArg)
		w.U8(uint8(nargs))
		// Invert tuples (key -> index) into index order; tupleCounts
		// is parallel to it by construction.
		keys := make([]argKey, len(st.tupleCounts))
		for k, ti := range st.tuples {
			keys[ti] = k
		}
		w.U32(uint32(len(keys)))
		for _, k := range keys {
			for i := 0; i < nargs; i++ {
				w.U32(k.a[i])
			}
		}
		for _, c := range st.tupleCounts {
			w.U64(c)
		}
		w.Bool(st.tuplesFull)
		for _, set := range st.perArg {
			vals := make([]uint32, 0, len(set))
			for v := range set {
				vals = append(vals, v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			w.U32(uint32(len(vals)))
			for _, v := range vals {
				w.U32(v)
			}
		}
		w.U64(st.returned)
		w.U64(st.pureCalls)
		w.U64(st.pureAllRep)
		w.U64(st.returnedAllRep)
		w.U64(st.instrs)
		w.U64(st.instrsRep)
	}

	w.U32(uint32(len(a.stack)))
	for i := range a.stack {
		fr := &a.stack[i]
		// A frame's stats pointer is identified by its byPC key (the
		// callee entry); 0 marks an anonymous frame. No real function
		// sits at address 0 (text starts at program.TextBase).
		key := uint32(0)
		if fr.stats != nil {
			key = fr.stats.fn.Entry
		}
		w.U32(key)
		w.U32(fr.spEntry)
		w.Bool(fr.allRep)
		w.Bool(fr.sideEff)
		w.Bool(fr.implicit)
	}
}

// RestoreFrom rebuilds the analysis from a snapshot, resolving
// function pointers through the immutable image and validating every
// cross-reference (tuple-table sizes, frame stats keys).
func (a *Analysis) RestoreFrom(r *checkpoint.Reader) error {
	a.curSP = r.U32()
	a.totalCalls = r.U64()
	a.totalAllRep = r.U64()
	a.totalNoneRep = r.U64()

	a.byPC = make(map[uint32]*funcStats)
	nf := r.Count(4 + 3*8 + 1 + 4 + 1 + 6*8)
	prev := int64(-1)
	for i := 0; i < nf; i++ {
		pc := r.U32()
		if r.Err() != nil {
			return r.Err()
		}
		if int64(pc) <= prev {
			return checkpoint.ErrMalformed
		}
		prev = int64(pc)
		fn := a.image.FuncByEntry(pc)
		if fn == nil {
			return checkpoint.ErrMalformed
		}
		st := &funcStats{fn: fn}
		st.calls = r.U64()
		st.allRep = r.U64()
		st.noneRep = r.U64()
		nargs := int(r.U8())
		if r.Err() != nil {
			return r.Err()
		}
		if nargs > cpu.MaxTrackedArgs {
			return checkpoint.ErrMalformed
		}
		nt := r.Count(max(4*nargs, 1))
		if nt > maxTuples {
			return checkpoint.ErrMalformed
		}
		st.tuples = make(map[argKey]uint32, nt)
		for ti := 0; ti < nt; ti++ {
			var k argKey
			k.n = nargs
			for j := 0; j < nargs; j++ {
				k.a[j] = r.U32()
			}
			st.tuples[k] = uint32(ti)
		}
		if r.Err() == nil && len(st.tuples) != nt {
			return checkpoint.ErrMalformed // duplicate tuple keys
		}
		st.tupleCounts = make([]uint64, nt)
		for ti := range st.tupleCounts {
			st.tupleCounts[ti] = r.U64()
		}
		st.tuplesFull = r.Bool()
		st.perArg = make([]map[uint32]struct{}, nargs)
		for j := range st.perArg {
			nv := r.Count(4)
			set := make(map[uint32]struct{}, nv)
			for v := 0; v < nv; v++ {
				set[r.U32()] = struct{}{}
			}
			if r.Err() == nil && len(set) != nv {
				return checkpoint.ErrMalformed
			}
			st.perArg[j] = set
		}
		st.returned = r.U64()
		st.pureCalls = r.U64()
		st.pureAllRep = r.U64()
		st.returnedAllRep = r.U64()
		st.instrs = r.U64()
		st.instrsRep = r.U64()
		a.byPC[pc] = st
	}

	ns := r.Count(4 + 4 + 3)
	a.stack = make([]frame, ns)
	for i := range a.stack {
		fr := &a.stack[i]
		key := r.U32()
		if key != 0 {
			fr.stats = a.byPC[key]
			if r.Err() == nil && fr.stats == nil {
				return checkpoint.ErrMalformed
			}
		}
		fr.spEntry = r.U32()
		fr.allRep = r.Bool()
		fr.sideEff = r.Bool()
		fr.implicit = r.Bool()
	}
	return r.Err()
}
