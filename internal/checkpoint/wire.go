// Package checkpoint is the crash-resume substrate for long
// simulations: a versioned, canonical, self-validating binary snapshot
// format plus an atomic on-disk store keyed by the result-cache
// fingerprint.
//
// The format is deliberately boring: little-endian fixed-width
// integers, length-prefixed byte strings, no varints, no compression,
// no reflection. Canonical means byte-deterministic — encoding the
// same simulation state twice yields identical bytes, which is what
// lets tests pin "resumed == uninterrupted" down to the snapshot
// layer. Self-validating means an "ICKP" magic header, a format
// version, and a SHA-256 trailer over everything before it; any file
// that fails any of those checks is treated as absent (counted and
// deleted), never as state to resume from.
package checkpoint

import "encoding/binary"

// Writer accumulates the canonical encoding of a snapshot body. The
// zero value is ready to use. Every value is little-endian and
// fixed-width so the encoding of a given state is unique.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded body. The slice aliases the writer's
// buffer; callers hand it straight to Encode.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends an int64 (two's-complement, little-endian).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Raw appends p with a u32 length prefix.
func (w *Writer) Raw(p []byte) {
	w.U32(uint32(len(p)))
	w.buf = append(w.buf, p...)
}

// String appends s with a u32 length prefix.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Fixed appends p verbatim, no length prefix — for fields whose size
// is fixed by the format (memory pages, checksums).
func (w *Writer) Fixed(p []byte) {
	w.buf = append(w.buf, p...)
}

// Reader decodes a snapshot body produced by Writer. It is
// sticky-error and bounds-checked: after the first short or malformed
// read every subsequent accessor returns the zero value, and Err
// reports the failure. Nothing in this type panics on hostile input —
// that is the contract FuzzSnapshotDecode pins.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps body for decoding.
func NewReader(body []byte) *Reader { return &Reader{data: body} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// fail marks the reader broken (first error wins).
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take returns the next n bytes, or nil after marking the reader
// failed when fewer remain.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.data[r.off : r.off+n]
	r.off += n
	return p
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads one byte as a bool; any value other than 0 or 1 fails
// the reader (canonical form admits exactly one encoding).
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(ErrMalformed)
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Raw reads a u32-length-prefixed byte string. The returned slice
// aliases the reader's buffer.
func (r *Reader) Raw() []byte {
	n := r.U32()
	return r.take(int(n))
}

// Fixed reads exactly n bytes (no length prefix). The returned slice
// aliases the reader's buffer.
func (r *Reader) Fixed(n int) []byte { return r.take(n) }

// String reads a u32-length-prefixed string.
func (r *Reader) String() string { return string(r.Raw()) }

// Count reads a u32 element count for a sequence whose elements each
// encode to at least minBytes bytes, and validates that the count
// could possibly fit in the remaining input. Restore paths size their
// allocations from it, so a hostile length prefix cannot force a huge
// allocation before the bytes backing it are proven present.
func (r *Reader) Count(minBytes int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > r.Remaining()/minBytes {
		r.fail(ErrMalformed)
		return 0
	}
	return n
}
