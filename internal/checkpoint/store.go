package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// fileExt is the checkpoint file suffix; in-progress writes use
// fileExt+tmpSuffix and are renamed into place, so a crash mid-write
// leaves a temp orphan (scrubbed at startup), never a half snapshot
// under the real name.
const (
	fileExt   = ".ckpt"
	tmpSuffix = ".tmp"
)

// Stats are the store's observability counters, exported on /metrics
// under the checkpoint_ prefix and snapshotted with StatValues.
type Stats struct {
	Writes          obs.Counter // snapshots written (temp+rename completed)
	WriteErrors     obs.Counter // snapshot writes that failed (run continues uncheckpointed)
	Resumes         obs.Counter // runs restarted from a snapshot
	ResumeRejected  obs.Counter // snapshots that loaded but failed state restore
	Corrupt         obs.Counter // undecodable snapshots deleted (bad magic/length/checksum)
	VersionMismatch obs.Counter // snapshots from another format version deleted
	Scrubbed        obs.Counter // stale temp files removed by the startup scrub
	Removed         obs.Counter // snapshots deleted after their run completed
}

// Store is a directory of checkpoint files, one per result-cache
// fingerprint. All methods are safe for concurrent use by independent
// keys; the run path guarantees one writer per key at a time (the
// result cache already deduplicates in-flight runs per fingerprint).
type Store struct {
	dir string

	Stats Stats
}

// Open creates (if needed) and scrubs the checkpoint directory,
// mirroring the result cache's disk scrub: orphaned temp files from a
// crash mid-write are deleted and counted, and every checkpoint file
// is re-validated through Decode — corrupt or version-mismatched
// snapshots are deleted and counted so a resume can never start from
// one. Files that don't look like checkpoints at all are left alone.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// Any *.tmp is an in-progress write that never reached its
			// rename — ours are fileExt+tmpSuffix, but a SIGKILL can
			// also strand os.CreateTemp names that lost the extension,
			// so the whole suffix class is garbage by convention.
			if os.Remove(filepath.Join(dir, name)) == nil {
				s.Stats.Scrubbed.Inc()
			}
		case strings.HasSuffix(name, fileExt):
			s.validate(filepath.Join(dir, name), strings.TrimSuffix(name, fileExt))
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// validate decodes the file and deletes it (with the right counter)
// when it cannot be resumed from: unreadable, undecodable, foreign
// format version, or filed under the wrong key.
func (s *Store) validate(path, wantKey string) {
	data, err := os.ReadFile(path)
	if err != nil {
		s.drop(path, err)
		return
	}
	key, _, err := Decode(data)
	if err != nil || key != wantKey {
		if err == nil {
			err = fmt.Errorf("%w: key %q filed as %q", ErrMalformed, key, wantKey)
		}
		s.drop(path, err)
	}
}

// drop deletes an unusable checkpoint file and counts why.
func (s *Store) drop(path string, err error) {
	if errors.Is(err, ErrVersion) {
		s.Stats.VersionMismatch.Inc()
	} else {
		s.Stats.Corrupt.Inc()
	}
	os.Remove(path)
}

// path maps a key to its checkpoint file. Keys are result-cache
// fingerprints (lowercase hex), so they are filename-safe by
// construction; anything else is rejected by Write/Load.
func (s *Store) path(key string) (string, bool) {
	if key == "" || len(key) > MaxKeyLen {
		return "", false
	}
	for _, c := range key {
		ok := c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
		if !ok {
			return "", false
		}
	}
	return filepath.Join(s.dir, key+fileExt), true
}

// Write atomically persists body as the snapshot for key, replacing
// any previous one: encode to a temp file in the same directory, then
// rename into place. A failure leaves the previous snapshot (if any)
// intact and is counted; the caller keeps running uncheckpointed.
func (s *Store) Write(key string, body []byte) error {
	path, ok := s.path(key)
	if !ok {
		s.Stats.WriteErrors.Inc()
		return fmt.Errorf("checkpoint: unusable key %q", key)
	}
	err := func() error {
		tmp := path + tmpSuffix
		if err := os.WriteFile(tmp, Encode(key, body), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return err
		}
		return nil
	}()
	if err != nil {
		s.Stats.WriteErrors.Inc()
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.Stats.Writes.Inc()
	return nil
}

// Load returns the snapshot body for key, or ok=false when there is
// none to resume from. A file that exists but fails validation is
// counted, deleted, and reported as absent — the caller falls back to
// a fresh run, never a panic and never a wrong report.
func (s *Store) Load(key string) (body []byte, ok bool) {
	path, pok := s.path(key)
	if !pok {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	gotKey, body, err := Decode(data)
	if err != nil || gotKey != key {
		if err == nil {
			err = ErrMalformed
		}
		s.drop(path, err)
		return nil, false
	}
	return body, true
}

// Remove deletes the snapshot for key, counting only if a file was
// actually removed. The run path calls it after a run completes so a
// finished measurement can't be "resumed".
func (s *Store) Remove(key string) {
	path, ok := s.path(key)
	if !ok {
		return
	}
	if os.Remove(path) == nil {
		s.Stats.Removed.Inc()
	}
}

// RejectResume records a snapshot that decoded but whose state failed
// to restore (observer-level validation), and deletes it.
func (s *Store) RejectResume(key string) {
	s.Stats.ResumeRejected.Inc()
	if path, ok := s.path(key); ok {
		os.Remove(path)
	}
}

// Keys lists the fingerprints with a resumable snapshot on disk,
// sorted. (Validation happened at Open; a file corrupted since then is
// still caught at Load.)
func (s *Store) Keys() []string {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var keys []string
	for _, ent := range ents {
		if name := ent.Name(); strings.HasSuffix(name, fileExt) {
			keys = append(keys, strings.TrimSuffix(name, fileExt))
		}
	}
	sort.Strings(keys)
	return keys
}

// StatValues snapshots every store counter (plus the live snapshot
// count), name-sorted, for the server's /metrics document.
func (s *Store) StatValues() []obs.NamedValue {
	return []obs.NamedValue{
		{Name: "corrupt_dropped", Value: int64(s.Stats.Corrupt.Value())},
		{Name: "removed", Value: int64(s.Stats.Removed.Value())},
		{Name: "resume_rejected", Value: int64(s.Stats.ResumeRejected.Value())},
		{Name: "resumes", Value: int64(s.Stats.Resumes.Value())},
		{Name: "snapshots", Value: int64(len(s.Keys()))},
		{Name: "tmp_scrubbed", Value: int64(s.Stats.Scrubbed.Value())},
		{Name: "version_mismatch_dropped", Value: int64(s.Stats.VersionMismatch.Value())},
		{Name: "write_errors", Value: int64(s.Stats.WriteErrors.Value())},
		{Name: "writes", Value: int64(s.Stats.Writes.Value())},
	}
}
