package checkpoint

import (
	"crypto/sha256"
	"errors"
	"fmt"
)

// FormatVersion is bumped whenever the snapshot body layout changes in
// any way. A snapshot written by a different version is not resumable:
// Decode rejects it with ErrVersion and the store deletes it, so a
// binary upgrade degrades to a fresh run instead of a wrong report.
const FormatVersion = 2

// magic identifies a checkpoint file: "Instruction-repetition
// ChecKPoint".
var magic = [4]byte{'I', 'C', 'K', 'P'}

// Envelope layout constants.
const (
	headerLen   = 4 + 4 + 4 // magic + version + keyLen
	checksumLen = sha256.Size

	// MaxKeyLen bounds the key field (fingerprints are 64 hex chars;
	// anything near this bound is hostile input, not a fingerprint).
	MaxKeyLen = 1 << 10
)

// Decode failure modes. Store folds ErrVersion into its version-
// mismatch counter and everything else into the corrupt counter; both
// end with the file deleted and a fresh run.
var (
	ErrMagic     = errors.New("checkpoint: bad magic")
	ErrVersion   = errors.New("checkpoint: format version mismatch")
	ErrTruncated = errors.New("checkpoint: truncated input")
	ErrMalformed = errors.New("checkpoint: malformed input")
	ErrChecksum  = errors.New("checkpoint: checksum mismatch")
)

// Snapshotter is implemented by every component whose state must
// survive a crash: the machine, each observer, and core's phase
// bookkeeping. SnapshotTo must write a canonical (byte-deterministic)
// encoding of the complete live state; RestoreFrom must rebuild
// exactly that state from the reader, leaving any derived caches
// (translation cache, page caches) invalidated rather than restored.
type Snapshotter interface {
	SnapshotTo(w *Writer)
	RestoreFrom(r *Reader) error
}

// Encode wraps body in the self-validating envelope:
//
//	magic | u32 version | u32 keyLen | key | u64 bodyLen | body | sha256
//
// where the checksum covers every byte before it (header and body
// alike, so a flipped version or key bit is caught too).
func Encode(key string, body []byte) []byte {
	out := make([]byte, 0, headerLen+len(key)+8+len(body)+checksumLen)
	var w Writer
	w.buf = out
	w.buf = append(w.buf, magic[:]...)
	w.U32(FormatVersion)
	w.String(key)
	w.U64(uint64(len(body)))
	w.buf = append(w.buf, body...)
	sum := sha256.Sum256(w.buf)
	w.buf = append(w.buf, sum[:]...)
	return w.buf
}

// Decode validates the envelope and returns the key and body. It
// never panics on arbitrary input; any structural problem — short
// input, wrong magic, foreign version, absurd lengths, trailing
// garbage, checksum mismatch — is an error, and a snapshot that fails
// to decode is treated as nonexistent by every caller.
func Decode(data []byte) (key string, body []byte, err error) {
	r := NewReader(data)
	if m := r.take(4); m == nil || [4]byte(m) != magic {
		return "", nil, firstErr(r, ErrMagic)
	}
	if v := r.U32(); r.err == nil && v != FormatVersion {
		return "", nil, fmt.Errorf("%w: file has v%d, this binary reads v%d", ErrVersion, v, FormatVersion)
	}
	keyLen := int(r.U32())
	if r.err == nil && keyLen > MaxKeyLen {
		return "", nil, ErrMalformed
	}
	k := r.take(keyLen)
	bodyLen := r.U64()
	if r.err == nil && bodyLen != uint64(r.Remaining()-checksumLen) {
		// Wrong length or missing/oversized trailer: either way the
		// envelope does not frame the input exactly.
		return "", nil, firstOf(ErrTruncated, ErrMalformed, uint64(r.Remaining()) < bodyLen+checksumLen)
	}
	b := r.take(int(bodyLen))
	if r.err != nil {
		return "", nil, r.err
	}
	sum := sha256.Sum256(data[:len(data)-checksumLen])
	if [checksumLen]byte(data[len(data)-checksumLen:]) != sum {
		return "", nil, ErrChecksum
	}
	return string(k), b, nil
}

// firstErr returns the reader's sticky error if set, else fallback.
func firstErr(r *Reader, fallback error) error {
	if r.err != nil {
		return r.err
	}
	return fallback
}

// firstOf returns a when cond holds, else b.
func firstOf(a, b error, cond bool) error {
	if cond {
		return a
	}
	return b
}
