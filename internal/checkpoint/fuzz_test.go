package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode fuzzes the snapshot envelope decoder with
// arbitrary bytes: it must never panic, and anything it accepts must
// be a canonically encoded snapshot — re-encoding the decoded (key,
// body) reproduces the input byte for byte, so no malformed or
// tampered input can validate (the checksum makes forging one
// computationally infeasible for the fuzzer).
func FuzzSnapshotDecode(f *testing.F) {
	valid := Encode("abc123", []byte("snapshot body"))
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("ICKP"))
	f.Add([]byte("not a snapshot at all"))
	corrupt := bytes.Clone(valid)
	corrupt[9] ^= 0x10
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		key, body, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(key, body), data) {
			t.Fatalf("accepted non-canonical input: key=%q len(body)=%d", key, len(body))
		}
	})
}
