package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xab)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I64(-42)
	w.Int(1 << 20)
	w.Raw([]byte{1, 2, 3})
	w.Raw(nil)
	w.String("hello")
	w.Fixed([]byte{9, 8, 7, 6})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 1<<20 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Raw(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", got)
	}
	if got := r.Raw(); len(got) != 0 {
		t.Errorf("empty Raw = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Fixed(4); !bytes.Equal(got, []byte{9, 8, 7, 6}) {
		t.Errorf("Fixed = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Errorf("clean read errored: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left over", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if r.U32(); r.Err() == nil {
		t.Fatal("short U32 must error")
	}
	// Every later read stays failed and returns zero values.
	if got := r.U64(); got != 0 || r.Err() == nil {
		t.Error("sticky error cleared")
	}
}

func TestReaderStrictBool(t *testing.T) {
	r := NewReader([]byte{2})
	if r.Bool(); r.Err() == nil {
		t.Error("Bool must reject bytes other than 0/1")
	}
}

func TestReaderCountBound(t *testing.T) {
	// A claimed element count larger than the remaining bytes could
	// support must fail before any allocation.
	var w Writer
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Errorf("Count accepted impossible length: n=%d err=%v", n, r.Err())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	key := "00ff12abcd"
	body := []byte("snapshot body bytes")
	data := Encode(key, body)
	gotKey, gotBody, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key || !bytes.Equal(gotBody, body) {
		t.Errorf("round trip: key=%q body=%q", gotKey, gotBody)
	}
}

func TestDecodeRejectsEveryByteFlip(t *testing.T) {
	data := Encode("abc123", []byte("payload"))
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		if _, _, err := Decode(mut); err == nil {
			t.Errorf("flip at byte %d validated", i)
		}
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	data := Encode("abc123", []byte("payload"))
	for n := 0; n < len(data); n++ {
		if _, _, err := Decode(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes validated", n)
		}
	}
	if _, _, err := Decode(append(bytes.Clone(data), 0)); err == nil {
		t.Error("trailing garbage validated")
	}
}

// patchVersion rewrites the format-version field and fixes the
// checksum so only the version check can reject the result.
func patchVersion(data []byte, v uint32) []byte {
	out := bytes.Clone(data)
	binary.LittleEndian.PutUint32(out[4:], v)
	sum := sha256.Sum256(out[:len(out)-sha256.Size])
	copy(out[len(out)-sha256.Size:], sum[:])
	return out
}

func TestDecodeVersionMismatch(t *testing.T) {
	data := patchVersion(Encode("abc123", []byte("payload")), FormatVersion+1)
	if _, _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestStoreWriteLoadRemove(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "deadbeef"
	if err := s.Write(key, []byte("state")); err != nil {
		t.Fatal(err)
	}
	body, ok := s.Load(key)
	if !ok || string(body) != "state" {
		t.Fatalf("Load = %q, %v", body, ok)
	}
	if got := s.Keys(); len(got) != 1 || got[0] != key {
		t.Errorf("Keys = %v", got)
	}
	// Overwrite replaces atomically.
	if err := s.Write(key, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if body, _ := s.Load(key); string(body) != "newer" {
		t.Errorf("after overwrite Load = %q", body)
	}
	s.Remove(key)
	if _, ok := s.Load(key); ok {
		t.Error("Load found a removed snapshot")
	}
	if s.Stats.Removed.Value() != 1 {
		t.Errorf("Removed = %d", s.Stats.Removed.Value())
	}
	s.Remove(key) // double remove must not double count
	if s.Stats.Removed.Value() != 1 {
		t.Errorf("double Remove counted twice")
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "UPPER", "has/slash", "..", "xyz", "0g"} {
		if err := s.Write(key, []byte("x")); err == nil {
			t.Errorf("Write accepted key %q", key)
		}
		if _, ok := s.Load(key); ok {
			t.Errorf("Load accepted key %q", key)
		}
	}
}

func TestOpenScrubsBadFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write("aaaa", []byte("good")); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("bbbb.ckpt.tmp", []byte("orphaned temp"))
	write("stray123.tmp", []byte("CreateTemp orphan without the .ckpt extension"))
	write("cccc.ckpt", []byte("garbage, not a snapshot"))
	write("dddd.ckpt", patchVersion(Encode("dddd", []byte("old")), FormatVersion+7))
	write("eeee.ckpt", Encode("ffff", []byte("misfiled"))) // key != filename
	write("notes.txt", []byte("unrelated file, left alone"))

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Keys(); len(got) != 1 || got[0] != "aaaa" {
		t.Errorf("surviving keys = %v, want [aaaa]", got)
	}
	if body, ok := s2.Load("aaaa"); !ok || string(body) != "good" {
		t.Errorf("valid snapshot lost in scrub: %q %v", body, ok)
	}
	if n := s2.Stats.Scrubbed.Value(); n != 2 { // .ckpt.tmp + bare .tmp
		t.Errorf("Scrubbed = %d, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "stray123.tmp")); !os.IsNotExist(err) {
		t.Error("bare *.tmp orphan survived the scrub")
	}
	if n := s2.Stats.Corrupt.Value(); n != 2 { // garbage + misfiled
		t.Errorf("Corrupt = %d, want 2", n)
	}
	if n := s2.Stats.VersionMismatch.Value(); n != 1 {
		t.Errorf("VersionMismatch = %d, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Error("scrub touched an unrelated file")
	}
}

func TestLoadDropsCorruptedFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write("abcd", []byte("state")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file in place after the (clean) Open validation.
	path := filepath.Join(dir, "abcd.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("abcd"); ok {
		t.Fatal("Load validated a corrupted snapshot")
	}
	if s.Stats.Corrupt.Value() != 1 {
		t.Errorf("Corrupt = %d, want 1", s.Stats.Corrupt.Value())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted snapshot not deleted")
	}
}
