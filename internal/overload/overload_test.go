package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitQueued polls until the gate's queue holds want waiters (the
// enqueue happens on another goroutine, so the test must observe it
// before adding the next waiter).
func waitQueued(t *testing.T, g *Gate, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Queued() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", want, g.Queued())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGateFIFOAdmission pins queue fairness: waiters enqueued in a
// known order are granted the slot in exactly that order.
func TestGateFIFOAdmission(t *testing.T) {
	g := NewGate(1, 8, time.Second)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const waiters = 5
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			g.Release()
		}(i)
		// Only spawn the next waiter once this one is visibly queued,
		// so the enqueue order is the loop order.
		waitQueued(t, g, int64(i+1))
	}
	g.Release()
	wg.Wait()

	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v is not FIFO", order)
		}
	}
	if g.MaxQueued() != waiters {
		t.Errorf("MaxQueued = %d, want %d", g.MaxQueued(), waiters)
	}
	if g.MaxInFlight() != 1 {
		t.Errorf("MaxInFlight = %d, want 1", g.MaxInFlight())
	}
}

// TestGateSheds pins the load-shedding contract: with the semaphore
// and the queue both full, Acquire fails immediately with a typed
// *ShedError carrying the retry hint.
func TestGateSheds(t *testing.T) {
	g := NewGate(1, 1, 7*time.Second)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- g.Acquire(context.Background()) }()
	waitQueued(t, g, 1)

	start := time.Now()
	err := g.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want *ShedError, got %v", err)
	}
	if shed.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", shed.RetryAfter)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("shed took %v, want immediate", d)
	}
	if g.Shed() != 1 {
		t.Errorf("Shed = %d, want 1", g.Shed())
	}

	g.Release() // hands the slot to the queued waiter
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.Release()
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
}

// TestGateCanceledWaiter pins that a waiter abandoning the queue
// leaves the gate consistent: the slot is not leaked and later
// waiters still get it.
func TestGateCanceledWaiter(t *testing.T) {
	g := NewGate(1, 4, time.Second)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	canceled := make(chan error, 1)
	go func() { canceled <- g.Acquire(ctx) }()
	waitQueued(t, g, 1)
	cancel()
	if err := <-canceled; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v", err)
	}
	if g.Queued() != 0 {
		t.Fatalf("abandoned waiter still queued: %d", g.Queued())
	}
	g.Release()
	// Full capacity is available again.
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("gate leaked its slot: %v", err)
	}
	g.Release()
}

// TestGateConcurrentHammer drives the gate from many goroutines under
// the race detector and checks the capacity invariant via the
// high-water mark.
func TestGateConcurrentHammer(t *testing.T) {
	const capacity, depth, goroutines = 3, 4, 32
	g := NewGate(capacity, depth, time.Second)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := g.Acquire(context.Background()); err != nil {
					var shed *ShedError
					if !errors.As(err, &shed) {
						t.Errorf("unexpected acquire error: %v", err)
					}
					continue
				}
				g.Release()
			}
		}()
	}
	wg.Wait()
	if g.MaxInFlight() > capacity {
		t.Fatalf("capacity violated: max in flight %d > %d", g.MaxInFlight(), capacity)
	}
	if g.MaxQueued() > depth {
		t.Fatalf("queue bound violated: max queued %d > %d", g.MaxQueued(), depth)
	}
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
}
