package overload

// State-machine tests for the per-workload circuit breaker. The clock
// is injected, so every cooldown transition is driven by advancing a
// variable — no time.Sleep polling anywhere.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testClock is an injectable clock for breaker tests.
type testClock struct{ now time.Time }

func newTestClock() *testClock               { return &testClock{now: time.Unix(1_000_000, 0)} }
func (c *testClock) Now() time.Time          { return c.now }
func (c *testClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

var errSim = errors.New("injected simulator fault")

// openBreaker drives key's breaker to open with threshold failures.
func openBreaker(t *testing.T, s *BreakerSet, key string, threshold int) {
	t.Helper()
	for i := 0; i < threshold; i++ {
		if err := s.Allow(key); err != nil {
			t.Fatalf("failure %d rejected early: %v", i, err)
		}
		s.Record(key, errSim)
	}
	if err := s.Allow(key); err == nil {
		t.Fatalf("breaker not open after %d failures", threshold)
	}
}

func TestBreakerClosedToOpen(t *testing.T) {
	clock := newTestClock()
	s := NewBreakerSet(3, time.Minute, clock.Now)

	// Two failures: still closed.
	for i := 0; i < 2; i++ {
		if err := s.Allow("lisp"); err != nil {
			t.Fatal(err)
		}
		s.Record("lisp", errSim)
	}
	if err := s.Allow("lisp"); err != nil {
		t.Fatalf("breaker opened below threshold: %v", err)
	}
	if s.OpenCount() != 0 {
		t.Fatalf("OpenCount = %d before threshold", s.OpenCount())
	}

	// Third consecutive failure opens it.
	s.Record("lisp", errSim)
	err := s.Allow("lisp")
	var open *BreakerOpenError
	if !errors.As(err, &open) {
		t.Fatalf("want *BreakerOpenError, got %v", err)
	}
	if open.Workload != "lisp" || open.LastFailure != errSim.Error() {
		t.Errorf("error detail wrong: %+v", open)
	}
	if open.RetryAfter != time.Minute {
		t.Errorf("RetryAfter = %v, want full cooldown", open.RetryAfter)
	}
	if s.OpenCount() != 1 {
		t.Errorf("OpenCount = %d, want 1", s.OpenCount())
	}
	if got := s.Open(); len(got) != 1 || got[0] != "lisp" {
		t.Errorf("Open() = %v", got)
	}

	// Other keys are unaffected.
	if err := s.Allow("goban"); err != nil {
		t.Fatalf("healthy workload rejected: %v", err)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clock := newTestClock()
	s := NewBreakerSet(3, time.Minute, clock.Now)
	s.Record("lisp", errSim)
	s.Record("lisp", errSim)
	s.Record("lisp", nil) // success wipes the streak
	s.Record("lisp", errSim)
	s.Record("lisp", errSim)
	if err := s.Allow("lisp"); err != nil {
		t.Fatalf("streak survived a success: %v", err)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clock := newTestClock()
	s := NewBreakerSet(2, time.Minute, clock.Now)
	openBreaker(t, s, "lisp", 2)

	// Mid-cooldown: rejected, RetryAfter counts down.
	clock.Advance(45 * time.Second)
	var open *BreakerOpenError
	if err := s.Allow("lisp"); !errors.As(err, &open) {
		t.Fatalf("want rejection mid-cooldown, got %v", err)
	} else if open.RetryAfter != 15*time.Second {
		t.Errorf("RetryAfter = %v, want 15s", open.RetryAfter)
	}

	// Cooldown elapsed: exactly one probe is admitted; a concurrent
	// second request is rejected while the probe is unresolved.
	clock.Advance(16 * time.Second)
	if err := s.Allow("lisp"); err != nil {
		t.Fatalf("probe rejected after cooldown: %v", err)
	}
	if err := s.Allow("lisp"); err == nil {
		t.Fatal("second probe admitted while the first is in flight")
	}
	if s.OpenCount() != 1 {
		t.Errorf("half-open breaker not counted: %d", s.OpenCount())
	}

	// Probe succeeds: closed, gauge drops, traffic flows.
	s.Record("lisp", nil)
	if s.OpenCount() != 0 {
		t.Errorf("OpenCount = %d after probe success", s.OpenCount())
	}
	if err := s.Allow("lisp"); err != nil {
		t.Fatalf("closed breaker rejecting: %v", err)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newTestClock()
	s := NewBreakerSet(2, time.Minute, clock.Now)
	openBreaker(t, s, "lisp", 2)

	clock.Advance(time.Minute)
	if err := s.Allow("lisp"); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	s.Record("lisp", fmt.Errorf("still broken"))

	// Reopened with a fresh cooldown: rejected now and just before the
	// new cooldown expires, probing again after it.
	var open *BreakerOpenError
	if err := s.Allow("lisp"); !errors.As(err, &open) {
		t.Fatalf("want reopened breaker, got %v", err)
	} else if open.LastFailure != "still broken" {
		t.Errorf("LastFailure = %q", open.LastFailure)
	}
	clock.Advance(59 * time.Second)
	if err := s.Allow("lisp"); err == nil {
		t.Fatal("cooldown not refreshed by the failed probe")
	}
	clock.Advance(2 * time.Second)
	if err := s.Allow("lisp"); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
}

// TestBreakerInconclusiveProbe pins the shed/cancel semantics: a probe
// that never ran (its slot was shed, or the client disconnected)
// reverts to open without refreshing the cooldown, so the next request
// probes again immediately instead of waiting another full cooldown —
// and without counting as a failure.
func TestBreakerInconclusiveProbe(t *testing.T) {
	clock := newTestClock()
	s := NewBreakerSet(2, time.Minute, clock.Now)
	openBreaker(t, s, "lisp", 2)

	clock.Advance(time.Minute)
	for _, inconclusive := range []error{
		context.Canceled,
		fmt.Errorf("request: %w", context.Canceled),
		&ShedError{RetryAfter: time.Second},
	} {
		if err := s.Allow("lisp"); err != nil {
			t.Fatalf("probe rejected: %v", err)
		}
		s.Record("lisp", inconclusive)
	}
	// Still probing — the inconclusive outcomes neither closed nor
	// re-cooled the breaker.
	if err := s.Allow("lisp"); err != nil {
		t.Fatalf("probe not re-admitted after inconclusive outcome: %v", err)
	}
	s.Record("lisp", nil)
	if s.OpenCount() != 0 {
		t.Errorf("OpenCount = %d after recovery", s.OpenCount())
	}
}

// TestBreakerCancellationIgnoredWhileClosed pins that client
// disconnects never open a breaker.
func TestBreakerCancellationIgnoredWhileClosed(t *testing.T) {
	s := NewBreakerSet(1, time.Minute, newTestClock().Now)
	for i := 0; i < 10; i++ {
		s.Record("goban", context.Canceled)
	}
	if err := s.Allow("goban"); err != nil {
		t.Fatalf("cancellations opened the breaker: %v", err)
	}
}

// TestBreakerDeadlineCountsAsFailure pins that timeouts (the PR 3
// typed cause surfaced as context.DeadlineExceeded) do trip the
// breaker.
func TestBreakerDeadlineCountsAsFailure(t *testing.T) {
	s := NewBreakerSet(2, time.Minute, newTestClock().Now)
	s.Record("odb", context.DeadlineExceeded)
	s.Record("odb", fmt.Errorf("run: %w", context.DeadlineExceeded))
	if err := s.Allow("odb"); err == nil {
		t.Fatal("deadline failures did not open the breaker")
	}
}

// TestBreakerHalfOpenConcurrentProbes pins the half-open admission
// contract under contention: when the cooldown elapses and a stampede
// of callers races Allow, exactly one becomes the probe and everyone
// else is rejected fast. When that probe fails, the breaker re-opens
// for a fresh cooldown without admitting any of the stragglers — a
// failed probe burns one simulation slot, never one per waiter.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	clock := newTestClock()
	s := NewBreakerSet(2, time.Minute, clock.Now)
	openBreaker(t, s, "lzw", 2)
	clock.Advance(time.Minute)

	const racers = 32
	probe := func() int {
		var (
			start    = make(chan struct{})
			wg       sync.WaitGroup
			admitted atomic.Int64
		)
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if s.Allow("lzw") == nil {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		return int(admitted.Load())
	}

	if got := probe(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}

	// Probe fails: straight back to open with a fresh cooldown. None of
	// the waiters slip through, even just before the cooldown edge.
	s.Record("lzw", errSim)
	if got := probe(); got != 0 {
		t.Fatalf("failed probe left %d slots open during cooldown, want 0", got)
	}
	clock.Advance(time.Minute - time.Nanosecond)
	if got := probe(); got != 0 {
		t.Fatalf("%d probes admitted before the fresh cooldown elapsed, want 0", got)
	}

	// Fresh cooldown over: again exactly one probe, and its success
	// closes the breaker for everyone.
	clock.Advance(time.Nanosecond)
	if got := probe(); got != 1 {
		t.Fatalf("re-probe admitted %d, want exactly 1", got)
	}
	s.Record("lzw", nil)
	if err := s.Allow("lzw"); err != nil {
		t.Fatalf("breaker still open after successful probe: %v", err)
	}
	if s.OpenCount() != 0 {
		t.Errorf("OpenCount = %d after recovery", s.OpenCount())
	}
}
