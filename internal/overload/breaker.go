package overload

// The circuit breaker exists because this workload population fails
// deterministically: a simulation that faults, panics, or times out
// will do it again on the next request (runs are pure functions of
// their inputs — the property the result cache is built on). Retrying
// such a workload burns a simulation slot per request and starves the
// healthy ones, so after threshold consecutive failures the breaker
// opens and requests fail fast (or are served stale by the caller)
// until a cooldown elapses and a single half-open probe is let
// through. The failure taxonomy reuses the run path's typed causes
// (core.PanicError / WatchdogError / TimeoutError and context
// deadlines); a client cancel is evidence of nothing and is ignored.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// BreakerOpenError reports a request rejected fast because the
// workload's circuit breaker is open. Servers map it to HTTP 503 (or a
// stale response) with RetryAfter as the back-off hint.
type BreakerOpenError struct {
	// Workload is the breaker key.
	Workload string
	// RetryAfter is the time until the next half-open probe is allowed
	// (clamped to at least one second as a client hint).
	RetryAfter time.Duration
	// LastFailure is the most recent failure's message.
	LastFailure string
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("overload: circuit breaker open for %s (last failure: %s), retry after %v",
		e.Workload, e.LastFailure, e.RetryAfter)
}

// breaker states. A breaker is born closed, opens after threshold
// consecutive failures, transitions to half-open when a cooldown
// elapses (admitting exactly one probe), and closes again on the first
// success.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// breaker is one key's state. Guarded by BreakerSet.mu.
type breaker struct {
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	lastErr  string
}

// BreakerSet is a collection of per-key circuit breakers. The zero
// value is not usable; construct with NewBreakerSet. All methods are
// safe for concurrent use.
type BreakerSet struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu   sync.Mutex
	m    map[string]*breaker
	open int // breakers not in stateClosed
}

// NewBreakerSet builds a breaker set opening after threshold
// consecutive failures (< 1 is clamped to 1) and probing after
// cooldown. now overrides the clock (nil = time.Now); tests inject it
// so cooldown transitions need no sleeping.
func NewBreakerSet(threshold int, cooldown time.Duration, now func() time.Time) *BreakerSet {
	if threshold < 1 {
		threshold = 1
	}
	if now == nil {
		now = time.Now
	}
	return &BreakerSet{threshold: threshold, cooldown: cooldown, now: now, m: make(map[string]*breaker)}
}

// Allow reports whether a computation for key may start. It returns
// nil for a closed breaker, nil for the single half-open probe after
// the cooldown, and a *BreakerOpenError otherwise. A caller that gets
// nil must follow up with Record so probes resolve.
func (s *BreakerSet) Allow(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[key]
	if b == nil || b.state == stateClosed {
		return nil
	}
	if b.state == stateOpen {
		if elapsed := s.now().Sub(b.openedAt); elapsed >= s.cooldown {
			// Cooldown over: this caller becomes the half-open probe.
			b.state = stateHalfOpen
			return nil
		}
		return s.rejectLocked(key, b, s.cooldown-s.now().Sub(b.openedAt))
	}
	// Half-open with the probe still in flight: reject until it
	// resolves.
	return s.rejectLocked(key, b, s.cooldown)
}

// rejectLocked builds the open-breaker error. Caller holds s.mu.
func (s *BreakerSet) rejectLocked(key string, b *breaker, retryAfter time.Duration) error {
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	return &BreakerOpenError{Workload: key, RetryAfter: retryAfter, LastFailure: b.lastErr}
}

// Record feeds a computation's outcome back into key's breaker:
//
//   - nil closes the breaker and resets the failure streak;
//   - a cancellation or a *ShedError is evidence of nothing — it only
//     reverts a pending half-open probe to open (without refreshing the
//     cooldown, so the next request probes again immediately);
//   - anything else is a failure: it extends the streak, opens the
//     breaker at threshold, and re-opens a failed half-open probe with
//     a fresh cooldown.
func (s *BreakerSet) Record(key string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[key]
	if err == nil {
		if b != nil {
			if b.state != stateClosed {
				s.open--
			}
			delete(s.m, key)
		}
		return
	}
	var shed *ShedError
	if errors.Is(err, context.Canceled) || errors.As(err, &shed) {
		if b != nil && b.state == stateHalfOpen {
			b.state = stateOpen // probe never ran; keep the old cooldown
		}
		return
	}
	if b == nil {
		b = &breaker{}
		s.m[key] = b
	}
	b.lastErr = err.Error()
	switch b.state {
	case stateHalfOpen:
		// The probe itself failed: back to open for a full cooldown.
		b.state = stateOpen
		b.openedAt = s.now()
		b.failures++
	case stateOpen:
		// A straggler admitted before the breaker opened; note it.
		b.failures++
	case stateClosed:
		b.failures++
		if b.failures >= s.threshold {
			b.state = stateOpen
			b.openedAt = s.now()
			s.open++
		}
	}
}

// OpenCount returns how many breakers are currently open or half-open.
// The serving readiness state machine reports "degraded" while this is
// nonzero.
func (s *BreakerSet) OpenCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.open)
}

// Open returns the name-sorted keys of every open or half-open
// breaker (for /healthz and /metrics detail).
func (s *BreakerSet) Open() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for key, b := range s.m {
		if b.state != stateClosed {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
