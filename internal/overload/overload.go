// Package overload is the admission-control layer for the serving
// stack: a bounded simulation semaphore with a short FIFO wait queue
// (Gate) and a per-workload circuit breaker (BreakerSet). Both exist
// to make the daemon degrade gracefully instead of collapsing — a
// burst of cold requests is shed with a typed error the server maps to
// HTTP 503 + Retry-After, and a workload that deterministically faults
// stops burning simulation slots after a few consecutive failures.
// See DESIGN.md §13.
package overload

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// ShedError reports a request turned away by admission control: the
// simulation semaphore was full and so was its wait queue. Servers map
// it to HTTP 503 with RetryAfter as the Retry-After hint.
type ShedError struct {
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: admission queue full, retry after %v", e.RetryAfter)
}

// Gate is a bounded simulation semaphore with a FIFO wait queue. Up to
// capacity callers hold a slot concurrently; up to queueDepth more
// wait in arrival order; everyone past that is shed immediately with a
// *ShedError. The zero value is not usable; construct with NewGate.
// All methods are safe for concurrent use.
type Gate struct {
	capacity   int
	queueDepth int
	retryAfter time.Duration

	mu          sync.Mutex
	inUse       int
	queue       []*waiter // FIFO: queue[0] is admitted next
	shed        uint64
	maxInFlight int
	maxQueued   int
}

// waiter is one queued Acquire. granted is set (under Gate.mu) when a
// released slot is handed to the waiter; ready is closed at the same
// moment.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// NewGate builds a gate admitting capacity concurrent holders (< 1 is
// clamped to 1) with queueDepth waiters (< 0 is clamped to 0) and
// retryAfter as the back-off hint carried by shed errors.
func NewGate(capacity, queueDepth int, retryAfter time.Duration) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Gate{capacity: capacity, queueDepth: queueDepth, retryAfter: retryAfter}
}

// Acquire takes a slot, waiting in FIFO order behind earlier callers.
// It returns nil when the slot is held (pair with Release), a
// *ShedError immediately when both the semaphore and the queue are
// full, or the context's cause when ctx ends while waiting.
func (g *Gate) Acquire(ctx context.Context) error {
	g.mu.Lock()
	// Fast path: a free slot and nobody queued ahead of us.
	if g.inUse < g.capacity && len(g.queue) == 0 {
		g.inUse++
		if g.inUse > g.maxInFlight {
			g.maxInFlight = g.inUse
		}
		g.mu.Unlock()
		return nil
	}
	if len(g.queue) >= g.queueDepth {
		g.shed++
		g.mu.Unlock()
		return &ShedError{RetryAfter: g.retryAfter}
	}
	w := &waiter{ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	if len(g.queue) > g.maxQueued {
		g.maxQueued = len(g.queue)
	}
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The slot was handed to us as ctx ended: pass it on so it
			// is not leaked.
			g.releaseLocked()
		} else {
			for i, q := range g.queue {
				if q == w {
					g.queue = append(g.queue[:i], g.queue[i+1:]...)
					break
				}
			}
		}
		g.mu.Unlock()
		if c := context.Cause(ctx); c != nil {
			return c
		}
		return ctx.Err()
	}
}

// Release returns a slot, handing it to the oldest queued waiter when
// one exists.
func (g *Gate) Release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

// releaseLocked transfers the slot to the queue head or frees it.
// Abandoned waiters remove themselves under g.mu, so any waiter still
// queued here is live. Caller holds g.mu.
func (g *Gate) releaseLocked() {
	if len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		w.granted = true
		close(w.ready)
		return // slot transferred, inUse unchanged
	}
	g.inUse--
}

// InFlight returns the number of slots currently held.
func (g *Gate) InFlight() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(g.inUse)
}

// Queued returns the number of callers waiting for a slot.
func (g *Gate) Queued() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(len(g.queue))
}

// Shed returns how many Acquire calls were turned away.
func (g *Gate) Shed() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.shed
}

// MaxInFlight returns the high-water mark of concurrently held slots.
func (g *Gate) MaxInFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.maxInFlight
}

// MaxQueued returns the high-water mark of the wait queue.
func (g *Gate) MaxQueued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.maxQueued
}
