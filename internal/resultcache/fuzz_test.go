package resultcache

import (
	"testing"

	"repro/internal/core"
)

// FuzzFingerprint fuzzes the cache-key canonicalizer over arbitrary
// workload/source/Config inputs, pinning the two properties content
// addressing needs: configs with equal measured behavior get equal
// keys (determinism plus default normalization), and changing any
// measurement-affecting input changes the key.
func FuzzFingerprint(f *testing.F) {
	f.Add("goban", "int main() { return 0; }", uint64(100_000), uint64(500_000), 0, 0, 0, 0, 1, uint8(0))
	f.Add("lzw", "", uint64(0), uint64(0), 2000, 8192, 4, 8192, 0, uint8(0x3f))
	f.Add("x", "y", ^uint64(0), uint64(1), -3, -1, 17, 1, -9, uint8(0b101010))
	f.Fuzz(func(t *testing.T, workload, source string, skip, measure uint64,
		instances, reuseEntries, reuseAssoc, vpredEntries, variant int, disables uint8) {
		cfg := core.Config{
			SkipInstructions:    skip,
			MeasureInstructions: measure,
			MaxInstances:        instances,
			ReuseEntries:        reuseEntries,
			ReuseAssoc:          reuseAssoc,
			VPredEntries:        vpredEntries,
			InputVariant:        variant,
			DisableTaint:        disables&1 != 0,
			DisableLocal:        disables&2 != 0,
			DisableFunc:         disables&4 != 0,
			DisableReuse:        disables&8 != 0,
			DisableVPred:        disables&16 != 0,
			DisableVProf:        disables&32 != 0,
		}
		key := Fingerprint(workload, source, cfg)
		if len(key) != 64 {
			t.Fatalf("key is not hex sha256: %q", key)
		}
		if Fingerprint(workload, source, cfg) != key {
			t.Fatal("fingerprint is not deterministic")
		}

		// Equal canonical configs => equal keys: writing each resolved
		// default explicitly must not move the key.
		explicit := cfg
		if explicit.MaxInstances <= 0 {
			explicit.MaxInstances = 2000
		}
		if explicit.ReuseEntries == 0 {
			explicit.ReuseEntries = 8192
		}
		if explicit.ReuseAssoc == 0 {
			explicit.ReuseAssoc = 4
		}
		if explicit.VPredEntries == 0 {
			explicit.VPredEntries = 8192
		}
		if explicit.InputVariant <= 0 {
			explicit.InputVariant = 1
		}
		if Fingerprint(workload, source, explicit) != key {
			t.Fatalf("default normalization broken:\n cfg      %+v\n explicit %+v", cfg, explicit)
		}

		// Field change => key change. Mutate each field past its
		// canonical value so the mutation is canonical-visible.
		distinct := map[string]string{"base": key}
		check := func(name string, c core.Config, w, s string) {
			k := Fingerprint(w, s, c)
			if prev, dup := distinct[k]; dup {
				t.Fatalf("mutation %q collides with %q", name, prev)
			}
			distinct[k] = name
		}
		mut := explicit // start from canonical values so +1 always changes them
		mut.SkipInstructions++
		check("skip", mut, workload, source)
		mut = explicit
		mut.MeasureInstructions++
		check("measure", mut, workload, source)
		mut = explicit
		mut.MaxInstances++
		check("instances", mut, workload, source)
		mut = explicit
		mut.ReuseEntries++
		check("reuse-entries", mut, workload, source)
		mut = explicit
		mut.ReuseAssoc++
		check("reuse-assoc", mut, workload, source)
		mut = explicit
		mut.VPredEntries++
		check("vpred-entries", mut, workload, source)
		mut = explicit
		mut.InputVariant++
		check("variant", mut, workload, source)
		for bit := 0; bit < 6; bit++ {
			mut = explicit
			switch bit {
			case 0:
				mut.DisableTaint = !mut.DisableTaint
			case 1:
				mut.DisableLocal = !mut.DisableLocal
			case 2:
				mut.DisableFunc = !mut.DisableFunc
			case 3:
				mut.DisableReuse = !mut.DisableReuse
			case 4:
				mut.DisableVPred = !mut.DisableVPred
			case 5:
				mut.DisableVProf = !mut.DisableVProf
			}
			check("disable-bit", mut, workload, source)
		}
		check("workload", explicit, workload+"x", source)
		check("source", explicit, workload, source+"x")
	})
}
