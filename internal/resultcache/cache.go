package resultcache

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultMaxEntries is the in-memory LRU capacity when New is given a
// non-positive size. A canonical quick-window report is tens of
// kilobytes, so the default keeps the full workload set plus ablations
// resident in a few megabytes.
const DefaultMaxEntries = 64

// Stats are the cache's observability counters. All fields are safe
// for concurrent use; snapshot them with Cache.StatValues.
type Stats struct {
	Hits          obs.Counter // served from the in-memory tier
	DiskHits      obs.Counter // served from the on-disk tier
	Misses        obs.Counter // led to a simulation
	DedupWaits    obs.Counter // requests that piggybacked on an in-flight computation
	Stores        obs.Counter // reports written into the cache
	Evictions     obs.Counter // LRU evictions from the memory tier
	DiskEvictions obs.Counter // LRU evictions from the disk tier (capacity bound)
	Corrupt       obs.Counter // unreadable disk entries dropped (recompute followed)
	TmpOrphans    obs.Counter // orphaned temp files removed by the startup scrub
	DiskErrors    obs.Counter // disk-tier write failures (entry kept in memory only)
	Uncacheable   obs.Counter // computed reports not stored (truncated/partial)
	InflightRuns  obs.Gauge   // simulations currently running on behalf of the cache
}

// Options configures a Cache beyond New's positional parameters.
type Options struct {
	// MaxEntries is the in-memory LRU capacity in reports (<= 0 =
	// DefaultMaxEntries).
	MaxEntries int
	// Dir enables the disk tier under this directory ("" = memory
	// only; created if missing).
	Dir string
	// MaxDiskBytes bounds the disk tier's total entry bytes (<= 0 =
	// unbounded). Past the bound the least-recently-used entries are
	// deleted from disk; the newest entry is always kept even when it
	// alone exceeds the bound.
	MaxDiskBytes int64
}

// Cache is a content-addressed store of canonical report JSON with an
// in-memory LRU tier and an optional disk tier. The zero value is not
// usable; construct with New or NewWith. All methods are safe for
// concurrent use.
type Cache struct {
	maxEntries   int
	dir          string // "" = memory only
	maxDiskBytes int64

	mu     sync.Mutex
	lru    *list.List               // front = most recently used; values are *cacheEntry
	byKey  map[string]*list.Element //
	flight map[string]*call         // in-flight computations, by key

	disk diskIndex

	Stats Stats
}

// cacheEntry is one memory-tier slot: the key and the canonical JSON.
type cacheEntry struct {
	key  string
	data []byte
}

// call is one in-flight computation; followers block on done and then
// read rep/err. rep is shared between the leader and all followers, so
// cached reports must be treated as read-only by callers.
type call struct {
	done chan struct{}
	rep  *core.Report
	err  error
}

// New creates a cache holding up to maxEntries reports in memory
// (<= 0 selects DefaultMaxEntries) and, when dir is non-empty,
// persisting entries under dir (created if missing).
func New(maxEntries int, dir string) (*Cache, error) {
	return NewWith(Options{MaxEntries: maxEntries, Dir: dir})
}

// NewWith is New with the full option set. Opening a disk-backed
// cache scrubs the directory first: orphaned temp files left by a
// crash mid-write are deleted (counted in Stats.TmpOrphans), every
// entry is re-verified against the canonical round-trip property
// (invalid ones deleted, counted in Stats.Corrupt), and the byte
// bound is enforced before the first request.
func NewWith(o Options) (*Cache, error) {
	if o.MaxEntries <= 0 {
		o.MaxEntries = DefaultMaxEntries
	}
	c := &Cache{
		maxEntries:   o.MaxEntries,
		dir:          o.Dir,
		maxDiskBytes: o.MaxDiskBytes,
		lru:          list.New(),
		byKey:        make(map[string]*list.Element),
		flight:       make(map[string]*call),
	}
	if err := c.initDisk(); err != nil {
		return nil, err
	}
	return c, nil
}

// Len returns the number of entries in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// GetOrCompute returns the report stored under key, computing and
// storing it with compute on a miss. Concurrent calls for the same
// cold key are deduplicated: exactly one runs compute, the rest wait
// and share its result (so returned reports must be treated as
// read-only). Reports served from the cache carry no RunMetrics (the
// canonical form strips them); the call that actually computed keeps
// its metrics intact.
//
// A computed report is stored only when compute succeeds and the
// report is complete: truncated partial reports pass through to the
// caller without poisoning the cache. If the computing call is
// canceled by its own context, waiting callers whose contexts are
// still live retry (leading to a fresh computation) instead of
// inheriting the foreign cancellation.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func(context.Context) (*core.Report, error)) (*core.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		c.mu.Lock()
		if data, ok := c.getMemLocked(key); ok {
			c.mu.Unlock()
			c.Stats.Hits.Inc()
			obs.SpanFrom(ctx).SetAttr("cache_tier", "memory")
			return decodeReport(data)
		}
		if cl, ok := c.flight[key]; ok {
			c.mu.Unlock()
			c.Stats.DedupWaits.Inc()
			obs.SpanFrom(ctx).SetAttr("cache_tier", "dedup")
			rep, err, retry := c.wait(ctx, cl)
			if retry {
				continue
			}
			return rep, err
		}
		cl := &call{done: make(chan struct{})}
		c.flight[key] = cl
		c.mu.Unlock()

		rep, err := c.lead(ctx, key, compute)
		cl.rep, cl.err = rep, err
		c.mu.Lock()
		delete(c.flight, key)
		c.mu.Unlock()
		close(cl.done)
		return rep, err
	}
}

// lead performs the slow path on behalf of every request for key: a
// disk probe first, then the actual computation.
func (c *Cache) lead(ctx context.Context, key string, compute func(context.Context) (*core.Report, error)) (*core.Report, error) {
	if data, ok := c.diskGet(key); ok {
		if rep, err := decodeReport(data); err == nil {
			c.Stats.DiskHits.Inc()
			obs.SpanFrom(ctx).SetAttr("cache_tier", "disk")
			c.putMem(key, data)
			return rep, nil
		}
	}
	c.Stats.Misses.Inc()
	obs.SpanFrom(ctx).SetAttr("cache_tier", "miss")
	c.Stats.InflightRuns.Add(1)
	rep, err := compute(ctx)
	c.Stats.InflightRuns.Add(-1)
	if err != nil || rep == nil {
		return rep, err
	}
	if rep.Truncated {
		c.Stats.Uncacheable.Inc()
		return rep, nil
	}
	data, merr := core.CanonicalJSON(rep)
	if merr != nil {
		// Unserializable reports are served but not stored.
		c.Stats.Uncacheable.Inc()
		return rep, nil
	}
	write, _ := obs.StartSpanCtx(ctx, "cache.write")
	c.putMem(key, data)
	c.diskPut(key, data)
	write.End()
	c.Stats.Stores.Inc()
	return rep, nil
}

// wait blocks until the in-flight call finishes or ctx ends. retry is
// true when the leader was canceled by its own context while ours is
// still live: the caller should restart the lookup.
func (c *Cache) wait(ctx context.Context, cl *call) (rep *core.Report, err error, retry bool) {
	select {
	case <-ctx.Done():
		return nil, context.Cause(ctx), false
	case <-cl.done:
	}
	if cl.err != nil {
		if ctx.Err() == nil &&
			(errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, context.DeadlineExceeded)) {
			return nil, nil, true
		}
		return nil, cl.err, false
	}
	return cl.rep, nil, false
}

// getMemLocked returns the memory-tier entry and marks it recently
// used. Caller holds c.mu.
func (c *Cache) getMemLocked(key string) ([]byte, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// putMem inserts (or refreshes) a memory-tier entry, evicting from the
// LRU tail past capacity.
func (c *Cache) putMem(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, data: data})
	for c.lru.Len() > c.maxEntries {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
		c.Stats.Evictions.Inc()
	}
}

// decodeReport parses canonical JSON back into a Report.
func decodeReport(data []byte) (*core.Report, error) {
	var r core.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// StatValues snapshots every cache counter (plus the current memory
// entry count), name-sorted, for the server's /metrics document.
func (c *Cache) StatValues() []obs.NamedValue {
	bytes, entries := c.DiskUsage()
	return []obs.NamedValue{
		{Name: "corrupt_disk_entries", Value: int64(c.Stats.Corrupt.Value())},
		{Name: "dedup_waits", Value: int64(c.Stats.DedupWaits.Value())},
		{Name: "disk_bytes", Value: bytes},
		{Name: "disk_entries", Value: int64(entries)},
		{Name: "disk_errors", Value: int64(c.Stats.DiskErrors.Value())},
		{Name: "disk_evictions", Value: int64(c.Stats.DiskEvictions.Value())},
		{Name: "disk_hits", Value: int64(c.Stats.DiskHits.Value())},
		{Name: "entries", Value: int64(c.Len())},
		{Name: "evictions", Value: int64(c.Stats.Evictions.Value())},
		{Name: "hits", Value: int64(c.Stats.Hits.Value())},
		{Name: "inflight_runs", Value: c.Stats.InflightRuns.Value()},
		{Name: "misses", Value: int64(c.Stats.Misses.Value())},
		{Name: "stores", Value: int64(c.Stats.Stores.Value())},
		{Name: "tmp_orphans_removed", Value: int64(c.Stats.TmpOrphans.Value())},
		{Name: "uncacheable", Value: int64(c.Stats.Uncacheable.Value())},
	}
}
