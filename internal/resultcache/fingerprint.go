// Package resultcache is a content-addressed cache of measurement
// reports. Runs are fully deterministic — the same (workload source,
// input variant, measurement Config, simulator version) always yields
// the same canonical Report — so a report can be keyed by a
// fingerprint of its inputs and reused instead of re-simulated: the
// paper's reuse-of-results idea applied at whole-run grain.
//
// The cache has an in-memory LRU tier and an optional on-disk tier
// (atomic write-rename, corruption-tolerant reads that fall back to
// recompute), with singleflight deduplication so concurrent requests
// for the same cold key trigger exactly one simulation. See
// DESIGN.md §12.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
)

// Fingerprint computes the content-address of a run: a hex SHA-256
// over the workload name, its source text, the measurement-affecting
// Config fields (canonicalized by core.Config.MeasurementKey, so
// Configs that select the same sizes via 0-defaults share a key), and
// core.MeasurementVersion (so any semantic change to the simulator or
// analyses invalidates every cached result).
func Fingerprint(workload, source string, cfg core.Config) string {
	src := sha256.Sum256([]byte(source))
	h := sha256.New()
	fmt.Fprintf(h, "instrep-report|v=%d|workload=%s|src=%x|%s",
		core.MeasurementVersion, workload, src, cfg.MeasurementKey())
	return hex.EncodeToString(h.Sum(nil))
}

// Cacheable reports whether cfg produces cacheable runs. Fault
// injection makes a run's outcome depend on the plan, which is not
// part of the fingerprint, so faulty configs always recompute.
// (Timeout and watchdog settings are allowed: a run they cut short is
// Truncated, and truncated reports are never stored.)
func Cacheable(cfg core.Config) bool {
	return cfg.Faults == nil
}
