package resultcache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeReport builds a small but non-trivial complete report.
func fakeReport(name string, n uint64) *core.Report {
	return &core.Report{
		Benchmark:            name,
		DynTotal:             n,
		MeasuredInstructions: n,
		DynRepeatedPct:       42.5,
	}
}

// countingCompute returns a compute func that counts invocations.
func countingCompute(name string, count *atomic.Int64) func(context.Context) (*core.Report, error) {
	return func(context.Context) (*core.Report, error) {
		count.Add(1)
		return fakeReport(name, 1000), nil
	}
}

func mustCache(t *testing.T, entries int, dir string) *Cache {
	t.Helper()
	c, err := New(entries, dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMemoryHitMiss(t *testing.T) {
	c := mustCache(t, 0, "")
	var computes atomic.Int64
	ctx := context.Background()
	r1, err := c.GetOrCompute(ctx, "k1", countingCompute("w", &computes))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.GetOrCompute(ctx, "k1", countingCompute("w", &computes))
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatalf("want 1 compute, got %d", computes.Load())
	}
	if r1.Benchmark != "w" || r2.Benchmark != "w" || r2.DynTotal != r1.DynTotal {
		t.Fatalf("cached report differs: %+v vs %+v", r1, r2)
	}
	if h, m := c.Stats.Hits.Value(), c.Stats.Misses.Value(); h != 1 || m != 1 {
		t.Fatalf("want hits=1 misses=1, got hits=%d misses=%d", h, m)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustCache(t, 2, "")
	var computes atomic.Int64
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if _, err := c.GetOrCompute(ctx, k, countingCompute(k, &computes)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("want 2 resident entries, got %d", c.Len())
	}
	if ev := c.Stats.Evictions.Value(); ev != 1 {
		t.Fatalf("want 1 eviction, got %d", ev)
	}
	// "a" was evicted (LRU tail); refetching it recomputes and in turn
	// evicts "b", leaving {a, c} resident.
	if _, err := c.GetOrCompute(ctx, "a", countingCompute("a", &computes)); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 4 {
		t.Fatalf("evicted key should recompute: want 4 computes, got %d", computes.Load())
	}
	if _, err := c.GetOrCompute(ctx, "c", countingCompute("c", &computes)); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 4 {
		t.Fatalf("recently used key should hit: want 4 computes, got %d", computes.Load())
	}
}

func TestDiskTierPersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	var computes atomic.Int64
	ctx := context.Background()

	c1 := mustCache(t, 0, dir)
	if _, err := c1.GetOrCompute(ctx, "k", countingCompute("w", &computes)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(c1.diskPath("k")); err != nil {
		t.Fatalf("disk entry missing after store: %v", err)
	}

	// A fresh cache (cold memory tier) over the same directory serves
	// from disk without recomputing.
	c2 := mustCache(t, 0, dir)
	r, err := c2.GetOrCompute(ctx, "k", countingCompute("w", &computes))
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatalf("disk hit should not recompute: %d computes", computes.Load())
	}
	if c2.Stats.DiskHits.Value() != 1 {
		t.Fatalf("want 1 disk hit, got %d", c2.Stats.DiskHits.Value())
	}
	if r.Benchmark != "w" {
		t.Fatalf("disk-served report corrupted: %+v", r)
	}
	// And the entry is now promoted to memory.
	if _, err := c2.GetOrCompute(ctx, "k", countingCompute("w", &computes)); err != nil {
		t.Fatal(err)
	}
	if c2.Stats.Hits.Value() != 1 {
		t.Fatalf("promoted entry should hit memory, hits=%d", c2.Stats.Hits.Value())
	}
}

func TestCorruptDiskEntryFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	for name, garbage := range map[string][]byte{
		"unparseable":   []byte("{not json"),
		"truncated":     []byte(`{"Benchmark": "w",`),
		"non-canonical": []byte("{}"),
		"trailing-junk": []byte("{}\nextra bytes"),
		"empty":         nil,
	} {
		t.Run(name, func(t *testing.T) {
			c := mustCache(t, 0, dir)
			key := "k-" + name
			if err := os.WriteFile(c.diskPath(key), garbage, 0o644); err != nil {
				t.Fatal(err)
			}
			var computes atomic.Int64
			r, err := c.GetOrCompute(ctx, key, countingCompute("w", &computes))
			if err != nil {
				t.Fatal(err)
			}
			if computes.Load() != 1 {
				t.Fatalf("corrupt entry must recompute, got %d computes", computes.Load())
			}
			if c.Stats.Corrupt.Value() != 1 {
				t.Fatalf("want corrupt counter 1, got %d", c.Stats.Corrupt.Value())
			}
			if r.Benchmark != "w" {
				t.Fatalf("recomputed report wrong: %+v", r)
			}
			// The slot healed: the rewritten entry is valid on disk.
			data, rerr := os.ReadFile(c.diskPath(key))
			if rerr != nil {
				t.Fatalf("entry not rewritten: %v", rerr)
			}
			if !validCanonical(data) {
				t.Fatal("rewritten entry is not canonical")
			}
		})
	}
}

func TestTruncatedReportNotStored(t *testing.T) {
	c := mustCache(t, 0, t.TempDir())
	ctx := context.Background()
	var computes atomic.Int64
	truncated := func(context.Context) (*core.Report, error) {
		computes.Add(1)
		r := fakeReport("w", 10)
		r.Truncated = true
		r.TruncatedReason = core.ReasonTimeout
		return r, nil
	}
	r, err := c.GetOrCompute(ctx, "k", truncated)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Truncated {
		t.Fatal("truncated report should pass through to the caller")
	}
	if _, err := c.GetOrCompute(ctx, "k", truncated); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 2 {
		t.Fatalf("truncated reports must not be cached: want 2 computes, got %d", computes.Load())
	}
	if c.Stats.Uncacheable.Value() != 2 || c.Stats.Stores.Value() != 0 {
		t.Fatalf("want uncacheable=2 stores=0, got uncacheable=%d stores=%d",
			c.Stats.Uncacheable.Value(), c.Stats.Stores.Value())
	}
	if _, err := os.Stat(c.diskPath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("truncated report leaked onto disk")
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	c := mustCache(t, 0, "")
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	_, err := c.GetOrCompute(ctx, "k", func(context.Context) (*core.Report, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return fakeReport("w", 1), nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if _, err := c.GetOrCompute(ctx, "k", func(context.Context) (*core.Report, error) {
		calls++
		return fakeReport("w", 1), nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("error must not be cached: want 2 calls, got %d", calls)
	}
}

// TestSingleflight pins the exactly-one-computation contract: N
// concurrent requests for one cold key run compute once and share the
// result. Run under -race via the Makefile race target.
func TestSingleflight(t *testing.T) {
	c := mustCache(t, 0, "")
	const n = 16
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) (*core.Report, error) {
		computes.Add(1)
		close(started)
		<-release
		return fakeReport("w", 77), nil
	}

	var wg sync.WaitGroup
	results := make([]*core.Report, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.GetOrCompute(context.Background(), "k", compute)
		}(i)
	}
	<-started
	// Let the followers pile up on the in-flight call, then release.
	for c.Stats.DedupWaits.Value() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if computes.Load() != 1 {
		t.Fatalf("want exactly 1 compute, got %d", computes.Load())
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if results[i].DynTotal != 77 {
			t.Fatalf("request %d got wrong report: %+v", i, results[i])
		}
	}
	if dw := c.Stats.DedupWaits.Value(); dw != n-1 {
		t.Fatalf("want %d dedup waits, got %d", n-1, dw)
	}
}

// TestFollowerRetriesWhenLeaderCanceled pins that a waiter with a live
// context does not inherit the leader's cancellation: it restarts the
// lookup and computes fresh.
func TestFollowerRetriesWhenLeaderCanceled(t *testing.T) {
	c := mustCache(t, 0, "")
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	var computes atomic.Int64
	compute := func(ctx context.Context) (*core.Report, error) {
		if computes.Add(1) == 1 {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return fakeReport("w", 5), nil
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrCompute(leaderCtx, "k", compute)
		leaderErr <- err
	}()
	<-started
	followerDone := make(chan error, 1)
	go func() {
		r, err := c.GetOrCompute(context.Background(), "k", compute)
		if err == nil && r.DynTotal != 5 {
			err = fmt.Errorf("wrong report: %+v", r)
		}
		followerDone <- err
	}()
	// Wait until the follower has joined the in-flight call, then
	// cancel the leader out from under it.
	for c.Stats.DedupWaits.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader should see its own cancellation, got %v", err)
	}
	if err := <-followerDone; err != nil {
		t.Fatalf("follower should retry and succeed, got %v", err)
	}
	if computes.Load() != 2 {
		t.Fatalf("want 2 computes (canceled + retry), got %d", computes.Load())
	}
}

// TestWaiterHonorsOwnCancel pins that a waiter stops waiting when its
// own context ends, even while the leader is still computing.
func TestWaiterHonorsOwnCancel(t *testing.T) {
	c := mustCache(t, 0, "")
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	compute := func(context.Context) (*core.Report, error) {
		close(started)
		<-release
		return fakeReport("w", 1), nil
	}
	go c.GetOrCompute(context.Background(), "k", compute)
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.GetOrCompute(ctx, "k", compute)
		done <- err
	}()
	for c.Stats.DedupWaits.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
}

func TestStatValuesSorted(t *testing.T) {
	c := mustCache(t, 0, "")
	vals := c.StatValues()
	if len(vals) == 0 {
		t.Fatal("no stat values")
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1].Name >= vals[i].Name {
			t.Fatalf("stat values not name-sorted: %q >= %q", vals[i-1].Name, vals[i].Name)
		}
	}
}

func TestDiskPathWritableOnlyWithDir(t *testing.T) {
	c := mustCache(t, 0, "")
	// Memory-only cache: disk helpers are no-ops.
	c.diskPut("k", []byte("{}"))
	if _, ok := c.diskGet("k"); ok {
		t.Fatal("memory-only cache should never report disk hits")
	}
	if filepath.Dir(mustCache(t, 0, t.TempDir()).diskPath("abc")) == "" {
		t.Fatal("disk path should live under the cache dir")
	}
}
