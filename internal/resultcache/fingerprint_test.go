package resultcache

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

func TestFingerprintShapeAndStability(t *testing.T) {
	cfg := core.Config{SkipInstructions: 100, MeasureInstructions: 500}
	k1 := Fingerprint("goban", "int main() { return 0; }", cfg)
	k2 := Fingerprint("goban", "int main() { return 0; }", cfg)
	if k1 != k2 {
		t.Fatalf("fingerprint not deterministic: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("fingerprint should be hex sha256 (64 chars), got %d: %s", len(k1), k1)
	}
	for _, c := range k1 {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Fatalf("fingerprint has non-hex char %q: %s", c, k1)
		}
	}
}

// TestFingerprintSensitivity pins that every input that can change the
// measured report changes the key.
func TestFingerprintSensitivity(t *testing.T) {
	base := core.Config{SkipInstructions: 100, MeasureInstructions: 500}
	baseKey := Fingerprint("goban", "src", base)
	mutations := map[string]func() string{
		"workload": func() string { return Fingerprint("lzw", "src", base) },
		"source":   func() string { return Fingerprint("goban", "src2", base) },
		"skip": func() string {
			c := base
			c.SkipInstructions++
			return Fingerprint("goban", "src", c)
		},
		"measure": func() string {
			c := base
			c.MeasureInstructions++
			return Fingerprint("goban", "src", c)
		},
		"instances": func() string {
			c := base
			c.MaxInstances = 2001
			return Fingerprint("goban", "src", c)
		},
		"reuse-entries": func() string {
			c := base
			c.ReuseEntries = 4096
			return Fingerprint("goban", "src", c)
		},
		"reuse-assoc": func() string {
			c := base
			c.ReuseAssoc = 8
			return Fingerprint("goban", "src", c)
		},
		"vpred-entries": func() string {
			c := base
			c.VPredEntries = 16384
			return Fingerprint("goban", "src", c)
		},
		"input-variant": func() string {
			c := base
			c.InputVariant = 2
			return Fingerprint("goban", "src", c)
		},
		"disable-taint": func() string {
			c := base
			c.DisableTaint = true
			return Fingerprint("goban", "src", c)
		},
		"disable-local": func() string {
			c := base
			c.DisableLocal = true
			return Fingerprint("goban", "src", c)
		},
		"disable-func": func() string {
			c := base
			c.DisableFunc = true
			return Fingerprint("goban", "src", c)
		},
		"disable-reuse": func() string {
			c := base
			c.DisableReuse = true
			return Fingerprint("goban", "src", c)
		},
		"disable-vpred": func() string {
			c := base
			c.DisableVPred = true
			return Fingerprint("goban", "src", c)
		},
		"disable-vprof": func() string {
			c := base
			c.DisableVProf = true
			return Fingerprint("goban", "src", c)
		},
	}
	seen := map[string]string{baseKey: "base"}
	for name, mutate := range mutations {
		k := mutate()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// TestFingerprintNormalization pins that zero-value defaults and the
// explicit sizes they select share a key, and that execution-shaping
// fields are excluded.
func TestFingerprintNormalization(t *testing.T) {
	zero := core.Config{SkipInstructions: 100, MeasureInstructions: 500}
	explicit := zero
	explicit.MaxInstances = 2000
	explicit.ReuseEntries = 8192
	explicit.ReuseAssoc = 4
	explicit.VPredEntries = 8192
	explicit.InputVariant = 1
	if Fingerprint("w", "s", zero) != Fingerprint("w", "s", explicit) {
		t.Error("zero-value defaults should fingerprint like their explicit sizes")
	}

	exec := zero
	exec.Parallel = 7
	exec.Timeout = time.Minute
	exec.WatchdogInterval = time.Second
	exec.ObserverSampleEvery = 17
	exec.Progress = func(core.Progress) {}
	if Fingerprint("w", "s", zero) != Fingerprint("w", "s", exec) {
		t.Error("execution-only fields must not change the fingerprint")
	}
}

func TestCacheable(t *testing.T) {
	if !Cacheable(core.Config{Timeout: time.Second}) {
		t.Error("plain configs should be cacheable (timeouts only truncate, and truncated reports are not stored)")
	}
	if Cacheable(core.Config{Faults: faultinject.NewPlan()}) {
		t.Error("fault-injected configs must bypass the cache")
	}
}
