package resultcache

// The disk tier stores one file per key, <dir>/<fingerprint>.json,
// holding exactly the canonical report JSON. Writes go through a temp
// file in the same directory followed by an atomic rename, so readers
// never observe a half-written entry; reads validate that the bytes
// decode and re-encode to themselves (the canonical round-trip
// property) and drop anything that does not — a corrupt or truncated
// entry costs one recompute, never a wrong answer.

import (
	"bytes"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// initDisk prepares the disk tier directory (no-op when disabled).
func (c *Cache) initDisk() error {
	if c.dir == "" {
		return nil
	}
	return os.MkdirAll(c.dir, 0o755)
}

// diskPath is the entry file for a key. Keys are hex fingerprints, so
// they are safe as file names.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// diskGet reads and validates the disk entry for key. Invalid entries
// are removed so the slot heals on the next store.
func (c *Cache) diskGet(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.diskPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if !validCanonical(data) {
		c.Stats.Corrupt.Inc()
		os.Remove(path)
		return nil, false
	}
	return data, true
}

// validCanonical reports whether data is a canonical report
// serialization: it decodes as a Report and re-encodes to the same
// bytes. Trailing garbage, truncation, bit rot, or a schema change
// since the entry was written all fail the round trip.
func validCanonical(data []byte) bool {
	rep, err := decodeReport(data)
	if err != nil {
		return false
	}
	out, err := core.CanonicalJSON(rep)
	if err != nil {
		return false
	}
	return bytes.Equal(out, data)
}

// diskPut writes an entry atomically: temp file in the cache
// directory, then rename over the final path. Failures are counted
// and swallowed — the disk tier is an accelerator, not a source of
// truth, and the entry stays served from memory.
func (c *Cache) diskPut(key string, data []byte) {
	if c.dir == "" {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*.partial")
	if err != nil {
		c.Stats.DiskErrors.Inc()
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		c.Stats.DiskErrors.Inc()
		return
	}
	if err := os.Rename(tmpName, c.diskPath(key)); err != nil {
		os.Remove(tmpName)
		c.Stats.DiskErrors.Inc()
	}
}
