package resultcache

// The disk tier stores one file per key, <dir>/<fingerprint>.json,
// holding exactly the canonical report JSON. Writes go through a temp
// file in the same directory followed by an atomic rename, so readers
// never observe a half-written entry; reads validate that the bytes
// decode and re-encode to themselves (the canonical round-trip
// property) and drop anything that does not — a corrupt or truncated
// entry costs one recompute, never a wrong answer.
//
// Crash safety is handled at startup: opening a cache scrubs its
// directory, deleting the orphaned temp files a crash mid-write
// leaves behind (they would otherwise accumulate forever) and
// re-verifying every entry so the first request after a crash never
// pays a corruption detour. The scrub also seeds the disk LRU index:
// the tier is capacity-bounded (Options.MaxDiskBytes) and evicts the
// least-recently-used entry files once the bound is exceeded, so a
// long-lived daemon cannot fill the disk.

import (
	"bytes"
	"container/list"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// tmpPattern is the os.CreateTemp pattern for in-progress writes; the
// scrub deletes anything matching it.
const (
	tmpPrefix = "tmp-"
	tmpSuffix = ".partial"
)

// diskIndex tracks the disk tier's entries in recency order so the
// byte bound can evict the least-recently-used file. It is guarded by
// its own mutex: disk I/O must not serialize behind the memory tier's
// lock.
type diskIndex struct {
	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *diskEntry
	byKey map[string]*list.Element
	bytes int64
}

// diskEntry is one on-disk entry's index record.
type diskEntry struct {
	key  string
	size int64
}

// initDisk prepares the disk tier: directory creation, the crash
// scrub, index construction, and the initial capacity enforcement.
// No-op when the tier is disabled.
func (c *Cache) initDisk() error {
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	c.disk.lru = list.New()
	c.disk.byKey = make(map[string]*list.Element)
	names, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	type scanned struct {
		key  string
		size int64
		mod  int64
	}
	var valid []scanned
	for _, e := range names {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(c.dir, name)
		switch {
		case strings.HasPrefix(name, tmpPrefix) && strings.HasSuffix(name, tmpSuffix),
			strings.HasSuffix(name, ".tmp"):
			// A crash between CreateTemp and Rename orphaned this file.
			// Our own pattern is tmp-*.partial, but generic *.tmp names
			// (other tools' atomic-write convention in a shared dir)
			// are the same in-progress garbage and scrub identically.
			os.Remove(path)
			c.Stats.TmpOrphans.Inc()
		case strings.HasSuffix(name, ".json"):
			data, err := os.ReadFile(path)
			if err != nil || !validCanonical(data) {
				os.Remove(path)
				c.Stats.Corrupt.Inc()
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			valid = append(valid, scanned{
				key:  strings.TrimSuffix(name, ".json"),
				size: int64(len(data)),
				mod:  info.ModTime().UnixNano(),
			})
		}
	}
	// Rebuild recency from file modification times: oldest written
	// lands at the LRU tail and is evicted first.
	sort.Slice(valid, func(i, j int) bool { return valid[i].mod < valid[j].mod })
	c.disk.mu.Lock()
	for _, v := range valid {
		c.disk.byKey[v.key] = c.disk.lru.PushFront(&diskEntry{key: v.key, size: v.size})
		c.disk.bytes += v.size
	}
	c.evictDiskLocked()
	c.disk.mu.Unlock()
	return nil
}

// diskPath is the entry file for a key. Keys are hex fingerprints, so
// they are safe as file names.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// diskGet reads and validates the disk entry for key. Invalid entries
// are removed so the slot heals on the next store; valid reads touch
// the LRU index so hot entries survive the byte bound.
func (c *Cache) diskGet(key string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.diskPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if !validCanonical(data) {
		c.Stats.Corrupt.Inc()
		os.Remove(path)
		c.diskForget(key)
		return nil, false
	}
	c.diskTouch(key, int64(len(data)))
	return data, true
}

// validCanonical reports whether data is a canonical report
// serialization: it decodes as a Report and re-encodes to the same
// bytes. Trailing garbage, truncation, bit rot, or a schema change
// since the entry was written all fail the round trip.
func validCanonical(data []byte) bool {
	rep, err := decodeReport(data)
	if err != nil {
		return false
	}
	out, err := core.CanonicalJSON(rep)
	if err != nil {
		return false
	}
	return bytes.Equal(out, data)
}

// diskPut writes an entry atomically: temp file in the cache
// directory, then rename over the final path. Failures are counted
// and swallowed — the disk tier is an accelerator, not a source of
// truth, and the entry stays served from memory. A successful write
// updates the LRU index and may evict older entries past the byte
// bound.
func (c *Cache) diskPut(key string, data []byte) {
	if c.dir == "" {
		return
	}
	tmp, err := os.CreateTemp(c.dir, tmpPrefix+"*"+tmpSuffix)
	if err != nil {
		c.Stats.DiskErrors.Inc()
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		c.Stats.DiskErrors.Inc()
		return
	}
	if err := os.Rename(tmpName, c.diskPath(key)); err != nil {
		os.Remove(tmpName)
		c.Stats.DiskErrors.Inc()
		return
	}
	c.diskTouch(key, int64(len(data)))
}

// diskTouch marks key most recently used, inserting or resizing its
// index record, and enforces the byte bound.
func (c *Cache) diskTouch(key string, size int64) {
	c.disk.mu.Lock()
	defer c.disk.mu.Unlock()
	if el, ok := c.disk.byKey[key]; ok {
		de := el.Value.(*diskEntry)
		c.disk.bytes += size - de.size
		de.size = size
		c.disk.lru.MoveToFront(el)
	} else {
		c.disk.byKey[key] = c.disk.lru.PushFront(&diskEntry{key: key, size: size})
		c.disk.bytes += size
	}
	c.evictDiskLocked()
}

// diskForget drops key's index record (its file is already gone).
func (c *Cache) diskForget(key string) {
	c.disk.mu.Lock()
	defer c.disk.mu.Unlock()
	if el, ok := c.disk.byKey[key]; ok {
		c.disk.bytes -= el.Value.(*diskEntry).size
		c.disk.lru.Remove(el)
		delete(c.disk.byKey, key)
	}
}

// evictDiskLocked deletes least-recently-used entry files until the
// tier is back under its byte bound. The most recent entry is always
// kept: a single oversized report should be served from disk, not
// thrashed. Caller holds c.disk.mu.
func (c *Cache) evictDiskLocked() {
	if c.maxDiskBytes <= 0 {
		return
	}
	for c.disk.bytes > c.maxDiskBytes && c.disk.lru.Len() > 1 {
		el := c.disk.lru.Back()
		de := el.Value.(*diskEntry)
		os.Remove(c.diskPath(de.key))
		c.disk.lru.Remove(el)
		delete(c.disk.byKey, de.key)
		c.disk.bytes -= de.size
		c.Stats.DiskEvictions.Inc()
	}
}

// DiskUsage returns the disk tier's current total entry bytes and
// entry count (both zero when the tier is disabled).
func (c *Cache) DiskUsage() (bytes int64, entries int) {
	if c.dir == "" {
		return 0, 0
	}
	c.disk.mu.Lock()
	defer c.disk.mu.Unlock()
	return c.disk.bytes, c.disk.lru.Len()
}
