package resultcache

// Crash-recovery and capacity tests for the disk tier: the startup
// scrub (orphaned temp files, invalid entries) and the byte-bounded
// disk LRU.

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// canonicalFor builds the canonical JSON bytes of a minimal report.
func canonicalFor(t *testing.T, benchmark string) []byte {
	t.Helper()
	data, err := core.CanonicalJSON(&core.Report{Benchmark: benchmark, DynTotal: 42})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// storeKey computes-and-stores a fixed report under key.
func storeKey(t *testing.T, c *Cache, key, benchmark string) {
	t.Helper()
	_, err := c.GetOrCompute(context.Background(), key, func(context.Context) (*core.Report, error) {
		return &core.Report{Benchmark: benchmark, DynTotal: 42}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func dirFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// TestStartupScrub pins crash recovery: orphaned temp files are
// deleted and counted, invalid entries are deleted and counted, and
// valid entries survive into the index.
func TestStartupScrub(t *testing.T) {
	dir := t.TempDir()
	valid := canonicalFor(t, "goban")
	writes := map[string][]byte{
		"aaaa.json":        valid,                         // survives
		"bbbb.json":        []byte(`{"Benchmark":"trunc`), // corrupt: deleted
		"cccc.json":        append(valid, '\n', '\n'),     // trailing garbage: deleted
		"tmp-123.partial":  []byte("half-written"),        // crash orphan: deleted
		"tmp-zzzz.partial": nil,                           // empty crash orphan: deleted
		"stray.tmp":        []byte("foreign temp write"),  // generic *.tmp orphan: deleted
		"README":           []byte("not a cache entry"),   // foreign file: left alone
	}
	for name, data := range writes {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats.TmpOrphans.Value(); got != 3 {
		t.Errorf("TmpOrphans = %d, want 3", got)
	}
	if got := c.Stats.Corrupt.Value(); got != 2 {
		t.Errorf("Corrupt = %d, want 2", got)
	}
	bytes, entries := c.DiskUsage()
	if entries != 1 || bytes != int64(len(valid)) {
		t.Errorf("DiskUsage = (%d, %d), want (%d, 1)", bytes, entries, len(valid))
	}
	files := dirFiles(t, dir)
	want := map[string]bool{"aaaa.json": true, "README": true}
	if len(files) != 2 {
		t.Fatalf("scrub left %v, want exactly %v", files, want)
	}
	for _, f := range files {
		if !want[f] {
			t.Errorf("scrub left unexpected file %s", f)
		}
	}

	// The surviving entry is servable without recomputation.
	rep, err := c.GetOrCompute(context.Background(), "aaaa", func(context.Context) (*core.Report, error) {
		t.Fatal("scrubbed-valid entry recomputed")
		return nil, nil
	})
	if err != nil || rep.Benchmark != "goban" {
		t.Fatalf("scrubbed entry unreadable: %v %v", rep, err)
	}
	if c.Stats.DiskHits.Value() != 1 {
		t.Errorf("DiskHits = %d, want 1", c.Stats.DiskHits.Value())
	}
}

// TestDiskByteBoundEviction pins the disk capacity bound: storing past
// MaxDiskBytes evicts the least-recently-used entry files, a diskGet
// touch protects an entry from eviction, and the index stays
// consistent with the directory.
func TestDiskByteBoundEviction(t *testing.T) {
	dir := t.TempDir()
	entrySize := int64(len(canonicalFor(t, "w")))
	// Memory tier of 1 forces reads of older keys through the disk
	// tier (so recency touches are observable); room for 3 entries on
	// disk.
	c, err := NewWith(Options{MaxEntries: 1, Dir: dir, MaxDiskBytes: 3 * entrySize})
	if err != nil {
		t.Fatal(err)
	}

	storeKey(t, c, "k1", "w")
	storeKey(t, c, "k2", "w")
	storeKey(t, c, "k3", "w")
	if _, entries := c.DiskUsage(); entries != 3 {
		t.Fatalf("disk entries = %d, want 3", entries)
	}

	// Touch k1 via a disk hit (memory only holds k3), then store k4:
	// the LRU victim must be k2, not the freshly touched k1.
	if _, err := c.GetOrCompute(context.Background(), "k1", func(context.Context) (*core.Report, error) {
		t.Fatal("k1 should be a disk hit")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	storeKey(t, c, "k4", "w")

	if got := c.Stats.DiskEvictions.Value(); got != 1 {
		t.Fatalf("DiskEvictions = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "k2.json")); !os.IsNotExist(err) {
		t.Error("k2 should have been evicted from disk")
	}
	for _, keep := range []string{"k1", "k3", "k4"} {
		if _, err := os.Stat(filepath.Join(dir, keep+".json")); err != nil {
			t.Errorf("%s missing from disk: %v", keep, err)
		}
	}
	bytes, entries := c.DiskUsage()
	if entries != 3 || bytes != 3*entrySize {
		t.Errorf("DiskUsage = (%d, %d), want (%d, 3)", bytes, entries, 3*entrySize)
	}

	// An evicted entry is a clean miss: it recomputes and re-enters.
	computed := false
	if _, err := c.GetOrCompute(context.Background(), "k2", func(context.Context) (*core.Report, error) {
		computed = true
		return &core.Report{Benchmark: "w", DynTotal: 42}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !computed {
		t.Fatal("evicted entry served without recompute")
	}
}

// TestDiskBoundAtStartup pins that the scrub enforces the byte bound
// on a pre-existing oversized directory, evicting oldest-first, and
// that a single oversized entry is kept rather than thrashed.
func TestDiskBoundAtStartup(t *testing.T) {
	dir := t.TempDir()
	big, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	entrySize := int64(len(canonicalFor(t, "w")))
	for _, k := range []string{"old1", "old2", "new1"} {
		storeKey(t, big, k, "w")
	}
	// Oldest-first eviction depends on distinct mtimes; force them.
	base := time.Now().Add(-time.Hour)
	for i, k := range []string{"old1", "old2", "new1"} {
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, k+".json"), ts, ts); err != nil {
			t.Fatal(err)
		}
	}

	c, err := NewWith(Options{Dir: dir, MaxDiskBytes: 2 * entrySize})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats.DiskEvictions.Value(); got != 1 {
		t.Fatalf("startup DiskEvictions = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "old1.json")); !os.IsNotExist(err) {
		t.Error("oldest entry should be the startup eviction victim")
	}

	// A bound smaller than one entry still keeps the newest entry.
	tiny, err := NewWith(Options{Dir: dir, MaxDiskBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, entries := tiny.DiskUsage(); entries != 1 {
		t.Fatalf("tiny bound kept %d entries, want exactly the newest", entries)
	}
	if _, err := os.Stat(filepath.Join(dir, "new1.json")); err != nil {
		t.Errorf("newest entry must survive an undersized bound: %v", err)
	}
}
