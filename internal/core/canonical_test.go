package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/reuse"
)

func TestMeasurementKeyNormalizesDefaults(t *testing.T) {
	zero := Config{SkipInstructions: 1, MeasureInstructions: 2}
	explicit := zero
	explicit.MaxInstances = 2000
	explicit.ReuseEntries = 8192
	explicit.ReuseAssoc = 4
	explicit.VPredEntries = 8192
	explicit.InputVariant = 1
	if zero.MeasurementKey() != explicit.MeasurementKey() {
		t.Errorf("defaults should normalize:\n zero     %s\n explicit %s",
			zero.MeasurementKey(), explicit.MeasurementKey())
	}
}

func TestMeasurementKeyExcludesExecutionFields(t *testing.T) {
	base := Config{SkipInstructions: 1, MeasureInstructions: 2}
	exec := base
	exec.Parallel = 3
	exec.Timeout = time.Minute
	exec.WatchdogInterval = time.Second
	exec.ObserverSampleEvery = 11
	exec.Progress = func(Progress) {}
	if base.MeasurementKey() != exec.MeasurementKey() {
		t.Error("execution-shaping fields must not enter the measurement key")
	}
}

func TestMeasurementKeyCoversMeasurementFields(t *testing.T) {
	base := Config{SkipInstructions: 1, MeasureInstructions: 2}
	muts := []func(*Config){
		func(c *Config) { c.SkipInstructions++ },
		func(c *Config) { c.MeasureInstructions++ },
		func(c *Config) { c.MaxInstances = 7 },
		func(c *Config) { c.ReuseEntries = 16 },
		func(c *Config) { c.ReuseAssoc = 2 },
		func(c *Config) { c.ReusePolicy = reuse.FIFO },
		func(c *Config) { c.ReusePolicy = reuse.Random },
		func(c *Config) { c.VPredEntries = 64 },
		func(c *Config) { c.InputVariant = 2 },
		func(c *Config) { c.DisableTaint = true },
		func(c *Config) { c.DisableLocal = true },
		func(c *Config) { c.DisableFunc = true },
		func(c *Config) { c.DisableReuse = true },
		func(c *Config) { c.DisableVPred = true },
		func(c *Config) { c.DisableVProf = true },
	}
	seen := map[string]int{base.MeasurementKey(): -1}
	for i, mutate := range muts {
		c := base
		mutate(&c)
		k := c.MeasurementKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %d collides with %d: %s", i, prev, k)
		}
		seen[k] = i
	}
}

func TestCanonicalJSONStripsMetricsAndRoundTrips(t *testing.T) {
	r := &Report{
		Benchmark:            "w",
		DynTotal:             123,
		MeasuredInstructions: 456,
		DynRepeatedPct:       87.25,
		Fig1Targets:          CoverageTargets,
		Fig1:                 []float64{1, 2, 3},
		Metrics:              &obs.RunMetrics{Benchmark: "w", RetireRateMIPS: 5.5},
	}
	data, err := CanonicalJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("canonical JSON should end with a newline")
	}
	if strings.Contains(string(data), "RunMetrics") {
		t.Error("canonical JSON must strip the wall-clock metrics document")
	}
	if r.Metrics == nil {
		t.Error("CanonicalJSON must not mutate the caller's report")
	}

	// Round trip: decode + re-encode reproduces the exact bytes (the
	// disk tier's corruption check relies on this).
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	again, err := CanonicalJSON(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("canonical JSON does not survive a decode/re-encode round trip")
	}
}
