package core

// RunRegistry: live introspection over in-flight simulations. Run
// registers its runState (the same atomics the watchdog reads) when
// Config.Runs is set, so the report server's GET /debug/runs and the
// CLI's -progress can list what is executing right now — workload,
// phase, retired instructions, and a phase-relative retire rate —
// without touching the run loop's hot path. See DESIGN.md §14.

import (
	"sort"
	"sync"
	"time"
)

// RunInfo is one in-flight run as seen by a RunRegistry snapshot.
type RunInfo struct {
	ID        uint64  `json:"id"`
	Benchmark string  `json:"benchmark"`
	TraceID   string  `json:"trace_id,omitempty"`
	Phase     string  `json:"phase"`
	Retired   uint64  `json:"retired"`
	PC        uint32  `json:"pc"`
	ElapsedNS int64   `json:"elapsed_ns"`
	Elapsed   string  `json:"elapsed"`
	MIPS      float64 `json:"mips"` // retire rate over the current phase
}

// RunRegistry tracks in-flight runs. Safe for concurrent use; the zero
// value is not ready — use NewRunRegistry.
type RunRegistry struct {
	mu   sync.Mutex
	seq  uint64
	runs map[uint64]*runState
}

// NewRunRegistry builds an empty registry.
func NewRunRegistry() *RunRegistry {
	return &RunRegistry{runs: make(map[uint64]*runState)}
}

// add registers a run and returns its registry ID.
func (r *RunRegistry) add(st *runState) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.runs[r.seq] = st
	return r.seq
}

// remove deregisters a finished run. A nil registry or unknown ID is a
// no-op.
func (r *RunRegistry) remove(id uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.runs, id)
	r.mu.Unlock()
}

// Len returns how many runs are in flight.
func (r *RunRegistry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.runs)
}

// Snapshot lists the in-flight runs, oldest first (registration
// order). The retire counts and MIPS are read from the runs' published
// checkpoints, so they trail the simulator by at most one progress
// chunk.
func (r *RunRegistry) Snapshot() []RunInfo {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	out := make([]RunInfo, 0, len(r.runs))
	for id, st := range r.runs {
		retired := st.retired.Load()
		elapsed := now.Sub(st.started)
		info := RunInfo{
			ID:        id,
			Benchmark: st.benchmark,
			TraceID:   st.traceID,
			Phase:     st.phaseName(),
			Retired:   retired,
			PC:        st.pc.Load(),
			ElapsedNS: elapsed.Nanoseconds(),
			Elapsed:   elapsed.Round(time.Millisecond).String(),
		}
		if phaseSecs := float64(now.UnixNano()-st.phaseStartNS.Load()) / 1e9; phaseSecs > 0 {
			info.MIPS = float64(retired-st.phaseBase.Load()) / phaseSecs / 1e6
		}
		out = append(out, info)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
