package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/workloads"
)

// BenchmarkObserverFloor decomposes simulation throughput layer by
// layer: the bare execution core (interpreted and block-translated,
// no pipeline — the isolated translation speedup), the pipeline with
// only the repetition census, and the full observer set. The spread
// between `core` and `all` is the cost of the statistics themselves,
// which no execution-loop optimization can remove; see DESIGN.md §15.
func BenchmarkObserverFloor(b *testing.B) {
	w, _ := workloads.ByName("odb")
	im, err := w.Image()
	if err != nil {
		b.Fatal(err)
	}
	input := w.Input(1)
	censusOnly := Config{DisableTaint: true, DisableLocal: true, DisableFunc: true,
		DisableReuse: true, DisableVPred: true, DisableVProf: true}
	for _, tc := range []struct {
		name        string
		pipeline    bool
		noTranslate bool
		cfg         Config
	}{
		{name: "core-interpreted", noTranslate: true},
		{name: "core-translated"},
		{name: "censusOnly", pipeline: true, cfg: censusOnly},
		{name: "all", pipeline: true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const window = 10_000_000
			for n := 0; n < b.N; n++ {
				m := cpu.New(im, input)
				m.NoTranslate = tc.noTranslate
				if tc.pipeline {
					p := NewPipeline(im, tc.cfg)
					m.Attach(p)
					p.SetCounting(true)
				}
				got, err := m.Run(window)
				if err != nil || got == 0 {
					b.Fatal(got, err)
				}
			}
			b.ReportMetric(float64(uint64(window)*uint64(b.N))/b.Elapsed().Seconds()/1e6, "MIPS")
		})
	}
}
