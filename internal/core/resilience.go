package core

// Resilience support for the run path: the cancel-cause plumbing that
// runPhase checks between chunks, the deadman watchdog that aborts a
// wedged run with a PC/phase diagnostic, the error taxonomy
// (timeout / watchdog / panic) that classifies truncated reports, and
// the panic-to-error conversion shared with repro's workload
// goroutines. See DESIGN.md §11.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TimeoutError reports a per-workload wall-clock timeout abort
// (Config.Timeout).
type TimeoutError struct {
	Benchmark string
	Limit     time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("%s: run exceeded timeout %v", e.Benchmark, e.Limit)
}

// WatchdogError reports a deadman-watchdog abort: the run loop
// published no retire progress for a full watchdog interval
// (Config.WatchdogInterval). Phase, retire count, and PC locate where
// the run wedged.
type WatchdogError struct {
	Benchmark string
	Phase     string
	Retired   uint64
	PC        uint32
	Stall     time.Duration

	// Last-checkpoint diagnostics, filled when the run wrote at least
	// one snapshot before wedging: a resume would restart there.
	LastCheckpointRetired uint64
	LastCheckpointAge     time.Duration
}

func (e *WatchdogError) Error() string {
	s := fmt.Sprintf("%s: watchdog: no retire progress for %v in %s phase (retired=%d, pc=0x%x)",
		e.Benchmark, e.Stall.Round(time.Millisecond), e.Phase, e.Retired, e.PC)
	if e.LastCheckpointAge > 0 || e.LastCheckpointRetired > 0 {
		s += fmt.Sprintf("; last checkpoint %v ago at retired=%d",
			e.LastCheckpointAge.Round(time.Millisecond), e.LastCheckpointRetired)
	}
	return s
}

// PanicError is a panic recovered from a workload run (simulator,
// observer, or compilation), converted into a per-workload error so
// one panicking workload fails one report instead of the process. The
// captured stack covers the panic site.
type PanicError struct {
	Benchmark string
	Value     any
	Stack     []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: recovered panic: %v\n%s", e.Benchmark, e.Value, e.Stack)
}

// NewPanicError wraps a recovered panic value. It must be called from
// inside the deferred function that recovered, so the captured stack
// still includes the panic site.
func NewPanicError(benchmark string, v any) *PanicError {
	return &PanicError{Benchmark: benchmark, Value: v, Stack: debug.Stack()}
}

// Truncation reasons recorded on partial reports.
const (
	ReasonCanceled = "canceled"
	ReasonTimeout  = "timeout"
	ReasonWatchdog = "watchdog"
	ReasonPanic    = "panic"
	ReasonFault    = "fault"
)

// TruncationReason classifies the error that cut a run short into one
// of the Reason* constants (Report.TruncatedReason).
func TruncationReason(err error) string {
	var pe *PanicError
	var we *WatchdogError
	var te *TimeoutError
	switch {
	case errors.As(err, &pe):
		return ReasonPanic
	case errors.As(err, &we):
		return ReasonWatchdog
	case errors.As(err, &te), errors.Is(err, context.DeadlineExceeded):
		return ReasonTimeout
	case errors.Is(err, context.Canceled):
		return ReasonCanceled
	default:
		return ReasonFault
	}
}

// recordTruncation bumps the run's health counters for one truncated
// run. Recovered panics are counted at their recovery site, not here,
// so a panic-truncated run is not double-counted.
func recordTruncation(h *obs.HealthCounters, reason string) {
	h.TruncatedRuns.Inc()
	switch reason {
	case ReasonCanceled:
		h.Cancels.Inc()
	case ReasonTimeout:
		h.Timeouts.Inc()
	case ReasonWatchdog:
		h.Watchdogs.Inc()
	}
}

// runState is the progress the run loop publishes: retire count and PC
// at the last checkpoint, plus the current phase and when it started —
// read by the watchdog (stall detection) and by RunRegistry snapshots
// (live introspection with a phase-relative retire rate). Checkpoints
// come from chunk boundaries in runPhase and, when the watchdog is
// armed, from the per-step publishing hook.
type runState struct {
	benchmark string
	traceID   string
	started   time.Time
	retired   atomic.Uint64
	pc        atomic.Uint32
	phase     atomic.Pointer[string]
	// Phase-relative baseline for the live MIPS estimate: the retire
	// count and wall clock at the last setPhase.
	phaseStartNS atomic.Int64 // UnixNano of phase start
	phaseBase    atomic.Uint64
	// Last snapshot written (retire count and UnixNano), published by
	// the checkpoint writer so watchdog diagnostics can say how much a
	// resume would recover. Zero until the first write.
	ckRetired atomic.Uint64
	ckAtNS    atomic.Int64
}

// publishCheckpoint records a completed snapshot write.
func (st *runState) publishCheckpoint(retired uint64) {
	st.ckRetired.Store(retired)
	st.ckAtNS.Store(time.Now().UnixNano())
}

func newRunState(benchmark string) *runState {
	st := &runState{benchmark: benchmark, started: time.Now()}
	st.setPhase("load")
	return st
}

func (st *runState) publish(retired uint64, pc uint32) {
	st.retired.Store(retired)
	st.pc.Store(pc)
}

func (st *runState) setPhase(phase string) {
	st.phase.Store(&phase)
	st.phaseBase.Store(st.retired.Load())
	st.phaseStartNS.Store(time.Now().UnixNano())
}

func (st *runState) phaseName() string {
	if p := st.phase.Load(); p != nil {
		return *p
	}
	return "?"
}

// publishEvery is the retire-count granularity of the per-step
// watchdog checkpoint hook (a power of two; the hook masks the count).
const publishEvery = 1024

// publishHook chains a progress-publishing step hook in front of prev
// so the watchdog sees retire progress at fine granularity even when
// a single runPhase chunk is slow.
func publishHook(st *runState, prev func(count uint64, pc uint32) error) func(count uint64, pc uint32) error {
	return func(count uint64, pc uint32) error {
		if count&(publishEvery-1) == 0 {
			st.publish(count, pc)
		}
		if prev != nil {
			return prev(count, pc)
		}
		return nil
	}
}

// watch starts the deadman watchdog: when the run loop publishes no
// retire progress for a full interval, it cancels the run with a
// *WatchdogError diagnosing where it wedged. The returned stop
// function terminates the watchdog goroutine; it is safe to call
// after the context already ended.
func watch(ctx context.Context, cancel context.CancelCauseFunc, st *runState, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	tick := interval / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	go func() {
		tk := time.NewTicker(tick)
		defer tk.Stop()
		last := st.retired.Load()
		lastChange := time.Now()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-tk.C:
				cur := st.retired.Load()
				if cur != last {
					last, lastChange = cur, time.Now()
					continue
				}
				if stall := time.Since(lastChange); stall >= interval {
					we := &WatchdogError{
						Benchmark: st.benchmark,
						Phase:     st.phaseName(),
						Retired:   cur,
						PC:        st.pc.Load(),
						Stall:     stall,
					}
					if at := st.ckAtNS.Load(); at != 0 {
						we.LastCheckpointRetired = st.ckRetired.Load()
						we.LastCheckpointAge = time.Since(time.Unix(0, at))
					}
					cancel(we)
					return
				}
			}
		}
	}()
	return func() { close(done) }
}

// cause returns the context's cancel cause (the watchdog/timeout
// error when one fired), falling back to the plain context error.
func cause(ctx context.Context) error {
	if c := context.Cause(ctx); c != nil {
		return c
	}
	return ctx.Err()
}
