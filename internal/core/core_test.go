package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/workloads"
)

func TestRunSmallProgram(t *testing.T) {
	im, err := minic.Compile(`
int table[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int lookup(int i) { return table[i & 15]; }
int main() {
	int sum;
	int i;
	int round;
	sum = 0;
	for (round = 0; round < 50; round++) {
		for (i = 0; i < 16; i++) {
			sum += lookup(i);
		}
	}
	return sum;
}`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Run(context.Background(), im, nil, "test", core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.ProgramExited {
		t.Error("program should have exited")
	}
	if r.ExitCode != 50*80 {
		t.Errorf("exit = %d, want %d", r.ExitCode, 50*80)
	}
	// The loop repeats identical work 50 times: repetition must be
	// high.
	if r.DynRepeatedPct < 80 {
		t.Errorf("repeated%% = %.1f, want > 80", r.DynRepeatedPct)
	}
	// All-argument repetition: lookup is called with the same 16
	// arguments every round.
	if r.Table4.AllArgsPct < 90 {
		t.Errorf("all-arg repetition = %.1f, want > 90", r.Table4.AllArgsPct)
	}
	if r.Table4.DynCalls == 0 || r.Table4.Funcs == 0 {
		t.Error("no calls observed")
	}
	// Static accounting.
	if r.StaticExecuted <= 0 || r.StaticExecuted > r.StaticTotal {
		t.Errorf("static executed %d of %d", r.StaticExecuted, r.StaticTotal)
	}
	// Coverage curves are monotone in [0, 100].
	prev := 0.0
	for i, v := range r.Fig1 {
		if v < prev-1e-9 || v > 100+1e-9 {
			t.Errorf("Fig1[%d] = %v not monotone in range", i, v)
		}
		prev = v
	}
	// Table 3 percentages sum to ~100.
	sum := 0.0
	for _, v := range r.Table3.OverallPct {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("Table3 overall sums to %v", sum)
	}
	// Tables 5 percentages sum to ~100.
	sum = 0
	for _, v := range r.Local.OverallPct {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("Table5 overall sums to %v", sum)
	}
	// Reuse buffer captures no more than the repetition census.
	if r.ReusePctAll > r.DynRepeatedPct+1e-9 {
		t.Errorf("reuse %% (%v) exceeds repetition %% (%v)", r.ReusePctAll, r.DynRepeatedPct)
	}
}

func TestRunWorkloadWindow(t *testing.T) {
	w, _ := workloads.ByName("m88k")
	im, err := w.Image()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{SkipInstructions: 200_000, MeasureInstructions: 500_000}
	r, err := core.Run(context.Background(), im, w.Input(1), w.Name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SkippedInstructions != 200_000 {
		t.Errorf("skipped %d", r.SkippedInstructions)
	}
	if r.MeasuredInstructions != 500_000 {
		t.Errorf("measured %d", r.MeasuredInstructions)
	}
	if r.DynTotal != 500_000 {
		t.Errorf("tracker saw %d", r.DynTotal)
	}
	// m88k is the extreme repeater in the paper (98.8%).
	if r.DynRepeatedPct < 80 {
		t.Errorf("m88k repetition = %.1f, want > 80", r.DynRepeatedPct)
	}
	t.Logf("m88k: rep=%.1f%% internals=%.1f%% ext=%.1f%% allarg=%.1f%% reuse=%.1f%%",
		r.DynRepeatedPct, r.Table3.OverallPct[1], r.Table3.OverallPct[3],
		r.Table4.AllArgsPct, r.ReusePctAll)
}

func TestDisableFlags(t *testing.T) {
	im, err := minic.Compile(`int main() { int s; s = 0; for (int i = 0; i < 100; i++) { s += i; } return s; }`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		DisableTaint: true, DisableLocal: true,
		DisableFunc: true, DisableReuse: true, DisableVPred: true,
	}
	r, err := core.Run(context.Background(), im, nil, "min", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The census still runs; the disabled analyses report zeros.
	if r.DynRepeatedPct <= 0 {
		t.Error("census disabled unexpectedly")
	}
	if r.Table4.DynCalls != 0 {
		t.Error("funcanal ran while disabled")
	}
	if r.ReusePctAll != 0 {
		t.Error("reuse ran while disabled")
	}
	var sum float64
	for _, v := range r.Table3.OverallPct {
		sum += v
	}
	if sum != 0 {
		t.Error("taint ran while disabled")
	}
}

func TestWarmupDoesNotCount(t *testing.T) {
	im, err := minic.Compile(`int main() { int s; s = 0; for (int i = 0; i < 100000; i++) { s += i & 3; } return s; }`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Run(context.Background(), im, nil, "w", core.Config{
		SkipInstructions:    10_000,
		MeasureInstructions: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.SkippedInstructions != 10_000 || r.MeasuredInstructions != 20_000 {
		t.Fatalf("window = %d/%d", r.SkippedInstructions, r.MeasuredInstructions)
	}
	if r.DynTotal != 20_000 {
		t.Errorf("census counted %d, want exactly the measured window", r.DynTotal)
	}
}

func TestRunFaultSurfacing(t *testing.T) {
	im, err := minic.Compile(`int main() { int z; z = 0; return 1 / z; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(context.Background(), im, nil, "div0", core.Config{}); err == nil {
		t.Error("runtime fault should surface from core.Run")
	}
	// Fault during warmup is reported as such.
	if _, err := core.Run(context.Background(), im, nil, "div0", core.Config{SkipInstructions: 1_000_000}); err == nil {
		t.Error("warmup fault should surface")
	}
}

func TestVPredInReport(t *testing.T) {
	im, err := minic.Compile(`
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 2000; i++) { s += 3; }
	return s & 127;
}`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Run(context.Background(), im, nil, "vp", core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A counting loop is stride-predictable and its constant adds are
	// last-value predictable.
	if r.VPred.EligiblePct <= 0 {
		t.Fatal("no eligible instructions")
	}
	if r.VPred.HybridPct < r.VPred.LastValuePct || r.VPred.HybridPct < r.VPred.StridePct {
		t.Error("hybrid must dominate its components")
	}
	if r.VPred.StridePct < 30 {
		t.Errorf("stride accuracy %.1f suspiciously low for a counting loop", r.VPred.StridePct)
	}
	// Type census present: ALU dominates this loop.
	if r.TypeOverallPct[0] < 30 {
		t.Errorf("alu share = %.1f", r.TypeOverallPct[0])
	}
	var sum float64
	for _, v := range r.TypeOverallPct {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("type shares sum to %v", sum)
	}
}

func TestRunMetricsCollected(t *testing.T) {
	w, _ := workloads.ByName("lzw")
	im, err := w.Image()
	if err != nil {
		t.Fatal(err)
	}
	var updates []core.Progress
	cfg := core.Config{
		SkipInstructions:    10_000,
		MeasureInstructions: 100_000,
		ObserverSampleEvery: 16,
		Progress:            func(p core.Progress) { updates = append(updates, p) },
	}
	r, err := core.Run(context.Background(), im, w.Input(1), "lzw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics
	if m == nil {
		t.Fatal("no RunMetrics on report")
	}
	if m.Benchmark != "lzw" {
		t.Errorf("benchmark = %q", m.Benchmark)
	}
	// Phase tree: load/skip/measure/collect under the root.
	names := map[string]bool{}
	for _, c := range m.Phases.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"load", "skip", "measure", "collect"} {
		if !names[want] {
			t.Errorf("phase %q missing from %v", want, m.Phases.Children)
		}
	}
	if m.Phases.WallNS <= 0 {
		t.Error("root phase has no wall time")
	}
	if m.Sim.Retired != r.SkippedInstructions+r.MeasuredInstructions {
		t.Errorf("retired = %d, want %d", m.Sim.Retired, r.SkippedInstructions+r.MeasuredInstructions)
	}
	if m.Sim.Loads == 0 || m.Sim.Branches == 0 || len(m.Sim.ClassMix) == 0 {
		t.Errorf("sim counters empty: %+v", m.Sim)
	}
	var mixTotal uint64
	for _, c := range m.Sim.ClassMix {
		mixTotal += c.Count
	}
	if mixTotal != m.Sim.Retired {
		t.Errorf("class mix sums to %d, want %d", mixTotal, m.Sim.Retired)
	}
	if m.RetireRateMIPS <= 0 {
		t.Error("retire rate not computed")
	}
	// Observer attribution: repetition plus the six analyses.
	if len(m.Observers) != 7 {
		t.Errorf("got %d observer costs: %+v", len(m.Observers), m.Observers)
	}
	var share float64
	for _, o := range m.Observers {
		if o.Samples == 0 {
			t.Errorf("observer %s never sampled", o.Name)
		}
		share += o.SharePct
	}
	if share < 99.9 || share > 100.1 {
		t.Errorf("observer shares sum to %.2f", share)
	}
	// Progress: updates for both phases, each ending with a final one.
	byPhase := map[string][]core.Progress{}
	for _, u := range updates {
		byPhase[u.Phase] = append(byPhase[u.Phase], u)
	}
	for _, phase := range []string{"skip", "measure"} {
		us := byPhase[phase]
		if len(us) == 0 {
			t.Fatalf("no progress updates for %s", phase)
		}
		last := us[len(us)-1]
		if !last.Final {
			t.Errorf("%s: last update not final: %+v", phase, last)
		}
		if last.Done == 0 || last.Retired == 0 {
			t.Errorf("%s: empty final update: %+v", phase, last)
		}
	}
	if got := byPhase["measure"][len(byPhase["measure"])-1].Done; got != r.MeasuredInstructions {
		t.Errorf("final measure Done = %d, want %d", got, r.MeasuredInstructions)
	}
}

func TestRunMetricsSamplingDisabled(t *testing.T) {
	w, _ := workloads.ByName("lzw")
	im, err := w.Image()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		MeasureInstructions: 50_000,
		ObserverSampleEvery: -1,
	}
	r, err := core.Run(context.Background(), im, w.Input(1), "lzw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics == nil {
		t.Fatal("no RunMetrics on report")
	}
	if len(r.Metrics.Observers) != 0 {
		t.Errorf("attribution should be disabled, got %+v", r.Metrics.Observers)
	}
}
