package core_test

// Checkpoint/restore acceptance at the core run path: a run
// interrupted at a chunk boundary and resumed from its snapshot must
// produce a canonical report byte-identical to an uninterrupted run,
// through every phase and observer; snapshots that fail validation
// fall back to a fresh run with the same bytes.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/program"
)

// checkpointTestProgram runs ~1.6M instructions so the run crosses
// several 256k-instruction chunk boundaries in both phases.
const checkpointTestProgram = `
int table[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int lookup(int i) { return table[i & 15]; }
int main() {
	int sum;
	int i;
	int round;
	sum = 0;
	for (round = 0; round < 4000; round++) {
		for (i = 0; i < 16; i++) {
			sum += lookup(i);
		}
	}
	return sum & 255;
}`

func checkpointTestImage(t *testing.T) *program.Image {
	t.Helper()
	im, err := minic.Compile(checkpointTestProgram)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func checkpointTestConfig() core.Config {
	return core.Config{SkipInstructions: 300_000, MeasureInstructions: 800_000}
}

func canonical(t *testing.T, r *core.Report) []byte {
	t.Helper()
	b, err := core.CanonicalJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// interruptAndResume runs the test program with a policy that cancels
// the run right after the first snapshot written in the given phase,
// then resumes from that snapshot, returning the resumed report and
// the store.
func interruptAndResume(t *testing.T, im *program.Image, phase string) (*core.Report, *checkpoint.Store) {
	t.Helper()
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "abc123"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cutAt uint64
	cfg := checkpointTestConfig()
	cfg.Checkpoint = &core.CheckpointPolicy{
		Store: store,
		Key:   key,
		Every: 1, // due at every chunk boundary
		Notify: func(ev core.CheckpointEvent) {
			if !ev.Resumed && ev.Phase == phase && cutAt == 0 {
				cutAt = ev.Retired
				cancel()
			}
		},
	}
	rep, err := core.Run(ctx, im, nil, "ckpt", cfg)
	if err == nil {
		t.Fatalf("interrupted %s-phase run did not error", phase)
	}
	if cutAt == 0 {
		t.Fatalf("no snapshot was written in the %s phase", phase)
	}
	if rep == nil || !rep.Truncated {
		t.Fatalf("interrupted run: report = %+v", rep)
	}
	if rep.Checkpoint == nil || rep.Checkpoint.LastRetired != cutAt {
		t.Fatalf("truncated report checkpoint status = %+v, want LastRetired=%d",
			rep.Checkpoint, cutAt)
	}

	var resumedAt uint64
	cfg2 := checkpointTestConfig()
	cfg2.Checkpoint = &core.CheckpointPolicy{
		Store:  store,
		Key:    key,
		Resume: true,
		Notify: func(ev core.CheckpointEvent) {
			if ev.Resumed {
				resumedAt = ev.Retired
			}
		},
	}
	rep2, err := core.Run(context.Background(), im, nil, "ckpt", cfg2)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if resumedAt != cutAt {
		t.Errorf("resumed at %d retired, want %d (the interruption point)", resumedAt, cutAt)
	}
	if store.Stats.Resumes.Value() != 1 {
		t.Errorf("Resumes = %d, want 1", store.Stats.Resumes.Value())
	}
	return rep2, store
}

func TestResumeMatchesUninterruptedRun(t *testing.T) {
	im := checkpointTestImage(t)
	straight, err := core.Run(context.Background(), im, nil, "ckpt", checkpointTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(t, straight)

	for _, phase := range []string{"skip", "measure"} {
		t.Run(phase, func(t *testing.T) {
			rep, store := interruptAndResume(t, im, phase)
			if got := canonical(t, rep); !bytes.Equal(got, want) {
				t.Errorf("resumed report diverged from the uninterrupted run (%d vs %d bytes)",
					len(got), len(want))
			}
			// A completed run leaves nothing to resume.
			if keys := store.Keys(); len(keys) != 0 {
				t.Errorf("snapshot survived a clean finish: %v", keys)
			}
		})
	}
}

// TestCorruptSnapshotFallsBackToFreshRun flips a byte in the snapshot
// on disk: the resume must reject it, count it, delete it, and run
// fresh — same canonical bytes, no panic, no wrong report.
func TestCorruptSnapshotFallsBackToFreshRun(t *testing.T) {
	im := checkpointTestImage(t)
	straight, err := core.Run(context.Background(), im, nil, "ckpt", checkpointTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(t, straight)

	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "abc123"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := checkpointTestConfig()
	cfg.Checkpoint = &core.CheckpointPolicy{
		Store: store, Key: key, Every: 1,
		Notify: func(ev core.CheckpointEvent) { cancel() },
	}
	if _, err := core.Run(ctx, im, nil, "ckpt", cfg); err == nil {
		t.Fatal("interrupted run did not error")
	}

	path := filepath.Join(dir, key+".ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg2 := checkpointTestConfig()
	var resumed bool
	cfg2.Checkpoint = &core.CheckpointPolicy{
		Store: store, Key: key, Resume: true,
		Notify: func(ev core.CheckpointEvent) { resumed = resumed || ev.Resumed },
	}
	rep, err := core.Run(context.Background(), im, nil, "ckpt", cfg2)
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if resumed {
		t.Error("corrupt snapshot was resumed from")
	}
	if got := canonical(t, rep); !bytes.Equal(got, want) {
		t.Error("fallback run diverged from the uninterrupted run")
	}
	if store.Stats.Corrupt.Value() == 0 {
		t.Error("corrupt snapshot not counted")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Error("corrupt snapshot not deleted")
	}
}

// TestMismatchedPipelineRejectsResume restores a snapshot taken with
// every observer enabled into a run with the taint analysis disabled:
// the presence flags must reject it (the checkpoint key normally rules
// this out; the snapshot body is the second line of defense).
func TestMismatchedPipelineRejectsResume(t *testing.T) {
	im := checkpointTestImage(t)
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "abc123"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := checkpointTestConfig()
	cfg.Checkpoint = &core.CheckpointPolicy{
		Store: store, Key: key, Every: 1,
		Notify: func(ev core.CheckpointEvent) { cancel() },
	}
	if _, err := core.Run(ctx, im, nil, "ckpt", cfg); err == nil {
		t.Fatal("interrupted run did not error")
	}

	cfg2 := checkpointTestConfig()
	cfg2.DisableTaint = true
	straight, err := core.Run(context.Background(), im, nil, "ckpt", cfg2)
	if err != nil {
		t.Fatal(err)
	}

	cfg3 := checkpointTestConfig()
	cfg3.DisableTaint = true
	var resumed bool
	cfg3.Checkpoint = &core.CheckpointPolicy{
		Store: store, Key: key, Resume: true,
		Notify: func(ev core.CheckpointEvent) { resumed = resumed || ev.Resumed },
	}
	rep, err := core.Run(context.Background(), im, nil, "ckpt", cfg3)
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if resumed {
		t.Error("mismatched snapshot was resumed from")
	}
	if store.Stats.ResumeRejected.Value() != 1 {
		t.Errorf("ResumeRejected = %d, want 1", store.Stats.ResumeRejected.Value())
	}
	if !bytes.Equal(canonical(t, rep), canonical(t, straight)) {
		t.Error("fallback run diverged from a fresh run with the same config")
	}
}
