package core_test

// Tests for the resilience layer: cancellation, per-workload timeout,
// deadman watchdog, panic recovery, and injected simulator faults, each
// yielding a well-formed partial (Truncated) report. Run under -race
// via the Makefile `race` target; the watchdog and timeout paths
// exercise the cross-goroutine progress publication.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/minic"
	"repro/internal/program"
)

// loopImage compiles a long-running but terminating program: enough
// instructions for mid-window aborts, small enough to finish fast when
// nothing is injected.
func loopImage(t *testing.T) *program.Image {
	t.Helper()
	im, err := minic.Compile(`
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < 2000000; i++) {
		sum = sum + (i & 7);
	}
	return sum & 255;
}`)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// checkPartial asserts a truncated report is well-formed: flagged,
// reason set, and with metrics attached so -metrics still renders it.
func checkPartial(t *testing.T, r *core.Report, reason string) {
	t.Helper()
	if r == nil {
		t.Fatal("truncated run must still return a partial report")
	}
	if !r.Truncated {
		t.Error("partial report not flagged Truncated")
	}
	if r.TruncatedReason != reason {
		t.Errorf("TruncatedReason = %q, want %q", r.TruncatedReason, reason)
	}
	if r.Metrics == nil {
		t.Error("partial report lost its run metrics")
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := core.Run(ctx, loopImage(t), nil, "canceled", core.Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkPartial(t, r, core.ReasonCanceled)
	if r.MeasuredInstructions != 0 {
		t.Errorf("pre-canceled run measured %d instructions", r.MeasuredInstructions)
	}
}

func TestRunCanceledMidWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := core.Config{
		// One chunk per progress callback: cancel after the first.
		Progress: func(p core.Progress) {
			if p.Done > 0 {
				cancel()
			}
		},
	}
	r, err := core.Run(ctx, loopImage(t), nil, "midcancel", cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkPartial(t, r, core.ReasonCanceled)
	if r.MeasuredInstructions == 0 {
		t.Error("mid-window cancel should keep the instructions measured so far")
	}
	if r.ProgramExited {
		t.Error("canceled run cannot have run to completion")
	}
}

func TestRunTimeout(t *testing.T) {
	cfg := core.Config{
		Timeout: 30 * time.Millisecond,
		Faults:  faultinject.NewPlan(faultinject.Fault{Kind: faultinject.SlowStep, At: 1000, Delay: time.Hour}),
	}
	r, err := core.Run(context.Background(), loopImage(t), nil, "slow", cfg)
	var te *core.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Benchmark != "slow" || te.Limit != cfg.Timeout {
		t.Errorf("TimeoutError = %+v", te)
	}
	checkPartial(t, r, core.ReasonTimeout)
}

func TestRunWatchdog(t *testing.T) {
	cfg := core.Config{
		WatchdogInterval: 50 * time.Millisecond,
		Faults:           faultinject.NewPlan(faultinject.Fault{Kind: faultinject.SlowStep, At: 5000, Delay: time.Hour}),
	}
	start := time.Now()
	r, err := core.Run(context.Background(), loopImage(t), nil, "wedged", cfg)
	var we *core.WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WatchdogError", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("watchdog took %v to abort an hour-long stall", elapsed)
	}
	if we.Benchmark != "wedged" {
		t.Errorf("WatchdogError.Benchmark = %q", we.Benchmark)
	}
	// The stall begins in the skip phase (default config has no skip,
	// so At=5000 lands in measure).
	if we.Phase != "measure" {
		t.Errorf("WatchdogError.Phase = %q, want measure", we.Phase)
	}
	if !strings.Contains(we.Error(), "pc=0x") {
		t.Errorf("watchdog diagnostic lacks a PC: %v", we)
	}
	checkPartial(t, r, core.ReasonWatchdog)
}

func TestRunWatchdogPassesHealthyRun(t *testing.T) {
	cfg := core.Config{WatchdogInterval: 30 * time.Second}
	r, err := core.Run(context.Background(), loopImage(t), nil, "healthy", cfg)
	if err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
	if r.Truncated {
		t.Error("healthy run flagged Truncated")
	}
	if !r.ProgramExited {
		t.Error("program should have exited")
	}
}

func TestRunRecoversObserverPanic(t *testing.T) {
	cfg := core.Config{
		Faults: faultinject.NewPlan(faultinject.Fault{Kind: faultinject.ObserverPanic, At: 50_000, Message: "injected"}),
	}
	r, err := core.Run(context.Background(), loopImage(t), nil, "panicky", cfg)
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Benchmark != "panicky" || pe.Value != "injected" {
		t.Errorf("PanicError = %q / %v", pe.Benchmark, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "OnInst") {
		t.Errorf("panic stack does not cover the panic site:\n%s", pe.Stack)
	}
	if r != nil {
		checkPartial(t, r, core.ReasonPanic)
	}
}

func TestRunSimFaultTruncatesAtCount(t *testing.T) {
	const at = 80_000
	cfg := core.Config{
		Faults: faultinject.NewPlan(faultinject.Fault{Kind: faultinject.SimFault, At: at}),
	}
	r, err := core.Run(context.Background(), loopImage(t), nil, "faulted", cfg)
	if err == nil || !strings.Contains(err.Error(), "faultinject") {
		t.Fatalf("err = %v, want injected simulator fault", err)
	}
	checkPartial(t, r, core.ReasonFault)
	if r.MeasuredInstructions != at {
		t.Errorf("measured %d instructions, want exactly %d (fault at retire count %d)",
			r.MeasuredInstructions, at, at)
	}
}

func TestTruncationReason(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{context.Canceled, core.ReasonCanceled},
		{context.DeadlineExceeded, core.ReasonTimeout},
		{&core.TimeoutError{Benchmark: "b"}, core.ReasonTimeout},
		{&core.WatchdogError{Benchmark: "b"}, core.ReasonWatchdog},
		{&core.PanicError{Benchmark: "b"}, core.ReasonPanic},
		{errors.New("anything else"), core.ReasonFault},
	}
	for _, c := range cases {
		if got := core.TruncationReason(c.err); got != c.want {
			t.Errorf("TruncationReason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
