package core

// Checkpoint/restore wiring for the run path: CheckpointPolicy tells
// Run when to snapshot the complete simulation state (machine +
// every observer + phase bookkeeping) at chunk boundaries, and
// whether to resume from an existing snapshot instead of starting
// over. The snapshot body layout is versioned by
// checkpoint.FormatVersion; the envelope and on-disk atomicity live
// in internal/checkpoint. See DESIGN.md §16.

import (
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/obs"
)

// DefaultCheckpointInterval is the wall-clock snapshot period when
// the policy sets neither pacer. Snapshots of a full-window run cost
// ~100ms each (tens of MB of tracker + memory state serialized,
// hashed, and written), so pacing by wall clock is what keeps the
// overhead bounded regardless of window size: one write per 15s is
// <1% of retire rate on any run long enough to need checkpointing,
// and a short run that finishes inside the interval pays nothing.
// Count-based pacing (Every) remains available when a test or tool
// needs deterministic snapshot points.
const DefaultCheckpointInterval = 15 * time.Second

// CheckpointPolicy tells Run when and where to snapshot. The zero
// value (and a nil pointer) disables checkpointing entirely.
type CheckpointPolicy struct {
	// Store receives the snapshots (required to enable the policy).
	Store *checkpoint.Store
	// Key identifies the run — the result-cache fingerprint, so a
	// snapshot can only ever be resumed by a byte-identical
	// (workload, config, version) run.
	Key string
	// Every is a retire-count pacer: a snapshot lands on the first
	// chunk boundary at or past every N retired instructions
	// (0 = no count pacing). Deterministic, so tests use it to pin
	// snapshot points.
	Every uint64
	// Interval is a wall-clock pacer: a snapshot lands on the first
	// chunk boundary after each period elapses. 0 means
	// DefaultCheckpointInterval — unless Every is set, in which case
	// 0 disables time pacing (the caller asked for count-only).
	Interval time.Duration
	// Resume makes Run look for a snapshot under Key at startup and
	// continue from it. A snapshot that fails validation is counted,
	// deleted, and ignored — the run starts fresh.
	Resume bool
	// Notify, when set, receives one event per resume and per
	// snapshot written (CLI notices, deterministic-interruption
	// tests). Called synchronously from the run loop.
	Notify func(CheckpointEvent)
}

// enabled reports whether the policy can snapshot at all.
func (cp *CheckpointPolicy) enabled() bool {
	return cp != nil && cp.Store != nil && cp.Key != ""
}

// interval returns the effective wall-clock period (0 = disabled).
func (cp *CheckpointPolicy) interval() time.Duration {
	if cp.Interval == 0 && cp.Every == 0 {
		return DefaultCheckpointInterval
	}
	return cp.Interval
}

// CheckpointEvent describes one checkpoint action during a run.
type CheckpointEvent struct {
	Benchmark string
	// Resumed is true for the startup resume notification, false for
	// a snapshot write.
	Resumed bool
	// Retired is the machine's total retire count at the snapshot.
	Retired uint64
	// Phase is the run phase ("skip" or "measure") at the snapshot.
	Phase string
	// Bytes is the encoded snapshot size (writes only).
	Bytes int
}

// CheckpointStatus is the checkpoint summary attached to truncated
// reports: what a resume would recover. Only present when the run was
// cut short while a policy was active.
type CheckpointStatus struct {
	// LastRetired is the machine retire count at the newest snapshot
	// (0 = no snapshot exists; a resume would start over).
	LastRetired uint64
	// AgeMS is how long before the cut that snapshot was written, in
	// milliseconds (wall clock; 0 when no snapshot exists).
	AgeMS int64 `json:",omitempty"`
}

// Snapshot phase codes (the body's phase bookkeeping).
const (
	phaseCodeSkip    = 0
	phaseCodeMeasure = 1
)

// snapshotBody encodes the complete run state: phase bookkeeping,
// then the machine, then the pipeline. The pipeline is flushed first
// so no buffered-but-unobserved events exist; flush boundaries don't
// alter any statistic (every observer sees the same ordered stream),
// so the extra flush keeps resumed and uninterrupted runs
// byte-identical.
func (ck *ckState) snapshotBody(phase string, skipped, measured uint64) []byte {
	var w checkpoint.Writer
	code := uint8(phaseCodeSkip)
	if phase == "measure" {
		code = phaseCodeMeasure
	}
	w.U8(code)
	w.U64(skipped)
	w.U64(measured)
	ck.m.SnapshotTo(&w)
	ck.p.snapshotTo(&w)
	return w.Bytes()
}

// resumeState is the phase bookkeeping recovered from a snapshot.
type resumeState struct {
	phase    string
	skipped  uint64
	measured uint64
	retired  uint64
}

// restoreBody rebuilds machine and pipeline state from a snapshot
// body. On any validation failure the machine/pipeline are unusable
// and the caller must rebuild them before running fresh.
func restoreBody(body []byte, ck *ckState) (resumeState, error) {
	r := checkpoint.NewReader(body)
	var rs resumeState
	switch r.U8() {
	case phaseCodeSkip:
		rs.phase = "skip"
	case phaseCodeMeasure:
		rs.phase = "measure"
	default:
		return rs, checkpoint.ErrMalformed
	}
	rs.skipped = r.U64()
	rs.measured = r.U64()
	if err := ck.m.RestoreFrom(r); err != nil {
		return rs, err
	}
	if err := ck.p.restoreFrom(r); err != nil {
		return rs, err
	}
	if err := r.Err(); err != nil {
		return rs, err
	}
	if r.Remaining() != 0 {
		return rs, checkpoint.ErrMalformed
	}
	rs.retired = ck.m.Count
	return rs, nil
}

// snapshotTo writes every pipeline observer after flushing the event
// batch. Presence flags guard each optional observer so a snapshot
// taken under one analysis config can never restore into another
// (the checkpoint key should already rule that out; this is the
// belt to its suspenders).
func (p *Pipeline) snapshotTo(w *checkpoint.Writer) {
	p.flush()
	p.Rep.SnapshotTo(w)
	w.Bool(p.Taint != nil)
	if p.Taint != nil {
		p.Taint.SnapshotTo(w)
	}
	w.Bool(p.Local != nil)
	if p.Local != nil {
		p.Local.SnapshotTo(w)
	}
	w.Bool(p.Funcs != nil)
	if p.Funcs != nil {
		p.Funcs.SnapshotTo(w)
	}
	w.Bool(p.Reuse != nil)
	if p.Reuse != nil {
		p.Reuse.SnapshotTo(w)
	}
	w.Bool(p.VPred != nil)
	if p.VPred != nil {
		p.VPred.SnapshotTo(w)
	}
	w.Bool(p.VProf != nil)
	if p.VProf != nil {
		p.VProf.SnapshotTo(w)
	}
}

// restoreFrom loads every observer's state into a freshly constructed
// pipeline (same image, same config). A presence mismatch means the
// snapshot was taken under a different analysis selection.
func (p *Pipeline) restoreFrom(r *checkpoint.Reader) error {
	if err := p.Rep.RestoreFrom(r); err != nil {
		return err
	}
	type part struct {
		present bool
		restore func(*checkpoint.Reader) error
	}
	parts := []part{
		{p.Taint != nil, func(r *checkpoint.Reader) error { return p.Taint.RestoreFrom(r) }},
		{p.Local != nil, func(r *checkpoint.Reader) error { return p.Local.RestoreFrom(r) }},
		{p.Funcs != nil, func(r *checkpoint.Reader) error { return p.Funcs.RestoreFrom(r) }},
		{p.Reuse != nil, func(r *checkpoint.Reader) error { return p.Reuse.RestoreFrom(r) }},
		{p.VPred != nil, func(r *checkpoint.Reader) error { return p.VPred.RestoreFrom(r) }},
		{p.VProf != nil, func(r *checkpoint.Reader) error { return p.VProf.RestoreFrom(r) }},
	}
	for _, pt := range parts {
		present := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if present != pt.present {
			return checkpoint.ErrMalformed
		}
		if present {
			if err := pt.restore(r); err != nil {
				return err
			}
		}
	}
	return r.Err()
}

// ckState carries the live checkpointing context through a run: the
// policy, the machine and pipeline to snapshot, the cumulative phase
// bookkeeping, and the due-tracking since the last snapshot.
type ckState struct {
	policy *CheckpointPolicy
	name   string
	span   *obs.Span // run root; snapshot writes become its children
	st     *runState

	m *cpu.Machine
	p *Pipeline

	// Cumulative instruction totals from a resumed snapshot; phase
	// progress adds to these.
	baseSkipped  uint64
	baseMeasured uint64

	lastRetired uint64    // machine retire count at the last snapshot
	lastAt      time.Time // when it was written
	wrote       bool      // at least one snapshot written this run
}

// atBoundary is runPhase's chunk-boundary hook: done is this phase's
// progress, folded into the cumulative bases a resumed snapshot
// carried in.
func (ck *ckState) atBoundary(phase string, retired, done uint64) {
	if ck == nil {
		return
	}
	skipped, measured := ck.baseSkipped, ck.baseMeasured
	if phase == "skip" {
		skipped += done
	} else {
		measured += done
	}
	ck.maybeWrite(phase, retired, skipped, measured)
}

// due reports whether the policy calls for a snapshot at this retire
// count.
func (ck *ckState) due(retired uint64) bool {
	if every := ck.policy.Every; every > 0 && retired >= ck.lastRetired+every {
		return true
	}
	if iv := ck.policy.interval(); iv > 0 && time.Since(ck.lastAt) >= iv {
		return true
	}
	return false
}

// maybeWrite snapshots at a chunk boundary when the policy says one
// is due. skipped/measured are the cumulative totals at this
// boundary. Write failures are counted by the store and otherwise
// ignored — the run continues uncheckpointed rather than aborting.
func (ck *ckState) maybeWrite(phase string, retired, skipped, measured uint64) {
	if ck == nil || !ck.due(retired) {
		return
	}
	sp := ck.span.StartChild("checkpoint.write")
	body := ck.snapshotBody(phase, skipped, measured)
	data := len(body)
	err := ck.policy.Store.Write(ck.policy.Key, body)
	sp.SetAttr("bytes", data)
	sp.SetAttr("retired", retired)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	if err != nil {
		return
	}
	ck.lastRetired = retired
	ck.lastAt = time.Now()
	ck.wrote = true
	if ck.st != nil {
		ck.st.publishCheckpoint(retired)
	}
	if ck.policy.Notify != nil {
		ck.policy.Notify(CheckpointEvent{
			Benchmark: ck.name, Retired: retired, Phase: phase, Bytes: data,
		})
	}
}

// status summarizes the newest snapshot for a truncated report.
func (ck *ckState) status() *CheckpointStatus {
	if ck == nil {
		return nil
	}
	s := &CheckpointStatus{}
	if ck.wrote {
		s.LastRetired = ck.lastRetired
		s.AgeMS = time.Since(ck.lastAt).Milliseconds()
	}
	return s
}
