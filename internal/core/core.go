// Package core wires the analyses together: it runs a program on the
// functional simulator with the repetition tracker, global (taint)
// analysis, function-level analysis, local analysis, and reuse buffer
// attached, and collects every table and figure of the paper into a
// Report.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/funcanal"
	"repro/internal/isa"
	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/repetition"
	"repro/internal/reuse"
	"repro/internal/taint"
	"repro/internal/vpred"
	"repro/internal/vprofile"
)

// Config controls one experiment run.
type Config struct {
	// SkipInstructions are executed before the analyses attach,
	// mirroring the paper's fast-forward past initialization.
	SkipInstructions uint64
	// MeasureInstructions bounds the analyzed window (0 = to
	// completion).
	MeasureInstructions uint64
	// MaxInstances is the per-static-instruction unique-instance
	// buffer limit (0 = the paper's 2000).
	MaxInstances int
	// ReuseEntries/ReuseAssoc size the reuse buffer (0 = the paper's
	// 8K, 4-way).
	ReuseEntries int
	ReuseAssoc   int
	// ReusePolicy selects the reuse buffer's replacement policy (the
	// zero value is reuse.LRU, the paper's; see internal/reuse). The
	// sweep engine varies it as a measurement axis.
	ReusePolicy reuse.Policy
	// VPredEntries sizes the value-predictor tables (0 = 8192).
	VPredEntries int
	// InputVariant selects the workload input data set (0 or 1 = the
	// standard inputs, 2+ = alternates) — the paper's input
	// sensitivity check (Section 3).
	InputVariant int
	// Analyses toggles; a zero Config enables everything.
	DisableTaint bool
	DisableLocal bool
	DisableFunc  bool
	DisableReuse bool
	DisableVPred bool
	DisableVProf bool

	// DisableTranslation forces the single-step interpreter instead of
	// the basic-block translation cache (see internal/cpu/translate.go).
	// Execution-shaping only — the two paths produce byte-identical
	// reports (held by the differential harness), so this field is
	// deliberately absent from MeasurementKey. Used by the differential
	// tests and the before/after benchmark comparison.
	DisableTranslation bool

	// ObserverSampleEvery is the cost-attribution sampling period:
	// one event batch in every N is timed per observer pass and the
	// totals extrapolated (0 = the default of 1024; negative disables
	// attribution).
	ObserverSampleEvery int

	// Parallel bounds the worker pool repro.RunAll uses to run
	// workloads concurrently (0 = GOMAXPROCS). Individual core.Run
	// calls are single-threaded; this only matters to multi-workload
	// drivers.
	Parallel int

	// Timeout bounds one workload's wall-clock run time (0 = none).
	// An expired timeout truncates the run: Run returns a partial
	// Report flagged Truncated alongside a *TimeoutError.
	Timeout time.Duration

	// WatchdogInterval arms the deadman watchdog (0 = off): when the
	// run loop makes no retire progress for this long — a wedged step,
	// a runaway observer — the run aborts with a *WatchdogError
	// carrying a PC/phase diagnostic and a truncated partial Report.
	// While armed, the simulator runs through a per-step checkpoint
	// hook (a few percent slower), so leave it off for benchmarking.
	WatchdogInterval time.Duration

	// Faults is the deterministic fault-injection plan consulted at
	// each fault point (nil = none); see internal/faultinject. Test
	// and harness use only.
	Faults *faultinject.Plan

	// Checkpoint enables crash-resumable runs (nil = off): snapshots
	// of the complete simulation state — machine, every observer,
	// phase bookkeeping — written at chunk boundaries per the policy
	// and resumed at startup when the policy asks. Deliberately absent
	// from MeasurementKey: a resumed run produces a canonical report
	// byte-identical to an uninterrupted one. See DESIGN.md §16.
	Checkpoint *CheckpointPolicy

	// Span, when set, is the enclosing run span (e.g. opened around
	// compilation by the caller); Run adds its phase children to it,
	// ends it, and snapshots it into the report's RunMetrics. When nil
	// Run opens its own root span.
	Span *obs.Span

	// Health receives the run's resilience accounting — truncations by
	// cause and recovered panics (nil = the process-wide obs.Health).
	// The report server injects its registry's set so daemon instances
	// and tests stay isolated.
	Health *obs.HealthCounters

	// Runs, when set, registers the run for live introspection while it
	// executes: RunRegistry.Snapshot lists in-flight runs with phase,
	// retired count, and retire rate (GET /debug/runs, CLI -progress).
	Runs *RunRegistry

	// Progress, when set, receives periodic updates during the skip
	// and measure phases. It may be called from multiple goroutines
	// when workloads run in parallel, so implementations must be
	// concurrency-safe.
	Progress func(Progress)
}

// Progress is one progress-callback update.
type Progress struct {
	Benchmark string
	Phase     string // "skip" or "measure"
	Done      uint64 // instructions retired in this phase so far
	Total     uint64 // phase budget (0 = run to completion)
	Retired   uint64 // instructions retired since machine start
	Final     bool   // last update for this phase
}

// defaultSampleEvery is the attribution sampling period in *flushes*:
// one flush in every N is timed per observer pass and the totals are
// extrapolated over the whole event stream. A timed flush covers a
// full batch, so the sampled fraction of events is 1/N — the same
// coverage the pre-batch per-instruction sampler had — while the
// clock reads drop from two per event to two per N*batchSize events.
const defaultSampleEvery = 1024

// batchSize is the event-batch length of the observer-major dispatch:
// big enough to amortize per-pass call overhead and keep each
// observer's code and branch-predictor state hot across a whole pass,
// small enough that the buffered events stay cache-resident.
const batchSize = 256

// itemInst/itemCall/itemRet tag the entries of a batch's interleave
// sequence; the order of tags reproduces the exact event order for
// observers that consume call/return events.
const (
	itemInst = iota
	itemCall
	itemRet
)

// batch buffers the event stream between flushes. Instructions,
// calls, and returns live in separate typed slices; kinds records
// their interleaving so a pass that consumes several event types
// replays them in original order.
type batch struct {
	evs   []cpu.Event
	vers  []bool // repetition verdicts, filled by the census pass
	calls []cpu.CallEvent
	rets  []cpu.RetEvent
	kinds []uint8
}

// stage is one named observer pass of the batched pipeline; the name
// is used for per-observer cost attribution in RunMetrics.
type stage struct {
	name string
	run  func(b *batch)
	ns   time.Duration // summed pass time (exact, not sampled)
}

// Pipeline dispatches simulator events to the enabled analyses in the
// order the measurements require: the repetition verdict for each
// instruction feeds the category analyses and the reuse comparison.
//
// Dispatch is batched and observer-major: events buffer into a batch
// (a copy each — the simulator reuses its Event), and a flush runs
// each analysis over the whole batch in one pass. Every observer
// still sees the identical ordered event stream, so no statistic can
// change; what changes is that per-event virtual dispatch is replaced
// by one call per observer per batch and each observer's code stays
// hot for a few hundred events at a time. Flushes happen when the
// batch fills, when the counting window toggles (so every buffered
// event is observed under the window state it retired in), and at
// collection.
type Pipeline struct {
	Rep   *repetition.Tracker
	Taint *taint.Analysis
	Local *local.Analysis
	Funcs *funcanal.Analysis
	Reuse *reuse.Buffer
	VPred *vpred.Predictor
	VProf *vprofile.Profiler

	counting bool
	b        batch

	// Observer cost attribution: when sampleEvery > 0, one flush in
	// every sampleEvery is timed per observer pass (samples counts the
	// events those flushes covered, totalEvs the whole stream, so the
	// cost report extrapolates); repNS covers the repetition tracker
	// (which runs before the stages to produce the verdicts).
	stages      []stage
	sampleEvery uint64
	flushes     uint64
	samples     uint64
	totalEvs    uint64
	repNS       time.Duration
}

// SetCounting opens (or closes) the measurement window. While closed,
// dataflow state (taint tags, local frames, call stacks) still
// propagates so the analyses are correct when the window opens, but no
// statistics accumulate and no instance buffers fill — the paper's
// skip-then-measure methodology.
func (p *Pipeline) SetCounting(on bool) {
	p.flush() // buffered events observe under the window they retired in
	p.counting = on
	if p.Taint != nil {
		p.Taint.Counting = on
	}
	if p.Local != nil {
		p.Local.Counting = on
	}
	if p.Funcs != nil {
		p.Funcs.Counting = on
	}
}

// NewPipeline builds the analysis pipeline for an image.
func NewPipeline(im *program.Image, cfg Config) *Pipeline {
	p := &Pipeline{Rep: repetition.NewTracker()}
	// Pre-size the census's dense per-PC table to the text segment so
	// the hot path never grows it.
	p.Rep.SetTextBounds(program.TextBase, im.StaticInstructions())
	if cfg.MaxInstances > 0 {
		p.Rep.MaxInstances = cfg.MaxInstances
	}
	switch {
	case cfg.ObserverSampleEvery > 0:
		p.sampleEvery = uint64(cfg.ObserverSampleEvery)
	case cfg.ObserverSampleEvery == 0:
		p.sampleEvery = defaultSampleEvery
	}
	p.b.evs = make([]cpu.Event, 0, batchSize)
	p.b.vers = make([]bool, 0, batchSize)
	p.b.calls = make([]cpu.CallEvent, 0, batchSize)
	p.b.rets = make([]cpu.RetEvent, 0, batchSize)
	p.b.kinds = make([]uint8, 0, batchSize)
	add := func(name string, run func(*batch)) {
		p.stages = append(p.stages, stage{name: name, run: run})
	}
	if !cfg.DisableTaint {
		// Dataflow analyses run even while the window is closed (their
		// Counting flags gate the statistics, not the propagation).
		p.Taint = taint.New(im)
		add(p.Taint.Name(), func(b *batch) {
			for i := range b.evs {
				p.Taint.Observe(&b.evs[i], b.vers[i])
			}
		})
	}
	if !cfg.DisableLocal {
		p.Local = local.New(im)
		add(p.Local.Name(), func(b *batch) {
			ei, ci, ri := 0, 0, 0
			for _, k := range b.kinds {
				switch k {
				case itemInst:
					p.Local.Observe(&b.evs[ei], b.vers[ei])
					ei++
				case itemCall:
					p.Local.OnCall(&b.calls[ci])
					ci++
				default:
					p.Local.OnReturn(&b.rets[ri])
					ri++
				}
			}
		})
	}
	if !cfg.DisableFunc {
		p.Funcs = funcanal.New(im)
		add(p.Funcs.Name(), func(b *batch) {
			ei, ci, ri := 0, 0, 0
			for _, k := range b.kinds {
				switch k {
				case itemInst:
					p.Funcs.Observe(&b.evs[ei], b.vers[ei])
					ei++
				case itemCall:
					p.Funcs.OnCall(&b.calls[ci])
					ci++
				default:
					p.Funcs.OnReturn(&b.rets[ri])
					ri++
				}
			}
		})
	}
	if !cfg.DisableReuse {
		p.Reuse = reuse.NewPolicy(cfg.ReuseEntries, cfg.ReuseAssoc, cfg.ReusePolicy)
		add(p.Reuse.Name(), func(b *batch) {
			if !p.counting {
				return
			}
			for i := range b.evs {
				p.Reuse.Observe(&b.evs[i], b.vers[i])
			}
		})
	}
	if !cfg.DisableVPred {
		p.VPred = vpred.New(cfg.VPredEntries)
		add(p.VPred.Name(), func(b *batch) {
			if !p.counting {
				return
			}
			for i := range b.evs {
				p.VPred.Observe(&b.evs[i])
			}
		})
	}
	if !cfg.DisableVProf {
		p.VProf = vprofile.New()
		p.VProf.SetTextBounds(program.TextBase, im.StaticInstructions())
		add(p.VProf.Name(), func(b *batch) {
			if !p.counting {
				return
			}
			for i := range b.evs {
				p.VProf.Observe(&b.evs[i])
			}
		})
	}
	return p
}

// NextSlot implements cpu.EventSink: the machine builds the next
// event directly in the batch's tail slot, skipping a build-then-copy
// per instruction. The slot is only committed when OnInst receives
// the same pointer back; an abandoned slot (faulting instruction) is
// reused. The batch is allocated at full capacity and flushed before
// it fills, so the tail slot always exists.
func (p *Pipeline) NextSlot() *cpu.Event {
	return &p.b.evs[:cap(p.b.evs)][len(p.b.evs)]
}

// OnInst implements cpu.Observer: commit the slot the machine built in
// place (when it used NextSlot) or buffer a copy (the simulator reuses
// its own Event otherwise), and flush when the batch fills.
func (p *Pipeline) OnInst(ev *cpu.Event) {
	if n := len(p.b.evs); n < cap(p.b.evs) && ev == &p.b.evs[:n+1][n] {
		p.b.evs = p.b.evs[:n+1]
	} else {
		p.b.evs = append(p.b.evs, *ev)
	}
	p.b.vers = append(p.b.vers, false)
	p.b.kinds = append(p.b.kinds, itemInst)
	if len(p.b.kinds) >= batchSize {
		p.flush()
	}
}

// flush runs every enabled analysis over the buffered batch, in the
// order the per-event dispatch used: the census pass first (producing
// the verdict for each instruction), then each stage.
func (p *Pipeline) flush() {
	b := &p.b
	if len(b.kinds) == 0 {
		return
	}
	timed := p.sampleEvery > 0 && p.flushes%p.sampleEvery == 0
	p.flushes++
	p.totalEvs += uint64(len(b.evs))
	var now time.Time
	if timed {
		p.samples += uint64(len(b.evs))
		now = time.Now()
	}
	if p.counting {
		for i := range b.evs {
			b.vers[i] = p.Rep.Observe(&b.evs[i])
		}
	}
	if timed {
		t := time.Now()
		p.repNS += t.Sub(now)
		now = t
	}
	for i := range p.stages {
		p.stages[i].run(b)
		if timed {
			t := time.Now()
			p.stages[i].ns += t.Sub(now)
			now = t
		}
	}
	b.evs = b.evs[:0]
	b.vers = b.vers[:0]
	b.calls = b.calls[:0]
	b.rets = b.rets[:0]
	b.kinds = b.kinds[:0]
}

// ObserverCosts reports the per-observer pass times, extrapolated
// from the timed flushes over the whole event stream (EstimatedNS =
// SampledNS scaled by totalEvents/sampledEvents).
func (p *Pipeline) ObserverCosts() []obs.ObserverCost {
	if p.samples == 0 {
		return nil
	}
	out := []obs.ObserverCost{{Name: p.Rep.Name(), SampledNS: p.repNS.Nanoseconds()}}
	for i := range p.stages {
		out = append(out, obs.ObserverCost{
			Name:      p.stages[i].name,
			SampledNS: p.stages[i].ns.Nanoseconds(),
		})
	}
	scale := float64(p.totalEvs) / float64(p.samples)
	var total int64
	for i := range out {
		out[i].Samples = p.samples
		out[i].EstimatedNS = int64(float64(out[i].SampledNS) * scale)
		total += out[i].EstimatedNS
	}
	if total > 0 {
		for i := range out {
			out[i].SharePct = 100 * float64(out[i].EstimatedNS) / float64(total)
		}
	}
	return out
}

// OnCall implements cpu.CallObserver: the call is buffered in event
// order (the CallEvent already carries the argument values read at
// call time, so deferring its observation cannot change them).
func (p *Pipeline) OnCall(ev *cpu.CallEvent) {
	if p.Local == nil && p.Funcs == nil {
		return
	}
	p.b.calls = append(p.b.calls, *ev)
	p.b.kinds = append(p.b.kinds, itemCall)
	if len(p.b.kinds) >= batchSize {
		p.flush()
	}
}

// OnReturn implements cpu.CallObserver.
func (p *Pipeline) OnReturn(ev *cpu.RetEvent) {
	if p.Local == nil && p.Funcs == nil {
		return
	}
	p.b.rets = append(p.b.rets, *ev)
	p.b.kinds = append(p.b.kinds, itemRet)
	if len(p.b.kinds) >= batchSize {
		p.flush()
	}
}

// CoverageTargets are the repetition-coverage percentages reported for
// the Figure 1 and Figure 4 curves.
var CoverageTargets = []float64{50, 60, 70, 80, 90, 95, 99, 100}

// Report collects every measurement of the paper for one benchmark.
type Report struct {
	Benchmark string

	// Run accounting.
	SkippedInstructions  uint64
	MeasuredInstructions uint64
	ProgramExited        bool
	ExitCode             int32

	// Truncated marks a partial report: the run was cut short
	// mid-window (cancellation, timeout, watchdog, fault, or recovered
	// panic) and every statistic covers only the instructions measured
	// before the cut. TruncatedReason is one of the core.Reason*
	// constants; the error returned alongside the report carries the
	// full diagnostic.
	Truncated       bool   `json:",omitempty"`
	TruncatedReason string `json:",omitempty"`

	// Checkpoint summarizes resumable state on truncated runs: the
	// retire count and age of the newest snapshot a resume would pick
	// up (nil on clean runs and when no checkpoint policy was active).
	Checkpoint *CheckpointStatus `json:",omitempty"`

	// Table 1.
	DynTotal        uint64
	DynRepeatedPct  float64
	StaticTotal     int
	StaticExecuted  int
	StaticExecPct   float64
	StaticRepeatPct float64 // % of executed static insts that repeat

	// Figure 1: % of repeated static instructions covering each of
	// CoverageTargets percent of repetition.
	Fig1Targets []float64
	Fig1        []float64

	// Figure 3 buckets.
	Fig3 [5]float64

	// Table 2.
	UniqueInstances uint64
	AvgRepeats      float64

	// Figure 4.
	Fig4Targets []float64
	Fig4        []float64

	// Table 3 (nil-safe zero value when disabled).
	Table3 taint.Result

	// Table 4.
	Table4 funcanal.Table4

	// Tables 5-7.
	Local local.Result

	// Table 8.
	Table8 funcanal.Table8

	// Figure 5: coverage by top 1..5 argument sets.
	Fig5 []float64

	// Table 9.
	Table9         []local.PERow
	Table9Coverage float64

	// Figure 6: coverage by top 1..5 load values.
	Fig6 []float64

	// Table 10.
	ReusePctAll      float64
	ReusePctRepeated float64

	// Extension: per-instruction-class census (the typed total
	// analysis Section 2 mentions but the paper omits).
	TypeOverallPct    [repetition.NumClasses]float64
	TypePropensityPct [repetition.NumClasses]float64

	// Extension: value-prediction accuracy (Section 7's other
	// exploitation mechanism).
	VPred vpred.Result

	// Extension: per-function profile — self instruction counts with
	// per-function repetition (drill-down behind Tables 4/9).
	Profile []funcanal.FuncRow

	// Extension: Calder-style output-value invariance (the paper's
	// reference [3], contrasted with input+output repetition).
	VProfile vprofile.Result

	// Metrics is the run's observability document: phase wall times,
	// simulator counters, retire rate, and per-observer attributed
	// cost (see internal/obs). Wall-clock values vary run to run.
	Metrics *obs.RunMetrics `json:"RunMetrics,omitempty"`
}

// Collect gathers the report after a run.
func (p *Pipeline) Collect(im *program.Image, name string) *Report {
	p.flush() // observe any tail shorter than a full batch
	r := &Report{
		Benchmark:   name,
		Fig1Targets: CoverageTargets,
		Fig4Targets: CoverageTargets,
	}
	t := p.Rep
	r.DynTotal = t.DynamicInstructions()
	r.DynRepeatedPct = t.RepeatedPercent()
	r.StaticTotal = im.StaticInstructions()
	r.StaticExecuted = t.StaticExecuted()
	if r.StaticTotal > 0 {
		r.StaticExecPct = 100 * float64(r.StaticExecuted) / float64(r.StaticTotal)
	}
	if r.StaticExecuted > 0 {
		r.StaticRepeatPct = 100 * float64(t.StaticRepeated()) / float64(r.StaticExecuted)
	}
	r.Fig1 = t.StaticCoverage(CoverageTargets)
	r.Fig3 = t.InstanceBuckets().Percents()
	r.UniqueInstances, r.AvgRepeats = t.UniqueRepeatableInstances()
	r.Fig4 = t.InstanceCoverage(CoverageTargets)

	if p.Taint != nil {
		r.Table3 = p.Taint.Result()
	}
	if p.Funcs != nil {
		r.Table4 = p.Funcs.Table4()
		r.Table8 = p.Funcs.Table8()
		r.Fig5 = p.Funcs.TopArgSetCoverage(5)
		r.Profile = p.Funcs.PerFunction()
	}
	if p.Local != nil {
		r.Local = p.Local.Result()
		r.Table9, r.Table9Coverage = p.Local.TopPrologueEpilogue(5)
		r.Fig6 = p.Local.TopLoadValueCoverage(5)
	}
	if p.Reuse != nil {
		// Both Table 10 percentages derive from the buffer's own
		// counters, all fed by the single Observe dispatch path.
		r.ReusePctAll = p.Reuse.HitPercent()
		rep := t.RepeatedInstructions()
		if rep > 0 {
			r.ReusePctRepeated = 100 * float64(p.Reuse.HitsRepeated()) / float64(rep)
		}
	}
	r.TypeOverallPct = t.Types.OverallPct()
	r.TypePropensityPct = t.Types.PropensityPct()
	if p.VPred != nil {
		r.VPred = p.VPred.Result(t.DynamicInstructions())
	}
	if p.VProf != nil {
		r.VProfile = p.VProf.Result()
	}
	return r
}

// progressChunk is how many instructions run between run-loop
// checkpoints: cancellation checks, watchdog progress publication,
// and progress callbacks.
const progressChunk = 1 << 18

// runPhase executes up to max instructions (0 = to completion) in
// chunks, checking cancellation, publishing watchdog progress, and
// offering ck a snapshot opportunity at every chunk boundary,
// reporting through cb when non-nil. On cancellation it returns the
// context's cause (the watchdog, timeout, or caller-supplied
// cancellation error).
func runPhase(ctx context.Context, st *runState, ck *ckState, m *cpu.Machine, max uint64, name, phase string, cb func(Progress)) (uint64, error) {
	st.setPhase(phase)
	var done uint64
	var err error
	for !m.Halted && err == nil && (max == 0 || done < max) {
		if ctx.Err() != nil {
			err = cause(ctx)
			break
		}
		chunk := uint64(progressChunk)
		if max > 0 && max-done < chunk {
			chunk = max - done
		}
		var n uint64
		n, err = m.Run(chunk)
		done += n
		st.publish(m.Count, m.PC)
		if err == nil && !m.Halted {
			// Snapshot only consistent state: never after a fault
			// (which may have cut an instruction short) and never once
			// the program completed (the snapshot is removed on a
			// clean finish anyway).
			ck.atBoundary(phase, m.Count, done)
		}
		if cb != nil {
			cb(Progress{Benchmark: name, Phase: phase, Done: done, Total: max, Retired: m.Count})
		}
	}
	if cb != nil {
		cb(Progress{Benchmark: name, Phase: phase, Done: done, Total: max, Retired: m.Count, Final: true})
	}
	return done, err
}

// Run executes a full experiment: fast-forward, attach the pipeline,
// measure, and collect the report with its run metrics. If cfg.Span
// is set Run treats it as the enclosing run span (adding phase
// children and ending it); otherwise it opens its own.
//
// Run degrades instead of discarding: when the run is cut short —
// ctx canceled, cfg.Timeout expired, the watchdog fired, the
// simulator faulted, or a panic was recovered — it returns a partial
// Report flagged Truncated (statistics cover the instructions
// measured so far, metrics included) alongside the error describing
// the cut. Only a nil ctx is replaced with context.Background().
func Run(ctx context.Context, im *program.Image, input []byte, name string, cfg Config) (rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !cfg.ReusePolicy.Valid() {
		// Reject rather than silently fall back: a bogus policy would
		// otherwise measure LRU under a key claiming something else.
		return nil, fmt.Errorf("core: invalid reuse replacement policy %v", cfg.ReusePolicy)
	}
	root := cfg.Span
	if root == nil {
		root = obs.StartSpan("run")
	}
	health := cfg.Health
	if health == nil {
		health = obs.Health
	}

	// Per-run cancel-cause plumbing: the watchdog and timeout record
	// the precise abort reason, which runPhase surfaces via
	// context.Cause.
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	if cfg.Timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeoutCause(ctx, cfg.Timeout,
			&TimeoutError{Benchmark: name, Limit: cfg.Timeout})
		defer cancelTimeout()
	}

	load := root.StartChild("load")
	build := func() (*cpu.Machine, *Pipeline) {
		m := cpu.New(im, input)
		m.NoTranslate = cfg.DisableTranslation
		m.Hook = cfg.Faults.StepHook(ctx, name)
		p := NewPipeline(im, cfg)
		m.Attach(p)
		if o := cfg.Faults.Observer(name); o != nil {
			m.Attach(o)
		}
		return m, p
	}
	m, p := build()

	// Resume before any instruction runs: restore machine and pipeline
	// from the newest snapshot under the policy's key. A snapshot that
	// fails restore-time validation is counted, deleted, and ignored —
	// the freshly built state is discarded (restore may have partially
	// mutated it) and the run starts over.
	var ck *ckState
	var resume *resumeState
	if cp := cfg.Checkpoint; cp.enabled() {
		ck = &ckState{policy: cp, name: name, span: root, m: m, p: p, lastAt: time.Now()}
		if cp.Resume {
			if body, ok := cp.Store.Load(cp.Key); ok {
				sp := root.StartChild("checkpoint.restore")
				rs, rerr := restoreBody(body, ck)
				if rerr == nil && !resumableInto(rs, cfg) {
					rerr = checkpoint.ErrMalformed
				}
				if rerr != nil {
					sp.SetAttr("error", rerr.Error())
					cp.Store.RejectResume(cp.Key)
					m, p = build()
					ck.m, ck.p = m, p
				} else {
					sp.SetAttr("retired", rs.retired)
					sp.SetAttr("phase", rs.phase)
					resume = &rs
					ck.baseSkipped, ck.baseMeasured = rs.skipped, rs.measured
					ck.lastRetired = rs.retired
					cp.Store.Stats.Resumes.Inc()
					if cp.Notify != nil {
						cp.Notify(CheckpointEvent{
							Benchmark: name, Resumed: true,
							Retired: rs.retired, Phase: rs.phase,
						})
					}
				}
				sp.End()
			}
		}
	}
	st := newRunState(name)
	if resume != nil {
		st.publish(m.Count, m.PC)
	}
	st.traceID = obs.TraceIDFrom(ctx)
	if cfg.WatchdogInterval > 0 {
		// Fine-grained retire checkpoints so a slow chunk is not
		// mistaken for a wedged run.
		m.Hook = publishHook(st, m.Hook)
		defer watch(ctx, cancel, st, cfg.WatchdogInterval)()
	}
	if cfg.Runs != nil {
		defer cfg.Runs.remove(cfg.Runs.add(st))
	}
	if ck != nil {
		ck.st = st
	}
	load.End()

	var skipped, measured uint64
	if resume != nil {
		skipped, measured = resume.skipped, resume.measured
	}
	var measure *obs.Span

	// finish assembles the final — possibly partial — report: on a
	// truncated run the collected statistics cover the instructions
	// measured so far and the report travels alongside the error.
	finish := func(runErr error) *Report {
		if measure != nil {
			measure.End()
		}
		collect := root.StartChild("collect")
		r := p.Collect(im, name)
		r.SkippedInstructions = skipped
		r.MeasuredInstructions = measured
		r.ProgramExited = m.Halted
		r.ExitCode = m.ExitCode
		collect.End()
		root.End()
		var measureWall time.Duration
		if measure != nil {
			measureWall = measure.Duration()
		}
		r.Metrics = runMetrics(root, m, p, name, measured, measureWall)
		r.Metrics.TraceID = st.traceID
		if runErr != nil {
			r.Truncated = true
			r.TruncatedReason = TruncationReason(runErr)
			recordTruncation(health, r.TruncatedReason)
			r.Checkpoint = ck.status()
		}
		return r
	}

	// Panic isolation: a panic in the simulator, an observer, or
	// collection becomes a *PanicError with the partial report still
	// assembled when the pipeline state allows it.
	defer func() {
		if pv := recover(); pv != nil {
			perr := NewPanicError(name, pv)
			health.PanicsRecovered.Inc()
			rep, err = safeFinish(finish, perr), perr
		}
	}()

	if remaining := cfg.SkipInstructions - skipped; cfg.SkipInstructions > 0 &&
		(resume == nil || resume.phase == "skip") && remaining > 0 {
		// Warmup: the pipeline propagates dataflow state (so tags
		// from initialization-time input reads survive) but counts
		// nothing. A resumed run finishes the remaining budget only —
		// max=0 would mean run-to-completion, hence the guard.
		skip := root.StartChild("skip")
		done, serr := runPhase(ctx, st, ck, m, remaining, name, "skip", cfg.Progress)
		skipped += done
		skip.End()
		if serr != nil {
			return finish(serr), fmt.Errorf("core: warmup: %w", serr)
		}
	}
	if ck != nil {
		ck.baseSkipped = skipped
	}

	p.SetCounting(true)
	measure = root.StartChild("measure")
	measureMax := cfg.MeasureInstructions
	if cfg.MeasureInstructions > 0 {
		measureMax = cfg.MeasureInstructions - measured
	}
	if measureMax > 0 || cfg.MeasureInstructions == 0 {
		done, merr := runPhase(ctx, st, ck, m, measureMax, name, "measure", cfg.Progress)
		measured += done
		if merr != nil {
			return finish(merr), fmt.Errorf("core: measure: %w", merr)
		}
	}
	if ck != nil {
		// A completed run can't be "resumed": drop its snapshot.
		ck.policy.Store.Remove(ck.policy.Key)
	}
	return finish(nil), nil
}

// resumableInto checks a restored snapshot's phase bookkeeping against
// the config it is resuming under: the checkpoint key already pins the
// measurement config, so a mismatch here means a forged or misfiled
// snapshot and rejects the resume.
func resumableInto(rs resumeState, cfg Config) bool {
	if rs.phase == "skip" {
		return cfg.SkipInstructions > 0 && rs.skipped <= cfg.SkipInstructions && rs.measured == 0
	}
	if rs.skipped != cfg.SkipInstructions {
		// Measure-phase snapshots only exist after the whole skip
		// budget ran.
		return false
	}
	return cfg.MeasureInstructions == 0 || rs.measured <= cfg.MeasureInstructions
}

// safeFinish runs finish under its own recover: after a mid-update
// panic the pipeline state may be inconsistent enough that collection
// panics too, in which case the partial report is dropped and only
// the error survives.
func safeFinish(finish func(error) *Report, perr error) (rep *Report) {
	defer func() {
		if recover() != nil {
			rep = nil
		}
	}()
	return finish(perr)
}

// runMetrics assembles the observability document for one run.
func runMetrics(root *obs.Span, m *cpu.Machine, p *Pipeline, name string, measured uint64, measureWall time.Duration) *obs.RunMetrics {
	rm := &obs.RunMetrics{
		Benchmark:           name,
		Phases:              root.Tree(),
		ObserverSampleEvery: p.sampleEvery,
		Observers:           p.ObserverCosts(),
		Sim: obs.SimCounters{
			Retired:       m.Count,
			Loads:         m.Stats.Loads,
			Stores:        m.Stats.Stores,
			Branches:      m.Stats.Branches,
			BranchesTaken: m.Stats.BranchesTaken,
			Syscalls:      m.Stats.Syscalls,
		},
	}
	for k, n := range m.Stats.Kinds {
		if n > 0 {
			rm.Sim.ClassMix = append(rm.Sim.ClassMix, obs.ClassCount{
				Class: isa.Kind(k).String(), Count: n,
			})
		}
	}
	if secs := measureWall.Seconds(); secs > 0 {
		rm.RetireRateMIPS = float64(measured) / secs / 1e6
	}
	return rm
}
