// Package core wires the analyses together: it runs a program on the
// functional simulator with the repetition tracker, global (taint)
// analysis, function-level analysis, local analysis, and reuse buffer
// attached, and collects every table and figure of the paper into a
// Report.
package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/funcanal"
	"repro/internal/local"
	"repro/internal/program"
	"repro/internal/repetition"
	"repro/internal/reuse"
	"repro/internal/taint"
	"repro/internal/vpred"
	"repro/internal/vprofile"
)

// Config controls one experiment run.
type Config struct {
	// SkipInstructions are executed before the analyses attach,
	// mirroring the paper's fast-forward past initialization.
	SkipInstructions uint64
	// MeasureInstructions bounds the analyzed window (0 = to
	// completion).
	MeasureInstructions uint64
	// MaxInstances is the per-static-instruction unique-instance
	// buffer limit (0 = the paper's 2000).
	MaxInstances int
	// ReuseEntries/ReuseAssoc size the reuse buffer (0 = the paper's
	// 8K, 4-way).
	ReuseEntries int
	ReuseAssoc   int
	// VPredEntries sizes the value-predictor tables (0 = 8192).
	VPredEntries int
	// InputVariant selects the workload input data set (0 or 1 = the
	// standard inputs, 2+ = alternates) — the paper's input
	// sensitivity check (Section 3).
	InputVariant int
	// Analyses toggles; a zero Config enables everything.
	DisableTaint bool
	DisableLocal bool
	DisableFunc  bool
	DisableReuse bool
	DisableVPred bool
	DisableVProf bool
}

// Pipeline dispatches simulator events to the enabled analyses in the
// order the measurements require: the repetition verdict for each
// instruction feeds the category analyses and the reuse comparison.
type Pipeline struct {
	Rep   *repetition.Tracker
	Taint *taint.Analysis
	Local *local.Analysis
	Funcs *funcanal.Analysis
	Reuse *reuse.Buffer
	VPred *vpred.Predictor
	VProf *vprofile.Profiler

	counting          bool
	reuseHits         uint64
	reuseHitsRepeated uint64
}

// SetCounting opens (or closes) the measurement window. While closed,
// dataflow state (taint tags, local frames, call stacks) still
// propagates so the analyses are correct when the window opens, but no
// statistics accumulate and no instance buffers fill — the paper's
// skip-then-measure methodology.
func (p *Pipeline) SetCounting(on bool) {
	p.counting = on
	if p.Taint != nil {
		p.Taint.Counting = on
	}
	if p.Local != nil {
		p.Local.Counting = on
	}
	if p.Funcs != nil {
		p.Funcs.Counting = on
	}
}

// NewPipeline builds the analysis pipeline for an image.
func NewPipeline(im *program.Image, cfg Config) *Pipeline {
	p := &Pipeline{Rep: repetition.NewTracker()}
	if cfg.MaxInstances > 0 {
		p.Rep.MaxInstances = cfg.MaxInstances
	}
	if !cfg.DisableTaint {
		p.Taint = taint.New(im)
	}
	if !cfg.DisableLocal {
		p.Local = local.New(im)
	}
	if !cfg.DisableFunc {
		p.Funcs = funcanal.New(im)
	}
	if !cfg.DisableReuse {
		p.Reuse = reuse.New(cfg.ReuseEntries, cfg.ReuseAssoc)
	}
	if !cfg.DisableVPred {
		p.VPred = vpred.New(cfg.VPredEntries)
	}
	if !cfg.DisableVProf {
		p.VProf = vprofile.New()
	}
	return p
}

// OnInst implements cpu.Observer.
func (p *Pipeline) OnInst(ev *cpu.Event) {
	repeated := false
	if p.counting {
		repeated = p.Rep.Observe(ev)
	}
	if p.Taint != nil {
		p.Taint.Observe(ev, repeated)
	}
	if p.Local != nil {
		p.Local.Observe(ev, repeated)
	}
	if p.Funcs != nil {
		p.Funcs.Observe(ev, repeated)
	}
	if p.Reuse != nil && p.counting {
		if p.Reuse.Observe(ev, repeated) {
			p.reuseHits++
			if repeated {
				p.reuseHitsRepeated++
			}
		}
	}
	if p.VPred != nil && p.counting {
		p.VPred.Observe(ev)
	}
	if p.VProf != nil && p.counting {
		p.VProf.Observe(ev)
	}
}

// OnCall implements cpu.CallObserver.
func (p *Pipeline) OnCall(ev *cpu.CallEvent) {
	if p.Local != nil {
		p.Local.OnCall(ev)
	}
	if p.Funcs != nil {
		p.Funcs.OnCall(ev)
	}
}

// OnReturn implements cpu.CallObserver.
func (p *Pipeline) OnReturn(ev *cpu.RetEvent) {
	if p.Local != nil {
		p.Local.OnReturn(ev)
	}
	if p.Funcs != nil {
		p.Funcs.OnReturn(ev)
	}
}

// CoverageTargets are the repetition-coverage percentages reported for
// the Figure 1 and Figure 4 curves.
var CoverageTargets = []float64{50, 60, 70, 80, 90, 95, 99, 100}

// Report collects every measurement of the paper for one benchmark.
type Report struct {
	Benchmark string

	// Run accounting.
	SkippedInstructions  uint64
	MeasuredInstructions uint64
	ProgramExited        bool
	ExitCode             int32

	// Table 1.
	DynTotal        uint64
	DynRepeatedPct  float64
	StaticTotal     int
	StaticExecuted  int
	StaticExecPct   float64
	StaticRepeatPct float64 // % of executed static insts that repeat

	// Figure 1: % of repeated static instructions covering each of
	// CoverageTargets percent of repetition.
	Fig1Targets []float64
	Fig1        []float64

	// Figure 3 buckets.
	Fig3 [5]float64

	// Table 2.
	UniqueInstances uint64
	AvgRepeats      float64

	// Figure 4.
	Fig4Targets []float64
	Fig4        []float64

	// Table 3 (nil-safe zero value when disabled).
	Table3 taint.Result

	// Table 4.
	Table4 funcanal.Table4

	// Tables 5-7.
	Local local.Result

	// Table 8.
	Table8 funcanal.Table8

	// Figure 5: coverage by top 1..5 argument sets.
	Fig5 []float64

	// Table 9.
	Table9         []local.PERow
	Table9Coverage float64

	// Figure 6: coverage by top 1..5 load values.
	Fig6 []float64

	// Table 10.
	ReusePctAll      float64
	ReusePctRepeated float64

	// Extension: per-instruction-class census (the typed total
	// analysis Section 2 mentions but the paper omits).
	TypeOverallPct    [repetition.NumClasses]float64
	TypePropensityPct [repetition.NumClasses]float64

	// Extension: value-prediction accuracy (Section 7's other
	// exploitation mechanism).
	VPred vpred.Result

	// Extension: per-function profile — self instruction counts with
	// per-function repetition (drill-down behind Tables 4/9).
	Profile []funcanal.FuncRow

	// Extension: Calder-style output-value invariance (the paper's
	// reference [3], contrasted with input+output repetition).
	VProfile vprofile.Result
}

// Collect gathers the report after a run.
func (p *Pipeline) Collect(im *program.Image, name string) *Report {
	r := &Report{
		Benchmark:   name,
		Fig1Targets: CoverageTargets,
		Fig4Targets: CoverageTargets,
	}
	t := p.Rep
	r.DynTotal = t.DynamicInstructions()
	r.DynRepeatedPct = t.RepeatedPercent()
	r.StaticTotal = im.StaticInstructions()
	r.StaticExecuted = t.StaticExecuted()
	if r.StaticTotal > 0 {
		r.StaticExecPct = 100 * float64(r.StaticExecuted) / float64(r.StaticTotal)
	}
	if r.StaticExecuted > 0 {
		r.StaticRepeatPct = 100 * float64(t.StaticRepeated()) / float64(r.StaticExecuted)
	}
	r.Fig1 = t.StaticCoverage(CoverageTargets)
	r.Fig3 = t.InstanceBuckets().Percents()
	r.UniqueInstances, r.AvgRepeats = t.UniqueRepeatableInstances()
	r.Fig4 = t.InstanceCoverage(CoverageTargets)

	if p.Taint != nil {
		r.Table3 = p.Taint.Result()
	}
	if p.Funcs != nil {
		r.Table4 = p.Funcs.Table4()
		r.Table8 = p.Funcs.Table8()
		r.Fig5 = p.Funcs.TopArgSetCoverage(5)
		r.Profile = p.Funcs.PerFunction()
	}
	if p.Local != nil {
		r.Local = p.Local.Result()
		r.Table9, r.Table9Coverage = p.Local.TopPrologueEpilogue(5)
		r.Fig6 = p.Local.TopLoadValueCoverage(5)
	}
	if p.Reuse != nil {
		r.ReusePctAll = p.Reuse.HitPercent()
		rep := t.RepeatedInstructions()
		if rep > 0 {
			r.ReusePctRepeated = 100 * float64(p.reuseHitsRepeated) / float64(rep)
		}
	}
	r.TypeOverallPct = t.Types.OverallPct()
	r.TypePropensityPct = t.Types.PropensityPct()
	if p.VPred != nil {
		r.VPred = p.VPred.Result(t.DynamicInstructions())
	}
	if p.VProf != nil {
		r.VProfile = p.VProf.Result()
	}
	return r
}

// Run executes a full experiment: fast-forward, attach the pipeline,
// measure, and collect the report.
func Run(im *program.Image, input []byte, name string, cfg Config) (*Report, error) {
	m := cpu.New(im, input)
	p := NewPipeline(im, cfg)
	m.Attach(p)
	var skipped uint64
	if cfg.SkipInstructions > 0 {
		// Warmup: the pipeline propagates dataflow state (so tags
		// from initialization-time input reads survive) but counts
		// nothing.
		var err error
		skipped, err = m.Run(cfg.SkipInstructions)
		if err != nil {
			return nil, fmt.Errorf("core: warmup: %w", err)
		}
	}
	p.SetCounting(true)
	measured, err := m.Run(cfg.MeasureInstructions)
	if err != nil {
		return nil, fmt.Errorf("core: measure: %w", err)
	}
	r := p.Collect(im, name)
	r.SkippedInstructions = skipped
	r.MeasuredInstructions = measured
	r.ProgramExited = m.Halted
	r.ExitCode = m.ExitCode
	return r, nil
}
