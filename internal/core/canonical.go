package core

// Canonical report form for content-addressed caching and the golden
// corpus: because a run is fully deterministic in (workload source,
// input variant, measurement-affecting Config fields, simulator
// version), the same key always yields the same Report content — the
// only nondeterministic part is the RunMetrics wall-clock document,
// which the canonical form strips. See DESIGN.md §12.

import (
	"encoding/json"
	"fmt"

	"repro/internal/repetition"
	"repro/internal/reuse"
	"repro/internal/vpred"
)

// MeasurementVersion identifies the measurement semantics of this
// build: the ISA, the simulator, the analyses, and the Report schema.
// It is folded into every cache fingerprint, so bumping it — required
// whenever a change alters what any Report field means or contains —
// invalidates all previously cached results at once.
const MeasurementVersion = 1

// MeasurementKey renders the Config fields that affect a Report's
// measured content as a canonical string fragment, with zero-value
// defaults resolved to the concrete sizes they select. Two Configs
// with equal MeasurementKeys produce byte-identical canonical reports;
// fields that only shape the run's execution (Parallel, Timeout,
// WatchdogInterval, ObserverSampleEvery, DisableTranslation,
// Checkpoint — a resumed run reproduces the uninterrupted run's bytes
// exactly — Progress, Span) are excluded,
// and fault injection is handled by refusing to cache (see
// resultcache.Cacheable).
func (c Config) MeasurementKey() string {
	instances := c.MaxInstances
	if instances <= 0 {
		instances = repetition.DefaultMaxInstances
	}
	reuseEntries := c.ReuseEntries
	if reuseEntries == 0 {
		reuseEntries = reuse.DefaultEntries
	}
	reuseAssoc := c.ReuseAssoc
	if reuseAssoc == 0 {
		reuseAssoc = reuse.DefaultAssoc
	}
	vpredEntries := c.VPredEntries
	if vpredEntries == 0 {
		vpredEntries = vpred.DefaultEntries
	}
	variant := c.InputVariant
	if variant <= 0 {
		variant = 1
	}
	return fmt.Sprintf(
		"skip=%d|measure=%d|instances=%d|reuse=%d/%d/%s|vpred=%d|variant=%d|taint=%t|local=%t|func=%t|reusebuf=%t|vpredon=%t|vprof=%t",
		c.SkipInstructions, c.MeasureInstructions, instances,
		reuseEntries, reuseAssoc, c.ReusePolicy, vpredEntries, variant,
		!c.DisableTaint, !c.DisableLocal, !c.DisableFunc,
		!c.DisableReuse, !c.DisableVPred, !c.DisableVProf)
}

// CanonicalReport returns a shallow copy of r with the per-run
// observability documents (wall times, retire rates, checkpoint ages
// — the only run-to-run-varying fields) removed, leaving exactly the
// deterministic measured content.
func CanonicalReport(r *Report) *Report {
	cp := *r
	cp.Metrics = nil
	cp.Checkpoint = nil
	return &cp
}

// CanonicalJSON renders the canonical form of r as indented JSON with
// a trailing newline. It is the single serialization used by the
// result cache, the report server, and the golden corpus, so all three
// byte-compare against the same form. Marshaling is deterministic
// (struct fields in declaration order, map keys sorted), and a
// decode/re-encode round trip reproduces the same bytes — the property
// the disk tier uses to detect corrupt entries.
func CanonicalJSON(r *Report) ([]byte, error) {
	b, err := json.MarshalIndent(CanonicalReport(r), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
