package program

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Disassemble writes a listing of the image's text segment: function
// headers, per-instruction addresses, binary encodings, and assembler
// mnemonics, followed by a data-segment summary. Branch and jump
// targets are annotated with their resolved addresses (and function
// names for calls).
func Disassemble(im *Image, w io.Writer) error {
	for pc := TextBase; pc < TextBase+uint32(len(im.Text))*4; pc += 4 {
		if f := im.FuncByEntry(pc); f != nil {
			fmt.Fprintf(w, "\n%s:  (args=%d, %d instructions)\n", f.Name, f.NArgs, f.Size())
		}
		in, err := im.InstAt(pc)
		if err != nil {
			return err
		}
		word, err := isa.Encode(in)
		if err != nil {
			return fmt.Errorf("program: disassemble pc %#x: %w", pc, err)
		}
		fmt.Fprintf(w, "  %08x:  %08x  %-30s", pc, word, in.String())
		switch isa.OpKind(in.Op) {
		case isa.KindBranch:
			target := uint32(int64(pc) + 4 + int64(in.Imm)*4)
			fmt.Fprintf(w, " # -> %#x", target)
		case isa.KindJump:
			target := (pc+4)&0xf0000000 | uint32(in.Imm)<<2
			fmt.Fprintf(w, " # -> %#x", target)
			if f := im.FuncByEntry(target); f != nil {
				fmt.Fprintf(w, " <%s>", f.Name)
			}
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\ndata segment: %d bytes at %#x (%d initialized), heap base %#x\n",
		len(im.Data), DataBase, im.InitializedLen, im.HeapBase())
	fmt.Fprintf(w, "entry point: %#x", im.Entry)
	if f := im.FuncByEntry(im.Entry); f != nil {
		fmt.Fprintf(w, " <%s>", f.Name)
	}
	fmt.Fprintln(w)
	return nil
}
