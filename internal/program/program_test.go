package program

import (
	"testing"

	"repro/internal/isa"
)

func testImage() *Image {
	im := &Image{
		Text:           make([]isa.Inst, 10),
		Data:           make([]byte, 100),
		InitializedLen: 40,
		Symbols:        map[string]uint32{"main": TextBase},
		Funcs: []Func{
			{Name: "helper", Entry: TextBase + 20, NArgs: 2},
			{Name: "main", Entry: TextBase, NArgs: 0},
		},
	}
	im.Finalize()
	return im
}

func TestFinalizeSortsAndFillsEnds(t *testing.T) {
	im := testImage()
	if im.Funcs[0].Name != "main" || im.Funcs[1].Name != "helper" {
		t.Fatalf("funcs not sorted: %+v", im.Funcs)
	}
	if im.Funcs[0].End != TextBase+20 {
		t.Errorf("main end = %#x", im.Funcs[0].End)
	}
	if im.Funcs[1].End != TextBase+40 { // end of text
		t.Errorf("helper end = %#x", im.Funcs[1].End)
	}
	if im.Funcs[1].Size() != 5 {
		t.Errorf("helper size = %d", im.Funcs[1].Size())
	}
}

func TestFuncLookup(t *testing.T) {
	im := testImage()
	if f := im.FuncByEntry(TextBase + 20); f == nil || f.Name != "helper" {
		t.Errorf("FuncByEntry = %+v", f)
	}
	if f := im.FuncByEntry(TextBase + 24); f != nil {
		t.Error("FuncByEntry of non-entry should be nil")
	}
	if f := im.FuncAt(TextBase + 8); f == nil || f.Name != "main" {
		t.Errorf("FuncAt(main+8) = %+v", f)
	}
	if f := im.FuncAt(TextBase + 36); f == nil || f.Name != "helper" {
		t.Errorf("FuncAt(helper interior) = %+v", f)
	}
	if f := im.FuncAt(TextBase + 100); f != nil {
		t.Error("FuncAt past text should be nil")
	}
}

func TestInstAt(t *testing.T) {
	im := testImage()
	if _, err := im.InstAt(TextBase); err != nil {
		t.Errorf("InstAt(base): %v", err)
	}
	if _, err := im.InstAt(TextBase + 2); err == nil {
		t.Error("unaligned pc should fail")
	}
	if _, err := im.InstAt(TextBase + 400); err == nil {
		t.Error("out-of-text pc should fail")
	}
	if _, err := im.InstAt(TextBase - 4); err == nil {
		t.Error("below-text pc should fail")
	}
}

func TestAddressClassifiers(t *testing.T) {
	im := testImage()
	if !im.IsDataAddr(DataBase) || !im.IsDataAddr(DataBase+99) {
		t.Error("data range misclassified")
	}
	if im.IsDataAddr(DataBase + 100) {
		t.Error("past-data address classified as data")
	}
	if !im.IsInitializedData(DataBase+39) || im.IsInitializedData(DataBase+40) {
		t.Error("initialized prefix misclassified")
	}
	hb := im.HeapBase()
	if hb < DataBase+100 || hb%0x1000 != 0 {
		t.Errorf("heap base = %#x", hb)
	}
}

func TestLayoutConstants(t *testing.T) {
	if GPValue != DataBase+0x8000 {
		t.Error("gp must anchor the small-data window")
	}
	if StackTop <= StackLimit {
		t.Error("stack bounds inverted")
	}
	if TextBase >= DataBase {
		t.Error("text must precede data")
	}
}
