package program_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/program"
)

func TestDisassemble(t *testing.T) {
	im, err := asm.Assemble(`
		.data
v:		.word 9
		.text
		.func main 0
main:
		jal helper
		beq $v0, $zero, main
		jr $ra
		.endfunc
		.func helper 1
helper:
		lw $v0, %gp(v)
		jr $ra
		.endfunc
	`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := program.Disassemble(im, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"main:", "helper:", "(args=1", "<helper>", "jal", "jr $ra",
		"data segment: ", "entry point: 0x400000 <main>",
		"# -> 0x400000", // the beq back-edge annotation
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// Every text instruction produced one listing line with its
	// encoding.
	if got := strings.Count(out, "  00400"); got < len(im.Text) {
		t.Errorf("only %d instruction lines for %d instructions", got, len(im.Text))
	}
}
