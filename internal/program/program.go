// Package program defines the linked program image produced by the
// assembler (and, upstream, the MiniC compiler): the text segment as
// decoded instructions, the initialized data segment, the symbol table,
// and per-function metadata consumed by the analyses.
package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Memory layout constants (classic MIPS/SimpleScalar-style map).
const (
	// TextBase is the address of the first instruction.
	TextBase uint32 = 0x00400000
	// DataBase is the start of the initialized data segment.
	DataBase uint32 = 0x10000000
	// GPValue anchors $gp in the middle of the small-data area so that
	// 16-bit signed offsets reach 64 KiB of globals.
	GPValue uint32 = DataBase + 0x8000
	// StackTop is the initial $sp. The stack grows down.
	StackTop uint32 = 0x7fff0000
	// StackLimit bounds stack growth; addresses in [StackLimit,
	// StackTop] are classified as stack by the analyses.
	StackLimit uint32 = 0x7f000000
)

// Func is static metadata for one function, emitted by the assembler's
// .func directive (the MiniC compiler generates these automatically).
type Func struct {
	Name  string
	Entry uint32 // address of the first instruction
	End   uint32 // address one past the last instruction
	NArgs int    // number of declared arguments
}

// Size returns the static size of the function in instructions.
func (f *Func) Size() int { return int(f.End-f.Entry) / 4 }

// Image is a loaded program ready for simulation.
type Image struct {
	// Text holds the decoded instructions; the instruction at address
	// TextBase+4*i is Text[i].
	Text []isa.Inst
	// Data is the initialized data segment, loaded at DataBase.
	// InitializedLen bytes of it come from initializers; the rest
	// (zero-filled .space / .bss-style allocations) is zeroed.
	Data []byte
	// InitializedLen is the number of leading bytes of Data that carry
	// explicit initializers. The global (taint) analysis tags exactly
	// these words as "global initialized data".
	InitializedLen int
	// Entry is the address of the first instruction to execute.
	Entry uint32
	// Symbols maps label names to addresses.
	Symbols map[string]uint32
	// Funcs lists function metadata sorted by entry address.
	Funcs []Func

	funcByEntry map[uint32]*Func
}

// HeapBase returns the first address past the data segment, rounded to a
// page; the simulator's brk starts here.
func (im *Image) HeapBase() uint32 {
	end := DataBase + uint32(len(im.Data))
	return (end + 0xfff) &^ 0xfff
}

// InstAt returns the instruction at address pc, or an error if pc is
// outside the text segment or unaligned.
func (im *Image) InstAt(pc uint32) (isa.Inst, error) {
	if pc%4 != 0 {
		return isa.Inst{}, fmt.Errorf("program: unaligned pc 0x%x", pc)
	}
	i := int(pc-TextBase) / 4
	if pc < TextBase || i >= len(im.Text) {
		return isa.Inst{}, fmt.Errorf("program: pc 0x%x outside text", pc)
	}
	return im.Text[i], nil
}

// Finalize sorts Funcs, fills in their End addresses where the assembler
// left them zero, and builds the entry-point index. It must be called
// once after the image is constructed.
func (im *Image) Finalize() {
	sort.Slice(im.Funcs, func(i, j int) bool { return im.Funcs[i].Entry < im.Funcs[j].Entry })
	textEnd := TextBase + uint32(len(im.Text))*4
	for i := range im.Funcs {
		if im.Funcs[i].End == 0 {
			if i+1 < len(im.Funcs) {
				im.Funcs[i].End = im.Funcs[i+1].Entry
			} else {
				im.Funcs[i].End = textEnd
			}
		}
	}
	im.funcByEntry = make(map[uint32]*Func, len(im.Funcs))
	for i := range im.Funcs {
		im.funcByEntry[im.Funcs[i].Entry] = &im.Funcs[i]
	}
}

// FuncByEntry returns the function whose entry point is pc, or nil.
func (im *Image) FuncByEntry(pc uint32) *Func {
	return im.funcByEntry[pc]
}

// FuncAt returns the function containing address pc, or nil.
func (im *Image) FuncAt(pc uint32) *Func {
	i := sort.Search(len(im.Funcs), func(i int) bool { return im.Funcs[i].Entry > pc })
	if i == 0 {
		return nil
	}
	f := &im.Funcs[i-1]
	if pc >= f.End {
		return nil
	}
	return f
}

// StaticInstructions returns the size of the text segment in
// instructions (the paper's "Total static instructions").
func (im *Image) StaticInstructions() int { return len(im.Text) }

// IsDataAddr reports whether addr falls in the static data segment.
func (im *Image) IsDataAddr(addr uint32) bool {
	return addr >= DataBase && addr < DataBase+uint32(len(im.Data))
}

// IsInitializedData reports whether addr falls in the explicitly
// initialized prefix of the data segment.
func (im *Image) IsInitializedData(addr uint32) bool {
	return addr >= DataBase && addr < DataBase+uint32(im.InitializedLen)
}
