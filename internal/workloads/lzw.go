package workloads

// lzw is the analog of SPEC95 "compress": LZW compression over
// generated text, with the classic hash-probed code table and the
// getcode/output/readbytes function structure of compress (Table 9
// lists exactly those three functions). Repetition is the lowest of
// the suite (paper: 56.9%) because the hash-table state changes
// continuously with the external input.
var lzw = &Workload{
	Name:        "lzw",
	Analog:      "compress",
	Description: "LZW compressor with hash-probed code table and bit output",
	Input:       lzwInput,
	Source:      lzwSource,
}

// lzwInput carries only the generator configuration (like bigtest.in,
// which parameterizes SPEC compress's internally generated corpus):
// size in KiB and a seed. The compressible text itself is synthesized
// inside the program, which is why the paper measures only ~2% of
// compress's slices as external input.
func lzwInput(variant int) []byte {
	if variant > 1 {
		return []byte("16 7777\n")
	}
	return []byte("16 101\n")
}

const lzwSource = `
int htab[5003];	/* hash table: packed (prefix<<8|char), -1 empty */
int codetab[5003];
char inbuf[16384];
int inlen;
int inpos;
int genseed;

/* Per-round vocabulary: 64 generated words, so the corpus is
   compressible within a round but diverse across rounds (like a
   stream of fresh text). */
char wordbuf[640];
int wordoff[64];
int wordlen[64];

int genrand(int n) {
	genseed = genseed * 1103515245 + 12345;
	if (genseed < 0) { genseed = -genseed; }
	return (genseed >> 8) % n;
}

void genwords() {
	int w;
	int off;
	int len;
	int i;
	off = 0;
	for (w = 0; w < 64; w++) {
		len = 2 + genrand(7);
		wordoff[w] = off;
		wordlen[w] = len;
		for (i = 0; i < len; i++) {
			wordbuf[off] = 'a' + genrand(26);
			off++;
		}
	}
}

/* Build the compressible corpus in memory (SPEC compress generates its
   own test data from the harness parameters). */
void genbytes(int kib, int seed) {
	int limit;
	int w;
	int src;
	int n;
	genseed = seed;
	genwords();
	limit = kib * 1024;
	if (limit > 16384) { limit = 16384; }
	inlen = 0;
	while (inlen < limit - 12) {
		w = genrand(64);
		src = wordoff[w];
		n = wordlen[w];
		while (n > 0 && inlen < limit) {
			inbuf[inlen] = wordbuf[src];
			inlen++;
			src++;
			n--;
		}
		inbuf[inlen] = ' ';
		inlen++;
		if (genrand(8) == 0) {
			inbuf[inlen] = 10;
			inlen++;
		}
	}
}

int readnum() {
	int c;
	int v;
	v = 0;
	c = getchar();
	while (c == ' ' || c == 10) { c = getchar(); }
	while (c >= '0' && c <= '9') {
		v = v * 10 + (c - '0');
		c = getchar();
	}
	return v;
}

int freecode;
int nbitsout;
int bitbuf;
int bitcnt;
int outcount;
int outsum;

/* Deliver output bytes (compress's output()). */
void output(int code) {
	bitbuf = (bitbuf << 13) | code;
	bitcnt += 13;
	while (bitcnt >= 8) {
		bitcnt -= 8;
		outsum = (outsum * 31 + ((bitbuf >> bitcnt) & 255)) & 0xffffff;
		outcount++;
	}
}

/* Next input byte (compress's readbytes()). */
int readbytes() {
	int c;
	if (inpos >= inlen) { return -1; }
	c = inbuf[inpos];
	inpos++;
	return c;
}

void cl_hash() {
	int i;
	for (i = 0; i < 5003; i++) { htab[i] = -1; }
	freecode = 257;
}

/* Find or insert (prefix, c); returns the code or -1 if inserted
   (compress's getcode() probe loop). */
int getcode(int prefix, int c) {
	int key;
	int h;
	int disp;
	key = (prefix << 8) | c;
	h = ((c << 4) ^ prefix) % 5003;
	if (h == 0) { disp = 1; } else { disp = 5003 - h; }
	while (1) {
		if (htab[h] == -1) {
			if (freecode < 4096) {
				htab[h] = key;
				codetab[h] = freecode;
				freecode++;
			}
			return -1;
		}
		if (htab[h] == key) { return codetab[h]; }
		h = h - disp;
		if (h < 0) { h = h + 5003; }
	}
}

int compress_all() {
	int prefix;
	int c;
	int code;
	cl_hash();
	inpos = 0;
	prefix = readbytes();
	if (prefix < 0) { return 0; }
	c = readbytes();
	while (c >= 0) {
		code = getcode(prefix, c);
		if (code >= 0) {
			prefix = code;
		} else {
			output(prefix);
			prefix = c;
		}
		c = readbytes();
	}
	output(prefix);
	return outcount;
}

int main() {
	int round;
	int kib;
	int seed;
	kib = readnum();
	seed = readnum();
	for (round = 0; round < 1000000; round++) {
		/* fresh data every round: compress streams new input rather
		   than recompressing one buffer */
		genbytes(kib, seed + round * 7);
		compress_all();
		if ((round & 3) == 0) {
			print_int(outsum);
			putchar(10);
		}
	}
	return outsum & 127;
}
`
