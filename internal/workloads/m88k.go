package workloads

// m88k is the analog of SPEC95 "m88ksim": an instruction-set simulator
// for a small accumulator-style guest machine, running a fixed guest
// program over data read from the input (the ctl.in analog). The
// dispatch loop, machine-description helpers (Data_path, test_issue,
// Pc, display_trace — the paper's Table 9 names), and the smallness of
// the guest state give it the extreme repetition the paper reports
// (98.8% dynamic repetition).
var m88k = &Workload{
	Name:        "m88k",
	Analog:      "m88ksim",
	Description: "toy register-machine simulator running a guest checksum program",
	Input:       m88kInput,
	Source:      m88kSource,
}

// m88kInput builds the config + guest data image: two decimal config
// lines then 512 bytes of guest memory contents.
func m88kInput(variant int) []byte {
	r := newLCG(uint64(88 + 13*variant))
	var out []byte
	cfg := "1000000\n250\n"
	if variant > 1 {
		cfg = "1000000\n199\n"
	}
	out = append(out, []byte(cfg)...)
	for i := 0; i < 512; i++ {
		out = append(out, byte(r.intn(256)))
	}
	return out
}

const m88kSource = `
enum {
	G_HALT, G_LI, G_MOV, G_ADD, G_SUB, G_MUL, G_LD, G_ST,
	G_BEQ, G_BNE, G_JMP, G_ADDI, G_SHLI, G_SHRI,
	G_AND, G_OR, G_XOR, G_JAL, G_RET, G_OUT
};

int gregs[16];
int *gmem;	/* heap-allocated guest memory */
int gpc;
int grunning;
int gsteps;
int traceacc;
int outacc;

char gdata[512];

/* The guest program: fills memory with a function of the loop index,
   then sums and mixes it through a subroutine. Encoding:
   op*16777216 + rd*1048576 + rs*65536 + imm. */
int gprog[64] = {
	G_LI  * 16777216 +  1 * 1048576,                /*  0: r1 = 0      */
	G_LI  * 16777216 +  2 * 1048576 + 256,          /*  1: r2 = 256    */
	G_LI  * 16777216 +  3 * 1048576,                /*  2: r3 = 0      */
	G_MOV * 16777216 +  4 * 1048576 + 1 * 65536,    /*  3: r4 = r1     */
	G_ADD * 16777216 +  4 * 1048576 + 1 * 65536,    /*  4: r4 += r1    */
	G_ADD * 16777216 +  4 * 1048576 + 1 * 65536,    /*  5: r4 += r1    */
	G_ADDI* 16777216 +  4 * 1048576 + 1,            /*  6: r4 += 1     */
	G_LD  * 16777216 +  5 * 1048576 + 1 * 65536,    /*  7: r5 = m[r1]  */
	G_ADD * 16777216 +  4 * 1048576 + 5 * 65536,    /*  8: r4 += r5    */
	G_ST  * 16777216 +  4 * 1048576 + 1 * 65536,    /*  9: m[r1] = r4  */
	G_ADDI* 16777216 +  1 * 1048576 + 1,            /* 10: r1 += 1     */
	G_BNE * 16777216 +  1 * 1048576 + 2 * 65536 + 3,/* 11: loop to 3   */
	G_LI  * 16777216 +  1 * 1048576,                /* 12: r1 = 0      */
	G_LD  * 16777216 +  4 * 1048576 + 1 * 65536,    /* 13: r4 = m[r1]  */
	G_ADD * 16777216 +  3 * 1048576 + 4 * 65536,    /* 14: r3 += r4    */
	G_JAL * 16777216 + 24,                          /* 15: call mixer  */
	G_ADDI* 16777216 +  1 * 1048576 + 1,            /* 16: r1 += 1     */
	G_BNE * 16777216 +  1 * 1048576 + 2 * 65536 + 13,/*17: loop to 13  */
	G_JMP * 16777216 + 32,                          /* 18: third phase */
	G_HALT* 16777216,                               /* 19: (unused)    */
	0, 0, 0, 0,
	G_MOV * 16777216 +  5 * 1048576 + 3 * 65536,    /* 24: r5 = r3     */
	G_SHLI* 16777216 +  5 * 1048576 + 3,            /* 25: r5 <<= 3    */
	G_XOR * 16777216 +  3 * 1048576 + 5 * 65536,    /* 26: r3 ^= r5    */
	G_SHRI* 16777216 +  3 * 1048576 + 5,            /* 27: r3 >>= 5    */
	G_RET * 16777216,                               /* 28: return      */
	0, 0, 0,
	/* Third phase: rehash memory through the ALU and write a
	   transformed copy (more Data_path traffic). */
	G_LI  * 16777216 +  6 * 1048576,                /* 32: r6 = 0      */
	G_LI  * 16777216 +  7 * 1048576 + 64,           /* 33: r7 = 64     */
	G_LD  * 16777216 +  4 * 1048576 + 6 * 65536,    /* 34: r4 = m[r6]  */
	G_MUL * 16777216 +  4 * 1048576 + 3 * 65536,    /* 35: r4 *= r3    */
	G_XOR * 16777216 +  4 * 1048576 + 6 * 65536,    /* 36: r4 ^= r6    */
	G_ST  * 16777216 +  4 * 1048576 + 6 * 65536 + 128,/*37: m[r6+128]=r4 */
	G_ADDI* 16777216 +  6 * 1048576 + 1,            /* 38: r6 += 1     */
	G_BNE * 16777216 +  6 * 1048576 + 7 * 65536 + 34,/*39: loop to 34  */
	G_OUT * 16777216 +  3 * 1048576,                /* 40: emit r3     */
	G_HALT* 16777216,                               /* 41: halt        */
	0, 0, 0, 0, 0, 0,
	0, 0, 0, 0, 0, 0, 0, 0,
	0, 0, 0, 0, 0, 0, 0, 0
};

/* Machine-description helper: the ALU (paper: Data_path). */
int Data_path(int op, int a, int b) {
	switch (op) {
	case G_ADD: return a + b;
	case G_SUB: return a - b;
	case G_MUL: return a * b;
	case G_AND: return a & b;
	case G_OR:  return a | b;
	case G_XOR: return a ^ b;
	}
	return a;
}

/* Decode helper (paper: test_issue): consults the guest program
   memory itself, like a real simulator's fetch path. */
int test_issue(int pc, int field) {
	int w;
	w = gprog[pc & 63];
	if (field == 0) { return (w >> 24) & 255; }
	if (field == 1) { return (w >> 20) & 15; }
	if (field == 2) { return (w >> 16) & 15; }
	return w & 65535;
}

/* Next-pc logic (paper: Pc). */
int Pc(int pc, int op, int taken, int imm) {
	if (op == G_JMP || op == G_JAL) { return imm; }
	if ((op == G_BEQ || op == G_BNE) && taken) { return imm; }
	return pc + 1;
}

void display_trace() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 16; i++) { s = s + gregs[i]; }
	traceacc = traceacc ^ s;
}

/* One guest instruction (paper: execute). */
void execute() {
	int w;
	int op;
	int rd;
	int rs;
	int imm;
	int taken;
	w = gpc;
	op = test_issue(w, 0);
	rd = test_issue(w, 1);
	rs = test_issue(w, 2);
	imm = test_issue(w, 3);
	taken = 0;
	switch (op) {
	case G_HALT: grunning = 0; break;
	case G_LI:   gregs[rd] = imm; break;
	case G_MOV:  gregs[rd] = gregs[rs]; break;
	case G_ADD:
	case G_SUB:
	case G_MUL:
	case G_AND:
	case G_OR:
	case G_XOR:
		gregs[rd] = Data_path(op, gregs[rd], gregs[rs]);
		break;
	case G_LD:   gregs[rd] = gmem[(gregs[rs] + imm) & 1023]; break;
	case G_ST:   gmem[(gregs[rs] + imm) & 1023] = gregs[rd]; break;
	case G_BEQ:  taken = gregs[rd] == gregs[rs]; break;
	case G_BNE:  taken = gregs[rd] != gregs[rs]; break;
	case G_ADDI: gregs[rd] = gregs[rd] + imm; break;
	case G_SHLI: gregs[rd] = gregs[rd] << imm; break;
	case G_SHRI: gregs[rd] = gregs[rd] >> imm; break;
	case G_JAL:  gregs[15] = gpc + 1; break;
	case G_RET:  break;
	case G_OUT:  outacc = outacc + gregs[rd]; break;
	}
	if (op == G_RET) {
		gpc = gregs[15];
	} else {
		gpc = Pc(gpc, op, taken, imm);
	}
	gsteps++;
	if ((gsteps & 255) == 0) { display_trace(); }
}

int readnum() {
	int c;
	int v;
	v = 0;
	c = getchar();
	while (c >= '0' && c <= '9') {
		v = v * 10 + (c - '0');
		c = getchar();
	}
	return v;
}

void resetguest(int limit) {
	int i;
	for (i = 0; i < 16; i++) { gregs[i] = 0; }
	for (i = 0; i < 1024; i++) { gmem[i] = gdata[i & 511] + (i >> 2); }
	gpc = 0;
	grunning = 1;
	/* Patch the guest loop bound from the config (ctl.in analog). */
	gprog[1] = G_LI * 16777216 + 2 * 1048576 + limit;
}

int main() {
	int runs;
	int limit;
	int run;
	int steps;
	gmem = malloc(1024 * sizeof(int));
	runs = readnum();
	limit = readnum();
	read_block(gdata, 512);
	for (run = 0; run < runs; run++) {
		resetguest(limit);
		steps = 0;
		while (grunning && steps < 100000) {
			execute();
			steps++;
		}
		if ((run & 15) == 0) {
			print_int(outacc ^ traceacc);
			putchar(10);
		}
	}
	return outacc;
}
`
