// Package workloads provides the eight SPEC '95 integer benchmark
// analogs used by the reproduction. Each workload is a MiniC program
// (compiled by internal/minic) plus a deterministic input generator.
//
// The analogs recreate the *structural character* of each SPEC
// benchmark — the properties the paper attributes repetition to — not
// its exact code: global tables and boards (go), a machine simulator
// (m88ksim), block-transform image coding (ijpeg), script
// interpretation (perl), an object database with deep accessor chains
// (vortex), list interpretation over a cons heap (li), compilation
// (gcc), and LZW compression (compress). See DESIGN.md §6.
package workloads

import (
	"fmt"
	"sync"

	"repro/internal/minic"
	"repro/internal/program"
)

// Workload is one benchmark analog.
type Workload struct {
	// Name is the short identifier used by the CLI and reports.
	Name string
	// Analog is the SPEC '95 benchmark this stands in for.
	Analog string
	// Description summarizes the program.
	Description string
	// Source is the MiniC program text.
	Source string
	// Input generates the deterministic external input for the given
	// variant (1 = the standard data set; 2+ = alternates for the
	// paper's input-sensitivity check).
	Input func(variant int) []byte

	once  sync.Once
	image *program.Image
	err   error
}

// Image compiles the workload (cached).
func (w *Workload) Image() (*program.Image, error) {
	w.once.Do(func() {
		w.image, w.err = minic.Compile(w.Source)
		if w.err != nil {
			w.err = fmt.Errorf("workloads: compiling %s: %w", w.Name, w.err)
		}
	})
	return w.image, w.err
}

var registry = []*Workload{goban, m88k, jpeg, scrip, odb, lisp, cc1, lzw}

// All returns every workload in report order.
func All() []*Workload { return registry }

// ByName returns the named workload.
func ByName(name string) (*Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// Names returns the workload names in report order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}

// lcg is the deterministic generator used by input builders.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*6364136223846793005 + 1442695040888963407} }

func (r *lcg) next() uint32 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return uint32(r.s >> 33)
}

// intn returns a value in [0, n).
func (r *lcg) intn(n int) int { return int(r.next() % uint32(n)) }
