package workloads

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/minic"
)

// TestWorkloadsRunInlined compiles every workload with the inlining
// pass enabled and checks it still runs (the Section 6 compiler
// ablation must not break the programs).
func TestWorkloadsRunInlined(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			im, err := minic.CompileOpt(w.Source, minic.Options{Inline: true})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := cpu.New(im, w.Input(1))
			if _, err := m.Run(3_000_000); err != nil {
				t.Fatalf("run: %v", err)
			}
			if m.Halted {
				t.Fatalf("exited early (exit=%d)", m.ExitCode)
			}
		})
	}
}
