package workloads

// lisp is the analog of SPEC95 "li" (xlisp): an s-expression
// interpreter with a cons-cell arena, evaluating list-manipulation
// programs read from the input (the 22.lsp analog). Recursive eval
// over cons cells reproduces li's heap-dominated slices and frequent
// small-function calls (car/cdr — the paper's livecar/livecdr), and
// the high no-argument-repetition share (fresh cell indices on every
// call) seen in Table 4.
var lisp = &Workload{
	Name:        "lisp",
	Analog:      "li",
	Description: "s-expression interpreter running list-manipulation scripts",
	Input:       lispInput,
	Source:      lispSource,
}

// lispDefs are the function definitions shared by both input variants.
const lispDefs = `
(define (append2 a b) (if (null a) b (cons (car a) (append2 (cdr a) b))))
(define (revonto a b) (if (null a) b (revonto (cdr a) (cons (car a) b))))
(define (sum l) (if (null l) 0 (+ (car l) (sum (cdr l)))))
(define (len l) (if (null l) 0 (+ 1 (len (cdr l)))))
(define (iota n) (if (< n 1) nil (cons n (iota (- n 1)))))
(define (map2x l) (if (null l) nil (cons (* 2 (car l)) (map2x (cdr l)))))
(define (filtodd l) (if (null l) nil (if (odd (car l)) (cons (car l) (filtodd (cdr l))) (filtodd (cdr l)))))
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(define (tree d) (if (< d 1) (cons 1 nil) (cons (tree (- d 1)) (tree (- d 1)))))
(define (countl t) (if (null t) 0 (if (atom t) 1 (+ (countl (car t)) (countl (cdr t))))))
`

// lispInput is the lisp program: definitions plus driver expressions.
func lispInput(variant int) []byte {
	if variant > 1 {
		return []byte(lispDefs + `
(sum (append2 (iota 19) (revonto (iota 23) nil)))
(len (map2x (iota 28)))
(sum (filtodd (iota 27)))
(fib 13)
(sum (revonto (map2x (filtodd (iota 21))) nil))
(countl (tree 7))
`)
	}
	return []byte(lispDefs + `
(sum (append2 (iota 24) (revonto (iota 16) nil)))
(len (map2x (iota 20)))
(sum (filtodd (iota 31)))
(fib 12)
(sum (revonto (map2x (filtodd (iota 25))) nil))
(countl (tree 6))
`)
}

const lispSource = `
enum { TAG_NUM, TAG_SYM, TAG_CONS };

struct cell {
	int tag;
	int a;	/* num: value; sym: symbol id; cons: car index */
	int b;	/* cons: cdr index */
};

struct cell *cells;	/* heap-allocated cons arena */
int ncells;
int heapmark;	/* arena mark after parsing; eval allocations reset here */

char symnames[1024];
int symoff[128];
int nsyms;

char prog[4096];
int proglen;
int ppos;

/* top-level expressions and function definitions */
int topexprs[64];
int ntop;
int fnparams[64];	/* per symbol id: param list cell or -1 */
int fnbody[64];

int outsum;

/* builtin symbol ids, interned first */
int s_define; int s_if; int s_quote; int s_cons; int s_car; int s_cdr;
int s_add; int s_sub; int s_mul; int s_lt; int s_null; int s_nil; int s_odd;
int s_atom;

/* cell 0 is nil */

int newcell(int tag, int a, int b) {
	int i;
	if (ncells >= 32768) { exit(2); }
	i = ncells;
	ncells++;
	cells[i].tag = tag;
	cells[i].a = a;
	cells[i].b = b;
	return i;
}

int cons(int a, int b) { return newcell(TAG_CONS, a, b); }
int mknum(int v) { return newcell(TAG_NUM, v, 0); }

/* The paper's livecar/livecdr analogs. */
int livecar(int c) {
	return cells[c].tag != TAG_CONS ? 0 : cells[c].a;
}

int livecdr(int c) {
	return cells[c].tag != TAG_CONS ? 0 : cells[c].b;
}

int numval(int c) {
	return cells[c].tag != TAG_NUM ? 0 : cells[c].a;
}

int intern(char *name) {
	int i;
	int j;
	int k;
	for (i = 0; i < nsyms; i++) {
		j = symoff[i];
		k = 0;
		while (symnames[j + k] && name[k] && symnames[j + k] == name[k]) { k++; }
		if (symnames[j + k] == 0 && name[k] == 0) { return i; }
	}
	j = 0;
	while (symoff[nsyms] + j < 1024 && name[j]) {
		symnames[symoff[nsyms] + j] = name[j];
		j++;
	}
	symnames[symoff[nsyms] + j] = 0;
	symoff[nsyms + 1] = symoff[nsyms] + j + 1;
	nsyms++;
	return nsyms - 1;
}

/* --- reader --- */

void skipws() {
	while (ppos < proglen) {
		if (prog[ppos] == ' ' || prog[ppos] == 10 || prog[ppos] == 13 || prog[ppos] == 9) {
			ppos++;
		} else {
			return;
		}
	}
}

int issymchar(int c) {
	if (c >= 'a' && c <= 'z') { return 1; }
	if (c >= '0' && c <= '9') { return 1; }
	return c == '+' || c == '-' || c == '*' || c == '<' || c == '2' || c == 'x';
}

int readexpr() {
	int c;
	int v;
	int neg;
	char name[24];
	int n;
	int head;
	int tail;
	int e;
	skipws();
	if (ppos >= proglen) { return 0; }
	c = prog[ppos];
	if (c == '(') {
		ppos++;
		head = 0;
		tail = 0;
		skipws();
		while (ppos < proglen && prog[ppos] != ')') {
			e = readexpr();
			e = cons(e, 0);
			if (head == 0) { head = e; } else { cells[tail].b = e; }
			tail = e;
			skipws();
		}
		ppos++;	/* ) */
		return head;
	}
	if (c >= '0' && c <= '9' || c == '-' && prog[ppos + 1] >= '0' && prog[ppos + 1] <= '9') {
		neg = 0;
		if (c == '-') { neg = 1; ppos++; }
		v = 0;
		while (ppos < proglen && prog[ppos] >= '0' && prog[ppos] <= '9') {
			v = v * 10 + (prog[ppos] - '0');
			ppos++;
		}
		if (neg) { v = -v; }
		return mknum(v);
	}
	n = 0;
	while (ppos < proglen && issymchar(prog[ppos]) && n < 23) {
		name[n] = prog[ppos];
		n++;
		ppos++;
	}
	name[n] = 0;
	return newcell(TAG_SYM, intern(name), 0);
}

/* --- evaluator --- */

/* env is an assoc list: ((sym . val) ...), built from cons cells where
   car is a cons of (symid-as-num . value-cell). */
int lookup(int env, int sym) {
	int pair;
	while (env) {
		pair = livecar(env);
		if (numval(livecar(pair)) == sym) { return livecdr(pair); }
		env = livecdr(env);
	}
	return 0;
}

int bind(int env, int sym, int val) {
	return cons(cons(mknum(sym), val), env);
}

int eval(int e, int env);

int evalargsbind(int params, int args, int env, int callenv) {
	int newenv;
	newenv = env;
	while (params && args) {
		newenv = bind(newenv, cells[livecar(params)].a, eval(livecar(args), callenv));
		params = livecdr(params);
		args = livecdr(args);
	}
	return newenv;
}

int eval(int e, int env) {
	int head;
	int sym;
	int a;
	int b;
	int fn;
	if (e == 0) { return 0; }
	if (cells[e].tag == TAG_NUM) { return e; }
	if (cells[e].tag == TAG_SYM) {
		if (cells[e].a == s_nil) { return 0; }
		return lookup(env, cells[e].a);
	}
	head = livecar(e);
	if (cells[head].tag == TAG_SYM) {
		sym = cells[head].a;
		if (sym == s_quote) { return livecar(livecdr(e)); }
		if (sym == s_if) {
			a = eval(livecar(livecdr(e)), env);
			if (numval(a) != 0 || cells[a].tag == TAG_CONS) {
				return eval(livecar(livecdr(livecdr(e))), env);
			}
			return eval(livecar(livecdr(livecdr(livecdr(e)))), env);
		}
		if (sym == s_add || sym == s_sub || sym == s_mul || sym == s_lt) {
			a = eval(livecar(livecdr(e)), env);
			b = eval(livecar(livecdr(livecdr(e))), env);
			if (sym == s_add) { return mknum(numval(a) + numval(b)); }
			if (sym == s_sub) { return mknum(numval(a) - numval(b)); }
			if (sym == s_mul) { return mknum(numval(a) * numval(b)); }
			return mknum(numval(a) < numval(b));
		}
		if (sym == s_cons) {
			a = eval(livecar(livecdr(e)), env);
			b = eval(livecar(livecdr(livecdr(e))), env);
			return cons(a, b);
		}
		if (sym == s_car) { return livecar(eval(livecar(livecdr(e)), env)); }
		if (sym == s_cdr) { return livecdr(eval(livecar(livecdr(e)), env)); }
		if (sym == s_null) {
			a = eval(livecar(livecdr(e)), env);
			return mknum(a == 0);
		}
		if (sym == s_odd) {
			a = eval(livecar(livecdr(e)), env);
			return mknum(numval(a) & 1);
		}
		if (sym == s_atom) {
			a = eval(livecar(livecdr(e)), env);
			return mknum(cells[a].tag != TAG_CONS);
		}
		/* user function */
		if (sym < 64 && fnbody[sym] != 0) {
			fn = evalargsbind(fnparams[sym], livecdr(e), 0, env);
			return eval(fnbody[sym], fn);
		}
	}
	return 0;
}

void definefn(int e) {
	int sig;
	int name;
	sig = livecar(livecdr(e));
	name = cells[livecar(sig)].a;
	if (name < 64) {
		fnparams[name] = livecdr(sig);
		fnbody[name] = livecar(livecdr(livecdr(e)));
	}
}

int main() {
	int i;
	int e;
	int iter;
	symoff[0] = 0;
	s_define = intern("define");
	s_if = intern("if");
	s_quote = intern("quote");
	s_cons = intern("cons");
	s_car = intern("car");
	s_cdr = intern("cdr");
	s_add = intern("+");
	s_sub = intern("-");
	s_mul = intern("*");
	s_lt = intern("<");
	s_null = intern("null");
	s_nil = intern("nil");
	s_odd = intern("odd");
	s_atom = intern("atom");

	cells = malloc(32768 * sizeof(struct cell));
	ncells = 1;	/* cell 0 is nil */
	proglen = read_block(prog, 4096);
	ppos = 0;
	ntop = 0;
	skipws();
	while (ppos < proglen && prog[ppos] == '(') {
		e = readexpr();
		if (cells[livecar(e)].tag == TAG_SYM && cells[livecar(e)].a == s_define) {
			definefn(e);
		} else {
			if (ntop < 64) { topexprs[ntop] = e; ntop++; }
		}
		skipws();
	}
	heapmark = ncells;

	for (iter = 0; iter < 1000000; iter++) {
		ncells = heapmark;
		for (i = 0; i < ntop; i++) {
			outsum = outsum * 13 + numval(eval(topexprs[i], 0));
		}
		if ((iter & 7) == 0) {
			print_int(outsum);
			putchar(10);
		}
	}
	return outsum;
}
`
