package workloads

// goban is the analog of SPEC95 "go": a 19x19 board game engine that
// plays deterministic self-play games. Like the original (which played
// against itself from null.in), it consumes essentially no external
// input — the paper's Table 3 shows go with 0.0% external-input
// slices — and spends its time in global board arrays, influence
// dilation, and liberty flood fills. Function names echo the paper's
// Table 9 contributors (getefflibs, lupdate, livesordies).
var goban = &Workload{
	Name:        "goban",
	Analog:      "go",
	Description: "19x19 board influence evaluator playing deterministic self-play",
	Input:       func(variant int) []byte { return nil }, // self-play: no external input (like go with null.in)
	Source:      gobanSource,
}

const gobanSource = `
int board[361];
int infl[361];
int infl2[361];
int marks[361];
int seed = 12345;
int bsize = 19;
int captures;
int checksum;

int rnd(int n) {
	seed = seed * 1103515245 + 12345;
	if (seed < 0) { seed = -seed; }
	return (seed >> 8) % n;
}

int onboard(int r, int c) {
	return r >= 0 && r < bsize && c >= 0 && c < bsize;
}

/* Flood fill counting the liberties of the group at (r,c); empties are
   marked so each liberty counts once. */
int floodlibs(int r, int c, int color) {
	int p;
	int n;
	if (!onboard(r, c)) { return 0; }
	p = r * 19 + c;
	if (marks[p]) { return 0; }
	marks[p] = 1;
	if (board[p] == 0) { return 1; }
	if (board[p] != color) { return 0; }
	n = floodlibs(r - 1, c, color);
	n += floodlibs(r + 1, c, color);
	n += floodlibs(r, c - 1, color);
	n += floodlibs(r, c + 1, color);
	return n;
}

void clearmarks() {
	int i;
	for (i = 0; i < 361; i++) { marks[i] = 0; }
}

int getefflibs(int r, int c, int color) {
	clearmarks();
	return floodlibs(r, c, color);
}

int livesordies(int r, int c, int color) {
	return getefflibs(r, c, color) == 0;
}

void removegroup(int r, int c, int color) {
	int p;
	if (!onboard(r, c)) { return; }
	p = r * 19 + c;
	if (board[p] != color) { return; }
	board[p] = 0;
	captures++;
	removegroup(r - 1, c, color);
	removegroup(r + 1, c, color);
	removegroup(r, c - 1, color);
	removegroup(r, c + 1, color);
}

int inflat(int r, int c) {
	if (!onboard(r, c)) { return 0; }
	return infl[r * 19 + c];
}

/* One influence dilation pass (the paper's lupdate/ldndate analog). */
void lupdate() {
	int r;
	int c;
	int p;
	int v;
	for (r = 0; r < 19; r++) {
		for (c = 0; c < 19; c++) {
			p = r * 19 + c;
			v = inflat(r - 1, c) + inflat(r + 1, c) + inflat(r, c - 1) + inflat(r, c + 1);
			infl2[p] = infl[p] + v / 4;
		}
	}
	for (p = 0; p < 361; p++) { infl[p] = infl2[p]; }
}

void seedinfluence() {
	int p;
	for (p = 0; p < 361; p++) {
		if (board[p] == 1) { infl[p] = 64; }
		else { if (board[p] == 2) { infl[p] = -64; } else { infl[p] = 0; } }
	}
}

void updateinfluence() {
	int pass;
	seedinfluence();
	for (pass = 0; pass < 2; pass++) { lupdate(); }
}

int territory() {
	int p;
	int t;
	t = 0;
	for (p = 0; p < 361; p++) {
		if (infl[p] > 4) { t++; }
		if (infl[p] < -4) { t--; }
	}
	return t;
}

/* Find one of our groups in atari (exactly 1 liberty) and return an
   adjacent empty point to extend to, or -1. */
int defendatari(int color) {
	int p;
	int r;
	int c;
	for (p = 0; p < 361; p++) {
		if (board[p] != color) { continue; }
		r = p / 19;
		c = p % 19;
		if (getefflibs(r, c, color) == 1) {
			if (onboard(r - 1, c) && board[p - 19] == 0) { return p - 19; }
			if (onboard(r + 1, c) && board[p + 19] == 0) { return p + 19; }
			if (onboard(r, c - 1) && board[p - 1] == 0) { return p - 1; }
			if (onboard(r, c + 1) && board[p + 1] == 0) { return p + 1; }
		}
	}
	return -1;
}

/* Pick a move for color: sample candidates, prefer contested points. */
int pickmove(int color) {
	int tries;
	int best;
	int bestscore;
	int p;
	int s;
	best = -1;
	bestscore = -100000;
	for (tries = 0; tries < 24; tries++) {
		p = rnd(361);
		if (board[p] != 0) { continue; }
		s = infl[p];
		if (color == 2) { s = -s; }
		/* prefer mildly contested points near our influence */
		s = 32 - abs(32 - s);
		s = s + rnd(8);
		if (s > bestscore) { bestscore = s; best = p; }
	}
	return best;
}

void maybecapture(int r, int c, int enemy) {
	if (!onboard(r, c)) { return; }
	if (board[r * 19 + c] != enemy) { return; }
	if (livesordies(r, c, enemy)) {
		removegroup(r, c, enemy);
	}
}

/* Place a stone, resolve captures, reject suicide. Returns 1 if the
   move stood. */
int playstone(int p, int color) {
	int r;
	int c;
	int enemy;
	r = p / 19;
	c = p % 19;
	enemy = 3 - color;
	board[p] = color;
	maybecapture(r - 1, c, enemy);
	maybecapture(r + 1, c, enemy);
	maybecapture(r, c - 1, enemy);
	maybecapture(r, c + 1, enemy);
	if (livesordies(r, c, color)) {
		board[p] = 0;
		return 0;
	}
	return 1;
}

void resetboard() {
	int p;
	for (p = 0; p < 361; p++) { board[p] = 0; infl[p] = 0; }
}

void playgame(int game) {
	int move;
	int color;
	int p;
	color = 1;
	for (move = 0; move < 40; move++) {
		p = -1;
		if ((move & 3) == 3) { p = defendatari(color); }
		if (p < 0) { p = pickmove(color); }
		if (p >= 0) {
			if (playstone(p, color)) {
				updateinfluence();
			}
		}
		color = 3 - color;
	}
}

int main() {
	int game;
	for (game = 0; game < 1000000; game++) {
		resetboard();
		seed = 12345 + game * 7;
		playgame(game);
		checksum = checksum + territory() + captures;
		print_int(checksum);
		putchar(10);
	}
	return checksum;
}
`
