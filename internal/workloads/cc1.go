package workloads

import (
	"fmt"
	"strings"
)

// cc1 is the analog of SPEC95 "gcc": a small expression compiler that
// tokenizes generated source text, builds an AST in an arena, folds
// constants, performs linear-scan register allocation over virtual
// registers, and emits code bytes. Like gcc it has many functions
// touched per phase, diverse intermediate values, and the lowest
// repetition of the non-compress workloads (paper: 75.5%), with a
// modest external-input slice (the source text).
var cc1 = &Workload{
	Name:        "cc1",
	Analog:      "gcc",
	Description: "expression compiler: lex, parse, fold, allocate registers, emit",
	Input:       cc1Input,
	Source:      cc1Source,
}

// cc1Input generates ~4 KiB of source: assignment statements over
// variables a..z with nested arithmetic (the reload.i analog).
func cc1Input(variant int) []byte {
	r := newLCG(uint64(23 + 41*variant))
	var b strings.Builder
	var gen func(depth int)
	gen = func(depth int) {
		if depth <= 0 || r.intn(3) == 0 {
			if r.intn(2) == 0 {
				fmt.Fprintf(&b, "%d", r.intn(1000))
			} else {
				b.WriteByte(byte('a' + r.intn(26)))
			}
			return
		}
		b.WriteByte('(')
		gen(depth - 1)
		b.WriteByte(" +-*/&|^"[1+r.intn(7)])
		gen(depth - 1)
		b.WriteByte(')')
	}
	for b.Len() < 4000 {
		b.WriteByte(byte('a' + r.intn(26)))
		b.WriteString(" = ")
		gen(2 + r.intn(3))
		b.WriteString(";\n")
	}
	return []byte(b.String())
}

const cc1Source = `
enum {
	TK_EOF, TK_NUM, TK_VAR, TK_OP, TK_LP, TK_RP, TK_ASSIGN, TK_SEMI
};

enum { N_NUM, N_VAR, N_BIN };

struct node {
	int op;	/* N_* */
	int val;	/* number value, variable id, or operator char */
	int l;
	int r;
	int vreg;	/* assigned virtual register */
};

char src[4096];
int srclen;
int spos;

int tkind;
int tval;

struct node *nodes;	/* heap-allocated AST arena */
int nnodes;

int stmts[512];	/* root node per statement */
int stmtvar[512];
int nstmts;

int folded;
int emitted;
int checksum;
char codebuf[512];
int codelen;

/* --- lexer --- */

void lex_next() {
	int c;
	while (spos < srclen) {
		c = src[spos];
		if (c == ' ' || c == 10 || c == 13 || c == 9) { spos++; continue; }
		break;
	}
	if (spos >= srclen) { tkind = TK_EOF; return; }
	c = src[spos];
	if (c >= '0' && c <= '9') {
		tval = 0;
		while (spos < srclen && src[spos] >= '0' && src[spos] <= '9') {
			tval = tval * 10 + (src[spos] - '0');
			spos++;
		}
		tkind = TK_NUM;
		return;
	}
	if (c >= 'a' && c <= 'z') {
		tval = c - 'a';
		tkind = TK_VAR;
		spos++;
		return;
	}
	spos++;
	switch (c) {
	case '(': tkind = TK_LP; return;
	case ')': tkind = TK_RP; return;
	case '=': tkind = TK_ASSIGN; return;
	case ';': tkind = TK_SEMI; return;
	}
	tkind = TK_OP;
	tval = c;
}

/* --- parser --- */

int new_node(int op, int val, int l, int r) {
	int i;
	if (nnodes >= 4096) { exit(3); }
	i = nnodes;
	nnodes++;
	nodes[i].op = op;
	nodes[i].val = val;
	nodes[i].l = l;
	nodes[i].r = r;
	nodes[i].vreg = -1;
	return i;
}

int parse_expr();

int parse_primary() {
	int n;
	if (tkind == TK_NUM) {
		n = new_node(N_NUM, tval, -1, -1);
		lex_next();
		return n;
	}
	if (tkind == TK_VAR) {
		n = new_node(N_VAR, tval, -1, -1);
		lex_next();
		return n;
	}
	if (tkind == TK_LP) {
		lex_next();
		n = parse_expr();
		lex_next();	/* ) */
		return n;
	}
	lex_next();
	return new_node(N_NUM, 0, -1, -1);
}

int parse_expr() {
	int l;
	int r;
	int op;
	l = parse_primary();
	while (tkind == TK_OP) {
		op = tval;
		lex_next();
		r = parse_primary();
		l = new_node(N_BIN, op, l, r);
	}
	return l;
}

void parse_all() {
	int v;
	nstmts = 0;
	nnodes = 0;
	spos = 0;
	lex_next();
	while (tkind != TK_EOF && nstmts < 512) {
		if (tkind != TK_VAR) { lex_next(); continue; }
		v = tval;
		lex_next();	/* var */
		lex_next();	/* = */
		stmts[nstmts] = parse_expr();
		stmtvar[nstmts] = v;
		nstmts++;
		if (tkind == TK_SEMI) { lex_next(); }
	}
}

/* --- constant folding (canon_reg / copy_rtx analog phase) --- */

int eval_binop(int op, int a, int b) {
	switch (op) {
	case '+': return a + b;
	case '-': return a - b;
	case '*': return a * b;
	case '/': if (b == 0) { return 0; } return a / b;
	case '&': return a & b;
	case '|': return a | b;
	case '^': return a ^ b;
	}
	return a;
}

int fold(int n) {
	int l;
	int r;
	if (n < 0) { return n; }
	if (nodes[n].op != N_BIN) { return n; }
	l = fold(nodes[n].l);
	r = fold(nodes[n].r);
	nodes[n].l = l;
	nodes[n].r = r;
	if (nodes[l].op == N_NUM && nodes[r].op == N_NUM) {
		nodes[n].op = N_NUM;
		nodes[n].val = eval_binop(nodes[n].val, nodes[l].val, nodes[r].val);
		nodes[n].l = -1;
		nodes[n].r = -1;
		folded++;
	}
	return n;
}

/* --- common subexpression elimination (cse_main analog) --- */

int csehits;

int same_tree(int a, int b) {
	if (a < 0 || b < 0) { return a == b; }
	if (nodes[a].op != nodes[b].op) { return 0; }
	if (nodes[a].val != nodes[b].val) { return 0; }
	if (nodes[a].op != N_BIN) { return 1; }
	return same_tree(nodes[a].l, nodes[b].l) && same_tree(nodes[a].r, nodes[b].r);
}

/* Fold b into a when both subtrees compute the same value: the
   second occurrence is replaced by a variable-style reference to the
   first's virtual register. */
void cse_pair(int a, int b) {
	if (a < 0 || b < 0) { return; }
	if (nodes[a].op == N_BIN && same_tree(a, b)) {
		nodes[b].op = N_VAR;
		nodes[b].val = 25;	/* compiler temp */
		nodes[b].l = -1;
		nodes[b].r = -1;
		csehits++;
		return;
	}
	if (nodes[b].op == N_BIN) {
		cse_pair(a, nodes[b].l);
		cse_pair(a, nodes[b].r);
	}
}

void cse_main(int n) {
	if (n < 0 || nodes[n].op != N_BIN) { return; }
	cse_pair(nodes[n].l, nodes[n].r);
	cse_main(nodes[n].l);
	cse_main(nodes[n].r);
}

/* --- register allocation (reg_scan_mark_refs analog) --- */

int nextvreg;

void reg_scan_mark_refs(int n) {
	if (n < 0) { return; }
	if (nodes[n].op == N_BIN) {
		reg_scan_mark_refs(nodes[n].l);
		reg_scan_mark_refs(nodes[n].r);
	}
	nodes[n].vreg = nextvreg & 15;	/* 16 physical registers */
	nextvreg++;
}

/* --- emission --- */

void emit_byte(int b) {
	if (codelen < 512) { codebuf[codelen] = b; codelen++; }
	checksum = (checksum * 33 + b) & 0xffffff;
	emitted++;
}

void emit_node(int n) {
	if (n < 0) { return; }
	switch (nodes[n].op) {
	case N_NUM:
		emit_byte(1);
		emit_byte(nodes[n].val & 255);
		emit_byte(nodes[n].vreg);
		break;
	case N_VAR:
		emit_byte(2);
		emit_byte(nodes[n].val);
		emit_byte(nodes[n].vreg);
		break;
	default:
		emit_node(nodes[n].l);
		emit_node(nodes[n].r);
		emit_byte(3);
		emit_byte(nodes[n].val);
		emit_byte(nodes[nodes[n].l].vreg);
		emit_byte(nodes[nodes[n].r].vreg);
		emit_byte(nodes[n].vreg);
	}
}

/* Render the "assembly" for one statement into a text buffer (the
   output-printer phase every compiler carries). */
char asmbuf[256];
int asmlen;

void print_op(int b) {
	char tmp[12];
	int i;
	itoa(b, tmp);
	i = 0;
	while (tmp[i] && asmlen < 255) {
		asmbuf[asmlen] = tmp[i];
		asmlen++;
		i++;
	}
	if (asmlen < 255) {
		asmbuf[asmlen] = ' ';
		asmlen++;
	}
}

int print_code() {
	int i;
	int h;
	asmlen = 0;
	for (i = 0; i < codelen; i++) { print_op(codebuf[i]); }
	h = 0;
	for (i = 0; i < asmlen; i++) { h = (h * 131 + asmbuf[i]) & 0xffffff; }
	return h;
}

void compile_stmt(int i) {
	int root;
	root = fold(stmts[i]);
	cse_main(root);
	nextvreg = 0;
	reg_scan_mark_refs(root);
	codelen = 0;
	emit_node(root);
	emit_byte(4);	/* store */
	emit_byte(stmtvar[i]);
	checksum = (checksum + print_code()) & 0xffffff;
}

int main() {
	int pass;
	int i;
	nodes = malloc(4096 * sizeof(struct node));
	srclen = read_block(src, 4096);
	for (pass = 0; pass < 1000000; pass++) {
		parse_all();
		folded = 0;
		for (i = 0; i < nstmts; i++) {
			compile_stmt(i);
		}
		if ((pass & 3) == 0) {
			print_int(checksum + folded);
			putchar(10);
		}
	}
	return checksum & 127;
}
`
