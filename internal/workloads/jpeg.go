package workloads

import (
	"fmt"
	"math"
	"strings"
)

// jpeg is the analog of SPEC95 "ijpeg": a block-transform image coder.
// It reads a synthetic image, then repeatedly forward-DCTs 8x8 blocks,
// quantizes against a quality-scaled table, zigzag-scans, and entropy-
// codes runs through a bit emitter. Function names echo the paper's
// Table 9 ijpeg contributors (emit_bits, encode_one_block,
// jpeg_fdct_islow). The coefficient tables are classic global
// initialized data; the image is external input.
var jpeg = &Workload{
	Name:        "jpeg",
	Analog:      "ijpeg",
	Description: "8x8 DCT + quantize + zigzag + RLE/bit-emit image coder",
	Input:       jpegInput,
	Source:      jpegSource,
}

// jpegInput synthesizes a 64x64 greyscale image: smooth gradients plus
// structured noise, the kind of content vigo.ppm provides.
func jpegInput(variant int) []byte {
	r := newLCG(uint64(19 + 31*variant))
	img := make([]byte, 64*64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := 96 + 8*((x*y)/64) + 16*((x/8+y/8)%3) + r.intn(12)
			if v > 255 {
				v = 255
			}
			img[y*64+x] = byte(v)
		}
	}
	return img
}

// cosTable renders the scaled DCT basis c[x][u] = round(256 *
// cos((2x+1)*u*pi/16) * (u==0 ? 1/sqrt2 : 1)) as a MiniC initializer.
func cosTable() string {
	var parts []string
	for x := 0; x < 8; x++ {
		for u := 0; u < 8; u++ {
			c := math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
			if u == 0 {
				c *= math.Sqrt2 / 2
			}
			parts = append(parts, fmt.Sprintf("%d", int(math.Round(256*c))))
		}
	}
	return strings.Join(parts, ", ")
}

var jpegSource = fmt.Sprintf(jpegTemplate, cosTable())

const jpegTemplate = `
char *image;            /* 64x64 input pixels (external input, heap) */
int *block;             /* working buffers live on the heap, as in ijpeg */
int *coef;
int *tmpb;

/* Scaled DCT basis (global initialized data). */
int dctcos[64] = { %s };

/* Base quantization table. */
int qbase[64] = {
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99
};

int qtab[64];

/* Zigzag scan order. */
int zigzag[64] = {
	0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63
};

int bitbuf;
int bitcnt;
int outbytes;
int outsum;

char stream[8192];	/* coded stream, read back by the decoder */
int streamlen;

void emit_byte(int b) {
	outbytes++;
	outsum = (outsum * 31 + b) & 0xffffff;
	if (streamlen < 8192) {
		stream[streamlen] = b;
		streamlen++;
	}
}

void emit_bits(int code, int size) {
	bitbuf = (bitbuf << size) | (code & ((1 << size) - 1));
	bitcnt += size;
	while (bitcnt >= 8) {
		bitcnt -= 8;
		emit_byte((bitbuf >> bitcnt) & 255);
	}
}

int nbits(int v) {
	int n;
	if (v < 0) { v = -v; }
	n = 0;
	while (v) { n++; v = v >> 1; }
	return n;
}

/* Forward 8x8 DCT, separable integer form (jpeg_fdct_islow analog). */
void jpeg_fdct_islow() {
	int u;
	int v;
	int x;
	int y;
	int s;
	for (u = 0; u < 8; u++) {
		for (y = 0; y < 8; y++) {
			s = 0;
			for (x = 0; x < 8; x++) {
				s += block[x * 8 + y] * dctcos[x * 8 + u];
			}
			tmpb[u * 8 + y] = s >> 8;
		}
	}
	for (u = 0; u < 8; u++) {
		for (v = 0; v < 8; v++) {
			s = 0;
			for (y = 0; y < 8; y++) {
				s += tmpb[u * 8 + y] * dctcos[y * 8 + v];
			}
			coef[u * 8 + v] = s >> 10;
		}
	}
}

void quantize_block() {
	int i;
	for (i = 0; i < 64; i++) {
		coef[i] = coef[i] / qtab[i];
	}
}

/* Zigzag + run-length + magnitude coding (encode_one_block analog). */
int encode_one_block(int lastdc) {
	int i;
	int run;
	int v;
	int size;
	int diff;
	diff = coef[0] - lastdc;
	size = nbits(diff);
	emit_bits(size, 4);
	if (size) { emit_bits(diff, size); }
	run = 0;
	for (i = 1; i < 64; i++) {
		v = coef[zigzag[i]];
		if (v == 0) {
			run++;
		} else {
			while (run > 15) { emit_bits(0xf0, 8); run -= 16; }
			size = nbits(v);
			emit_bits(run * 16 + size, 8);
			emit_bits(v, size);
			run = 0;
		}
	}
	if (run > 0) { emit_bits(0, 8); }
	return coef[0];
}

void load_block(int bx, int by) {
	int x;
	int y;
	for (y = 0; y < 8; y++) {
		for (x = 0; x < 8; x++) {
			block[y * 8 + x] = image[(by * 8 + y) * 64 + bx * 8 + x] - 128;
		}
	}
}

void set_quality(int q) {
	int i;
	int s;
	if (q < 50) { s = 5000 / q; } else { s = 200 - q * 2; }
	for (i = 0; i < 64; i++) {
		qtab[i] = (qbase[i] * s + 50) / 100;
		if (qtab[i] < 1) { qtab[i] = 1; }
	}
}

/* ---- decoder side (ijpeg decompresses too; the paper's Table 9
   lists fill_bit_buffer and jpeg_idct_islow, both decode-path
   functions) ---- */

int dpos;	/* read cursor into stream */
int dbitbuf;
int dbitcnt;
int recon[64];
int decodeerr;

/* Refill the decode bit buffer (fill_bit_buffer analog). */
void fill_bit_buffer(int need) {
	while (dbitcnt < need && dpos < streamlen) {
		dbitbuf = (dbitbuf << 8) | stream[dpos];
		dpos++;
		dbitcnt += 8;
	}
}

int get_bits(int n) {
	int v;
	if (n == 0) { return 0; }
	fill_bit_buffer(n);
	if (dbitcnt < n) { return 0; }
	dbitcnt -= n;
	v = (dbitbuf >> dbitcnt) & ((1 << n) - 1);
	return v;
}

/* Sign-extend a size-bit magnitude the way the encoder produced it. */
int extend_value(int v, int size) {
	if (size == 0) { return 0; }
	if (v & (1 << (size - 1))) { return v; }
	return v - (1 << size) + 1;
}

/* Decode one block back into coef[] (decode_one_block analog). */
int decode_one_block(int lastdc) {
	int i;
	int size;
	int rs;
	int run;
	for (i = 0; i < 64; i++) { coef[i] = 0; }
	size = get_bits(4);
	coef[0] = lastdc + extend_value(get_bits(size), size);
	i = 1;
	while (i < 64) {
		rs = get_bits(8);
		if (rs == 0) { break; }
		if (rs == 0xf0) { i += 16; continue; }
		run = rs >> 4;
		size = rs & 15;
		i += run;
		if (i >= 64) { break; }
		coef[zigzag[i]] = extend_value(get_bits(size), size);
		i++;
	}
	return coef[0];
}

/* Inverse 8x8 DCT (jpeg_idct_islow analog). */
void jpeg_idct_islow() {
	int u;
	int v;
	int x;
	int y;
	int s;
	for (x = 0; x < 8; x++) {
		for (v = 0; v < 8; v++) {
			s = 0;
			for (u = 0; u < 8; u++) {
				s += coef[u * 8 + v] * qtab[u * 8 + v] * dctcos[x * 8 + u];
			}
			tmpb[x * 8 + v] = s >> 8;
		}
	}
	for (x = 0; x < 8; x++) {
		for (y = 0; y < 8; y++) {
			s = 0;
			for (v = 0; v < 8; v++) {
				s += tmpb[x * 8 + v] * dctcos[y * 8 + v];
			}
			recon[x * 8 + y] = s >> 12;
		}
	}
}

/* Decode the whole stream and accumulate a reconstruction check. */
int decompress_pass() {
	int blocks;
	int lastdc;
	dpos = 0;
	dbitbuf = 0;
	dbitcnt = 0;
	lastdc = 0;
	for (blocks = 0; blocks < 64 && dpos < streamlen; blocks++) {
		lastdc = decode_one_block(lastdc);
		jpeg_idct_islow();
		decodeerr = (decodeerr + recon[0] + recon[63]) & 0xffffff;
	}
	return decodeerr;
}

int compress_pass(int quality) {
	int bx;
	int by;
	int lastdc;
	set_quality(quality);
	lastdc = 0;
	for (by = 0; by < 8; by++) {
		for (bx = 0; bx < 8; bx++) {
			load_block(bx, by);
			jpeg_fdct_islow();
			quantize_block();
			lastdc = encode_one_block(lastdc);
		}
	}
	return outsum;
}

int main() {
	int pass;
	int q;
	image = malloc(4096);
	block = malloc(64 * sizeof(int));
	coef = malloc(64 * sizeof(int));
	tmpb = malloc(64 * sizeof(int));
	read_block(image, 4096);
	for (pass = 0; pass < 1000000; pass++) {
		q = 25 + (pass %% 5) * 10;
		streamlen = 0;
		compress_pass(q);
		decompress_pass();
		if ((pass & 7) == 0) {
			print_int(outsum + decodeerr);
			putchar(10);
		}
	}
	return outsum & 127;
}
`
