package workloads

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// TestAllCompile verifies every workload compiles.
func TestAllCompile(t *testing.T) {
	for _, w := range All() {
		if _, err := w.Image(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

// TestAllRun runs each workload for 2M instructions and checks it
// neither faults nor exits prematurely, and that it produces output
// (the periodic checksums).
func TestAllRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			im, err := w.Image()
			if err != nil {
				t.Fatal(err)
			}
			m := cpu.New(im, w.Input(1))
			n, err := m.Run(10_000_000)
			if err != nil {
				t.Fatalf("after %d instructions: %v", n, err)
			}
			if m.Halted {
				t.Fatalf("exited after only %d instructions (exit=%d, out=%q)",
					n, m.ExitCode, tail(m.Output.String(), 120))
			}
			if m.Output.Len() == 0 {
				t.Error("produced no output in 10M instructions")
			}
			t.Logf("%s: %d instructions, output tail %q", w.Name, n, tail(m.Output.String(), 60))
		})
	}
}

// TestDeterministic verifies two runs produce identical output.
func TestDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			im, err := w.Image()
			if err != nil {
				t.Fatal(err)
			}
			outs := make([]string, 2)
			for i := range outs {
				m := cpu.New(im, w.Input(1))
				if _, err := m.Run(1_000_000); err != nil {
					t.Fatal(err)
				}
				outs[i] = m.Output.String()
			}
			if outs[0] != outs[1] {
				t.Error("output differs between identical runs")
			}
		})
	}
}

// TestInputsDeterministic verifies input generators are pure.
func TestInputsDeterministic(t *testing.T) {
	for _, w := range All() {
		a, b := w.Input(1), w.Input(1)
		if string(a) != string(b) {
			t.Errorf("%s: input generator is not deterministic", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		w, ok := ByName(name)
		if !ok || w.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n:]
}

// TestBinaryEncodingRoundTrip pushes every instruction of every
// compiled workload through the binary encoder and decoder: the
// full generated instruction mix must round-trip exactly.
func TestBinaryEncodingRoundTrip(t *testing.T) {
	for _, w := range All() {
		im, err := w.Image()
		if err != nil {
			t.Fatal(err)
		}
		for i, in := range im.Text {
			word, err := isa.Encode(in)
			if err != nil {
				t.Fatalf("%s: inst %d (%v): %v", w.Name, i, in, err)
			}
			back, err := isa.Decode(word)
			if err != nil {
				t.Fatalf("%s: inst %d decode: %v", w.Name, i, err)
			}
			if back != in {
				t.Fatalf("%s: inst %d: %v -> %#08x -> %v", w.Name, i, in, word, back)
			}
		}
	}
}
