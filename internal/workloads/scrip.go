package workloads

import "strings"

// scrip is the analog of SPEC95 "perl": an interpreter for a tiny
// scripting language. The input carries a script (a scrabble-like word
// scorer, the scrabble.in analog) and a word list; the interpreter
// tokenizes the script once and then re-runs it over the word list
// forever. The recursive eval chain (eval_cmp/add/mul/factor) mirrors
// perl's large recursive eval, and the external input (script + words)
// flows through most slices, matching perl's high external-input share
// in Table 3.
var scrip = &Workload{
	Name:        "scrip",
	Analog:      "perl",
	Description: "script interpreter running a word-scoring program over a word list",
	Input:       scripInput,
	Source:      scripSource,
}

const scripScript2 = `
t = 0; v = 0; n = 0;
read c;
while (c + 1) {
	l = 0;
	while (c > 96) {
		i = 0;
		if (c == 97) { i = 1; }
		if (c == 101) { i = 1; }
		if (c == 105) { i = 1; }
		if (c == 111) { i = 1; }
		if (c == 117) { i = 1; }
		v = v + i;
		l = l + 1;
		read c;
	}
	t = t + l * l;
	n = n + 1;
	read c;
}
print t;
print v;
print n;
`

const scripScript = `
s = 0; m = 0; n = 0; b = 0;
read c;
while (c + 1) {
	w = 0;
	l = 0;
	while (c > 96) {
		v = c - 96;
		p = 1;
		if (v > 4) { p = 2; }
		if (v > 10) { p = 3; }
		if (v > 16) { p = 5; }
		if (v > 22) { p = 8; }
		w = w + p * (v % 7 + 1);
		l = l + 1;
		read c;
	}
	if (l > 6) { w = w + 50; }
	n = n + 1;
	s = s + w;
	if (w > m) { m = w; b = n; }
	read c;
}
print s;
print m;
print b;
print n;
`

// scripInput is the script, a '~' delimiter, then ~600 generated
// lowercase words.
func scripInput(variant int) []byte {
	r := newLCG(uint64(42 + 17*variant))
	var b strings.Builder
	b.WriteString(scripScript)
	b.WriteByte('|')
	b.WriteString(scripScript2)
	b.WriteByte('~')
	for i := 0; i < 150; i++ {
		n := 2 + r.intn(8)
		for j := 0; j < n; j++ {
			// Skew toward common letters.
			c := byte('a' + r.intn(26))
			if r.intn(3) == 0 {
				c = "etaoinshrdlu"[r.intn(12)]
			}
			b.WriteByte(c)
		}
		b.WriteByte(' ')
	}
	return []byte(b.String())
}

const scripSource = `
enum {
	T_EOF, T_NUM, T_VAR, T_ASSIGN, T_SEMI, T_LP, T_RP, T_LB, T_RB,
	T_ADD, T_SUB, T_MUL, T_DIV, T_MOD,
	T_LT, T_GT, T_EQ, T_NE,
	T_WHILE, T_IF, T_ELSE, T_PRINT, T_READ
};

char script[2048];
int scriptlen;
char words[8192];
int wordlen;
int wordpos;

int *toks;	/* heap-allocated token stream */
int *tvals;
int ntoks;
int scriptstart[8];
int nscripts;

int vars[26];
int pos;
int outsum;

/* Variable accessors (perl-style symbol table indirection). */
int getvar(int i) {
	return vars[i];
}

void setvar(int i, int v) {
	vars[i] = v;
}

int iskeyword(char *kw, int at) {
	int i;
	i = 0;
	while (kw[i]) {
		if (script[at + i] != kw[i]) { return 0; }
		i++;
	}
	/* must not be followed by an identifier char */
	if (script[at + i] >= 'a' && script[at + i] <= 'z') { return 0; }
	return i;
}

void addtok(int t, int v) {
	toks[ntoks] = t;
	tvals[ntoks] = v;
	ntoks++;
}

void tokenize() {
	int i;
	int c;
	int v;
	int k;
	ntoks = 0;
	nscripts = 1;
	scriptstart[0] = 0;
	i = 0;
	while (i < scriptlen) {
		c = script[i];
		if (c == ' ' || c == 9 || c == 10 || c == 13) { i++; continue; }
		if (c == '|') {
			/* script separator: close this program, open the next */
			addtok(T_EOF, 0);
			if (nscripts < 8) {
				scriptstart[nscripts] = ntoks;
				nscripts++;
			}
			i++;
			continue;
		}
		if (c >= '0' && c <= '9') {
			v = 0;
			while (script[i] >= '0' && script[i] <= '9') {
				v = v * 10 + (script[i] - '0');
				i++;
			}
			addtok(T_NUM, v);
			continue;
		}
		k = iskeyword("while", i);
		if (k) { addtok(T_WHILE, 0); i += k; continue; }
		k = iskeyword("if", i);
		if (k) { addtok(T_IF, 0); i += k; continue; }
		k = iskeyword("else", i);
		if (k) { addtok(T_ELSE, 0); i += k; continue; }
		k = iskeyword("print", i);
		if (k) { addtok(T_PRINT, 0); i += k; continue; }
		k = iskeyword("read", i);
		if (k) { addtok(T_READ, 0); i += k; continue; }
		if (c >= 'a' && c <= 'z') {
			addtok(T_VAR, c - 'a');
			i++;
			continue;
		}
		if (c == '=' && script[i + 1] == '=') { addtok(T_EQ, 0); i += 2; continue; }
		if (c == '!' && script[i + 1] == '=') { addtok(T_NE, 0); i += 2; continue; }
		switch (c) {
		case '=': addtok(T_ASSIGN, 0); break;
		case ';': addtok(T_SEMI, 0); break;
		case '(': addtok(T_LP, 0); break;
		case ')': addtok(T_RP, 0); break;
		case '{': addtok(T_LB, 0); break;
		case '}': addtok(T_RB, 0); break;
		case '+': addtok(T_ADD, 0); break;
		case '-': addtok(T_SUB, 0); break;
		case '*': addtok(T_MUL, 0); break;
		case '/': addtok(T_DIV, 0); break;
		case '%': addtok(T_MOD, 0); break;
		case '<': addtok(T_LT, 0); break;
		case '>': addtok(T_GT, 0); break;
		}
		i++;
	}
	addtok(T_EOF, 0);
}

int nextwordchar() {
	int c;
	if (wordpos >= wordlen) { return -1; }
	c = words[wordpos];
	wordpos++;
	return c;
}

int eval_cmp();

int eval_factor() {
	int v;
	int t;
	t = toks[pos];
	if (t == T_NUM) {
		v = tvals[pos];
		pos++;
		return v;
	}
	if (t == T_VAR) {
		v = getvar(tvals[pos]);
		pos++;
		return v;
	}
	if (t == T_SUB) {
		pos++;
		return -eval_factor();
	}
	if (t == T_LP) {
		pos++;
		v = eval_cmp();
		pos++;	/* ) */
		return v;
	}
	pos++;
	return 0;
}

int eval_mul() {
	int v;
	int r;
	int t;
	v = eval_factor();
	t = toks[pos];
	while (t == T_MUL || t == T_DIV || t == T_MOD) {
		pos++;
		r = eval_factor();
		if (t == T_MUL) { v = v * r; }
		else {
			if (r == 0) { r = 1; }
			if (t == T_DIV) { v = v / r; } else { v = v % r; }
		}
		t = toks[pos];
	}
	return v;
}

int eval_add() {
	int v;
	int t;
	v = eval_mul();
	t = toks[pos];
	while (t == T_ADD || t == T_SUB) {
		pos++;
		if (t == T_ADD) { v = v + eval_mul(); } else { v = v - eval_mul(); }
		t = toks[pos];
	}
	return v;
}

int eval_cmp() {
	int v;
	int r;
	int t;
	v = eval_add();
	t = toks[pos];
	while (t == T_LT || t == T_GT || t == T_EQ || t == T_NE) {
		pos++;
		r = eval_add();
		if (t == T_LT) { v = v < r; }
		if (t == T_GT) { v = v > r; }
		if (t == T_EQ) { v = v == r; }
		if (t == T_NE) { v = v != r; }
		t = toks[pos];
	}
	return v;
}

void skip_block() {
	int depth;
	pos++;	/* { */
	depth = 1;
	while (depth > 0 && toks[pos] != T_EOF) {
		if (toks[pos] == T_LB) { depth++; }
		if (toks[pos] == T_RB) { depth--; }
		pos++;
	}
}

void exec_stmt();

void exec_block() {
	pos++;	/* { */
	while (toks[pos] != T_RB && toks[pos] != T_EOF) {
		exec_stmt();
	}
	pos++;	/* } */
}

void exec_stmt() {
	int t;
	int v;
	int c;
	int start;
	t = toks[pos];
	switch (t) {
	case T_VAR:
		v = tvals[pos];
		pos += 2;	/* var = */
		setvar(v, eval_cmp());
		pos++;		/* ; */
		break;
	case T_PRINT:
		pos++;
		outsum = outsum * 17 + eval_cmp();
		pos++;		/* ; */
		break;
	case T_READ:
		pos++;
		setvar(tvals[pos], nextwordchar());
		pos += 2;	/* var ; */
		break;
	case T_WHILE:
		start = pos;
		pos += 2;	/* while ( */
		c = eval_cmp();
		pos++;		/* ) */
		if (c) {
			exec_block();
			pos = start;
		} else {
			skip_block();
		}
		break;
	case T_IF:
		pos += 2;	/* if ( */
		c = eval_cmp();
		pos++;		/* ) */
		if (c) {
			exec_block();
			if (toks[pos] == T_ELSE) { pos++; skip_block(); }
		} else {
			skip_block();
			if (toks[pos] == T_ELSE) { pos++; exec_block(); }
		}
		break;
	default:
		pos++;
	}
}

void run(int k) {
	pos = scriptstart[k];
	wordpos = 0;
	while (toks[pos] != T_EOF) {
		exec_stmt();
	}
}

int main() {
	int c;
	int iter;
	toks = malloc(2048 * sizeof(int));
	tvals = malloc(2048 * sizeof(int));
	/* Read the script up to the '~' delimiter, then the word list. */
	scriptlen = 0;
	c = getchar();
	while (c >= 0 && c != '~') {
		script[scriptlen] = c;
		scriptlen++;
		c = getchar();
	}
	wordlen = read_block(words, 8192);
	tokenize();
	for (iter = 0; iter < 1000000; iter++) {
		int k;
		for (k = 0; k < nscripts; k++) {
			run(k);
		}
		print_int(outsum);
		putchar(10);
	}
	return outsum;
}
`
