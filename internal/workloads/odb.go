package workloads

// odb is the analog of SPEC95 "vortex": an in-memory object database
// processing a transaction stream. Its signature property is deep
// chains of tiny accessor functions (the paper's Table 9 lists
// Mem_GetWord, TmFetchCoreDb, Chunk_ChkGetChunk, Mem_GetAddr,
// TmGetObject — all ~50 instructions), which make prologue/epilogue
// the largest overhead category (24% of dynamic instructions in
// Table 5). The analog keeps that shape: every field access goes
// through Mem_GetWord/Mem_PutWord, every object fetch through
// Tm_FetchObj and Chunk_ChkGetObj.
var odb = &Workload{
	Name:        "odb",
	Analog:      "vortex",
	Description: "object database running an insert/lookup/update transaction stream",
	Input:       odbInput,
	Source:      odbSource,
}

// odbInput builds a binary transaction stream: op byte + id byte pairs.
func odbInput(variant int) []byte {
	r := newLCG(uint64(7 + 29*variant))
	n := 2048
	out := make([]byte, 0, 2*n)
	for i := 0; i < n; i++ {
		op := byte(r.intn(16))
		switch {
		case op < 5:
			op = 0 // insert
		case op < 12:
			op = 1 // lookup
		case op < 13:
			op = 2 // update
		case op < 14:
			op = 3 // validate scan
		case op < 15:
			op = 4 // delete
		default:
			op = 5 // kind scan
		}
		out = append(out, op, byte(r.intn(250)))
	}
	return out
}

const odbSource = `
enum { F_ID, F_KIND, F_REF, F_SUM, F_GEN };

struct obj {
	int id;
	int kind;
	int ref;
	int sum;
	int gen;
	int next;	/* hash chain, index+1, 0 = end */
};

struct obj *objs;	/* heap-allocated object pool */
int nobjs;
int hashtab[256];
int txcount;
int hits;
int misses;
int checksum;

char txbuf[8192];
int txlen;

/* --- the accessor layer (Mem_GetWord analog chain) --- */

int Chunk_ChkGetObj(int i) {
	if (i < 0 || i >= nobjs) { return -1; }
	return i;
}

struct obj *Tm_FetchObj(int i) {
	return &objs[i];
}

int Mem_GetWord(int i, int field) {
	struct obj *o;
	o = Tm_FetchObj(i);
	switch (field) {
	case F_ID:   return o->id;
	case F_KIND: return o->kind;
	case F_REF:  return o->ref;
	case F_SUM:  return o->sum;
	case F_GEN:  return o->gen;
	}
	return 0;
}

void Mem_PutWord(int i, int field, int v) {
	struct obj *o;
	o = Tm_FetchObj(i);
	switch (field) {
	case F_ID:   o->id = v; break;
	case F_KIND: o->kind = v; break;
	case F_REF:  o->ref = v; break;
	case F_SUM:  o->sum = v; break;
	case F_GEN:  o->gen = v; break;
	}
}

int Hash_Key(int id) {
	int h;
	h = id * 40503;
	h = (h >> 4) ^ h;
	return h & 255;
}

/* --- database operations --- */

/* Unlink id from its hash chain (the object slot is retired in
   place; vortex-style tombstoning). */
int Db_Delete(int id) {
	int h;
	int i;
	int prev;
	h = Hash_Key(id);
	i = hashtab[h];
	prev = 0;
	while (i) {
		if (Mem_GetWord(i - 1, F_ID) == id) {
			if (prev) {
				objs[prev - 1].next = objs[i - 1].next;
			} else {
				hashtab[h] = objs[i - 1].next;
			}
			Mem_PutWord(i - 1, F_ID, -1);
			Mem_PutWord(i - 1, F_GEN, 0);
			return 1;
		}
		prev = i;
		i = objs[i - 1].next;
	}
	return 0;
}

/* Secondary access path: scan objects of one kind and fold their
   sums (an index-range-query stand-in). */
int Db_KindScan(int kind) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < nobjs; i++) {
		if (Mem_GetWord(i, F_KIND) == kind && Mem_GetWord(i, F_GEN) > 0) {
			acc = acc + Mem_GetWord(i, F_SUM);
		}
	}
	return acc;
}

int Db_Lookup(int id) {
	int h;
	int i;
	h = Hash_Key(id);
	i = hashtab[h];
	while (i) {
		if (Mem_GetWord(i - 1, F_ID) == id) { return i - 1; }
		i = objs[i - 1].next;
	}
	return -1;
}

int Db_Insert(int id, int kind) {
	int h;
	int i;
	i = Db_Lookup(id);
	if (i >= 0) {
		Mem_PutWord(i, F_GEN, Mem_GetWord(i, F_GEN) + 1);
		return i;
	}
	if (nobjs >= 1024) { return -1; }
	i = nobjs;
	nobjs++;
	Mem_PutWord(i, F_ID, id);
	Mem_PutWord(i, F_KIND, kind);
	Mem_PutWord(i, F_REF, 0);
	Mem_PutWord(i, F_SUM, id * 3 + kind);
	Mem_PutWord(i, F_GEN, 1);
	h = Hash_Key(id);
	objs[i].next = hashtab[h];
	hashtab[h] = i + 1;
	return i;
}

void Db_Update(int id, int delta) {
	int i;
	i = Db_Lookup(id);
	if (i < 0) { misses++; return; }
	Mem_PutWord(i, F_SUM, Mem_GetWord(i, F_SUM) + delta);
	Mem_PutWord(i, F_REF, Mem_GetWord(i, F_REF) + 1);
	hits++;
}

int Db_Validate(int i) {
	int ok;
	if (Chunk_ChkGetObj(i) < 0) { return 0; }
	ok = Mem_GetWord(i, F_GEN) > 0;
	ok = ok && Mem_GetWord(i, F_ID) >= 0;
	ok = ok && Mem_GetWord(i, F_REF) >= 0;
	return ok;
}

int Db_Scan() {
	int i;
	int good;
	good = 0;
	for (i = 0; i < nobjs; i += 4) {
		if (Db_Validate(i)) {
			good = good + Mem_GetWord(i, F_SUM);
		}
	}
	return good;
}

void Db_Reset() {
	int i;
	nobjs = 0;
	for (i = 0; i < 256; i++) { hashtab[i] = 0; }
}

void transaction(int op, int id) {
	int i;
	txcount++;
	switch (op) {
	case 0:
		Db_Insert(id, id & 7);
		break;
	case 4:
		if (Db_Delete(id)) { hits++; } else { misses++; }
		break;
	case 5:
		checksum = checksum ^ Db_KindScan(id & 7);
		break;
	case 1:
		i = Db_Lookup(id);
		if (i >= 0) {
			checksum = checksum + Mem_GetWord(i, F_SUM);
			hits++;
		} else {
			misses++;
		}
		break;
	case 2:
		Db_Update(id, op + id);
		break;
	default:
		checksum = checksum ^ Db_Scan();
	}
}

int main() {
	int round;
	int p;
	objs = malloc(1024 * sizeof(struct obj));
	txlen = read_block(txbuf, 8192);
	for (round = 0; round < 1000000; round++) {
		Db_Reset();
		p = 0;
		while (p + 1 < txlen) {
			transaction(txbuf[p], txbuf[p + 1]);
			p += 2;
		}
		print_int(checksum + hits - misses);
		putchar(10);
	}
	return checksum & 127;
}
`
