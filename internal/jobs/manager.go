package jobs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
)

// Sentinel errors for the API layer to map onto status codes.
var (
	// ErrUnknownJob: no job with that ID (404).
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrTerminal: the job already finished; cancel is meaningless (409).
	ErrTerminal = errors.New("jobs: job already terminal")
	// ErrNotDone: the report was requested before the job finished (202).
	ErrNotDone = errors.New("jobs: job not done")
	// ErrDraining: the manager is shutting down; no new submissions (503).
	ErrDraining = errors.New("jobs: manager draining")
)

// Defaults, overridable via Options.
const (
	DefaultRetries    = 3
	DefaultWorkers    = 2
	DefaultBackoff    = 500 * time.Millisecond
	DefaultMaxBackoff = time.Minute
)

// Options configures a Manager.
type Options struct {
	// Dir is the journal directory (required).
	Dir string
	// Runner executes jobs — the same gated, cached, breaker-guarded
	// runner the synchronous API uses, so jobs respect admission
	// control and fill the shared result cache (required).
	Runner *repro.Runner
	// Checkpoints, when set, makes every attempt crash-resumable: the
	// manager threads a per-job CheckpointPolicy (keyed by the job ID,
	// which IS the result-cache fingerprint) through the run so a
	// re-enqueued job continues from its last ICKP snapshot.
	Checkpoints *checkpoint.Store
	// CheckpointEvery paces snapshots by retire count (0 = wall-clock
	// default pacing; see core.CheckpointPolicy.Every).
	CheckpointEvery uint64
	// Retries bounds attempts after the first: a job runs at most
	// 1+Retries times (0 = DefaultRetries; negative = no retries).
	Retries int
	// Deadline bounds each attempt's wall clock (0 = none). A blown
	// deadline is transient — the next attempt resumes from the last
	// checkpoint, so bounded retries still make forward progress.
	Deadline time.Duration
	// Workers is the number of concurrent job executors (0 =
	// DefaultWorkers). The Runner's Gate still applies underneath.
	Workers int
	// Backoff and MaxBackoff shape the retry schedule:
	// Backoff·2^(attempt-1) ±25% jitter, capped at MaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Shape, when set, adjusts each attempt's Config just before the
	// run — the server copies its execution-shaping fields (timeout,
	// watchdog, dispatch path) here, since those are deliberately not
	// part of the job Spec.
	Shape func(*core.Config)
	// Registry receives job_* counters (nil = obs.Default).
	Registry *obs.Registry
	// Log receives job lifecycle lines (nil = silent).
	Log *obs.Logger

	// now is the clock; tests replace it to pin backoff schedules.
	now func() time.Time
}

// Stats are the manager's counters, exported on /metrics under the
// job_ prefix via StatValues.
type Stats struct {
	Submitted   obs.Counter // new jobs accepted (including resubmits of failed jobs)
	Deduped     obs.Counter // submissions answered by an existing live/done job
	Done        obs.Counter // jobs finished successfully
	Failed      obs.Counter // jobs failed permanently (classification or retries exhausted)
	Retried     obs.Counter // transient failures re-enqueued with backoff
	Resumed     obs.Counter // attempts that restored a checkpoint snapshot
	Canceled    obs.Counter // jobs canceled via the API
	Interrupted obs.Counter // jobs journaled as interrupted during drain
	Recovered   obs.Counter // jobs re-enqueued by journal replay at startup
}

// job is the in-memory state alongside the journaled Record.
type job struct {
	rec Record
	// nextRunMS is the earliest dispatch time (unix ms) — the backoff
	// deadline after a transient failure; 0 = immediately eligible.
	nextRunMS int64
	// canceled marks a cancel request that raced a running attempt.
	canceled bool
	// cancelAttempt aborts the in-flight attempt (nil when not running).
	cancelAttempt context.CancelFunc
	// Newest checkpoint snapshot seen this process, for the status doc.
	ckptRetired uint64
	ckptAtMS    int64
}

// Manager is the crash-durable job tier: a journal-backed queue of
// measurement jobs executed through the shared Runner with retries,
// backoff, and checkpoint resume. Open it, then Start it; Drain stops
// it, journaling in-flight work as interrupted so the next process
// finishes it.
type Manager struct {
	opts  Options
	ctx   context.Context
	stop  context.CancelFunc
	wg    sync.WaitGroup
	wake  chan struct{}
	rng   *rand.Rand // jitter; guarded by mu
	Stats Stats

	mu       sync.Mutex
	journal  *Journal
	jobs     map[string]*job
	seq      uint64
	draining bool
}

// Open replays the journal in opts.Dir and returns a manager holding
// the surviving jobs: queued, running, and interrupted records are
// re-enqueued (the work is incomplete by definition — a clean finish
// would have journaled a terminal state), terminal records are kept
// for status/report queries. Call Start to begin executing.
func Open(opts Options) (*Manager, error) {
	if opts.Runner == nil {
		return nil, errors.New("jobs: Options.Runner is required")
	}
	if opts.Retries == 0 {
		opts.Retries = DefaultRetries
	}
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	journal, live, err := OpenJournal(opts.Dir)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		opts:    opts,
		ctx:     ctx,
		stop:    stop,
		wake:    make(chan struct{}, 1),
		rng:     rand.New(rand.NewSource(opts.now().UnixNano())),
		journal: journal,
		jobs:    make(map[string]*job, len(live)),
	}
	for _, rec := range live {
		if rec.Seq >= m.seq {
			m.seq = rec.Seq + 1
		}
		j := &job{rec: rec}
		switch rec.State {
		case StateRunning, StateInterrupted, StateQueued:
			// Incomplete work from the previous process: run it again.
			// The checkpoint store (same ID = same key) turns "again"
			// into "from the last snapshot".
			if rec.State != StateQueued {
				j.rec.State = StateQueued
				j.rec.UpdatedMS = m.nowMS()
				if err := journal.Append(j.rec); err != nil {
					journal.Close()
					stop()
					return nil, err
				}
			}
			m.Stats.Recovered.Inc()
			m.opts.Log.Info("job recovered from journal",
				"id", short(rec.ID), "workload", rec.Spec.Workload, "was", string(rec.State))
		}
		m.jobs[rec.ID] = j
	}
	return m, nil
}

// Start launches the worker pool. Idempotent per manager lifetime.
func (m *Manager) Start() {
	for i := 0; i < m.opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.signal()
}

// Drain stops accepting work, aborts in-flight attempts, journals
// them as interrupted, waits for the workers, and closes the journal.
// After Drain the journal is a complete, durable statement of what
// the next process must finish.
func (m *Manager) Drain() {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	m.mu.Unlock()
	m.stop() // cancels every attempt ctx; complete() sees draining
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	// Queued jobs that never got an attempt are already durable as
	// queued; only journal a state change for ones we know nothing new
	// about. Close flushes nothing (appends are fsynced) but releases
	// the file.
	m.journal.Close()
	m.opts.Log.Info("job manager drained", "jobs", len(m.jobs))
}

// Submit registers a job for the spec, idempotently: an identical
// measurement (same fingerprint) that is queued, running, or done is
// returned as-is; a failed or canceled one is re-enqueued fresh.
// existing reports whether the returned job predates this call.
func (m *Manager) Submit(spec Spec) (Doc, bool, error) {
	id, err := spec.Validate()
	if err != nil {
		return Doc{}, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Doc{}, false, ErrDraining
	}
	now := m.nowMS()
	if j, ok := m.jobs[id]; ok {
		if !j.rec.State.Terminal() || j.rec.State == StateDone {
			m.Stats.Deduped.Inc()
			return m.docLocked(j), true, nil
		}
		// failed or canceled: resubmit restarts it from scratch
		// (modulo any checkpoint snapshot, which is a pure bonus).
		j.rec.State = StateQueued
		j.rec.Retries = 0
		j.rec.Resumes = 0
		j.rec.Error = ""
		j.rec.Seq = m.seq
		j.rec.SubmittedMS = now
		j.rec.UpdatedMS = now
		j.nextRunMS = 0
		j.canceled = false
		m.seq++
		if err := m.journal.Append(j.rec); err != nil {
			return Doc{}, false, err
		}
		m.Stats.Submitted.Inc()
		m.opts.Log.Info("job resubmitted", "id", short(id), "workload", spec.Workload)
		m.signal()
		return m.docLocked(j), false, nil
	}
	j := &job{rec: Record{
		ID:          id,
		Seq:         m.seq,
		Spec:        spec,
		State:       StateQueued,
		SubmittedMS: now,
		UpdatedMS:   now,
	}}
	m.seq++
	if err := m.journal.Append(j.rec); err != nil {
		return Doc{}, false, err
	}
	m.jobs[id] = j
	m.Stats.Submitted.Inc()
	m.opts.Log.Info("job submitted", "id", short(id), "workload", spec.Workload,
		"skip", spec.Skip, "measure", spec.Measure)
	m.signal()
	return m.docLocked(j), false, nil
}

// Status returns the job's API view.
func (m *Manager) Status(id string) (Doc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Doc{}, ErrUnknownJob
	}
	return m.docLocked(j), nil
}

// List returns every job, submit-ordered.
func (m *Manager) List() []Doc {
	m.mu.Lock()
	defer m.mu.Unlock()
	docs := make([]Doc, 0, len(m.jobs))
	for _, j := range m.jobs {
		docs = append(docs, m.docLocked(j))
	}
	sort.Slice(docs, func(a, b int) bool {
		if docs[a].SubmittedMS != docs[b].SubmittedMS {
			return docs[a].SubmittedMS < docs[b].SubmittedMS
		}
		return docs[a].ID < docs[b].ID
	})
	return docs
}

// Cancel stops a job: a queued one is journaled canceled immediately,
// a running one has its attempt aborted (the worker journals the
// cancellation when the run unwinds). Terminal jobs return
// ErrTerminal.
func (m *Manager) Cancel(id string) (Doc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Doc{}, ErrUnknownJob
	}
	switch {
	case j.rec.State.Terminal():
		return m.docLocked(j), ErrTerminal
	case j.rec.State == StateRunning:
		j.canceled = true
		if j.cancelAttempt != nil {
			j.cancelAttempt()
		}
		return m.docLocked(j), nil
	default: // queued / interrupted
		j.rec.State = StateCanceled
		j.rec.UpdatedMS = m.nowMS()
		m.journal.Append(j.rec)
		m.Stats.Canceled.Inc()
		m.opts.Log.Info("job canceled", "id", short(id))
		return m.docLocked(j), nil
	}
}

// ReportJSON returns the canonical report bytes for a done job. The
// report is recomputed through the Runner — normally a pure cache hit;
// if the cache entry was evicted the deterministic simulator rebuilds
// byte-identical output (resuming from any surviving checkpoint).
func (m *Manager) ReportJSON(ctx context.Context, id string) ([]byte, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrUnknownJob
	}
	if j.rec.State != StateDone {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: job is %s", ErrNotDone, j.rec.State)
	}
	spec := j.rec.Spec
	m.mu.Unlock()
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	rep, err := m.opts.Runner.RunWorkload(ctx, spec.Workload, cfg)
	if err != nil {
		return nil, err
	}
	return repro.CanonicalReportJSON(rep)
}

// StatValues snapshots every manager counter plus the live queue
// gauges, name-sorted, for the server's /metrics document.
func (m *Manager) StatValues() []obs.NamedValue {
	m.mu.Lock()
	var queued, running int64
	for _, j := range m.jobs {
		switch j.rec.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	m.mu.Unlock()
	return []obs.NamedValue{
		{Name: "canceled", Value: int64(m.Stats.Canceled.Value())},
		{Name: "deduped", Value: int64(m.Stats.Deduped.Value())},
		{Name: "done", Value: int64(m.Stats.Done.Value())},
		{Name: "failed", Value: int64(m.Stats.Failed.Value())},
		{Name: "interrupted", Value: int64(m.Stats.Interrupted.Value())},
		{Name: "journal_appends", Value: int64(m.journal.Stats.Appends.Value())},
		{Name: "journal_compactions", Value: int64(m.journal.Stats.Compactions.Value())},
		{Name: "journal_replayed", Value: int64(m.journal.Stats.Replayed.Value())},
		{Name: "journal_tmp_scrubbed", Value: int64(m.journal.Stats.TmpScrubbed.Value())},
		{Name: "journal_torn_dropped", Value: int64(m.journal.Stats.TornDropped.Value())},
		{Name: "queued", Value: queued},
		{Name: "recovered", Value: int64(m.Stats.Recovered.Value())},
		{Name: "resumed", Value: int64(m.Stats.Resumed.Value())},
		{Name: "retried", Value: int64(m.Stats.Retried.Value())},
		{Name: "running", Value: running},
		{Name: "submitted", Value: int64(m.Stats.Submitted.Value())},
	}
}

// ---- dispatch ----

// worker executes jobs until the manager stops: claim the oldest
// eligible queued job, run one attempt, classify, repeat.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

// next blocks until a queued job is eligible (its backoff deadline
// passed) or the manager stops, claiming the job by marking and
// journaling it running. Claims cascade: after taking one job it
// re-signals so sibling workers re-check the queue.
func (m *Manager) next() *job {
	for {
		m.mu.Lock()
		now := m.nowMS()
		var best *job
		earliest := int64(math.MaxInt64)
		for _, j := range m.jobs {
			if j.rec.State != StateQueued {
				continue
			}
			if j.nextRunMS > now {
				if j.nextRunMS < earliest {
					earliest = j.nextRunMS
				}
				continue
			}
			if best == nil || j.rec.Seq < best.rec.Seq {
				best = j
			}
		}
		if best != nil {
			best.rec.State = StateRunning
			best.rec.UpdatedMS = now
			m.journal.Append(best.rec)
			m.mu.Unlock()
			m.signal() // there may be more eligible jobs for other workers
			return best
		}
		m.mu.Unlock()
		var backoffTimer *time.Timer
		var fire <-chan time.Time
		if earliest != math.MaxInt64 {
			backoffTimer = time.NewTimer(time.Duration(earliest-now) * time.Millisecond)
			fire = backoffTimer.C
		}
		select {
		case <-m.ctx.Done():
			if backoffTimer != nil {
				backoffTimer.Stop()
			}
			return nil
		case <-m.wake:
		case <-fire:
		}
		if backoffTimer != nil {
			backoffTimer.Stop()
		}
	}
}

// runJob executes one attempt and routes the outcome through complete.
func (m *Manager) runJob(j *job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if m.opts.Deadline > 0 {
		ctx, cancel = context.WithTimeout(m.ctx, m.opts.Deadline)
	} else {
		ctx, cancel = context.WithCancel(m.ctx)
	}
	defer cancel()
	m.mu.Lock()
	j.cancelAttempt = cancel
	alreadyCanceled := j.canceled
	rec := j.rec
	m.mu.Unlock()
	if alreadyCanceled {
		m.complete(j, context.Canceled)
		return
	}

	cfg, err := rec.Spec.Config()
	if err != nil {
		// Can't happen past Submit's validation; classify as permanent.
		m.complete(j, &minic.Error{Msg: err.Error()})
		return
	}
	if m.opts.Shape != nil {
		m.opts.Shape(&cfg)
	}
	if m.opts.Checkpoints != nil {
		cfg.Checkpoint = &core.CheckpointPolicy{
			Store:  m.opts.Checkpoints,
			Key:    rec.ID,
			Every:  m.opts.CheckpointEvery,
			Resume: true,
			Notify: func(ev core.CheckpointEvent) { m.onCheckpoint(j, ev) },
		}
	}

	span, ctx := obs.StartSpanCtx(ctx, "job")
	span.SetAttr("id", short(rec.ID))
	span.SetAttr("attempt", rec.Retries+1)
	_, err = m.opts.Runner.RunWorkload(ctx, rec.Spec.Workload, cfg)
	span.End()
	m.complete(j, err)
}

// onCheckpoint tracks resume/snapshot events for the status doc and
// the job_resumed counter; resumes are journaled so a crash-resumed
// job's history survives yet another crash.
func (m *Manager) onCheckpoint(j *job, ev core.CheckpointEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.ckptRetired = ev.Retired
	j.ckptAtMS = m.nowMS()
	if ev.Resumed {
		j.rec.Resumes++
		j.rec.UpdatedMS = m.nowMS()
		m.journal.Append(j.rec)
		m.Stats.Resumed.Inc()
		m.opts.Log.Info("job resumed from checkpoint",
			"id", short(j.rec.ID), "retired", ev.Retired, "phase", ev.Phase)
	}
}

// complete classifies an attempt's outcome and journals the
// transition. Order matters: success first, then the explicit
// cancel/drain interruptions (the run unwinds with context.Canceled
// for both, so intent disambiguates), then permanent failures, then
// the bounded-retry budget.
func (m *Manager) complete(j *job, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancelAttempt = nil
	now := m.nowMS()
	j.rec.UpdatedMS = now
	switch {
	case err == nil:
		j.rec.State = StateDone
		j.rec.Error = ""
		m.Stats.Done.Inc()
		m.opts.Log.Info("job done", "id", short(j.rec.ID),
			"retries", j.rec.Retries, "resumes", j.rec.Resumes)
	case j.canceled:
		j.rec.State = StateCanceled
		j.rec.Error = "canceled"
		m.Stats.Canceled.Inc()
		m.opts.Log.Info("job canceled", "id", short(j.rec.ID))
	case m.isDraining():
		// Shutdown aborted the attempt. Journal the honest state: the
		// work is interrupted, and the next process must finish it.
		j.rec.State = StateInterrupted
		j.rec.Error = ""
		m.Stats.Interrupted.Inc()
		m.opts.Log.Info("job interrupted by drain", "id", short(j.rec.ID))
	case permanent(err):
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
		m.Stats.Failed.Inc()
		m.opts.Log.Warn("job failed permanently", "id", short(j.rec.ID), "err", err.Error())
	case j.rec.Retries >= m.opts.Retries:
		j.rec.State = StateFailed
		j.rec.Error = fmt.Sprintf("retries exhausted (%d): %s", j.rec.Retries, err)
		m.Stats.Failed.Inc()
		m.opts.Log.Warn("job failed, retries exhausted",
			"id", short(j.rec.ID), "retries", j.rec.Retries, "err", err.Error())
	default:
		j.rec.Retries++
		j.rec.State = StateQueued
		j.rec.Error = err.Error()
		j.nextRunMS = now + m.backoffMS(j.rec.Retries)
		m.Stats.Retried.Inc()
		m.opts.Log.Info("job retry scheduled", "id", short(j.rec.ID),
			"attempt", j.rec.Retries+1, "backoff_ms", j.nextRunMS-now, "err", err.Error())
	}
	m.journal.Append(j.rec)
	m.signal()
}

// permanent reports whether the error can never succeed on retry.
// Compile errors are deterministic — the same source fails the same
// way forever. Everything else (timeout, watchdog, panic, shed, open
// breaker, sim fault) is presumed transient: the environment, load,
// or kill point may differ next attempt, and with checkpoints each
// retry starts further along than the last.
func permanent(err error) bool {
	var compileErr *minic.Error
	return errors.As(err, &compileErr)
}

// backoffMS is the retry delay in ms for the n-th retry (n ≥ 1):
// Backoff·2^(n-1), ±25% jitter, capped at MaxBackoff. Jitter spreads
// the thundering herd of jobs re-enqueued together by a drain.
func (m *Manager) backoffMS(n int) int64 {
	d := m.opts.Backoff
	for i := 1; i < n && d < m.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > m.opts.MaxBackoff {
		d = m.opts.MaxBackoff
	}
	ms := d.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	jitter := m.rng.Int63n(ms/2+1) - ms/4 // ±25%
	return ms + jitter
}

func (m *Manager) isDraining() bool { return m.draining }

func (m *Manager) nowMS() int64 { return m.opts.now().UnixMilli() }

// signal nudges one sleeping worker; claims cascade further signals.
func (m *Manager) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// docLocked renders a job's API view. Caller holds m.mu.
func (m *Manager) docLocked(j *job) Doc {
	d := Doc{
		ID:          j.rec.ID,
		Spec:        j.rec.Spec,
		State:       j.rec.State,
		Retries:     j.rec.Retries,
		Resumes:     j.rec.Resumes,
		Error:       j.rec.Error,
		SubmittedMS: j.rec.SubmittedMS,
		UpdatedMS:   j.rec.UpdatedMS,
	}
	if j.rec.State == StateQueued && j.nextRunMS > 0 {
		d.NextRetryMS = j.nextRunMS
	}
	if j.ckptAtMS != 0 {
		d.Checkpoint = &CheckpointInfo{
			Retired: j.ckptRetired,
			AgeMS:   m.nowMS() - j.ckptAtMS,
		}
	}
	return d
}

// short abbreviates a fingerprint for log lines.
func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
