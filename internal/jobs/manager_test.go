package jobs

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
)

// testSpec is a valid tiny job spec (the workload must exist; the
// window is irrelevant to fake-runner tests).
func testSpec() Spec { return Spec{Workload: "lzw", Skip: 100, Measure: 1000} }

// fakeRunner builds a Runner whose compute step is the given func —
// the same injection point the server tests use.
func fakeRunner(run func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error)) *repro.Runner {
	return &repro.Runner{Run: run}
}

func openManager(t *testing.T, dir string, opts Options) *Manager {
	t.Helper()
	opts.Dir = dir
	if opts.Backoff == 0 {
		opts.Backoff = time.Millisecond
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Doc {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		doc, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if doc.State == want {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s (doc %+v)", short(id), doc.State, want, doc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestManagerRunsJobToDone(t *testing.T) {
	var runs atomic.Int64
	m := openManager(t, t.TempDir(), Options{
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			runs.Add(1)
			return &repro.Report{}, nil
		}),
	})
	defer m.Drain()
	m.Start()
	doc, existing, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Error("fresh submit reported existing")
	}
	doc = waitState(t, m, doc.ID, StateDone)
	if doc.Retries != 0 || runs.Load() != 1 {
		t.Errorf("done after %d runs with %d retries, want 1/0", runs.Load(), doc.Retries)
	}
	if m.Stats.Done.Value() != 1 || m.Stats.Submitted.Value() != 1 {
		t.Errorf("counters: done=%d submitted=%d", m.Stats.Done.Value(), m.Stats.Submitted.Value())
	}
}

func TestSubmitIdempotent(t *testing.T) {
	release := make(chan struct{})
	m := openManager(t, t.TempDir(), Options{
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			select {
			case <-release:
				return &repro.Report{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}),
	})
	defer m.Drain()
	m.Start()
	first, _, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)
	// Same measurement → same fingerprint → same job, while running...
	dup, existing, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !existing || dup.ID != first.ID {
		t.Errorf("duplicate submit: existing=%v id=%s, want true/%s", existing, dup.ID, first.ID)
	}
	// ...and still the same job once done.
	close(release)
	waitState(t, m, first.ID, StateDone)
	dup, existing, err = m.Submit(testSpec())
	if err != nil || !existing || dup.State != StateDone {
		t.Errorf("post-done submit: existing=%v state=%s err=%v", existing, dup.State, err)
	}
	// A different measurement is a different job.
	other := testSpec()
	other.Measure = 2000
	doc, existing, err := m.Submit(other)
	if err != nil || existing || doc.ID == first.ID {
		t.Errorf("distinct spec: existing=%v sameID=%v err=%v", existing, doc.ID == first.ID, err)
	}
	if m.Stats.Deduped.Value() != 2 {
		t.Errorf("deduped = %d, want 2", m.Stats.Deduped.Value())
	}
}

func TestTransientFailureRetriesThenSucceeds(t *testing.T) {
	var runs atomic.Int64
	m := openManager(t, t.TempDir(), Options{
		Retries: 3,
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			if runs.Add(1) <= 2 {
				return nil, &core.TimeoutError{}
			}
			return &repro.Report{}, nil
		}),
	})
	defer m.Drain()
	m.Start()
	doc, _, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	doc = waitState(t, m, doc.ID, StateDone)
	if doc.Retries != 2 || runs.Load() != 3 {
		t.Errorf("done after %d runs with %d retries, want 3/2", runs.Load(), doc.Retries)
	}
	if m.Stats.Retried.Value() != 2 {
		t.Errorf("retried = %d, want 2", m.Stats.Retried.Value())
	}
}

func TestPermanentFailureNeverRetries(t *testing.T) {
	var runs atomic.Int64
	m := openManager(t, t.TempDir(), Options{
		Retries: 5,
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			runs.Add(1)
			return nil, &minic.Error{Line: 3, Msg: "undefined variable"}
		}),
	})
	defer m.Drain()
	m.Start()
	doc, _, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	doc = waitState(t, m, doc.ID, StateFailed)
	if runs.Load() != 1 || doc.Retries != 0 {
		t.Errorf("compile error ran %d times with %d retries, want 1/0", runs.Load(), doc.Retries)
	}
	if !strings.Contains(doc.Error, "undefined variable") {
		t.Errorf("doc.Error = %q, want the compile error", doc.Error)
	}
}

func TestRetriesExhausted(t *testing.T) {
	var runs atomic.Int64
	m := openManager(t, t.TempDir(), Options{
		Retries: 2,
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			runs.Add(1)
			return nil, errors.New("flaky")
		}),
	})
	defer m.Drain()
	m.Start()
	doc, _, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	doc = waitState(t, m, doc.ID, StateFailed)
	if runs.Load() != 3 { // 1 attempt + 2 retries
		t.Errorf("ran %d times, want 3", runs.Load())
	}
	if !strings.Contains(doc.Error, "retries exhausted") {
		t.Errorf("doc.Error = %q, want retries-exhausted", doc.Error)
	}

	// A failed job can be resubmitted and gets a fresh retry budget.
	runs.Store(0)
	doc2, existing, err := m.Submit(testSpec())
	if err != nil || existing {
		t.Fatalf("resubmit: existing=%v err=%v", existing, err)
	}
	waitState(t, m, doc2.ID, StateFailed)
	if runs.Load() != 3 {
		t.Errorf("resubmit ran %d times, want 3", runs.Load())
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	m := openManager(t, t.TempDir(), Options{
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}),
	})
	defer m.Drain()
	m.Start()
	doc, _, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(doc.ID); err != nil {
		t.Fatal(err)
	}
	doc = waitState(t, m, doc.ID, StateCanceled)
	// Canceled is terminal: cancel again is a conflict...
	if _, err := m.Cancel(doc.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("second cancel err = %v, want ErrTerminal", err)
	}
	// ...and the report is unavailable.
	if _, err := m.ReportJSON(context.Background(), doc.ID); !errors.Is(err, ErrNotDone) {
		t.Errorf("report of canceled job err = %v, want ErrNotDone", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	m := openManager(t, t.TempDir(), Options{
		Workers: 1,
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			select {
			case <-release:
				return &repro.Report{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}),
	})
	defer m.Drain()
	m.Start()
	blocker, _, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queuedSpec := testSpec()
	queuedSpec.Measure = 2000
	queued, _, err := m.Submit(queuedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if doc, err := m.Cancel(queued.ID); err != nil || doc.State != StateCanceled {
		t.Fatalf("cancel queued: state=%s err=%v", doc.State, err)
	}
	close(release)
	waitState(t, m, blocker.ID, StateDone)
}

func TestDrainJournalsInterruptedAndRecoveryFinishes(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	m := openManager(t, dir, Options{
		Workers: 1,
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}),
	})
	m.Start()
	doc, _, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	m.Drain()
	if got, _ := m.Status(doc.ID); got.State != StateInterrupted {
		t.Fatalf("after drain job is %s, want interrupted", got.State)
	}
	if m.Stats.Interrupted.Value() != 1 {
		t.Errorf("interrupted = %d, want 1", m.Stats.Interrupted.Value())
	}
	if _, _, err := m.Submit(testSpec()); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain err = %v, want ErrDraining", err)
	}

	// The next process replays the journal and finishes the work.
	var runs atomic.Int64
	m2 := openManager(t, dir, Options{
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			runs.Add(1)
			return &repro.Report{}, nil
		}),
	})
	defer m2.Drain()
	if m2.Stats.Recovered.Value() != 1 {
		t.Fatalf("recovered = %d, want 1", m2.Stats.Recovered.Value())
	}
	m2.Start()
	got := waitState(t, m2, doc.ID, StateDone)
	if runs.Load() != 1 || got.ID != doc.ID {
		t.Errorf("recovery ran %d times for %s", runs.Load(), short(got.ID))
	}
}

func TestCheckpointResumeCountsAndStatus(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.Open(dir + "/ckpt")
	if err != nil {
		t.Fatal(err)
	}
	// The fake run emits the same Notify events core.Run would: one
	// resume at startup, one snapshot write later.
	m := openManager(t, dir+"/jobs", Options{
		Checkpoints:     store,
		CheckpointEvery: 1000,
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			ck := cfg.Checkpoint
			if ck == nil || ck.Store != store || !ck.Resume || ck.Every != 1000 {
				t.Errorf("job ran without the expected checkpoint policy: %+v", ck)
			} else if ck.Key == "" {
				t.Error("checkpoint key is empty, want the job fingerprint")
			} else {
				ck.Notify(core.CheckpointEvent{Benchmark: name, Resumed: true, Retired: 5000})
				ck.Notify(core.CheckpointEvent{Benchmark: name, Retired: 9000, Bytes: 128})
			}
			return &repro.Report{}, nil
		}),
	})
	defer m.Drain()
	m.Start()
	doc, _, err := m.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	doc = waitState(t, m, doc.ID, StateDone)
	if doc.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", doc.Resumes)
	}
	if doc.Checkpoint == nil || doc.Checkpoint.Retired != 9000 {
		t.Errorf("checkpoint info = %+v, want retired 9000", doc.Checkpoint)
	}
	if m.Stats.Resumed.Value() != 1 {
		t.Errorf("resumed counter = %d, want 1", m.Stats.Resumed.Value())
	}
}

func TestUnknownWorkloadRejectedAtSubmit(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{Runner: &repro.Runner{}})
	defer m.Drain()
	if _, _, err := m.Submit(Spec{Workload: "nope", Measure: 1}); err == nil {
		t.Fatal("submit of unknown workload succeeded")
	}
	if _, err := m.Status("feedc0de"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("status of unknown id err = %v, want ErrUnknownJob", err)
	}
}

func TestReportJSONEndToEnd(t *testing.T) {
	// Real runner, tiny window: the async-job answer must be
	// byte-identical to a direct synchronous run.
	m := openManager(t, t.TempDir(), Options{Runner: &repro.Runner{}})
	defer m.Drain()
	m.Start()
	spec := Spec{Workload: "lzw", Skip: 1000, Measure: 20000}
	doc, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, doc.ID, StateDone)
	got, err := m.ReportJSON(context.Background(), doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.RunWorkload(context.Background(), spec.Workload, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.CanonicalReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("job report differs from direct run (%d vs %d bytes)", len(got), len(want))
	}
}

func TestListAndStatValues(t *testing.T) {
	m := openManager(t, t.TempDir(), Options{
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			return &repro.Report{}, nil
		}),
	})
	defer m.Drain()
	m.Start()
	a, _, _ := m.Submit(testSpec())
	specB := testSpec()
	specB.Measure = 2000
	b, _, _ := m.Submit(specB)
	waitState(t, m, a.ID, StateDone)
	waitState(t, m, b.ID, StateDone)
	docs := m.List()
	if len(docs) != 2 {
		t.Fatalf("List returned %d docs, want 2", len(docs))
	}
	vals := m.StatValues()
	byName := map[string]int64{}
	for _, v := range vals {
		byName[v.Name] = v.Value
	}
	if byName["done"] != 2 || byName["submitted"] != 2 || byName["queued"] != 0 {
		t.Errorf("StatValues = %v", byName)
	}
	if byName["journal_appends"] < 4 { // ≥ 2 submits + 2 transitions each
		t.Errorf("journal_appends = %d, want ≥ 4", byName["journal_appends"])
	}
}

func TestDocRetryAfter(t *testing.T) {
	now := time.Now()
	terminal := Doc{State: StateDone}
	if got := terminal.RetryAfter(now, time.Second); got != 0 {
		t.Errorf("terminal RetryAfter = %v, want 0", got)
	}
	running := Doc{State: StateRunning}
	if got := running.RetryAfter(now, time.Second); got != time.Second {
		t.Errorf("running RetryAfter = %v, want 1s", got)
	}
	backedOff := Doc{State: StateQueued, NextRetryMS: now.Add(5 * time.Second).UnixMilli()}
	if got := backedOff.RetryAfter(now, time.Second); got < 4*time.Second {
		t.Errorf("backed-off RetryAfter = %v, want ~5s", got)
	}
}

func TestSpecConfigRoundTrip(t *testing.T) {
	cfg := core.Config{
		SkipInstructions:    5,
		MeasureInstructions: 10,
		ReuseEntries:        256,
		ReuseAssoc:          2,
		DisableVPred:        true,
	}
	spec := SpecFromConfig("lzw", cfg)
	back, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if back.MeasurementKey() != cfg.MeasurementKey() {
		t.Errorf("round trip changed the measurement key:\n  %s\n  %s",
			cfg.MeasurementKey(), back.MeasurementKey())
	}
	if _, err := (Spec{Workload: "lzw", ReusePolicy: "bogus"}).Validate(); err == nil {
		t.Error("bogus reuse policy validated")
	}
}

func TestManagerLogsLifecycle(t *testing.T) {
	var buf bytes.Buffer
	logMu := obs.NewLogger(&buf, obs.LevelInfo)
	m := openManager(t, t.TempDir(), Options{
		Log: logMu,
		Runner: fakeRunner(func(ctx context.Context, name string, cfg repro.Config) (*repro.Report, error) {
			return &repro.Report{}, nil
		}),
	})
	m.Start()
	doc, _, _ := m.Submit(testSpec())
	waitState(t, m, doc.ID, StateDone)
	m.Drain()
	out := buf.String()
	for _, want := range []string{"job submitted", "job done", "job manager drained"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}
