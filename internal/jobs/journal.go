package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// The journal is a single append-only file of framed records, one per
// job state transition. Each record is independently verifiable:
//
//	offset  size  field
//	0       4     magic "IJOB"
//	4       4     format version (big endian)
//	8       4     body length (big endian)
//	12      n     body — Record as JSON
//	12+n    32    SHA-256 over everything above
//
// This is the ICKP envelope (internal/checkpoint) re-applied at record
// granularity: a torn write from SIGKILL mid-append corrupts only the
// final record, and the startup scan proves it by checksum and
// truncates the file back to the last good frame. Appends are fsynced
// so an acknowledged transition survives the process; compaction
// rewrites the file via create-temp+rename so it is all-or-nothing.
const (
	journalMagic   = "IJOB"
	journalVersion = 1
	journalName    = "journal.ijob"
	tmpSuffix      = ".tmp"

	recHeaderLen = 12
	recTrailer   = sha256.Size
	// maxBodyLen bounds a single record body; anything larger in the
	// length field is corruption, not a real record.
	maxBodyLen = 1 << 20
)

// JournalStats are the journal's observability counters, exported on
// /metrics under the job_ prefix.
type JournalStats struct {
	Appends     obs.Counter // records appended (and fsynced)
	Compactions obs.Counter // full rewrites (temp+rename)
	Replayed    obs.Counter // records recovered by the startup scan
	TornDropped obs.Counter // trailing bytes discarded as torn/corrupt
	TmpScrubbed obs.Counter // orphaned *.tmp files removed at startup
}

// Journal is the append-only job ledger. It is not internally
// synchronized: the Manager serializes all access under its own lock.
type Journal struct {
	dir  string
	path string
	f    *os.File

	Stats JournalStats
}

// OpenJournal opens (creating if needed) the journal in dir, scrubs
// orphaned temp files, scans existing records — truncating any torn
// tail — and returns the surviving state: the last record per job ID,
// ordered by submit sequence. It then compacts the file down to
// exactly those records so replay history never accumulates across
// restarts.
func OpenJournal(dir string) (*Journal, []Record, error) {
	if dir == "" {
		return nil, nil, errors.New("jobs: empty journal directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	j := &Journal{dir: dir, path: filepath.Join(dir, journalName)}

	// A SIGKILL during compaction can leave the temp file behind; the
	// rename either happened (journal is the compacted ledger) or did
	// not (journal is the old ledger) — the orphan is garbage either way.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), tmpSuffix) {
			if os.Remove(filepath.Join(dir, ent.Name())) == nil {
				j.Stats.TmpScrubbed.Inc()
			}
		}
	}

	data, err := os.ReadFile(j.path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	recs, good := ScanJournal(data)
	j.Stats.Replayed.Add(uint64(len(recs)))
	if good < len(data) {
		j.Stats.TornDropped.Add(uint64(len(data) - good))
	}
	live := latestPerID(recs)

	// Compact-on-open also truncates the torn tail as a side effect:
	// the rewritten file contains only whole, checksummed frames.
	if err := j.compactLocked(live); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: %w", err)
	}
	j.f = f
	return j, live, nil
}

// Append frames, writes, and fsyncs one record. On return the
// transition is durable: a SIGKILL at any later instant replays it.
func (j *Journal) Append(rec Record) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("jobs: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: journal sync: %w", err)
	}
	j.Stats.Appends.Inc()
	return nil
}

// Compact rewrites the journal to hold exactly the given records,
// atomically (temp+rename). The Manager calls it when terminal jobs
// pile up; OpenJournal calls it to collapse replay history.
func (j *Journal) Compact(live []Record) error {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	if err := j.compactLocked(live); err != nil {
		return err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	j.f = f
	return nil
}

func (j *Journal) compactLocked(live []Record) error {
	tmp, err := os.CreateTemp(j.dir, journalName+"-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	for _, rec := range live {
		frame, err := encodeRecord(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("jobs: journal compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	j.Stats.Compactions.Inc()
	return nil
}

// Close releases the journal file. Appends after Close fail.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// encodeRecord frames one record in the journal envelope.
func encodeRecord(rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobs: encode record: %w", err)
	}
	if len(body) > maxBodyLen {
		return nil, fmt.Errorf("jobs: record body %d bytes exceeds %d", len(body), maxBodyLen)
	}
	frame := make([]byte, 0, recHeaderLen+len(body)+recTrailer)
	frame = append(frame, journalMagic...)
	frame = binary.BigEndian.AppendUint32(frame, journalVersion)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	sum := sha256.Sum256(frame)
	return append(frame, sum[:]...), nil
}

// ScanJournal walks the framed records in data, stopping at the first
// frame that is incomplete, checksum-invalid, from a foreign format
// version, or otherwise malformed. It returns the records decoded up
// to that point and the byte offset of the scan frontier — everything
// past it is a torn tail to discard. ScanJournal never panics on
// arbitrary input (fuzzed).
func ScanJournal(data []byte) (recs []Record, goodLen int) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < recHeaderLen {
			return recs, off
		}
		if string(rest[:4]) != journalMagic {
			return recs, off
		}
		if binary.BigEndian.Uint32(rest[4:8]) != journalVersion {
			return recs, off
		}
		n := int(binary.BigEndian.Uint32(rest[8:12]))
		if n > maxBodyLen || len(rest) < recHeaderLen+n+recTrailer {
			return recs, off
		}
		frame := rest[:recHeaderLen+n+recTrailer]
		sum := sha256.Sum256(frame[:recHeaderLen+n])
		if string(sum[:]) != string(frame[recHeaderLen+n:]) {
			return recs, off
		}
		var rec Record
		if err := json.Unmarshal(frame[recHeaderLen:recHeaderLen+n], &rec); err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += len(frame)
	}
}

// latestPerID collapses a replay history to the newest record per job
// (later frames supersede earlier ones), ordered by submit sequence so
// re-enqueued jobs keep their original FIFO position.
func latestPerID(recs []Record) []Record {
	last := make(map[string]Record, len(recs))
	for _, rec := range recs {
		last[rec.ID] = rec
	}
	live := make([]Record, 0, len(last))
	for _, rec := range last {
		live = append(live, rec)
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Seq < live[b].Seq })
	return live
}
