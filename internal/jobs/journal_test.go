package jobs

import (
	"os"
	"path/filepath"
	"testing"
)

func rec(id string, seq uint64, state State) Record {
	return Record{
		ID:    id,
		Seq:   seq,
		Spec:  Spec{Workload: "lzw", Skip: 100, Measure: 1000},
		State: state,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, live, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(live))
	}
	// Two jobs, with job a transitioning twice: the replay must keep
	// only the newest record per ID, ordered by seq.
	for _, r := range []Record{
		rec("aa", 0, StateQueued),
		rec("bb", 1, StateQueued),
		rec("aa", 0, StateRunning),
		rec("aa", 0, StateDone),
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, live, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Stats.Replayed.Value(); got != 4 {
		t.Errorf("Replayed = %d, want 4", got)
	}
	if j2.Stats.TornDropped.Value() != 0 {
		t.Errorf("TornDropped = %d, want 0", j2.Stats.TornDropped.Value())
	}
	if len(live) != 2 {
		t.Fatalf("live = %v, want 2 records", live)
	}
	if live[0].ID != "aa" || live[0].State != StateDone {
		t.Errorf("live[0] = %+v, want aa/done", live[0])
	}
	if live[1].ID != "bb" || live[1].State != StateQueued {
		t.Errorf("live[1] = %+v, want bb/queued", live[1])
	}

	// Compact-on-open collapsed the 4-record history to 2 frames.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	recs, good := ScanJournal(data)
	if len(recs) != 2 || good != len(data) {
		t.Errorf("compacted file holds %d records (%d/%d bytes good)", len(recs), good, len(data))
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	frameA, err := encodeRecord(rec("aa", 0, StateQueued))
	if err != nil {
		t.Fatal(err)
	}
	frameB, err := encodeRecord(rec("bb", 1, StateRunning))
	if err != nil {
		t.Fatal(err)
	}
	// A SIGKILL mid-append leaves a partial final frame: keep all of
	// frame A and the first half of frame B.
	torn := append(append([]byte{}, frameA...), frameB[:len(frameB)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j, live, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0].ID != "aa" {
		t.Fatalf("live = %+v, want just aa", live)
	}
	if got := j.Stats.TornDropped.Value(); got != uint64(len(frameB)/2) {
		t.Errorf("TornDropped = %d, want %d", got, len(frameB)/2)
	}
	// The torn bytes are gone from disk: appends after recovery start
	// at a clean frame boundary.
	if err := j.Append(rec("cc", 2, StateQueued)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, live, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Stats.TornDropped.Value() != 0 {
		t.Errorf("second open dropped %d bytes, want 0", j2.Stats.TornDropped.Value())
	}
	if len(live) != 2 {
		t.Errorf("live after recovery = %+v, want aa and cc", live)
	}
}

func TestJournalCorruptMiddleStopsScan(t *testing.T) {
	frameA, _ := encodeRecord(rec("aa", 0, StateQueued))
	frameB, _ := encodeRecord(rec("bb", 1, StateQueued))
	data := append(append([]byte{}, frameA...), frameB...)
	// Flip one body byte of frame A: its checksum fails, and — because
	// frame boundaries can't be trusted past a bad frame — everything
	// after it is discarded too.
	data[recHeaderLen] ^= 0xff
	recs, good := ScanJournal(data)
	if len(recs) != 0 || good != 0 {
		t.Errorf("scan past corrupt frame: %d records, %d bytes", len(recs), good)
	}
}

func TestJournalScrubsOrphanTempFiles(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, journalName+"-12345"+tmpSuffix)
	if err := os.WriteFile(orphan, []byte("half a compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := j.Stats.TmpScrubbed.Value(); got != 1 {
		t.Errorf("TmpScrubbed = %d, want 1", got)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan temp file survived the scrub: %v", err)
	}
}

func FuzzJournalScan(f *testing.F) {
	frameA, _ := encodeRecord(rec("aa", 0, StateQueued))
	frameB, _ := encodeRecord(rec("bb", 1, StateDone))
	f.Add([]byte{})
	f.Add(frameA)
	f.Add(append(append([]byte{}, frameA...), frameB...))
	f.Add(frameA[:len(frameA)-1])
	f.Add([]byte(journalMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := ScanJournal(data) // must not panic
		if good < 0 || good > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", good, len(data))
		}
		// Prefix property: the good prefix rescans to the same records.
		again, againGood := ScanJournal(data[:good])
		if againGood != good || len(again) != len(recs) {
			t.Fatalf("rescan of good prefix: %d records/%d bytes, want %d/%d",
				len(again), againGood, len(recs), good)
		}
	})
}
