// Package jobs is the crash-durable async job tier: a journaled job
// manager over the cache/checkpoint-aware run path, so expensive
// (workload, config) measurements that don't fit a request timeout can
// be submitted, survive a server crash, and finish anyway.
//
// Durability comes from two layers. The journal (an append-only file
// of versioned, checksummed records — see journal.go) makes the job
// *ledger* survive a SIGKILL: on restart the manager replays it and
// re-enqueues every job that was queued, running, or interrupted. The
// checkpoint store (internal/checkpoint, threaded through per job by
// the result-cache fingerprint key) makes the job's *work* survive:
// a re-enqueued job resumes from its last ICKP snapshot rather than
// from zero, and — because runs are deterministic — its final report
// is byte-identical to an uninterrupted run. See DESIGN.md §18.
package jobs

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/resultcache"
	"repro/internal/reuse"
	"repro/internal/workloads"
)

// State is a job's lifecycle state. Transitions:
//
//	queued → running → done | failed | canceled | interrupted
//	running → queued              (transient failure, retry with backoff)
//	interrupted → queued          (journal replay at the next startup)
//	failed/canceled → queued      (explicit resubmit)
//
// done, failed, and canceled are terminal until a resubmit;
// interrupted is a durable promise that the next process will finish
// the work.
type State string

const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCanceled    State = "canceled"
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state ends the job's lifecycle (absent
// a resubmit). Interrupted is deliberately non-terminal: it means
// "finish me after the restart".
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is the measurement a job computes: a workload plus the
// measurement-affecting Config fields (the exact set covered by
// core.Config.MeasurementKey). Execution-shaping fields — timeout,
// watchdog, dispatch path — are deliberately absent: they belong to
// the serving process, not the job identity, and must not change the
// fingerprint.
type Spec struct {
	Workload     string `json:"workload"`
	Skip         uint64 `json:"skip"`
	Measure      uint64 `json:"measure"`
	MaxInstances int    `json:"instances,omitempty"`
	ReuseEntries int    `json:"reuse_entries,omitempty"`
	ReuseAssoc   int    `json:"reuse_assoc,omitempty"`
	ReusePolicy  string `json:"reuse_policy,omitempty"`
	VPredEntries int    `json:"vpred_entries,omitempty"`
	InputVariant int    `json:"input_variant,omitempty"`
	DisableTaint bool   `json:"disable_taint,omitempty"`
	DisableLocal bool   `json:"disable_local,omitempty"`
	DisableFunc  bool   `json:"disable_func,omitempty"`
	DisableReuse bool   `json:"disable_reuse,omitempty"`
	DisableVPred bool   `json:"disable_vpred,omitempty"`
	DisableVProf bool   `json:"disable_vprof,omitempty"`
}

// SpecFromConfig builds a Spec from a run Config's measurement fields
// (the server uses it to default submit requests to its own RunConfig).
func SpecFromConfig(workload string, cfg core.Config) Spec {
	policy := ""
	if cfg.ReusePolicy != 0 {
		policy = cfg.ReusePolicy.String()
	}
	return Spec{
		Workload:     workload,
		Skip:         cfg.SkipInstructions,
		Measure:      cfg.MeasureInstructions,
		MaxInstances: cfg.MaxInstances,
		ReuseEntries: cfg.ReuseEntries,
		ReuseAssoc:   cfg.ReuseAssoc,
		ReusePolicy:  policy,
		VPredEntries: cfg.VPredEntries,
		InputVariant: cfg.InputVariant,
		DisableTaint: cfg.DisableTaint,
		DisableLocal: cfg.DisableLocal,
		DisableFunc:  cfg.DisableFunc,
		DisableReuse: cfg.DisableReuse,
		DisableVPred: cfg.DisableVPred,
		DisableVProf: cfg.DisableVProf,
	}
}

// Config converts the spec back into a measurement Config. It fails on
// an unknown replacement policy; workload existence is checked by
// Validate.
func (s Spec) Config() (core.Config, error) {
	cfg := core.Config{
		SkipInstructions:    s.Skip,
		MeasureInstructions: s.Measure,
		MaxInstances:        s.MaxInstances,
		ReuseEntries:        s.ReuseEntries,
		ReuseAssoc:          s.ReuseAssoc,
		VPredEntries:        s.VPredEntries,
		InputVariant:        s.InputVariant,
		DisableTaint:        s.DisableTaint,
		DisableLocal:        s.DisableLocal,
		DisableFunc:         s.DisableFunc,
		DisableReuse:        s.DisableReuse,
		DisableVPred:        s.DisableVPred,
		DisableVProf:        s.DisableVProf,
	}
	if s.ReusePolicy != "" {
		p, err := reuse.ParsePolicy(s.ReusePolicy)
		if err != nil {
			return cfg, err
		}
		cfg.ReusePolicy = p
	}
	return cfg, nil
}

// Validate checks the spec and returns its job ID — the result-cache
// fingerprint of (workload source, measurement config, simulator
// version). Identical measurements share an ID by construction, which
// is what makes submission idempotent.
func (s Spec) Validate() (id string, err error) {
	w, ok := workloads.ByName(s.Workload)
	if !ok {
		return "", fmt.Errorf("jobs: unknown workload %q (have %v)", s.Workload, workloads.Names())
	}
	cfg, err := s.Config()
	if err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	return resultcache.Fingerprint(s.Workload, w.Source, cfg), nil
}

// Record is one journaled job snapshot: the whole job state at a
// transition. The journal holds a history of these; the last record
// per ID wins on replay.
type Record struct {
	ID          string `json:"id"`
	Seq         uint64 `json:"seq"` // submit order, for FIFO dispatch
	Spec        Spec   `json:"spec"`
	State       State  `json:"state"`
	Retries     int    `json:"retries"`
	Resumes     int    `json:"resumes"`
	Error       string `json:"error,omitempty"`
	SubmittedMS int64  `json:"submitted_ms"`
	UpdatedMS   int64  `json:"updated_ms"`
}

// CheckpointInfo summarizes a job's newest simulation snapshot: what a
// crash right now would cost.
type CheckpointInfo struct {
	Retired uint64 `json:"retired"`
	AgeMS   int64  `json:"age_ms"`
}

// Doc is the job's API view (GET /v1/jobs/{id}).
type Doc struct {
	ID          string          `json:"id"`
	Spec        Spec            `json:"spec"`
	State       State           `json:"state"`
	Retries     int             `json:"retries"`
	Resumes     int             `json:"resumes"`
	Error       string          `json:"error,omitempty"`
	SubmittedMS int64           `json:"submitted_ms"`
	UpdatedMS   int64           `json:"updated_ms"`
	NextRetryMS int64           `json:"next_retry_ms,omitempty"` // backoff deadline, unix ms
	Checkpoint  *CheckpointInfo `json:"checkpoint,omitempty"`
}

// RetryAfter suggests a client poll interval for the doc's state: the
// remaining backoff for a queued retry, else fallback for any live
// state, else zero (terminal; stop polling).
func (d Doc) RetryAfter(now time.Time, fallback time.Duration) time.Duration {
	if d.State.Terminal() {
		return 0
	}
	if d.NextRetryMS > 0 {
		if wait := time.UnixMilli(d.NextRetryMS).Sub(now); wait > fallback {
			return wait
		}
	}
	return fallback
}
