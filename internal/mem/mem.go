// Package mem provides a sparse, paged 32-bit byte-addressable memory
// for the functional simulator, plus parallel "shadow" spaces used by
// the dataflow analyses to tag memory words.
package mem

// PageBits is the log2 of the page size in bytes.
const PageBits = 12

// PageSize is the size of one page in bytes.
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

// The 20-bit page number is resolved through a two-level radix table
// (10+10 bits) instead of a map: a page lookup is two array indexes
// with no hashing, which matters because every simulated load and
// store resolves a page. A second-level node covers 4 MiB of address
// space, so a typical workload touches a handful of nodes.
const (
	radixBits = 10
	radixSize = 1 << radixBits
	radixMask = radixSize - 1
)

type pageNode = [radixSize]*[PageSize]byte

// Memory is a sparse paged memory. The zero value is an empty memory in
// which every byte reads as zero. Memory is little-endian, matching the
// MIPS little-endian configuration used by SimpleScalar.
type Memory struct {
	l1     [radixSize]*pageNode
	npages int

	// One-entry page cache: consecutive accesses overwhelmingly land on
	// the same page, and pages are never freed, so the cached pointer
	// can only go stale by pointing at a still-valid page. cpn is
	// meaningful only while cpage != nil.
	cpn   uint32
	cpage *[PageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{}
}

func (m *Memory) page(addr uint32, create bool) *[PageSize]byte {
	pn := addr >> PageBits
	if p := m.cpage; p != nil && m.cpn == pn {
		return p
	}
	l2 := m.l1[pn>>radixBits]
	if l2 == nil {
		if !create {
			return nil
		}
		l2 = new(pageNode)
		m.l1[pn>>radixBits] = l2
	}
	p := l2[pn&radixMask]
	if p == nil && create {
		p = new([PageSize]byte)
		l2[pn&radixMask] = p
		m.npages++
	}
	if p != nil {
		m.cpn, m.cpage = pn, p
	}
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// ReadHalf returns the little-endian 16-bit value at addr.
func (m *Memory) ReadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// WriteHalf stores the little-endian 16-bit value v at addr.
func (m *Memory) WriteHalf(addr uint32, v uint16) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// ReadWord returns the little-endian 32-bit value at addr. The fast path
// assumes word accesses do not straddle pages (true for aligned
// accesses, which is all the simulator issues for words).
func (m *Memory) ReadWord(addr uint32) uint32 {
	off := addr & pageMask
	if off <= PageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	return uint32(m.ReadHalf(addr)) | uint32(m.ReadHalf(addr+2))<<16
}

// WriteWord stores the little-endian 32-bit value v at addr.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	off := addr & pageMask
	if off <= PageSize-4 {
		p := m.page(addr, true)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	m.WriteHalf(addr, uint16(v))
	m.WriteHalf(addr+2, uint16(v>>16))
}

// StoreBytes copies b into memory starting at addr.
func (m *Memory) StoreBytes(addr uint32, b []byte) {
	for i, c := range b {
		m.StoreByte(addr+uint32(i), c)
	}
}

// LoadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) LoadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint32(i))
	}
	return out
}

// ReadCString reads a NUL-terminated string at addr, up to max bytes.
func (m *Memory) ReadCString(addr uint32, max int) string {
	var out []byte
	for i := 0; i < max; i++ {
		b := m.LoadByte(addr + uint32(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// PagesAllocated returns the number of resident pages (for tests and
// resource accounting).
func (m *Memory) PagesAllocated() int { return m.npages }

type shadowNode = [radixSize]*[PageSize / 4]byte

// Shadow is a sparse paged tag space with one byte of metadata per
// 32-bit word of simulated memory. The dataflow analyses use it to
// track value origins through memory. Pages resolve through the same
// two-level radix layout Memory uses.
type Shadow struct {
	l1 [radixSize]*shadowNode

	// One-entry page cache (same rationale as Memory's): tag pages are
	// never freed, so the cached pointer cannot dangle.
	cpn   uint32
	cpage *[PageSize / 4]byte
}

// NewShadow returns an empty shadow space; every word's tag reads as 0.
func NewShadow() *Shadow {
	return &Shadow{}
}

// Get returns the tag of the word containing addr.
func (s *Shadow) Get(addr uint32) byte {
	pn := addr >> PageBits
	if p := s.cpage; p != nil && s.cpn == pn {
		return p[addr&pageMask>>2]
	}
	l2 := s.l1[pn>>radixBits]
	if l2 == nil {
		return 0
	}
	p := l2[pn&radixMask]
	if p == nil {
		return 0
	}
	s.cpn, s.cpage = pn, p
	return p[addr&pageMask>>2]
}

// Set assigns tag to the word containing addr.
func (s *Shadow) Set(addr uint32, tag byte) {
	pn := addr >> PageBits
	if p := s.cpage; p != nil && s.cpn == pn {
		p[addr&pageMask>>2] = tag
		return
	}
	l2 := s.l1[pn>>radixBits]
	if l2 == nil {
		if tag == 0 {
			return
		}
		l2 = new(shadowNode)
		s.l1[pn>>radixBits] = l2
	}
	p := l2[pn&radixMask]
	if p == nil {
		if tag == 0 {
			return
		}
		p = new([PageSize / 4]byte)
		l2[pn&radixMask] = p
	}
	s.cpn, s.cpage = pn, p
	p[addr&pageMask>>2] = tag
}

// SetRange assigns tag to every word overlapping [addr, addr+n).
func (s *Shadow) SetRange(addr uint32, n int, tag byte) {
	if n <= 0 {
		return
	}
	first := addr &^ 3
	last := (addr + uint32(n) - 1) &^ 3
	for a := first; ; a += 4 {
		s.Set(a, tag)
		if a == last {
			break
		}
	}
}
