package mem

import "repro/internal/checkpoint"

// maxPageNumber bounds a serialized page number: the address space is
// 32 bits, pages are PageBits wide.
const maxPageNumber = 1 << (32 - PageBits)

// SnapshotTo writes every allocated page in page-number order: a page
// count, then (page number, PageSize raw bytes) per page. All-zero
// pages are kept — allocation state is part of the machine state, and
// keeping it makes a resumed machine's snapshot byte-identical to the
// uninterrupted one's.
func (m *Memory) SnapshotTo(w *checkpoint.Writer) {
	w.U32(uint32(m.npages))
	for i, l2 := range m.l1 {
		if l2 == nil {
			continue
		}
		for j, p := range l2 {
			if p == nil {
				continue
			}
			w.U32(uint32(i)<<radixBits | uint32(j))
			w.Fixed(p[:])
		}
	}
}

// RestoreFrom replaces the memory's contents with the snapshot. Page
// numbers must be strictly increasing and in range (the canonical form
// admits exactly one encoding per state). The one-entry page cache is
// left empty — it is a derived cache, repopulated on first access.
func (m *Memory) RestoreFrom(r *checkpoint.Reader) error {
	*m = Memory{}
	n := r.Count(4 + PageSize)
	last := int64(-1)
	for i := 0; i < n; i++ {
		pn := r.U32()
		data := r.Fixed(PageSize)
		if r.Err() != nil {
			return r.Err()
		}
		if int64(pn) <= last || pn >= maxPageNumber {
			return checkpoint.ErrMalformed
		}
		last = int64(pn)
		l2 := m.l1[pn>>radixBits]
		if l2 == nil {
			l2 = new(pageNode)
			m.l1[pn>>radixBits] = l2
		}
		p := new([PageSize]byte)
		copy(p[:], data)
		l2[pn&radixMask] = p
		m.npages++
	}
	return r.Err()
}

// SnapshotTo writes every allocated tag page in page-number order,
// same layout as Memory's (tag pages are PageSize/4 bytes: one tag
// byte per word).
func (s *Shadow) SnapshotTo(w *checkpoint.Writer) {
	count := 0
	for _, l2 := range s.l1 {
		if l2 == nil {
			continue
		}
		for _, p := range l2 {
			if p != nil {
				count++
			}
		}
	}
	w.U32(uint32(count))
	for i, l2 := range s.l1 {
		if l2 == nil {
			continue
		}
		for j, p := range l2 {
			if p == nil {
				continue
			}
			w.U32(uint32(i)<<radixBits | uint32(j))
			w.Fixed(p[:])
		}
	}
}

// RestoreFrom replaces the shadow space's contents with the snapshot,
// leaving the page cache empty (derived state).
func (s *Shadow) RestoreFrom(r *checkpoint.Reader) error {
	*s = Shadow{}
	n := r.Count(4 + PageSize/4)
	last := int64(-1)
	for i := 0; i < n; i++ {
		pn := r.U32()
		data := r.Fixed(PageSize / 4)
		if r.Err() != nil {
			return r.Err()
		}
		if int64(pn) <= last || pn >= maxPageNumber {
			return checkpoint.ErrMalformed
		}
		last = int64(pn)
		l2 := s.l1[pn>>radixBits]
		if l2 == nil {
			l2 = new(shadowNode)
			s.l1[pn>>radixBits] = l2
		}
		p := new([PageSize / 4]byte)
		copy(p[:], data)
		l2[pn&radixMask] = p
	}
	return r.Err()
}
