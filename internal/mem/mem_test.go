package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroDefault(t *testing.T) {
	m := New()
	if m.LoadByte(0x1234) != 0 || m.ReadWord(0x1000) != 0 || m.ReadHalf(0x2) != 0 {
		t.Error("fresh memory should read zero")
	}
	if m.PagesAllocated() != 0 {
		t.Error("reads should not allocate pages")
	}
}

func TestByteHalfWordRoundTrip(t *testing.T) {
	m := New()
	m.StoreByte(100, 0xab)
	if got := m.LoadByte(100); got != 0xab {
		t.Errorf("byte = %#x", got)
	}
	m.WriteHalf(200, 0xbeef)
	if got := m.ReadHalf(200); got != 0xbeef {
		t.Errorf("half = %#x", got)
	}
	m.WriteWord(300, 0xdeadbeef)
	if got := m.ReadWord(300); got != 0xdeadbeef {
		t.Errorf("word = %#x", got)
	}
}

func TestLittleEndian(t *testing.T) {
	m := New()
	m.WriteWord(0x1000, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if got := m.LoadByte(0x1000 + uint32(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
	m.StoreByte(0x2000, 0x11)
	m.StoreByte(0x2001, 0x22)
	if got := m.ReadHalf(0x2000); got != 0x2211 {
		t.Errorf("half = %#x", got)
	}
}

func TestPageBoundary(t *testing.T) {
	m := New()
	// Word write straddling a page boundary (only possible unaligned;
	// the slow path must still work).
	addr := uint32(PageSize - 2)
	m.WriteWord(addr, 0xcafebabe)
	if got := m.ReadWord(addr); got != 0xcafebabe {
		t.Errorf("straddling word = %#x", got)
	}
	if m.PagesAllocated() != 2 {
		t.Errorf("pages = %d, want 2", m.PagesAllocated())
	}
}

func TestBulkBytes(t *testing.T) {
	m := New()
	data := []byte("hello, world")
	m.StoreBytes(0x5000, data)
	if got := string(m.LoadBytes(0x5000, len(data))); got != string(data) {
		t.Errorf("round trip = %q", got)
	}
}

func TestReadCString(t *testing.T) {
	m := New()
	m.StoreBytes(0x100, []byte("abc\x00def"))
	if got := m.ReadCString(0x100, 100); got != "abc" {
		t.Errorf("cstring = %q", got)
	}
	if got := m.ReadCString(0x100, 2); got != "ab" {
		t.Errorf("bounded cstring = %q", got)
	}
}

// Property: the memory behaves like a map of bytes — random writes then
// reads agree with a Go map model.
func TestMemoryModelProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		m := New()
		model := map[uint32]byte{}
		for i := 0; i < 500; i++ {
			addr := uint32(r.Intn(3 * PageSize))
			switch r.Intn(3) {
			case 0:
				b := byte(r.Intn(256))
				m.StoreByte(addr, b)
				model[addr] = b
			case 1:
				v := uint32(r.Uint32())
				m.WriteWord(addr, v)
				model[addr] = byte(v)
				model[addr+1] = byte(v >> 8)
				model[addr+2] = byte(v >> 16)
				model[addr+3] = byte(v >> 24)
			case 2:
				if m.LoadByte(addr) != model[addr] {
					return false
				}
			}
		}
		for addr, want := range model {
			if m.LoadByte(addr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestShadow(t *testing.T) {
	s := NewShadow()
	if s.Get(0x1000) != 0 {
		t.Error("fresh shadow should read 0")
	}
	s.Set(0x1000, 3)
	if s.Get(0x1000) != 3 || s.Get(0x1003) != 3 {
		t.Error("tag should cover the whole word")
	}
	if s.Get(0x1004) != 0 {
		t.Error("adjacent word tagged")
	}
	// Setting zero on an absent page must not allocate.
	s2 := NewShadow()
	s2.Set(0x5000, 0)
	if s2.Get(0x5000) != 0 {
		t.Error("zero set should be a no-op")
	}
}

func TestShadowSetRange(t *testing.T) {
	s := NewShadow()
	s.SetRange(0x1002, 6, 9) // covers words 0x1000, 0x1004
	for _, addr := range []uint32{0x1000, 0x1003, 0x1004, 0x1007} {
		if s.Get(addr) != 9 {
			t.Errorf("addr %#x tag = %d, want 9", addr, s.Get(addr))
		}
	}
	if s.Get(0x1008) != 0 {
		t.Error("range overshoot")
	}
	s.SetRange(0x2000, 0, 5)
	if s.Get(0x2000) != 0 {
		t.Error("empty range should be a no-op")
	}
}

func TestShadowRangeAcrossPages(t *testing.T) {
	s := NewShadow()
	start := uint32(PageSize - 8)
	s.SetRange(start, 16, 2)
	for a := start; a < start+16; a += 4 {
		if s.Get(a) != 2 {
			t.Errorf("addr %#x not tagged", a)
		}
	}
}
