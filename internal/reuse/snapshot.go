package reuse

import "repro/internal/checkpoint"

// SnapshotTo writes the buffer's complete state: the replacement
// policy and its generator state, the clock and hit counters, then a
// raw dump of every tag, every invalidation-chain node, and the chain
// heads. The dump preserves exact slot positions, LRU stamps, chain
// order, and the Random policy's xorshift state, so a restored buffer
// makes byte-for-byte the same replacement and invalidation decisions
// as the original. Geometry (assoc, sets, bucket count) and policy are
// configuration: the caller rebuilds them with NewPolicy before
// restoring, and the encoded values cross-check them.
func (b *Buffer) SnapshotTo(w *checkpoint.Writer) {
	w.U8(uint8(b.policy))
	w.U64(b.rng)
	w.U64(b.clock)
	w.U64(b.attempts)
	w.U64(b.hits)
	w.U64(b.hitsRepeated)
	w.U64(b.hitsNonRepeated)
	w.U64(b.loadInv)
	w.U32(uint32(len(b.tags)))
	for i := range b.tags {
		tg := &b.tags[i]
		w.U32(tg.pc)
		w.U32(tg.in1)
		w.U32(tg.in2)
		w.U32(tg.flags)
		w.U32(tg.result)
		w.U32(tg.aux)
		w.U64(tg.lru)
	}
	for i := range b.entries {
		e := &b.entries[i]
		w.U32(e.addr)
		w.U32(uint32(e.nextA))
		w.U32(uint32(e.prevA))
	}
	w.U32(uint32(len(b.addrHead)))
	for _, h := range b.addrHead {
		w.U32(uint32(h))
	}
}

// RestoreFrom loads a snapshot into a buffer constructed with the
// same geometry and policy, validating that the encoded policy and
// lengths match and that every chain link is either noEntry or a valid
// entry index.
func (b *Buffer) RestoreFrom(r *checkpoint.Reader) error {
	pol := Policy(r.U8())
	if r.Err() != nil {
		return r.Err()
	}
	if pol != b.policy {
		return checkpoint.ErrMalformed
	}
	b.rng = r.U64()
	b.clock = r.U64()
	b.attempts = r.U64()
	b.hits = r.U64()
	b.hitsRepeated = r.U64()
	b.hitsNonRepeated = r.U64()
	b.loadInv = r.U64()
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(b.tags) {
		return checkpoint.ErrMalformed
	}
	for i := range b.tags {
		tg := &b.tags[i]
		tg.pc = r.U32()
		tg.in1 = r.U32()
		tg.in2 = r.U32()
		tg.flags = r.U32()
		tg.result = r.U32()
		tg.aux = r.U32()
		tg.lru = r.U64()
	}
	for i := range b.entries {
		e := &b.entries[i]
		e.addr = r.U32()
		e.nextA = int32(r.U32())
		e.prevA = int32(r.U32())
		if !b.validLink(e.nextA) || !b.validLink(e.prevA) {
			return checkpoint.ErrMalformed
		}
	}
	nb := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nb != len(b.addrHead) {
		return checkpoint.ErrMalformed
	}
	for i := range b.addrHead {
		b.addrHead[i] = int32(r.U32())
		if !b.validLink(b.addrHead[i]) {
			return checkpoint.ErrMalformed
		}
	}
	return r.Err()
}

// validLink reports whether i is noEntry or a valid entry index.
func (b *Buffer) validLink(i int32) bool {
	return i == noEntry || (i >= 0 && int(i) < len(b.entries))
}
