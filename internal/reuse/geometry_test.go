package reuse

import "testing"

func TestGeometryRoundUp(t *testing.T) {
	cases := []struct {
		entries, assoc        int
		wantEntries, wantSets int
	}{
		{0, 0, DefaultEntries, DefaultEntries / DefaultAssoc}, // defaults
		{8192, 4, 8192, 2048}, // exact
		{8192, 3, 8193, 2731}, // rounds up, never 8190
		{5, 4, 8, 2},          // small, rounds up
		{1, 1, 1, 1},          // degenerate single entry
		{1, 4, 4, 1},          // fewer entries than ways
		{3, 8, 8, 1},          // ditto
	}
	for _, c := range cases {
		b := New(c.entries, c.assoc)
		if b.Entries() != c.wantEntries || b.Sets() != c.wantSets {
			t.Errorf("New(%d, %d): entries=%d sets=%d, want %d/%d",
				c.entries, c.assoc, b.Entries(), b.Sets(), c.wantEntries, c.wantSets)
		}
		if b.Entries() < c.entries {
			t.Errorf("New(%d, %d): capacity %d below request", c.entries, c.assoc, b.Entries())
		}
		if b.Entries() != b.Sets()*b.Assoc() {
			t.Errorf("New(%d, %d): entries %d != sets*assoc %d", c.entries, c.assoc, b.Entries(), b.Sets()*b.Assoc())
		}
	}
}

// TestDegenerateSingleEntry drives the 1-entry buffer, whose bucket
// array has a single slot and whose addrShift is the full word width
// (a shift Go defines to yield 0, not UB — pin that).
func TestDegenerateSingleEntry(t *testing.T) {
	b := New(1, 1)
	if b.addrShift != 32 {
		t.Fatalf("addrShift = %d, want 32", b.addrShift)
	}
	if got := b.bucketOf(0xdeadbeec); got != 0 {
		t.Fatalf("bucketOf = %d, want 0", got)
	}
	// A load entry must survive, hit, and invalidate like any other.
	if b.Observe(loadEv(0x400000, 0x10000000, 7), false) {
		t.Error("first load hit")
	}
	if !b.Observe(loadEv(0x400000, 0x10000000, 7), true) {
		t.Error("repeat load missed")
	}
	b.Observe(storeEv(0x400004, 0x10000000, 9), false)
	// The store evicted the load (1 entry total) or invalidated it;
	// either way the next load must miss.
	if b.Observe(loadEv(0x400000, 0x10000000, 9), false) {
		t.Error("load hit after store to same word")
	}
}

// TestNonPow2Sets exercises the modulo set-index path (set count not a
// power of two) with PCs spanning many sets.
func TestNonPow2Sets(t *testing.T) {
	b := New(24, 4) // 6 sets
	if b.setMask != -1 {
		t.Fatalf("setMask = %d, want -1 for 6 sets", b.setMask)
	}
	for i := uint32(0); i < 64; i++ {
		pc := 0x400000 + i*4
		b.Observe(aluEv(pc, i, i, 2*i), false)
		if !b.Observe(aluEv(pc, i, i, 2*i), true) {
			t.Errorf("pc 0x%x: immediate repeat missed", pc)
		}
	}
}

// TestPow2SetMaskEquivalence pins that the masked fast path indexes
// exactly like the modulo it replaces.
func TestPow2SetMaskEquivalence(t *testing.T) {
	b := New(32, 4) // 8 sets, pow2
	if b.setMask != 7 {
		t.Fatalf("setMask = %d, want 7", b.setMask)
	}
	for i := uint32(0); i < 1000; i += 37 {
		pc := 0x400000 + i*4
		if got, want := b.setIndex(pc), int(pc>>2)%b.nsets; got != want {
			t.Fatalf("setIndex(0x%x) = %d, want %d", pc, got, want)
		}
	}
}
