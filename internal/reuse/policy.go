package reuse

import (
	"fmt"
	"strings"
)

// Policy selects the buffer's replacement policy — the axis the
// design-space sweep varies alongside geometry. The zero value is LRU,
// the paper's (implicit) policy, so existing Configs and snapshots of
// pre-axis code keep their behavior without saying anything.
type Policy uint8

const (
	// LRU evicts the least-recently-used way: every hit refreshes the
	// entry's stamp. This is the pre-axis behavior of the buffer.
	LRU Policy = iota
	// FIFO evicts the oldest-inserted way: hits do not refresh the
	// stamp, so residency is decided purely by insertion order.
	FIFO
	// Random evicts a seeded-pseudorandom way (invalid ways are still
	// preferred). The generator is seeded deterministically from the
	// buffer geometry, so runs — and resumed runs, which snapshot the
	// generator state — are exactly reproducible.
	Random

	numPolicies // sentinel; keep last
)

// policyNames are the canonical spellings used by flags, sweep specs,
// and the measurement key.
var policyNames = [numPolicies]string{"lru", "fifo", "random"}

// String returns the canonical lower-case policy name.
func (p Policy) String() string {
	if p.Valid() {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Valid reports whether p is one of the defined policies.
func (p Policy) Valid() bool { return p < numPolicies }

// ParsePolicy resolves a policy name (case-insensitive; "" selects
// LRU, matching the zero Config).
func ParsePolicy(s string) (Policy, error) {
	if s == "" {
		return LRU, nil
	}
	for p, name := range policyNames {
		if strings.EqualFold(s, name) {
			return Policy(p), nil
		}
	}
	return 0, fmt.Errorf("reuse: unknown replacement policy %q (valid: %s)",
		s, strings.Join(PolicyNames(), ", "))
}

// PolicyNames lists the valid policy names in declaration order.
func PolicyNames() []string {
	out := make([]string, numPolicies)
	copy(out, policyNames[:])
	return out
}

// rngSeed derives the Random policy's deterministic seed from the
// buffer geometry. Mixing the geometry in keeps two differently-sized
// buffers in one sweep from walking the same victim sequence; the
// constant keeps the state nonzero (xorshift's absorbing state).
func rngSeed(entries, assoc int) uint64 {
	return 0x9E3779B97F4A7C15 ^ uint64(entries)<<24 ^ uint64(assoc)
}

// nextRand advances the buffer's xorshift64* state and returns the
// next value. Only the Random policy consumes it, so the stream — and
// therefore the victim sequence — is a pure function of the observed
// event stream.
func (b *Buffer) nextRand() uint64 {
	x := b.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	b.rng = x
	return x * 0x2545F4914F6CDD1D
}
