// Package reuse implements the dynamic instruction reuse buffer of
// Sodani & Sohi (ISCA '97), scheme Sv: a PC-indexed set-associative
// buffer whose entries hold an instruction's operand values and
// result. An instruction whose PC and operand values match a valid
// entry is *reused* (its "execution" becomes a table lookup). Load
// entries are invalidated by stores to their address, preserving
// memory consistency. Table 10 of the paper measures how much of the
// repetition census an 8K-entry 4-way buffer captures.
package reuse

import "repro/internal/cpu"

// Default geometry from the paper: 8K entries, 4-way set associative.
const (
	DefaultEntries = 8192
	DefaultAssoc   = 4
)

type entry struct {
	valid    bool
	pc       uint32
	in1, in2 uint32
	result   uint32
	aux      uint32
	isLoad   bool
	addr     uint32 // word-aligned load address (for invalidation)
	lru      uint64
}

// Buffer is a reuse buffer.
type Buffer struct {
	sets  [][]entry
	assoc int
	nsets int

	clock uint64
	// byAddr maps word addresses to candidate entry slots holding
	// loads from that address; slots are verified on use (lazy
	// cleanup).
	byAddr map[uint32][]int32

	attempts uint64
	hits     uint64
	loadInv  uint64
}

// New creates a buffer with the given total entries and associativity
// (zero values select the paper's 8K / 4-way configuration). entries
// must be a multiple of assoc.
func New(entries, assoc int) *Buffer {
	if entries == 0 {
		entries = DefaultEntries
	}
	if assoc == 0 {
		assoc = DefaultAssoc
	}
	nsets := entries / assoc
	if nsets == 0 {
		nsets = 1
	}
	b := &Buffer{
		sets:   make([][]entry, nsets),
		assoc:  assoc,
		nsets:  nsets,
		byAddr: make(map[uint32][]int32),
	}
	for i := range b.sets {
		b.sets[i] = make([]entry, assoc)
	}
	return b
}

func (b *Buffer) setIndex(pc uint32) int {
	return int(pc>>2) % b.nsets
}

// Observe processes one retired instruction, returning whether it hit
// (was reusable).
func (b *Buffer) Observe(ev *cpu.Event, repeated bool) bool {
	b.clock++

	// Stores invalidate load entries on the same word, then are
	// themselves candidates for reuse (a repeated store writes the
	// same value to the same address).
	if ev.IsStore {
		b.invalidate(ev.Addr &^ 3)
	}

	b.attempts++
	in1, in2 := uint32(0), uint32(0)
	if ev.Src1 >= 0 {
		in1 = ev.Src1Val
	}
	if ev.Src2 >= 0 {
		in2 = ev.Src2Val
	}
	res, aux := ev.DstVal, uint32(0)
	if ev.Dst < 0 {
		res = 0
	}
	if ev.Aux >= 0 {
		aux = ev.AuxVal
	}
	if ev.IsBranch {
		res = 0
		if ev.Taken {
			res = 1
		}
	}

	si := b.setIndex(ev.PC)
	set := b.sets[si]
	for w := range set {
		e := &set[w]
		if e.valid && e.pc == ev.PC && e.in1 == in1 && e.in2 == in2 {
			// Reuse hit: the stored result stands in for execution.
			// (Sanity: with load invalidation in place the stored
			// result always matches; keep the check as an invariant.)
			if e.result == res && e.aux == aux {
				e.lru = b.clock
				b.hits++
				return true
			}
			// Result mismatch (should not happen for loads thanks to
			// invalidation; can happen only if memory changed through
			// an untracked path): refresh the entry.
			e.result, e.aux = res, aux
			e.lru = b.clock
			return false
		}
	}

	// Miss: insert with LRU replacement.
	victim := 0
	for w := 1; w < len(set); w++ {
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].lru < set[victim].lru {
			victim = w
		}
	}
	e := &set[victim]
	*e = entry{
		valid: true, pc: ev.PC, in1: in1, in2: in2,
		result: res, aux: aux, lru: b.clock,
	}
	if ev.IsLoad {
		e.isLoad = true
		e.addr = ev.Addr &^ 3
		slot := int32(si*b.assoc + victim)
		b.byAddr[e.addr] = append(b.byAddr[e.addr], slot)
	}
	return false
}

// invalidate drops load entries for the given word address.
func (b *Buffer) invalidate(addr uint32) {
	slots, ok := b.byAddr[addr]
	if !ok {
		return
	}
	for _, s := range slots {
		e := &b.sets[int(s)/b.assoc][int(s)%b.assoc]
		if e.valid && e.isLoad && e.addr == addr {
			e.valid = false
			b.loadInv++
		}
	}
	delete(b.byAddr, addr)
}

// Attempts returns the number of instructions observed.
func (b *Buffer) Attempts() uint64 { return b.attempts }

// Hits returns the number of reuse hits.
func (b *Buffer) Hits() uint64 { return b.hits }

// LoadInvalidations returns how many load entries stores invalidated.
func (b *Buffer) LoadInvalidations() uint64 { return b.loadInv }

// HitPercent returns hits as a percentage of all observed
// instructions (Table 10, "% of all inst").
func (b *Buffer) HitPercent() float64 {
	if b.attempts == 0 {
		return 0
	}
	return 100 * float64(b.hits) / float64(b.attempts)
}

// Name identifies the buffer in observability output.
func (b *Buffer) Name() string { return "reuse" }
