// Package reuse implements the dynamic instruction reuse buffer of
// Sodani & Sohi (ISCA '97), scheme Sv: a PC-indexed set-associative
// buffer whose entries hold an instruction's operand values and
// result. An instruction whose PC and operand values match a valid
// entry is *reused* (its "execution" becomes a table lookup). Load
// entries are invalidated by stores to their address, preserving
// memory consistency. Table 10 of the paper measures how much of the
// repetition census an 8K-entry 4-way buffer captures.
//
// Layout: all sets live in one contiguous entry slice (set s occupies
// entries[s*assoc : (s+1)*assoc]), and store invalidation uses a
// bounded index — a power-of-two bucket array whose buckets head
// doubly-linked chains threaded through the load entries themselves.
// A load entry is linked while it is valid and unlinked when it is
// invalidated or evicted, so the index never holds more nodes than
// the buffer holds entries (the map it replaces grew without bound
// between stores).
package reuse

import "repro/internal/cpu"

// Default geometry from the paper: 8K entries, 4-way set associative.
const (
	DefaultEntries = 8192
	DefaultAssoc   = 4
)

// noEntry terminates the intrusive address chains.
const noEntry = int32(-1)

type entry struct {
	valid    bool
	isLoad   bool
	pc       uint32
	in1, in2 uint32
	result   uint32
	aux      uint32
	addr     uint32 // word-aligned load address (for invalidation)
	lru      uint64
	// Chain links within the entry's address bucket; meaningful only
	// while the entry is a valid load.
	nextA, prevA int32
}

// Buffer is a reuse buffer.
type Buffer struct {
	entries []entry // nsets*assoc, contiguous
	assoc   int
	nsets   int

	clock uint64

	// addrHead[bucket] heads the chain of valid load entries whose
	// word address hashes to bucket; len(addrHead) is a power of two.
	addrHead  []int32
	addrShift uint

	attempts        uint64
	hits            uint64
	hitsRepeated    uint64
	hitsNonRepeated uint64
	loadInv         uint64
}

// New creates a buffer with the given total entries and associativity
// (zero values select the paper's 8K / 4-way configuration). entries
// must be a multiple of assoc.
func New(entries, assoc int) *Buffer {
	if entries == 0 {
		entries = DefaultEntries
	}
	if assoc == 0 {
		assoc = DefaultAssoc
	}
	nsets := entries / assoc
	if nsets == 0 {
		nsets = 1
	}
	b := &Buffer{
		entries: make([]entry, nsets*assoc),
		assoc:   assoc,
		nsets:   nsets,
	}
	// One bucket per entry (rounded up to a power of two) keeps the
	// chains short: each valid load occupies exactly one chain node.
	nbuckets := 1
	bits := uint(0)
	for nbuckets < nsets*assoc {
		nbuckets <<= 1
		bits++
	}
	b.addrHead = make([]int32, nbuckets)
	for i := range b.addrHead {
		b.addrHead[i] = noEntry
	}
	b.addrShift = 32 - bits
	return b
}

func (b *Buffer) setIndex(pc uint32) int {
	return int(pc>>2) % b.nsets
}

// bucketOf hashes a word-aligned address to its chain bucket
// (multiplicative hash, taking the high bits).
func (b *Buffer) bucketOf(addr uint32) int {
	return int(((addr >> 2) * 2654435761) >> b.addrShift)
}

// linkLoad threads entry ei into its address bucket's chain.
func (b *Buffer) linkLoad(ei int32) {
	e := &b.entries[ei]
	bkt := b.bucketOf(e.addr)
	e.prevA = noEntry
	e.nextA = b.addrHead[bkt]
	if e.nextA != noEntry {
		b.entries[e.nextA].prevA = ei
	}
	b.addrHead[bkt] = ei
}

// unlinkLoad removes entry ei from its address bucket's chain.
func (b *Buffer) unlinkLoad(ei int32) {
	e := &b.entries[ei]
	if e.prevA != noEntry {
		b.entries[e.prevA].nextA = e.nextA
	} else {
		b.addrHead[b.bucketOf(e.addr)] = e.nextA
	}
	if e.nextA != noEntry {
		b.entries[e.nextA].prevA = e.prevA
	}
	e.nextA, e.prevA = noEntry, noEntry
}

// Observe processes one retired instruction, returning whether it hit
// (was reusable). The repeated flag is the repetition census's verdict
// for the same instruction; the buffer splits its hit count on it so
// Table 10's two percentages derive from this one dispatch path.
func (b *Buffer) Observe(ev *cpu.Event, repeated bool) bool {
	b.clock++

	// Stores invalidate load entries on the same word, then are
	// themselves candidates for reuse (a repeated store writes the
	// same value to the same address).
	if ev.IsStore {
		b.invalidate(ev.Addr &^ 3)
	}

	b.attempts++
	in1, in2 := uint32(0), uint32(0)
	if ev.Src1 >= 0 {
		in1 = ev.Src1Val
	}
	if ev.Src2 >= 0 {
		in2 = ev.Src2Val
	}
	res, aux := ev.DstVal, uint32(0)
	if ev.Dst < 0 {
		res = 0
	}
	if ev.Aux >= 0 {
		aux = ev.AuxVal
	}
	if ev.IsBranch {
		res = 0
		if ev.Taken {
			res = 1
		}
	}

	si := b.setIndex(ev.PC)
	set := b.entries[si*b.assoc : si*b.assoc+b.assoc]
	for w := range set {
		e := &set[w]
		if e.valid && e.pc == ev.PC && e.in1 == in1 && e.in2 == in2 {
			// Reuse hit: the stored result stands in for execution.
			// (Sanity: with load invalidation in place the stored
			// result always matches; keep the check as an invariant.)
			if e.result == res && e.aux == aux {
				e.lru = b.clock
				b.hits++
				if repeated {
					b.hitsRepeated++
				} else {
					b.hitsNonRepeated++
				}
				return true
			}
			// Result mismatch (should not happen for loads thanks to
			// invalidation; can happen only if memory changed through
			// an untracked path): refresh the entry.
			e.result, e.aux = res, aux
			e.lru = b.clock
			return false
		}
	}

	// Miss: insert with LRU replacement.
	victim := 0
	for w := 1; w < len(set); w++ {
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].lru < set[victim].lru {
			victim = w
		}
	}
	ei := int32(si*b.assoc + victim)
	e := &b.entries[ei]
	if e.valid && e.isLoad {
		b.unlinkLoad(ei)
	}
	*e = entry{
		valid: true, pc: ev.PC, in1: in1, in2: in2,
		result: res, aux: aux, lru: b.clock,
		nextA: noEntry, prevA: noEntry,
	}
	if ev.IsLoad {
		e.isLoad = true
		e.addr = ev.Addr &^ 3
		b.linkLoad(ei)
	}
	return false
}

// invalidate drops load entries for the given word address. The
// bucket chain holds only valid load entries, so a walk touches at
// most the loads hashing to this bucket.
func (b *Buffer) invalidate(addr uint32) {
	ei := b.addrHead[b.bucketOf(addr)]
	for ei != noEntry {
		next := b.entries[ei].nextA
		if b.entries[ei].addr == addr {
			b.entries[ei].valid = false
			b.loadInv++
			b.unlinkLoad(ei)
		}
		ei = next
	}
}

// Attempts returns the number of instructions observed.
func (b *Buffer) Attempts() uint64 { return b.attempts }

// Hits returns the number of reuse hits.
func (b *Buffer) Hits() uint64 { return b.hits }

// HitsRepeated returns the reuse hits on instructions the repetition
// census classified as repeated (Table 10's "% of repeated inst"
// numerator).
func (b *Buffer) HitsRepeated() uint64 { return b.hitsRepeated }

// HitsNonRepeated returns the reuse hits on instructions the census
// did not classify as repeated (a hit whose matching census instance
// aged out of the 2000-entry buffer, or one observed before the
// instruction's first census repeat).
func (b *Buffer) HitsNonRepeated() uint64 { return b.hitsNonRepeated }

// LoadInvalidations returns how many load entries stores invalidated.
func (b *Buffer) LoadInvalidations() uint64 { return b.loadInv }

// HitPercent returns hits as a percentage of all observed
// instructions (Table 10, "% of all inst").
func (b *Buffer) HitPercent() float64 {
	if b.attempts == 0 {
		return 0
	}
	return 100 * float64(b.hits) / float64(b.attempts)
}

// Name identifies the buffer in observability output.
func (b *Buffer) Name() string { return "reuse" }
