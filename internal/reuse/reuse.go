// Package reuse implements the dynamic instruction reuse buffer of
// Sodani & Sohi (ISCA '97), scheme Sv: a PC-indexed set-associative
// buffer whose entries hold an instruction's operand values and
// result. An instruction whose PC and operand values match a valid
// entry is *reused* (its "execution" becomes a table lookup). Load
// entries are invalidated by stores to their address, preserving
// memory consistency. Table 10 of the paper measures how much of the
// repetition census an 8K-entry 4-way buffer captures.
//
// Layout: all sets live in one contiguous entry slice (set s occupies
// entries[s*assoc : (s+1)*assoc]), and store invalidation uses a
// bounded index — a power-of-two bucket array whose buckets head
// doubly-linked chains threaded through the load entries themselves.
// A load entry is linked while it is valid and unlinked when it is
// invalidated or evicted, so the index never holds more nodes than
// the buffer holds entries (the map it replaces grew without bound
// between stores).
package reuse

import "repro/internal/cpu"

// Default geometry from the paper: 8K entries, 4-way set associative.
const (
	DefaultEntries = 8192
	DefaultAssoc   = 4
)

// noEntry terminates the intrusive address chains.
const noEntry = int32(-1)

// tag is the hot half of an entry, packed 32 bytes so a whole 4-way
// set spans exactly two cache lines. It holds everything every access
// touches: the probe identity (pc/in1/in2), the stored result a hit
// reads, and the lru stamp the replacement scan reads on a miss.
// pc == 0 marks an invalid entry (0 is below the text base, so no
// real instruction has it). Only the load-invalidation machinery
// (address + chain links) is cold and lives in the parallel entries
// slice.
type tag struct {
	pc       uint32
	in1, in2 uint32
	flags    uint32 // bit 0: isLoad
	result   uint32
	aux      uint32
	lru      uint64
}

// entry is the cold half: the invalidation-chain node, meaningful
// only while the entry is a valid load.
type entry struct {
	addr         uint32 // word-aligned load address
	nextA, prevA int32
}

// Buffer is a reuse buffer.
type Buffer struct {
	tags    []tag   // nsets*assoc, contiguous; probe-path identity
	entries []entry // parallel cold halves
	assoc   int
	nsets   int
	setMask int // nsets-1 when nsets is a power of two, else -1
	policy  Policy

	clock uint64
	rng   uint64 // Random-policy xorshift state (seeded, deterministic)

	// addrHead[bucket] heads the chain of valid load entries whose
	// word address hashes to bucket; len(addrHead) is a power of two.
	addrHead  []int32
	addrShift uint

	attempts        uint64
	hits            uint64
	hitsRepeated    uint64
	hitsNonRepeated uint64
	loadInv         uint64
}

// New creates a buffer with the given total entries and associativity
// (zero values select the paper's 8K / 4-way configuration) and the
// paper's LRU replacement. When entries is not a multiple of assoc the
// capacity is rounded *up* to the next multiple, never silently
// truncated (8192/3 is 2731 sets = 8193 entries, not 8190): a geometry
// sweep must always get at least the capacity it asked for. Entries
// reports the effective capacity.
func New(entries, assoc int) *Buffer {
	return NewPolicy(entries, assoc, LRU)
}

// NewPolicy is New with an explicit replacement policy (the sweep's
// policy axis). An invalid policy falls back to LRU; callers that
// accept policy input should validate with ParsePolicy/Policy.Valid
// first.
func NewPolicy(entries, assoc int, policy Policy) *Buffer {
	if entries == 0 {
		entries = DefaultEntries
	}
	if assoc == 0 {
		assoc = DefaultAssoc
	}
	if !policy.Valid() {
		policy = LRU
	}
	nsets := (entries + assoc - 1) / assoc
	if nsets == 0 {
		nsets = 1
	}
	b := &Buffer{
		tags:    make([]tag, nsets*assoc),
		entries: make([]entry, nsets*assoc),
		assoc:   assoc,
		nsets:   nsets,
		setMask: -1,
		policy:  policy,
		rng:     rngSeed(nsets*assoc, assoc),
	}
	if nsets&(nsets-1) == 0 {
		b.setMask = nsets - 1
	}
	// One bucket per entry (rounded up to a power of two) keeps the
	// chains short: each valid load occupies exactly one chain node.
	nbuckets := 1
	bits := uint(0)
	for nbuckets < nsets*assoc {
		nbuckets <<= 1
		bits++
	}
	b.addrHead = make([]int32, nbuckets)
	for i := range b.addrHead {
		b.addrHead[i] = noEntry
	}
	b.addrShift = 32 - bits
	return b
}

func (b *Buffer) setIndex(pc uint32) int {
	if b.setMask >= 0 {
		return int(pc>>2) & b.setMask
	}
	return int(pc>>2) % b.nsets
}

// bucketOf hashes a word-aligned address to its chain bucket
// (multiplicative hash, taking the high bits).
func (b *Buffer) bucketOf(addr uint32) int {
	return int(((addr >> 2) * 2654435761) >> b.addrShift)
}

// linkLoad threads entry ei into its address bucket's chain.
func (b *Buffer) linkLoad(ei int32) {
	e := &b.entries[ei]
	bkt := b.bucketOf(e.addr)
	e.prevA = noEntry
	e.nextA = b.addrHead[bkt]
	if e.nextA != noEntry {
		b.entries[e.nextA].prevA = ei
	}
	b.addrHead[bkt] = ei
}

// unlinkLoad removes entry ei from its address bucket's chain.
func (b *Buffer) unlinkLoad(ei int32) {
	e := &b.entries[ei]
	if e.prevA != noEntry {
		b.entries[e.prevA].nextA = e.nextA
	} else {
		b.addrHead[b.bucketOf(e.addr)] = e.nextA
	}
	if e.nextA != noEntry {
		b.entries[e.nextA].prevA = e.prevA
	}
	e.nextA, e.prevA = noEntry, noEntry
}

// Observe processes one retired instruction, returning whether it hit
// (was reusable). The repeated flag is the repetition census's verdict
// for the same instruction; the buffer splits its hit count on it so
// Table 10's two percentages derive from this one dispatch path.
func (b *Buffer) Observe(ev *cpu.Event, repeated bool) bool {
	b.clock++

	// Stores invalidate load entries on the same word, then are
	// themselves candidates for reuse (a repeated store writes the
	// same value to the same address).
	if ev.IsStore {
		b.invalidate(ev.Addr &^ 3)
	}

	b.attempts++
	in1, in2 := uint32(0), uint32(0)
	if ev.Src1 >= 0 {
		in1 = ev.Src1Val
	}
	if ev.Src2 >= 0 {
		in2 = ev.Src2Val
	}
	res, aux := ev.DstVal, uint32(0)
	if ev.Dst < 0 {
		res = 0
	}
	if ev.Aux >= 0 {
		aux = ev.AuxVal
	}
	if ev.IsBranch {
		res = 0
		if ev.Taken {
			res = 1
		}
	}

	base := b.setIndex(ev.PC) * b.assoc
	set := b.tags[base : base+b.assoc]
	for w := range set {
		tg := &set[w]
		if tg.pc == ev.PC && tg.in1 == in1 && tg.in2 == in2 {
			// Reuse hit: the stored result stands in for execution.
			// (Sanity: with load invalidation in place the stored
			// result always matches; keep the check as an invariant.)
			// Only LRU refreshes the stamp on a touch; FIFO residency
			// is decided purely by insertion order, and Random ignores
			// stamps entirely.
			if tg.result == res && tg.aux == aux {
				if b.policy == LRU {
					tg.lru = b.clock
				}
				b.hits++
				if repeated {
					b.hitsRepeated++
				} else {
					b.hitsNonRepeated++
				}
				return true
			}
			// Result mismatch (should not happen for loads thanks to
			// invalidation; can happen only if memory changed through
			// an untracked path): refresh the entry.
			tg.result, tg.aux = res, aux
			if b.policy == LRU {
				tg.lru = b.clock
			}
			return false
		}
	}

	// Miss: insert, choosing the victim way by the replacement policy.
	// Invalid ways are always filled first; LRU and FIFO then share the
	// min-stamp scan (LRU stamps on touch, FIFO only on insertion) and
	// Random draws from the seeded generator.
	victim := 0
	if b.policy == Random {
		victim = -1
		for w := range set {
			if set[w].pc == 0 {
				victim = w
				break
			}
		}
		if victim < 0 {
			victim = int(b.nextRand() % uint64(len(set)))
		}
	} else {
		for w := 1; w < len(set); w++ {
			if set[w].pc == 0 {
				victim = w
				break
			}
			if set[w].lru < set[victim].lru {
				victim = w
			}
		}
	}
	ei := int32(base + victim)
	tg := &b.tags[ei]
	if tg.pc != 0 && tg.flags&1 != 0 {
		b.unlinkLoad(ei)
	}
	*tg = tag{pc: ev.PC, in1: in1, in2: in2, result: res, aux: aux, lru: b.clock}
	if ev.IsLoad {
		tg.flags = 1
		e := &b.entries[ei]
		e.addr = ev.Addr &^ 3
		b.linkLoad(ei)
	}
	return false
}

// invalidate drops load entries for the given word address. The
// bucket chain holds only valid load entries, so a walk touches at
// most the loads hashing to this bucket.
func (b *Buffer) invalidate(addr uint32) {
	ei := b.addrHead[b.bucketOf(addr)]
	for ei != noEntry {
		next := b.entries[ei].nextA
		if b.entries[ei].addr == addr {
			b.tags[ei].pc = 0 // invalid: no instruction has pc 0
			b.loadInv++
			b.unlinkLoad(ei)
		}
		ei = next
	}
}

// Attempts returns the number of instructions observed.
func (b *Buffer) Attempts() uint64 { return b.attempts }

// Hits returns the number of reuse hits.
func (b *Buffer) Hits() uint64 { return b.hits }

// HitsRepeated returns the reuse hits on instructions the repetition
// census classified as repeated (Table 10's "% of repeated inst"
// numerator).
func (b *Buffer) HitsRepeated() uint64 { return b.hitsRepeated }

// HitsNonRepeated returns the reuse hits on instructions the census
// did not classify as repeated (a hit whose matching census instance
// aged out of the 2000-entry buffer, or one observed before the
// instruction's first census repeat).
func (b *Buffer) HitsNonRepeated() uint64 { return b.hitsNonRepeated }

// LoadInvalidations returns how many load entries stores invalidated.
func (b *Buffer) LoadInvalidations() uint64 { return b.loadInv }

// HitPercent returns hits as a percentage of all observed
// instructions (Table 10, "% of all inst").
func (b *Buffer) HitPercent() float64 {
	if b.attempts == 0 {
		return 0
	}
	return 100 * float64(b.hits) / float64(b.attempts)
}

// Entries returns the buffer's effective capacity (sets × assoc, which
// is the requested entry count rounded up to a multiple of assoc).
func (b *Buffer) Entries() int { return len(b.entries) }

// Assoc returns the buffer's associativity.
func (b *Buffer) Assoc() int { return b.assoc }

// Policy returns the buffer's replacement policy.
func (b *Buffer) Policy() Policy { return b.policy }

// Sets returns the buffer's set count.
func (b *Buffer) Sets() int { return b.nsets }

// Name identifies the buffer in observability output.
func (b *Buffer) Name() string { return "reuse" }
