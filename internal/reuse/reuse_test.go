package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func aluEv(pc, in1, in2, out uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpADDU, Rd: 2, Rs: 4, Rt: 5},
		Src1: 4, Src1Val: in1, Src2: 5, Src2Val: in2,
		Dst: 2, DstVal: out, Aux: -1,
	}
}

func loadEv(pc, addr, val uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpLW, Rt: 2, Rs: 4},
		Src1: 4, Src1Val: addr,
		Dst: 2, DstVal: val, Aux: -1,
		IsLoad: true, Addr: addr, MemVal: val,
	}
}

func storeEv(pc, addr, val uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpSW, Rt: 5, Rs: 4},
		Src1: 4, Src1Val: addr, Src2: 5, Src2Val: val,
		Dst: -1, Aux: -1,
		IsStore: true, Addr: addr, MemVal: val,
	}
}

func TestBasicReuse(t *testing.T) {
	b := New(0, 0)
	if b.Observe(aluEv(0x400000, 1, 2, 3), false) {
		t.Error("first execution hit")
	}
	if !b.Observe(aluEv(0x400000, 1, 2, 3), true) {
		t.Error("identical execution missed")
	}
	if b.Observe(aluEv(0x400000, 1, 9, 10), false) {
		t.Error("different operands hit")
	}
	if b.Hits() != 1 || b.Attempts() != 3 {
		t.Errorf("hits=%d attempts=%d", b.Hits(), b.Attempts())
	}
}

func TestLoadInvalidation(t *testing.T) {
	b := New(0, 0)
	b.Observe(loadEv(0x400000, 0x10000000, 7), false)
	if !b.Observe(loadEv(0x400000, 0x10000000, 7), true) {
		t.Error("repeated load missed")
	}
	// A store to the same word invalidates the load entry.
	b.Observe(storeEv(0x400010, 0x10000000, 99), false)
	if b.Observe(loadEv(0x400000, 0x10000000, 99), false) {
		t.Error("load after invalidating store must miss")
	}
	if b.LoadInvalidations() != 1 {
		t.Errorf("invalidations = %d", b.LoadInvalidations())
	}
	// Stores to unrelated addresses leave the entry alone.
	if !b.Observe(loadEv(0x400000, 0x10000000, 99), true) {
		t.Error("reinserted load missed")
	}
	b.Observe(storeEv(0x400010, 0x10000040, 5), false)
	if !b.Observe(loadEv(0x400000, 0x10000000, 99), true) {
		t.Error("unrelated store invalidated the load")
	}
}

func TestSubWordStoreInvalidates(t *testing.T) {
	b := New(0, 0)
	b.Observe(loadEv(0x400000, 0x10000000, 7), false)
	// Byte store inside the same word.
	sb := storeEv(0x400010, 0x10000002, 1)
	sb.Inst.Op = isa.OpSB
	b.Observe(sb, false)
	if b.Observe(loadEv(0x400000, 0x10000000, 7), false) {
		t.Error("byte store should invalidate the word's load entry")
	}
}

func TestSetConflictEviction(t *testing.T) {
	// 1 set x 2 ways: three PCs mapping to the same set evict LRU.
	b := New(2, 2)
	b.Observe(aluEv(0x400000, 1, 1, 2), false)
	b.Observe(aluEv(0x400004, 2, 2, 4), false)
	// Touch the first so the second is LRU.
	if !b.Observe(aluEv(0x400000, 1, 1, 2), true) {
		t.Error("entry 1 missing")
	}
	b.Observe(aluEv(0x400008, 3, 3, 6), false) // evicts 0x400004
	if !b.Observe(aluEv(0x400000, 1, 1, 2), true) {
		t.Error("MRU entry evicted")
	}
	if b.Observe(aluEv(0x400004, 2, 2, 4), false) {
		t.Error("LRU entry should have been evicted")
	}
}

func TestHitPercent(t *testing.T) {
	b := New(0, 0)
	if b.HitPercent() != 0 {
		t.Error("empty buffer hit percent nonzero")
	}
	b.Observe(aluEv(0x400000, 1, 1, 2), false)
	b.Observe(aluEv(0x400000, 1, 1, 2), true)
	if got := b.HitPercent(); got != 50 {
		t.Errorf("hit%% = %v, want 50", got)
	}
}

// Property: a reuse hit never "lies" — replaying a random event stream,
// every hit's stored result equals the event's actual result (the
// consistency the Sv scheme guarantees via invalidation).
func TestReuseNeverStale(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		b := New(64, 4)
		memory := map[uint32]uint32{}
		for i := 0; i < 2000; i++ {
			pc := uint32(0x400000 + 4*r.Intn(30))
			switch r.Intn(3) {
			case 0: // ALU
				x, y := uint32(r.Intn(8)), uint32(r.Intn(8))
				ev := aluEv(pc, x, y, x+y)
				hitBefore := wouldHit(b, ev)
				got := b.Observe(ev, false)
				if got != hitBefore {
					return false
				}
			case 1: // load
				addr := uint32(0x10000000 + 4*r.Intn(16))
				ev := loadEv(pc, addr, memory[addr])
				b.Observe(ev, false)
			case 2: // store
				addr := uint32(0x10000000 + 4*r.Intn(16))
				v := uint32(r.Intn(100))
				memory[addr] = v
				b.Observe(storeEv(pc, addr, v), false)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// wouldHit checks whether ev would hit without modifying LRU state in a
// way that affects the answer (we call it immediately before Observe).
func wouldHit(b *Buffer, ev *cpu.Event) bool {
	base := b.setIndex(ev.PC) * b.assoc
	for w := 0; w < b.assoc; w++ {
		tg := &b.tags[base+w]
		if tg.pc == ev.PC && tg.in1 == ev.Src1Val && tg.in2 == ev.Src2Val &&
			tg.result == ev.DstVal {
			return true
		}
	}
	return false
}

func TestGeometry(t *testing.T) {
	b := New(0, 0)
	if b.nsets != DefaultEntries/DefaultAssoc || b.assoc != DefaultAssoc {
		t.Errorf("default geometry %d sets x %d ways", b.nsets, b.assoc)
	}
	if len(b.entries) != DefaultEntries {
		t.Errorf("entry slice holds %d entries, want %d", len(b.entries), DefaultEntries)
	}
	b2 := New(16, 2)
	if b2.nsets != 8 || b2.assoc != 2 {
		t.Errorf("custom geometry %d sets x %d ways", b2.nsets, b2.assoc)
	}
}

// TestHitIdentity pins the Table 10 accounting identity on a random
// stream: every hit is split exactly once on the census verdict, and
// hits never exceed attempts.
func TestHitIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	b := New(64, 4)
	memory := map[uint32]uint32{}
	for i := 0; i < 5000; i++ {
		pc := uint32(0x400000 + 4*r.Intn(40))
		repeated := r.Intn(2) == 0
		switch r.Intn(3) {
		case 0:
			x, y := uint32(r.Intn(6)), uint32(r.Intn(6))
			b.Observe(aluEv(pc, x, y, x+y), repeated)
		case 1:
			addr := uint32(0x10000000 + 4*r.Intn(16))
			b.Observe(loadEv(pc, addr, memory[addr]), repeated)
		case 2:
			addr := uint32(0x10000000 + 4*r.Intn(16))
			v := uint32(r.Intn(50))
			memory[addr] = v
			b.Observe(storeEv(pc, addr, v), repeated)
		}
	}
	if b.Hits() != b.HitsRepeated()+b.HitsNonRepeated() {
		t.Errorf("hits %d != repeated %d + non-repeated %d",
			b.Hits(), b.HitsRepeated(), b.HitsNonRepeated())
	}
	if b.Hits() > b.Attempts() {
		t.Errorf("hits %d exceed attempts %d", b.Hits(), b.Attempts())
	}
	if b.Hits() == 0 {
		t.Error("stream produced no hits; identity test is vacuous")
	}
}

// TestInvalidationChainEviction checks the bounded address index stays
// consistent through evictions: a load whose entry is evicted by set
// pressure must not leave a stale chain node behind that a later store
// would trip over.
func TestInvalidationChainEviction(t *testing.T) {
	// Direct-mapped, 2 sets. Loads at set 0, set 1, set 0: the third
	// load evicts the first by set pressure.
	b := New(2, 1)
	b.Observe(loadEv(0x400000, 0x10000000, 1), false) // set 0
	b.Observe(loadEv(0x400004, 0x10000004, 2), false) // set 1
	b.Observe(loadEv(0x400008, 0x10000008, 3), false) // set 0: evicts the first
	// A store to the evicted load's word finds nothing to invalidate
	// (its chain node was unlinked at eviction); inserting the store
	// itself then evicts the set-0 load.
	b.Observe(storeEv(0x400010, 0x10000000, 9), false) // set 0
	if b.LoadInvalidations() != 0 {
		t.Errorf("invalidations = %d, want 0 (evicted load must not count)", b.LoadInvalidations())
	}
	// The set-1 load is still resident: its store invalidates it.
	b.Observe(storeEv(0x400014, 0x10000004, 9), false) // set 1
	if b.LoadInvalidations() != 1 {
		t.Errorf("invalidations = %d, want 1", b.LoadInvalidations())
	}
	// No load entries remain; every chain must be empty.
	for bkt, head := range b.addrHead {
		if head != noEntry {
			t.Errorf("bucket %d still heads a chain after full invalidation", bkt)
		}
	}
}
