package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func aluEv(pc, in1, in2, out uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpADDU, Rd: 2, Rs: 4, Rt: 5},
		Src1: 4, Src1Val: in1, Src2: 5, Src2Val: in2,
		Dst: 2, DstVal: out, Aux: -1,
	}
}

func loadEv(pc, addr, val uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpLW, Rt: 2, Rs: 4},
		Src1: 4, Src1Val: addr,
		Dst: 2, DstVal: val, Aux: -1,
		IsLoad: true, Addr: addr, MemVal: val,
	}
}

func storeEv(pc, addr, val uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpSW, Rt: 5, Rs: 4},
		Src1: 4, Src1Val: addr, Src2: 5, Src2Val: val,
		Dst: -1, Aux: -1,
		IsStore: true, Addr: addr, MemVal: val,
	}
}

func TestBasicReuse(t *testing.T) {
	b := New(0, 0)
	if b.Observe(aluEv(0x400000, 1, 2, 3), false) {
		t.Error("first execution hit")
	}
	if !b.Observe(aluEv(0x400000, 1, 2, 3), true) {
		t.Error("identical execution missed")
	}
	if b.Observe(aluEv(0x400000, 1, 9, 10), false) {
		t.Error("different operands hit")
	}
	if b.Hits() != 1 || b.Attempts() != 3 {
		t.Errorf("hits=%d attempts=%d", b.Hits(), b.Attempts())
	}
}

func TestLoadInvalidation(t *testing.T) {
	b := New(0, 0)
	b.Observe(loadEv(0x400000, 0x10000000, 7), false)
	if !b.Observe(loadEv(0x400000, 0x10000000, 7), true) {
		t.Error("repeated load missed")
	}
	// A store to the same word invalidates the load entry.
	b.Observe(storeEv(0x400010, 0x10000000, 99), false)
	if b.Observe(loadEv(0x400000, 0x10000000, 99), false) {
		t.Error("load after invalidating store must miss")
	}
	if b.LoadInvalidations() != 1 {
		t.Errorf("invalidations = %d", b.LoadInvalidations())
	}
	// Stores to unrelated addresses leave the entry alone.
	if !b.Observe(loadEv(0x400000, 0x10000000, 99), true) {
		t.Error("reinserted load missed")
	}
	b.Observe(storeEv(0x400010, 0x10000040, 5), false)
	if !b.Observe(loadEv(0x400000, 0x10000000, 99), true) {
		t.Error("unrelated store invalidated the load")
	}
}

func TestSubWordStoreInvalidates(t *testing.T) {
	b := New(0, 0)
	b.Observe(loadEv(0x400000, 0x10000000, 7), false)
	// Byte store inside the same word.
	sb := storeEv(0x400010, 0x10000002, 1)
	sb.Inst.Op = isa.OpSB
	b.Observe(sb, false)
	if b.Observe(loadEv(0x400000, 0x10000000, 7), false) {
		t.Error("byte store should invalidate the word's load entry")
	}
}

func TestSetConflictEviction(t *testing.T) {
	// 1 set x 2 ways: three PCs mapping to the same set evict LRU.
	b := New(2, 2)
	b.Observe(aluEv(0x400000, 1, 1, 2), false)
	b.Observe(aluEv(0x400004, 2, 2, 4), false)
	// Touch the first so the second is LRU.
	if !b.Observe(aluEv(0x400000, 1, 1, 2), true) {
		t.Error("entry 1 missing")
	}
	b.Observe(aluEv(0x400008, 3, 3, 6), false) // evicts 0x400004
	if !b.Observe(aluEv(0x400000, 1, 1, 2), true) {
		t.Error("MRU entry evicted")
	}
	if b.Observe(aluEv(0x400004, 2, 2, 4), false) {
		t.Error("LRU entry should have been evicted")
	}
}

func TestHitPercent(t *testing.T) {
	b := New(0, 0)
	if b.HitPercent() != 0 {
		t.Error("empty buffer hit percent nonzero")
	}
	b.Observe(aluEv(0x400000, 1, 1, 2), false)
	b.Observe(aluEv(0x400000, 1, 1, 2), true)
	if got := b.HitPercent(); got != 50 {
		t.Errorf("hit%% = %v, want 50", got)
	}
}

// Property: a reuse hit never "lies" — replaying a random event stream,
// every hit's stored result equals the event's actual result (the
// consistency the Sv scheme guarantees via invalidation).
func TestReuseNeverStale(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		b := New(64, 4)
		memory := map[uint32]uint32{}
		for i := 0; i < 2000; i++ {
			pc := uint32(0x400000 + 4*r.Intn(30))
			switch r.Intn(3) {
			case 0: // ALU
				x, y := uint32(r.Intn(8)), uint32(r.Intn(8))
				ev := aluEv(pc, x, y, x+y)
				hitBefore := wouldHit(b, ev)
				got := b.Observe(ev, false)
				if got != hitBefore {
					return false
				}
			case 1: // load
				addr := uint32(0x10000000 + 4*r.Intn(16))
				ev := loadEv(pc, addr, memory[addr])
				b.Observe(ev, false)
			case 2: // store
				addr := uint32(0x10000000 + 4*r.Intn(16))
				v := uint32(r.Intn(100))
				memory[addr] = v
				b.Observe(storeEv(pc, addr, v), false)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// wouldHit checks whether ev would hit without modifying LRU state in a
// way that affects the answer (we call it immediately before Observe).
func wouldHit(b *Buffer, ev *cpu.Event) bool {
	si := b.setIndex(ev.PC)
	for w := range b.sets[si] {
		e := &b.sets[si][w]
		if e.valid && e.pc == ev.PC && e.in1 == ev.Src1Val && e.in2 == ev.Src2Val &&
			e.result == ev.DstVal {
			return true
		}
	}
	return false
}

func TestGeometry(t *testing.T) {
	b := New(0, 0)
	if b.nsets != DefaultEntries/DefaultAssoc || b.assoc != DefaultAssoc {
		t.Errorf("default geometry %d sets x %d ways", b.nsets, b.assoc)
	}
	b2 := New(16, 2)
	if b2.nsets != 8 || b2.assoc != 2 {
		t.Errorf("custom geometry %d sets x %d ways", b2.nsets, b2.assoc)
	}
}
