package reuse

import (
	"math/rand"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"", LRU}, // empty selects the paper's default
		{"lru", LRU},
		{"LRU", LRU},
		{"fifo", FIFO},
		{"Fifo", FIFO},
		{"random", Random},
		{"RANDOM", Random},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"mru", "lru ", "plru", "0"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestPolicyStringValid(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, Random} {
		if !p.Valid() {
			t.Errorf("%v not valid", p)
		}
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("String/Parse round trip broke: %v -> %q -> %v, %v", p, p.String(), back, err)
		}
	}
	if bogus := Policy(99); bogus.Valid() || bogus.String() != "policy(99)" {
		t.Errorf("invalid policy: Valid=%v String=%q", bogus.Valid(), bogus.String())
	}
	if got := PolicyNames(); len(got) != 3 || got[0] != "lru" || got[1] != "fifo" || got[2] != "random" {
		t.Errorf("PolicyNames() = %v", got)
	}
}

func TestNewPolicyFallback(t *testing.T) {
	b := NewPolicy(64, 4, Policy(42))
	if b.Policy() != LRU {
		t.Errorf("invalid policy fell back to %v, want LRU", b.Policy())
	}
	if New(64, 4).Policy() != LRU {
		t.Error("New is not LRU")
	}
}

// TestLRUPolicyMatchesNew pins the policy-axis refactor against the
// pre-axis buffer: NewPolicy(..., LRU) and New must agree hit-for-hit
// on an arbitrary event stream, because LRU *is* the paper's buffer.
func TestLRUPolicyMatchesNew(t *testing.T) {
	a, b := New(16, 4), NewPolicy(16, 4, LRU)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		pc := 0x400000 + uint32(rng.Intn(64))*4
		in1, in2 := uint32(rng.Intn(4)), uint32(rng.Intn(4))
		ev := aluEv(pc, in1, in2, in1+in2)
		if ha, hb := a.Observe(ev, false), b.Observe(ev, false); ha != hb {
			t.Fatalf("step %d: New hit=%v, NewPolicy(LRU) hit=%v", i, ha, hb)
		}
	}
	if a.Hits() != b.Hits() || a.Attempts() != b.Attempts() {
		t.Errorf("counters diverged: %d/%d vs %d/%d", a.Hits(), a.Attempts(), b.Hits(), b.Attempts())
	}
}

// TestFIFOVsLRUVictims drives the canonical distinguishing sequence
// through a single 2-way set: insert A, insert B, touch A, insert C.
// LRU refreshed A on the touch so it evicts B and a re-probe of A
// hits; FIFO ignored the touch so A (the oldest insertion) is the
// victim and the re-probe misses.
func TestFIFOVsLRUVictims(t *testing.T) {
	const (
		pcA = 0x400000
		pcB = 0x400004
		pcC = 0x400008
	)
	run := func(p Policy) bool {
		b := NewPolicy(2, 2, p) // one set, two ways
		b.Observe(aluEv(pcA, 1, 1, 2), false)
		b.Observe(aluEv(pcB, 1, 1, 2), false)
		if !b.Observe(aluEv(pcA, 1, 1, 2), false) {
			t.Fatalf("%v: resident A missed", p)
		}
		b.Observe(aluEv(pcC, 1, 1, 2), false)
		return b.Observe(aluEv(pcA, 1, 1, 2), false)
	}
	if !run(LRU) {
		t.Error("LRU evicted the recently touched A")
	}
	if run(FIFO) {
		t.Error("FIFO kept A past its insertion-order turn")
	}
}

// TestRandomDeterministic pins the Random policy's seeded RNG: two
// buffers of the same geometry replay an identical event stream to
// identical per-step outcomes and counters, which is what lets a
// random-policy sweep cell be cached, checkpointed, and reproduced
// byte-identically.
func TestRandomDeterministic(t *testing.T) {
	a := NewPolicy(16, 4, Random)
	b := NewPolicy(16, 4, Random)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		pc := 0x400000 + uint32(rng.Intn(64))*4
		in := uint32(rng.Intn(3))
		ev := aluEv(pc, in, in, 2*in)
		if ha, hb := a.Observe(ev, false), b.Observe(ev, false); ha != hb {
			t.Fatalf("step %d: replicas diverged (%v vs %v)", i, ha, hb)
		}
	}
	if a.Hits() == 0 {
		t.Error("stream produced no hits at all")
	}
	if a.Hits() != b.Hits() || a.Attempts() != b.Attempts() {
		t.Errorf("counters diverged: %d/%d vs %d/%d", a.Hits(), a.Attempts(), b.Hits(), b.Attempts())
	}
}

// TestRandomFillsInvalidWaysFirst: random victim selection only kicks
// in once a set is full — while invalid ways remain they are filled in
// order, so warming a set never randomly evicts a live entry.
func TestRandomFillsInvalidWaysFirst(t *testing.T) {
	b := NewPolicy(8, 8, Random) // one 8-way set
	for i := uint32(0); i < 8; i++ {
		b.Observe(aluEv(0x400000+i*4, 1, 1, 2), false)
	}
	for i := uint32(0); i < 8; i++ {
		if !b.Observe(aluEv(0x400000+i*4, 1, 1, 2), false) {
			t.Errorf("entry %d evicted while the set was still filling", i)
		}
	}
}

// TestRandomEvictsWithinSet: once full, the Random victim is still
// confined to the probed PC's set — an insert into one set never
// disturbs another.
func TestRandomEvictsWithinSet(t *testing.T) {
	b := NewPolicy(8, 2, Random) // 4 sets × 2 ways
	// Fill set 0 (pc>>2 ≡ 0 mod 4) and set 1 (≡ 1 mod 4).
	s0 := []uint32{0x400000, 0x400040}
	s1 := []uint32{0x400004, 0x400044}
	for _, pc := range append(s0, s1...) {
		b.Observe(aluEv(pc, 1, 1, 2), false)
	}
	// Overflow set 0 repeatedly; set 1 must stay fully resident.
	for i := uint32(0); i < 16; i++ {
		b.Observe(aluEv(0x400080+i*0x40, 1, 1, 2), false)
	}
	for _, pc := range s1 {
		if !b.Observe(aluEv(pc, 1, 1, 2), false) {
			t.Errorf("set-1 entry 0x%x evicted by set-0 pressure", pc)
		}
	}
}
