package vprofile

import "repro/internal/checkpoint"

// maxSnapshotSites bounds the dense site table length a snapshot may
// claim (same ceiling as the repetition tracker's record table).
const maxSnapshotSites = 1 << 22

// SnapshotTo writes the profiler state: table geometry, then every
// visited site (execs > 0) sparsely by index with its exact TNV table
// — entry order included, since the replace-the-smallest rule is
// order-sensitive.
func (p *Profiler) SnapshotTo(w *checkpoint.Writer) {
	w.Bool(p.haveBase)
	w.U32(p.base)
	w.U32(uint32(len(p.sites)))
	count := 0
	for i := range p.sites {
		if p.sites[i].execs > 0 {
			count++
		}
	}
	w.U32(uint32(count))
	for i := range p.sites {
		s := &p.sites[i]
		if s.execs == 0 {
			continue
		}
		w.U32(uint32(i))
		w.U32(uint32(s.used))
		w.U64(s.execs)
		for j := 0; j < s.used; j++ {
			w.U32(s.entries[j].value)
			w.U64(s.entries[j].count)
		}
	}
}

// RestoreFrom rebuilds the profiler from a snapshot.
func (p *Profiler) RestoreFrom(r *checkpoint.Reader) error {
	p.haveBase = r.Bool()
	p.base = r.U32()
	tableLen := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if tableLen > maxSnapshotSites || (!p.haveBase && tableLen != 0) {
		return checkpoint.ErrMalformed
	}
	p.sites = make([]site, tableLen)
	n := r.Count(4 + 4 + 8)
	prev := -1
	for i := 0; i < n; i++ {
		idx := int(r.U32())
		used := int(r.U32())
		if r.Err() != nil {
			return r.Err()
		}
		if idx <= prev || idx >= tableLen || used < 1 || used > TableSize {
			return checkpoint.ErrMalformed
		}
		prev = idx
		s := &p.sites[idx]
		s.used = used
		s.execs = r.U64()
		if s.execs == 0 {
			return checkpoint.ErrMalformed
		}
		for j := 0; j < used; j++ {
			s.entries[j].value = r.U32()
			s.entries[j].count = r.U64()
		}
	}
	return r.Err()
}
