package vprofile

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func ev(pc, out uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpADDU, Rd: 2},
		Src1: 4, Src2: 5, Dst: 2, DstVal: out, Aux: -1,
	}
}

func TestConstantSiteFullyInvariant(t *testing.T) {
	p := New()
	for i := 0; i < 100; i++ {
		p.Observe(ev(0x400000, 7))
	}
	r := p.Result()
	if r.Sites != 1 || r.Top1Pct != 100 || r.InvariantSitesPct != 100 {
		t.Errorf("result = %+v", r)
	}
}

func TestMixedValues(t *testing.T) {
	p := New()
	// 80x value 1, 20x value 2.
	for i := 0; i < 80; i++ {
		p.Observe(ev(0x400000, 1))
	}
	for i := 0; i < 20; i++ {
		p.Observe(ev(0x400000, 2))
	}
	r := p.Result()
	if r.Top1Pct != 80 {
		t.Errorf("Inv(1) = %v, want 80", r.Top1Pct)
	}
	if r.Top4Pct != 100 {
		t.Errorf("Inv(4) = %v, want 100", r.Top4Pct)
	}
	if r.InvariantSitesPct != 0 {
		t.Errorf("80%% top value must not count as invariant (threshold 90)")
	}
}

func TestTNVReplacement(t *testing.T) {
	p := New()
	// Establish a heavy hitter, then stream many one-off values: the
	// heavy hitter must survive the TNV replacement policy.
	for i := 0; i < 1000; i++ {
		p.Observe(ev(0x400000, 42))
	}
	for v := uint32(100); v < 200; v++ {
		p.Observe(ev(0x400000, v))
	}
	for i := 0; i < 1000; i++ {
		p.Observe(ev(0x400000, 42))
	}
	r := p.Result()
	// 2000 of 2100 executions produced 42.
	if r.Top1Pct < 90 {
		t.Errorf("Inv(1) = %v: heavy hitter evicted by noise", r.Top1Pct)
	}
}

func TestNonProducersSkipped(t *testing.T) {
	p := New()
	store := &cpu.Event{
		PC: 0x400000, Inst: isa.Inst{Op: isa.OpSW},
		Src1: 4, Src2: 5, Dst: -1, Aux: -1, IsStore: true,
	}
	p.Observe(store)
	if r := p.Result(); r.Sites != 0 {
		t.Errorf("stores must not create sites: %+v", r)
	}
}

func TestMultipleSites(t *testing.T) {
	p := New()
	p.Observe(ev(0x400000, 1))
	p.Observe(ev(0x400004, 2))
	p.Observe(ev(0x400008, 3))
	if r := p.Result(); r.Sites != 3 {
		t.Errorf("sites = %d", r.Sites)
	}
}

func TestEmptyResult(t *testing.T) {
	p := New()
	r := p.Result()
	if r.Sites != 0 || r.Top1Pct != 0 || r.InvariantSitesPct != 0 {
		t.Errorf("empty profiler result = %+v", r)
	}
}
