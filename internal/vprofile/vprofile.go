// Package vprofile implements value profiling in the style of Calder,
// Feller & Eustace (MICRO-30, 1997) — reference [3] of the paper, and
// the "related phenomenon" its total analysis is compared to. Where
// the repetition census keys on (inputs, outputs) pairs, a value
// profile measures *output invariance*: what fraction of a static
// instruction's executions produce its most frequent value(s).
//
// Each profiled instruction gets a classic TNV (top-N-value) table:
// a small array of (value, count) entries with
// replace-the-smallest-on-miss, which converges on the hot values
// without unbounded memory.
package vprofile

import (
	"sort"

	"repro/internal/cpu"
)

// TableSize is the TNV entry count per static instruction (Calder et
// al. used small tables; 8 captures the head of the distribution).
const TableSize = 8

type tnvEntry struct {
	value uint32
	count uint64
}

type site struct {
	// used/execs lead so the site's first cache line holds them plus
	// the head of the entry array the match scan walks.
	used    int
	execs   uint64
	entries [TableSize]tnvEntry
}

// observe records one produced value.
func (s *site) observe(v uint32) {
	s.execs++
	for i := 0; i < s.used; i++ {
		if s.entries[i].value == v {
			s.entries[i].count++
			return
		}
	}
	if s.used < TableSize {
		s.entries[s.used] = tnvEntry{value: v, count: 1}
		s.used++
		return
	}
	// Replace the least-frequent entry (the TNV steady-state rule).
	min := 0
	for i := 1; i < TableSize; i++ {
		if s.entries[i].count < s.entries[min].count {
			min = i
		}
	}
	s.entries[min] = tnvEntry{value: v, count: 1}
}

// topShares returns the counts of the k most frequent entries.
func (s *site) topShares(k int) uint64 {
	counts := make([]uint64, 0, s.used)
	for i := 0; i < s.used; i++ {
		counts = append(counts, s.entries[i].count)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	var sum uint64
	for i := 0; i < k && i < len(counts); i++ {
		sum += counts[i]
	}
	return sum
}

// Profiler is the value profiler. Sites live in a dense table indexed
// by (pc-base)>>2 — instruction addresses are word-aligned within the
// contiguous text segment — replacing a map lookup per profiled
// instruction (the same layout the repetition census uses). A site
// with execs == 0 is an unvisited slot.
type Profiler struct {
	base     uint32
	haveBase bool
	sites    []site
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{}
}

// SetTextBounds pre-sizes the dense site table for a text segment of
// `words` instructions starting at base. It is a no-op after
// observation starts.
func (p *Profiler) SetTextBounds(base uint32, words int) {
	if p.haveBase || words <= 0 {
		return
	}
	p.base = base
	p.haveBase = true
	p.sites = make([]site, words)
}

// siteFor returns the site for pc, growing (or re-basing) the table
// when pc falls outside it; with SetTextBounds in effect neither slow
// path runs.
func (p *Profiler) siteFor(pc uint32) *site {
	if !p.haveBase {
		p.base = pc
		p.haveBase = true
		p.sites = make([]site, 1)
		return &p.sites[0]
	}
	if pc < p.base {
		shift := int((p.base - pc) >> 2)
		grown := make([]site, len(p.sites)+shift)
		copy(grown[shift:], p.sites)
		p.sites = grown
		p.base = pc
	}
	idx := int((pc - p.base) >> 2)
	if idx >= len(p.sites) {
		grown := make([]site, idx+1, 2*idx+1)
		copy(grown, p.sites)
		p.sites = grown
	}
	return &p.sites[idx]
}

// Observe profiles the result value of a register-writing instruction.
func (p *Profiler) Observe(ev *cpu.Event) {
	if ev.Dst < 0 {
		return
	}
	p.siteFor(ev.PC).observe(ev.DstVal)
}

// Result summarizes output invariance.
type Result struct {
	// Sites is the number of profiled static instructions.
	Sites int
	// Top1Pct is Calder's Inv(1): the share of all profiled
	// executions producing their instruction's single most frequent
	// value.
	Top1Pct float64
	// Top4Pct is Inv(4).
	Top4Pct float64
	// InvariantSitesPct is the share of static instructions whose
	// top value covers >= 90% of their executions (the "invariant
	// instruction" population value-profiling targets).
	InvariantSitesPct float64
}

// Result computes the invariance summary.
func (p *Profiler) Result() Result {
	var r Result
	var execs, top1, top4 uint64
	invariant := 0
	for i := range p.sites {
		s := &p.sites[i]
		if s.execs == 0 {
			continue
		}
		r.Sites++
		t1 := s.topShares(1)
		execs += s.execs
		top1 += t1
		top4 += s.topShares(4)
		if float64(t1) >= 0.9*float64(s.execs) {
			invariant++
		}
	}
	if execs > 0 {
		r.Top1Pct = 100 * float64(top1) / float64(execs)
		r.Top4Pct = 100 * float64(top4) / float64(execs)
	}
	if r.Sites > 0 {
		r.InvariantSitesPct = 100 * float64(invariant) / float64(r.Sites)
	}
	return r
}

// Name identifies the profiler in observability output.
func (p *Profiler) Name() string { return "vprofile" }
