package repetition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// ev builds an ALU event at pc with two inputs and an output.
func ev(pc uint32, in1, in2, out uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpADDU, Rd: 2, Rs: 4, Rt: 5},
		Src1: 4, Src1Val: in1,
		Src2: 5, Src2Val: in2,
		Dst: 2, DstVal: out,
		Aux: -1,
	}
}

// TestUniqueRepeatableInstancesFigure2 reproduces the paper's Figure 2
// scenario: one static instruction generates seven dynamic instances
// I1..I7; I2 and I4 are the unique repeatable instances (I3 repeats I2;
// I5, I6, I7 repeat I4); I1 is unique but never repeated.
func TestUniqueRepeatableInstancesFigure2(t *testing.T) {
	tr := NewTracker()
	seq := []struct {
		in1, in2, out uint32
		wantRepeat    bool
	}{
		{10, 1, 11, false}, // I1: unique, never repeated
		{20, 2, 22, false}, // I2: first occurrence
		{20, 2, 22, true},  // I3: repeats I2
		{30, 3, 33, false}, // I4: first occurrence
		{30, 3, 33, true},  // I5
		{30, 3, 33, true},  // I6
		{30, 3, 33, true},  // I7
	}
	for i, s := range seq {
		got := tr.Observe(ev(0x400000, s.in1, s.in2, s.out))
		if got != s.wantRepeat {
			t.Errorf("I%d: repeated = %v, want %v", i+1, got, s.wantRepeat)
		}
	}
	if tr.DynamicInstructions() != 7 {
		t.Errorf("dyn = %d", tr.DynamicInstructions())
	}
	if tr.RepeatedInstructions() != 4 {
		t.Errorf("repeated = %d", tr.RepeatedInstructions())
	}
	count, avg := tr.UniqueRepeatableInstances()
	if count != 2 {
		t.Errorf("unique repeatable instances = %d, want 2", count)
	}
	if avg != 2.0 { // 4 repeats over 2 instances
		t.Errorf("avg repeats = %v, want 2", avg)
	}
	if tr.StaticExecuted() != 1 || tr.StaticRepeated() != 1 {
		t.Errorf("static executed/repeated = %d/%d", tr.StaticExecuted(), tr.StaticRepeated())
	}
}

func TestDifferentOutputsSameInputsNotRepeated(t *testing.T) {
	// A load reading a changed value: same inputs, different output —
	// not repeated (Section 2's load example).
	tr := NewTracker()
	if tr.Observe(ev(0x400000, 100, 0, 7)) {
		t.Error("first instance repeated")
	}
	if tr.Observe(ev(0x400000, 100, 0, 8)) {
		t.Error("changed output classified repeated")
	}
	if !tr.Observe(ev(0x400000, 100, 0, 8)) {
		t.Error("third instance should repeat the second")
	}
}

func TestBranchDirectionIsOutput(t *testing.T) {
	tr := NewTracker()
	br := func(a, b uint32, taken bool) *cpu.Event {
		return &cpu.Event{
			PC:   0x400010,
			Inst: isa.Inst{Op: isa.OpBEQ, Rs: 4, Rt: 5},
			Src1: 4, Src1Val: a, Src2: 5, Src2Val: b,
			Dst: -1, Aux: -1, IsBranch: true, Taken: taken,
		}
	}
	if tr.Observe(br(1, 1, true)) {
		t.Error("first branch repeated")
	}
	if !tr.Observe(br(1, 1, true)) {
		t.Error("identical branch not repeated")
	}
	if tr.Observe(br(1, 2, false)) {
		t.Error("different-inputs branch repeated")
	}
}

func TestBufferLimit(t *testing.T) {
	tr := NewTracker()
	tr.MaxInstances = 4
	// Fill the buffer with 4 unique instances.
	for i := uint32(0); i < 4; i++ {
		if tr.Observe(ev(0x400000, i, 0, i)) {
			t.Error("fill classified repeated")
		}
	}
	// A fifth unique instance is dropped.
	if tr.Observe(ev(0x400000, 99, 0, 99)) {
		t.Error("overflow instance classified repeated")
	}
	// It was not inserted: the same instance again still misses.
	if tr.Observe(ev(0x400000, 99, 0, 99)) {
		t.Error("dropped instance matched later")
	}
	// Buffered instances still match.
	if !tr.Observe(ev(0x400000, 2, 0, 2)) {
		t.Error("buffered instance missed")
	}
	if tr.BuffersFilled() != 1 {
		t.Errorf("BuffersFilled = %d", tr.BuffersFilled())
	}
}

func TestStaticCoverage(t *testing.T) {
	tr := NewTracker()
	// Two static instructions: one contributing 90 repeats, one 10.
	for i := 0; i < 91; i++ {
		tr.Observe(ev(0x400000, 1, 1, 2))
	}
	for i := 0; i < 11; i++ {
		tr.Observe(ev(0x400004, 1, 1, 2))
	}
	cov := tr.StaticCoverage([]float64{50, 90, 100})
	// The top instruction (50% of contributors) covers 90%.
	if cov[0] != 50 || cov[1] != 50 {
		t.Errorf("coverage = %v, want [50 50 100]", cov)
	}
	if cov[2] != 100 {
		t.Errorf("full coverage needs all contributors: %v", cov)
	}
}

func TestInstanceBuckets(t *testing.T) {
	tr := NewTracker()
	// pc A: one unique repeatable instance with 5 repeats.
	for i := 0; i < 6; i++ {
		tr.Observe(ev(0xA0, 1, 1, 2))
	}
	// pc B: three unique repeatable instances, 2 repeats each.
	for v := uint32(0); v < 3; v++ {
		for i := 0; i < 3; i++ {
			tr.Observe(ev(0xB0, v, v, v))
		}
	}
	b := tr.InstanceBuckets()
	if b.One != 5 {
		t.Errorf("bucket One = %d, want 5", b.One)
	}
	if b.UpTo10 != 6 {
		t.Errorf("bucket 2-10 = %d, want 6", b.UpTo10)
	}
	p := b.Percents()
	var sum float64
	for _, v := range p {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("bucket percents sum to %v", sum)
	}
}

func TestInstanceCoverage(t *testing.T) {
	tr := NewTracker()
	// One instance with 99 repeats, 9 instances with 1 repeat each.
	for i := 0; i < 100; i++ {
		tr.Observe(ev(0xC0, 7, 7, 14))
	}
	for v := uint32(0); v < 9; v++ {
		tr.Observe(ev(0xD0, v, v, 2*v))
		tr.Observe(ev(0xD0, v, v, 2*v))
	}
	// Total repeats = 108; top instance covers 99/108 = 91.7%.
	cov := tr.InstanceCoverage([]float64{50, 90, 100})
	if cov[0] != 10 { // 1 of 10 instances
		t.Errorf("50%% coverage needs %v%% of instances, want 10", cov[0])
	}
	if cov[2] != 100 {
		t.Errorf("100%% coverage = %v, want 100", cov[2])
	}
	// Monotone.
	if !(cov[0] <= cov[1] && cov[1] <= cov[2]) {
		t.Errorf("coverage not monotone: %v", cov)
	}
}

// Property: counts are conserved — dyn = repeated + unique instances
// observed + dropped, for any random event stream.
func TestCountConservation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		tr := NewTracker()
		tr.MaxInstances = 8
		n := 200 + r.Intn(200)
		var repeats uint64
		for i := 0; i < n; i++ {
			pc := uint32(0x400000 + 4*r.Intn(5))
			v := uint32(r.Intn(12))
			if tr.Observe(ev(pc, v, v+1, 2*v)) {
				repeats++
			}
		}
		if tr.DynamicInstructions() != uint64(n) {
			return false
		}
		if tr.RepeatedInstructions() != repeats {
			return false
		}
		count, avg := tr.UniqueRepeatableInstances()
		if count > 0 && avg*float64(count) != float64(repeats) {
			// avg is exactly repeats/count
			d := avg*float64(count) - float64(repeats)
			if d > 1e-6 || d < -1e-6 {
				return false
			}
		}
		return tr.RepeatedPercent() >= 0 && tr.RepeatedPercent() <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: coverage curves are monotone nondecreasing and bounded for
// random streams.
func TestCoverageMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	targets := []float64{10, 25, 50, 75, 90, 99, 100}
	f := func() bool {
		tr := NewTracker()
		n := 300 + r.Intn(300)
		for i := 0; i < n; i++ {
			pc := uint32(0x400000 + 4*r.Intn(20))
			v := uint32(r.Intn(6))
			tr.Observe(ev(pc, v, v, v))
		}
		for _, curve := range [][]float64{tr.StaticCoverage(targets), tr.InstanceCoverage(targets)} {
			prev := 0.0
			for _, v := range curve {
				if v < prev-1e-9 || v > 100+1e-9 {
					return false
				}
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestInstanceCoverageFullTargetExact is the Figure 4 overshoot
// regression: the 100% target must report exactly 100% of instances
// used — never more — including on repeat-count distributions where
// the float-rounded need demands a fractional instance.
func TestInstanceCoverageFullTargetExact(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		tr := NewTracker()
		n := 50 + r.Intn(400)
		for i := 0; i < n; i++ {
			pc := uint32(0x400000 + 4*r.Intn(9))
			v := uint32(r.Intn(7))
			tr.Observe(ev(pc, v, v+1, 2*v))
		}
		targets := []float64{33.3, 66.7, 95, 99.9, 100}
		cov := tr.InstanceCoverage(targets)
		for i, c := range cov {
			if c > 100 {
				t.Fatalf("trial %d: coverage[%d] = %v exceeds 100%%", trial, i, c)
			}
		}
		if tr.RepeatedInstructions() > 0 && cov[len(cov)-1] != 100 {
			t.Fatalf("trial %d: 100%% target returned %v, want exactly 100", trial, cov[len(cov)-1])
		}
	}
}

// TestDenseTableGrowth exercises the dense per-PC table's on-demand
// growth: observing PCs in descending order forces the re-base path,
// ascending order the append path.
func TestDenseTableGrowth(t *testing.T) {
	tr := NewTracker()
	// Descending: each observation re-bases the table.
	for pc := uint32(0x400040); pc >= 0x400000; pc -= 4 {
		if tr.Observe(ev(pc, 1, 1, 2)) {
			t.Fatalf("pc %#x: first observation classified repeated", pc)
		}
	}
	// Ascending far past the end: append growth.
	for pc := uint32(0x400100); pc <= 0x400200; pc += 8 {
		tr.Observe(ev(pc, 2, 2, 4))
	}
	if got := tr.StaticExecuted(); got != 17+33 {
		t.Errorf("StaticExecuted = %d, want %d", got, 17+33)
	}
	// Every seen PC resolves; gaps and out-of-range PCs do not.
	if _, _, ok := tr.PerPC(0x400000); !ok {
		t.Error("lowest pc lost after re-basing")
	}
	if _, _, ok := tr.PerPC(0x400104); ok {
		t.Error("gap pc should not resolve")
	}
	if _, _, ok := tr.PerPC(0x3ffff0); ok {
		t.Error("pc below base should not resolve")
	}
	// Repeats still detected across the growth operations.
	if !tr.Observe(ev(0x400000, 1, 1, 2)) {
		t.Error("instance lost during table growth")
	}
}

// TestSetTextBounds checks the pre-sized fast path matches the
// growing path statistic-for-statistic.
func TestSetTextBounds(t *testing.T) {
	sized := NewTracker()
	sized.SetTextBounds(0x400000, 64)
	grown := NewTracker()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		pc := uint32(0x400000 + 4*r.Intn(64))
		v := uint32(r.Intn(9))
		e := ev(pc, v, v, 3*v)
		if sized.Observe(e) != grown.Observe(e) {
			t.Fatalf("verdict diverged at step %d", i)
		}
	}
	if sized.StaticExecuted() != grown.StaticExecuted() ||
		sized.RepeatedInstructions() != grown.RepeatedInstructions() {
		t.Errorf("stats diverged: %d/%d vs %d/%d",
			sized.StaticExecuted(), sized.RepeatedInstructions(),
			grown.StaticExecuted(), grown.RepeatedInstructions())
	}
	c1, _ := sized.UniqueRepeatableInstances()
	c2, _ := grown.UniqueRepeatableInstances()
	if c1 != c2 {
		t.Errorf("unique instances diverged: %d vs %d", c1, c2)
	}
	// SetTextBounds after observation starts is a no-op.
	before := grown.StaticExecuted()
	grown.SetTextBounds(0, 10_000)
	if grown.StaticExecuted() != before {
		t.Error("late SetTextBounds disturbed the table")
	}
}

func TestPerPC(t *testing.T) {
	tr := NewTracker()
	tr.Observe(ev(0x400000, 1, 1, 2))
	tr.Observe(ev(0x400000, 1, 1, 2))
	dyn, rep, ok := tr.PerPC(0x400000)
	if !ok || dyn != 2 || rep != 1 {
		t.Errorf("PerPC = %d/%d/%v", dyn, rep, ok)
	}
	if _, _, ok := tr.PerPC(0x999999); ok {
		t.Error("PerPC of unseen pc should fail")
	}
}
