package repetition

import (
	"repro/internal/cpu"
	"repro/internal/isa"
)

// Per-instruction-type total analysis. Section 2 of the paper notes
// that the total analysis "can also [be carried] out for different
// types of instructions, e.g., loads, stores, ALU operations" but the
// paper does not include it; this file implements that extension.

// InstClass is a coarse instruction type.
type InstClass uint8

// Instruction classes in report order.
const (
	ClassALU InstClass = iota
	ClassMulDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassSys
	NumClasses
)

var classNames = [NumClasses]string{
	"alu", "mul/div", "load", "store", "branch", "jump", "syscall",
}

// String returns the report label.
func (c InstClass) String() string {
	if c >= NumClasses {
		return "?"
	}
	return classNames[c]
}

// ClassOf classifies an operation.
func ClassOf(op isa.Op) InstClass {
	switch isa.OpKind(op) {
	case isa.KindLoad:
		return ClassLoad
	case isa.KindStore:
		return ClassStore
	case isa.KindBranch:
		return ClassBranch
	case isa.KindJump, isa.KindJumpReg:
		return ClassJump
	case isa.KindMulDiv:
		return ClassMulDiv
	case isa.KindSys:
		return ClassSys
	default:
		return ClassALU
	}
}

// TypeStats is the per-class census.
type TypeStats struct {
	Overall  [NumClasses]uint64
	Repeated [NumClasses]uint64
}

// OverallPct returns each class's share of all dynamic instructions.
func (s *TypeStats) OverallPct() [NumClasses]float64 {
	var total uint64
	for _, v := range s.Overall {
		total += v
	}
	var out [NumClasses]float64
	for c := range out {
		out[c] = pct(s.Overall[c], total)
	}
	return out
}

// PropensityPct returns the fraction of each class that repeated.
func (s *TypeStats) PropensityPct() [NumClasses]float64 {
	var out [NumClasses]float64
	for c := range out {
		out[c] = pct(s.Repeated[c], s.Overall[c])
	}
	return out
}

// ObserveClass records one classified instruction; the Tracker's
// Observe caller feeds it (kept separate so the class census can run
// without the instance buffers if desired).
func (s *TypeStats) ObserveClass(ev *cpu.Event, repeated bool) {
	c := ClassOf(ev.Inst.Op)
	s.Overall[c]++
	if repeated {
		s.Repeated[c]++
	}
}
