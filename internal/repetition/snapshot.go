package repetition

import "repro/internal/checkpoint"

// Snapshot sanity bounds: a dense per-PC table past this length or an
// overflow table past this size is not something the tracker can
// produce from a real text segment, so a snapshot claiming one is
// rejected rather than allocated.
const (
	maxSnapshotRecords = 1 << 22
	maxSnapshotSlots   = 1 << 23
)

// encodedSlotLen is the wire size of one islot.
const encodedSlotLen = 4*4 + 4

// minEncodedRecordLen is the smallest wire size of one non-empty
// record (index + counters + n/last/full + two inline slots + empty
// overflow length).
const minEncodedRecordLen = 4 + 3*8 + 4 + 4 + 1 + 2*encodedSlotLen + 4

func writeSlot(w *checkpoint.Writer, s *islot) {
	w.U32(s.key.in1)
	w.U32(s.key.in2)
	w.U32(s.key.out)
	w.U32(s.key.aux)
	w.U32(s.count)
}

func readSlot(r *checkpoint.Reader, s *islot) {
	s.key.in1 = r.U32()
	s.key.in2 = r.U32()
	s.key.out = r.U32()
	s.key.aux = r.U32()
	s.count = r.U32()
}

// SnapshotTo writes the complete census state: the type census, the
// dense table's geometry, and every executed record including its
// exact instance-buffer layout (inline tier, overflow table with slot
// positions, last-match cache). Preserving layout — not just contents
// — makes a resumed tracker behaviorally identical to the
// uninterrupted one, probe chains and all.
func (t *Tracker) SnapshotTo(w *checkpoint.Writer) {
	for _, v := range t.Types.Overall {
		w.U64(v)
	}
	for _, v := range t.Types.Repeated {
		w.U64(v)
	}
	w.Bool(t.haveBase)
	w.U32(t.base)
	w.U64(t.totalDyn)
	w.U64(t.totalRepeated)
	w.U32(uint32(len(t.recs)))
	count := 0
	for i := range t.recs {
		if t.recs[i].dyn > 0 {
			count++
		}
	}
	w.U32(uint32(count))
	for i := range t.recs {
		rec := &t.recs[i]
		if rec.dyn == 0 {
			// A never-executed slot is all zeroes by the Observe
			// invariant; encode it by omission.
			continue
		}
		w.U32(uint32(i))
		w.U64(rec.dyn)
		w.U64(rec.repeated)
		w.U64(rec.dropped)
		w.U32(uint32(rec.n))
		w.U32(uint32(rec.last))
		w.Bool(rec.full)
		for j := range rec.inline {
			writeSlot(w, &rec.inline[j])
		}
		w.U32(uint32(len(rec.slots)))
		for j := range rec.slots {
			writeSlot(w, &rec.slots[j])
		}
	}
}

// RestoreFrom rebuilds the census from a snapshot, validating every
// structural invariant (indices strictly increasing and in range,
// overflow tables power-of-two sized, last-match index in bounds) so
// a malformed body yields an error, never a panic or a corrupt
// tracker. MaxInstances is configuration, not state — the caller
// constructs the tracker from the same run config before restoring.
func (t *Tracker) RestoreFrom(r *checkpoint.Reader) error {
	for i := range t.Types.Overall {
		t.Types.Overall[i] = r.U64()
	}
	for i := range t.Types.Repeated {
		t.Types.Repeated[i] = r.U64()
	}
	t.haveBase = r.Bool()
	t.base = r.U32()
	t.totalDyn = r.U64()
	t.totalRepeated = r.U64()
	tableLen := int(r.U32())
	if err := r.Err(); err != nil {
		return err
	}
	if tableLen > maxSnapshotRecords || (!t.haveBase && tableLen != 0) {
		return checkpoint.ErrMalformed
	}
	t.recs = make([]instRecord, tableLen)
	n := r.Count(minEncodedRecordLen)
	prev := -1
	for i := 0; i < n; i++ {
		idx := int(r.U32())
		if r.Err() != nil {
			return r.Err()
		}
		if idx <= prev || idx >= tableLen {
			return checkpoint.ErrMalformed
		}
		prev = idx
		rec := &t.recs[idx]
		rec.dyn = r.U64()
		rec.repeated = r.U64()
		rec.dropped = r.U64()
		rec.n = int32(r.U32())
		rec.last = int32(r.U32())
		rec.full = r.Bool()
		for j := range rec.inline {
			readSlot(r, &rec.inline[j])
		}
		slotsLen := int(r.U32())
		if r.Err() != nil {
			return r.Err()
		}
		switch {
		case slotsLen == 0:
		case slotsLen < minInstanceSlots, slotsLen > maxSnapshotSlots,
			slotsLen&(slotsLen-1) != 0, slotsLen > r.Remaining()/encodedSlotLen:
			return checkpoint.ErrMalformed
		default:
			rec.slots = make([]islot, slotsLen)
			for j := range rec.slots {
				readSlot(r, &rec.slots[j])
			}
		}
		if rec.dyn == 0 || rec.n < 0 ||
			rec.last < 0 || int(rec.last) >= max(slotsLen, 1) {
			return checkpoint.ErrMalformed
		}
	}
	return r.Err()
}
