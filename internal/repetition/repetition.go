// Package repetition implements the paper's core measurement: the
// instruction repetition census. A dynamic instance of a static
// instruction is *repeated* when it consumes the same input operand
// values and produces the same outputs as a previously buffered
// instance of that instruction (Section 2 of the paper). Up to
// MaxInstances unique instances are buffered per static instruction,
// matching the paper's 2000-entry limit.
//
// The census is the hot path of every run: it classifies each retired
// instruction in the measurement window. Two layout decisions keep it
// fast without changing any statistic:
//
//   - Per-PC records live in a dense table indexed by (pc-base)>>2.
//     Instruction addresses are word-aligned and span the contiguous
//     text segment, so the direct index replaces a Go map lookup per
//     retired instruction. SetTextBounds pre-sizes the table; without
//     it the table grows (and re-bases) on demand.
//   - Each record's unique-instance buffer is an open-addressing hash
//     set over the packed 16-byte instance keys with linear probing,
//     replacing a per-PC Go map. A slot's occurrence count doubles as
//     its occupancy marker (count 0 = empty).
package repetition

import (
	"sort"

	"repro/internal/cpu"
)

// DefaultMaxInstances matches the paper's per-instruction buffer limit.
const DefaultMaxInstances = 2000

// instKey identifies one unique instance: input values and outputs.
// It is compared and hashed as one packed 16-byte value.
type instKey struct {
	in1, in2 uint32
	out, aux uint32
}

// minInstanceSlots is the initial open-addressing table size per
// record; most static instructions have a handful of instances.
const minInstanceSlots = 8

// hashKey mixes the 16 key bytes into a table index seed
// (splitmix64-style finalizer over the two packed words).
func hashKey(k instKey) uint32 {
	h := uint64(k.in1)<<32 | uint64(k.in2)
	h ^= (uint64(k.out)<<32 | uint64(k.aux)) * 0x9e3779b97f4a7c15
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return uint32(h)
}

// islot is one occupied-or-empty slot of a record's instance set: the
// packed key and its occurrence count in one 20-byte unit, so a probe
// touches one cache line instead of two parallel arrays (a buffered
// instance has seen at least one occurrence, so count 0 = empty).
type islot struct {
	key   instKey
	count uint32
}

// instRecord is the per-static-instruction state. The first two
// instances live inline in the record itself — the census's core
// finding is that most static instructions repeat over very few
// unique instances (Figure 3), so the common case is a single 16-byte
// compare on a line the dyn++ update already touched, with no hash
// and no second allocation. PCs that accumulate more instances
// overflow into the open-addressing slots set. Instances are a pure
// set (membership and per-key counts); the two-tier layout cannot
// change any statistic. Invariant: slots != nil implies both inline
// entries are occupied.
type instRecord struct {
	// Field order is deliberate: the counters every Observe touches and
	// the first inline slot share the record's first cache line.
	dyn      uint64
	repeated uint64
	dropped  uint64 // instances not tracked because the buffer was full
	n        int32  // occupied instances (inline + slots)
	// last is the overflow-slot index of the most recently matched (or
	// inserted) instance: loops that repeat one instance re-hit it with
	// a single compare, skipping the hash. Stale values (including the
	// zero value and indices left behind by a rehash) are harmless —
	// the probe falls through to find on a key mismatch — because slot
	// indices only ever point inside the table and it never shrinks.
	last   int32
	full   bool // buffer hit MaxInstances; new instances dropped
	inline [2]islot
	slots  []islot
}

// eachRepeated calls fn with the occurrence count of each buffered
// instance that repeated at least once (count >= 2), across both
// tiers. Result-time only; the hot path never iterates.
func (rec *instRecord) eachRepeated(fn func(count uint32)) {
	for j := range rec.inline {
		if c := rec.inline[j].count; c >= 2 {
			fn(c)
		}
	}
	for i := range rec.slots {
		if c := rec.slots[i].count; c >= 2 {
			fn(c)
		}
	}
}

// find probes for k, returning its slot and whether it is occupied;
// for a missing key the returned slot is the insertion point.
func (rec *instRecord) find(k instKey) (int, bool) {
	mask := uint32(len(rec.slots) - 1)
	i := hashKey(k) & mask
	for {
		s := &rec.slots[i]
		if s.count == 0 {
			return int(i), false
		}
		if s.key == k {
			return int(i), true
		}
		i = (i + 1) & mask
	}
}

// insert adds k with count 1 at slot (from a failed find), growing and
// rehashing first when the table would pass 1/2 occupancy. The low
// load factor trades memory (bounded by the instance cap) for short
// probe chains — find runs on every overflow-tier observation, so
// probe length is hot-path latency, not a space concern.
func (rec *instRecord) insert(slot int, k instKey) {
	if int(rec.n+1)*2 > len(rec.slots) {
		old := rec.slots
		rec.slots = make([]islot, 2*len(old))
		for i := range old {
			if old[i].count != 0 {
				j, _ := rec.find(old[i].key)
				rec.slots[j] = old[i]
			}
		}
		slot, _ = rec.find(k)
	}
	rec.slots[slot] = islot{key: k, count: 1}
	rec.last = int32(slot)
	rec.n++
}

// Tracker is the repetition census. Attach it (via the core pipeline)
// to a cpu.Machine and read the statistics after the run.
type Tracker struct {
	// MaxInstances bounds the unique instances buffered per static
	// instruction; 0 means DefaultMaxInstances.
	MaxInstances int

	// Types is the per-instruction-class census (the paper's
	// mentioned-but-omitted typed total analysis).
	Types TypeStats

	// Dense per-PC table: recs[(pc-base)>>2]. A record with dyn == 0
	// belongs to a never-executed slot.
	base     uint32
	haveBase bool
	recs     []instRecord

	totalDyn      uint64
	totalRepeated uint64
}

// NewTracker returns a Tracker with the paper's buffer limit.
func NewTracker() *Tracker {
	return &Tracker{MaxInstances: DefaultMaxInstances}
}

// SetTextBounds pre-sizes the dense per-PC table for a text segment of
// `words` instructions starting at base, eliminating growth checks'
// work from the hot path. It is a no-op after observation starts.
func (t *Tracker) SetTextBounds(base uint32, words int) {
	if t.haveBase || words <= 0 {
		return
	}
	t.base = base
	t.haveBase = true
	t.recs = make([]instRecord, words)
}

// record returns the instRecord for pc, growing (or re-basing) the
// dense table when pc falls outside it. With SetTextBounds in effect
// neither slow path runs.
func (t *Tracker) record(pc uint32) *instRecord {
	if !t.haveBase {
		t.base = pc
		t.haveBase = true
		t.recs = make([]instRecord, 1)
		return &t.recs[0]
	}
	if pc < t.base {
		// Re-base: prepend empty records down to pc (rare; only when
		// execution visits a lower address than any seen before on a
		// tracker without SetTextBounds).
		shift := int((t.base - pc) >> 2)
		grown := make([]instRecord, len(t.recs)+shift)
		copy(grown[shift:], t.recs)
		t.recs = grown
		t.base = pc
	}
	idx := int((pc - t.base) >> 2)
	if idx >= len(t.recs) {
		if idx < cap(t.recs) {
			t.recs = t.recs[:idx+1]
		} else {
			grown := make([]instRecord, idx+1, 2*idx+1)
			copy(grown, t.recs)
			t.recs = grown
		}
	}
	return &t.recs[idx]
}

// keyOf builds the instance key for an event. Inputs are the register
// sources (plus stored data for stores, which is already Src2); the
// outputs are the destination value(s). A branch's output is its
// direction, so compare-and-branch outcomes repeat the way the paper's
// compare instructions do.
func keyOf(ev *cpu.Event) instKey {
	var k instKey
	if ev.Src1 >= 0 {
		k.in1 = ev.Src1Val
	}
	if ev.Src2 >= 0 {
		k.in2 = ev.Src2Val
	}
	if ev.Dst >= 0 {
		k.out = ev.DstVal
	}
	if ev.Aux >= 0 {
		k.aux = ev.AuxVal
	}
	if ev.IsBranch && ev.Taken {
		k.out = 1
	}
	return k
}

// Observe classifies one retired instruction, returning whether it is
// a repeat of a buffered instance.
func (t *Tracker) Observe(ev *cpu.Event) bool {
	rec := t.record(ev.PC)
	rec.dyn++
	t.totalDyn++

	k := keyOf(ev)
	// Inline tier. Entries fill in order and the overflow set is only
	// created once both are occupied, so an empty inline entry proves
	// the key is new (and is its insertion point).
	for j := range rec.inline {
		s := &rec.inline[j]
		if s.count == 0 {
			t.Types.ObserveClass(ev, false)
			if int(rec.n) >= t.limit() {
				rec.full = true
				rec.dropped++
				return false
			}
			s.key = k
			s.count = 1
			rec.n++
			return false
		}
		if s.key == k {
			s.count++
			rec.repeated++
			t.totalRepeated++
			t.Types.ObserveClass(ev, true)
			return true
		}
	}
	// Overflow tier. Try the last-match cache before hashing.
	if rec.slots == nil {
		rec.slots = make([]islot, minInstanceSlots)
	}
	if s := &rec.slots[rec.last]; s.count != 0 && s.key == k {
		s.count++
		rec.repeated++
		t.totalRepeated++
		t.Types.ObserveClass(ev, true)
		return true
	}
	slot, seen := rec.find(k)
	if seen {
		rec.slots[slot].count++
		rec.last = int32(slot)
		rec.repeated++
		t.totalRepeated++
		t.Types.ObserveClass(ev, true)
		return true
	}
	t.Types.ObserveClass(ev, false)
	if int(rec.n) >= t.limit() {
		rec.full = true
		rec.dropped++
		return false
	}
	rec.insert(slot, k)
	return false
}

// limit returns the effective per-instruction instance cap.
func (t *Tracker) limit() int {
	if t.MaxInstances == 0 {
		return DefaultMaxInstances
	}
	return t.MaxInstances
}

// Totals

// DynamicInstructions returns the number of instructions observed.
func (t *Tracker) DynamicInstructions() uint64 { return t.totalDyn }

// RepeatedInstructions returns the number classified as repeated.
func (t *Tracker) RepeatedInstructions() uint64 { return t.totalRepeated }

// RepeatedPercent returns the paper's Table 1 "Repeat (%)".
func (t *Tracker) RepeatedPercent() float64 {
	return pct(t.totalRepeated, t.totalDyn)
}

// StaticExecuted returns the number of distinct static instructions
// observed (paper: "Executed").
func (t *Tracker) StaticExecuted() int {
	n := 0
	for i := range t.recs {
		if t.recs[i].dyn > 0 {
			n++
		}
	}
	return n
}

// StaticRepeated returns the number of static instructions with at
// least one repeated dynamic instance (paper: "Repeated").
func (t *Tracker) StaticRepeated() int {
	n := 0
	for i := range t.recs {
		if t.recs[i].repeated > 0 {
			n++
		}
	}
	return n
}

// BuffersFilled returns how many static instructions exhausted their
// instance buffers (a capacity diagnostic; the paper sized buffers so
// this is rare).
func (t *Tracker) BuffersFilled() int {
	n := 0
	for i := range t.recs {
		if t.recs[i].full {
			n++
		}
	}
	return n
}

// UniqueRepeatableInstances returns the count of buffered instances
// that were repeated at least once (Table 2 "Count") and the average
// number of repeats per such instance (Table 2 "Avg. Repeats").
func (t *Tracker) UniqueRepeatableInstances() (count uint64, avgRepeats float64) {
	for i := range t.recs {
		t.recs[i].eachRepeated(func(uint32) { count++ })
	}
	if count > 0 {
		avgRepeats = float64(t.totalRepeated) / float64(count)
	}
	return count, avgRepeats
}

// StaticCoverage computes Figure 1: for each target fraction of the
// total dynamic repetition (in percent), the percentage of *repeated
// static instructions* (ranked by contribution) needed to cover it.
func (t *Tracker) StaticCoverage(targets []float64) []float64 {
	var contribs []uint64
	for i := range t.recs {
		if t.recs[i].repeated > 0 {
			contribs = append(contribs, t.recs[i].repeated)
		}
	}
	return coverageCurve(contribs, t.totalRepeated, targets)
}

// InstanceBuckets computes Figure 3: the share of total dynamic
// repetition contributed by static instructions grouped by how many
// unique repeatable instances they generate. Buckets: 1, 2-10,
// 11-100, 101-1000, >1000.
func (t *Tracker) InstanceBuckets() BucketShares {
	var b BucketShares
	for i := range t.recs {
		rec := &t.recs[i]
		if rec.repeated == 0 {
			continue
		}
		uniq := 0
		rec.eachRepeated(func(uint32) { uniq++ })
		switch {
		case uniq <= 1:
			b.One += rec.repeated
		case uniq <= 10:
			b.UpTo10 += rec.repeated
		case uniq <= 100:
			b.UpTo100 += rec.repeated
		case uniq <= 1000:
			b.UpTo1000 += rec.repeated
		default:
			b.Over1000 += rec.repeated
		}
	}
	b.total = t.totalRepeated
	return b
}

// BucketShares is the Figure 3 histogram (absolute repeat counts).
type BucketShares struct {
	One, UpTo10, UpTo100, UpTo1000, Over1000 uint64

	total uint64
}

// Percents returns the five bucket shares as percentages of all
// repetition, ordered [1, 2-10, 11-100, 101-1000, >1000].
func (b BucketShares) Percents() [5]float64 {
	return [5]float64{
		pct(b.One, b.total), pct(b.UpTo10, b.total), pct(b.UpTo100, b.total),
		pct(b.UpTo1000, b.total), pct(b.Over1000, b.total),
	}
}

// InstanceCoverage computes Figure 4: for each target fraction of
// total repetition, the percentage of unique repeatable instances
// (ranked by repeat count) needed to cover it.
func (t *Tracker) InstanceCoverage(targets []float64) []float64 {
	// Histogram over repeat counts avoids materializing millions of
	// instances.
	hist := make(map[uint32]uint64)
	var totalInstances uint64
	for i := range t.recs {
		t.recs[i].eachRepeated(func(c uint32) {
			hist[c-1]++ // count-1 repeats
			totalInstances++
		})
	}
	if totalInstances == 0 {
		return make([]float64, len(targets))
	}
	repeats := make([]uint32, 0, len(hist))
	for r := range hist {
		repeats = append(repeats, r)
	}
	sort.Slice(repeats, func(i, j int) bool { return repeats[i] > repeats[j] })

	out := make([]float64, len(targets))
	var cum, used uint64
	ti := 0
	for _, r := range repeats {
		if ti >= len(targets) {
			break
		}
		cnt := hist[r]
		// Within one repeat-count class, instances contribute evenly;
		// consume as many as needed for each crossed target.
		for ti < len(targets) {
			need := uint64(targets[ti] / 100 * float64(t.totalRepeated))
			if cum+cnt*uint64(r) < need {
				break
			}
			rem := need - cum
			k := (rem + uint64(r) - 1) / uint64(r) // instances from this class
			if k > cnt {
				// Float rounding in need can demand a fraction of an
				// instance beyond the class population; never report
				// more instances than the class holds (Figure 4 must
				// top out at exactly 100%).
				k = cnt
			}
			out[ti] = 100 * float64(used+k) / float64(totalInstances)
			ti++
		}
		cum += cnt * uint64(r)
		used += cnt
	}
	for ; ti < len(targets); ti++ {
		out[ti] = 100
	}
	return out
}

// PerPC returns the dynamic and repeated counts for one static
// instruction (testing and drill-down).
func (t *Tracker) PerPC(pc uint32) (dyn, repeated uint64, ok bool) {
	if !t.haveBase || pc < t.base {
		return 0, 0, false
	}
	idx := int((pc - t.base) >> 2)
	if idx >= len(t.recs) || t.recs[idx].dyn == 0 {
		return 0, 0, false
	}
	return t.recs[idx].dyn, t.recs[idx].repeated, true
}

// coverageCurve sorts contributions descending and reports, for each
// target percentage of total, the percentage of contributors needed.
func coverageCurve(contribs []uint64, total uint64, targets []float64) []float64 {
	out := make([]float64, len(targets))
	if total == 0 || len(contribs) == 0 {
		return out
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i] > contribs[j] })
	var cum uint64
	ti := 0
	for i, c := range contribs {
		cum += c
		for ti < len(targets) && float64(cum) >= targets[ti]/100*float64(total) {
			out[ti] = 100 * float64(i+1) / float64(len(contribs))
			ti++
		}
		if ti >= len(targets) {
			break
		}
	}
	for ; ti < len(targets); ti++ {
		out[ti] = 100
	}
	return out
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Name identifies the tracker in observability output.
func (t *Tracker) Name() string { return "repetition" }
