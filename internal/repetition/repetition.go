// Package repetition implements the paper's core measurement: the
// instruction repetition census. A dynamic instance of a static
// instruction is *repeated* when it consumes the same input operand
// values and produces the same outputs as a previously buffered
// instance of that instruction (Section 2 of the paper). Up to
// MaxInstances unique instances are buffered per static instruction,
// matching the paper's 2000-entry limit.
package repetition

import (
	"sort"

	"repro/internal/cpu"
)

// DefaultMaxInstances matches the paper's per-instruction buffer limit.
const DefaultMaxInstances = 2000

// instKey identifies one unique instance: input values and outputs.
type instKey struct {
	in1, in2 uint32
	out, aux uint32
}

// instRecord is the per-static-instruction state.
type instRecord struct {
	instances map[instKey]uint32 // occurrence count per unique instance
	full      bool               // buffer hit MaxInstances; new instances dropped
	dyn       uint64             // dynamic executions
	repeated  uint64             // dynamic repeats
	dropped   uint64             // instances not tracked because the buffer was full
}

// Tracker is the repetition census. Attach it (via the core pipeline)
// to a cpu.Machine and read the statistics after the run.
type Tracker struct {
	// MaxInstances bounds the unique instances buffered per static
	// instruction; 0 means DefaultMaxInstances.
	MaxInstances int

	// Types is the per-instruction-class census (the paper's
	// mentioned-but-omitted typed total analysis).
	Types TypeStats

	perPC map[uint32]*instRecord

	totalDyn      uint64
	totalRepeated uint64
}

// NewTracker returns a Tracker with the paper's buffer limit.
func NewTracker() *Tracker {
	return &Tracker{
		MaxInstances: DefaultMaxInstances,
		perPC:        make(map[uint32]*instRecord),
	}
}

// keyOf builds the instance key for an event. Inputs are the register
// sources (plus stored data for stores, which is already Src2); the
// outputs are the destination value(s). A branch's output is its
// direction, so compare-and-branch outcomes repeat the way the paper's
// compare instructions do.
func keyOf(ev *cpu.Event) instKey {
	var k instKey
	if ev.Src1 >= 0 {
		k.in1 = ev.Src1Val
	}
	if ev.Src2 >= 0 {
		k.in2 = ev.Src2Val
	}
	if ev.Dst >= 0 {
		k.out = ev.DstVal
	}
	if ev.Aux >= 0 {
		k.aux = ev.AuxVal
	}
	if ev.IsBranch && ev.Taken {
		k.out = 1
	}
	return k
}

// Observe classifies one retired instruction, returning whether it is
// a repeat of a buffered instance.
func (t *Tracker) Observe(ev *cpu.Event) bool {
	rec := t.perPC[ev.PC]
	if rec == nil {
		rec = &instRecord{instances: make(map[instKey]uint32, 4)}
		t.perPC[ev.PC] = rec
	}
	rec.dyn++
	t.totalDyn++

	k := keyOf(ev)
	if n, seen := rec.instances[k]; seen {
		rec.instances[k] = n + 1
		rec.repeated++
		t.totalRepeated++
		t.Types.ObserveClass(ev, true)
		return true
	}
	t.Types.ObserveClass(ev, false)
	max := t.MaxInstances
	if max == 0 {
		max = DefaultMaxInstances
	}
	if len(rec.instances) >= max {
		rec.full = true
		rec.dropped++
		return false
	}
	rec.instances[k] = 1
	return false
}

// Totals

// DynamicInstructions returns the number of instructions observed.
func (t *Tracker) DynamicInstructions() uint64 { return t.totalDyn }

// RepeatedInstructions returns the number classified as repeated.
func (t *Tracker) RepeatedInstructions() uint64 { return t.totalRepeated }

// RepeatedPercent returns the paper's Table 1 "Repeat (%)".
func (t *Tracker) RepeatedPercent() float64 {
	return pct(t.totalRepeated, t.totalDyn)
}

// StaticExecuted returns the number of distinct static instructions
// observed (paper: "Executed").
func (t *Tracker) StaticExecuted() int { return len(t.perPC) }

// StaticRepeated returns the number of static instructions with at
// least one repeated dynamic instance (paper: "Repeated").
func (t *Tracker) StaticRepeated() int {
	n := 0
	for _, rec := range t.perPC {
		if rec.repeated > 0 {
			n++
		}
	}
	return n
}

// BuffersFilled returns how many static instructions exhausted their
// instance buffers (a capacity diagnostic; the paper sized buffers so
// this is rare).
func (t *Tracker) BuffersFilled() int {
	n := 0
	for _, rec := range t.perPC {
		if rec.full {
			n++
		}
	}
	return n
}

// UniqueRepeatableInstances returns the count of buffered instances
// that were repeated at least once (Table 2 "Count") and the average
// number of repeats per such instance (Table 2 "Avg. Repeats").
func (t *Tracker) UniqueRepeatableInstances() (count uint64, avgRepeats float64) {
	for _, rec := range t.perPC {
		for _, n := range rec.instances {
			if n >= 2 {
				count++
			}
		}
	}
	if count > 0 {
		avgRepeats = float64(t.totalRepeated) / float64(count)
	}
	return count, avgRepeats
}

// StaticCoverage computes Figure 1: for each target fraction of the
// total dynamic repetition (in percent), the percentage of *repeated
// static instructions* (ranked by contribution) needed to cover it.
func (t *Tracker) StaticCoverage(targets []float64) []float64 {
	var contribs []uint64
	for _, rec := range t.perPC {
		if rec.repeated > 0 {
			contribs = append(contribs, rec.repeated)
		}
	}
	return coverageCurve(contribs, t.totalRepeated, targets)
}

// InstanceBuckets computes Figure 3: the share of total dynamic
// repetition contributed by static instructions grouped by how many
// unique repeatable instances they generate. Buckets: 1, 2-10,
// 11-100, 101-1000, >1000.
func (t *Tracker) InstanceBuckets() BucketShares {
	var b BucketShares
	for _, rec := range t.perPC {
		if rec.repeated == 0 {
			continue
		}
		uniq := 0
		for _, n := range rec.instances {
			if n >= 2 {
				uniq++
			}
		}
		switch {
		case uniq <= 1:
			b.One += rec.repeated
		case uniq <= 10:
			b.UpTo10 += rec.repeated
		case uniq <= 100:
			b.UpTo100 += rec.repeated
		case uniq <= 1000:
			b.UpTo1000 += rec.repeated
		default:
			b.Over1000 += rec.repeated
		}
	}
	b.total = t.totalRepeated
	return b
}

// BucketShares is the Figure 3 histogram (absolute repeat counts).
type BucketShares struct {
	One, UpTo10, UpTo100, UpTo1000, Over1000 uint64

	total uint64
}

// Percents returns the five bucket shares as percentages of all
// repetition, ordered [1, 2-10, 11-100, 101-1000, >1000].
func (b BucketShares) Percents() [5]float64 {
	return [5]float64{
		pct(b.One, b.total), pct(b.UpTo10, b.total), pct(b.UpTo100, b.total),
		pct(b.UpTo1000, b.total), pct(b.Over1000, b.total),
	}
}

// InstanceCoverage computes Figure 4: for each target fraction of
// total repetition, the percentage of unique repeatable instances
// (ranked by repeat count) needed to cover it.
func (t *Tracker) InstanceCoverage(targets []float64) []float64 {
	// Histogram over repeat counts avoids materializing millions of
	// instances.
	hist := make(map[uint32]uint64)
	var totalInstances uint64
	for _, rec := range t.perPC {
		for _, n := range rec.instances {
			if n >= 2 {
				hist[n-1]++ // n-1 repeats
				totalInstances++
			}
		}
	}
	if totalInstances == 0 {
		return make([]float64, len(targets))
	}
	repeats := make([]uint32, 0, len(hist))
	for r := range hist {
		repeats = append(repeats, r)
	}
	sort.Slice(repeats, func(i, j int) bool { return repeats[i] > repeats[j] })

	out := make([]float64, len(targets))
	var cum, used uint64
	ti := 0
	for _, r := range repeats {
		if ti >= len(targets) {
			break
		}
		cnt := hist[r]
		// Within one repeat-count class, instances contribute evenly;
		// consume as many as needed for each crossed target.
		for ti < len(targets) {
			need := uint64(targets[ti] / 100 * float64(t.totalRepeated))
			if cum+cnt*uint64(r) < need {
				break
			}
			rem := need - cum
			k := (rem + uint64(r) - 1) / uint64(r) // instances from this class
			out[ti] = 100 * float64(used+k) / float64(totalInstances)
			ti++
		}
		cum += cnt * uint64(r)
		used += cnt
	}
	for ; ti < len(targets); ti++ {
		out[ti] = 100
	}
	return out
}

// PerPC returns the dynamic and repeated counts for one static
// instruction (testing and drill-down).
func (t *Tracker) PerPC(pc uint32) (dyn, repeated uint64, ok bool) {
	rec, ok := t.perPC[pc]
	if !ok {
		return 0, 0, false
	}
	return rec.dyn, rec.repeated, true
}

// coverageCurve sorts contributions descending and reports, for each
// target percentage of total, the percentage of contributors needed.
func coverageCurve(contribs []uint64, total uint64, targets []float64) []float64 {
	out := make([]float64, len(targets))
	if total == 0 || len(contribs) == 0 {
		return out
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i] > contribs[j] })
	var cum uint64
	ti := 0
	for i, c := range contribs {
		cum += c
		for ti < len(targets) && float64(cum) >= targets[ti]/100*float64(total) {
			out[ti] = 100 * float64(i+1) / float64(len(contribs))
			ti++
		}
		if ti >= len(targets) {
			break
		}
	}
	for ; ti < len(targets); ti++ {
		out[ti] = 100
	}
	return out
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Name identifies the tracker in observability output.
func (t *Tracker) Name() string { return "repetition" }
