// Package faultinject provides deterministic, test-injectable fault
// points for the run path. A Plan is a static list of faults, each
// firing at an exact place (a workload's compilation, a retire count
// in the simulator, an observer callback) so that a faulted run is as
// reproducible as a clean one. The resilience tests drive every
// degradation path in internal/core through this package: compile
// failures, simulator faults mid-window, observer panics, and slow or
// fully stalled steps that the deadman watchdog must catch.
//
// Plans are wired into a run via core.Config.Faults and consulted at
// three sites:
//
//   - compilation (repro.RunWorkload / repro.RunSource): CompileError
//   - the simulator step loop (cpu.Machine.Hook): StepHook
//   - instruction observation (cpu.Machine.Attach): Observer
//
// A nil *Plan is valid everywhere and injects nothing, so production
// paths carry no fault-injection cost beyond one nil check.
package faultinject

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cpu"
)

// Kind selects a fault point.
type Kind int

const (
	// CompileFail makes the workload's compilation return an error.
	CompileFail Kind = iota
	// SimFault makes the simulator step at retire count At return an
	// error, as a real fault (divide by zero, bad access) would.
	SimFault
	// ObserverPanic panics inside an attached observer when the
	// instruction with dynamic index At retires, exercising the
	// per-workload panic isolation.
	ObserverPanic
	// SlowStep stalls every step at or after retire count At for
	// Delay, simulating a wedged or runaway workload for the
	// watchdog. The stall is cancellation-aware: it aborts early with
	// the context's cause when the run is canceled.
	SlowStep
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case CompileFail:
		return "compile-fail"
	case SimFault:
		return "sim-fault"
	case ObserverPanic:
		return "observer-panic"
	case SlowStep:
		return "slow-step"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one injected fault.
type Fault struct {
	// Kind selects the fault point.
	Kind Kind
	// Workload restricts the fault to one workload name ("" matches
	// every workload).
	Workload string
	// At is the retire-count trigger for SimFault, ObserverPanic, and
	// SlowStep (the dynamic instruction index, 0-based).
	At uint64
	// Message overrides the default error/panic text.
	Message string
	// Delay is the per-step stall for SlowStep.
	Delay time.Duration
}

// message returns the fault's text, falling back to a default.
func (f Fault) message(def string) string {
	if f.Message != "" {
		return f.Message
	}
	return def
}

// Plan is a deterministic set of faults. The zero value and the nil
// plan inject nothing; Plan values are immutable after construction
// and safe for concurrent use across workload goroutines.
type Plan struct {
	faults []Fault
}

// NewPlan builds a plan from the given faults.
func NewPlan(faults ...Fault) *Plan {
	return &Plan{faults: append([]Fault(nil), faults...)}
}

// matches reports whether the fault applies to the workload.
func (f Fault) matches(workload string) bool {
	return f.Workload == "" || f.Workload == workload
}

// CompileError returns the injected compile failure for a workload,
// or nil when none applies.
func (p *Plan) CompileError(workload string) error {
	if p == nil {
		return nil
	}
	for _, f := range p.faults {
		if f.Kind == CompileFail && f.matches(workload) {
			return fmt.Errorf("faultinject: %s: %s", workload, f.message("injected compile failure"))
		}
	}
	return nil
}

// StepHook builds the simulator step hook combining the workload's
// SimFault and SlowStep faults, or nil when none apply. The hook runs
// before every step with the current retire count and PC; SlowStep
// stalls are interruptible through ctx so a watchdog or timeout abort
// is not itself blocked by the injected stall.
func (p *Plan) StepHook(ctx context.Context, workload string) cpu.StepHook {
	if p == nil {
		return nil
	}
	var sel []Fault
	for _, f := range p.faults {
		if (f.Kind == SimFault || f.Kind == SlowStep) && f.matches(workload) {
			sel = append(sel, f)
		}
	}
	if len(sel) == 0 {
		return nil
	}
	return func(count uint64, pc uint32) error {
		for _, f := range sel {
			switch f.Kind {
			case SimFault:
				if count == f.At {
					return fmt.Errorf("faultinject: pc=0x%x: %s", pc, f.message("injected simulator fault"))
				}
			case SlowStep:
				if count >= f.At {
					select {
					case <-time.After(f.Delay):
					case <-ctx.Done():
						return cause(ctx)
					}
				}
			}
		}
		return nil
	}
}

// Observer returns an observer that panics at the configured retire
// count for the workload, or nil when no ObserverPanic fault applies.
func (p *Plan) Observer(workload string) cpu.Observer {
	if p == nil {
		return nil
	}
	for _, f := range p.faults {
		if f.Kind == ObserverPanic && f.matches(workload) {
			return &panicObserver{at: f.At, msg: f.message("injected observer panic")}
		}
	}
	return nil
}

// panicObserver panics when the instruction with index at retires.
type panicObserver struct {
	at  uint64
	msg string
}

func (o *panicObserver) OnInst(ev *cpu.Event) {
	if ev.Index == o.at {
		panic(o.msg)
	}
}

// cause returns the context's cancel cause, falling back to its plain
// error.
func cause(ctx context.Context) error {
	if c := context.Cause(ctx); c != nil {
		return c
	}
	return ctx.Err()
}
