package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cpu"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if err := p.CompileError("any"); err != nil {
		t.Errorf("nil plan CompileError = %v", err)
	}
	if h := p.StepHook(context.Background(), "any"); h != nil {
		t.Error("nil plan StepHook must be nil")
	}
	if o := p.Observer("any"); o != nil {
		t.Error("nil plan Observer must be nil")
	}
}

func TestCompileError(t *testing.T) {
	p := NewPlan(Fault{Kind: CompileFail, Workload: "lzw", Message: "boom"})
	if err := p.CompileError("jpeg"); err != nil {
		t.Errorf("fault scoped to lzw fired for jpeg: %v", err)
	}
	err := p.CompileError("lzw")
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("CompileError = %v, want injected message", err)
	}
	// Empty Workload matches every workload.
	any := NewPlan(Fault{Kind: CompileFail})
	if any.CompileError("whatever") == nil {
		t.Error("unscoped compile fault must fire for every workload")
	}
}

func TestSimFaultFiresAtExactCount(t *testing.T) {
	p := NewPlan(Fault{Kind: SimFault, At: 5})
	hook := p.StepHook(context.Background(), "w")
	if hook == nil {
		t.Fatal("expected a hook")
	}
	for i := uint64(0); i < 5; i++ {
		if err := hook(i, 0x1000); err != nil {
			t.Fatalf("hook fired early at count %d: %v", i, err)
		}
	}
	err := hook(5, 0x1234)
	if err == nil || !strings.Contains(err.Error(), "pc=0x1234") {
		t.Errorf("hook(5) = %v, want fault naming the PC", err)
	}
}

func TestSlowStepIsCancellable(t *testing.T) {
	p := NewPlan(Fault{Kind: SlowStep, Delay: time.Hour})
	ctx, cancel := context.WithCancelCause(context.Background())
	hook := p.StepHook(ctx, "w")
	sentinel := errors.New("aborted by test")
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel(sentinel)
	}()
	start := time.Now()
	err := hook(0, 0)
	if !errors.Is(err, sentinel) {
		t.Errorf("stalled hook returned %v, want the cancel cause", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stall ignored cancellation for %v", elapsed)
	}
}

func TestObserverPanics(t *testing.T) {
	p := NewPlan(Fault{Kind: ObserverPanic, At: 2, Message: "kaboom"})
	o := p.Observer("w")
	if o == nil {
		t.Fatal("expected an observer")
	}
	o.OnInst(&cpu.Event{Index: 1}) // must not panic
	defer func() {
		pv := recover()
		if pv == nil {
			t.Fatal("observer did not panic at its index")
		}
		if s, ok := pv.(string); !ok || s != "kaboom" {
			t.Errorf("panic value = %v, want injected message", pv)
		}
	}()
	o.OnInst(&cpu.Event{Index: 2})
}
