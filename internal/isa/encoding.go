package isa

import "fmt"

// Binary encoding follows the real MIPS-I formats:
//
//	R-type: op(6)=0 | rs(5) | rt(5) | rd(5) | shamt(5) | funct(6)
//	I-type: op(6)   | rs(5) | rt(5) | imm(16)
//	J-type: op(6)   | target(26)
//
// Encode/Decode round-trip exactly for every instruction the assembler
// and compiler produce; property tests in encoding_test.go verify this.

// R-type funct codes.
const (
	fnSLL     = 0
	fnSRL     = 2
	fnSRA     = 3
	fnSLLV    = 4
	fnSRLV    = 6
	fnSRAV    = 7
	fnJR      = 8
	fnJALR    = 9
	fnSYSCALL = 12
	fnBREAK   = 13
	fnMFHI    = 16
	fnMTHI    = 17
	fnMFLO    = 18
	fnMTLO    = 19
	fnMULT    = 24
	fnMULTU   = 25
	fnDIV     = 26
	fnDIVU    = 27
	fnADDU    = 33
	fnSUBU    = 35
	fnAND     = 36
	fnOR      = 37
	fnXOR     = 38
	fnNOR     = 39
	fnSLT     = 42
	fnSLTU    = 43
)

// Major opcodes.
const (
	opSPECIAL = 0
	opREGIMM  = 1
	opJ       = 2
	opJAL     = 3
	opBEQ     = 4
	opBNE     = 5
	opBLEZ    = 6
	opBGTZ    = 7
	opADDIU   = 9
	opSLTI    = 10
	opSLTIU   = 11
	opANDI    = 12
	opORI     = 13
	opXORI    = 14
	opLUI     = 15
	opLB      = 32
	opLH      = 33
	opLW      = 35
	opLBU     = 36
	opLHU     = 37
	opSB      = 40
	opSH      = 41
	opSW      = 43
)

var alu3Funct = map[Op]uint32{
	OpADDU: fnADDU, OpSUBU: fnSUBU, OpAND: fnAND, OpOR: fnOR,
	OpXOR: fnXOR, OpNOR: fnNOR, OpSLT: fnSLT, OpSLTU: fnSLTU,
	OpSLLV: fnSLLV, OpSRLV: fnSRLV, OpSRAV: fnSRAV,
}

var functALU3 = invert(alu3Funct)

var shiftFunct = map[Op]uint32{OpSLL: fnSLL, OpSRL: fnSRL, OpSRA: fnSRA}
var functShift = invert(shiftFunct)

var mulDivFunct = map[Op]uint32{
	OpMULT: fnMULT, OpMULTU: fnMULTU, OpDIV: fnDIV, OpDIVU: fnDIVU,
}
var functMulDiv = invert(mulDivFunct)

var moveHLFunct = map[Op]uint32{
	OpMFHI: fnMFHI, OpMFLO: fnMFLO, OpMTHI: fnMTHI, OpMTLO: fnMTLO,
}
var functMoveHL = invert(moveHLFunct)

var immOpcode = map[Op]uint32{
	OpADDIU: opADDIU, OpSLTI: opSLTI, OpSLTIU: opSLTIU,
	OpANDI: opANDI, OpORI: opORI, OpXORI: opXORI,
}
var opcodeImm = invert(immOpcode)

var memOpcode = map[Op]uint32{
	OpLB: opLB, OpLBU: opLBU, OpLH: opLH, OpLHU: opLHU, OpLW: opLW,
	OpSB: opSB, OpSH: opSH, OpSW: opSW,
}
var opcodeMem = invert(memOpcode)

func invert(m map[Op]uint32) map[uint32]Op {
	out := make(map[uint32]Op, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func rtype(rs, rt, rd, shamt, funct uint32) uint32 {
	return rs<<21 | rt<<16 | rd<<11 | shamt<<6 | funct
}

func itype(op, rs, rt uint32, imm int32) uint32 {
	return op<<26 | rs<<21 | rt<<16 | uint32(uint16(imm))
}

// Encode returns the 32-bit machine word for in. It returns an error if
// an immediate does not fit its field.
func Encode(in Inst) (uint32, error) {
	rs, rt, rd := uint32(in.Rs), uint32(in.Rt), uint32(in.Rd)
	switch OpKind(in.Op) {
	case KindALU3:
		return rtype(rs, rt, rd, 0, alu3Funct[in.Op]), nil
	case KindShift:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("isa: shift amount %d out of range", in.Imm)
		}
		return rtype(0, rt, rd, uint32(in.Imm), shiftFunct[in.Op]), nil
	case KindMulDiv:
		return rtype(rs, rt, 0, 0, mulDivFunct[in.Op]), nil
	case KindMoveHL:
		switch in.Op {
		case OpMFHI, OpMFLO:
			return rtype(0, 0, rd, 0, moveHLFunct[in.Op]), nil
		default:
			return rtype(rs, 0, 0, 0, moveHLFunct[in.Op]), nil
		}
	case KindALUImm:
		if err := checkImm16(in.Op, in.Imm); err != nil {
			return 0, err
		}
		return itype(immOpcode[in.Op], rs, rt, in.Imm), nil
	case KindLUI:
		if in.Imm < 0 || in.Imm > 0xffff {
			return 0, fmt.Errorf("isa: lui immediate %d out of range", in.Imm)
		}
		return itype(opLUI, 0, rt, in.Imm), nil
	case KindLoad, KindStore:
		if in.Imm < -32768 || in.Imm > 32767 {
			return 0, fmt.Errorf("isa: memory offset %d out of range", in.Imm)
		}
		return itype(memOpcode[in.Op], rs, rt, in.Imm), nil
	case KindBranch:
		if in.Imm < -32768 || in.Imm > 32767 {
			return 0, fmt.Errorf("isa: branch offset %d out of range", in.Imm)
		}
		switch in.Op {
		case OpBEQ:
			return itype(opBEQ, rs, rt, in.Imm), nil
		case OpBNE:
			return itype(opBNE, rs, rt, in.Imm), nil
		case OpBLEZ:
			return itype(opBLEZ, rs, 0, in.Imm), nil
		case OpBGTZ:
			return itype(opBGTZ, rs, 0, in.Imm), nil
		case OpBLTZ:
			return itype(opREGIMM, rs, 0, in.Imm), nil
		default: // OpBGEZ
			return itype(opREGIMM, rs, 1, in.Imm), nil
		}
	case KindJump:
		if in.Imm < 0 || uint32(in.Imm) > 1<<26-1 {
			return 0, fmt.Errorf("isa: jump target %d out of range", in.Imm)
		}
		op := uint32(opJ)
		if in.Op == OpJAL {
			op = opJAL
		}
		return op<<26 | uint32(in.Imm), nil
	case KindJumpReg:
		if in.Op == OpJR {
			return rtype(rs, 0, 0, 0, fnJR), nil
		}
		return rtype(rs, 0, rd, 0, fnJALR), nil
	default:
		if in.Op == OpSYSCALL {
			return rtype(0, 0, 0, 0, fnSYSCALL), nil
		}
		if in.Op == OpBREAK {
			return rtype(0, 0, 0, 0, fnBREAK), nil
		}
		return 0, fmt.Errorf("isa: cannot encode op %v", in.Op)
	}
}

func checkImm16(op Op, imm int32) error {
	switch op {
	case OpANDI, OpORI, OpXORI:
		if imm < 0 || imm > 0xffff {
			return fmt.Errorf("isa: %v immediate %d out of unsigned 16-bit range", op, imm)
		}
	default:
		if imm < -32768 || imm > 32767 {
			return fmt.Errorf("isa: %v immediate %d out of signed 16-bit range", op, imm)
		}
	}
	return nil
}

// Decode decodes a 32-bit machine word.
func Decode(word uint32) (Inst, error) {
	op := word >> 26
	rs := uint8(word >> 21 & 31)
	rt := uint8(word >> 16 & 31)
	rd := uint8(word >> 11 & 31)
	shamt := int32(word >> 6 & 31)
	funct := word & 63
	simm := int32(int16(word & 0xffff))
	uimm := int32(word & 0xffff)

	switch op {
	case opSPECIAL:
		if o, ok := functALU3[funct]; ok {
			return Inst{Op: o, Rd: rd, Rs: rs, Rt: rt}, nil
		}
		if o, ok := functShift[funct]; ok {
			return Inst{Op: o, Rd: rd, Rt: rt, Imm: shamt}, nil
		}
		if o, ok := functMulDiv[funct]; ok {
			return Inst{Op: o, Rs: rs, Rt: rt}, nil
		}
		if o, ok := functMoveHL[funct]; ok {
			if o == OpMFHI || o == OpMFLO {
				return Inst{Op: o, Rd: rd}, nil
			}
			return Inst{Op: o, Rs: rs}, nil
		}
		switch funct {
		case fnJR:
			return Inst{Op: OpJR, Rs: rs}, nil
		case fnJALR:
			return Inst{Op: OpJALR, Rd: rd, Rs: rs}, nil
		case fnSYSCALL:
			return Inst{Op: OpSYSCALL}, nil
		case fnBREAK:
			return Inst{Op: OpBREAK}, nil
		}
		return Inst{}, fmt.Errorf("isa: unknown funct %d", funct)
	case opREGIMM:
		switch rt {
		case 0:
			return Inst{Op: OpBLTZ, Rs: rs, Imm: simm}, nil
		case 1:
			return Inst{Op: OpBGEZ, Rs: rs, Imm: simm}, nil
		}
		return Inst{}, fmt.Errorf("isa: unknown regimm rt %d", rt)
	case opJ:
		return Inst{Op: OpJ, Imm: int32(word & (1<<26 - 1))}, nil
	case opJAL:
		return Inst{Op: OpJAL, Imm: int32(word & (1<<26 - 1))}, nil
	case opBEQ:
		return Inst{Op: OpBEQ, Rs: rs, Rt: rt, Imm: simm}, nil
	case opBNE:
		return Inst{Op: OpBNE, Rs: rs, Rt: rt, Imm: simm}, nil
	case opBLEZ:
		return Inst{Op: OpBLEZ, Rs: rs, Imm: simm}, nil
	case opBGTZ:
		return Inst{Op: OpBGTZ, Rs: rs, Imm: simm}, nil
	case opLUI:
		return Inst{Op: OpLUI, Rt: rt, Imm: uimm}, nil
	}
	if o, ok := opcodeImm[op]; ok {
		imm := simm
		if o == OpANDI || o == OpORI || o == OpXORI {
			imm = uimm
		}
		return Inst{Op: o, Rs: rs, Rt: rt, Imm: imm}, nil
	}
	if o, ok := opcodeMem[op]; ok {
		return Inst{Op: o, Rs: rs, Rt: rt, Imm: simm}, nil
	}
	return Inst{}, fmt.Errorf("isa: unknown opcode %d", op)
}
