// Package isa defines a MIPS-I-like 32-bit instruction set: register
// names and conventions, opcodes, a decoded instruction representation,
// and a binary encoding (encode/decode round-trip).
//
// The ISA follows the classic MIPS o32 conventions used by the paper's
// experimental setup (gcc 2.6.3 targeting "a MIPS-1 like instruction
// set"): 32 general registers with $gp pointing at the small-data area,
// $sp/$fp for the stack, $a0..$a3 argument registers, $v0/$v1 result
// registers, and $s0..$s7 callee-saved registers. Branch delay slots are
// not modeled; the simulator is functional (see DESIGN.md).
package isa

import "fmt"

// Register numbers, MIPS o32 names.
const (
	RegZero = 0 // $zero: hardwired zero
	RegAT   = 1 // $at: assembler temporary
	RegV0   = 2 // $v0: result / syscall number
	RegV1   = 3 // $v1: result
	RegA0   = 4 // $a0: argument 0
	RegA1   = 5 // $a1
	RegA2   = 6 // $a2
	RegA3   = 7 // $a3
	RegT0   = 8 // $t0: caller-saved temporaries
	RegT1   = 9
	RegT2   = 10
	RegT3   = 11
	RegT4   = 12
	RegT5   = 13
	RegT6   = 14
	RegT7   = 15
	RegS0   = 16 // $s0: callee-saved
	RegS1   = 17
	RegS2   = 18
	RegS3   = 19
	RegS4   = 20
	RegS5   = 21
	RegS6   = 22
	RegS7   = 23
	RegT8   = 24
	RegT9   = 25
	RegK0   = 26 // reserved for OS
	RegK1   = 27
	RegGP   = 28 // $gp: global pointer (data-segment anchor)
	RegSP   = 29 // $sp: stack pointer
	RegFP   = 30 // $fp / $s8: frame pointer (callee-saved)
	RegRA   = 31 // $ra: return address

	// NumRegs is the number of general-purpose registers.
	NumRegs = 32
)

// regNames maps register numbers to their conventional names.
var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegName returns the conventional name ("$sp", "$a0", ...) of register r.
func RegName(r int) string {
	if r < 0 || r >= NumRegs {
		return fmt.Sprintf("$?%d", r)
	}
	return "$" + regNames[r]
}

// RegByName returns the register number for a name like "sp", "$sp", or
// a numeric name like "$29". ok is false if the name is unknown.
func RegByName(name string) (reg int, ok bool) {
	if len(name) > 0 && name[0] == '$' {
		name = name[1:]
	}
	for i, n := range regNames {
		if n == name {
			return i, true
		}
	}
	// Numeric form: $0..$31.
	n := 0
	if len(name) == 0 {
		return 0, false
	}
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if n >= NumRegs {
		return 0, false
	}
	return n, true
}

// IsCalleeSaved reports whether register r must be preserved across
// calls under the o32 convention ($s0..$s7, $fp, and by construction
// $gp/$sp).
func IsCalleeSaved(r int) bool {
	return (r >= RegS0 && r <= RegS7) || r == RegFP || r == RegGP || r == RegSP
}

// Op is a machine operation.
type Op uint8

// Operations. The set mirrors the MIPS-I integer core.
const (
	OpInvalid Op = iota

	// Three-register ALU.
	OpADDU
	OpSUBU
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLT
	OpSLTU
	OpSLLV
	OpSRLV
	OpSRAV

	// Shift by immediate amount (shamt in Imm).
	OpSLL
	OpSRL
	OpSRA

	// Multiply/divide unit.
	OpMULT
	OpMULTU
	OpDIV
	OpDIVU
	OpMFHI
	OpMFLO
	OpMTHI
	OpMTLO

	// Immediate ALU.
	OpADDIU
	OpSLTI
	OpSLTIU
	OpANDI
	OpORI
	OpXORI
	OpLUI

	// Loads and stores.
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW
	OpSB
	OpSH
	OpSW

	// Control transfer.
	OpBEQ
	OpBNE
	OpBLEZ
	OpBGTZ
	OpBLTZ
	OpBGEZ
	OpJ
	OpJAL
	OpJR
	OpJALR

	// System.
	OpSYSCALL
	OpBREAK

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpADDU:    "addu", OpSUBU: "subu", OpAND: "and", OpOR: "or",
	OpXOR: "xor", OpNOR: "nor", OpSLT: "slt", OpSLTU: "sltu",
	OpSLLV: "sllv", OpSRLV: "srlv", OpSRAV: "srav",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra",
	OpMULT: "mult", OpMULTU: "multu", OpDIV: "div", OpDIVU: "divu",
	OpMFHI: "mfhi", OpMFLO: "mflo", OpMTHI: "mthi", OpMTLO: "mtlo",
	OpADDIU: "addiu", OpSLTI: "slti", OpSLTIU: "sltiu",
	OpANDI: "andi", OpORI: "ori", OpXORI: "xori", OpLUI: "lui",
	OpLB: "lb", OpLBU: "lbu", OpLH: "lh", OpLHU: "lhu", OpLW: "lw",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpBEQ: "beq", OpBNE: "bne", OpBLEZ: "blez", OpBGTZ: "bgtz",
	OpBLTZ: "bltz", OpBGEZ: "bgez",
	OpJ: "j", OpJAL: "jal", OpJR: "jr", OpJALR: "jalr",
	OpSYSCALL: "syscall", OpBREAK: "break",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if op >= numOps {
		return "op?"
	}
	return opNames[op]
}

// OpByName returns the Op with the given mnemonic.
func OpByName(name string) (Op, bool) {
	for i := Op(1); i < numOps; i++ {
		if opNames[i] == name {
			return i, true
		}
	}
	return OpInvalid, false
}

// Kind classifies operations by operand shape and behaviour.
type Kind uint8

// Operation kinds.
const (
	KindALU3    Kind = iota // rd = rs OP rt
	KindShift               // rd = rt OP shamt
	KindMulDiv              // hi/lo = rs OP rt
	KindMoveHL              // mfhi/mflo/mthi/mtlo
	KindALUImm              // rt = rs OP imm
	KindLUI                 // rt = imm << 16
	KindLoad                // rt = mem[rs+imm]
	KindStore               // mem[rs+imm] = rt
	KindBranch              // PC-relative conditional
	KindJump                // j/jal absolute
	KindJumpReg             // jr/jalr
	KindSys                 // syscall/break

	// NumKinds counts the operation kinds (for per-kind tallies).
	NumKinds = int(KindSys) + 1
)

var kindNames = [NumKinds]string{
	"alu", "shift", "mul/div", "movehl", "aluimm", "lui",
	"load", "store", "branch", "jump", "jumpreg", "sys",
}

// String returns a short lowercase label for the kind.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// opKinds precomputes classifyOp for every valid op so the hot-path
// OpKind call is an array load instead of a switch dispatch.
var opKinds = func() (t [numOps]Kind) {
	for op := Op(0); op < numOps; op++ {
		t[op] = classifyOp(op)
	}
	return
}()

// OpKind returns the Kind of op.
func OpKind(op Op) Kind {
	if op < numOps {
		return opKinds[op]
	}
	return KindSys
}

func classifyOp(op Op) Kind {
	switch op {
	case OpADDU, OpSUBU, OpAND, OpOR, OpXOR, OpNOR, OpSLT, OpSLTU, OpSLLV, OpSRLV, OpSRAV:
		return KindALU3
	case OpSLL, OpSRL, OpSRA:
		return KindShift
	case OpMULT, OpMULTU, OpDIV, OpDIVU:
		return KindMulDiv
	case OpMFHI, OpMFLO, OpMTHI, OpMTLO:
		return KindMoveHL
	case OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI:
		return KindALUImm
	case OpLUI:
		return KindLUI
	case OpLB, OpLBU, OpLH, OpLHU, OpLW:
		return KindLoad
	case OpSB, OpSH, OpSW:
		return KindStore
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpBLTZ, OpBGEZ:
		return KindBranch
	case OpJ, OpJAL:
		return KindJump
	case OpJR, OpJALR:
		return KindJumpReg
	default:
		return KindSys
	}
}

// Inst is a decoded instruction. Field use depends on OpKind:
//
//	ALU3:    Rd = Rs op Rt
//	Shift:   Rd = Rt op Imm (shamt)
//	MulDiv:  HI,LO = Rs op Rt
//	MoveHL:  mfhi/mflo: Rd; mthi/mtlo: Rs
//	ALUImm:  Rt = Rs op Imm (sign- or zero-extended per op)
//	LUI:     Rt = Imm<<16
//	Load:    Rt = mem[Rs+Imm]
//	Store:   mem[Rs+Imm] = Rt
//	Branch:  compare Rs (and Rt for beq/bne); Imm = word offset
//	Jump:    Imm = target word address (PC-region absolute)
//	JumpReg: jr: Rs; jalr: Rd, Rs
type Inst struct {
	Op  Op
	Rd  uint8
	Rs  uint8
	Rt  uint8
	Imm int32
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch OpKind(in.Op) {
	case KindALU3:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(int(in.Rd)), RegName(int(in.Rs)), RegName(int(in.Rt)))
	case KindShift:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(int(in.Rd)), RegName(int(in.Rt)), in.Imm)
	case KindMulDiv:
		return fmt.Sprintf("%s %s, %s", in.Op, RegName(int(in.Rs)), RegName(int(in.Rt)))
	case KindMoveHL:
		if in.Op == OpMFHI || in.Op == OpMFLO {
			return fmt.Sprintf("%s %s", in.Op, RegName(int(in.Rd)))
		}
		return fmt.Sprintf("%s %s", in.Op, RegName(int(in.Rs)))
	case KindALUImm:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(int(in.Rt)), RegName(int(in.Rs)), in.Imm)
	case KindLUI:
		return fmt.Sprintf("lui %s, %d", RegName(int(in.Rt)), in.Imm)
	case KindLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(int(in.Rt)), in.Imm, RegName(int(in.Rs)))
	case KindStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(int(in.Rt)), in.Imm, RegName(int(in.Rs)))
	case KindBranch:
		switch in.Op {
		case OpBEQ, OpBNE:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(int(in.Rs)), RegName(int(in.Rt)), in.Imm)
		default:
			return fmt.Sprintf("%s %s, %d", in.Op, RegName(int(in.Rs)), in.Imm)
		}
	case KindJump:
		return fmt.Sprintf("%s 0x%x", in.Op, uint32(in.Imm)<<2)
	case KindJumpReg:
		if in.Op == OpJR {
			return fmt.Sprintf("jr %s", RegName(int(in.Rs)))
		}
		return fmt.Sprintf("jalr %s, %s", RegName(int(in.Rd)), RegName(int(in.Rs)))
	default:
		return in.Op.String()
	}
}

// Nop returns the canonical no-op (sll $zero, $zero, 0).
func Nop() Inst { return Inst{Op: OpSLL} }

// IsNop reports whether in has no architectural effect.
func IsNop(in Inst) bool {
	return in.Op == OpSLL && in.Rd == 0 && in.Rt == 0 && in.Imm == 0
}
