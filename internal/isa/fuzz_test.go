package isa

import "testing"

// FuzzDecode feeds arbitrary instruction words to the decoder. The
// contract: Decode never panics, and any word it accepts survives an
// Encode/Decode round trip unchanged.
func FuzzDecode(f *testing.F) {
	// Seed with one instruction of each format plus edge words.
	f.Add(uint32(0))
	f.Add(uint32(0xffffffff))
	f.Add(uint32(0x0000000c)) // syscall
	f.Add(uint32(0x8c820004)) // lw
	f.Add(uint32(0x00851020)) // add
	f.Add(uint32(0x08000010)) // j
	f.Add(uint32(0x1085fffe)) // beq backwards
	f.Fuzz(func(t *testing.T, word uint32) {
		in, err := Decode(word)
		if err != nil {
			return // rejected words just need to not panic
		}
		re, err := Encode(in)
		if err != nil {
			t.Fatalf("Decode accepted %#08x as %+v but Encode rejects it: %v", word, in, err)
		}
		in2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %#08x -> %#08x no longer decodes: %v", word, re, err)
		}
		if in != in2 {
			t.Fatalf("round trip drifts: %#08x -> %+v -> %#08x -> %+v", word, in, re, in2)
		}
	})
}
