package isa

import "testing"

func TestRegNames(t *testing.T) {
	cases := []struct {
		reg  int
		name string
	}{
		{RegZero, "$zero"}, {RegAT, "$at"}, {RegV0, "$v0"}, {RegA0, "$a0"},
		{RegT0, "$t0"}, {RegS0, "$s0"}, {RegGP, "$gp"}, {RegSP, "$sp"},
		{RegFP, "$fp"}, {RegRA, "$ra"},
	}
	for _, c := range cases {
		if got := RegName(c.reg); got != c.name {
			t.Errorf("RegName(%d) = %q, want %q", c.reg, got, c.name)
		}
		r, ok := RegByName(c.name)
		if !ok || r != c.reg {
			t.Errorf("RegByName(%q) = %d,%v want %d", c.name, r, ok, c.reg)
		}
	}
}

func TestRegByNameNumeric(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		r, ok := RegByName("$" + itoa(i))
		if !ok || r != i {
			t.Errorf("RegByName($%d) = %d,%v", i, r, ok)
		}
	}
	if _, ok := RegByName("$32"); ok {
		t.Error("RegByName($32) should fail")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) should fail")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestIsCalleeSaved(t *testing.T) {
	saved := []int{RegS0, RegS1, RegS7, RegFP, RegGP, RegSP}
	for _, r := range saved {
		if !IsCalleeSaved(r) {
			t.Errorf("IsCalleeSaved(%s) = false", RegName(r))
		}
	}
	notSaved := []int{RegZero, RegAT, RegV0, RegA0, RegT0, RegT9, RegRA}
	for _, r := range notSaved {
		if IsCalleeSaved(r) {
			t.Errorf("IsCalleeSaved(%s) = true", RegName(r))
		}
	}
}

func TestOpByName(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("OpByName(frobnicate) should fail")
	}
}

func TestOpKindCoverage(t *testing.T) {
	// Every op maps to a kind consistent with its String rendering not
	// panicking and its encodability.
	for op := Op(1); op < numOps; op++ {
		in := Inst{Op: op, Rd: 2, Rs: 3, Rt: 4, Imm: 4}
		_ = in.String()
		if _, err := Encode(in); err != nil {
			t.Errorf("Encode(%v) failed: %v", op, err)
		}
	}
}

func TestNop(t *testing.T) {
	if !IsNop(Nop()) {
		t.Error("IsNop(Nop()) = false")
	}
	if IsNop(Inst{Op: OpSLL, Rd: 1, Rt: 1, Imm: 2}) {
		t.Error("real shift classified as nop")
	}
	w, err := Encode(Nop())
	if err != nil || w != 0 {
		t.Errorf("Encode(nop) = %#x, %v; want 0", w, err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADDU, Rd: RegV0, Rs: RegA0, Rt: RegA1}, "addu $v0, $a0, $a1"},
		{Inst{Op: OpADDIU, Rt: RegSP, Rs: RegSP, Imm: -32}, "addiu $sp, $sp, -32"},
		{Inst{Op: OpLW, Rt: RegRA, Rs: RegSP, Imm: 28}, "lw $ra, 28($sp)"},
		{Inst{Op: OpSW, Rt: RegS0, Rs: RegSP, Imm: 24}, "sw $s0, 24($sp)"},
		{Inst{Op: OpJR, Rs: RegRA}, "jr $ra"},
		{Inst{Op: OpSLL, Rd: RegT0, Rt: RegT1, Imm: 2}, "sll $t0, $t1, 2"},
		{Inst{Op: OpBEQ, Rs: RegT0, Rt: RegZero, Imm: -3}, "beq $t0, $zero, -3"},
		{Inst{Op: OpLUI, Rt: RegAT, Imm: 0x1000}, "lui $at, 4096"},
		{Inst{Op: OpSYSCALL}, "syscall"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
