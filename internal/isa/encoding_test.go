package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEncodeKnownWords pins the encoding against hand-assembled real
// MIPS-I machine words.
func TestEncodeKnownWords(t *testing.T) {
	cases := []struct {
		in   Inst
		want uint32
	}{
		// addu $v0, $a0, $a1 -> 0x00851021
		{Inst{Op: OpADDU, Rd: RegV0, Rs: RegA0, Rt: RegA1}, 0x00851021},
		// addiu $sp, $sp, -32 -> 0x27bdffe0
		{Inst{Op: OpADDIU, Rt: RegSP, Rs: RegSP, Imm: -32}, 0x27bdffe0},
		// lw $ra, 28($sp) -> 0x8fbf001c
		{Inst{Op: OpLW, Rt: RegRA, Rs: RegSP, Imm: 28}, 0x8fbf001c},
		// sw $a0, 0($t0) -> 0xad040000
		{Inst{Op: OpSW, Rt: RegA0, Rs: RegT0, Imm: 0}, 0xad040000},
		// jr $ra -> 0x03e00008
		{Inst{Op: OpJR, Rs: RegRA}, 0x03e00008},
		// sll $t0, $t1, 2 -> 0x00094080
		{Inst{Op: OpSLL, Rd: RegT0, Rt: RegT1, Imm: 2}, 0x00094080},
		// lui $gp, 0x1000 -> 0x3c1c1000
		{Inst{Op: OpLUI, Rt: RegGP, Imm: 0x1000}, 0x3c1c1000},
		// syscall -> 0x0000000c
		{Inst{Op: OpSYSCALL}, 0x0000000c},
		// beq $zero, $zero, +1 -> 0x10000001
		{Inst{Op: OpBEQ, Imm: 1}, 0x10000001},
		// bgez $a0, +2 -> 0x04810002
		{Inst{Op: OpBGEZ, Rs: RegA0, Imm: 2}, 0x04810002},
		// jal 0x00400000>>2 -> 0x0c100000
		{Inst{Op: OpJAL, Imm: 0x00400000 >> 2}, 0x0c100000},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in, got, c.want)
		}
		back, err := Decode(c.want)
		if err != nil {
			t.Errorf("Decode(%#08x): %v", c.want, err)
			continue
		}
		if back != c.in {
			t.Errorf("Decode(%#08x) = %+v, want %+v", c.want, back, c.in)
		}
	}
}

// randomInst produces a random, encodable instruction.
func randomInst(r *rand.Rand) Inst {
	for {
		op := Op(1 + r.Intn(int(numOps)-1))
		in := Inst{Op: op}
		reg := func() uint8 { return uint8(r.Intn(NumRegs)) }
		switch OpKind(op) {
		case KindALU3:
			in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
		case KindShift:
			in.Rd, in.Rt, in.Imm = reg(), reg(), int32(r.Intn(32))
		case KindMulDiv:
			in.Rs, in.Rt = reg(), reg()
		case KindMoveHL:
			if op == OpMFHI || op == OpMFLO {
				in.Rd = reg()
			} else {
				in.Rs = reg()
			}
		case KindALUImm:
			in.Rt, in.Rs = reg(), reg()
			if op == OpANDI || op == OpORI || op == OpXORI {
				in.Imm = int32(r.Intn(0x10000))
			} else {
				in.Imm = int32(r.Intn(0x10000) - 0x8000)
			}
		case KindLUI:
			in.Rt, in.Imm = reg(), int32(r.Intn(0x10000))
		case KindLoad, KindStore:
			in.Rt, in.Rs, in.Imm = reg(), reg(), int32(r.Intn(0x10000)-0x8000)
		case KindBranch:
			in.Rs, in.Imm = reg(), int32(r.Intn(0x10000)-0x8000)
			if op == OpBEQ || op == OpBNE {
				in.Rt = reg()
			}
		case KindJump:
			in.Imm = int32(r.Intn(1 << 26))
		case KindJumpReg:
			in.Rs = reg()
			if op == OpJALR {
				in.Rd = reg()
			}
		case KindSys:
			// no operands
		}
		return in
	}
}

// TestEncodeDecodeRoundTrip is the property test: Decode(Encode(x)) == x
// for every well-formed instruction.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		in := randomInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) of %+v: %v", w, in, err)
		}
		return back == in
	}
	cfg := &quick.Config{MaxCount: 5000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpADDIU, Rt: 1, Rs: 1, Imm: 40000},
		{Op: OpADDIU, Rt: 1, Rs: 1, Imm: -40000},
		{Op: OpANDI, Rt: 1, Rs: 1, Imm: -1},
		{Op: OpLW, Rt: 1, Rs: 1, Imm: 1 << 20},
		{Op: OpSLL, Rd: 1, Rt: 1, Imm: 32},
		{Op: OpLUI, Rt: 1, Imm: -5},
		{Op: OpBEQ, Imm: 1 << 17},
		{Op: OpJ, Imm: -1},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) should fail", in)
		}
	}
}

func TestDecodeUnknown(t *testing.T) {
	// funct 0x3f is unassigned in our subset.
	if _, err := Decode(0x0000003f); err == nil {
		t.Error("Decode of unknown funct should fail")
	}
	// opcode 0x3f is unassigned.
	if _, err := Decode(0xfc000000); err == nil {
		t.Error("Decode of unknown opcode should fail")
	}
}
