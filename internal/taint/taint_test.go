package taint

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
)

func testImage() *program.Image {
	im := &program.Image{
		Text:           make([]isa.Inst, 4),
		Data:           make([]byte, 64),
		InitializedLen: 32,
		Symbols:        map[string]uint32{},
	}
	im.Finalize()
	return im
}

func TestInitialState(t *testing.T) {
	a := New(testImage())
	if a.RegTag(isa.RegSP) != TagInternal || a.RegTag(isa.RegGP) != TagInternal {
		t.Error("sp/gp should start internal")
	}
	if a.RegTag(isa.RegS0) != TagUninit {
		t.Error("callee-saved regs should start uninit")
	}
	if a.MemTag(program.DataBase) != TagGlobalInit {
		t.Error("data segment should be global-init")
	}
	if a.MemTag(program.DataBase+60) != TagGlobalInit {
		t.Error("zero-initialized data should be global-init")
	}
	if a.MemTag(0x20000000) != TagUninit {
		t.Error("heap should start uninit")
	}
}

func TestImmediatesAreInternal(t *testing.T) {
	a := New(testImage())
	a.Counting = true
	// li $t0, 5  ->  addiu $t0, $zero, 5
	a.Observe(&cpu.Event{
		Inst: isa.Inst{Op: isa.OpADDIU, Rt: isa.RegT0, Rs: isa.RegZero, Imm: 5},
		Src1: isa.RegZero, Dst: isa.RegT0, DstVal: 5, Src2: -1, Aux: -1,
	}, false)
	if a.RegTag(isa.RegT0) != TagInternal {
		t.Errorf("t0 tag = %v, want internal", a.RegTag(isa.RegT0))
	}
	r := a.Result()
	if r.Counts[TagInternal] != 1 {
		t.Errorf("internal count = %d", r.Counts[TagInternal])
	}
}

func TestExternalInputPropagates(t *testing.T) {
	a := New(testImage())
	a.Counting = true
	// read char -> v0 external
	a.Observe(&cpu.Event{
		Inst:   isa.Inst{Op: isa.OpSYSCALL},
		SysNum: cpu.SysReadChar,
		Src1:   isa.RegV0, Src2: isa.RegA0,
		Dst: isa.RegV0, DstVal: 'x', Aux: -1,
	}, false)
	if a.RegTag(isa.RegV0) != TagExternal {
		t.Fatal("read result not external")
	}
	// addu $t1, $v0, $t2(uninit) -> external supersedes
	a.Observe(&cpu.Event{
		Inst: isa.Inst{Op: isa.OpADDU, Rd: isa.RegT1, Rs: isa.RegV0, Rt: isa.RegT2},
		Src1: isa.RegV0, Src2: isa.RegT2, Dst: isa.RegT1, Aux: -1,
	}, false)
	if a.RegTag(isa.RegT1) != TagExternal {
		t.Error("external should supersede uninit")
	}
	// store it to memory, then load it back elsewhere
	a.Observe(&cpu.Event{
		Inst: isa.Inst{Op: isa.OpSW, Rt: isa.RegT1, Rs: isa.RegSP},
		Src1: isa.RegSP, Src2: isa.RegT1, Dst: -1, Aux: -1,
		IsStore: true, Addr: 0x7ffe0000,
	}, false)
	if a.MemTag(0x7ffe0000) != TagExternal {
		t.Error("store should tag memory with the data tag")
	}
	a.Observe(&cpu.Event{
		Inst: isa.Inst{Op: isa.OpLW, Rt: isa.RegT3, Rs: isa.RegSP},
		Src1: isa.RegSP, Src2: -1, Dst: isa.RegT3, Aux: -1,
		IsLoad: true, Addr: 0x7ffe0000,
	}, false)
	if a.RegTag(isa.RegT3) != TagExternal {
		t.Error("load should deliver the memory tag")
	}
}

func TestLoadIgnoresAddressTag(t *testing.T) {
	// An external index into an internal table delivers the table's
	// tag (the paper's value-flow rule; see the compress discussion).
	a := New(testImage())
	a.Counting = true
	a.Observe(&cpu.Event{
		Inst:   isa.Inst{Op: isa.OpSYSCALL},
		SysNum: cpu.SysReadChar,
		Src1:   isa.RegV0, Src2: isa.RegA0,
		Dst: isa.RegV0, Aux: -1,
	}, false)
	a.Observe(&cpu.Event{
		Inst: isa.Inst{Op: isa.OpLW, Rt: isa.RegT0, Rs: isa.RegV0},
		Src1: isa.RegV0, Src2: -1, Dst: isa.RegT0, Aux: -1,
		IsLoad: true, Addr: program.DataBase + 8,
	}, false)
	if a.RegTag(isa.RegT0) != TagGlobalInit {
		t.Errorf("t0 tag = %v, want global-init", a.RegTag(isa.RegT0))
	}
}

func TestUninitStoreCategory(t *testing.T) {
	// Prologue: sw of a never-written callee-saved register is the
	// paper's "uninit" category.
	a := New(testImage())
	a.Counting = true
	a.Observe(&cpu.Event{
		Inst: isa.Inst{Op: isa.OpSW, Rt: isa.RegS0, Rs: isa.RegSP, Imm: 16},
		Src1: isa.RegSP, Src2: isa.RegS0, Dst: -1, Aux: -1,
		IsStore: true, Addr: 0x7ffeff00,
	}, false)
	r := a.Result()
	if r.Counts[TagUninit] != 1 {
		t.Errorf("uninit count = %d, want 1", r.Counts[TagUninit])
	}
}

func TestReadBlockTagsRange(t *testing.T) {
	a := New(testImage())
	a.Observe(&cpu.Event{
		Inst:   isa.Inst{Op: isa.OpSYSCALL},
		SysNum: cpu.SysReadBlock,
		Src1:   isa.RegV0, Src2: isa.RegA0, Src2Val: 0x20000000,
		Dst: isa.RegV0, DstVal: 16, Aux: -1,
	}, false)
	for off := uint32(0); off < 16; off += 4 {
		if a.MemTag(0x20000000+off) != TagExternal {
			t.Errorf("word +%d not tagged external", off)
		}
	}
	if a.MemTag(0x20000010) != TagUninit {
		t.Error("range overshoot")
	}
}

func TestCountingGate(t *testing.T) {
	a := New(testImage())
	// Not counting: tags move, stats don't.
	a.Observe(&cpu.Event{
		Inst: isa.Inst{Op: isa.OpADDIU, Rt: isa.RegT0, Rs: isa.RegZero, Imm: 1},
		Src1: isa.RegZero, Src2: -1, Dst: isa.RegT0, Aux: -1,
	}, false)
	r := a.Result()
	var total uint64
	for _, c := range r.Counts {
		total += c
	}
	if total != 0 {
		t.Error("counted while gate closed")
	}
	if a.RegTag(isa.RegT0) != TagInternal {
		t.Error("tags must propagate while gate closed")
	}
}

func TestResultPercentages(t *testing.T) {
	a := New(testImage())
	a.Counting = true
	mk := func(rep bool) {
		a.Observe(&cpu.Event{
			Inst: isa.Inst{Op: isa.OpADDIU, Rt: isa.RegT0, Rs: isa.RegZero, Imm: 1},
			Src1: isa.RegZero, Src2: -1, Dst: isa.RegT0, Aux: -1,
		}, rep)
	}
	mk(false)
	mk(true)
	mk(true)
	mk(true)
	r := a.Result()
	if r.OverallPct[TagInternal] != 100 {
		t.Errorf("overall internal = %v", r.OverallPct[TagInternal])
	}
	if r.PropensityPct[TagInternal] != 75 {
		t.Errorf("propensity = %v, want 75", r.PropensityPct[TagInternal])
	}
	if r.RepeatedPct[TagInternal] != 100 {
		t.Errorf("repeated share = %v", r.RepeatedPct[TagInternal])
	}
}

func TestTagString(t *testing.T) {
	want := map[Tag]string{
		TagUninit: "uninit", TagInternal: "internals",
		TagGlobalInit: "global init data", TagExternal: "external input",
	}
	for tag, name := range want {
		if tag.String() != name {
			t.Errorf("%d.String() = %q, want %q", tag, tag.String(), name)
		}
	}
}
