package taint

import "repro/internal/checkpoint"

// SnapshotTo writes the analysis state: register tags, the category
// counters, and the shadow tag space. Counting is run-phase state
// owned by the core pipeline (SetCounting is reapplied on resume), so
// it is not serialized here.
func (a *Analysis) SnapshotTo(w *checkpoint.Writer) {
	for _, t := range a.regs {
		w.U8(byte(t))
	}
	for _, v := range a.overall {
		w.U64(v)
	}
	for _, v := range a.repeated {
		w.U64(v)
	}
	a.shadow.SnapshotTo(w)
}

// RestoreFrom loads a snapshot, rejecting out-of-range tags.
func (a *Analysis) RestoreFrom(r *checkpoint.Reader) error {
	for i := range a.regs {
		a.regs[i] = Tag(r.U8())
		if r.Err() == nil && a.regs[i] >= NumTags {
			return checkpoint.ErrMalformed
		}
	}
	for i := range a.overall {
		a.overall[i] = r.U64()
	}
	for i := range a.repeated {
		a.repeated[i] = r.U64()
	}
	return a.shadow.RestoreFrom(r)
}
