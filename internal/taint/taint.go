// Package taint implements the paper's *global analysis* (Section
// 5.1): every value is tagged with the origin of the dataflow slice it
// belongs to, and each dynamic instruction is categorized by the tags
// of its inputs under the supersede rule
//
//	external input > global init data > program internal > uninit.
//
// Tags flow through registers and memory words during execution. The
// analysis reports, per category, the share of all dynamic
// instructions, the share of repeated instructions, and the propensity
// of the category to repeat (Table 3).
package taint

import (
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// Tag is a slice-origin category. Higher values supersede lower ones.
type Tag byte

// Categories, ordered by supersede priority (ascending).
const (
	TagUninit Tag = iota
	TagInternal
	TagGlobalInit
	TagExternal
	NumTags
)

// String returns the paper's row label for the tag.
func (t Tag) String() string {
	switch t {
	case TagUninit:
		return "uninit"
	case TagInternal:
		return "internals"
	case TagGlobalInit:
		return "global init data"
	case TagExternal:
		return "external input"
	default:
		return "?"
	}
}

// Analysis is the global dataflow-tag analysis.
type Analysis struct {
	// Counting gates the statistics: tags always propagate (dataflow
	// state must be complete from program start), but instructions
	// are only counted while Counting is true — this implements the
	// paper's skip-then-measure window.
	Counting bool

	regs   [cpu.NumRegs]Tag
	shadow *mem.Shadow

	overall  [NumTags]uint64
	repeated [NumTags]uint64
}

// New creates the analysis for one program run. The entire static data
// segment (including zero-initialized storage, which C initializes) is
// tagged as global initialized data; $sp, $gp and $zero carry
// program-internal values; every other register starts uninitialized.
func New(im *program.Image) *Analysis {
	a := &Analysis{shadow: mem.NewShadow()}
	a.shadow.SetRange(program.DataBase, len(im.Data), byte(TagGlobalInit))
	a.regs[isa.RegZero] = TagInternal
	a.regs[isa.RegSP] = TagInternal
	a.regs[isa.RegGP] = TagInternal
	return a
}

func maxTag(a, b Tag) Tag {
	if a > b {
		return a
	}
	return b
}

// hasImmediateInput reports whether the operation consumes an
// immediate field as a data input (so the program-internal slice
// participates in classification).
func hasImmediateInput(op isa.Op) bool {
	switch isa.OpKind(op) {
	case isa.KindALUImm, isa.KindLUI, isa.KindShift:
		return true
	case isa.KindJump:
		return true // j/jal targets are program text
	default:
		return false
	}
}

// Observe categorizes one retired instruction (repeated says whether
// the repetition tracker classified it as a repeat) and propagates
// tags.
func (a *Analysis) Observe(ev *cpu.Event, repeated bool) {
	var tag Tag

	switch {
	case ev.IsStore:
		// A store's outcome is the stored value: classify by the data
		// register's slice (this is how prologue stores of
		// uninitialized callee-saved registers surface as "uninit",
		// the paper's fourth category). The memory word inherits the
		// value's tag. Sub-word stores tag the whole word — a
		// documented word-granularity approximation.
		tag = a.regs[ev.Src2]
		a.shadow.Set(ev.Addr, byte(tag))

	case ev.IsLoad:
		// A load delivers the *value* stored in memory: its slice is
		// the value's origin, not the address computation's (the
		// address-forming instructions carry their own tags). This is
		// what lets the paper's compress — which hashes external
		// bytes into internally-built tables — show only ~2% external
		// slices.
		tag = Tag(a.shadow.Get(ev.Addr))
		a.setReg(ev.Dst, tag)

	case ev.Inst.Op == isa.OpSYSCALL:
		tag = maxTag(a.regs[ev.Src1], a.regs[ev.Src2])
		switch ev.SysNum {
		case cpu.SysReadChar:
			a.setReg(ev.Dst, TagExternal)
		case cpu.SysReadBlock:
			// Bytes delivered into [a0, a0+count) are external input.
			a.shadow.SetRange(ev.Src2Val, int(int32(ev.DstVal)), byte(TagExternal))
			a.setReg(ev.Dst, TagExternal)
		case cpu.SysSbrk:
			a.setReg(ev.Dst, TagInternal)
		}

	default:
		tag = TagUninit
		if ev.Src1 >= 0 {
			tag = maxTag(tag, a.regs[ev.Src1])
		}
		if ev.Src2 >= 0 {
			tag = maxTag(tag, a.regs[ev.Src2])
		}
		if hasImmediateInput(ev.Inst.Op) || (ev.Src1 < 0 && ev.Src2 < 0) {
			tag = maxTag(tag, TagInternal)
		}
		if ev.Dst >= 0 && ev.Inst.Op != isa.OpSYSCALL {
			a.setReg(ev.Dst, tag)
		}
		if ev.Aux >= 0 {
			a.setReg(ev.Aux, tag)
		}
	}

	if a.Counting {
		a.overall[tag]++
		if repeated {
			a.repeated[tag]++
		}
	}
}

func (a *Analysis) setReg(r int16, tag Tag) {
	if r > 0 { // $zero stays internal
		a.regs[r] = tag
	}
}

// RegTag returns the current tag of register r (testing).
func (a *Analysis) RegTag(r int) Tag { return a.regs[r] }

// MemTag returns the current tag of the word at addr (testing).
func (a *Analysis) MemTag(addr uint32) Tag { return Tag(a.shadow.Get(addr)) }

// Result is one Table 3 row set.
type Result struct {
	// OverallPct is each category's share of all dynamic instructions.
	OverallPct [NumTags]float64
	// RepeatedPct is each category's share of repeated instructions.
	RepeatedPct [NumTags]float64
	// PropensityPct is the fraction of each category's instructions
	// that repeated.
	PropensityPct [NumTags]float64
	// Counts are the raw per-category dynamic instruction counts.
	Counts [NumTags]uint64
}

// Result computes the Table 3 percentages.
func (a *Analysis) Result() Result {
	var r Result
	var total, totalRep uint64
	for c := Tag(0); c < NumTags; c++ {
		total += a.overall[c]
		totalRep += a.repeated[c]
	}
	for c := Tag(0); c < NumTags; c++ {
		r.Counts[c] = a.overall[c]
		r.OverallPct[c] = pct(a.overall[c], total)
		r.RepeatedPct[c] = pct(a.repeated[c], totalRep)
		r.PropensityPct[c] = pct(a.repeated[c], a.overall[c])
	}
	return r
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Name identifies the analysis in observability output.
func (a *Analysis) Name() string { return "taint" }
