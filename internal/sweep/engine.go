package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// RunFunc computes one cell. repro.Runner.RunWorkload satisfies it
// directly (repro.Config/Report alias the core types), which is how
// the CLI threads the result cache, checkpointing, admission gate,
// and breakers through every cell.
type RunFunc func(ctx context.Context, workload string, cfg core.Config) (*core.Report, error)

// Progress is one cell-completion notification. The callback may be
// invoked from several worker goroutines concurrently, so
// implementations must be concurrency-safe.
type Progress struct {
	Done  int // cells finished so far (including this one)
	Total int
	Cell  Cell
	Err   error // this cell's error (nil on success)
}

// Engine executes an expanded sweep grid through a RunFunc with
// bounded parallelism and merges the cell reports deterministically:
// results land by cell index, so completion order — and therefore the
// Parallel setting — can never change a byte of the artifact.
type Engine struct {
	// Run computes one cell (required).
	Run RunFunc
	// Parallel bounds concurrently running cells (0 = GOMAXPROCS).
	Parallel int
	// Shape, when set, adjusts each cell's Config before it runs —
	// execution-shaping only (Timeout, WatchdogInterval, Progress);
	// measurement fields are owned by the spec, and mutating them here
	// would desynchronize the artifact's axis labels from what ran.
	Shape func(*core.Config)
	// Metrics receives the sweep_* counters (nil = obs.Default).
	Metrics *obs.Registry
	// Progress, when set, receives one notification per finished cell.
	Progress func(Progress)
}

// Execute expands the spec and runs every cell. It is fail-soft: cells
// that error (or return truncated reports) are recorded in the result
// with their error text and the rest of the grid still runs; the
// returned error joins every cell failure (nil only when the whole
// grid succeeded). Only a spec that fails validation returns a nil
// Result.
func (e *Engine) Execute(ctx context.Context, sp *Spec) (*Result, error) {
	cells, err := Expand(sp)
	if err != nil {
		return nil, err
	}
	reg := e.Metrics
	if reg == nil {
		reg = obs.Default
	}
	reg.Counter("sweep_sweeps_total").Inc()
	reg.Counter("sweep_cells_total").Add(uint64(len(cells)))

	parallel := e.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}

	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	var done atomic.Int64
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i := range cells {
		sem <- struct{}{} // acquire before spawning: at most `parallel` goroutines exist
		wg.Add(1)
		go func(c Cell) {
			defer func() { <-sem; wg.Done() }()
			rep, err := e.runCell(ctx, c)
			results[c.Index] = newCellResult(c, rep, err)
			errs[c.Index] = err
			if err != nil {
				reg.Counter("sweep_cells_failed").Inc()
			} else {
				reg.Counter("sweep_cells_ok").Inc()
			}
			if e.Progress != nil {
				e.Progress(Progress{
					Done: int(done.Add(1)), Total: len(cells), Cell: c, Err: err,
				})
			}
		}(cells[i])
	}
	wg.Wait()

	res := newResult(sp, results)
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("%s: %w", cells[i].ID(), err))
		}
	}
	if len(failures) > 0 {
		return res, fmt.Errorf("sweep: %d of %d cells failed: %w",
			len(failures), len(cells), errors.Join(failures...))
	}
	return res, nil
}

// runCell executes one cell under its own trace span. A report flagged
// Truncated is demoted to a failure even when the runner returned it
// without error: its statistics cover an unpredictable prefix of the
// window, so folding it into the curves would poison the comparison.
func (e *Engine) runCell(ctx context.Context, c Cell) (*core.Report, error) {
	cfg := c.Config
	if e.Shape != nil {
		e.Shape(&cfg)
	}
	span, ctx := obs.StartSpanCtx(ctx, "sweep.cell")
	span.SetAttr("cell", c.ID())
	span.SetAttr("workload", c.Workload)
	span.SetAttr("entries", c.Entries)
	span.SetAttr("assoc", c.Assoc)
	span.SetAttr("policy", c.Policy.String())
	defer span.End()
	rep, err := e.Run(ctx, c.Workload, cfg)
	if err == nil && rep == nil {
		err = fmt.Errorf("sweep: runner returned no report")
	}
	if err == nil && rep.Truncated {
		err = fmt.Errorf("sweep: truncated report (%s)", rep.TruncatedReason)
	}
	if err != nil {
		span.SetAttr("error", err.Error())
		return nil, err
	}
	return rep, nil
}
