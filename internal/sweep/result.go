package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/core"
)

// CellResult is one grid point's measured outcome: the axis values
// that name it, the measurement key its run was fingerprinted under,
// and the Table 10 hit rates. A failed cell carries its error text and
// zeroed statistics.
type CellResult struct {
	Workload string
	Entries  int
	Assoc    int
	Policy   string
	Skip     uint64
	Measure  uint64

	// ConfigKey is core.Config.MeasurementKey() for the cell — the
	// canonical fragment its result-cache fingerprint hashes, so an
	// artifact row can be traced back to the exact config that ran.
	ConfigKey string

	// Measured/DynTotal are the run's instruction accounting.
	Measured uint64
	DynTotal uint64
	// HitPctAll/HitPctRepeated are Table 10's two percentages at this
	// design point: reuse-buffer hits as % of all measured
	// instructions, and as % of census-repeated instructions.
	HitPctAll      float64
	HitPctRepeated float64

	Error string `json:",omitempty"`

	// Report is the cell's full report, for differential tests and
	// partial-result rendering; it never enters the artifact.
	Report *core.Report `json:"-"`
}

// OK reports whether the cell ran to completion.
func (c *CellResult) OK() bool { return c.Error == "" }

// AggregateRow is one config point's cross-workload mean: the same
// axis values with the per-workload hit rates averaged (unweighted —
// every workload measures the same window) over the cells that
// succeeded.
type AggregateRow struct {
	Entries int
	Assoc   int
	Policy  string
	Skip    uint64
	Measure uint64

	// Workloads is how many cells contributed (fewer than the workload
	// axis when some failed; 0 means every workload at this point
	// failed and the means are zero).
	Workloads          int
	MeanHitPctAll      float64
	MeanHitPctRepeated float64
}

// Result is the merged comparative artifact of one sweep. Cells are in
// expansion order and Aggregate has one row per config point in the
// same order, so the whole document is a pure function of (spec,
// simulator version) — byte-identical across repeats and parallelism.
type Result struct {
	Workloads []string
	Cells     []CellResult
	Aggregate []AggregateRow
}

// newCellResult folds one cell's run outcome into its result row.
func newCellResult(c Cell, rep *core.Report, err error) CellResult {
	out := CellResult{
		Workload:  c.Workload,
		Entries:   c.Entries,
		Assoc:     c.Assoc,
		Policy:    c.Policy.String(),
		Skip:      c.Window.Skip,
		Measure:   c.Window.Measure,
		ConfigKey: c.Config.MeasurementKey(),
	}
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.Measured = rep.MeasuredInstructions
	out.DynTotal = rep.DynTotal
	out.HitPctAll = rep.ReusePctAll
	out.HitPctRepeated = rep.ReusePctRepeated
	out.Report = rep
	return out
}

// newResult assembles the artifact: cells verbatim (already in
// expansion order), then one aggregate row per contiguous config-point
// group. Workload is the innermost expansion axis, so each group is
// exactly len(workloads) consecutive cells.
func newResult(sp *Spec, cells []CellResult) *Result {
	r := &Result{Workloads: append([]string(nil), sp.Workloads...), Cells: cells}
	per := len(sp.Workloads)
	for base := 0; base+per <= len(cells); base += per {
		group := cells[base : base+per]
		row := AggregateRow{
			Entries: group[0].Entries,
			Assoc:   group[0].Assoc,
			Policy:  group[0].Policy,
			Skip:    group[0].Skip,
			Measure: group[0].Measure,
		}
		for i := range group {
			if !group[i].OK() {
				continue
			}
			row.Workloads++
			row.MeanHitPctAll += group[i].HitPctAll
			row.MeanHitPctRepeated += group[i].HitPctRepeated
		}
		if row.Workloads > 0 {
			row.MeanHitPctAll /= float64(row.Workloads)
			row.MeanHitPctRepeated /= float64(row.Workloads)
		}
		r.Aggregate = append(r.Aggregate, row)
	}
	return r
}

// csvHeader is the artifact's fixed column set. Cell rows carry scope
// "cell"; aggregate rows carry scope "mean" with an empty workload and
// instruction columns.
const csvHeader = "scope,workload,entries,assoc,policy,skip,measure,measured,dyn_total,hit_pct_all,hit_pct_repeated,error\n"

// CSV renders the canonical comparative table: the header, every cell
// row in expansion order, then every aggregate row. Floats are fixed
// to four decimals so the bytes are stable; error text is quoted when
// it contains CSV metacharacters.
func (r *Result) CSV() []byte {
	var b bytes.Buffer
	b.WriteString(csvHeader)
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(&b, "cell,%s,%d,%d,%s,%d,%d,%d,%d,%s,%s,%s\n",
			c.Workload, c.Entries, c.Assoc, c.Policy, c.Skip, c.Measure,
			c.Measured, c.DynTotal, pct(c.HitPctAll), pct(c.HitPctRepeated),
			csvQuote(c.Error))
	}
	for i := range r.Aggregate {
		a := &r.Aggregate[i]
		fmt.Fprintf(&b, "mean,,%d,%d,%s,%d,%d,,,%s,%s,\n",
			a.Entries, a.Assoc, a.Policy, a.Skip, a.Measure,
			pct(a.MeanHitPctAll), pct(a.MeanHitPctRepeated))
	}
	return b.Bytes()
}

// JSON renders the artifact as indented canonical JSON with a trailing
// newline (the same conventions as the canonical report form).
func (r *Result) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// pct formats a percentage with fixed precision for byte stability.
func pct(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// csvQuote quotes a field if it contains a comma, quote, or newline.
func csvQuote(s string) string {
	if !bytes.ContainsAny([]byte(s), ",\"\n\r") {
		return s
	}
	return `"` + string(bytes.ReplaceAll([]byte(s), []byte(`"`), []byte(`""`))) + `"`
}
