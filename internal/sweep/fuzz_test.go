package sweep

import (
	"encoding/json"
	"testing"
)

// FuzzSweepSpec holds the spec parser's contracts under arbitrary
// input: never panic; accepted specs expand to a non-empty grid within
// the cell cap; and acceptance round-trips — a normalized spec
// re-marshals, re-parses, and re-expands to the identical cell list.
// Rejections (duplicate axis values, empty axes, unknown fields,
// malformed JSON) must come back as errors, never as silently
// defaulted grids.
func FuzzSweepSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"skip": 100, "measure": 2000}`))
	f.Add([]byte(`{"entries":[1024,8192,65536],"assoc":[1,4,16],"policies":["lru","fifo","random"]}`))
	f.Add([]byte(`{"windows":[{"skip":1,"measure":2},{"skip":3,"measure":4}],"workloads":["lzw"]}`))
	f.Add([]byte(`{"entries":[]}`))
	f.Add([]byte(`{"entries":[64,64]}`))
	f.Add([]byte(`{"policies":["mru"]}`))
	f.Add([]byte(`{"workloads":["nope"]}`))
	f.Add([]byte(`{"entries":[-1],"assoc":[0]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			if s != nil {
				t.Fatalf("error with non-nil spec: %v", err)
			}
			return
		}
		cells, err := Expand(s)
		if err != nil {
			t.Fatalf("accepted spec failed to expand: %v", err)
		}
		if len(cells) == 0 || len(cells) > MaxCells {
			t.Fatalf("accepted spec expanded to %d cells", len(cells))
		}
		// Round trip: normalize → marshal → parse → expand must
		// reproduce the grid exactly.
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("normalized spec does not marshal: %v", err)
		}
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("normalized spec rejected on re-parse: %v\n%s", err, out)
		}
		cells2, err := Expand(s2)
		if err != nil {
			t.Fatalf("round-tripped spec failed to expand: %v", err)
		}
		if len(cells) != len(cells2) {
			t.Fatalf("round trip changed grid size: %d vs %d", len(cells), len(cells2))
		}
		for i := range cells {
			if cells[i].ID() != cells2[i].ID() {
				t.Fatalf("round trip changed cell %d: %q vs %q", i, cells[i].ID(), cells2[i].ID())
			}
			if cells[i].Config.MeasurementKey() != cells2[i].Config.MeasurementKey() {
				t.Fatalf("round trip changed cell %d measurement key", i)
			}
		}
	})
}
