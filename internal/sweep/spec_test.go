package sweep

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/reuse"
	"repro/internal/workloads"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"skip": 100, "measure": 2000}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	// Every axis defaulted: one config point over all workloads.
	if want := len(workloads.Names()); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	c := cells[0]
	if c.Entries != reuse.DefaultEntries || c.Assoc != reuse.DefaultAssoc || c.Policy != reuse.LRU {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.Config.SkipInstructions != 100 || c.Config.MeasureInstructions != 2000 {
		t.Errorf("window not threaded into config: %+v", c.Config)
	}
}

func TestExpandOrderAndConfigs(t *testing.T) {
	s := &Spec{
		Entries:   []int{64, 256},
		Assoc:     []int{1, 4},
		Policies:  []string{"lru", "random"},
		Workloads: []string{"lzw", "scrip"},
		Skip:      10,
		Measure:   100,
	}
	cells, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2*2 {
		t.Fatalf("got %d cells, want 16", len(cells))
	}
	// Workload is innermost, policy next: the first four cells share
	// entries=64 assoc=1.
	wantIDs := []string{
		"s10-m100-e64-a1-lru/lzw",
		"s10-m100-e64-a1-lru/scrip",
		"s10-m100-e64-a1-random/lzw",
		"s10-m100-e64-a1-random/scrip",
	}
	for i, want := range wantIDs {
		if got := cells[i].ID(); got != want {
			t.Errorf("cells[%d].ID() = %q, want %q", i, got, want)
		}
		if cells[i].Index != i {
			t.Errorf("cells[%d].Index = %d", i, cells[i].Index)
		}
	}
	// Each cell's Config carries exactly its axis values.
	for _, c := range cells {
		if c.Config.ReuseEntries != c.Entries || c.Config.ReuseAssoc != c.Assoc ||
			c.Config.ReusePolicy != c.Policy {
			t.Errorf("cell %s: config mismatch %+v", c.ID(), c.Config)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s, err := ParseSpec([]byte(`{"entries":[64,128],"assoc":[2],"policies":["FIFO","lru"],"skip":5,"measure":50,"workloads":["lzw"]}`))
	if err != nil {
		t.Fatal(err)
	}
	first, err := Expand(s)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("re-parse of normalized spec failed: %v\n%s", err, data)
	}
	second, err := Expand(s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("round trip changed cell count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].ID() != second[i].ID() {
			t.Errorf("cell %d: %q vs %q", i, first[i].ID(), second[i].ID())
		}
	}
	// Policy names canonicalized on the way through.
	if s.Policies[0] != "fifo" {
		t.Errorf("policy not canonicalized: %v", s.Policies)
	}
}

func TestSpecRejections(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"entrees": [1]}`, "unknown field"},
		{"empty entries", `{"entries": []}`, "empty entries axis"},
		{"empty assoc", `{"assoc": []}`, "empty assoc axis"},
		{"empty policies", `{"policies": []}`, "empty policies axis"},
		{"empty windows", `{"windows": []}`, "empty windows axis"},
		{"empty workloads", `{"workloads": []}`, "empty workloads axis"},
		{"dup entries", `{"entries": [64, 64]}`, "duplicate entries"},
		{"dup assoc", `{"assoc": [2, 2]}`, "duplicate assoc"},
		{"dup policy", `{"policies": ["lru", "LRU"]}`, "duplicate policy"},
		{"dup window", `{"windows": [{"skip":1,"measure":2},{"skip":1,"measure":2}]}`, "duplicate window"},
		{"dup workload", `{"workloads": ["lzw", "lzw"]}`, "duplicate workload"},
		{"bad policy", `{"policies": ["mru"]}`, "unknown replacement policy"},
		{"bad workload", `{"workloads": ["nope"]}`, "unknown workload"},
		{"entries zero", `{"entries": [0]}`, "out of range"},
		{"entries negative", `{"entries": [-4]}`, "out of range"},
		{"entries huge", `{"entries": [2097152]}`, "out of range"},
		{"assoc huge", `{"assoc": [1024]}`, "out of range"},
		{"windows and skip", `{"windows":[{"skip":1,"measure":2}], "skip": 3}`, "both windows and skip"},
		{"negative instances", `{"instances": -1}`, "negative instances"},
		{"negative variant", `{"input_variant": -2}`, "negative input_variant"},
		{"trailing data", `{} {}`, "trailing data"},
		{"not an object", `[1,2]`, "parsing spec"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(c.in))
			if err == nil {
				t.Fatalf("ParseSpec(%s) accepted", c.in)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSpec(%s) error %q, want substring %q", c.in, err, c.wantErr)
			}
		})
	}
}

func TestSpecGridCap(t *testing.T) {
	// 20 entries × 16 assoc × 3 policies × 8 workloads = 7680 > MaxCells.
	entries := make([]int, 20)
	assoc := make([]int, 16)
	for i := range entries {
		entries[i] = 1 + i
	}
	for i := range assoc {
		assoc[i] = 1 + i
	}
	s := &Spec{Entries: entries, Assoc: assoc, Policies: []string{"lru", "fifo", "random"}}
	if _, err := Expand(s); err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("oversized grid accepted: %v", err)
	}
}
