// Package sweep is the design-space sweep engine: a declarative spec
// cross-products measurement axes (reuse-buffer entries, associativity,
// replacement policy, measurement window, workload set) into cells,
// each cell a complete core.Config, and executes them through an
// injected runner — in practice repro.Runner, so every cell gets the
// result cache, checkpoint/restore, admission gate, and fault-tolerance
// machinery for free. Cell reports merge deterministically into a
// comparative artifact (canonical CSV + JSON hit-rate curves,
// per-workload and aggregate), so repeated sweeps and any -parallel
// setting produce byte-identical output. See DESIGN.md §17.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/reuse"
	"repro/internal/workloads"
)

// MaxCells bounds a sweep's expanded grid. The cap is a guard against
// runaway specs (and fuzz inputs), far above any real design-space
// study; past it Expand fails with a size diagnostic instead of
// queueing hours of simulation.
const MaxCells = 4096

// Window is one measurement-window axis value: how many instructions
// to skip and then measure (Measure 0 = run to completion).
type Window struct {
	Skip    uint64 `json:"skip"`
	Measure uint64 `json:"measure"`
}

// Spec is a declarative sweep: the cross product of every axis, run
// over every workload. A nil (absent) axis selects its default; a
// present-but-empty axis is an error (an empty grid is never what a
// spec means). Skip/Measure are shorthand for a single window and are
// mutually exclusive with Windows; normalization folds them in, so a
// normalized spec always carries its windows explicitly.
type Spec struct {
	// Entries is the reuse-buffer size axis in total entries
	// (default: the paper's 8192).
	Entries []int `json:"entries,omitempty"`
	// Assoc is the associativity axis (default: the paper's 4).
	Assoc []int `json:"assoc,omitempty"`
	// Policies is the replacement-policy axis: "lru", "fifo", "random"
	// (default: lru, the paper's).
	Policies []string `json:"policies,omitempty"`
	// Windows is the measurement-window axis (default: one window from
	// Skip/Measure).
	Windows []Window `json:"windows,omitempty"`
	// Workloads is the workload set (default: all bundled workloads,
	// report order).
	Workloads []string `json:"workloads,omitempty"`

	// Skip/Measure define the single window when Windows is absent.
	Skip    uint64 `json:"skip,omitempty"`
	Measure uint64 `json:"measure,omitempty"`
	// MaxInstances is the per-static-instruction instance buffer limit
	// applied to every cell (0 = the paper's 2000).
	MaxInstances int `json:"instances,omitempty"`
	// InputVariant selects the workload input data set for every cell
	// (0 or 1 = standard).
	InputVariant int `json:"input_variant,omitempty"`
}

// Cell is one expanded grid point: a workload plus the complete
// measurement Config its run uses.
type Cell struct {
	Index    int
	Workload string
	Entries  int
	Assoc    int
	Policy   reuse.Policy
	Window   Window
	Config   core.Config
}

// ID names the cell deterministically for spans, progress, and
// diagnostics: config point first, workload last, matching the
// expansion order.
func (c Cell) ID() string {
	return fmt.Sprintf("s%d-m%d-e%d-a%d-%s/%s",
		c.Window.Skip, c.Window.Measure, c.Entries, c.Assoc, c.Policy, c.Workload)
}

// ParseSpec decodes a JSON sweep spec strictly (unknown fields are
// errors — a typoed axis name must not silently select a default) and
// normalizes it. The returned spec round-trips: marshaling and
// re-parsing it expands to the identical cell grid.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: parsing spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("sweep: parsing spec: trailing data after spec object")
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// normalize fills absent axes with their defaults, folds Skip/Measure
// into a single window, canonicalizes policy names, and validates
// every axis value. After normalize the spec is self-contained: every
// axis is explicit and Expand cannot fail.
func (s *Spec) normalize() error {
	if s.Entries == nil {
		s.Entries = []int{reuse.DefaultEntries}
	}
	if s.Assoc == nil {
		s.Assoc = []int{reuse.DefaultAssoc}
	}
	if s.Policies == nil {
		s.Policies = []string{reuse.LRU.String()}
	}
	if s.Windows == nil {
		s.Windows = []Window{{Skip: s.Skip, Measure: s.Measure}}
	} else if s.Skip != 0 || s.Measure != 0 {
		return fmt.Errorf("sweep: spec sets both windows and skip/measure (pick one)")
	}
	s.Skip, s.Measure = 0, 0
	if s.Workloads == nil {
		s.Workloads = workloads.Names()
	}

	if err := intAxis("entries", s.Entries, 1, 1<<20); err != nil {
		return err
	}
	if err := intAxis("assoc", s.Assoc, 1, 256); err != nil {
		return err
	}
	if len(s.Policies) == 0 {
		return fmt.Errorf("sweep: empty policies axis")
	}
	seenPol := make(map[reuse.Policy]bool, len(s.Policies))
	for i, name := range s.Policies {
		p, err := reuse.ParsePolicy(name)
		if err != nil {
			return fmt.Errorf("sweep: policies[%d]: %w", i, err)
		}
		if seenPol[p] {
			return fmt.Errorf("sweep: duplicate policy %q", p)
		}
		seenPol[p] = true
		s.Policies[i] = p.String()
	}
	if len(s.Windows) == 0 {
		return fmt.Errorf("sweep: empty windows axis")
	}
	seenWin := make(map[Window]bool, len(s.Windows))
	for _, w := range s.Windows {
		if seenWin[w] {
			return fmt.Errorf("sweep: duplicate window skip=%d measure=%d", w.Skip, w.Measure)
		}
		seenWin[w] = true
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("sweep: empty workloads axis")
	}
	seenWl := make(map[string]bool, len(s.Workloads))
	for _, name := range s.Workloads {
		if _, ok := workloads.ByName(name); !ok {
			return fmt.Errorf("sweep: unknown workload %q (have %v)", name, workloads.Names())
		}
		if seenWl[name] {
			return fmt.Errorf("sweep: duplicate workload %q", name)
		}
		seenWl[name] = true
	}
	if s.MaxInstances < 0 {
		return fmt.Errorf("sweep: negative instances %d", s.MaxInstances)
	}
	if s.InputVariant < 0 {
		return fmt.Errorf("sweep: negative input_variant %d", s.InputVariant)
	}
	if n := s.grid(); n > MaxCells {
		return fmt.Errorf("sweep: grid expands to %d cells (max %d)", n, MaxCells)
	}
	return nil
}

// intAxis validates one integer axis: non-empty, in range, no
// duplicates.
func intAxis(name string, vals []int, lo, hi int) error {
	if len(vals) == 0 {
		return fmt.Errorf("sweep: empty %s axis", name)
	}
	seen := make(map[int]bool, len(vals))
	for _, v := range vals {
		if v < lo || v > hi {
			return fmt.Errorf("sweep: %s value %d out of range [%d, %d]", name, v, lo, hi)
		}
		if seen[v] {
			return fmt.Errorf("sweep: duplicate %s value %d", name, v)
		}
		seen[v] = true
	}
	return nil
}

// grid is the expanded cell count of a normalized spec.
func (s *Spec) grid() int {
	return len(s.Windows) * len(s.Entries) * len(s.Assoc) * len(s.Policies) * len(s.Workloads)
}

// Expand normalizes the spec and cross-products its axes into the
// deterministic cell order the merge relies on: windows, then entries,
// then associativity, then policy, then workload — workload innermost,
// so each config point's cells are contiguous and the aggregate rows
// fall out of a single pass.
func Expand(s *Spec) ([]Cell, error) {
	if err := s.normalize(); err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, s.grid())
	for _, win := range s.Windows {
		for _, entries := range s.Entries {
			for _, assoc := range s.Assoc {
				for _, polName := range s.Policies {
					pol, err := reuse.ParsePolicy(polName)
					if err != nil { // unreachable after normalize; belt only
						return nil, err
					}
					for _, wl := range s.Workloads {
						cells = append(cells, Cell{
							Index:    len(cells),
							Workload: wl,
							Entries:  entries,
							Assoc:    assoc,
							Policy:   pol,
							Window:   win,
							Config: core.Config{
								SkipInstructions:    win.Skip,
								MeasureInstructions: win.Measure,
								MaxInstances:        s.MaxInstances,
								ReuseEntries:        entries,
								ReuseAssoc:          assoc,
								ReusePolicy:         pol,
								InputVariant:        s.InputVariant,
							},
						})
					}
				}
			}
		}
	}
	return cells, nil
}
