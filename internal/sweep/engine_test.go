package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// fakeRun fabricates a deterministic report from the cell config, so
// engine tests exercise expansion, merging, and rendering without
// simulating. Hit rate is a made-up pure function of the axes.
func fakeRun(_ context.Context, workload string, cfg core.Config) (*core.Report, error) {
	return &core.Report{
		Benchmark:            workload,
		MeasuredInstructions: cfg.MeasureInstructions,
		DynTotal:             cfg.MeasureInstructions,
		ReusePctAll:          float64(cfg.ReuseEntries%97) + float64(cfg.ReuseAssoc) + float64(cfg.ReusePolicy)/10,
		ReusePctRepeated:     float64(cfg.ReuseEntries % 89),
	}, nil
}

func testSpec() *Spec {
	return &Spec{
		Entries:   []int{64, 256, 1024},
		Assoc:     []int{1, 4},
		Policies:  []string{"lru", "fifo", "random"},
		Workloads: []string{"lzw", "scrip", "odb"},
		Skip:      10,
		Measure:   1000,
	}
}

func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	var artifacts [][]byte
	for _, parallel := range []int{1, 4, 16} {
		reg := obs.NewRegistry()
		e := &Engine{Run: fakeRun, Parallel: parallel, Metrics: reg}
		res, err := e.Execute(context.Background(), testSpec())
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if got, want := len(res.Cells), 3*2*3*3; got != want {
			t.Fatalf("parallel=%d: %d cells, want %d", parallel, got, want)
		}
		if got, want := len(res.Aggregate), 3*2*3; got != want {
			t.Fatalf("parallel=%d: %d aggregate rows, want %d", parallel, got, want)
		}
		csv := res.CSV()
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, append(csv, js...))
		if v := reg.Counter("sweep_cells_ok").Value(); v != uint64(len(res.Cells)) {
			t.Errorf("parallel=%d: sweep_cells_ok = %d, want %d", parallel, v, len(res.Cells))
		}
	}
	for i := 1; i < len(artifacts); i++ {
		if !bytes.Equal(artifacts[0], artifacts[i]) {
			t.Errorf("artifact %d differs from artifact 0 under different parallelism", i)
		}
	}
}

func TestEngineBoundsParallelism(t *testing.T) {
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	run := func(ctx context.Context, workload string, cfg core.Config) (*core.Report, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return fakeRun(ctx, workload, cfg)
	}
	e := &Engine{Run: run, Parallel: 2, Metrics: obs.NewRegistry()}
	if _, err := e.Execute(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak in-flight cells %d, want <= 2", p)
	}
}

func TestEngineFailSoft(t *testing.T) {
	boom := errors.New("injected cell failure")
	run := func(ctx context.Context, workload string, cfg core.Config) (*core.Report, error) {
		if workload == "scrip" && cfg.ReuseEntries == 256 {
			return nil, boom
		}
		return fakeRun(ctx, workload, cfg)
	}
	reg := obs.NewRegistry()
	e := &Engine{Run: run, Metrics: reg}
	res, err := e.Execute(context.Background(), testSpec())
	if err == nil {
		t.Fatal("want joined failure error")
	}
	if !errors.Is(err, boom) {
		t.Errorf("joined error does not wrap the cell failure: %v", err)
	}
	var failed, ok int
	for i := range res.Cells {
		if res.Cells[i].OK() {
			ok++
		} else {
			failed++
			if !strings.Contains(res.Cells[i].Error, "injected cell failure") {
				t.Errorf("cell error text %q", res.Cells[i].Error)
			}
		}
	}
	// entries=256 × 2 assoc × 3 policies × workload scrip = 6 failures.
	if failed != 6 || ok != len(res.Cells)-6 {
		t.Errorf("failed=%d ok=%d of %d", failed, ok, len(res.Cells))
	}
	if v := reg.Counter("sweep_cells_failed").Value(); v != 6 {
		t.Errorf("sweep_cells_failed = %d, want 6", v)
	}
	// Aggregates over the failed point still average the survivors.
	for _, a := range res.Aggregate {
		want := 3
		if a.Entries == 256 {
			want = 2
		}
		if a.Workloads != want {
			t.Errorf("aggregate e%d-a%d-%s: %d contributing workloads, want %d",
				a.Entries, a.Assoc, a.Policy, a.Workloads, want)
		}
	}
	// The CSV still renders every row, failures carrying error text.
	csv := string(res.CSV())
	if got := strings.Count(csv, "\n"); got != 1+len(res.Cells)+len(res.Aggregate) {
		t.Errorf("CSV has %d lines", got)
	}
	if !strings.Contains(csv, "injected cell failure") {
		t.Error("CSV lost the failure diagnostic")
	}
}

func TestEngineTruncatedReportIsFailure(t *testing.T) {
	run := func(ctx context.Context, workload string, cfg core.Config) (*core.Report, error) {
		r, _ := fakeRun(ctx, workload, cfg)
		if workload == "lzw" {
			r.Truncated = true
			r.TruncatedReason = "timeout"
		}
		return r, nil
	}
	e := &Engine{Run: run, Metrics: obs.NewRegistry()}
	res, err := e.Execute(context.Background(), &Spec{Workloads: []string{"lzw", "scrip"}, Measure: 10})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated cell not demoted to failure: %v", err)
	}
	if res.Cells[0].OK() || !res.Cells[1].OK() {
		t.Errorf("unexpected cell outcomes: %+v", res.Cells)
	}
}

func TestEngineProgressAndSpanPerCell(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	e := &Engine{
		Run:     fakeRun,
		Metrics: obs.NewRegistry(),
		Progress: func(p Progress) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		},
	}
	tr := obs.NewTrace("sweep-test")
	ctx := obs.WithTrace(context.Background(), tr)
	sp := testSpec()
	if _, err := e.Execute(ctx, sp); err != nil {
		t.Fatal(err)
	}
	cells, _ := Expand(sp)
	if len(events) != len(cells) {
		t.Fatalf("%d progress events, want %d", len(events), len(cells))
	}
	seenDone := make(map[int]bool)
	for _, p := range events {
		if p.Total != len(cells) {
			t.Errorf("Total = %d", p.Total)
		}
		if seenDone[p.Done] {
			t.Errorf("Done value %d repeated", p.Done)
		}
		seenDone[p.Done] = true
	}
	// One sweep.cell span per cell hangs off the trace root.
	var cellSpans int
	for _, child := range tr.Root().Tree().Children {
		if child.Name == "sweep.cell" {
			cellSpans++
		}
	}
	if cellSpans != len(cells) {
		t.Errorf("%d sweep.cell spans, want %d", cellSpans, len(cells))
	}
}

func TestEngineInvalidSpec(t *testing.T) {
	e := &Engine{Run: fakeRun, Metrics: obs.NewRegistry()}
	if res, err := e.Execute(context.Background(), &Spec{Entries: []int{0}}); err == nil || res != nil {
		t.Fatalf("invalid spec: res=%v err=%v", res, err)
	}
}

func TestCSVQuoting(t *testing.T) {
	r := &Result{Cells: []CellResult{{
		Workload: "lzw", Entries: 8, Assoc: 1, Policy: "lru",
		Error: `boom, "quoted"` + "\nline",
	}}}
	csv := string(r.CSV())
	if !strings.Contains(csv, `"boom, ""quoted""`+"\nline\"") {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
}

func TestShapeCannotChangeMeasurement(t *testing.T) {
	// Shape adjusts execution fields; the artifact's ConfigKey must
	// reflect the measurement config that actually ran, so shape-ing a
	// timeout must not alter it.
	var keys []string
	run := func(ctx context.Context, workload string, cfg core.Config) (*core.Report, error) {
		keys = append(keys, cfg.MeasurementKey())
		return fakeRun(ctx, workload, cfg)
	}
	e := &Engine{
		Run:      run,
		Parallel: 1,
		Metrics:  obs.NewRegistry(),
		Shape:    func(c *core.Config) { c.Timeout = 1e9; c.Parallel = 7 },
	}
	sp := &Spec{Workloads: []string{"lzw"}, Measure: 10}
	res, err := e.Execute(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != res.Cells[0].ConfigKey {
		t.Errorf("measurement key drifted: ran %v, artifact %q", keys, res.Cells[0].ConfigKey)
	}
}

func BenchmarkExpand(b *testing.B) {
	s := testSpec()
	for i := 0; i < b.N; i++ {
		if _, err := Expand(s); err != nil {
			b.Fatal(err)
		}
	}
}
