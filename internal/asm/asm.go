package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// relocation kinds for instruction operands and data words.
type relKind uint8

const (
	relNone   relKind = iota
	relBranch         // signed word offset from pc+4
	relJump           // absolute word address (26-bit region)
	relHi             // %hi(sym+addend), carry-adjusted
	relLo             // %lo(sym+addend)
	relGP             // sym+addend - GPValue, must fit signed 16 bits
)

type protoInst struct {
	inst   isa.Inst
	rel    relKind
	sym    string
	addend int64
	line   int
}

type dataFixup struct {
	off    int // byte offset into data
	sym    string
	addend int64
	line   int
}

// Assembler assembles one or more source units into a program.Image.
type Assembler struct {
	text    []protoInst
	data    []byte // initialized data section
	bss     int    // uninitialized section size in bytes
	symbols map[string]uint32
	bssSyms map[string]uint32 // offsets within bss, rebased later
	fixups  []dataFixup
	funcs   []program.Func
	curFunc int // index into funcs, -1 if none
	section int // 0 text, 1 data, 2 bss
}

// New returns an empty assembler.
func New() *Assembler {
	return &Assembler{
		symbols: make(map[string]uint32),
		bssSyms: make(map[string]uint32),
		curFunc: -1,
	}
}

// Assemble is a convenience wrapper: assemble a single source unit and
// link it.
func Assemble(src string) (*program.Image, error) {
	a := New()
	if err := a.AddSource(src); err != nil {
		return nil, err
	}
	return a.Link()
}

func (a *Assembler) textAddr() uint32 {
	return program.TextBase + uint32(len(a.text))*4
}

func (a *Assembler) dataAddr() uint32 {
	return program.DataBase + uint32(len(a.data))
}

// AddSource assembles one source unit into the image being built.
// Symbols are global across units.
func (a *Assembler) AddSource(src string) error {
	lines, err := scan(src)
	if err != nil {
		return err
	}
	for _, ln := range lines {
		if err := a.statement(ln); err != nil {
			return err
		}
	}
	return nil
}

func (a *Assembler) define(name string, n int) error {
	if _, dup := a.symbols[name]; dup {
		return errf(n, "duplicate symbol %q", name)
	}
	if _, dup := a.bssSyms[name]; dup {
		return errf(n, "duplicate symbol %q", name)
	}
	switch a.section {
	case 0:
		a.symbols[name] = a.textAddr()
	case 1:
		a.symbols[name] = a.dataAddr()
	default:
		a.bssSyms[name] = uint32(a.bss)
	}
	return nil
}

func (a *Assembler) statement(ln line) error {
	if ln.label != "" {
		if err := a.define(ln.label, ln.n); err != nil {
			return err
		}
	}
	if ln.mnem == "" {
		return nil
	}
	if strings.HasPrefix(ln.mnem, ".") {
		return a.directive(ln)
	}
	if a.section != 0 {
		return errf(ln.n, "instruction outside .text")
	}
	return a.instruction(ln)
}

func (a *Assembler) directive(ln line) error {
	switch ln.mnem {
	case ".text":
		a.section = 0
	case ".data":
		a.section = 1
	case ".bss":
		a.section = 2
	case ".globl", ".global", ".ent", ".end", ".set":
		// Accepted and ignored; symbols are global already.
	case ".align":
		if len(ln.args) != 1 {
			return errf(ln.n, ".align wants one argument")
		}
		p, ok := parseInt(ln.args[0])
		if !ok || p < 0 || p > 12 {
			return errf(ln.n, "bad .align %q", ln.args[0])
		}
		a.alignData(1 << uint(p))
	case ".word":
		a.alignData(4)
		for _, arg := range ln.args {
			if v, ok := parseInt(arg); ok {
				a.emitData32(uint32(v))
				continue
			}
			sym, addend, err := parseSymExpr(arg, ln.n)
			if err != nil {
				return err
			}
			a.fixups = append(a.fixups, dataFixup{off: len(a.data), sym: sym, addend: addend, line: ln.n})
			a.emitData32(0)
		}
	case ".half":
		a.alignData(2)
		for _, arg := range ln.args {
			v, ok := parseInt(arg)
			if !ok {
				return errf(ln.n, "bad .half operand %q", arg)
			}
			a.data = append(a.data, byte(v), byte(v>>8))
		}
	case ".byte":
		for _, arg := range ln.args {
			v, ok := parseInt(arg)
			if !ok {
				return errf(ln.n, "bad .byte operand %q", arg)
			}
			a.data = append(a.data, byte(v))
		}
	case ".ascii":
		a.data = append(a.data, ln.strArg...)
	case ".asciiz":
		a.data = append(a.data, ln.strArg...)
		a.data = append(a.data, 0)
	case ".space":
		if len(ln.args) != 1 {
			return errf(ln.n, ".space wants one argument")
		}
		v, ok := parseInt(ln.args[0])
		if !ok || v < 0 {
			return errf(ln.n, "bad .space %q", ln.args[0])
		}
		switch a.section {
		case 1:
			a.data = append(a.data, make([]byte, v)...)
		case 2:
			a.bss += int(v)
		default:
			return errf(ln.n, ".space in .text")
		}
	case ".func":
		// Operands may be space- or comma-separated.
		args := strings.Fields(strings.Join(ln.args, " "))
		ln.args = args
		if len(ln.args) != 2 {
			return errf(ln.n, ".func wants NAME NARGS")
		}
		nargs, ok := parseInt(ln.args[1])
		if !ok || nargs < 0 || nargs > 16 {
			return errf(ln.n, "bad .func nargs %q", ln.args[1])
		}
		a.funcs = append(a.funcs, program.Func{
			Name:  ln.args[0],
			Entry: a.textAddr(),
			NArgs: int(nargs),
		})
		a.curFunc = len(a.funcs) - 1
	case ".endfunc":
		if a.curFunc < 0 {
			return errf(ln.n, ".endfunc without .func")
		}
		a.funcs[a.curFunc].End = a.textAddr()
		a.curFunc = -1
	default:
		return errf(ln.n, "unknown directive %s", ln.mnem)
	}
	return nil
}

func (a *Assembler) alignData(to int) {
	if a.section == 2 {
		for a.bss%to != 0 {
			a.bss++
		}
		return
	}
	for len(a.data)%to != 0 {
		a.data = append(a.data, 0)
	}
}

func (a *Assembler) emitData32(v uint32) {
	a.data = append(a.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// parseSymExpr parses "sym", "sym+N", or "sym-N".
func parseSymExpr(s string, n int) (sym string, addend int64, err error) {
	s = strings.TrimSpace(s)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			v, ok := parseInt(s[i:])
			if !ok {
				return "", 0, errf(n, "bad symbol expression %q", s)
			}
			sym = s[:i]
			if !validSymbol(sym) {
				return "", 0, errf(n, "bad symbol %q", sym)
			}
			return sym, v, nil
		}
	}
	if !validSymbol(s) {
		return "", 0, errf(n, "bad symbol %q", s)
	}
	return s, 0, nil
}

// Link resolves symbols and fixups and returns the final image.
func (a *Assembler) Link() (*program.Image, error) {
	if a.curFunc >= 0 {
		return nil, fmt.Errorf("asm: unterminated .func %s", a.funcs[a.curFunc].Name)
	}
	// Rebase bss symbols after the initialized data (word-aligned).
	initLen := len(a.data)
	bssBase := uint32((initLen + 3) &^ 3)
	for name, off := range a.bssSyms {
		if _, dup := a.symbols[name]; dup {
			return nil, fmt.Errorf("asm: duplicate symbol %q", name)
		}
		a.symbols[name] = program.DataBase + bssBase + off
	}
	totalData := int(bssBase) + a.bss

	im := &program.Image{
		Data:           make([]byte, totalData),
		InitializedLen: initLen,
		Symbols:        a.symbols,
		Funcs:          a.funcs,
	}
	copy(im.Data, a.data)

	// Data fixups.
	for _, fx := range a.fixups {
		v, ok := a.symbols[fx.sym]
		if !ok {
			return nil, fmt.Errorf("asm: line %d: undefined symbol %q", fx.line, fx.sym)
		}
		w := v + uint32(fx.addend)
		im.Data[fx.off] = byte(w)
		im.Data[fx.off+1] = byte(w >> 8)
		im.Data[fx.off+2] = byte(w >> 16)
		im.Data[fx.off+3] = byte(w >> 24)
	}

	// Instruction relocations.
	im.Text = make([]isa.Inst, len(a.text))
	for i, pi := range a.text {
		in := pi.inst
		if pi.rel != relNone {
			v, ok := a.symbols[pi.sym]
			if !ok {
				return nil, fmt.Errorf("asm: line %d: undefined symbol %q", pi.line, pi.sym)
			}
			target := int64(v) + pi.addend
			pc := int64(program.TextBase) + int64(i)*4
			switch pi.rel {
			case relBranch:
				off := (target - (pc + 4)) / 4
				if off < -32768 || off > 32767 {
					return nil, fmt.Errorf("asm: line %d: branch to %q out of range", pi.line, pi.sym)
				}
				in.Imm = int32(off)
			case relJump:
				in.Imm = int32(uint32(target) >> 2 & (1<<26 - 1))
			case relHi:
				in.Imm = int32((uint32(target) + 0x8000) >> 16)
			case relLo:
				in.Imm = int32(int16(uint32(target) & 0xffff))
			case relGP:
				off := target - int64(program.GPValue)
				if off < -32768 || off > 32767 {
					return nil, fmt.Errorf("asm: line %d: %%gp(%s) offset %d out of range", pi.line, pi.sym, off)
				}
				in.Imm = int32(off)
			}
		}
		im.Text[i] = in
	}

	// Entry point.
	if e, ok := a.symbols["__start"]; ok {
		im.Entry = e
	} else if e, ok := a.symbols["main"]; ok {
		im.Entry = e
	} else {
		im.Entry = program.TextBase
	}
	im.Finalize()
	return im, nil
}
