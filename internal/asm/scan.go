// Package asm implements a two-pass assembler for the MIPS-I-like ISA
// in internal/isa. It supports the directives and pseudo-instructions
// that the MiniC compiler emits, and produces a program.Image.
//
// Source syntax (one statement per line):
//
//	label:  mnemonic op1, op2, op3   # comment
//	        .directive args
//
// Directives: .text .data .bss .word .half .byte .ascii .asciiz .space
// .align .globl .func NAME NARGS .endfunc
//
// Pseudo-instructions: li la move b nop not neg blt bgt ble bge bltu
// bgeu beqz bnez seq sne mul div rem subi
package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// line is one source statement after scanning.
type line struct {
	n      int    // 1-based line number
	label  string // leading "label:" if any
	mnem   string // mnemonic or directive (with dot), lower-cased
	args   []string
	strArg string // decoded string literal for .ascii/.asciiz
}

// scanError records a scan/parse failure with its line.
type scanError struct {
	line int
	msg  string
}

func (e *scanError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func errf(n int, format string, args ...any) error {
	return &scanError{line: n, msg: fmt.Sprintf(format, args...)}
}

// scan splits source into statements. A line may carry a label, a
// statement, both, or neither.
func scan(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		n := i + 1
		s := stripComment(raw)
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		var ln line
		ln.n = n
		// Leading label(s). Multiple labels on one line each get
		// their own entry so they alias the same address.
		for {
			idx := labelEnd(s)
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(s[:idx])
			if !validSymbol(name) {
				return nil, errf(n, "invalid label %q", name)
			}
			if ln.label != "" {
				out = append(out, line{n: n, label: ln.label})
			}
			ln.label = name
			s = strings.TrimSpace(s[idx+1:])
		}
		if s == "" {
			if ln.label != "" {
				out = append(out, ln)
			}
			continue
		}
		// Mnemonic is the first whitespace-delimited token.
		sp := strings.IndexAny(s, " \t")
		if sp < 0 {
			ln.mnem = strings.ToLower(s)
		} else {
			ln.mnem = strings.ToLower(s[:sp])
			rest := strings.TrimSpace(s[sp+1:])
			if ln.mnem == ".ascii" || ln.mnem == ".asciiz" {
				dec, err := decodeString(rest)
				if err != nil {
					return nil, errf(n, "%v", err)
				}
				ln.strArg = dec
			} else if rest != "" {
				ln.args = splitArgs(rest)
			}
		}
		out = append(out, ln)
	}
	return out, nil
}

// stripComment removes a trailing comment introduced by '#' (or ';'),
// honouring character and string literals.
func stripComment(s string) string {
	inStr, inChr := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChr:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChr = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChr = true
		case c == '#' || c == ';':
			return s[:i]
		}
	}
	return s
}

// labelEnd returns the index of a leading label's ':' or -1. A ':' only
// terminates a label if everything before it is a symbol.
func labelEnd(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			return i
		}
		if !symbolChar(c) {
			return -1
		}
	}
	return -1
}

func symbolChar(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func validSymbol(s string) bool {
	if s == "" {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !symbolChar(s[i]) {
			return false
		}
	}
	return true
}

// splitArgs splits a comma-separated operand list, honouring char
// literals and parentheses.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	inChr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inChr:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChr = false
			}
		case c == '\'':
			inChr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// decodeString decodes a double-quoted string literal with the escapes
// \n \t \r \0 \\ \" \'.
func decodeString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("malformed string literal %s", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %s", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\', '"', '\'':
			b.WriteByte(body[i])
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// parseInt parses a numeric literal: decimal, hex (0x), binary (0b),
// negative forms, and character literals 'c' / '\n'.
func parseInt(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if s[0] == '\'' {
		if len(s) >= 3 && s[len(s)-1] == '\'' {
			body := s[1 : len(s)-1]
			if len(body) == 1 {
				return int64(body[0]), true
			}
			if len(body) == 2 && body[0] == '\\' {
				switch body[1] {
				case 'n':
					return '\n', true
				case 't':
					return '\t', true
				case 'r':
					return '\r', true
				case '0':
					return 0, true
				case '\\', '\'', '"':
					return int64(body[1]), true
				}
			}
		}
		return 0, false
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Values like 0xffffffff overflow int64? No—they fit. But
		// allow unsigned 32-bit range explicitly.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, false
		}
		return int64(u), true
	}
	return v, true
}
