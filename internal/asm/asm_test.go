package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func mustAssemble(t *testing.T, src string) *program.Image {
	t.Helper()
	im, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return im
}

func TestLabelsAndBranches(t *testing.T) {
	im := mustAssemble(t, `
		.text
main:
		li $t0, 3
loop:
		addiu $t0, $t0, -1
		bne $t0, $zero, loop
		jr $ra
	`)
	if im.Entry != program.TextBase {
		t.Errorf("entry = %#x, want %#x", im.Entry, program.TextBase)
	}
	if len(im.Text) != 4 {
		t.Fatalf("text = %d instructions, want 4", len(im.Text))
	}
	// bne at index 2 targets index 1: offset = 1 - 3 = -2.
	if im.Text[2].Op != isa.OpBNE || im.Text[2].Imm != -2 {
		t.Errorf("bne = %+v, want offset -2", im.Text[2])
	}
}

func TestPseudoLI(t *testing.T) {
	cases := []struct {
		src  string
		insn int
	}{
		{"li $t0, 0", 1},
		{"li $t0, 100", 1},
		{"li $t0, -1", 1},
		{"li $t0, 0x8000", 1},     // ori
		{"li $t0, 0xffff", 1},     // ori
		{"li $t0, 0x10000", 1},    // lui only
		{"li $t0, 0x12345678", 2}, // lui+ori
		{"li $t0, -100000", 2},    // lui+ori
		{"li $t0, 0xffffffff", 1}, // addiu -1
	}
	for _, c := range cases {
		im := mustAssemble(t, ".text\nmain:\n"+c.src+"\n")
		if len(im.Text) != c.insn {
			t.Errorf("%s expanded to %d instructions, want %d: %v", c.src, len(im.Text), c.insn, im.Text)
		}
	}
}

func TestLIValueSemantics(t *testing.T) {
	// Verify that the expansion reconstructs the constant.
	vals := []int64{0, 1, -1, 32767, -32768, 32768, 65535, 65536,
		0x12345678, -100000, 0x7fffffff, -0x80000000}
	for _, v := range vals {
		im := mustAssemble(t, ".text\nmain:\nli $t0, "+itoa(v)+"\n")
		var r uint32
		for _, in := range im.Text {
			switch in.Op {
			case isa.OpADDIU:
				r += uint32(in.Imm)
			case isa.OpORI:
				r |= uint32(in.Imm)
			case isa.OpLUI:
				r = uint32(in.Imm) << 16
			default:
				t.Fatalf("li %d produced unexpected %v", v, in)
			}
		}
		if r != uint32(v) {
			t.Errorf("li %d reconstructs %#x, want %#x", v, r, uint32(v))
		}
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestDataDirectives(t *testing.T) {
	im := mustAssemble(t, `
		.data
w:		.word 1, 2, 0x10
h:		.half 7, 8
b:		.byte 1
s:		.asciiz "hi\n"
		.align 2
after:	.word w
		.bss
buf:	.space 16
		.text
main:	jr $ra
	`)
	sym := func(name string) uint32 {
		v, ok := im.Symbols[name]
		if !ok {
			t.Fatalf("missing symbol %q", name)
		}
		return v
	}
	if got := sym("w"); got != program.DataBase {
		t.Errorf("w at %#x", got)
	}
	if got := sym("h"); got != program.DataBase+12 {
		t.Errorf("h at %#x, want +12", got)
	}
	// b follows the two halves at +16.
	if got := sym("b"); got != program.DataBase+16 {
		t.Errorf("b at %#x, want +16", got)
	}
	// s at +17, "hi\n\0" is 4 bytes -> next aligned word at +24.
	wAfter := sym("after")
	if wAfter != program.DataBase+24 {
		t.Errorf("after at %#x, want +24", wAfter)
	}
	// .word w fixup: little-endian value of symbol w.
	off := wAfter - program.DataBase
	got := uint32(im.Data[off]) | uint32(im.Data[off+1])<<8 |
		uint32(im.Data[off+2])<<16 | uint32(im.Data[off+3])<<24
	if got != program.DataBase {
		t.Errorf(".word w = %#x, want %#x", got, program.DataBase)
	}
	// bss symbol lands after initialized data, word aligned.
	if sym("buf") < program.DataBase+uint32(im.InitializedLen) {
		t.Errorf("buf inside initialized data")
	}
	if len(im.Data) < im.InitializedLen+16 {
		t.Errorf("data segment too small for bss")
	}
}

func TestGPRelative(t *testing.T) {
	im := mustAssemble(t, `
		.data
v:		.word 42
		.text
main:
		lw $t0, %gp(v)
		sw $t0, %gp(v)
		addiu $t1, $gp, %gp(v)
		jr $ra
	`)
	want := int32(int64(program.DataBase) - int64(program.GPValue))
	for i := 0; i < 3; i++ {
		if im.Text[i].Imm != want {
			t.Errorf("inst %d imm = %d, want %d", i, im.Text[i].Imm, want)
		}
	}
	if im.Text[0].Rs != isa.RegGP {
		t.Errorf("lw base = %v, want $gp", isa.RegName(int(im.Text[0].Rs)))
	}
}

func TestHiLoRelocation(t *testing.T) {
	im := mustAssemble(t, `
		.data
		.space 0x9000
v:		.word 7
		.text
main:
		la $t0, v
		lw $t1, v
		jr $ra
	`)
	addr := im.Symbols["v"]
	// la: lui+addiu must reconstruct addr.
	hi := uint32(im.Text[0].Imm) << 16
	lo := uint32(int32(im.Text[1].Imm))
	if hi+lo != addr {
		t.Errorf("la reconstructs %#x, want %#x", hi+lo, addr)
	}
	// lw via $at.
	hi2 := uint32(im.Text[2].Imm) << 16
	lo2 := uint32(int32(im.Text[3].Imm))
	if hi2+lo2 != addr {
		t.Errorf("lw sym reconstructs %#x, want %#x", hi2+lo2, addr)
	}
	if im.Text[3].Rs != isa.RegAT {
		t.Errorf("lw base should be $at")
	}
}

func TestFuncDirective(t *testing.T) {
	im := mustAssemble(t, `
		.text
		.func foo 2
foo:	addu $v0, $a0, $a1
		jr $ra
		.endfunc
		.func main 0
main:	jal foo
		jr $ra
		.endfunc
	`)
	if len(im.Funcs) != 2 {
		t.Fatalf("got %d funcs", len(im.Funcs))
	}
	f := im.FuncByEntry(im.Symbols["foo"])
	if f == nil || f.Name != "foo" || f.NArgs != 2 || f.Size() != 2 {
		t.Errorf("foo metadata wrong: %+v", f)
	}
	if got := im.FuncAt(im.Symbols["main"] + 4); got == nil || got.Name != "main" {
		t.Errorf("FuncAt(main+4) = %+v", got)
	}
}

func TestConditionalBranchPseudos(t *testing.T) {
	im := mustAssemble(t, `
		.text
main:
		blt $t0, $t1, out
		bge $t0, $t1, out
		bgt $t0, $t1, out
		ble $t0, $t1, out
		bltu $t0, $t1, out
out:	jr $ra
	`)
	// Each pseudo expands to slt(u)+branch.
	if len(im.Text) != 11 {
		t.Fatalf("got %d instructions, want 11", len(im.Text))
	}
	if im.Text[0].Op != isa.OpSLT || im.Text[1].Op != isa.OpBNE {
		t.Errorf("blt expands to %v %v", im.Text[0].Op, im.Text[1].Op)
	}
	if im.Text[2].Op != isa.OpSLT || im.Text[3].Op != isa.OpBEQ {
		t.Errorf("bge expands to %v %v", im.Text[2].Op, im.Text[3].Op)
	}
	if im.Text[8].Op != isa.OpSLTU {
		t.Errorf("bltu uses %v", im.Text[8].Op)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"bogus $t0",
		".text\nlw $t0",
		".text\nfoo: foo: jr $ra\nfoo: nop",
		".text\nbne $t0, $zero, missing",
		".data\nx: .word 1\n.text\naddu $t0, $t1",
		".word notasymbol!",
		".func f\n.endfunc",
		".text\n.endfunc",
		`.data` + "\n" + `s: .asciiz "unterminated`,
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestComments(t *testing.T) {
	im := mustAssemble(t, `
	# full line comment
	.text
main:	li $t0, '#'    # not a comment start inside char literal
		jr $ra         ; alt comment
	`)
	if len(im.Text) != 2 {
		t.Fatalf("got %d instructions", len(im.Text))
	}
	if im.Text[0].Imm != '#' {
		t.Errorf("char literal '#' = %d", im.Text[0].Imm)
	}
}

func TestMultipleUnits(t *testing.T) {
	a := New()
	if err := a.AddSource(".text\n.func main 0\nmain: jal helper\njr $ra\n.endfunc\n"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSource(".text\n.func helper 0\nhelper: jr $ra\n.endfunc\n"); err != nil {
		t.Fatal(err)
	}
	im, err := a.Link()
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Funcs) != 2 {
		t.Errorf("got %d funcs", len(im.Funcs))
	}
	// Cross-unit jal resolved.
	if im.Text[0].Op != isa.OpJAL {
		t.Fatalf("first inst %v", im.Text[0])
	}
	target := uint32(im.Text[0].Imm) << 2
	if target != im.Symbols["helper"] {
		t.Errorf("jal target %#x, want %#x", target, im.Symbols["helper"])
	}
}

func TestStringDecoding(t *testing.T) {
	im := mustAssemble(t, ".data\ns: .asciiz \"a\\tb\\\\c\\\"d\\0e\"\n.text\nmain: jr $ra\n")
	want := "a\tb\\c\"d\x00e\x00"
	got := string(im.Data[:len(want)])
	if got != want {
		t.Errorf("decoded string = %q, want %q", got, want)
	}
}

func TestUnterminatedFunc(t *testing.T) {
	a := New()
	if err := a.AddSource(".text\n.func f 0\nf: jr $ra\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Link(); err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Errorf("Link should report unterminated .func, got %v", err)
	}
}
