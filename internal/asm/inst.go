package asm

import (
	"strings"

	"repro/internal/isa"
)

// operand is a parsed instruction operand.
type operand struct {
	isReg  bool
	reg    int
	isImm  bool
	imm    int64
	isSym  bool // symbol expression (label)
	sym    string
	addend int64
	isMem  bool // imm(reg) or sym / %gp(sym) memory reference
	memRel relKind
}

func (a *Assembler) emit(in isa.Inst, n int) {
	a.text = append(a.text, protoInst{inst: in, line: n})
}

func (a *Assembler) emitRel(in isa.Inst, rel relKind, sym string, addend int64, n int) {
	a.text = append(a.text, protoInst{inst: in, rel: rel, sym: sym, addend: addend, line: n})
}

func parseOperand(s string, n int) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, errf(n, "empty operand")
	}
	// Register.
	if s[0] == '$' {
		if r, ok := isa.RegByName(s); ok {
			return operand{isReg: true, reg: r}, nil
		}
		return operand{}, errf(n, "unknown register %q", s)
	}
	// %hi(expr) / %lo(expr) / %gp(expr)
	if s[0] == '%' {
		open := strings.IndexByte(s, '(')
		if open < 0 || s[len(s)-1] != ')' {
			return operand{}, errf(n, "malformed %%-operand %q", s)
		}
		kindName := s[1:open]
		sym, addend, err := parseSymExpr(s[open+1:len(s)-1], n)
		if err != nil {
			return operand{}, err
		}
		var rel relKind
		switch kindName {
		case "hi":
			rel = relHi
		case "lo":
			rel = relLo
		case "gp":
			rel = relGP
		default:
			return operand{}, errf(n, "unknown relocation %%%s", kindName)
		}
		return operand{isSym: true, sym: sym, addend: addend, memRel: rel}, nil
	}
	// Memory operand imm(reg).
	if open := strings.IndexByte(s, '('); open >= 0 && strings.HasSuffix(s, ")") {
		regPart := s[open+1 : len(s)-1]
		r, ok := isa.RegByName(regPart)
		if !ok {
			return operand{}, errf(n, "bad base register %q", regPart)
		}
		offPart := strings.TrimSpace(s[:open])
		var off int64
		if offPart != "" {
			v, ok := parseInt(offPart)
			if !ok {
				return operand{}, errf(n, "bad memory offset %q", offPart)
			}
			off = v
		}
		return operand{isMem: true, reg: r, imm: off}, nil
	}
	// Numeric immediate.
	if v, ok := parseInt(s); ok {
		return operand{isImm: true, imm: v}, nil
	}
	// Symbol expression.
	sym, addend, err := parseSymExpr(s, n)
	if err != nil {
		return operand{}, err
	}
	return operand{isSym: true, sym: sym, addend: addend}, nil
}

func (a *Assembler) instruction(ln line) error {
	ops := make([]operand, len(ln.args))
	for i, arg := range ln.args {
		o, err := parseOperand(arg, ln.n)
		if err != nil {
			return err
		}
		ops[i] = o
	}
	n := ln.n

	reg := func(i int) (uint8, error) {
		if i >= len(ops) || !ops[i].isReg {
			return 0, errf(n, "%s: operand %d must be a register", ln.mnem, i+1)
		}
		return uint8(ops[i].reg), nil
	}
	need := func(k int) error {
		if len(ops) != k {
			return errf(n, "%s: want %d operands, got %d", ln.mnem, k, len(ops))
		}
		return nil
	}

	// Real instructions first.
	if op, ok := isa.OpByName(ln.mnem); ok {
		return a.realInst(op, ln, ops, reg, need)
	}

	// Pseudo-instructions.
	switch ln.mnem {
	case "nop":
		a.emit(isa.Nop(), n)
		return nil
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		if !ops[1].isImm {
			return errf(n, "li: operand 2 must be an immediate")
		}
		a.emitLI(rt, ops[1].imm, n)
		return nil
	case "la":
		if err := need(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		if !ops[1].isSym || ops[1].memRel != relNone {
			return errf(n, "la: operand 2 must be a symbol")
		}
		a.emitRel(isa.Inst{Op: isa.OpLUI, Rt: rt}, relHi, ops[1].sym, ops[1].addend, n)
		a.emitRel(isa.Inst{Op: isa.OpADDIU, Rt: rt, Rs: rt}, relLo, ops[1].sym, ops[1].addend, n)
		return nil
	case "move":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpADDU, Rd: rd, Rs: rs, Rt: isa.RegZero}, n)
		return nil
	case "not":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpNOR, Rd: rd, Rs: rs, Rt: isa.RegZero}, n)
		return nil
	case "neg":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpSUBU, Rd: rd, Rs: isa.RegZero, Rt: rs}, n)
		return nil
	case "b":
		if err := need(1); err != nil {
			return err
		}
		if !ops[0].isSym {
			return errf(n, "b: operand must be a label")
		}
		a.emitRel(isa.Inst{Op: isa.OpBEQ}, relBranch, ops[0].sym, ops[0].addend, n)
		return nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		if !ops[1].isSym {
			return errf(n, "%s: operand 2 must be a label", ln.mnem)
		}
		op := isa.OpBEQ
		if ln.mnem == "bnez" {
			op = isa.OpBNE
		}
		a.emitRel(isa.Inst{Op: op, Rs: rs}, relBranch, ops[1].sym, ops[1].addend, n)
		return nil
	case "blt", "bgt", "ble", "bge", "bltu", "bgtu", "bleu", "bgeu":
		if err := need(3); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		if !ops[2].isSym {
			return errf(n, "%s: operand 3 must be a label", ln.mnem)
		}
		slt := isa.OpSLT
		base := ln.mnem
		if strings.HasSuffix(ln.mnem, "u") {
			slt = isa.OpSLTU
			base = ln.mnem[:len(ln.mnem)-1]
		}
		// blt: at = rs<rt; bne at      bge: at = rs<rt; beq at
		// bgt: at = rt<rs; bne at      ble: at = rt<rs; beq at
		x, y := rs, rt
		br := isa.OpBNE
		switch base {
		case "bgt":
			x, y = rt, rs
		case "ble":
			x, y = rt, rs
			br = isa.OpBEQ
		case "bge":
			br = isa.OpBEQ
		}
		a.emit(isa.Inst{Op: slt, Rd: isa.RegAT, Rs: x, Rt: y}, n)
		a.emitRel(isa.Inst{Op: br, Rs: isa.RegAT, Rt: isa.RegZero}, relBranch, ops[2].sym, ops[2].addend, n)
		return nil
	case "mul", "rem":
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		rt, err := reg(2)
		if err != nil {
			return err
		}
		if ln.mnem == "mul" {
			a.emit(isa.Inst{Op: isa.OpMULT, Rs: rs, Rt: rt}, n)
			a.emit(isa.Inst{Op: isa.OpMFLO, Rd: rd}, n)
		} else {
			a.emit(isa.Inst{Op: isa.OpDIV, Rs: rs, Rt: rt}, n)
			a.emit(isa.Inst{Op: isa.OpMFHI, Rd: rd}, n)
		}
		return nil
	case "seq", "sne":
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		rt, err := reg(2)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OpSUBU, Rd: rd, Rs: rs, Rt: rt}, n)
		if ln.mnem == "seq" {
			a.emit(isa.Inst{Op: isa.OpSLTIU, Rt: rd, Rs: rd, Imm: 1}, n)
		} else {
			a.emit(isa.Inst{Op: isa.OpSLTU, Rd: rd, Rs: isa.RegZero, Rt: rd}, n)
		}
		return nil
	}
	return errf(n, "unknown mnemonic %q", ln.mnem)
}

// emitLI expands "li rt, v".
func (a *Assembler) emitLI(rt uint8, v int64, n int) {
	v32 := uint32(v)
	sv := int64(int32(v32)) // treat large unsigned literals as their 32-bit two's complement
	switch {
	case sv >= -32768 && sv <= 32767:
		a.emit(isa.Inst{Op: isa.OpADDIU, Rt: rt, Rs: isa.RegZero, Imm: int32(sv)}, n)
	case sv >= 0 && sv <= 0xffff:
		a.emit(isa.Inst{Op: isa.OpORI, Rt: rt, Rs: isa.RegZero, Imm: int32(v32)}, n)
	default:
		a.emit(isa.Inst{Op: isa.OpLUI, Rt: rt, Imm: int32(v32 >> 16)}, n)
		if lo := v32 & 0xffff; lo != 0 {
			a.emit(isa.Inst{Op: isa.OpORI, Rt: rt, Rs: rt, Imm: int32(lo)}, n)
		}
	}
}

// realInst assembles a line whose mnemonic is a hardware instruction.
func (a *Assembler) realInst(op isa.Op, ln line, ops []operand,
	reg func(int) (uint8, error), need func(int) error) error {
	n := ln.n
	switch isa.OpKind(op) {
	case isa.KindALU3:
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		// Variable shifts use "sllv rd, rt, rs" operand order.
		if op == isa.OpSLLV || op == isa.OpSRLV || op == isa.OpSRAV {
			rt, err := reg(1)
			if err != nil {
				return err
			}
			rs, err := reg(2)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt}, n)
			return nil
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		rt, err := reg(2)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt}, n)
		return nil

	case isa.KindShift:
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		if !ops[2].isImm || ops[2].imm < 0 || ops[2].imm > 31 {
			return errf(n, "%s: bad shift amount", op)
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rt: rt, Imm: int32(ops[2].imm)}, n)
		return nil

	case isa.KindMulDiv:
		if err := need(2); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		rt, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op, Rs: rs, Rt: rt}, n)
		return nil

	case isa.KindMoveHL:
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(0)
		if err != nil {
			return err
		}
		if op == isa.OpMFHI || op == isa.OpMFLO {
			a.emit(isa.Inst{Op: op, Rd: r}, n)
		} else {
			a.emit(isa.Inst{Op: op, Rs: r}, n)
		}
		return nil

	case isa.KindALUImm:
		if err := need(3); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		if ops[2].isImm {
			a.emit(isa.Inst{Op: op, Rt: rt, Rs: rs, Imm: int32(ops[2].imm)}, n)
			return nil
		}
		if ops[2].isSym && (ops[2].memRel == relLo || ops[2].memRel == relGP) {
			a.emitRel(isa.Inst{Op: op, Rt: rt, Rs: rs}, ops[2].memRel, ops[2].sym, ops[2].addend, n)
			return nil
		}
		return errf(n, "%s: operand 3 must be an immediate", op)

	case isa.KindLUI:
		if err := need(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		if ops[1].isImm {
			a.emit(isa.Inst{Op: op, Rt: rt, Imm: int32(ops[1].imm & 0xffff)}, n)
			return nil
		}
		if ops[1].isSym && ops[1].memRel == relHi {
			a.emitRel(isa.Inst{Op: op, Rt: rt}, relHi, ops[1].sym, ops[1].addend, n)
			return nil
		}
		return errf(n, "lui: operand 2 must be an immediate or %%hi(sym)")

	case isa.KindLoad, isa.KindStore:
		if err := need(2); err != nil {
			return err
		}
		rt, err := reg(0)
		if err != nil {
			return err
		}
		m := ops[1]
		switch {
		case m.isMem:
			a.emit(isa.Inst{Op: op, Rt: rt, Rs: uint8(m.reg), Imm: int32(m.imm)}, n)
		case m.isSym && m.memRel == relGP:
			a.emitRel(isa.Inst{Op: op, Rt: rt, Rs: isa.RegGP}, relGP, m.sym, m.addend, n)
		case m.isSym && m.memRel == relNone:
			// Expand via $at: lui $at, %hi; op rt, %lo($at).
			a.emitRel(isa.Inst{Op: isa.OpLUI, Rt: isa.RegAT}, relHi, m.sym, m.addend, n)
			a.emitRel(isa.Inst{Op: op, Rt: rt, Rs: isa.RegAT}, relLo, m.sym, m.addend, n)
		default:
			return errf(n, "%s: bad memory operand", op)
		}
		return nil

	case isa.KindBranch:
		wantRegs := 1
		if op == isa.OpBEQ || op == isa.OpBNE {
			wantRegs = 2
		}
		if err := need(wantRegs + 1); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		in := isa.Inst{Op: op, Rs: rs}
		if wantRegs == 2 {
			rt, err := reg(1)
			if err != nil {
				return err
			}
			in.Rt = rt
		}
		tgt := ops[wantRegs]
		if !tgt.isSym {
			return errf(n, "%s: target must be a label", op)
		}
		a.emitRel(in, relBranch, tgt.sym, tgt.addend, n)
		return nil

	case isa.KindJump:
		if err := need(1); err != nil {
			return err
		}
		if !ops[0].isSym {
			return errf(n, "%s: target must be a label", op)
		}
		a.emitRel(isa.Inst{Op: op}, relJump, ops[0].sym, ops[0].addend, n)
		return nil

	case isa.KindJumpReg:
		if op == isa.OpJR {
			if err := need(1); err != nil {
				return err
			}
			rs, err := reg(0)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Rs: rs}, n)
			return nil
		}
		// jalr rs  |  jalr rd, rs
		switch len(ops) {
		case 1:
			rs, err := reg(0)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Rd: isa.RegRA, Rs: rs}, n)
		case 2:
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs, err := reg(1)
			if err != nil {
				return err
			}
			a.emit(isa.Inst{Op: op, Rd: rd, Rs: rs}, n)
		default:
			return errf(n, "jalr: want 1 or 2 operands")
		}
		return nil

	default: // syscall / break
		if err := need(0); err != nil {
			return err
		}
		a.emit(isa.Inst{Op: op}, n)
		return nil
	}
}
