package asm

import "testing"

func TestStripComment(t *testing.T) {
	cases := map[string]string{
		"addu $t0, $t1, $t2 # comment":   "addu $t0, $t1, $t2 ",
		"li $t0, '#'":                    "li $t0, '#'",
		`.asciiz "a # b" # real comment`: `.asciiz "a # b" `,
		"jr $ra ; alt":                   "jr $ra ",
		"no comment here":                "no comment here",
		`.asciiz "semi ; colon"`:         `.asciiz "semi ; colon"`,
	}
	for in, want := range cases {
		if got := stripComment(in); got != want {
			t.Errorf("stripComment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitArgs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"$t0, $t1, $t2", []string{"$t0", "$t1", "$t2"}},
		{"$t0, 8($sp)", []string{"$t0", "8($sp)"}},
		{"$t0, %gp(sym+4)", []string{"$t0", "%gp(sym+4)"}},
		{"$t0, ','", []string{"$t0", "','"}},
		{"single", []string{"single"}},
	}
	for _, c := range cases {
		got := splitArgs(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitArgs(%q) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitArgs(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseIntForms(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "42": 42, "-7": -7, "0x10": 16, "0xff": 255,
		"'A'": 65, `'\n'`: 10, `'\0'`: 0, `'\\'`: 92, "0b101": 5,
		"0xffffffff": 0xffffffff,
	}
	for in, want := range cases {
		got, ok := parseInt(in)
		if !ok || got != want {
			t.Errorf("parseInt(%q) = %d,%v want %d", in, got, ok, want)
		}
	}
	for _, bad := range []string{"", "abc", "'", "'ab'", "12x"} {
		if _, ok := parseInt(bad); ok {
			t.Errorf("parseInt(%q) should fail", bad)
		}
	}
}

func TestScanLabels(t *testing.T) {
	lines, err := scan("a: b: nop\nc:\n  nop\n")
	if err != nil {
		t.Fatal(err)
	}
	// a (alias line), b+nop, c, nop.
	var labels []string
	for _, ln := range lines {
		if ln.label != "" {
			labels = append(labels, ln.label)
		}
	}
	if len(labels) != 3 || labels[0] != "a" || labels[1] != "b" || labels[2] != "c" {
		t.Errorf("labels = %v", labels)
	}
}

func TestScanBadLabel(t *testing.T) {
	if _, err := scan("9bad: nop\n"); err == nil {
		t.Error("numeric-leading label should fail")
	}
}

func TestValidSymbol(t *testing.T) {
	good := []string{"a", "_x", "foo.bar", "L1", ".L9", "$tmp"}
	for _, s := range good {
		if !validSymbol(s) {
			t.Errorf("validSymbol(%q) = false", s)
		}
	}
	bad := []string{"", "1x", "a-b", "a b"}
	for _, s := range bad {
		if validSymbol(s) {
			t.Errorf("validSymbol(%q) = true", s)
		}
	}
}

func TestDecodeStringEscapes(t *testing.T) {
	got, err := decodeString(`"a\tb\nc\0d\"e"`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "a\tb\nc\x00d\"e" {
		t.Errorf("decoded = %q", got)
	}
	for _, bad := range []string{`"unterminated`, `"bad \q escape"`, `noquotes`} {
		if _, err := decodeString(bad); err == nil {
			t.Errorf("decodeString(%q) should fail", bad)
		}
	}
}
