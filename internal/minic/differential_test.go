package minic_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/minic"
)

// Differential property test: random expression trees are evaluated
// both by a Go reference evaluator (with C int32 semantics) and by
// compiling a MiniC program and running it on the simulator. The exit
// codes must agree.

// exprNode is a tiny reference AST.
type exprNode struct {
	op   string // "" for leaves
	v    int32  // constant leaf
	vref int    // variable leaf index, -1 if constant
	l, r *exprNode
}

// genExpr builds a random expression. Divisors are forced to nonzero
// constants so / and % are well defined in both worlds.
func genExpr(r *rand.Rand, depth int) *exprNode {
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return &exprNode{vref: -1, v: int32(r.Intn(2001) - 1000)}
		}
		return &exprNode{vref: r.Intn(4)}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>", "<", ">", "==", "!=", "/", "%"}
	op := ops[r.Intn(len(ops))]
	n := &exprNode{op: op, vref: -1}
	n.l = genExpr(r, depth-1)
	switch op {
	case "/", "%":
		d := int32(r.Intn(99) + 1)
		if r.Intn(2) == 0 {
			d = -d
		}
		n.r = &exprNode{vref: -1, v: d}
	case "<<", ">>":
		n.r = &exprNode{vref: -1, v: int32(r.Intn(31))}
	default:
		n.r = genExpr(r, depth-1)
	}
	return n
}

// eval computes the expression with C semantics.
func eval(n *exprNode, vars [4]int32) int32 {
	if n.op == "" {
		if n.vref >= 0 {
			return vars[n.vref]
		}
		return n.v
	}
	a, b := eval(n.l, vars), eval(n.r, vars)
	switch n.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		return a / b
	case "%":
		return a % b
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	case "<<":
		return a << uint32(b)
	case ">>":
		return a >> uint32(b)
	case "<":
		return b2i(a < b)
	case ">":
		return b2i(a > b)
	case "==":
		return b2i(a == b)
	case "!=":
		return b2i(a != b)
	}
	panic("op")
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// render emits MiniC source for the expression.
func render(n *exprNode, b *strings.Builder) {
	if n.op == "" {
		if n.vref >= 0 {
			fmt.Fprintf(b, "v%d", n.vref)
		} else if n.v < 0 {
			fmt.Fprintf(b, "(%d)", n.v)
		} else {
			fmt.Fprintf(b, "%d", n.v)
		}
		return
	}
	b.WriteByte('(')
	render(n.l, b)
	fmt.Fprintf(b, " %s ", n.op)
	render(n.r, b)
	b.WriteByte(')')
}

func TestDifferentialExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 60; trial++ {
		vars := [4]int32{}
		for i := range vars {
			vars[i] = int32(r.Intn(20001) - 10000)
		}
		n := genExpr(r, 4)
		want := eval(n, vars)

		var b strings.Builder
		b.WriteString("int main() {\n")
		for i, v := range vars {
			fmt.Fprintf(&b, "\tint v%d;\n\tv%d = %d;\n", i, i, v)
		}
		b.WriteString("\treturn ")
		render(n, &b)
		b.WriteString(";\n}\n")
		src := b.String()

		im, err := minic.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		m := cpu.New(im, nil)
		if _, err := m.Run(1_000_000); err != nil {
			t.Fatalf("trial %d: run: %v\n%s", trial, err, src)
		}
		if m.ExitCode != want {
			t.Fatalf("trial %d: got %d, want %d\n%s", trial, m.ExitCode, want, src)
		}
	}
}

// TestDifferentialStatements exercises control flow: random chains of
// assignments and conditionals against a Go interpreter.
func TestDifferentialStatements(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		vars := [4]int32{1, 2, 3, 4}
		var b strings.Builder
		b.WriteString("int main() {\n\tint v0; int v1; int v2; int v3;\n")
		b.WriteString("\tv0 = 1; v1 = 2; v2 = 3; v3 = 4;\n")
		for s := 0; s < 12; s++ {
			dst := r.Intn(4)
			n := genExpr(r, 2)
			val := eval(n, vars)
			if r.Intn(3) == 0 {
				// Conditional assignment.
				cond := genExpr(r, 2)
				cv := eval(cond, vars)
				var cb, eb strings.Builder
				render(cond, &cb)
				render(n, &eb)
				fmt.Fprintf(&b, "\tif (%s) { v%d = %s; }\n", cb.String(), dst, eb.String())
				if cv != 0 {
					vars[dst] = val
				}
			} else {
				var eb strings.Builder
				render(n, &eb)
				fmt.Fprintf(&b, "\tv%d = %s;\n", dst, eb.String())
				vars[dst] = val
			}
		}
		want := vars[0] ^ vars[1] ^ vars[2] ^ vars[3]
		b.WriteString("\treturn v0 ^ v1 ^ v2 ^ v3;\n}\n")
		src := b.String()

		im, err := minic.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		m := cpu.New(im, nil)
		if _, err := m.Run(1_000_000); err != nil {
			t.Fatalf("trial %d: run: %v\n%s", trial, err, src)
		}
		if m.ExitCode != want {
			t.Fatalf("trial %d: got %d, want %d\n%s", trial, m.ExitCode, want, src)
		}
	}
}
