package minic

// The AST. Expressions carry their resolved type after sema runs
// (parser and sema are fused in this compiler: types are resolved
// during parsing since MiniC requires declaration before use).

// exprOp enumerates expression node kinds.
type exprOp uint8

const (
	exConst   exprOp = iota // integer literal (val)
	exString                // string literal (str); type char*
	exVar                   // variable reference (sym)
	exBinary                // binary op (op, lhs, rhs)
	exAssign                // lhs = rhs (plain; compound ops desugared)
	exCond                  // cond ? lhs : rhs
	exLogAnd                // lhs && rhs
	exLogOr                 // lhs || rhs
	exNeg                   // -x
	exNot                   // !x
	exBitNot                // ~x
	exDeref                 // *p
	exAddr                  // &lv
	exIndex                 // base[idx] -> lhs[rhs]
	exMember                // lhs.field (field resolved to off/type)
	exCall                  // fn(args)
	exBuiltin               // builtin call (syscall wrappers)
	exIncDec                // ++/-- pre/post (lhs is lvalue)
	exComma                 // lhs, rhs
)

// expr is an expression node.
type expr struct {
	op   exprOp
	ty   *ctype
	line int

	val int64  // exConst
	str string // exString: decoded bytes; exBinary/exIncDec: operator text

	lhs, rhs *expr
	cond     *expr // exCond

	sym  *symbol // exVar
	off  int     // exMember: field offset
	args []*expr // exCall/exBuiltin
	fn   *funcDecl
	bi   builtinID // exBuiltin

	post bool // exIncDec: postfix
	dec  bool // exIncDec: decrement
}

// builtinID enumerates syscall-backed builtins.
type builtinID uint8

const (
	biNone builtinID = iota
	biPutchar
	biGetchar
	biPrintInt
	biPrintStr
	biSbrk
	biExit
	biReadBlock
)

var builtinNames = map[string]builtinID{
	"putchar":    biPutchar,
	"getchar":    biGetchar,
	"print_int":  biPrintInt,
	"print_str":  biPrintStr,
	"sbrk":       biSbrk,
	"exit":       biExit,
	"read_block": biReadBlock,
}

// stmtOp enumerates statement node kinds.
type stmtOp uint8

const (
	stExpr stmtOp = iota
	stDecl
	stIf
	stWhile
	stDoWhile
	stFor
	stReturn
	stBreak
	stContinue
	stBlock
	stSwitch
)

// stmt is a statement node.
type stmt struct {
	op   stmtOp
	line int

	ex   *expr // stExpr, stReturn value, condition for if/while/do
	init *stmt // stFor init
	post *expr // stFor post
	body *stmt
	alt  *stmt // stIf else
	list []*stmt

	sym    *symbol // stDecl
	dinit  *expr   // stDecl initializer
	cases  []switchCase
	defalt []*stmt // switch default body
}

type switchCase struct {
	val  int64
	body []*stmt
}

// symKind enumerates symbol kinds.
type symKind uint8

const (
	symGlobal symKind = iota
	symLocal
	symParam
	symEnumConst
)

// symbol is a declared name.
type symbol struct {
	name string
	kind symKind
	ty   *ctype

	// Globals.
	label     string // assembler symbol
	initVals  []initVal
	hasInit   bool
	addrTaken bool

	// Locals and params.
	idx      int // declaration order within the function
	paramIdx int // for symParam
	nrefs    int // reference count (drives s-register allocation)
	reg      int // allocated register, -1 if in memory
	frameOff int // stack slot offset from $sp (valid when reg < 0)
	enumVal  int64
}

// initVal is one element of a global initializer: either a constant or
// the address of another symbol / string literal.
type initVal struct {
	val   int64
	sym   string // non-empty: address of this assembler symbol
	isStr bool
}

// funcDecl is one function.
type funcDecl struct {
	name    string
	ret     *ctype
	params  []*symbol
	locals  []*symbol // includes params
	body    *stmt
	line    int
	defined bool

	// Codegen results.
	frameSize  int
	usesCalls  bool
	maxOutArgs int
	savedRegs  []int
}

// unit is a parsed translation unit.
type unit struct {
	globals []*symbol
	funcs   []*funcDecl
	strings map[string]string // literal -> label
	strOrd  []string          // emission order
}
