// Package minic implements a compiler for MiniC — a small C subset —
// targeting the MIPS-I-like ISA in internal/isa via the assembler in
// internal/asm.
//
// MiniC exists so the workload analogs (internal/workloads) are real
// compiled programs with the structural properties the paper measures:
// o32-style calling conventions with prologue/epilogue, $gp-relative
// and lui/addiu global addressing, stack frames, and the usual loop
// and addressing overhead of compiled C.
//
// Language summary:
//
//	types:      int, char (unsigned byte), void, T*, T[N], struct S
//	decls:      globals (with constant initializers), locals, enums
//	statements: if/else, while, for, do-while, switch, break,
//	            continue, return, blocks, expression statements
//	exprs:      full C operator set (assignment, ?:, ||, &&, bitwise,
//	            comparison, shifts, arithmetic, unary, ++/--, calls,
//	            indexing, ->, ., casts omitted), sizeof
//	builtins:   putchar getchar print_int print_str sbrk exit
//	            read_block (map to syscalls)
package minic

import "fmt"

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct   // operators and punctuation
	tokKeyword // reserved words
)

// token is one lexical token.
type token struct {
	kind tokKind
	text string // identifier, punctuation, or keyword spelling
	num  int64  // value for tokNumber and tokChar
	str  string // decoded value for tokString
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNumber:
		return fmt.Sprintf("%d", t.num)
	case tokString:
		return fmt.Sprintf("%q", t.str)
	case tokChar:
		return fmt.Sprintf("%q", rune(t.num))
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true, "struct": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
	"enum": true, "switch": true, "case": true, "default": true,
}

// punctuators, longest first so the lexer can use greedy matching.
var punctuators = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ",", ";", ":", "?", ".",
}
