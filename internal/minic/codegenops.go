package minic

import (
	"repro/internal/isa"
)

// genBinary lowers arithmetic, bitwise, shift, and comparison ops,
// including pointer arithmetic scaling and immediate-form selection.
func (cg *codegen) genBinary(e *expr) (value, error) {
	op := e.str
	switch op {
	case "==", "!=", "<", ">", "<=", ">=":
		return cg.genCompare(e)
	}

	lt, rt := decay(e.lhs.ty), decay(e.rhs.ty)

	// Pointer arithmetic.
	if op == "+" || op == "-" {
		switch {
		case lt.kind == tyPtr && rt.isArith():
			return cg.genPtrOffset(e, e.lhs, e.rhs, lt.elem.size(), op == "-")
		case op == "+" && lt.isArith() && rt.kind == tyPtr:
			return cg.genPtrOffset(e, e.rhs, e.lhs, rt.elem.size(), false)
		case op == "-" && lt.kind == tyPtr && rt.kind == tyPtr:
			return cg.genPtrDiff(e, lt.elem.size())
		}
	}

	lv, err := cg.genExpr(e.lhs)
	if err != nil {
		return value{}, err
	}

	// Immediate forms.
	if c, ok := constVal(e.rhs); ok {
		if v, handled, err := cg.binImm(op, lv, c, e.line); handled {
			return v, err
		}
	}

	rv, err := cg.genExpr(e.rhs)
	if err != nil {
		return value{}, err
	}
	return cg.binReg(op, lv, rv, e.line)
}

// binImm emits an immediate-form binary op when one exists for (op, c).
func (cg *codegen) binImm(op string, lv value, c int64, line int) (value, bool, error) {
	emit2 := func(mnem string, imm int64) (value, bool, error) {
		out, err := cg.own(lv, line)
		if err != nil {
			return value{}, true, err
		}
		cg.emitf("%s %s, %s, %d", mnem, isa.RegName(out.reg), isa.RegName(out.reg), imm)
		return out, true, nil
	}
	switch op {
	case "+":
		if c >= -32768 && c <= 32767 {
			return emit2("addiu", c)
		}
	case "-":
		if c >= -32767 && c <= 32768 {
			return emit2("addiu", -c)
		}
	case "&":
		if c >= 0 && c <= 0xffff {
			return emit2("andi", c)
		}
	case "|":
		if c >= 0 && c <= 0xffff {
			return emit2("ori", c)
		}
	case "^":
		if c >= 0 && c <= 0xffff {
			return emit2("xori", c)
		}
	case "<<":
		if c >= 0 && c <= 31 {
			return emit2("sll", c)
		}
	case ">>":
		if c >= 0 && c <= 31 {
			return emit2("sra", c)
		}
	case "*":
		if sh := log2(int(c)); sh >= 0 {
			return emit2("sll", int64(sh))
		}
	}
	return value{}, false, nil
}

func (cg *codegen) binReg(op string, lv, rv value, line int) (value, error) {
	out, err := cg.own(lv, line)
	if err != nil {
		return value{}, err
	}
	o, r := isa.RegName(out.reg), isa.RegName(rv.reg)
	switch op {
	case "+":
		cg.emitf("addu %s, %s, %s", o, o, r)
	case "-":
		cg.emitf("subu %s, %s, %s", o, o, r)
	case "*":
		cg.emitf("mult %s, %s", o, r)
		cg.emitf("mflo %s", o)
	case "/":
		cg.emitf("div %s, %s", o, r)
		cg.emitf("mflo %s", o)
	case "%":
		cg.emitf("div %s, %s", o, r)
		cg.emitf("mfhi %s", o)
	case "&":
		cg.emitf("and %s, %s, %s", o, o, r)
	case "|":
		cg.emitf("or %s, %s, %s", o, o, r)
	case "^":
		cg.emitf("xor %s, %s, %s", o, o, r)
	case "<<":
		cg.emitf("sllv %s, %s, %s", o, o, r)
	case ">>":
		cg.emitf("srav %s, %s, %s", o, o, r)
	default:
		return value{}, errAt(line, "internal: bad binary op %q", op)
	}
	cg.release(rv)
	return out, nil
}

// genPtrOffset lowers ptr ± int with element scaling.
func (cg *codegen) genPtrOffset(e *expr, ptr, idx *expr, size int, sub bool) (value, error) {
	pv, err := cg.genExpr(ptr)
	if err != nil {
		return value{}, err
	}
	if c, ok := constVal(idx); ok {
		off := c * int64(size)
		if sub {
			off = -off
		}
		if off >= -32768 && off <= 32767 {
			out, err := cg.own(pv, e.line)
			if err != nil {
				return value{}, err
			}
			if off != 0 {
				cg.emitf("addiu %s, %s, %d", isa.RegName(out.reg), isa.RegName(out.reg), off)
			}
			return out, nil
		}
	}
	iv, err := cg.genExpr(idx)
	if err != nil {
		return value{}, err
	}
	sv, err := cg.scale(iv, size, e.line)
	if err != nil {
		return value{}, err
	}
	out, err := cg.own(pv, e.line)
	if err != nil {
		return value{}, err
	}
	mnem := "addu"
	if sub {
		mnem = "subu"
	}
	cg.emitf("%s %s, %s, %s", mnem, isa.RegName(out.reg), isa.RegName(out.reg), isa.RegName(sv.reg))
	cg.release(sv)
	return out, nil
}

// genPtrDiff lowers ptr - ptr (element count).
func (cg *codegen) genPtrDiff(e *expr, size int) (value, error) {
	lv, err := cg.genExpr(e.lhs)
	if err != nil {
		return value{}, err
	}
	rv, err := cg.genExpr(e.rhs)
	if err != nil {
		return value{}, err
	}
	out, err := cg.own(lv, e.line)
	if err != nil {
		return value{}, err
	}
	cg.emitf("subu %s, %s, %s", isa.RegName(out.reg), isa.RegName(out.reg), isa.RegName(rv.reg))
	cg.release(rv)
	if size > 1 {
		if sh := log2(size); sh >= 0 {
			cg.emitf("sra %s, %s, %d", isa.RegName(out.reg), isa.RegName(out.reg), sh)
		} else {
			t, err := cg.alloc(e.line)
			if err != nil {
				return value{}, err
			}
			cg.emitf("li %s, %d", isa.RegName(t), size)
			cg.emitf("div %s, %s", isa.RegName(out.reg), isa.RegName(t))
			cg.emitf("mflo %s", isa.RegName(out.reg))
			cg.freeTemp(t)
		}
	}
	return out, nil
}

// genCompare lowers relational and equality operators to slt/sltu
// sequences. Pointer comparisons are unsigned.
func (cg *codegen) genCompare(e *expr) (value, error) {
	op := e.str
	unsigned := decay(e.lhs.ty).kind == tyPtr || decay(e.rhs.ty).kind == tyPtr
	slt, slti := "slt", "slti"
	if unsigned {
		slt, slti = "sltu", "sltiu"
	}

	lv, err := cg.genExpr(e.lhs)
	if err != nil {
		return value{}, err
	}

	// x == 0 / x != 0 with constant zero rhs.
	if c, ok := constVal(e.rhs); ok && c == 0 && (op == "==" || op == "!=") {
		out, err := cg.own(lv, e.line)
		if err != nil {
			return value{}, err
		}
		if op == "==" {
			cg.emitf("sltiu %s, %s, 1", isa.RegName(out.reg), isa.RegName(out.reg))
		} else {
			cg.emitf("sltu %s, $zero, %s", isa.RegName(out.reg), isa.RegName(out.reg))
		}
		return out, nil
	}
	// x < c with immediate.
	if c, ok := constVal(e.rhs); ok && op == "<" && c >= -32768 && c <= 32767 {
		out, err := cg.own(lv, e.line)
		if err != nil {
			return value{}, err
		}
		cg.emitf("%s %s, %s, %d", slti, isa.RegName(out.reg), isa.RegName(out.reg), c)
		return out, nil
	}

	rv, err := cg.genExpr(e.rhs)
	if err != nil {
		return value{}, err
	}
	out, err := cg.own(lv, e.line)
	if err != nil {
		return value{}, err
	}
	o, r := isa.RegName(out.reg), isa.RegName(rv.reg)
	switch op {
	case "==":
		cg.emitf("subu %s, %s, %s", o, o, r)
		cg.emitf("sltiu %s, %s, 1", o, o)
	case "!=":
		cg.emitf("subu %s, %s, %s", o, o, r)
		cg.emitf("sltu %s, $zero, %s", o, o)
	case "<":
		cg.emitf("%s %s, %s, %s", slt, o, o, r)
	case ">":
		cg.emitf("%s %s, %s, %s", slt, o, r, o)
	case "<=":
		cg.emitf("%s %s, %s, %s", slt, o, r, o)
		cg.emitf("xori %s, %s, 1", o, o)
	case ">=":
		cg.emitf("%s %s, %s, %s", slt, o, o, r)
		cg.emitf("xori %s, %s, 1", o, o)
	}
	cg.release(rv)
	return out, nil
}

// genAssign lowers plain and compound assignment, yielding the stored
// value.
func (cg *codegen) genAssign(e *expr) (value, error) {
	lhs := e.lhs
	isChar := lhs.ty.kind == tyChar

	// Register-resident scalar local.
	if lhs.op == exVar && lhs.sym.reg >= 0 {
		sreg := lhs.sym.reg
		var nv value
		var err error
		if e.str == "" {
			nv, err = cg.genExpr(e.rhs)
			if err != nil {
				return value{}, err
			}
			if isChar {
				cg.emitf("andi %s, %s, 255", isa.RegName(sreg), isa.RegName(nv.reg))
			} else {
				cg.emitf("move %s, %s", isa.RegName(sreg), isa.RegName(nv.reg))
			}
			cg.release(nv)
			return value{reg: sreg}, nil
		}
		// Compound: sreg = sreg op rhs.
		nv, err = cg.applyBinary(e.str, value{reg: sreg}, e.rhs, lhs.ty, e.line)
		if err != nil {
			return value{}, err
		}
		if isChar {
			cg.emitf("andi %s, %s, 255", isa.RegName(sreg), isa.RegName(nv.reg))
		} else {
			cg.emitf("move %s, %s", isa.RegName(sreg), isa.RegName(nv.reg))
		}
		cg.release(nv)
		return value{reg: sreg}, nil
	}

	// Memory-resident lvalue.
	a, err := cg.computeAddr(lhs)
	if err != nil {
		return value{}, err
	}
	if e.str == "" {
		rv, err := cg.genExpr(e.rhs)
		if err != nil {
			return value{}, err
		}
		cg.storeTo(lhs.ty, rv.reg, &a)
		cg.releaseAddr(a)
		if isChar {
			out, err := cg.own(rv, e.line)
			if err != nil {
				return value{}, err
			}
			cg.emitf("andi %s, %s, 255", isa.RegName(out.reg), isa.RegName(out.reg))
			return out, nil
		}
		return rv, nil
	}
	// Compound: load, apply, store.
	t, err := cg.alloc(e.line)
	if err != nil {
		return value{}, err
	}
	cg.loadFrom(lhs.ty, t, &a)
	nv, err := cg.applyBinary(e.str, value{reg: t, owned: true}, e.rhs, lhs.ty, e.line)
	if err != nil {
		return value{}, err
	}
	cg.storeTo(lhs.ty, nv.reg, &a)
	cg.releaseAddr(a)
	if isChar {
		out, err := cg.own(nv, e.line)
		if err != nil {
			return value{}, err
		}
		cg.emitf("andi %s, %s, 255", isa.RegName(out.reg), isa.RegName(out.reg))
		return out, nil
	}
	return nv, nil
}

// applyBinary computes cur op rhs where cur already holds the left
// value; used by compound assignment. Pointer compound ops (p += n)
// scale.
func (cg *codegen) applyBinary(op string, cur value, rhs *expr, lty *ctype, line int) (value, error) {
	if decay(lty).kind == tyPtr && (op == "+" || op == "-") {
		return cg.genPtrOffsetVal(cur, rhs, decay(lty).elem.size(), op == "-", line)
	}
	if c, ok := constVal(rhs); ok {
		if v, handled, err := cg.binImm(op, cur, c, line); handled {
			return v, err
		}
	}
	rv, err := cg.genExpr(rhs)
	if err != nil {
		return value{}, err
	}
	return cg.binReg(op, cur, rv, line)
}

func (cg *codegen) genPtrOffsetVal(cur value, idx *expr, size int, sub bool, line int) (value, error) {
	if c, ok := constVal(idx); ok {
		off := c * int64(size)
		if sub {
			off = -off
		}
		if off >= -32768 && off <= 32767 {
			out, err := cg.own(cur, line)
			if err != nil {
				return value{}, err
			}
			cg.emitf("addiu %s, %s, %d", isa.RegName(out.reg), isa.RegName(out.reg), off)
			return out, nil
		}
	}
	iv, err := cg.genExpr(idx)
	if err != nil {
		return value{}, err
	}
	sv, err := cg.scale(iv, size, line)
	if err != nil {
		return value{}, err
	}
	out, err := cg.own(cur, line)
	if err != nil {
		return value{}, err
	}
	mnem := "addu"
	if sub {
		mnem = "subu"
	}
	cg.emitf("%s %s, %s, %s", mnem, isa.RegName(out.reg), isa.RegName(out.reg), isa.RegName(sv.reg))
	cg.release(sv)
	return out, nil
}

// genIncDec lowers ++/-- (pre and post).
func (cg *codegen) genIncDec(e *expr) (value, error) {
	delta := int64(1)
	if t := decay(e.lhs.ty); t.kind == tyPtr {
		delta = int64(t.elem.size())
	}
	if e.dec {
		delta = -delta
	}
	isChar := e.lhs.ty.kind == tyChar

	// Register local fast path.
	if e.lhs.op == exVar && e.lhs.sym.reg >= 0 {
		sreg := e.lhs.sym.reg
		var old value
		if e.post {
			t, err := cg.alloc(e.line)
			if err != nil {
				return value{}, err
			}
			cg.emitf("move %s, %s", isa.RegName(t), isa.RegName(sreg))
			old = value{reg: t, owned: true}
		}
		cg.emitf("addiu %s, %s, %d", isa.RegName(sreg), isa.RegName(sreg), delta)
		if isChar {
			cg.emitf("andi %s, %s, 255", isa.RegName(sreg), isa.RegName(sreg))
		}
		if e.post {
			return old, nil
		}
		return value{reg: sreg}, nil
	}

	a, err := cg.computeAddr(e.lhs)
	if err != nil {
		return value{}, err
	}
	t, err := cg.alloc(e.line)
	if err != nil {
		return value{}, err
	}
	cg.loadFrom(e.lhs.ty, t, &a)
	var result value
	if e.post {
		old, err := cg.alloc(e.line)
		if err != nil {
			return value{}, err
		}
		cg.emitf("move %s, %s", isa.RegName(old), isa.RegName(t))
		result = value{reg: old, owned: true}
	}
	cg.emitf("addiu %s, %s, %d", isa.RegName(t), isa.RegName(t), delta)
	if isChar {
		cg.emitf("andi %s, %s, 255", isa.RegName(t), isa.RegName(t))
	}
	cg.storeTo(e.lhs.ty, t, &a)
	cg.releaseAddr(a)
	if e.post {
		cg.freeTemp(t)
		return result, nil
	}
	return value{reg: t, owned: true}, nil
}

// calls

var argRegs = [...]int{isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3}

func (cg *codegen) genCall(e *expr) (value, error) {
	// Evaluate every argument into a held register first (outgoing
	// slots and $a registers may be clobbered by nested calls).
	vals := make([]value, len(e.args))
	for i, arg := range e.args {
		v, err := cg.genExpr(arg)
		if err != nil {
			return value{}, err
		}
		vals[i] = v
	}
	// Stack args.
	for i := 4; i < len(vals); i++ {
		cg.emitf("sw %s, %d($sp)", isa.RegName(vals[i].reg), 4*i)
	}
	// Register args.
	for i := 0; i < len(vals) && i < 4; i++ {
		cg.emitf("move %s, %s", isa.RegName(argRegs[i]), isa.RegName(vals[i].reg))
	}
	for _, v := range vals {
		cg.release(v)
	}
	spilled := cg.spillLive()
	cg.emitf("jal %s", e.fn.name)
	cg.reload(spilled)
	if e.fn.ret.kind == tyVoid {
		return zeroValue, nil
	}
	t, err := cg.alloc(e.line)
	if err != nil {
		return value{}, err
	}
	cg.emitf("move %s, $v0", isa.RegName(t))
	return value{reg: t, owned: true}, nil
}

var builtinSysNum = map[builtinID]int{
	biPutchar: 11, biGetchar: 12, biPrintInt: 1, biPrintStr: 4,
	biSbrk: 9, biExit: 10, biReadBlock: 13,
}

func (cg *codegen) genBuiltin(e *expr) (value, error) {
	vals := make([]value, len(e.args))
	for i, arg := range e.args {
		v, err := cg.genExpr(arg)
		if err != nil {
			return value{}, err
		}
		vals[i] = v
	}
	for i, v := range vals {
		cg.emitf("move %s, %s", isa.RegName(argRegs[i]), isa.RegName(v.reg))
		cg.release(v)
	}
	cg.emitf("li $v0, %d", builtinSysNum[e.bi])
	cg.emitf("syscall")
	if e.ty.kind == tyVoid {
		return zeroValue, nil
	}
	t, err := cg.alloc(e.line)
	if err != nil {
		return value{}, err
	}
	cg.emitf("move %s, $v0", isa.RegName(t))
	return value{reg: t, owned: true}, nil
}

// conditional branches

// genBranchFalse branches to lbl when e evaluates to zero.
func (cg *codegen) genBranchFalse(e *expr, lbl string) error {
	return cg.genCondBranch(e, lbl, false)
}

// genBranchTrue branches to lbl when e evaluates to nonzero.
func (cg *codegen) genBranchTrue(e *expr, lbl string) error {
	return cg.genCondBranch(e, lbl, true)
}

func (cg *codegen) genCondBranch(e *expr, lbl string, wantTrue bool) error {
	switch e.op {
	case exConst:
		if (e.val != 0) == wantTrue {
			cg.emitf("j %s", lbl)
		}
		return nil
	case exNot:
		return cg.genCondBranch(e.lhs, lbl, !wantTrue)
	case exLogAnd:
		if !wantTrue {
			if err := cg.genCondBranch(e.lhs, lbl, false); err != nil {
				return err
			}
			return cg.genCondBranch(e.rhs, lbl, false)
		}
		skip := cg.newLabel()
		if err := cg.genCondBranch(e.lhs, skip, false); err != nil {
			return err
		}
		if err := cg.genCondBranch(e.rhs, lbl, true); err != nil {
			return err
		}
		cg.emitf("%s:", skip)
		return nil
	case exLogOr:
		if wantTrue {
			if err := cg.genCondBranch(e.lhs, lbl, true); err != nil {
				return err
			}
			return cg.genCondBranch(e.rhs, lbl, true)
		}
		skip := cg.newLabel()
		if err := cg.genCondBranch(e.lhs, skip, true); err != nil {
			return err
		}
		if err := cg.genCondBranch(e.rhs, lbl, false); err != nil {
			return err
		}
		cg.emitf("%s:", skip)
		return nil
	case exBinary:
		if e.str == "==" || e.str == "!=" {
			lv, err := cg.genExpr(e.lhs)
			if err != nil {
				return err
			}
			rv, err := cg.genExpr(e.rhs)
			if err != nil {
				return err
			}
			eq := e.str == "=="
			mnem := "bne" // branch when condition is false for ==
			if eq == wantTrue {
				mnem = "beq"
			}
			cg.emitf("%s %s, %s, %s", mnem, isa.RegName(lv.reg), isa.RegName(rv.reg), lbl)
			cg.release(rv)
			cg.release(lv)
			return nil
		}
	}
	// General case: evaluate to a register and test against zero.
	v, err := cg.genExpr(e)
	if err != nil {
		return err
	}
	mnem := "beq"
	if wantTrue {
		mnem = "bne"
	}
	cg.emitf("%s %s, $zero, %s", mnem, isa.RegName(v.reg), lbl)
	cg.release(v)
	return nil
}
