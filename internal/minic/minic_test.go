package minic_test

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/minic"
)

// runProg compiles and runs src, returning the machine.
func runProg(t *testing.T, src, input string) *cpu.Machine {
	t.Helper()
	im, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := cpu.New(im, []byte(input))
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !m.Halted {
		t.Fatal("program did not finish")
	}
	return m
}

// expectExit compiles, runs, and checks main's return value.
func expectExit(t *testing.T, src string, want int32) {
	t.Helper()
	m := runProg(t, src, "")
	if m.ExitCode != want {
		t.Errorf("exit = %d, want %d", m.ExitCode, want)
	}
}

func expectOutput(t *testing.T, src, input, want string) {
	t.Helper()
	m := runProg(t, src, input)
	if got := m.Output.String(); got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestReturnConstant(t *testing.T) {
	expectExit(t, `int main() { return 42; }`, 42)
}

func TestArithmetic(t *testing.T) {
	expectExit(t, `int main() { return (3 + 4) * 5 - 100 / 7 % 3; }`, 35-14%3)
	expectExit(t, `int main() { int a; a = 10; return a * a - a / 2; }`, 95)
	expectExit(t, `int main() { return -7 + 10; }`, 3)
	expectExit(t, `int main() { return 1 << 10 | 15 & 12 ^ 5; }`, 1<<10|15&12^5)
	expectExit(t, `int main() { return ~0 + 2; }`, 1)
	expectExit(t, `int main() { int x; x = -40; return x / 8 + x % 7; }`, -40/8+-40%7)
	expectExit(t, `int main() { int x; x = -64; return x >> 3; }`, -8)
}

func TestComparisons(t *testing.T) {
	expectExit(t, `int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (4 == 4) + (4 != 4); }`, 4)
	expectExit(t, `int main() { int a; a = -5; return (a < 3) + (a > 3) * 10; }`, 1)
}

func TestLogicalOps(t *testing.T) {
	expectExit(t, `int main() { return (1 && 2) + (0 && 1) * 10 + (0 || 3) + (0 || 0) * 10; }`, 2)
	// Short circuit: divide by zero must not execute.
	expectExit(t, `
int boom(int x) { return 1 / x; }
int main() { int z; z = 0; if (z != 0 && boom(z)) { return 1; } return 7; }`, 7)
	expectExit(t, `
int count;
int bump() { count = count + 1; return 1; }
int main() { int r; r = bump() || bump(); return count * 10 + r; }`, 11)
}

func TestTernaryAndNot(t *testing.T) {
	expectExit(t, `int main() { int a; a = 5; return a > 3 ? 11 : 22; }`, 11)
	expectExit(t, `int main() { int a; a = 1; return !a + !!a * 2; }`, 2)
	expectExit(t, `int main() { return (3 ? 1 : 9) + (0 ? 9 : 2); }`, 3)
}

func TestWhileLoop(t *testing.T) {
	expectExit(t, `
int main() {
	int sum; int i;
	sum = 0;
	i = 1;
	while (i <= 100) { sum += i; i++; }
	return sum;
}`, 5050)
}

func TestForLoop(t *testing.T) {
	expectExit(t, `
int main() {
	int sum;
	sum = 0;
	for (int i = 0; i < 10; i++) { sum += i * i; }
	return sum;
}`, 285)
}

func TestDoWhile(t *testing.T) {
	expectExit(t, `
int main() {
	int n; int c;
	n = 1; c = 0;
	do { n = n * 2; c++; } while (n < 100);
	return n + c;
}`, 128+7)
}

func TestBreakContinue(t *testing.T) {
	expectExit(t, `
int main() {
	int sum;
	sum = 0;
	for (int i = 0; i < 100; i++) {
		if (i % 2 == 0) { continue; }
		if (i > 10) { break; }
		sum += i;
	}
	return sum;
}`, 1+3+5+7+9)
}

func TestNestedLoops(t *testing.T) {
	expectExit(t, `
int main() {
	int c;
	c = 0;
	for (int i = 0; i < 5; i++) {
		for (int j = 0; j < 5; j++) {
			if (j == 3) { break; }
			c++;
		}
	}
	return c;
}`, 15)
}

func TestSwitch(t *testing.T) {
	expectExit(t, `
int classify(int x) {
	switch (x) {
	case 0: return 100;
	case 1:
	case 2: return 200;
	case 5: x = x + 1; /* fall through */
	case 6: return x;
	default: return -1;
	}
}
int main() {
	return classify(0) + classify(1) + classify(2) + classify(5) + classify(6) + classify(9);
}`, 100+200+200+6+6-1)
}

func TestFunctionsAndRecursion(t *testing.T) {
	expectExit(t, `
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }`, 610)
}

func TestManyArgs(t *testing.T) {
	expectExit(t, `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
	return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
}
int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }`, 1+4+9+16+25+36+49+64)
}

func TestGlobals(t *testing.T) {
	expectExit(t, `
int counter = 10;
int table[4] = {1, 2, 3, 4};
int bss_arr[8];
int main() {
	counter += 5;
	bss_arr[3] = table[2] * counter;
	return bss_arr[3] + bss_arr[0];
}`, 45)
}

func TestPointers(t *testing.T) {
	expectExit(t, `
int main() {
	int x; int *p;
	x = 10;
	p = &x;
	*p = *p + 32;
	return x;
}`, 42)
	expectExit(t, `
void bump(int *p) { *p = *p + 1; }
int main() {
	int v;
	v = 41;
	bump(&v);
	return v;
}`, 42)
}

func TestPointerArithmetic(t *testing.T) {
	expectExit(t, `
int arr[5] = {10, 20, 30, 40, 50};
int main() {
	int *p; int *q;
	p = arr;
	q = p + 3;
	return *q - *(p + 1) + (q - p);
}`, 40-20+3)
}

func TestArrays(t *testing.T) {
	expectExit(t, `
int main() {
	int a[10];
	int i; int sum;
	for (i = 0; i < 10; i++) { a[i] = i * i; }
	sum = 0;
	for (i = 0; i < 10; i++) { sum += a[i]; }
	return sum;
}`, 285)
}

func TestTwoDimensionalArrays(t *testing.T) {
	expectExit(t, `
int grid[3][4];
int main() {
	int i; int j; int sum;
	for (i = 0; i < 3; i++) {
		for (j = 0; j < 4; j++) { grid[i][j] = i * 10 + j; }
	}
	sum = 0;
	for (i = 0; i < 3; i++) {
		for (j = 0; j < 4; j++) { sum += grid[i][j]; }
	}
	return sum;
}`, 0+1+2+3+10+11+12+13+20+21+22+23)
}

func TestChars(t *testing.T) {
	expectExit(t, `
int main() {
	char c;
	c = 'A';
	c = c + 1;
	return c;
}`, 'B')
	// char wraps at 256
	expectExit(t, `
int main() {
	char c;
	c = 250;
	c = c + 10;
	return c;
}`, 4)
}

func TestStrings(t *testing.T) {
	expectExit(t, `
int main() {
	char *s;
	s = "hello";
	return strlen(s) + s[1];
}`, 5+'e')
	expectOutput(t, `
int main() {
	puts("hi there");
	return 0;
}`, "", "hi there\n")
}

func TestCharArrayGlobalInit(t *testing.T) {
	expectExit(t, `
char buf[] = "abc";
int main() { return strlen(buf) + buf[0]; }`, 3+'a')
}

func TestStructs(t *testing.T) {
	expectExit(t, `
struct point { int x; int y; };
struct point origin;
int main() {
	struct point p;
	p.x = 3;
	p.y = 4;
	origin.x = 10;
	return p.x * p.y + origin.x;
}`, 22)
}

func TestStructPointers(t *testing.T) {
	expectExit(t, `
struct node { int val; struct node *next; };
int main() {
	struct node a; struct node b;
	struct node *p;
	a.val = 1;
	a.next = &b;
	b.val = 2;
	b.next = 0;
	p = &a;
	return p->val * 10 + p->next->val;
}`, 12)
}

func TestStructOnHeap(t *testing.T) {
	expectExit(t, `
struct node { int val; struct node *next; };
struct node *cons(int v, struct node *rest) {
	struct node *n;
	n = malloc(sizeof(struct node));
	n->val = v;
	n->next = rest;
	return n;
}
int main() {
	struct node *list; int sum;
	list = cons(1, cons(2, cons(3, 0)));
	sum = 0;
	while (list) {
		sum = sum * 10 + list->val;
		list = list->next;
	}
	return sum;
}`, 123)
}

func TestStructArrayFields(t *testing.T) {
	expectExit(t, `
struct rec { int id; char name[8]; int vals[3]; };
struct rec recs[4];
int main() {
	recs[2].id = 7;
	recs[2].vals[1] = 30;
	strcpy(recs[2].name, "bob");
	return recs[2].id + recs[2].vals[1] + strlen(recs[2].name);
}`, 7+30+3)
}

func TestSizeof(t *testing.T) {
	expectExit(t, `
struct s { int a; char b; int c; };
int main() {
	return sizeof(int) + sizeof(char) * 10 + sizeof(int*) * 100 + sizeof(struct s) * 1000;
}`, 4+10+400+12000)
}

func TestEnum(t *testing.T) {
	expectExit(t, `
enum { RED, GREEN, BLUE };
enum { TEN = 10, ELEVEN, FIFTY = 50 };
int main() { return RED + GREEN * 10 + BLUE * 100 + ELEVEN + FIFTY; }`, 0+10+200+11+50)
}

func TestIncDec(t *testing.T) {
	expectExit(t, `
int main() {
	int i; int a; int b;
	i = 5;
	a = i++;
	b = ++i;
	return a * 100 + b * 10 + i;
}`, 5*100+7*10+7)
	expectExit(t, `
int g;
int main() {
	int a;
	g = 3;
	a = g--;
	return a * 10 + g;
}`, 32)
	expectExit(t, `
int arr[3] = {5, 6, 7};
int main() {
	int *p; int v;
	p = arr;
	v = *p++;
	return v * 10 + *p;
}`, 56)
}

func TestCompoundAssign(t *testing.T) {
	expectExit(t, `
int main() {
	int x;
	x = 100;
	x += 10; x -= 5; x *= 2; x /= 3; x %= 50;
	x <<= 2; x >>= 1; x &= 0xff; x |= 0x100; x ^= 3;
	return x;
}`, func() int32 {
		x := int32(100)
		x += 10
		x -= 5
		x *= 2
		x /= 3
		x %= 50
		x <<= 2
		x >>= 1
		x &= 0xff
		x |= 0x100
		x ^= 3
		return x
	}())
}

func TestCommaOperator(t *testing.T) {
	expectExit(t, `
int main() {
	int a; int b;
	a = (b = 3, b + 4);
	return a * 10 + b;
}`, 73)
}

func TestGlobalPointerInit(t *testing.T) {
	expectExit(t, `
int data[3] = {7, 8, 9};
int *p = data;
char *greet = "yo";
int main() { return p[1] + greet[0]; }`, 8+'y')
}

func TestIOBuiltins(t *testing.T) {
	expectOutput(t, `
int main() {
	int c;
	print_str("got: ");
	c = getchar();
	while (c >= 0) {
		putchar(c + 1);
		c = getchar();
	}
	print_int(-7);
	return 0;
}`, "abc", "got: bcd-7")
}

func TestReadBlockBuiltin(t *testing.T) {
	m := runProg(t, `
char buf[16];
int main() {
	int n;
	n = read_block(buf, 16);
	return n * 100 + buf[0];
}`, "hello")
	if want := int32(500 + 'h'); m.ExitCode != want {
		t.Errorf("exit = %d, want %d", m.ExitCode, want)
	}
}

func TestExitBuiltin(t *testing.T) {
	m := runProg(t, `int main() { exit(9); return 1; }`, "")
	if m.ExitCode != 9 {
		t.Errorf("exit = %d, want 9", m.ExitCode)
	}
}

func TestRuntimeLib(t *testing.T) {
	expectExit(t, `
int main() {
	char a[16]; char b[16];
	strcpy(a, "hello");
	memcpy(b, a, 6);
	if (strcmp(a, b) != 0) { return 1; }
	if (strcmp(a, "hellp") >= 0) { return 2; }
	if (strncmp(a, "help", 3) != 0) { return 3; }
	memset(a, 'x', 3);
	if (a[0] != 'x' || a[2] != 'x' || a[3] != 'l') { return 4; }
	return atoi(" -321") + abs(-21);
}`, -300)
	expectExit(t, `
int main() {
	char buf[16];
	itoa(-4083, buf);
	if (strcmp(buf, "-4083") != 0) { return 1; }
	itoa(0, buf);
	if (strcmp(buf, "0") != 0) { return 2; }
	return 0;
}`, 0)
}

func TestMallocMany(t *testing.T) {
	expectExit(t, `
int main() {
	int i; int sum;
	int *ptrs[50];
	for (i = 0; i < 50; i++) {
		ptrs[i] = malloc(sizeof(int) * 100);
		ptrs[i][99] = i;
	}
	sum = 0;
	for (i = 0; i < 50; i++) { sum += ptrs[i][99]; }
	return sum;
}`, 49*50/2)
}

func TestAddressOfArrayElement(t *testing.T) {
	expectExit(t, `
int arr[5];
int main() {
	int *p;
	p = &arr[2];
	*p = 9;
	p[1] = 4;
	return arr[2] * 10 + arr[3];
}`, 94)
}

func TestSpillAcrossCalls(t *testing.T) {
	// Expression with live temps across nested calls.
	expectExit(t, `
int f(int x) { return x + 1; }
int main() {
	int a;
	a = f(1) + f(2) * f(3) + f(f(4)) - f(5);
	return a;
}`, 2+3*4+6-6)
}

func TestDeepExpression(t *testing.T) {
	expectExit(t, `
int main() {
	return ((((1 + 2) * (3 + 4)) - ((5 + 6) * (7 - 8))) + (((9 + 10) * (11 - 12)) - ((13 + 14) * (15 - 16))));
}`, ((1+2)*(3+4)-(5+6)*(7-8))+((9+10)*(11-12)-(13+14)*(15-16)))
}

func TestVoidFunction(t *testing.T) {
	expectExit(t, `
int acc;
void add(int v) { acc += v; }
void twice(int v) { add(v); add(v); }
int main() {
	acc = 0;
	twice(10);
	add(1);
	return acc;
}`, 21)
}

func TestForwardDeclaration(t *testing.T) {
	expectExit(t, `
int odd(int n);
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
int main() { return even(10) * 10 + odd(7); }`, 11)
}

func TestErrorCases(t *testing.T) {
	bad := []struct{ name, src, want string }{
		{"undeclared", `int main() { return x; }`, "undeclared"},
		{"undefined-func", `int main() { return nope(); }`, "undeclared function"},
		{"arg-count", `int f(int a) { return a; } int main() { return f(1, 2); }`, "expects 1 arguments"},
		{"bad-assign", `struct s { int a; }; struct s v; int main() { v = 3; return 0; }`, "not"},
		{"dup-local", `int main() { int a; int a; return 0; }`, "redeclaration"},
		{"break-outside", `int main() { break; return 0; }`, "break outside"},
		{"continue-outside", `int main() { continue; return 0; }`, "continue outside"},
		{"void-return", `void f() { return 3; } int main() { return 0; }`, "returns a value"},
		{"missing-return-type", `int f() { return; } int main() { return 0; }`, "returns nothing"},
		{"deref-int", `int main() { int x; return *x; }`, "dereference"},
		{"no-field", `struct s { int a; }; int main() { struct s v; return v.b; }`, "no field"},
		{"arrow-on-value", `struct s { int a; }; int main() { struct s v; return v->a; }`, "non-struct-pointer"},
		{"assign-to-rvalue", `int main() { 3 = 4; return 0; }`, "lvalue"},
		{"dup-case", `int main() { switch (1) { case 1: return 0; case 1: return 1; } return 2; }`, "duplicate case"},
		{"undefined-forward", `int f(int x); int main() { return f(1); }`, "never defined"},
		{"builtin-redef", `int putchar(int c) { return c; } int main() { return 0; }`, "builtin"},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			_, err := minic.Compile(c.src)
			if err == nil {
				t.Fatalf("Compile should fail")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`int main() { return "unterminated; }`,
		`int main() { /* unterminated`,
		"int main() { return 0x; }",
		"int main() { return 12ab; }",
		"int main() { return `; }",
	}
	for _, src := range bad {
		if _, err := minic.Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestFuncMetadataEmitted(t *testing.T) {
	im, err := minic.Compile(`
int helper(int a, int b) { return a + b; }
int main() { return helper(1, 2); }`)
	if err != nil {
		t.Fatal(err)
	}
	var foundMain, foundHelper, foundMemcpy bool
	for _, f := range im.Funcs {
		switch f.Name {
		case "main":
			foundMain = true
		case "helper":
			foundHelper = f.NArgs == 2
		case "memcpy":
			foundMemcpy = f.NArgs == 3
		}
	}
	if !foundMain || !foundHelper || !foundMemcpy {
		t.Errorf("function metadata missing: main=%v helper=%v memcpy=%v",
			foundMain, foundHelper, foundMemcpy)
	}
}
