package minic

// Expression parsing: precedence climbing with type resolution and
// constant folding.

// constVal extracts a compile-time constant.
func constVal(e *expr) (int64, bool) {
	if e.op == exConst {
		return e.val, true
	}
	return 0, false
}

func intConst(v int64, line int) *expr {
	return &expr{op: exConst, ty: typeInt, val: v, line: line}
}

// expression parses a full expression including the comma operator.
func (p *parser) expression() (*expr, error) {
	e, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(",") {
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		e = &expr{op: exComma, ty: rhs.ty, lhs: e, rhs: rhs, line: e.line}
	}
	return e, nil
}

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

func (p *parser) assignExpr() (*expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	line := p.line()
	if p.accept("=") {
		if err := p.checkLvalue(lhs, line); err != nil {
			return nil, err
		}
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.checkAssign(lhs.ty, rhs, line); err != nil {
			return nil, err
		}
		return &expr{op: exAssign, ty: lhs.ty, lhs: lhs, rhs: rhs, line: line}, nil
	}
	for text, binop := range compoundOps {
		if p.at(text) {
			p.next()
			if err := p.checkLvalue(lhs, line); err != nil {
				return nil, err
			}
			rhs, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			// Validate the implied binary op for its type rules.
			if _, err := p.typeBinary(binop, lhs, rhs, line); err != nil {
				return nil, err
			}
			return &expr{op: exAssign, ty: lhs.ty, str: binop, lhs: lhs, rhs: rhs, line: line}, nil
		}
	}
	return lhs, nil
}

func (p *parser) condExpr() (*expr, error) {
	c, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return c, nil
	}
	line := p.line()
	t, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	f, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	ty := decay(t.ty)
	if !compatibleValue(ty, decay(f.ty)) {
		return nil, errAt(line, "?: branches have incompatible types %s and %s", t.ty, f.ty)
	}
	return &expr{op: exCond, ty: ty, cond: c, lhs: t, rhs: f, line: line}, nil
}

// binary operator precedence levels, lowest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binaryExpr(level int) (*expr, error) {
	if level >= len(binLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binaryExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		var op string
		for _, cand := range binLevels[level] {
			if p.at(cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return lhs, nil
		}
		line := p.line()
		p.next()
		rhs, err := p.binaryExpr(level + 1)
		if err != nil {
			return nil, err
		}
		switch op {
		case "&&":
			lhs = &expr{op: exLogAnd, ty: typeInt, lhs: lhs, rhs: rhs, line: line}
		case "||":
			lhs = &expr{op: exLogOr, ty: typeInt, lhs: lhs, rhs: rhs, line: line}
		default:
			lhs, err = p.makeBinary(op, lhs, rhs, line)
			if err != nil {
				return nil, err
			}
		}
	}
}

// typeBinary computes the result type of lhs op rhs, enforcing C-ish
// rules with pointer arithmetic scaling handled at codegen.
func (p *parser) typeBinary(op string, lhs, rhs *expr, line int) (*ctype, error) {
	lt, rt := decay(lhs.ty), decay(rhs.ty)
	switch op {
	case "+":
		switch {
		case lt.isArith() && rt.isArith():
			return typeInt, nil
		case lt.kind == tyPtr && rt.isArith():
			return lt, nil
		case lt.isArith() && rt.kind == tyPtr:
			return rt, nil
		}
	case "-":
		switch {
		case lt.isArith() && rt.isArith():
			return typeInt, nil
		case lt.kind == tyPtr && rt.isArith():
			return lt, nil
		case lt.kind == tyPtr && rt.kind == tyPtr:
			return typeInt, nil
		}
	case "==", "!=", "<", ">", "<=", ">=":
		if (lt.isArith() && rt.isArith()) ||
			(lt.kind == tyPtr && rt.kind == tyPtr) ||
			(lt.kind == tyPtr && isZero(rhs)) ||
			(isZero(lhs) && rt.kind == tyPtr) {
			return typeInt, nil
		}
	default: // arithmetic/bitwise/shift
		if lt.isArith() && rt.isArith() {
			return typeInt, nil
		}
	}
	return nil, errAt(line, "invalid operands to %s (%s and %s)", op, lhs.ty, rhs.ty)
}

func isZero(e *expr) bool {
	v, ok := constVal(e)
	return ok && v == 0
}

func (p *parser) makeBinary(op string, lhs, rhs *expr, line int) (*expr, error) {
	ty, err := p.typeBinary(op, lhs, rhs, line)
	if err != nil {
		return nil, err
	}
	// Constant folding.
	if lv, ok := constVal(lhs); ok {
		if rv, ok := constVal(rhs); ok {
			if v, ok := foldBinary(op, lv, rv); ok {
				return intConst(v, line), nil
			}
		}
	}
	return &expr{op: exBinary, ty: ty, str: op, lhs: lhs, rhs: rhs, line: line}, nil
}

// foldBinary evaluates op on 32-bit constants.
func foldBinary(op string, a, b int64) (int64, bool) {
	x, y := int32(a), int32(b)
	var r int32
	switch op {
	case "+":
		r = x + y
	case "-":
		r = x - y
	case "*":
		r = x * y
	case "/":
		if y == 0 {
			return 0, false
		}
		r = x / y
	case "%":
		if y == 0 {
			return 0, false
		}
		r = x % y
	case "&":
		r = x & y
	case "|":
		r = x | y
	case "^":
		r = x ^ y
	case "<<":
		r = x << (uint32(y) & 31)
	case ">>":
		r = x >> (uint32(y) & 31)
	case "==":
		r = b2i(x == y)
	case "!=":
		r = b2i(x != y)
	case "<":
		r = b2i(x < y)
	case ">":
		r = b2i(x > y)
	case "<=":
		r = b2i(x <= y)
	case ">=":
		r = b2i(x >= y)
	default:
		return 0, false
	}
	return int64(r), true
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func (p *parser) unaryExpr() (*expr, error) {
	line := p.line()
	switch {
	case p.accept("-"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if !decay(e.ty).isArith() {
			return nil, errAt(line, "cannot negate %s", e.ty)
		}
		if v, ok := constVal(e); ok {
			return intConst(int64(-int32(v)), line), nil
		}
		return &expr{op: exNeg, ty: typeInt, lhs: e, line: line}, nil
	case p.accept("!"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if v, ok := constVal(e); ok {
			return intConst(int64(b2i(v == 0)), line), nil
		}
		return &expr{op: exNot, ty: typeInt, lhs: e, line: line}, nil
	case p.accept("~"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if !decay(e.ty).isArith() {
			return nil, errAt(line, "cannot complement %s", e.ty)
		}
		if v, ok := constVal(e); ok {
			return intConst(int64(^int32(v)), line), nil
		}
		return &expr{op: exBitNot, ty: typeInt, lhs: e, line: line}, nil
	case p.accept("*"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		t := decay(e.ty)
		if t.kind != tyPtr {
			return nil, errAt(line, "cannot dereference %s", e.ty)
		}
		if t.elem.kind == tyVoid {
			return nil, errAt(line, "cannot dereference void*")
		}
		return &expr{op: exDeref, ty: t.elem, lhs: e, line: line}, nil
	case p.accept("&"):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.checkAddressable(e, line); err != nil {
			return nil, err
		}
		markAddrTaken(e)
		return &expr{op: exAddr, ty: ptrTo(e.ty), lhs: e, line: line}, nil
	case p.accept("++"):
		return p.incDec(line, false, true)
	case p.accept("--"):
		return p.incDec(line, true, true)
	case p.accept("sizeof"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		ty := base
		for p.accept("*") {
			ty = ptrTo(ty)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return intConst(int64(ty.size()), line), nil
	}
	return p.postfixExpr()
}

// incDec parses the operand of a prefix ++/--; pre is handled by caller.
func (p *parser) incDec(line int, dec, prefix bool) (*expr, error) {
	e, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	if err := p.checkLvalue(e, line); err != nil {
		return nil, err
	}
	t := decay(e.ty)
	if !t.isScalar() {
		return nil, errAt(line, "cannot increment %s", e.ty)
	}
	return &expr{op: exIncDec, ty: e.ty, lhs: e, dec: dec, post: !prefix, line: line}, nil
}

func (p *parser) postfixExpr() (*expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		line := p.line()
		switch {
		case p.accept("["):
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			bt := decay(e.ty)
			if bt.kind != tyPtr {
				return nil, errAt(line, "cannot index %s", e.ty)
			}
			if !decay(idx.ty).isArith() {
				return nil, errAt(line, "array index must be arithmetic")
			}
			e = &expr{op: exIndex, ty: bt.elem, lhs: e, rhs: idx, line: line}
		case p.accept("."):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if e.ty.kind != tyStruct {
				return nil, errAt(line, ".%s on non-struct %s", name, e.ty)
			}
			f := e.ty.sdef.findField(name)
			if f == nil {
				return nil, errAt(line, "struct %s has no field %s", e.ty.sdef.name, name)
			}
			e = &expr{op: exMember, ty: f.ty, lhs: e, off: f.off, str: name, line: line}
		case p.accept("->"):
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			pt := decay(e.ty)
			if pt.kind != tyPtr || pt.elem.kind != tyStruct {
				return nil, errAt(line, "->%s on non-struct-pointer %s", name, e.ty)
			}
			if !pt.elem.sdef.done {
				return nil, errAt(line, "use of incomplete struct %s", pt.elem.sdef.name)
			}
			f := pt.elem.sdef.findField(name)
			if f == nil {
				return nil, errAt(line, "struct %s has no field %s", pt.elem.sdef.name, name)
			}
			deref := &expr{op: exDeref, ty: pt.elem, lhs: e, line: line}
			e = &expr{op: exMember, ty: f.ty, lhs: deref, off: f.off, str: name, line: line}
		case p.at("++") || p.at("--"):
			dec := p.next().text == "--"
			if err := p.checkLvalue(e, line); err != nil {
				return nil, err
			}
			if !decay(e.ty).isScalar() {
				return nil, errAt(line, "cannot increment %s", e.ty)
			}
			e = &expr{op: exIncDec, ty: e.ty, lhs: e, dec: dec, post: true, line: line}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (*expr, error) {
	t := p.tok()
	switch t.kind {
	case tokNumber, tokChar:
		p.next()
		return intConst(t.num, t.line), nil
	case tokString:
		p.next()
		lbl := p.internString(t.str)
		return &expr{op: exString, ty: ptrTo(typeChar), str: t.str, val: 0, line: t.line,
			sym: &symbol{name: lbl, kind: symGlobal, ty: arrayOf(typeChar, len(t.str)+1), label: lbl, reg: -1}}, nil
	case tokIdent:
		name := t.text
		// Call?
		if p.toks[p.pos+1].text == "(" {
			return p.callExpr()
		}
		p.next()
		s := p.lookup(name)
		if s == nil {
			return nil, errAt(t.line, "undeclared identifier %q", name)
		}
		if s.kind == symEnumConst {
			return intConst(s.enumVal, t.line), nil
		}
		s.nrefs++ // drives s-register allocation priority
		return &expr{op: exVar, ty: s.ty, sym: s, line: t.line}, nil
	case tokPunct:
		if p.accept("(") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokKeyword:
		// handled in unaryExpr (sizeof); anything else is an error.
	}
	return nil, errAt(t.line, "unexpected %s in expression", t)
}

func (p *parser) callExpr() (*expr, error) {
	t := p.next() // ident
	name := t.text
	p.next() // (
	var args []*expr
	if !p.accept(")") {
		for {
			a, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	// Builtin?
	if bi, ok := builtinNames[name]; ok && p.lookup(name) == nil {
		return p.builtinCall(bi, name, args, t.line)
	}
	fn, ok := p.funcs[name]
	if !ok {
		return nil, errAt(t.line, "call to undeclared function %q", name)
	}
	if len(args) != len(fn.params) {
		return nil, errAt(t.line, "%s expects %d arguments, got %d", name, len(fn.params), len(args))
	}
	for i, a := range args {
		if err := p.checkAssign(fn.params[i].ty, a, t.line); err != nil {
			return nil, err
		}
	}
	return &expr{op: exCall, ty: fn.ret, fn: fn, args: args, line: t.line}, nil
}

var builtinArity = map[builtinID]int{
	biPutchar: 1, biGetchar: 0, biPrintInt: 1, biPrintStr: 1,
	biSbrk: 1, biExit: 1, biReadBlock: 2,
}

func (p *parser) builtinCall(bi builtinID, name string, args []*expr, line int) (*expr, error) {
	if len(args) != builtinArity[bi] {
		return nil, errAt(line, "%s expects %d arguments, got %d", name, builtinArity[bi], len(args))
	}
	for _, a := range args {
		if !decay(a.ty).isScalar() {
			return nil, errAt(line, "%s argument must be scalar", name)
		}
	}
	ret := typeVoid
	switch bi {
	case biGetchar, biReadBlock:
		ret = typeInt
	case biSbrk:
		ret = ptrTo(typeChar)
	}
	return &expr{op: exBuiltin, ty: ret, bi: bi, args: args, line: line}, nil
}

// semantic helpers

// checkLvalue verifies e can be assigned to.
func (p *parser) checkLvalue(e *expr, line int) error {
	switch e.op {
	case exVar:
		if e.sym.ty.kind == tyArray {
			return errAt(line, "array %s is not assignable", e.sym.name)
		}
		return nil
	case exDeref, exIndex:
		return nil
	case exMember:
		if e.ty.kind == tyArray {
			return errAt(line, "array field %s is not assignable", e.str)
		}
		return nil
	}
	return errAt(line, "expression is not an lvalue")
}

// checkAddressable verifies &e is legal.
func (p *parser) checkAddressable(e *expr, line int) error {
	switch e.op {
	case exVar, exDeref, exIndex, exMember:
		return nil
	}
	return errAt(line, "cannot take the address of this expression")
}

// markAddrTaken flags the root symbol of an lvalue whose address
// escapes, pinning it to the stack.
func markAddrTaken(e *expr) {
	for e != nil {
		switch e.op {
		case exVar:
			e.sym.addrTaken = true
			return
		case exMember:
			e = e.lhs
		case exIndex:
			e = e.lhs
		default:
			return
		}
	}
}

// compatibleValue reports whether a value of type b can flow into a.
// MiniC uses pre-ANSI pointer laxity: any pointer converts to any
// pointer (the workloads use char* as a void* stand-in for malloc).
func compatibleValue(a, b *ctype) bool {
	a, b = decay(a), decay(b)
	switch {
	case a.isArith() && b.isArith():
		return true
	case a.kind == tyPtr && b.kind == tyPtr:
		return true
	default:
		return sameType(a, b)
	}
}

// checkAssign verifies rhs can be assigned to type lt.
func (p *parser) checkAssign(lt *ctype, rhs *expr, line int) error {
	rt := decay(rhs.ty)
	lt = decay(lt)
	if compatibleValue(lt, rt) {
		return nil
	}
	// ptr = 0 and int = ptr (loose) allowed.
	if lt.kind == tyPtr && isZero(rhs) {
		return nil
	}
	if lt.isArith() && rt.kind == tyPtr {
		return nil
	}
	if lt.kind == tyPtr && rt.isArith() {
		return nil
	}
	return errAt(line, "cannot assign %s to %s", rhs.ty, lt)
}
