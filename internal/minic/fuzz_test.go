package minic

import (
	"errors"
	"strings"
	"testing"
)

// FuzzCompile feeds arbitrary source to the full MiniC pipeline
// (lexer, parser, type checker, codegen, assembler). The contract is
// that no input panics: malformed programs must come back as errors,
// and internal codegen invariants are recovered into compile errors.
func FuzzCompile(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add("int g[4] = {1, 2, 3, 4}; int main() { return g[3]; }")
	f.Add(`char *s = "str"; int main() { return s[0]; }`)
	f.Add("int f(int a, int b) { return a % b; } int main() { return f(7, 3); }")
	f.Add("int main() { int a[10000]; return 0; }")
	f.Add("int main( {")
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, src string) {
		// The recursive-descent parser has no depth limit; giant
		// inputs can exhaust the stack, which recover cannot catch.
		// Bound the input instead of the parser for fuzzing purposes.
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		_, _ = Compile(src)
	})
}

// TestFrameTooLargeIsCompileError pins the buildFrame satellite fix: a
// frame past the 32000-byte limit is a positioned compile error, not a
// panic.
func TestFrameTooLargeIsCompileError(t *testing.T) {
	_, err := Compile(`
int main() {
	int big[10000];
	big[0] = 1;
	return big[0];
}`)
	if err == nil {
		t.Fatal("oversized frame must fail to compile")
	}
	if !strings.Contains(err.Error(), "frame too large") {
		t.Errorf("err = %v, want frame-too-large diagnostic", err)
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Errorf("err = %T, want *minic.Error with a line number", err)
	} else if ce.Line <= 0 {
		t.Errorf("frame error has no source line: %+v", ce)
	}
}
