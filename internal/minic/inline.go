package minic

// Function inlining. Section 6 of the paper argues that
// prologue/epilogue overhead and its repetition "can potentially be
// optimized if the compiler had global information and could inline
// the function at the call site", and Table 9 examines exactly which
// functions would have to be inlined. This pass implements the
// optimization so the claim can be tested as an ablation
// (examples/inlining, BenchmarkAblationInlining).
//
// A function is inlinable when its body is a single `return <expr>;`
// whose expression is pure (no calls, builtins, assignments, or
// increments) — the accessor pattern of the paper's Table 9
// candidates. A call site is rewritten when every argument expression
// is itself pure, so substitution cannot drop or duplicate side
// effects.

// inlineFunctions rewrites eligible call sites in every function body
// and returns the number of calls inlined.
func inlineFunctions(u *unit) int {
	inlinable := map[*funcDecl]*expr{}
	for _, fn := range u.funcs {
		if e := inlinableBody(fn); e != nil {
			inlinable[fn] = e
		}
	}
	if len(inlinable) == 0 {
		return 0
	}
	count := 0
	for _, fn := range u.funcs {
		count += inlineStmt(fn.body, inlinable)
	}
	return count
}

// inlinableBody returns the single returned expression if fn
// qualifies.
func inlinableBody(fn *funcDecl) *expr {
	if !fn.defined || fn.ret.kind == tyVoid {
		return nil
	}
	body := fn.body
	if body == nil || body.op != stBlock || len(body.list) != 1 {
		return nil
	}
	ret := body.list[0]
	if ret.op != stReturn || ret.ex == nil {
		return nil
	}
	if !exprPure(ret.ex) {
		return nil
	}
	return ret.ex
}

// exprPure reports whether evaluating e has no side effects and no
// calls (loads are allowed: they are the accessor pattern).
func exprPure(e *expr) bool {
	if e == nil {
		return true
	}
	switch e.op {
	case exCall, exBuiltin, exAssign, exIncDec:
		return false
	}
	if !exprPure(e.lhs) || !exprPure(e.rhs) || !exprPure(e.cond) {
		return false
	}
	for _, a := range e.args {
		if !exprPure(a) {
			return false
		}
	}
	return true
}

// substitute deep-copies body, replacing parameter references with the
// corresponding argument expressions.
func substitute(body *expr, bind map[*symbol]*expr) *expr {
	if body == nil {
		return nil
	}
	if body.op == exVar {
		if arg, ok := bind[body.sym]; ok {
			return arg // argument expressions are pure: safe to share
		}
		body.sym.nrefs++ // a new reference from the inlined copy
	}
	cp := *body
	cp.lhs = substitute(body.lhs, bind)
	cp.rhs = substitute(body.rhs, bind)
	cp.cond = substitute(body.cond, bind)
	if body.args != nil {
		cp.args = make([]*expr, len(body.args))
		for i, a := range body.args {
			cp.args[i] = substitute(a, bind)
		}
	}
	return &cp
}

// tryInline rewrites a call node in place if eligible, returning 1 on
// success.
func tryInline(e *expr, inlinable map[*funcDecl]*expr) int {
	body, ok := inlinable[e.fn]
	if !ok {
		return 0
	}
	for _, a := range e.args {
		if !exprPure(a) {
			return 0
		}
	}
	bind := map[*symbol]*expr{}
	for i, p := range e.fn.params {
		bind[p] = e.args[i]
	}
	inlined := substitute(body, bind)
	// The callee returns its declared type; the call node already
	// carries it. Replace the node contents, keeping the type.
	ty := e.ty
	*e = *inlined
	e.ty = ty
	return 1
}

// inlineExpr walks an expression, rewriting eligible calls bottom-up
// (arguments first, so nested calls inline inside-out).
func inlineExpr(e *expr, inlinable map[*funcDecl]*expr) int {
	if e == nil {
		return 0
	}
	n := inlineExpr(e.lhs, inlinable)
	n += inlineExpr(e.rhs, inlinable)
	n += inlineExpr(e.cond, inlinable)
	for _, a := range e.args {
		n += inlineExpr(a, inlinable)
	}
	if e.op == exCall {
		n += tryInline(e, inlinable)
	}
	return n
}

func inlineStmt(s *stmt, inlinable map[*funcDecl]*expr) int {
	if s == nil {
		return 0
	}
	n := inlineExpr(s.ex, inlinable)
	n += inlineExpr(s.post, inlinable)
	n += inlineExpr(s.dinit, inlinable)
	n += inlineStmt(s.init, inlinable)
	n += inlineStmt(s.body, inlinable)
	n += inlineStmt(s.alt, inlinable)
	for _, c := range s.list {
		n += inlineStmt(c, inlinable)
	}
	for _, c := range s.cases {
		for _, cs := range c.body {
			n += inlineStmt(cs, inlinable)
		}
	}
	for _, cs := range s.defalt {
		n += inlineStmt(cs, inlinable)
	}
	return n
}
