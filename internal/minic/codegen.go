package minic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// codegen lowers a typed unit to assembler source for internal/asm.
//
// ABI (o32-like):
//   - args 0..3 in $a0..$a3, args 4.. at caller-sp + 4*i
//   - result in $v0
//   - $s0..$s7 callee-saved and used for register locals
//   - $t0..$t9 expression temporaries, caller-saved
//   - frame: [outgoing args][temp spills][stack locals][saved s][ra]
type codegen struct {
	u   *unit
	b   strings.Builder
	lbl int

	fn        *funcDecl
	spillBase int
	epilogue  string

	temps    [len(tempRegs)]bool // allocated flags
	breakLbl []string
	contLbl  []string

	gpOK map[string]bool // globals addressable via $gp
}

// tempRegs is the expression temporary pool.
var tempRegs = [...]int{
	isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3, isa.RegT4,
	isa.RegT5, isa.RegT6, isa.RegT7, isa.RegT8, isa.RegT9,
}

// sRegs is the register-local pool.
var sRegs = [...]int{
	isa.RegS0, isa.RegS1, isa.RegS2, isa.RegS3,
	isa.RegS4, isa.RegS5, isa.RegS6, isa.RegS7,
}

// generate produces the complete assembler unit. Internal invariant
// violations (compiler bugs, not source errors) panic at their site;
// the recover here converts them into compile errors so no input
// reachable through Compile can crash the caller.
func generate(u *unit) (out string, err error) {
	defer func() {
		if pv := recover(); pv != nil {
			out, err = "", fmt.Errorf("minic: internal error: %v", pv)
		}
	}()
	cg := &codegen{u: u, gpOK: make(map[string]bool)}
	cg.layoutData()

	// Startup stub.
	cg.emitf(".text")
	cg.emitf(".func __start 0")
	cg.emitf("__start:")
	cg.emitf("jal main")
	cg.emitf("move $a0, $v0")
	cg.emitf("li $v0, 10")
	cg.emitf("syscall")
	cg.emitf(".endfunc")

	for _, fn := range u.funcs {
		if err := cg.genFunc(fn); err != nil {
			return "", err
		}
	}
	cg.emitData()
	return cg.b.String(), nil
}

func (cg *codegen) emitf(format string, args ...any) {
	fmt.Fprintf(&cg.b, format+"\n", args...)
}

func (cg *codegen) newLabel() string {
	cg.lbl++
	return fmt.Sprintf(".L%d", cg.lbl)
}

// layoutData decides which globals are reachable through $gp. It
// mirrors the assembler's layout: initialized globals in declaration
// order, then interned strings, then bss. A symbol is $gp-addressable
// while its offset stays within the signed 16-bit window.
func (cg *codegen) layoutData() {
	const gpWindow = 0xfff0 // conservative top of the 64 KiB window
	off := 0
	place := func(label string, size, align int) {
		off = (off + align - 1) / align * align
		if off+size <= gpWindow {
			cg.gpOK[label] = true
		}
		off += size
	}
	for _, g := range cg.u.globals {
		if g.hasInit {
			place(g.label, g.ty.size(), g.ty.align())
		}
	}
	for _, s := range cg.u.strOrd {
		place(cg.u.strings[s], len(s)+1, 1)
	}
	for _, g := range cg.u.globals {
		if !g.hasInit {
			place(g.label, g.ty.size(), g.ty.align())
		}
	}
}

// emitData writes the .data/.bss sections.
func (cg *codegen) emitData() {
	cg.emitf(".data")
	for _, g := range cg.u.globals {
		if !g.hasInit {
			continue
		}
		cg.emitAligned(g)
		cg.emitf("%s:", g.label)
		cg.emitInit(g)
	}
	for _, s := range cg.u.strOrd {
		cg.emitf("%s: .asciiz %s", cg.u.strings[s], quoteAsm(s))
	}
	cg.emitf(".bss")
	for _, g := range cg.u.globals {
		if g.hasInit {
			continue
		}
		cg.emitAligned(g)
		cg.emitf("%s: .space %d", g.label, g.ty.size())
	}
}

func (cg *codegen) emitAligned(g *symbol) {
	if g.ty.align() >= 4 {
		cg.emitf(".align 2")
	}
}

func (cg *codegen) emitInit(g *symbol) {
	elem := g.ty
	if g.ty.kind == tyArray {
		elem = g.ty.elem
	}
	n := 0
	for _, iv := range g.initVals {
		switch {
		case iv.sym != "":
			cg.emitf(".word %s", iv.sym)
			n += 4
		case elem.kind == tyChar:
			cg.emitf(".byte %d", iv.val&0xff)
			n++
		default:
			cg.emitf(".word %d", uint32(iv.val))
			n += 4
		}
	}
	if rest := g.ty.size() - n; rest > 0 {
		cg.emitf(".space %d", rest)
	}
}

// quoteAsm renders s as an assembler string literal.
func quoteAsm(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case 0:
			b.WriteString(`\0`)
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// function lowering

// analyzeCalls fills fn.usesCalls and fn.maxOutArgs.
func analyzeCalls(fn *funcDecl) {
	var walkStmt func(s *stmt)
	var walkExpr func(e *expr)
	walkExpr = func(e *expr) {
		if e == nil {
			return
		}
		if e.op == exCall {
			fn.usesCalls = true
			if len(e.args) > fn.maxOutArgs {
				fn.maxOutArgs = len(e.args)
			}
		}
		walkExpr(e.lhs)
		walkExpr(e.rhs)
		walkExpr(e.cond)
		for _, a := range e.args {
			walkExpr(a)
		}
	}
	walkStmt = func(s *stmt) {
		if s == nil {
			return
		}
		walkExpr(s.ex)
		walkExpr(s.post)
		walkExpr(s.dinit)
		walkStmt(s.init)
		walkStmt(s.body)
		walkStmt(s.alt)
		for _, c := range s.list {
			walkStmt(c)
		}
		for _, c := range s.cases {
			for _, cs := range c.body {
				walkStmt(cs)
			}
		}
		for _, cs := range s.defalt {
			walkStmt(cs)
		}
	}
	walkStmt(fn.body)
}

// buildFrame assigns registers and stack slots to locals and computes
// the frame size.
func (cg *codegen) buildFrame(fn *funcDecl) error {
	analyzeCalls(fn)

	// Candidates for s-registers: scalar, not address-taken.
	var regCands []*symbol
	for _, l := range fn.locals {
		if l.ty.isScalar() && !l.addrTaken {
			regCands = append(regCands, l)
		}
	}
	sort.SliceStable(regCands, func(i, j int) bool {
		return regCands[i].nrefs > regCands[j].nrefs
	})
	fn.savedRegs = nil
	for i, l := range regCands {
		if i >= len(sRegs) {
			break
		}
		l.reg = sRegs[i]
		fn.savedRegs = append(fn.savedRegs, sRegs[i])
	}

	// Frame regions, bottom up.
	outArgs := 0
	if fn.usesCalls {
		outArgs = 16
		if fn.maxOutArgs > 4 {
			outArgs = 4 * fn.maxOutArgs
		}
	}
	spill := 0
	if fn.usesCalls {
		spill = 4 * len(tempRegs)
	}
	cg.spillBase = outArgs

	off := outArgs + spill
	for _, l := range fn.locals {
		if l.reg >= 0 {
			continue
		}
		if l.kind == symParam && l.paramIdx >= 4 && !l.addrTaken {
			continue // stays in the caller's outgoing slot
		}
		a := l.ty.align()
		if a < 4 {
			a = 4 // keep slots word aligned for simplicity
		}
		off = (off + a - 1) / a * a
		l.frameOff = off
		off += l.ty.size()
	}
	off = (off + 3) &^ 3
	off += 4 * len(fn.savedRegs)
	if fn.usesCalls {
		off += 4 // ra
	}
	fn.frameSize = (off + 7) &^ 7

	// Params 4.. left in the caller frame address at sp+frame+4*i.
	for _, l := range fn.locals {
		if l.kind == symParam && l.paramIdx >= 4 && l.reg < 0 && !l.addrTaken {
			l.frameOff = fn.frameSize + 4*l.paramIdx
		}
	}
	if fn.frameSize > 32000 {
		return errAt(fn.line, "function %s: frame too large (%d bytes, limit 32000)", fn.name, fn.frameSize)
	}
	return nil
}

func (cg *codegen) genFunc(fn *funcDecl) error {
	cg.fn = fn
	if err := cg.buildFrame(fn); err != nil {
		return err
	}
	cg.epilogue = cg.newLabel()
	for i := range cg.temps {
		cg.temps[i] = false
	}

	cg.emitf(".func %s %d", fn.name, len(fn.params))
	cg.emitf("%s:", fn.name)

	// Prologue.
	f := fn.frameSize
	if f > 0 {
		cg.emitf("addiu $sp, $sp, %d", -f)
	}
	save := f
	if fn.usesCalls {
		save -= 4
		cg.emitf("sw $ra, %d($sp)", save)
	}
	for _, r := range fn.savedRegs {
		save -= 4
		cg.emitf("sw %s, %d($sp)", isa.RegName(r), save)
	}
	// Move incoming args to their homes.
	argRegs := []int{isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3}
	for _, prm := range fn.params {
		switch {
		case prm.paramIdx < 4 && prm.reg >= 0:
			cg.emitf("move %s, %s", isa.RegName(prm.reg), isa.RegName(argRegs[prm.paramIdx]))
		case prm.paramIdx < 4:
			cg.emitf("sw %s, %d($sp)", isa.RegName(argRegs[prm.paramIdx]), prm.frameOff)
		case prm.reg >= 0:
			cg.emitf("lw %s, %d($sp)", isa.RegName(prm.reg), f+4*prm.paramIdx)
		}
		// Stack-passed param without a register keeps its caller slot.
	}

	if err := cg.genStmt(fn.body); err != nil {
		return err
	}

	// Epilogue (single exit).
	cg.emitf("%s:", cg.epilogue)
	restore := f
	if fn.usesCalls {
		restore -= 4
		cg.emitf("lw $ra, %d($sp)", restore)
	}
	for _, r := range fn.savedRegs {
		restore -= 4
		cg.emitf("lw %s, %d($sp)", isa.RegName(r), restore)
	}
	if f > 0 {
		cg.emitf("addiu $sp, $sp, %d", f)
	}
	cg.emitf("jr $ra")
	cg.emitf(".endfunc")
	return nil
}

// statements

func (cg *codegen) genStmt(s *stmt) error {
	if s == nil {
		return nil
	}
	switch s.op {
	case stBlock:
		for _, c := range s.list {
			if err := cg.genStmt(c); err != nil {
				return err
			}
		}
		return nil

	case stExpr:
		v, err := cg.genExpr(s.ex)
		if err != nil {
			return err
		}
		cg.release(v)
		return nil

	case stDecl:
		if s.dinit == nil {
			return nil
		}
		v, err := cg.genExpr(s.dinit)
		if err != nil {
			return err
		}
		if s.sym.reg >= 0 {
			cg.emitf("move %s, %s", isa.RegName(s.sym.reg), isa.RegName(v.reg))
		} else {
			cg.storeTyped(s.sym.ty, v.reg, isa.RegSP, s.sym.frameOff)
		}
		cg.release(v)
		return nil

	case stIf:
		elseLbl := cg.newLabel()
		if err := cg.genBranchFalse(s.ex, elseLbl); err != nil {
			return err
		}
		if err := cg.genStmt(s.body); err != nil {
			return err
		}
		if s.alt != nil {
			endLbl := cg.newLabel()
			cg.emitf("j %s", endLbl)
			cg.emitf("%s:", elseLbl)
			if err := cg.genStmt(s.alt); err != nil {
				return err
			}
			cg.emitf("%s:", endLbl)
		} else {
			cg.emitf("%s:", elseLbl)
		}
		return nil

	case stWhile:
		top, end := cg.newLabel(), cg.newLabel()
		cg.emitf("%s:", top)
		if err := cg.genBranchFalse(s.ex, end); err != nil {
			return err
		}
		cg.pushLoop(end, top)
		err := cg.genStmt(s.body)
		cg.popLoop()
		if err != nil {
			return err
		}
		cg.emitf("j %s", top)
		cg.emitf("%s:", end)
		return nil

	case stDoWhile:
		top, cont, end := cg.newLabel(), cg.newLabel(), cg.newLabel()
		cg.emitf("%s:", top)
		cg.pushLoop(end, cont)
		err := cg.genStmt(s.body)
		cg.popLoop()
		if err != nil {
			return err
		}
		cg.emitf("%s:", cont)
		if err := cg.genBranchTrue(s.ex, top); err != nil {
			return err
		}
		cg.emitf("%s:", end)
		return nil

	case stFor:
		if err := cg.genStmt(s.init); err != nil {
			return err
		}
		top, cont, end := cg.newLabel(), cg.newLabel(), cg.newLabel()
		cg.emitf("%s:", top)
		if s.ex != nil {
			if err := cg.genBranchFalse(s.ex, end); err != nil {
				return err
			}
		}
		cg.pushLoop(end, cont)
		err := cg.genStmt(s.body)
		cg.popLoop()
		if err != nil {
			return err
		}
		cg.emitf("%s:", cont)
		if s.post != nil {
			v, err := cg.genExpr(s.post)
			if err != nil {
				return err
			}
			cg.release(v)
		}
		cg.emitf("j %s", top)
		cg.emitf("%s:", end)
		return nil

	case stSwitch:
		return cg.genSwitch(s)

	case stReturn:
		if s.ex != nil {
			v, err := cg.genExpr(s.ex)
			if err != nil {
				return err
			}
			cg.emitf("move $v0, %s", isa.RegName(v.reg))
			cg.release(v)
		}
		cg.emitf("j %s", cg.epilogue)
		return nil

	case stBreak:
		cg.emitf("j %s", cg.breakLbl[len(cg.breakLbl)-1])
		return nil

	case stContinue:
		cg.emitf("j %s", cg.contLbl[len(cg.contLbl)-1])
		return nil
	}
	return errAt(s.line, "internal: unknown statement kind %d", s.op)
}

func (cg *codegen) pushLoop(brk, cont string) {
	cg.breakLbl = append(cg.breakLbl, brk)
	cg.contLbl = append(cg.contLbl, cont)
}

func (cg *codegen) popLoop() {
	cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
	cg.contLbl = cg.contLbl[:len(cg.contLbl)-1]
}

func (cg *codegen) genSwitch(s *stmt) error {
	v, err := cg.genExpr(s.ex)
	if err != nil {
		return err
	}
	end := cg.newLabel()
	caseLbls := make([]string, len(s.cases))
	// Dispatch: compare chain (li + beq per case).
	scratch, err := cg.alloc(s.line)
	if err != nil {
		return err
	}
	for i, c := range s.cases {
		caseLbls[i] = cg.newLabel()
		if c.val == 0 {
			cg.emitf("beq %s, $zero, %s", isa.RegName(v.reg), caseLbls[i])
		} else {
			cg.emitf("li %s, %d", isa.RegName(scratch), c.val)
			cg.emitf("beq %s, %s, %s", isa.RegName(v.reg), isa.RegName(scratch), caseLbls[i])
		}
	}
	cg.freeTemp(scratch)
	cg.release(v)
	defaultLbl := end
	if s.defalt != nil {
		defaultLbl = cg.newLabel()
	}
	cg.emitf("j %s", defaultLbl)

	// Bodies, in order, with C fallthrough.
	cg.breakLbl = append(cg.breakLbl, end)
	// continue inside switch targets the enclosing loop: contLbl
	// untouched.
	for i, c := range s.cases {
		cg.emitf("%s:", caseLbls[i])
		for _, cs := range c.body {
			if err := cg.genStmt(cs); err != nil {
				cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
				return err
			}
		}
	}
	if s.defalt != nil {
		cg.emitf("%s:", defaultLbl)
		for _, cs := range s.defalt {
			if err := cg.genStmt(cs); err != nil {
				cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
				return err
			}
		}
	}
	cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
	cg.emitf("%s:", end)
	return nil
}
