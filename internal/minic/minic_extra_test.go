package minic_test

import (
	"strings"
	"testing"

	"repro/internal/minic"
)

// Additional compiler edge cases beyond the core suite.

func TestScopingShadowing(t *testing.T) {
	expectExit(t, `
int x = 100;
int main() {
	int x;
	x = 1;
	{
		int x;
		x = 2;
		{
			int x;
			x = 3;
		}
		if (x != 2) { return 1; }
	}
	if (x != 1) { return 2; }
	return x * 10;
}`, 10)
}

func TestForScopeShadowing(t *testing.T) {
	expectExit(t, `
int main() {
	int i;
	int s;
	i = 99;
	s = 0;
	for (int i = 0; i < 3; i++) { s += i; }
	return s * 100 + i;
}`, 399)
}

func TestPointerToPointer(t *testing.T) {
	expectExit(t, `
int main() {
	int x;
	int *p;
	int **pp;
	x = 5;
	p = &x;
	pp = &p;
	**pp = **pp + 37;
	return x;
}`, 42)
}

func TestLocal2DArray(t *testing.T) {
	expectExit(t, `
int main() {
	int grid[4][4];
	int i; int j; int s;
	for (i = 0; i < 4; i++) {
		for (j = 0; j < 4; j++) { grid[i][j] = i * 4 + j; }
	}
	s = 0;
	for (i = 0; i < 4; i++) {
		for (j = 0; j < 4; j++) { s += grid[i][j]; }
	}
	return s;
}`, 120)
}

func TestThreeDimensionalArray(t *testing.T) {
	expectExit(t, `
int cube[2][3][4];
int main() {
	int i; int j; int k;
	for (i = 0; i < 2; i++) {
		for (j = 0; j < 3; j++) {
			for (k = 0; k < 4; k++) { cube[i][j][k] = i * 100 + j * 10 + k; }
		}
	}
	return cube[1][2][3] + cube[0][1][2] + sizeof(int) * 0;
}`, 123+12)
}

func TestArrayOfPointers(t *testing.T) {
	expectExit(t, `
int a = 1;
int b = 2;
int c = 3;
int *tab[3];
int main() {
	int s;
	int i;
	tab[0] = &a;
	tab[1] = &b;
	tab[2] = &c;
	s = 0;
	for (i = 0; i < 3; i++) { s = s * 10 + *tab[i]; }
	return s;
}`, 123)
}

func TestNestedStructs(t *testing.T) {
	expectExit(t, `
struct inner { int a; int b; };
struct outer { int tag; struct inner in; };
struct outer o;
int main() {
	struct outer *p;
	o.tag = 1;
	o.in.a = 20;
	o.in.b = 300;
	p = &o;
	return p->tag + p->in.a + o.in.b;
}`, 321)
}

func TestStructFieldAddress(t *testing.T) {
	expectExit(t, `
struct pair { int x; int y; };
void bump(int *p) { *p += 5; }
int main() {
	struct pair v;
	v.x = 1;
	v.y = 2;
	bump(&v.x);
	bump(&v.y);
	return v.x * 10 + v.y;
}`, 67)
}

func TestPointerComparisons(t *testing.T) {
	expectExit(t, `
int arr[4];
int main() {
	int *p; int *q;
	p = &arr[1];
	q = &arr[3];
	return (p < q) + (q > p) * 10 + (p == p) * 100 + (p != q) * 1000 + (p == 0) * 10000;
}`, 1111)
}

func TestCharPointerWalk(t *testing.T) {
	expectExit(t, `
int main() {
	char *s;
	int sum;
	s = "abc";
	sum = 0;
	while (*s) {
		sum += *s;
		s++;
	}
	return sum;
}`, 'a'+'b'+'c')
}

func TestNegativeModAndDiv(t *testing.T) {
	// C99 semantics: truncation toward zero.
	expectExit(t, `
int main() {
	int a; int b;
	a = -7; b = 2;
	return (a / b) * 100 + (a % b) * 10 + (7 / -2);
}`, (-7/2)*100+(-7%2)*10+(7/-2))
}

func TestShiftEdge(t *testing.T) {
	expectExit(t, `
int main() {
	int x;
	x = 1;
	x = x << 30;
	x = x >> 28;	/* arithmetic */
	return x;
}`, 1<<30>>28)
	expectExit(t, `
int main() {
	int x;
	int n;
	x = -16;
	n = 2;
	return x >> n;	/* srav */
}`, -4)
}

func TestWhileWithComplexCondition(t *testing.T) {
	expectExit(t, `
int main() {
	int i; int j;
	i = 0; j = 10;
	while (i < 5 && j > 7 || i == 0) {
		i++;
		j--;
	}
	return i * 10 + j;
}`, func() int32 {
		i, j := int32(0), int32(10)
		for (i < 5 && j > 7) || i == 0 {
			i++
			j--
		}
		return i*10 + j
	}())
}

func TestRecursionDepth(t *testing.T) {
	expectExit(t, `
int down(int n) {
	if (n == 0) { return 0; }
	return 1 + down(n - 1);
}
int main() { return down(500); }`, 500)
}

func TestMutualRecursion(t *testing.T) {
	expectExit(t, `
int isOdd(int n);
int isEven(int n) { if (n == 0) { return 1; } return isOdd(n - 1); }
int isOdd(int n) { if (n == 0) { return 0; } return isEven(n - 1); }
int main() { return isEven(100) * 10 + isOdd(100); }`, 10)
}

func TestTernaryNested(t *testing.T) {
	expectExit(t, `
int classify(int x) {
	return x < 0 ? -1 : x == 0 ? 0 : 1;
}
int main() {
	return classify(-5) + classify(0) * 10 + classify(9) * 100;
}`, -1+0+100)
}

func TestAssignmentChains(t *testing.T) {
	expectExit(t, `
int main() {
	int a; int b; int c;
	a = b = c = 14;
	return a + b + c;
}`, 42)
}

func TestCharComparisonsUnsigned(t *testing.T) {
	// MiniC chars are unsigned bytes: 200 > 100.
	expectExit(t, `
int main() {
	char hi; char lo;
	hi = 200;
	lo = 100;
	if (hi > lo) { return 1; }
	return 0;
}`, 1)
}

func TestGlobalCharTable(t *testing.T) {
	expectExit(t, `
char hex[] = "0123456789abcdef";
int main() {
	return hex[10] * 1 + hex[15] - hex[0];
}`, 'a'+'f'-'0')
}

func TestBigImmediates(t *testing.T) {
	expectExit(t, `
int big = 0x12345678;
int main() {
	int x;
	x = 0x7fffffff;
	x = x + 1;	/* wraps */
	if (x != (-2147483647 - 1)) { return 1; }
	return big >> 24;
}`, 0x12)
}

func TestEmptyFunctionAndStatements(t *testing.T) {
	expectExit(t, `
void nothing() { }
int main() {
	;
	;
	nothing();
	{ }
	return 3;
}`, 3)
}

func TestDanglingElse(t *testing.T) {
	// else binds to the nearest if.
	expectExit(t, `
int f(int a, int b) {
	if (a)
		if (b) { return 1; }
		else { return 2; }
	return 3;
}
int main() {
	return f(1, 1) * 100 + f(1, 0) * 10 + f(0, 0);
}`, 123)
}

func TestSwitchOnChar(t *testing.T) {
	expectExit(t, `
int score(char c) {
	switch (c) {
	case 'a': return 1;
	case 'z': return 26;
	default: return 0;
	}
}
int main() {
	return score('a') + score('z') * 10 + score('q');
}`, 1+260)
}

func TestManyLocalsSpillToStack(t *testing.T) {
	// More scalar locals than s-registers: some must live on the
	// stack and everything still computes.
	expectExit(t, `
int main() {
	int a; int b; int c; int d; int e; int f;
	int g; int h; int i; int j; int k; int l;
	a = 1; b = 2; c = 3; d = 4; e = 5; f = 6;
	g = 7; h = 8; i = 9; j = 10; k = 11; l = 12;
	a = a + l; b = b + k; c = c + j; d = d + i; e = e + h; f = f + g;
	return a + b + c + d + e + f;
}`, 13*6)
}

func TestStackArgsWithSpills(t *testing.T) {
	expectExit(t, `
int seven(int a, int b, int c, int d, int e, int f, int g) {
	return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6 + g * 7;
}
int wrap(int base) {
	return seven(base, base + 1, base + 2, base + 3, base + 4, base + 5, base + 6);
}
int main() { return wrap(1) + wrap(2); }`, func() int32 {
		seven := func(a, b, c, d, e, f, g int32) int32 {
			return a + b*2 + c*3 + d*4 + e*5 + f*6 + g*7
		}
		wrap := func(base int32) int32 {
			return seven(base, base+1, base+2, base+3, base+4, base+5, base+6)
		}
		return wrap(1) + wrap(2)
	}())
}

func TestConstantFoldingStatic(t *testing.T) {
	// Constant expressions fold at compile time: the generated text
	// for main should contain no mult for 6*7.
	asm, err := minic.CompileBareToAsm(`int main() { return 6 * 7 + (1 << 4); }`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(asm, "mult") {
		t.Error("6*7 was not folded")
	}
	if !strings.Contains(asm, "li $t0, 58") && !strings.Contains(asm, ", 58") {
		t.Errorf("folded constant 58 not in output:\n%s", asm)
	}
}

func TestCompileToAsmHasFuncDirectives(t *testing.T) {
	asm, err := minic.CompileToAsm(`int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".func main 0", ".func malloc 1", ".endfunc", "__start:"} {
		if !strings.Contains(asm, want) {
			t.Errorf("asm missing %q", want)
		}
	}
}

func TestErrorLineNumbersAdjusted(t *testing.T) {
	// The runtime prototypes are prepended; user errors must still
	// report user line numbers.
	_, err := minic.Compile("int main() {\n\treturn x;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error line not adjusted: %v", err)
	}
}

func TestCharArithPromotion(t *testing.T) {
	expectExit(t, `
int main() {
	char c;
	int x;
	c = 250;
	x = c + 10;	/* promoted to int: 260 */
	return x;
}`, 260)
}

func TestGlobalInitNegativeAndHex(t *testing.T) {
	expectExit(t, `
int a = -5;
int b = 0xff;
int tab[3] = {-1, -2, -3};
int main() { return a + b + tab[0] + tab[1] + tab[2]; }`, -5+255-6)
}

func TestDoWhileBreakContinue(t *testing.T) {
	expectExit(t, `
int main() {
	int i; int s;
	i = 0; s = 0;
	do {
		i++;
		if (i == 3) { continue; }
		if (i > 6) { break; }
		s += i;
	} while (i < 100);
	return s;
}`, 1+2+4+5+6)
}
