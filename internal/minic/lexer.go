package minic

import (
	"fmt"
	"strings"
)

// Error is a compile error with position information.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

func errAt(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src. Comments (// and /* */) are stripped.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, errAt(line, "unterminated block comment")
			}
			i += 2
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentChar(src[j]) {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: word, line: line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			base := int64(10)
			if c == '0' && j+1 < n && (src[j+1] == 'x' || src[j+1] == 'X') {
				base = 16
				j += 2
			}
			v := int64(0)
			start := j
			for j < n {
				d := digitVal(src[j])
				if d < 0 || d >= base {
					break
				}
				v = v*base + d
				j++
			}
			if base == 16 && j == start {
				return nil, errAt(line, "malformed hex literal")
			}
			if j < n && isIdentChar(src[j]) {
				return nil, errAt(line, "malformed number near %q", src[i:j+1])
			}
			toks = append(toks, token{kind: tokNumber, num: v, line: line})
			i = j
		case c == '"':
			s, j, err := lexString(src, i, line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, str: s, line: line})
			i = j
		case c == '\'':
			v, j, err := lexCharLit(src, i, line)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokChar, num: v, line: line})
			i = j
		default:
			matched := false
			for _, p := range punctuators {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errAt(line, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func digitVal(c byte) int64 {
	switch {
	case c >= '0' && c <= '9':
		return int64(c - '0')
	case c >= 'a' && c <= 'f':
		return int64(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int64(c-'A') + 10
	}
	return -1
}

func lexString(src string, i, line int) (string, int, error) {
	var b strings.Builder
	j := i + 1
	for j < len(src) && src[j] != '"' {
		c := src[j]
		if c == '\n' {
			return "", 0, errAt(line, "newline in string literal")
		}
		if c == '\\' {
			j++
			if j >= len(src) {
				break
			}
			e, err := escape(src[j], line)
			if err != nil {
				return "", 0, err
			}
			b.WriteByte(e)
			j++
			continue
		}
		b.WriteByte(c)
		j++
	}
	if j >= len(src) {
		return "", 0, errAt(line, "unterminated string literal")
	}
	return b.String(), j + 1, nil
}

func lexCharLit(src string, i, line int) (int64, int, error) {
	j := i + 1
	if j >= len(src) {
		return 0, 0, errAt(line, "unterminated char literal")
	}
	var v byte
	if src[j] == '\\' {
		j++
		if j >= len(src) {
			return 0, 0, errAt(line, "unterminated char literal")
		}
		e, err := escape(src[j], line)
		if err != nil {
			return 0, 0, err
		}
		v = e
		j++
	} else {
		v = src[j]
		j++
	}
	if j >= len(src) || src[j] != '\'' {
		return 0, 0, errAt(line, "unterminated char literal")
	}
	return int64(v), j + 1, nil
}

func escape(c byte, line int) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, errAt(line, "unknown escape \\%c", c)
}
