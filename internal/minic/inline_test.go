package minic_test

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/minic"
)

// runOpt compiles with options and runs.
func runOpt(t *testing.T, src string, opts minic.Options) *cpu.Machine {
	t.Helper()
	im, err := minic.CompileOpt(src, opts)
	if err != nil {
		t.Fatalf("CompileOpt: %v", err)
	}
	m := cpu.New(im, nil)
	if _, err := m.Run(20_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !m.Halted {
		t.Fatal("did not finish")
	}
	return m
}

const inlineSubject = `
int table[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
int grab(int i) { return table[i & 15]; }
int scale(int v, int k) { return v * k + 1; }
int g;
int impure(int x) { g += x; return g; }
int main() {
	int s;
	s = 0;
	for (int i = 0; i < 100; i++) {
		s += scale(grab(i), 3);
		s += impure(1);
	}
	return s & 0x7fff;
}`

func TestInlinePreservesSemantics(t *testing.T) {
	base := runOpt(t, inlineSubject, minic.Options{})
	opt := runOpt(t, inlineSubject, minic.Options{Inline: true})
	if base.ExitCode != opt.ExitCode {
		t.Fatalf("inlining changed the result: %d vs %d", base.ExitCode, opt.ExitCode)
	}
	if opt.Count >= base.Count {
		t.Errorf("inlining did not reduce instructions: %d vs %d", opt.Count, base.Count)
	}
}

func TestInlineRemovesCalls(t *testing.T) {
	asmBase, err := minic.CompileToAsmOpt(inlineSubject, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	asmOpt, err := minic.CompileToAsmOpt(inlineSubject, minic.Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(asmOpt, "jal grab") >= strings.Count(asmBase, "jal grab") {
		t.Error("grab calls not inlined")
	}
	if strings.Count(asmOpt, "jal scale") >= strings.Count(asmBase, "jal scale") {
		t.Error("scale calls not inlined")
	}
	// impure has an assignment in its body: must NOT be inlined.
	if strings.Count(asmOpt, "jal impure") != strings.Count(asmBase, "jal impure") {
		t.Error("impure function was inlined")
	}
}

func TestInlineSkipsSideEffectArgs(t *testing.T) {
	// grab(i++) must keep the call (or at least keep i++ exactly
	// once); the pass declines impure arguments, so semantics hold.
	src := `
int table[16];
int grab(int i) { return table[i & 15]; }
int main() {
	int i;
	int s;
	for (i = 0; i < 16; i++) { table[i] = i * 7; }
	i = 0;
	s = 0;
	while (i < 16) {
		s += grab(i++);
	}
	return s;
}`
	base := runOpt(t, src, minic.Options{})
	opt := runOpt(t, src, minic.Options{Inline: true})
	if base.ExitCode != opt.ExitCode {
		t.Fatalf("side-effect argument mishandled: %d vs %d", base.ExitCode, opt.ExitCode)
	}
	if base.ExitCode != 7*(15*16/2) {
		t.Fatalf("baseline wrong: %d", base.ExitCode)
	}
}

func TestInlineRecursionSafe(t *testing.T) {
	// Self-recursive single-return functions contain a call, so they
	// are not inlinable; compilation must not loop.
	src := `
int f(int n) { return n == 0 ? 0 : f(n - 1) + 1; }
int main() { return f(10); }`
	m := runOpt(t, src, minic.Options{Inline: true})
	if m.ExitCode != 10 {
		t.Errorf("exit = %d", m.ExitCode)
	}
}

func TestInlineNestedAccessors(t *testing.T) {
	src := `
int a(int x) { return x + 1; }
int b(int x) { return a(x) * 2; }	/* body calls a: not inlinable itself */
int c(int x) { return x * x; }
int main() { return b(c(3)); }`
	m := runOpt(t, src, minic.Options{Inline: true})
	if m.ExitCode != (9+1)*2 {
		t.Errorf("exit = %d", m.ExitCode)
	}
}
