package minic

import (
	"fmt"

	"repro/internal/isa"
)

// value is the result of expression codegen: a register that either
// belongs to the temp pool (owned) or is borrowed (an s-register local,
// or $zero for the constant 0) and must not be written or freed.
type value struct {
	reg   int
	owned bool
}

var zeroValue = value{reg: isa.RegZero}

func (cg *codegen) alloc(line int) (int, error) {
	for i, used := range cg.temps {
		if !used {
			cg.temps[i] = true
			return tempRegs[i], nil
		}
	}
	return 0, errAt(line, "expression too complex (out of temporaries)")
}

func (cg *codegen) freeTemp(reg int) {
	for i, r := range tempRegs {
		if r == reg {
			cg.temps[i] = false
			return
		}
	}
	// Invariant violation: recovered into a compile error by generate.
	panic(fmt.Sprintf("freeing non-temp register %s", isa.RegName(reg)))
}

func (cg *codegen) release(v value) {
	if v.owned {
		cg.freeTemp(v.reg)
	}
}

// own returns v if owned, otherwise copies it into a fresh temp so the
// caller may overwrite it.
func (cg *codegen) own(v value, line int) (value, error) {
	if v.owned {
		return v, nil
	}
	t, err := cg.alloc(line)
	if err != nil {
		return value{}, err
	}
	cg.emitf("move %s, %s", isa.RegName(t), isa.RegName(v.reg))
	return value{reg: t, owned: true}, nil
}

// spillLive saves all allocated temps to their frame slots around a
// call, returning the spilled pool indices.
func (cg *codegen) spillLive() []int {
	var spilled []int
	for i, used := range cg.temps {
		if used {
			cg.emitf("sw %s, %d($sp)", isa.RegName(tempRegs[i]), cg.spillBase+4*i)
			spilled = append(spilled, i)
		}
	}
	return spilled
}

func (cg *codegen) reload(spilled []int) {
	for _, i := range spilled {
		cg.emitf("lw %s, %d($sp)", isa.RegName(tempRegs[i]), cg.spillBase+4*i)
	}
}

// addrRef is a resolved lvalue location.
type addrRef struct {
	// Register-resident local: reg >= 0 and no memory form.
	reg int

	// Memory forms (reg < 0):
	gpSym string // non-empty: $gp-relative symbol
	base  value  // base register (when gpSym == "")
	off   int32
	ty    *ctype
}

// operand renders the assembler memory operand.
func (a *addrRef) operand() string {
	if a.gpSym != "" {
		if a.off != 0 {
			return fmt.Sprintf("%%gp(%s+%d)", a.gpSym, a.off)
		}
		return fmt.Sprintf("%%gp(%s)", a.gpSym)
	}
	return fmt.Sprintf("%d(%s)", a.off, isa.RegName(a.base.reg))
}

func (cg *codegen) releaseAddr(a addrRef) {
	if a.reg < 0 && a.gpSym == "" {
		cg.release(a.base)
	}
}

// loadTyped emits the load of ty from the operand into dst.
func (cg *codegen) loadFrom(ty *ctype, dst int, a *addrRef) {
	if ty.kind == tyChar {
		cg.emitf("lbu %s, %s", isa.RegName(dst), a.operand())
	} else {
		cg.emitf("lw %s, %s", isa.RegName(dst), a.operand())
	}
}

func (cg *codegen) storeTo(ty *ctype, src int, a *addrRef) {
	if ty.kind == tyChar {
		cg.emitf("sb %s, %s", isa.RegName(src), a.operand())
	} else {
		cg.emitf("sw %s, %s", isa.RegName(src), a.operand())
	}
}

// storeTyped stores src through (base+off) with the width of ty.
func (cg *codegen) storeTyped(ty *ctype, src, base int, off int) {
	if ty.kind == tyChar {
		cg.emitf("sb %s, %d(%s)", isa.RegName(src), off, isa.RegName(base))
	} else {
		cg.emitf("sw %s, %d(%s)", isa.RegName(src), off, isa.RegName(base))
	}
}

// materialize turns an address into a register value.
func (cg *codegen) materialize(a addrRef, line int) (value, error) {
	if a.gpSym != "" {
		t, err := cg.alloc(line)
		if err != nil {
			return value{}, err
		}
		if a.off != 0 {
			cg.emitf("addiu %s, $gp, %%gp(%s+%d)", isa.RegName(t), a.gpSym, a.off)
		} else {
			cg.emitf("addiu %s, $gp, %%gp(%s)", isa.RegName(t), a.gpSym)
		}
		return value{reg: t, owned: true}, nil
	}
	if a.off == 0 {
		return a.base, nil
	}
	v, err := cg.own(a.base, line)
	if err != nil {
		return value{}, err
	}
	cg.emitf("addiu %s, %s, %d", isa.RegName(v.reg), isa.RegName(v.reg), a.off)
	return v, nil
}

// computeAddr resolves an lvalue (or aggregate) expression to a
// location. For a register-allocated scalar local it returns reg >= 0.
func (cg *codegen) computeAddr(e *expr) (addrRef, error) {
	switch e.op {
	case exVar:
		s := e.sym
		if s.reg >= 0 {
			return addrRef{reg: s.reg, ty: e.ty}, nil
		}
		switch s.kind {
		case symGlobal:
			if cg.gpOK[s.label] {
				return addrRef{reg: -1, gpSym: s.label, ty: e.ty}, nil
			}
			t, err := cg.alloc(e.line)
			if err != nil {
				return addrRef{}, err
			}
			cg.emitf("la %s, %s", isa.RegName(t), s.label)
			return addrRef{reg: -1, base: value{reg: t, owned: true}, ty: e.ty}, nil
		default:
			return addrRef{reg: -1, base: value{reg: isa.RegSP}, off: int32(s.frameOff), ty: e.ty}, nil
		}

	case exString:
		t, err := cg.alloc(e.line)
		if err != nil {
			return addrRef{}, err
		}
		cg.emitf("la %s, %s", isa.RegName(t), e.sym.label)
		return addrRef{reg: -1, base: value{reg: t, owned: true}, ty: e.ty}, nil

	case exDeref:
		p, err := cg.genExpr(e.lhs)
		if err != nil {
			return addrRef{}, err
		}
		return addrRef{reg: -1, base: p, ty: e.ty}, nil

	case exMember:
		a, err := cg.computeAddr(e.lhs)
		if err != nil {
			return addrRef{}, err
		}
		if a.reg >= 0 {
			return addrRef{}, errAt(e.line, "internal: member access on register value")
		}
		a.off += int32(e.off)
		a.ty = e.ty
		return a, nil

	case exIndex:
		return cg.indexAddr(e)
	}
	return addrRef{}, errAt(e.line, "internal: not an addressable expression (op %d)", e.op)
}

// indexAddr computes &base[idx].
func (cg *codegen) indexAddr(e *expr) (addrRef, error) {
	base, err := cg.genExpr(e.lhs) // pointer value (arrays decay)
	if err != nil {
		return addrRef{}, err
	}
	size := e.ty.size()
	if e.ty.kind == tyArray {
		size = e.ty.size() // row size for multi-dim indexing
	}
	// Constant index folds into the offset.
	if idx, ok := constVal(e.rhs); ok {
		off := int64(idx) * int64(size)
		if off >= -32000 && off <= 32000 {
			return addrRef{reg: -1, base: base, off: int32(off), ty: e.ty}, nil
		}
	}
	idx, err := cg.genExpr(e.rhs)
	if err != nil {
		return addrRef{}, err
	}
	scaled, err := cg.scale(idx, size, e.line)
	if err != nil {
		return addrRef{}, err
	}
	sum, err := cg.own(base, e.line)
	if err != nil {
		return addrRef{}, err
	}
	cg.emitf("addu %s, %s, %s", isa.RegName(sum.reg), isa.RegName(sum.reg), isa.RegName(scaled.reg))
	cg.release(scaled)
	return addrRef{reg: -1, base: sum, ty: e.ty}, nil
}

// scale multiplies v by size (for pointer arithmetic).
func (cg *codegen) scale(v value, size int, line int) (value, error) {
	if size == 1 {
		return v, nil
	}
	out, err := cg.own(v, line)
	if err != nil {
		return value{}, err
	}
	if sh := log2(size); sh >= 0 {
		cg.emitf("sll %s, %s, %d", isa.RegName(out.reg), isa.RegName(out.reg), sh)
		return out, nil
	}
	t, err := cg.alloc(line)
	if err != nil {
		return value{}, err
	}
	cg.emitf("li %s, %d", isa.RegName(t), size)
	cg.emitf("mult %s, %s", isa.RegName(out.reg), isa.RegName(t))
	cg.emitf("mflo %s", isa.RegName(out.reg))
	cg.freeTemp(t)
	return out, nil
}

func log2(n int) int {
	for s := 0; s < 31; s++ {
		if 1<<s == n {
			return s
		}
	}
	return -1
}

// genExpr evaluates e into a register.
func (cg *codegen) genExpr(e *expr) (value, error) {
	switch e.op {
	case exConst:
		if e.val == 0 {
			return zeroValue, nil
		}
		t, err := cg.alloc(e.line)
		if err != nil {
			return value{}, err
		}
		cg.emitf("li %s, %d", isa.RegName(t), int32(e.val))
		return value{reg: t, owned: true}, nil

	case exString:
		t, err := cg.alloc(e.line)
		if err != nil {
			return value{}, err
		}
		cg.emitf("la %s, %s", isa.RegName(t), e.sym.label)
		return value{reg: t, owned: true}, nil

	case exVar:
		s := e.sym
		if s.reg >= 0 {
			return value{reg: s.reg}, nil
		}
		// Aggregates evaluate to their address (decay).
		if !s.ty.isScalar() {
			a, err := cg.computeAddr(e)
			if err != nil {
				return value{}, err
			}
			return cg.materialize(a, e.line)
		}
		a, err := cg.computeAddr(e)
		if err != nil {
			return value{}, err
		}
		t, err := cg.alloc(e.line)
		if err != nil {
			return value{}, err
		}
		cg.loadFrom(s.ty, t, &a)
		cg.releaseAddr(a)
		return value{reg: t, owned: true}, nil

	case exBinary:
		return cg.genBinary(e)

	case exAssign:
		return cg.genAssign(e)

	case exIncDec:
		return cg.genIncDec(e)

	case exNeg:
		v, err := cg.genExpr(e.lhs)
		if err != nil {
			return value{}, err
		}
		out, err := cg.own(v, e.line)
		if err != nil {
			return value{}, err
		}
		cg.emitf("subu %s, $zero, %s", isa.RegName(out.reg), isa.RegName(out.reg))
		return out, nil

	case exNot:
		v, err := cg.genExpr(e.lhs)
		if err != nil {
			return value{}, err
		}
		out, err := cg.own(v, e.line)
		if err != nil {
			return value{}, err
		}
		cg.emitf("sltiu %s, %s, 1", isa.RegName(out.reg), isa.RegName(out.reg))
		return out, nil

	case exBitNot:
		v, err := cg.genExpr(e.lhs)
		if err != nil {
			return value{}, err
		}
		out, err := cg.own(v, e.line)
		if err != nil {
			return value{}, err
		}
		cg.emitf("nor %s, %s, $zero", isa.RegName(out.reg), isa.RegName(out.reg))
		return out, nil

	case exDeref:
		if !e.ty.isScalar() {
			// Deref to an aggregate: the value is its address.
			return cg.genExpr(e.lhs)
		}
		a, err := cg.computeAddr(e)
		if err != nil {
			return value{}, err
		}
		t, err := cg.alloc(e.line)
		if err != nil {
			return value{}, err
		}
		cg.loadFrom(e.ty, t, &a)
		cg.releaseAddr(a)
		return value{reg: t, owned: true}, nil

	case exAddr:
		a, err := cg.computeAddr(e.lhs)
		if err != nil {
			return value{}, err
		}
		if a.reg >= 0 {
			return value{}, errAt(e.line, "internal: address of register local")
		}
		return cg.materialize(a, e.line)

	case exIndex, exMember:
		a, err := cg.computeAddr(e)
		if err != nil {
			return value{}, err
		}
		if !e.ty.isScalar() {
			return cg.materialize(a, e.line)
		}
		t, err := cg.alloc(e.line)
		if err != nil {
			return value{}, err
		}
		cg.loadFrom(e.ty, t, &a)
		cg.releaseAddr(a)
		return value{reg: t, owned: true}, nil

	case exCall:
		return cg.genCall(e)

	case exBuiltin:
		return cg.genBuiltin(e)

	case exCond:
		t, err := cg.alloc(e.line)
		if err != nil {
			return value{}, err
		}
		elseLbl, endLbl := cg.newLabel(), cg.newLabel()
		if err := cg.genBranchFalse(e.cond, elseLbl); err != nil {
			return value{}, err
		}
		v1, err := cg.genExpr(e.lhs)
		if err != nil {
			return value{}, err
		}
		cg.emitf("move %s, %s", isa.RegName(t), isa.RegName(v1.reg))
		cg.release(v1)
		cg.emitf("j %s", endLbl)
		cg.emitf("%s:", elseLbl)
		v2, err := cg.genExpr(e.rhs)
		if err != nil {
			return value{}, err
		}
		cg.emitf("move %s, %s", isa.RegName(t), isa.RegName(v2.reg))
		cg.release(v2)
		cg.emitf("%s:", endLbl)
		return value{reg: t, owned: true}, nil

	case exLogAnd, exLogOr:
		t, err := cg.alloc(e.line)
		if err != nil {
			return value{}, err
		}
		shortLbl, endLbl := cg.newLabel(), cg.newLabel()
		if e.op == exLogAnd {
			if err := cg.genBranchFalse(e.lhs, shortLbl); err != nil {
				return value{}, err
			}
			if err := cg.genBranchFalse(e.rhs, shortLbl); err != nil {
				return value{}, err
			}
			cg.emitf("li %s, 1", isa.RegName(t))
			cg.emitf("j %s", endLbl)
			cg.emitf("%s:", shortLbl)
			cg.emitf("move %s, $zero", isa.RegName(t))
		} else {
			if err := cg.genBranchTrue(e.lhs, shortLbl); err != nil {
				return value{}, err
			}
			if err := cg.genBranchTrue(e.rhs, shortLbl); err != nil {
				return value{}, err
			}
			cg.emitf("move %s, $zero", isa.RegName(t))
			cg.emitf("j %s", endLbl)
			cg.emitf("%s:", shortLbl)
			cg.emitf("li %s, 1", isa.RegName(t))
		}
		cg.emitf("%s:", endLbl)
		return value{reg: t, owned: true}, nil

	case exComma:
		v, err := cg.genExpr(e.lhs)
		if err != nil {
			return value{}, err
		}
		cg.release(v)
		return cg.genExpr(e.rhs)
	}
	return value{}, errAt(e.line, "internal: unknown expression kind %d", e.op)
}
