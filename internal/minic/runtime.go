package minic

// The MiniC runtime library. It is compiled together with every
// program (prototypes first, bodies after user code) so user sources
// can call it anywhere. Like a real libc it contributes static
// instructions whether or not they execute — the paper's Table 1
// shows only a fraction of static instructions executing, and the
// runtime reproduces that property honestly.

// runtimeProto is prepended before user code.
const runtimeProto = `
char *malloc(int n);
void free_all();
void memcpy(char *dst, char *src, int n);
void memset(char *p, int v, int n);
int strlen(char *s);
int strcmp(char *a, char *b);
void strcpy(char *dst, char *src);
int strncmp(char *a, char *b, int n);
void puts(char *s);
int atoi(char *s);
void itoa(int v, char *out);
int abs(int v);
`

// runtimeBody is appended after user code.
const runtimeBody = `
char *__heap_ptr = 0;
char *__heap_end = 0;

char *malloc(int n) {
	char *p;
	n = (n + 3) & ~3;
	if (__heap_ptr == 0 || __heap_end - __heap_ptr < n) {
		int chunk;
		chunk = 65536;
		if (n > chunk) { chunk = (n + 4095) & ~4095; }
		__heap_ptr = sbrk(chunk);
		__heap_end = __heap_ptr + chunk;
	}
	p = __heap_ptr;
	__heap_ptr = __heap_ptr + n;
	return p;
}

void free_all() {
	/* Reset the bump allocator to the current chunk start: MiniC
	   programs that allocate per-phase arenas call this between
	   phases. Memory already handed out stays mapped. */
	__heap_ptr = __heap_end;
}

void memcpy(char *dst, char *src, int n) {
	int i;
	for (i = 0; i < n; i++) {
		dst[i] = src[i];
	}
}

void memset(char *p, int v, int n) {
	int i;
	for (i = 0; i < n; i++) {
		p[i] = v;
	}
}

int strlen(char *s) {
	int n;
	n = 0;
	while (s[n]) { n++; }
	return n;
}

int strcmp(char *a, char *b) {
	int i;
	i = 0;
	while (a[i] && a[i] == b[i]) { i++; }
	return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
	int i;
	i = 0;
	while (i < n && a[i] && a[i] == b[i]) { i++; }
	if (i == n) { return 0; }
	return a[i] - b[i];
}

void strcpy(char *dst, char *src) {
	int i;
	i = 0;
	while (src[i]) {
		dst[i] = src[i];
		i++;
	}
	dst[i] = 0;
}

void puts(char *s) {
	print_str(s);
	putchar('\n');
}

int atoi(char *s) {
	int v;
	int neg;
	v = 0;
	neg = 0;
	while (*s == ' ') { s++; }
	if (*s == '-') { neg = 1; s++; }
	while (*s >= '0' && *s <= '9') {
		v = v * 10 + (*s - '0');
		s++;
	}
	if (neg) { return -v; }
	return v;
}

void itoa(int v, char *out) {
	char tmp[12];
	int i;
	int j;
	if (v == 0) {
		out[0] = '0';
		out[1] = 0;
		return;
	}
	j = 0;
	if (v < 0) {
		out[j] = '-';
		j++;
		v = -v;
	}
	i = 0;
	while (v > 0) {
		tmp[i] = '0' + v % 10;
		v = v / 10;
		i++;
	}
	while (i > 0) {
		i--;
		out[j] = tmp[i];
		j++;
	}
	out[j] = 0;
}

int abs(int v) {
	if (v < 0) { return -v; }
	return v;
}
`
