package minic

import (
	"strings"

	"repro/internal/asm"
	"repro/internal/program"
)

// Options controls optional compiler passes.
type Options struct {
	// Inline rewrites calls to single-return-expression accessor
	// functions into their bodies (the optimization the paper's
	// Section 6 discusses for eliminating prologue/epilogue
	// repetition).
	Inline bool
}

// CompileToAsm compiles MiniC source (with the runtime library) and
// returns the generated assembler source.
func CompileToAsm(src string) (string, error) {
	return CompileToAsmOpt(src, Options{})
}

// CompileToAsmOpt is CompileToAsm with compiler options.
func CompileToAsmOpt(src string, opts Options) (string, error) {
	full := runtimeProto + "\n" + src + "\n" + runtimeBody
	u, err := parse(full)
	if err != nil {
		return "", adjustLine(err)
	}
	if opts.Inline {
		inlineFunctions(u)
	}
	return generate(u)
}

// CompileBareToAsm compiles MiniC source without the runtime library
// (used by compiler tests that want minimal output).
func CompileBareToAsm(src string) (string, error) {
	u, err := parse(src)
	if err != nil {
		return "", err
	}
	return generate(u)
}

// Compile compiles MiniC source plus the runtime into a loadable
// program image.
func Compile(src string) (*program.Image, error) {
	return CompileOpt(src, Options{})
}

// CompileOpt is Compile with compiler options.
func CompileOpt(src string, opts Options) (*program.Image, error) {
	text, err := CompileToAsmOpt(src, opts)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(text)
}

// protoLines is the line offset the runtime prototypes introduce; user
// line numbers in errors are shifted back by this amount.
var protoLines = strings.Count(runtimeProto, "\n") + 1

// adjustLine rebases an error's line number to the user source.
func adjustLine(err error) error {
	if ce, ok := err.(*Error); ok && ce.Line > protoLines {
		return &Error{Line: ce.Line - protoLines, Msg: ce.Msg}
	}
	return err
}
