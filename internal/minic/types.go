package minic

import "fmt"

// typeKind enumerates MiniC types.
type typeKind uint8

const (
	tyVoid typeKind = iota
	tyInt
	tyChar // unsigned byte
	tyPtr
	tyArray
	tyStruct
)

// ctype is a MiniC type. Types are interned only loosely; compare with
// sameType, not ==.
type ctype struct {
	kind typeKind
	elem *ctype      // ptr/array element
	n    int         // array length
	sdef *structType // struct definition
}

// structType is a struct definition with laid-out fields.
type structType struct {
	name   string
	fields []field
	size   int
	done   bool // layout complete (guards recursive use)
}

type field struct {
	name string
	ty   *ctype
	off  int
}

var (
	typeVoid = &ctype{kind: tyVoid}
	typeInt  = &ctype{kind: tyInt}
	typeChar = &ctype{kind: tyChar}
)

func ptrTo(e *ctype) *ctype { return &ctype{kind: tyPtr, elem: e} }
func arrayOf(e *ctype, n int) *ctype {
	return &ctype{kind: tyArray, elem: e, n: n}
}

// size returns the storage size in bytes.
func (t *ctype) size() int {
	switch t.kind {
	case tyInt, tyPtr:
		return 4
	case tyChar:
		return 1
	case tyArray:
		return t.elem.size() * t.n
	case tyStruct:
		return t.sdef.size
	default:
		return 0
	}
}

// align returns the required alignment in bytes.
func (t *ctype) align() int {
	switch t.kind {
	case tyInt, tyPtr:
		return 4
	case tyChar:
		return 1
	case tyArray:
		return t.elem.align()
	case tyStruct:
		a := 1
		for _, f := range t.sdef.fields {
			if fa := f.ty.align(); fa > a {
				a = fa
			}
		}
		return a
	default:
		return 1
	}
}

// isScalar reports whether t fits in a register (int, char, pointer).
func (t *ctype) isScalar() bool {
	return t.kind == tyInt || t.kind == tyChar || t.kind == tyPtr
}

// isArith reports whether t participates in arithmetic.
func (t *ctype) isArith() bool { return t.kind == tyInt || t.kind == tyChar }

func (t *ctype) String() string {
	switch t.kind {
	case tyVoid:
		return "void"
	case tyInt:
		return "int"
	case tyChar:
		return "char"
	case tyPtr:
		return t.elem.String() + "*"
	case tyArray:
		return fmt.Sprintf("%s[%d]", t.elem, t.n)
	case tyStruct:
		return "struct " + t.sdef.name
	default:
		return "?"
	}
}

// sameType reports structural type equality.
func sameType(a, b *ctype) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.kind != b.kind {
		return false
	}
	switch a.kind {
	case tyPtr:
		return sameType(a.elem, b.elem)
	case tyArray:
		return a.n == b.n && sameType(a.elem, b.elem)
	case tyStruct:
		return a.sdef == b.sdef
	default:
		return true
	}
}

// decay converts array types to pointers (C array decay).
func decay(t *ctype) *ctype {
	if t.kind == tyArray {
		return ptrTo(t.elem)
	}
	return t
}

// findField returns the field named name, or nil.
func (s *structType) findField(name string) *field {
	for i := range s.fields {
		if s.fields[i].name == name {
			return &s.fields[i]
		}
	}
	return nil
}

// layout assigns field offsets and the total size.
func (s *structType) layout() {
	off := 0
	for i := range s.fields {
		a := s.fields[i].ty.align()
		off = (off + a - 1) / a * a
		s.fields[i].off = off
		off += s.fields[i].ty.size()
	}
	// Round struct size to word alignment so arrays of structs keep
	// their int fields aligned.
	s.size = (off + 3) &^ 3
	if s.size == 0 {
		s.size = 4
	}
	s.done = true
}
