package minic

import "fmt"

// parser turns tokens into a typed AST. MiniC requires declaration
// before use, so parsing and semantic analysis are fused: every
// expression node carries its resolved type when the parser returns.
type parser struct {
	toks []token
	pos  int

	unit    *unit
	structs map[string]*structType
	funcs   map[string]*funcDecl
	scopes  []map[string]*symbol

	curFn       *funcDecl
	loopDepth   int
	switchDepth int
	strCount    int
}

func parse(src string) (*unit, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:    toks,
		unit:    &unit{strings: make(map[string]string)},
		structs: make(map[string]*structType),
		funcs:   make(map[string]*funcDecl),
	}
	p.pushScope()
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	// Every referenced function must be defined (single TU).
	for _, f := range p.unit.funcs {
		if !f.defined {
			return nil, errAt(f.line, "function %s declared but never defined", f.name)
		}
	}
	return p.unit, nil
}

// token helpers

func (p *parser) tok() token  { return p.toks[p.pos] }
func (p *parser) line() int   { return p.tok().line }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(text string) bool {
	t := p.tok()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return errAt(p.line(), "expected %q, found %s", text, p.tok())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.tok()
	if t.kind != tokIdent {
		return "", errAt(t.line, "expected identifier, found %s", t)
	}
	p.pos++
	return t.text, nil
}

// scopes

func (p *parser) pushScope() { p.scopes = append(p.scopes, make(map[string]*symbol)) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) lookup(name string) *symbol {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if s, ok := p.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (p *parser) declare(s *symbol, line int) error {
	top := p.scopes[len(p.scopes)-1]
	if _, dup := top[s.name]; dup {
		return errAt(line, "redeclaration of %q", s.name)
	}
	top[s.name] = s
	return nil
}

// top level

func (p *parser) parseUnit() error {
	for p.tok().kind != tokEOF {
		switch {
		case p.at("struct") && p.toks[p.pos+2].text == "{":
			if err := p.structDef(); err != nil {
				return err
			}
		case p.at("enum"):
			if err := p.enumDef(); err != nil {
				return err
			}
		default:
			if err := p.globalOrFunc(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *parser) structDef() error {
	line := p.line()
	p.next() // struct
	name, err := p.ident()
	if err != nil {
		return err
	}
	if s, dup := p.structs[name]; dup && s.done {
		return errAt(line, "redefinition of struct %s", name)
	}
	st := &structType{name: name}
	p.structs[name] = st
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		base, err := p.baseType()
		if err != nil {
			return err
		}
		for {
			ty, fname, err := p.declarator(base)
			if err != nil {
				return err
			}
			if ty.kind == tyStruct && !ty.sdef.done {
				return errAt(p.line(), "field %s has incomplete type", fname)
			}
			if ty.kind == tyVoid {
				return errAt(p.line(), "field %s has void type", fname)
			}
			if st.findField(fname) != nil {
				return errAt(p.line(), "duplicate field %s", fname)
			}
			st.fields = append(st.fields, field{name: fname, ty: ty})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	st.layout()
	return p.expect(";")
}

func (p *parser) enumDef() error {
	p.next() // enum
	// optional tag
	if p.tok().kind == tokIdent {
		p.next()
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	next := int64(0)
	for !p.accept("}") {
		line := p.line()
		name, err := p.ident()
		if err != nil {
			return err
		}
		if p.accept("=") {
			e, err := p.assignExpr()
			if err != nil {
				return err
			}
			v, ok := constVal(e)
			if !ok {
				return errAt(line, "enum value for %s is not constant", name)
			}
			next = v
		}
		s := &symbol{name: name, kind: symEnumConst, ty: typeInt, enumVal: next}
		if err := p.declare(s, line); err != nil {
			return err
		}
		next++
		if !p.accept(",") {
			if !p.at("}") {
				return errAt(p.line(), "expected ',' or '}' in enum")
			}
		}
	}
	return p.expect(";")
}

// baseType parses int/char/void/struct-S.
func (p *parser) baseType() (*ctype, error) {
	t := p.tok()
	switch {
	case p.accept("int"):
		return typeInt, nil
	case p.accept("char"):
		return typeChar, nil
	case p.accept("void"):
		return typeVoid, nil
	case p.accept("struct"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[name]
		if !ok {
			// Allow "struct S *" before S is defined (self reference
			// handled by structDef pre-registering).
			st = &structType{name: name}
			p.structs[name] = st
		}
		return &ctype{kind: tyStruct, sdef: st}, nil
	}
	return nil, errAt(t.line, "expected type, found %s", t)
}

// declarator parses {*} ident {[N]} on top of base.
func (p *parser) declarator(base *ctype) (*ctype, string, error) {
	ty := base
	for p.accept("*") {
		ty = ptrTo(ty)
	}
	name, err := p.ident()
	if err != nil {
		return nil, "", err
	}
	// Array suffixes, outermost first: int a[2][3] is array 2 of array 3.
	var dims []int
	for p.accept("[") {
		if p.accept("]") {
			dims = append(dims, -1) // length from initializer
			continue
		}
		e, err := p.assignExpr()
		if err != nil {
			return nil, "", err
		}
		n, ok := constVal(e)
		if !ok || n <= 0 {
			return nil, "", errAt(p.line(), "array dimension must be a positive constant")
		}
		if err := p.expect("]"); err != nil {
			return nil, "", err
		}
		dims = append(dims, int(n))
	}
	for i := len(dims) - 1; i >= 0; i-- {
		ty = arrayOf(ty, dims[i])
	}
	return ty, name, nil
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	return p.at("int") || p.at("char") || p.at("void") || p.at("struct")
}

func (p *parser) globalOrFunc() error {
	line := p.line()
	base, err := p.baseType()
	if err != nil {
		return err
	}
	ty, name, err := p.declarator(base)
	if err != nil {
		return err
	}
	if p.at("(") {
		return p.funcDef(ty, name, line)
	}
	// Global variable(s).
	for {
		if err := p.globalVar(ty, name, line); err != nil {
			return err
		}
		if !p.accept(",") {
			break
		}
		ty, name, err = p.declarator(base)
		if err != nil {
			return err
		}
	}
	return p.expect(";")
}

func (p *parser) globalVar(ty *ctype, name string, line int) error {
	if ty.kind == tyVoid {
		return errAt(line, "global %s has void type", name)
	}
	s := &symbol{name: name, kind: symGlobal, ty: ty, label: "g_" + name, reg: -1}
	if p.accept("=") {
		if err := p.globalInit(s); err != nil {
			return err
		}
		s.hasInit = true
	}
	if ty.kind == tyArray && ty.n < 0 {
		if !s.hasInit {
			return errAt(line, "array %s has no size", name)
		}
		n := len(s.initVals)
		if ty.elem.kind == tyChar {
			// string init already includes NUL
		}
		s.ty = arrayOf(ty.elem, n)
	}
	if err := p.declare(s, line); err != nil {
		return err
	}
	p.unit.globals = append(p.unit.globals, s)
	return nil
}

// globalInit parses a constant initializer into s.initVals.
func (p *parser) globalInit(s *symbol) error {
	line := p.line()
	ty := s.ty
	switch {
	case ty.kind == tyArray && p.tok().kind == tokString && ty.elem.kind == tyChar:
		str := p.next().str
		for i := 0; i < len(str); i++ {
			s.initVals = append(s.initVals, initVal{val: int64(str[i])})
		}
		s.initVals = append(s.initVals, initVal{val: 0})
		return nil
	case ty.kind == tyArray:
		if err := p.expect("{"); err != nil {
			return err
		}
		for !p.accept("}") {
			iv, err := p.constInitVal(ty.elem)
			if err != nil {
				return err
			}
			s.initVals = append(s.initVals, iv)
			if !p.accept(",") && !p.at("}") {
				return errAt(p.line(), "expected ',' or '}' in initializer")
			}
		}
		if ty.n >= 0 && len(s.initVals) > ty.n {
			return errAt(line, "too many initializers for %s", s.name)
		}
		return nil
	case ty.isScalar():
		iv, err := p.constInitVal(ty)
		if err != nil {
			return err
		}
		s.initVals = []initVal{iv}
		return nil
	}
	return errAt(line, "cannot initialize %s of type %s", s.name, ty)
}

// constInitVal parses one constant initializer element.
func (p *parser) constInitVal(ty *ctype) (initVal, error) {
	line := p.line()
	// String literal: pointer to interned string.
	if p.tok().kind == tokString {
		if !(ty.kind == tyPtr && ty.elem.kind == tyChar) {
			return initVal{}, errAt(line, "string initializer for non-char* element")
		}
		lbl := p.internString(p.next().str)
		return initVal{sym: lbl, isStr: true}, nil
	}
	// &global or bare array name -> address.
	if p.accept("&") {
		name, err := p.ident()
		if err != nil {
			return initVal{}, err
		}
		g := p.lookup(name)
		if g == nil || g.kind != symGlobal {
			return initVal{}, errAt(line, "&%s is not a global", name)
		}
		return initVal{sym: g.label}, nil
	}
	if p.tok().kind == tokIdent {
		if g := p.lookup(p.tok().text); g != nil && g.kind == symGlobal && g.ty.kind == tyArray && ty.kind == tyPtr {
			p.next()
			return initVal{sym: g.label}, nil
		}
	}
	e, err := p.condExpr()
	if err != nil {
		return initVal{}, err
	}
	v, ok := constVal(e)
	if !ok {
		return initVal{}, errAt(line, "initializer is not constant")
	}
	return initVal{val: v}, nil
}

func (p *parser) internString(s string) string {
	if lbl, ok := p.unit.strings[s]; ok {
		return lbl
	}
	lbl := fmt.Sprintf("str_%d", p.strCount)
	p.strCount++
	p.unit.strings[s] = lbl
	p.unit.strOrd = append(p.unit.strOrd, s)
	return lbl
}

// function definitions

func (p *parser) funcDef(ret *ctype, name string, line int) error {
	if ret.kind == tyArray || ret.kind == tyStruct {
		return errAt(line, "function %s cannot return %s", name, ret)
	}
	fn, exists := p.funcs[name]
	if exists && fn.defined {
		return errAt(line, "redefinition of function %s", name)
	}
	if !exists {
		fn = &funcDecl{name: name, ret: ret, line: line}
		p.funcs[name] = fn
		p.unit.funcs = append(p.unit.funcs, fn)
	}
	if _, isBI := builtinNames[name]; isBI {
		return errAt(line, "%s is a builtin and cannot be defined", name)
	}

	p.next() // (
	p.curFn = fn
	p.pushScope()
	defer func() { p.curFn = nil; p.popScope() }()

	var params []*symbol
	if !p.accept(")") {
		if p.at("void") && p.toks[p.pos+1].text == ")" {
			p.next()
			p.next()
		} else {
			for {
				base, err := p.baseType()
				if err != nil {
					return err
				}
				ty, pname, err := p.declarator(base)
				if err != nil {
					return err
				}
				ty = decay(ty) // array params decay to pointers
				if !ty.isScalar() {
					return errAt(p.line(), "parameter %s must be scalar (got %s)", pname, ty)
				}
				s := &symbol{
					name: pname, kind: symParam, ty: ty,
					paramIdx: len(params), reg: -1,
				}
				if err := p.declare(s, p.line()); err != nil {
					return err
				}
				params = append(params, s)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return err
			}
		}
	}
	if len(params) > 8 {
		return errAt(line, "function %s has too many parameters (max 8)", name)
	}

	if exists && len(params) != len(fn.params) {
		return errAt(line, "conflicting parameter count for %s", name)
	}
	fn.params = params
	fn.locals = append([]*symbol{}, params...)

	if p.accept(";") {
		return nil // forward declaration
	}
	if !p.at("{") {
		return errAt(p.line(), "expected function body")
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	fn.body = body
	fn.defined = true
	return nil
}

// statements

func (p *parser) block() (*stmt, error) {
	line := p.line()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	var list []*stmt
	for !p.accept("}") {
		if p.tok().kind == tokEOF {
			return nil, errAt(line, "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			list = append(list, s)
		}
	}
	return &stmt{op: stBlock, list: list, line: line}, nil
}

func (p *parser) statement() (*stmt, error) {
	line := p.line()
	switch {
	case p.at("{"):
		return p.block()
	case p.accept(";"):
		return nil, nil
	case p.isTypeStart():
		return p.localDecl()
	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		st := &stmt{op: stIf, ex: cond, body: body, line: line}
		if p.accept("else") {
			alt, err := p.statement()
			if err != nil {
				return nil, err
			}
			st.alt = alt
		}
		return st, nil
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		p.loopDepth++
		body, err := p.statement()
		p.loopDepth--
		if err != nil {
			return nil, err
		}
		return &stmt{op: stWhile, ex: cond, body: body, line: line}, nil
	case p.accept("do"):
		p.loopDepth++
		body, err := p.statement()
		p.loopDepth--
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &stmt{op: stDoWhile, ex: cond, body: body, line: line}, nil
	case p.accept("for"):
		return p.forStmt(line)
	case p.accept("switch"):
		return p.switchStmt(line)
	case p.accept("return"):
		st := &stmt{op: stReturn, line: line}
		if !p.accept(";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if p.curFn.ret.kind == tyVoid {
				return nil, errAt(line, "void function %s returns a value", p.curFn.name)
			}
			st.ex = e
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		} else if p.curFn.ret.kind != tyVoid {
			return nil, errAt(line, "non-void function %s returns nothing", p.curFn.name)
		}
		return st, nil
	case p.accept("break"):
		if p.loopDepth == 0 && p.switchDepth == 0 {
			return nil, errAt(line, "break outside loop or switch")
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &stmt{op: stBreak, line: line}, nil
	case p.accept("continue"):
		if p.loopDepth == 0 {
			return nil, errAt(line, "continue outside loop")
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &stmt{op: stContinue, line: line}, nil
	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &stmt{op: stExpr, ex: e, line: line}, nil
	}
}

func (p *parser) forStmt(line int) (*stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	p.pushScope()
	defer p.popScope()
	st := &stmt{op: stFor, line: line}
	if !p.accept(";") {
		if p.isTypeStart() {
			d, err := p.localDecl()
			if err != nil {
				return nil, err
			}
			st.init = d
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.init = &stmt{op: stExpr, ex: e, line: line}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(";") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.ex = e
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.at(")") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.post = e
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	p.loopDepth++
	body, err := p.statement()
	p.loopDepth--
	if err != nil {
		return nil, err
	}
	st.body = body
	return st, nil
}

func (p *parser) switchStmt(line int) (*stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if !decay(cond.ty).isScalar() {
		return nil, errAt(line, "switch on non-scalar")
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &stmt{op: stSwitch, ex: cond, line: line}
	p.switchDepth++
	defer func() { p.switchDepth-- }()
	p.pushScope()
	defer p.popScope()
	seenDefault := false
	seen := map[int64]bool{}
	for !p.accept("}") {
		switch {
		case p.accept("case"):
			e, err := p.condExpr()
			if err != nil {
				return nil, err
			}
			v, ok := constVal(e)
			if !ok {
				return nil, errAt(p.line(), "case value is not constant")
			}
			if seen[v] {
				return nil, errAt(p.line(), "duplicate case %d", v)
			}
			if seenDefault {
				return nil, errAt(p.line(), "case after default (default must be last)")
			}
			seen[v] = true
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			st.cases = append(st.cases, switchCase{val: v})
		case p.accept("default"):
			if seenDefault {
				return nil, errAt(p.line(), "duplicate default")
			}
			seenDefault = true
			if err := p.expect(":"); err != nil {
				return nil, err
			}
		default:
			if p.tok().kind == tokEOF {
				return nil, errAt(line, "unterminated switch")
			}
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			if s == nil {
				continue
			}
			if seenDefault {
				st.defalt = append(st.defalt, s)
			} else {
				if len(st.cases) == 0 {
					return nil, errAt(s.line, "statement before first case")
				}
				c := &st.cases[len(st.cases)-1]
				c.body = append(c.body, s)
			}
		}
	}
	return st, nil
}

func (p *parser) localDecl() (*stmt, error) {
	line := p.line()
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	var list []*stmt
	for {
		ty, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if ty.kind == tyVoid {
			return nil, errAt(line, "variable %s has void type", name)
		}
		if ty.kind == tyArray && ty.n < 0 {
			return nil, errAt(line, "local array %s needs a size", name)
		}
		if ty.kind == tyStruct && !ty.sdef.done {
			return nil, errAt(line, "variable %s has incomplete type", name)
		}
		s := &symbol{
			name: name, kind: symLocal, ty: ty,
			idx: len(p.curFn.locals), reg: -1,
		}
		if err := p.declare(s, line); err != nil {
			return nil, err
		}
		p.curFn.locals = append(p.curFn.locals, s)
		st := &stmt{op: stDecl, sym: s, line: line}
		if p.accept("=") {
			if !ty.isScalar() {
				return nil, errAt(line, "cannot initialize non-scalar local %s", name)
			}
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			if err := p.checkAssign(ty, e, line); err != nil {
				return nil, err
			}
			st.dinit = e
		}
		list = append(list, st)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(list) == 1 {
		return list[0], nil
	}
	return &stmt{op: stBlock, list: list, line: line}, nil
}
