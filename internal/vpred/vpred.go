// Package vpred implements value prediction, the second hardware
// exploitation avenue the paper's Section 7 discusses (Lipasti &
// Shen's last-value prediction and the stride predictors of the
// contemporaneous literature). It measures how much of the value
// stream the repetition census exposes is actually *predictable* by
// realizable PC-indexed tables:
//
//   - last-value: predict the instruction's previous result
//   - stride: predict previous result + observed stride
//   - hybrid: an oracle choosing the better of the two per instruction
//     (an upper bound for a two-component hybrid with perfect chooser)
package vpred

import "repro/internal/cpu"

// DefaultEntries matches the reuse buffer's 8K-entry budget so the
// comparison with Table 10 is apples-to-apples.
const DefaultEntries = 8192

type entry struct {
	valid  bool
	pc     uint32
	last   uint32
	stride uint32
	warm   bool // stride established (two fills)
}

// Predictor is a tagged, direct-mapped last-value + stride predictor.
type Predictor struct {
	table []entry
	mask  int // len(table)-1 when the size is a power of two, else -1

	eligible      uint64
	lastCorrect   uint64
	strideCorrect uint64
	hybridCorrect uint64
}

// New creates a predictor with the given table size (0 =
// DefaultEntries).
func New(entries int) *Predictor {
	if entries == 0 {
		entries = DefaultEntries
	}
	p := &Predictor{table: make([]entry, entries), mask: -1}
	if entries&(entries-1) == 0 {
		// Power-of-two tables (the default) index with a mask instead
		// of a per-observation integer division.
		p.mask = entries - 1
	}
	return p
}

// Observe processes one retired instruction. Only instructions that
// produce a register result participate (the value-prediction
// literature predicts result values).
func (p *Predictor) Observe(ev *cpu.Event) {
	if ev.Dst < 0 {
		return
	}
	p.eligible++
	idx := int(ev.PC>>2) & p.mask
	if p.mask < 0 {
		idx = int(ev.PC>>2) % len(p.table)
	}
	e := &p.table[idx]
	actual := ev.DstVal

	if e.valid && e.pc == ev.PC {
		lastOK := e.last == actual
		strideOK := e.warm && e.last+e.stride == actual
		if lastOK {
			p.lastCorrect++
		}
		if strideOK {
			p.strideCorrect++
		}
		if lastOK || strideOK {
			p.hybridCorrect++
		}
		e.stride = actual - e.last
		e.warm = true
		e.last = actual
		return
	}
	*e = entry{valid: true, pc: ev.PC, last: actual}
}

// Result is the accuracy summary.
type Result struct {
	// EligiblePct is the share of instructions producing a register
	// value (the predictable population).
	EligiblePct float64
	// LastValuePct / StridePct / HybridPct are prediction accuracies
	// over the eligible population.
	LastValuePct float64
	StridePct    float64
	HybridPct    float64
}

// Result computes accuracies; total is the number of instructions
// observed by the run (for the eligible share).
func (p *Predictor) Result(total uint64) Result {
	return Result{
		EligiblePct:  pctv(p.eligible, total),
		LastValuePct: pctv(p.lastCorrect, p.eligible),
		StridePct:    pctv(p.strideCorrect, p.eligible),
		HybridPct:    pctv(p.hybridCorrect, p.eligible),
	}
}

func pctv(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Name identifies the predictor in observability output.
func (p *Predictor) Name() string { return "vpred" }
