package vpred

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func ev(pc, out uint32) *cpu.Event {
	return &cpu.Event{
		PC:   pc,
		Inst: isa.Inst{Op: isa.OpADDU, Rd: 2},
		Src1: 4, Src2: 5, Dst: 2, DstVal: out, Aux: -1,
	}
}

func TestLastValue(t *testing.T) {
	p := New(0)
	p.Observe(ev(0x400000, 7)) // fill
	p.Observe(ev(0x400000, 7)) // last-value correct
	p.Observe(ev(0x400000, 7)) // correct
	p.Observe(ev(0x400000, 9)) // miss
	r := p.Result(4)
	if r.EligiblePct != 100 {
		t.Errorf("eligible = %v", r.EligiblePct)
	}
	if r.LastValuePct != 50 {
		t.Errorf("last-value = %v, want 50", r.LastValuePct)
	}
}

func TestStride(t *testing.T) {
	p := New(0)
	// Sequence 10, 14, 18, 22: strides established after the second.
	for _, v := range []uint32{10, 14, 18, 22} {
		p.Observe(ev(0x400000, v))
	}
	r := p.Result(4)
	// Predictions: #2 no stride yet, #3 predicts 14+4=18 OK, #4
	// predicts 18+4=22 OK.
	if r.StridePct != 50 {
		t.Errorf("stride = %v, want 50", r.StridePct)
	}
	if r.LastValuePct != 0 {
		t.Errorf("last-value = %v, want 0 on a striding sequence", r.LastValuePct)
	}
	if r.HybridPct != 50 {
		t.Errorf("hybrid = %v, want 50", r.HybridPct)
	}
}

func TestHybridTakesBest(t *testing.T) {
	p := New(0)
	// Constant at one pc, striding at another.
	for i := 0; i < 10; i++ {
		p.Observe(ev(0x400000, 5))
		p.Observe(ev(0x400004, uint32(100+4*i)))
	}
	r := p.Result(20)
	if r.HybridPct < r.LastValuePct || r.HybridPct < r.StridePct {
		t.Errorf("hybrid %v must dominate last %v and stride %v",
			r.HybridPct, r.LastValuePct, r.StridePct)
	}
}

func TestNonProducersIgnored(t *testing.T) {
	p := New(0)
	store := &cpu.Event{
		PC:   0x400000,
		Inst: isa.Inst{Op: isa.OpSW},
		Src1: 4, Src2: 5, Dst: -1, Aux: -1, IsStore: true,
	}
	p.Observe(store)
	r := p.Result(1)
	if r.EligiblePct != 0 {
		t.Errorf("stores must not be eligible: %v", r.EligiblePct)
	}
}

func TestTableConflict(t *testing.T) {
	// Two PCs mapping to the same slot evict each other (tagged
	// table): neither trains.
	p := New(1)
	for i := 0; i < 10; i++ {
		p.Observe(ev(0x400000, 5))
		p.Observe(ev(0x400004, 9))
	}
	r := p.Result(20)
	if r.LastValuePct != 0 {
		t.Errorf("conflicting PCs should never predict: %v", r.LastValuePct)
	}
}

func TestZeroTotal(t *testing.T) {
	p := New(0)
	r := p.Result(0)
	if r.EligiblePct != 0 || r.LastValuePct != 0 {
		t.Error("empty predictor must report zeros")
	}
}
