package vpred

import "repro/internal/checkpoint"

// SnapshotTo writes the predictor state: the accuracy counters and a
// raw dump of the table (geometry is configuration, rebuilt by the
// caller with New before restoring; the encoded length cross-checks
// it).
func (p *Predictor) SnapshotTo(w *checkpoint.Writer) {
	w.U64(p.eligible)
	w.U64(p.lastCorrect)
	w.U64(p.strideCorrect)
	w.U64(p.hybridCorrect)
	w.U32(uint32(len(p.table)))
	for i := range p.table {
		e := &p.table[i]
		w.Bool(e.valid)
		w.U32(e.pc)
		w.U32(e.last)
		w.U32(e.stride)
		w.Bool(e.warm)
	}
}

// RestoreFrom loads a snapshot into a predictor constructed with the
// same table size.
func (p *Predictor) RestoreFrom(r *checkpoint.Reader) error {
	p.eligible = r.U64()
	p.lastCorrect = r.U64()
	p.strideCorrect = r.U64()
	p.hybridCorrect = r.U64()
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(p.table) {
		return checkpoint.ErrMalformed
	}
	for i := range p.table {
		e := &p.table[i]
		e.valid = r.Bool()
		e.pc = r.U32()
		e.last = r.U32()
		e.stride = r.U32()
		e.warm = r.Bool()
	}
	return r.Err()
}
