package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	s := NewTable("Title", "name", "value").
		Row("alpha", 12.345).
		Row("b", "raw").
		Note("note %d", 7).
		String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Errorf("missing title:\n%s", s)
	}
	if !strings.Contains(s, "12.3") {
		t.Errorf("float not formatted:\n%s", s)
	}
	if !strings.Contains(s, "note 7") {
		t.Errorf("note missing:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title, header, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
	// Columns align: the header and rows have the same rune width up
	// to trailing spaces.
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header wrong: %q", lines[1])
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[uint64]string{
		0: "0", 5: "5", 999: "999", 1000: "1,000",
		1234567: "1,234,567", 1000000000: "1,000,000,000",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatPct(t *testing.T) {
	if FormatPct(12.34) != "12.3" || FormatPct(0) != "0.0" {
		t.Error("percentage formatting wrong")
	}
}

func TestSeries(t *testing.T) {
	s := Series("bench", []float64{50, 90}, []float64{10.5, 42.1})
	if !strings.Contains(s, "bench") || !strings.Contains(s, "50%:10.5") || !strings.Contains(s, "90%:42.1") {
		t.Errorf("series = %q", s)
	}
}
