// Package report renders experiment results as aligned text tables
// and series, matching the rows/columns of the paper's tables and the
// series of its figures.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table builder.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	note    string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatPct(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Note sets a footnote line.
func (t *Table) Note(format string, args ...any) *Table {
	t.note = fmt.Sprintf(format, args...)
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	if t.note != "" {
		b.WriteString(t.note)
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatPct renders a percentage with one decimal.
func FormatPct(v float64) string {
	return fmt.Sprintf("%.1f", v)
}

// FormatCount renders a large count with thousands separators.
func FormatCount(v uint64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}

// Series renders a named series (a text stand-in for one figure
// curve): label followed by x:y pairs.
func Series(label string, xs []float64, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", label)
	for i := range xs {
		fmt.Fprintf(&b, "  %g%%:%s", xs[i], FormatPct(ys[i]))
	}
	return b.String()
}
