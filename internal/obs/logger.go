package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the fixed-width label used in log lines.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO "
	case LevelWarn:
		return "WARN "
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("L(%d)", int32(l))
	}
}

// Logger is a small leveled key=value logger for pipeline
// diagnostics, replacing ad-hoc fmt.Fprintln(os.Stderr, ...) lines.
// A nil *Logger discards everything, so optional diagnostics can call
// it unconditionally. Loggers are safe for concurrent use.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	json   bool
	fields []any
	// now is the clock; tests may replace it for stable output.
	now func() time.Time
}

// NewLogger creates a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, now: time.Now}
}

// NewJSONLogger creates a logger emitting one JSON object per line
// ({"ts":..., "level":..., "msg":..., key: value, ...}) — the format
// the report server's access log uses so lines are machine-parseable.
func NewJSONLogger(w io.Writer, level Level) *Logger {
	l := NewLogger(w, level)
	l.json = true
	return l
}

// With returns a logger that appends the given key/value pairs to
// every line. The child shares the parent's writer and lock.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.fields = append(append([]any{}, l.fields...), kv...)
	return &child
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	if l.json {
		fmt.Fprintf(&b, `{"ts":%q,"level":%q,"msg":%s`,
			l.now().Format(time.RFC3339Nano), strings.TrimSpace(level.String()), jsonValue(msg))
		writeJSONKV(&b, l.fields)
		writeJSONKV(&b, kv)
		b.WriteString("}\n")
	} else {
		fmt.Fprintf(&b, "%s %s %s", l.now().Format("15:04:05.000"), level, msg)
		writeKV(&b, l.fields)
		writeKV(&b, kv)
		b.WriteByte('\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// writeJSONKV appends ,"key":value pairs in call order (keys are
// rendered as strings; values JSON-encoded). A trailing odd value goes
// under "!extra", matching writeKV.
func writeJSONKV(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(b, ",%s:%s", jsonValue(fmt.Sprintf("%v", kv[i])), jsonValue(kv[i+1]))
	}
	if len(kv)%2 == 1 {
		fmt.Fprintf(b, `,"!extra":%s`, jsonValue(kv[len(kv)-1]))
	}
}

// jsonValue renders v as a JSON value, falling back to its %v string
// form when it does not marshal (e.g. error values, channels).
func jsonValue(v any) string {
	if err, ok := v.(error); ok {
		v = err.Error()
	}
	out, err := json.Marshal(v)
	if err != nil {
		out, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	return string(out)
}

// writeKV appends " key=value" pairs; a trailing odd value is
// rendered under the key "!extra" rather than dropped.
func writeKV(b *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(b, " %v=%s", kv[i], formatValue(kv[i+1]))
	}
	if len(kv)%2 == 1 {
		fmt.Fprintf(b, " !extra=%s", formatValue(kv[len(kv)-1]))
	}
}

func formatValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if strings.ContainsAny(s, " \t\"") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
